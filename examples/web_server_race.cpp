// Web-server race: serve the same sequence of HTTP responses over the
// same lossy path with each fast-recovery algorithm and compare
// per-response TCP latency — a miniature of the paper's §5 experiment.
//
// Usage: web_server_race [connections] [seed]
#include <cstdio>
#include <cstdlib>

#include "exp/experiment.h"
#include "util/table.h"
#include "workload/web_workload.h"

using namespace prr;

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 4000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 99;

  std::printf("Racing Linux rate-halving vs RFC 3517 vs PRR over %d "
              "identical Web connections (seed %llu)...\n\n",
              connections, (unsigned long long)seed);

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = connections;
  opts.seed = seed;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  auto results = exp::run_arms(
      pop,
      {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
       exp::ArmConfig::prr_arm()},
      opts);

  util::Table t({"arm", "lossy median [ms]", "lossy mean [ms]",
                 "overall mean [ms]", "timeouts", "fast recoveries",
                 "retransmission rate"});
  for (const auto& r : results) {
    util::Samples lossy = r.latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    util::Samples all = r.latency.latency_ms();
    t.add_row({r.name, util::Table::fmt(lossy.quantile(0.5), 0),
               util::Table::fmt(lossy.mean(), 0),
               util::Table::fmt(all.mean(), 0),
               std::to_string(r.metrics.timeouts_total),
               std::to_string(r.metrics.fast_recovery_events),
               util::Table::fmt_pct(r.retransmission_rate())});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double linux_mean =
      results[0]
          .latency.latency_ms(stats::LatencyTracker::Filter::kWithRetransmit)
          .mean();
  const double prr_mean =
      results[2]
          .latency.latency_ms(stats::LatencyTracker::Filter::kWithRetransmit)
          .mean();
  std::printf("PRR vs Linux on lossy responses: %+.1f%% (paper: -3%% to "
              "-10%%)\n",
              (prr_mean - linux_mean) / linux_mean * 100);
  return 0;
}
