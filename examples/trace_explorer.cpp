// Tracing & metrics walkthrough. Two parts:
//
//  1. A single lossy transfer with a flight recorder attached. Every
//     CA-state transition, per-ACK PRR decision, retransmission, timer
//     event and wire segment lands in a preallocated ring of 64-byte
//     records; the example prints a human-readable slice of the ring,
//     an ss(8)-style snapshot of the sender, and writes the whole ring
//     as Chrome trace-event JSON.
//
//     Open trace.json at https://ui.perfetto.dev (or chrome://tracing):
//     drag the file into the window. You get one track per connection
//     with a "fast recovery" slice spanning each recovery episode,
//     instant markers for retransmits/RTOs, and counter tracks plotting
//     cwnd/pipe/ssthresh and prr_delivered/prr_out over simulated time —
//     the same plots as the paper's time-sequence figures, but
//     interactive.
//
//  2. A traced experiment sweep. Every arm aggregates a metrics
//     registry (named counters/gauges/log-scale histograms, merged
//     deterministically across worker shards); the example writes it as
//     registry.json — and a columnar trace store (sweep.prr.prrstore)
//     holding every connection's ring, ready for prr_query.
//
// With `--store FILE [--conn ID]` the walkthrough instead runs offline:
// it opens a .prrstore written by a captured sweep (this example's own
// Part 2, prr_query sweep, or RunOptions::store_path anywhere) and
// renders one stored connection — record slice + Perfetto JSON — without
// re-simulating anything.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_explorer
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "net/loss_model.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "obs/perfetto.h"
#include "obs/snapshot.h"
#include "obs/store/store_reader.h"
#include "util/artifacts.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

// Writes under the artifact directory ($PRR_ARTIFACT_DIR or
// ./artifacts) so runs from a source checkout keep the tree clean.
bool write_file(const char* name, const std::string& body,
                std::string* path_out) {
  const std::string path = util::artifact_path(name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  *path_out = path;
  return ok;
}

// --store mode: render one stored connection offline.
int explore_store(const std::string& path, int64_t want_conn) {
  obs::StoreReader reader;
  std::string err;
  if (!obs::StoreReader::open(path, &reader, &err)) {
    std::printf("trace_explorer: %s\n", err.c_str());
    return 1;
  }
  const std::vector<uint64_t> conns = reader.connections();
  if (conns.empty()) {
    std::printf("store %s holds no connections.\n", path.c_str());
    return 0;
  }
  const uint64_t conn =
      want_conn >= 0 ? static_cast<uint64_t>(want_conn) : conns.front();
  std::vector<obs::TraceRecord> records;
  if (!reader.read_connection(conn, &records)) {
    std::printf("store decode failed for conn %llu\n",
                (unsigned long long)conn);
    return 1;
  }
  std::printf("store %s: arm %s, %zu connection(s); showing conn %llu "
              "(%zu records)\n\n",
              path.c_str(), reader.meta().arm.c_str(), conns.size(),
              (unsigned long long)conn, records.size());
  if (records.empty()) {
    std::printf("conn %llu is not in this store (policy %s). Stored ids "
                "start at %llu.\n",
                (unsigned long long)conn, reader.meta().policy.c_str(),
                (unsigned long long)conns.front());
    return 0;
  }
  std::size_t shown = 0;
  for (const obs::TraceRecord& r : records) {
    if (r.type == obs::TraceType::kWireData ||
        r.type == obs::TraceType::kWireAck) {
      continue;
    }
    std::printf("  %s\n", obs::describe(r).c_str());
    if (++shown >= 14) break;
  }
  std::string out_path;
  if (write_file("trace.json", obs::perfetto_trace_json(records),
                 &out_path)) {
    std::printf("\nwrote %s from the stored records -- load it at "
                "https://ui.perfetto.dev.\n",
                out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  int64_t store_conn = -1;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--store") == 0) store_path = argv[i + 1];
    if (std::strcmp(argv[i], "--conn") == 0) {
      store_conn = std::atoll(argv[i + 1]);
    }
  }
  if (!store_path.empty()) return explore_store(store_path, store_conn);

  // ---- Part 1: one traced lossy transfer -------------------------------
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = sim::Time::milliseconds(50);
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(4),
                                          sim::Time::milliseconds(50), 100);
  tcp::Connection conn(sim, cfg, sim::Rng(1), nullptr, nullptr);

  obs::FlightRecorder recorder(1 << 14);
  obs::Instrument instrument(sim, conn, recorder, /*conn_id=*/0);

  // Drop two segments early so the transfer goes through a full PRR fast
  // recovery — that is the part worth looking at in the trace viewer.
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{3, 4}));
  conn.write(60'000);
  sim.run(sim::Time::seconds(30));

  std::printf("transfer done: %llu records in the ring (%llu written, "
              "%llu dropped)\n\n",
              (unsigned long long)recorder.size(),
              (unsigned long long)recorder.total_written(),
              (unsigned long long)recorder.dropped());

  if (!obs::trace_compiled_in()) {
    std::printf("built with PRR_TRACING=OFF -- the recorder stays empty "
                "and this walkthrough has nothing to show.\n");
    return 0;
  }

  std::printf("first records of the fast-recovery episode:\n");
  std::size_t shown = 0;
  bool in_recovery = false;
  for (std::size_t i = 0; i < recorder.size() && shown < 14; ++i) {
    const obs::TraceRecord& r = recorder[i];
    if (r.type == obs::TraceType::kEnterRecovery) in_recovery = true;
    if (!in_recovery || r.type == obs::TraceType::kWireData ||
        r.type == obs::TraceType::kWireAck) {
      continue;
    }
    std::printf("  %s\n", obs::describe(r).c_str());
    ++shown;
  }

  std::printf("\nsender snapshot (ss -i style):\n  %s\n",
              obs::snapshot(conn.sender(), /*conn_id=*/0).c_str());

  std::string out_path;
  if (write_file("trace.json", obs::perfetto_trace_json(recorder),
                 &out_path)) {
    std::printf("wrote %s -- load it at https://ui.perfetto.dev: "
                "expand \"prr simulator\", then scrub the conn0 window "
                "counter track through the fast-recovery slice.\n",
                out_path.c_str());
  }

  // ---- Part 2: a traced sweep and its metrics registry -----------------
  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 200;
  opts.seed = 20110501;
  opts.threads = 0;  // registry merge is deterministic across shards
  opts.trace = true;
  // Persist every connection's ring to a columnar trace store alongside
  // the registry — the sweep-scale counterpart of Part 1's single ring.
  opts.store_path = util::artifact_path("sweep.prrstore");
  opts.capture = "all";
  const exp::ArmResult result =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);

  std::printf("\nsweep: %llu connections, %llu retransmits, "
              "%llu trace records written\n",
              (unsigned long long)result.connections_run,
              (unsigned long long)result.metrics.retransmits_total,
              (unsigned long long)result.registry
                  .find_counter("obs.trace.records_written")
                  ->value());
  if (write_file("registry.json", result.registry.to_json(), &out_path)) {
    std::printf("wrote %s -- counters, gauges and log-scale "
                "histograms for the whole arm.\n",
                out_path.c_str());
  }
  const std::string store_file =
      obs::store_path_for_arm(opts.store_path, "PRR");
  std::printf("wrote %s -- the whole sweep's trace rings, columnar.\n"
              "explore it offline:\n"
              "  ./examples/prr_query info %s\n"
              "  ./examples/trace_explorer --store %s --conn 7\n",
              store_file.c_str(), store_file.c_str(), store_file.c_str());
  return 0;
}
