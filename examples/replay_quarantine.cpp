// Quarantine-and-replay walkthrough: runs a chaos sweep with invariant
// checking on, then replays every quarantined connection deterministically
// in isolation and verifies the replay reproduces the recorded failure.
//
// Because the whole per-connection sample path — workload, network
// impairments, fault schedule — derives from (seed, connection id), the
// replay is bit-for-bit the computation the sweep performed, minus the
// other 149 connections. That is the debugging loop this harness buys:
// a violation seen once in a 500-connection chaos run shrinks to a
// single-connection repro you can step through.
//
// A healthy build quarantines nothing, so by default this example injects
// one synthetic violation (connection 7, third ACK) to show the machinery
// end to end. Run with --no-inject to do an honest sweep.
//
// Each quarantined connection also carries the tail of its flight
// recorder — the last few hundred trace records leading up to the
// violation. This example prints that tail (one line per record) and
// writes it as Chrome trace-event JSON you can drop into
// https://ui.perfetto.dev to scrub through the failure visually.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/replay_quarantine
#include <cstdio>
#include <cstring>
#include <string>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "obs/trace_diff.h"
#include "obs/trace_record.h"
#include "util/artifacts.h"
#include "workload/web_workload.h"

using namespace prr;

int main(int argc, char** argv) {
  bool inject = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-inject") == 0) inject = false;
  }

  workload::WebWorkload base;
  exp::ChaosSpec spec = exp::ChaosSpec::everything();
  exp::ChaosPopulation pop(base, spec.profile);

  exp::RunOptions opts;
  opts.connections = 150;
  opts.seed = 7;
  opts.check_invariants = true;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.scenario = spec.name;
  // Checked runs always carry a flight recorder; size the ring so the
  // injected early-ACK violation is still in the end-of-run tail.
  opts.trace = true;
  opts.trace_ring_records = 1u << 16;
  opts.trace_tail_records = 1u << 16;
  if (inject) {
    opts.inject_violation_connection = 7;
    opts.inject_violation_on_ack = 3;
  }

  exp::Experiment experiment(pop, opts);
  std::vector<exp::ArmConfig> arms = {exp::ArmConfig::prr_arm(),
                                      exp::ArmConfig::rfc3517_arm(),
                                      exp::ArmConfig::linux_arm()};

  std::printf("chaos sweep: scenario '%s', %d connections x %zu arms%s\n\n",
              spec.name.c_str(), opts.connections, arms.size(),
              inject ? " (one synthetic violation injected)" : "");

  std::vector<exp::ArmResult> results = experiment.run(arms);

  for (std::size_t a = 0; a < arms.size(); ++a) {
    const exp::ArmResult& r = results[a];
    std::printf("arm %-10s acks checked %-8llu violations %-4llu "
                "quarantined %zu\n",
                r.name.c_str(), (unsigned long long)r.acks_checked,
                (unsigned long long)r.invariant_violations,
                r.quarantined.size());
  }

  int failures = 0;
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (const exp::QuarantineRecord& rec : results[a].quarantined) {
      std::printf("\nquarantined: %s\n", rec.summary().c_str());

      // The flight-recorder tail: what the connection was doing in the
      // run-up to the violation, newest records last. Show the final
      // stretch; the full tail goes into the Perfetto JSON below.
      if (!rec.trace_tail.empty()) {
        const std::size_t show = rec.trace_tail.size() < 12
                                     ? rec.trace_tail.size()
                                     : std::size_t{12};
        std::printf("flight-recorder tail (%zu records, last %zu shown):\n",
                    rec.trace_tail.size(), show);
        for (std::size_t i = rec.trace_tail.size() - show;
             i < rec.trace_tail.size(); ++i) {
          std::printf("  %s\n", obs::describe(rec.trace_tail[i]).c_str());
        }
        char name[64];
        std::snprintf(name, sizeof(name), "quarantine_conn%llu_trace.json",
                      (unsigned long long)rec.connection_id);
        const std::string path = util::artifact_path(name);
        if (std::FILE* f = std::fopen(path.c_str(), "w")) {
          const std::string json = rec.trace_json();
          bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
          ok = std::fclose(f) == 0 && ok;
          if (ok) {
            std::printf("wrote %s -- open it at https://ui.perfetto.dev\n",
                        path.c_str());
          } else {
            std::printf("short write to %s\n", path.c_str());
          }
        }
      }

      // Quarantine forensics from the episode layer: the recovery
      // episode in flight (or closest to) the failure, reconstructed
      // from the trace tail with its per-ACK ledger.
      const std::string culprit = rec.episode_summary();
      if (!culprit.empty()) {
        std::printf("culprit episode:\n%s\n", culprit.c_str());
      } else {
        std::printf("no recovery episode in the captured tail\n");
      }

      // Cross-arm triage: re-run the same connection under a reference
      // arm. CRN makes the sample paths identical, so the first
      // divergent record is the first decision this arm made
      // differently — often the shortest path to "why only this arm".
      {
        const std::size_t ref =
            (a + 1) % arms.size();  // any other arm works as reference
        exp::RunOptions iso = opts;
        iso.inject_violation_connection = -1;  // honest re-runs
        exp::TracedConnection mine = exp::trace_connection(
            pop, arms[a], iso, rec.connection_id);
        exp::TracedConnection other = exp::trace_connection(
            pop, arms[ref], iso, rec.connection_id);
        const obs::DivergencePoint d =
            obs::first_divergence(mine.records, other.records);
        if (d.diverged && !d.a_ended && !d.b_ended) {
          std::printf("first divergence vs %s arm after %zu common "
                      "records:\n  %-10s %s\n  %-10s %s\n",
                      arms[ref].name.c_str(), d.common_count,
                      arms[a].name.c_str(), obs::describe(d.a).c_str(),
                      arms[ref].name.c_str(), obs::describe(d.b).c_str());
        } else if (d.diverged) {
          std::printf("diverged from %s arm by exhaustion after %zu "
                      "common records\n",
                      arms[ref].name.c_str(), d.common_count);
        } else {
          std::printf("identical record stream to %s arm (%zu records): "
                      "the failure is arm-independent\n",
                      arms[ref].name.c_str(), d.common_count);
        }
      }

      exp::ReplayResult replay = experiment.replay(arms[a], rec);
      const bool ok = replay.reproduced(rec);
      std::printf("replay: %zu violation(s), %llu ACKs checked -> %s\n",
                  replay.violations.size(),
                  (unsigned long long)replay.acks_checked,
                  ok ? "reproduced" : "DID NOT REPRODUCE");
      if (!ok) ++failures;
    }
  }

  if (inject) {
    // The injected violation must have been caught and replayed.
    bool saw_injected = false;
    for (const auto& r : results) {
      saw_injected |= !r.quarantined.empty();
    }
    if (!saw_injected) {
      std::printf("\nERROR: injected violation was not quarantined\n");
      return 1;
    }
  }
  if (failures > 0) {
    std::printf("\n%d quarantined connection(s) failed to replay\n", failures);
    return 1;
  }
  std::printf("\nall quarantined connections replayed deterministically\n");
  return 0;
}
