// Quickstart: one TCP connection over a lossy 1.2 Mbps / 100 ms path,
// recovering with PRR. Prints the time-sequence trace (the simulator's
// version of the paper's Figure 2) plus the recovery-event summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "exp/scenarios.h"

using namespace prr;

int main() {
  // The paper's §4.1 testbed: drop the first four of twenty segments,
  // then the application writes ten more at t = 500 ms.
  exp::FigureScenario scenario =
      exp::FigureScenario::fig2(tcp::RecoveryKind::kPrr);
  exp::FigureRun run = exp::run_figure_scenario(scenario);

  std::printf("PRR fast recovery on a 1.2 Mbps, 100 ms RTT path\n");
  std::printf("=================================================\n\n");
  std::printf("%s\n", run.trace.render_ascii().c_str());

  std::printf("segments sent        : %llu\n",
              (unsigned long long)run.metrics.data_segments_sent);
  std::printf("fast retransmits     : %llu\n",
              (unsigned long long)run.metrics.fast_retransmits);
  std::printf("timeouts             : %llu\n",
              (unsigned long long)run.metrics.timeouts_total);
  std::printf("all data ACKed at    : %lld ms\n",
              (long long)run.all_acked_at.ms());
  for (const auto& e : run.recovery_log.events()) {
    std::printf(
        "recovery event: %lld..%lld ms, pipe@start=%llu B, "
        "ssthresh=%llu B, cwnd after exit=%.0f segments\n",
        (long long)e.start.ms(), (long long)e.end.ms(),
        (unsigned long long)e.pipe_at_start, (unsigned long long)e.ssthresh,
        e.cwnd_after_exit_segs());
  }
  return 0;
}
