// Live experiment control plane (DESIGN.md §13): run an always-on
// open-world A/B/n experiment — Linux rate-halving (control) vs
// RFC 3517 vs PRR — over a Poisson+diurnal arrival stream, with a
// streaming scoreboard, always-valid sequential statistics driving
// promote/hold/rollback, CUSUM drift detectors with auto-quarantine,
// and a Perfetto timeline of the whole run.
//
// Usage: experiment_service [options]
//   --connections N      admit N connections total (default 1000000)
//   --rate R             mean arrivals/sec (default 6.7)
//   --amplitude A        diurnal swing in [0,1] (default 0.4)
//   --period-secs S      diurnal period (default 86400)
//   --snapshot-secs S    scoreboard cadence (default 600)
//   --horizon-secs S     stop at this arrival-clock time (default none)
//   --seed S             run seed (default 42)
//   --threads N          per-window worker threads; 0 = hw (default 1)
//   --alpha A            CS level (default 0.05)
//   --primary M          primary metric: retx_rate | timeout_frac |
//                        recovery_ms (default timeout_frac)
//   --margin X           guardrail harm margin, relative (default 0.05)
//   --min-windows N      CS min_n gate (default 10)
//   --cusum-h H          CUSUM threshold, sigmas (default 8)
//   --calibration N      CUSUM baseline windows (default 30)
//   --shift-at SECS      inject a regime shift at this time (repeatable
//                        with the scales below applying to the last one)
//   --loss-scale X       shifted loss scale (default 4)
//   --rtt-scale X        shifted RTT scale (default 1)
//   --bandwidth-scale X  shifted bandwidth scale (default 1)
//   --check-invariants   quarantine-on-violation safety net
//   --trace              per-connection flight recorders (aggregates
//                        unchanged; service output is trace-invariant)
//   --print-every K      terminal scoreboard every K windows (default 25)
//   --quiet              no per-window terminal output
//   --no-files           skip writing artifacts
//   --out DIR            artifact directory (default $PRR_ARTIFACT_DIR
//                        or ./artifacts)
//   --expect-promote ARM exit 1 unless ARM ends promoted
//   --expect-alert       exit 1 unless at least one drift alert fired
//
// Artifacts: scoreboard.jsonl (streamed), decisions.jsonl, alerts.jsonl,
// service_timeline.json (ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/service.h"
#include "exp/service_timeline.h"
#include "util/artifacts.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

uint64_t parse_u64(const char* s) { return std::strtoull(s, nullptr, 10); }

long peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  exp::ServiceConfig cfg;
  cfg.arms = {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
              exp::ArmConfig::prr_arm()};
  cfg.control_arm = 0;
  cfg.arrivals.rate_per_sec = 6.7;
  cfg.arrivals.diurnal.amplitude = 0.4;

  double loss_scale = 4.0, rtt_scale = 1.0, bandwidth_scale = 1.0;
  std::vector<double> shift_at_s;
  uint64_t print_every = 25;
  bool quiet = false, no_files = false, expect_alert = false;
  std::string out_dir, expect_promote;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (!std::strcmp(a, "--connections")) cfg.max_connections = parse_u64(val());
    else if (!std::strcmp(a, "--rate")) cfg.arrivals.rate_per_sec = std::atof(val());
    else if (!std::strcmp(a, "--amplitude")) cfg.arrivals.diurnal.amplitude = std::atof(val());
    else if (!std::strcmp(a, "--period-secs")) cfg.arrivals.diurnal.period = sim::Time::seconds(std::atof(val()));
    else if (!std::strcmp(a, "--snapshot-secs")) cfg.snapshot_every = sim::Time::seconds(std::atof(val()));
    else if (!std::strcmp(a, "--horizon-secs")) cfg.horizon = sim::Time::seconds(std::atof(val()));
    else if (!std::strcmp(a, "--seed")) cfg.seed = parse_u64(val());
    else if (!std::strcmp(a, "--threads")) cfg.run.threads = std::atoi(val());
    else if (!std::strcmp(a, "--alpha")) cfg.cs.alpha = std::atof(val());
    else if (!std::strcmp(a, "--margin")) cfg.guardrail_margin = std::atof(val());
    else if (!std::strcmp(a, "--primary")) {
      const char* m = val();
      if (!std::strcmp(m, "retx_rate")) cfg.primary = exp::ServiceMetric::kRetxRate;
      else if (!std::strcmp(m, "timeout_frac")) cfg.primary = exp::ServiceMetric::kTimeoutFrac;
      else if (!std::strcmp(m, "recovery_ms")) cfg.primary = exp::ServiceMetric::kRecoveryMs;
      else { std::fprintf(stderr, "unknown metric %s\n", m); return 2; }
    }
    else if (!std::strcmp(a, "--min-windows")) cfg.cs.min_n = parse_u64(val());
    else if (!std::strcmp(a, "--cusum-h")) cfg.cusum.h = std::atof(val());
    else if (!std::strcmp(a, "--calibration")) cfg.cusum.calibration = std::atoi(val());
    else if (!std::strcmp(a, "--shift-at")) shift_at_s.push_back(std::atof(val()));
    else if (!std::strcmp(a, "--loss-scale")) loss_scale = std::atof(val());
    else if (!std::strcmp(a, "--rtt-scale")) rtt_scale = std::atof(val());
    else if (!std::strcmp(a, "--bandwidth-scale")) bandwidth_scale = std::atof(val());
    else if (!std::strcmp(a, "--check-invariants")) cfg.run.check_invariants = true;
    else if (!std::strcmp(a, "--trace")) cfg.run.trace = true;
    else if (!std::strcmp(a, "--print-every")) print_every = parse_u64(val());
    else if (!std::strcmp(a, "--quiet")) quiet = true;
    else if (!std::strcmp(a, "--no-files")) no_files = true;
    else if (!std::strcmp(a, "--out")) out_dir = val();
    else if (!std::strcmp(a, "--expect-promote")) expect_promote = val();
    else if (!std::strcmp(a, "--expect-alert")) expect_alert = true;
    else {
      std::fprintf(stderr, "unknown option %s (see header comment)\n", a);
      return 2;
    }
  }
  for (double at : shift_at_s) {
    workload::RegimeShift s;
    s.at = sim::Time::seconds(at);
    s.loss_scale = loss_scale;
    s.rtt_scale = rtt_scale;
    s.bandwidth_scale = bandwidth_scale;
    cfg.regimes.shifts.push_back(s);
  }
  if (out_dir.empty()) {
    out_dir = util::artifact_dir();
  } else if (!no_files) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
  }

  std::printf("experiment service: %llu connections, %.2f/s mean rate "
              "(diurnal %.0f%%), snapshots every %.0fs, seed %llu, "
              "%d thread(s)%s\n",
              (unsigned long long)cfg.max_connections,
              cfg.arrivals.rate_per_sec,
              100 * cfg.arrivals.diurnal.amplitude,
              cfg.snapshot_every.seconds_d(),
              (unsigned long long)cfg.seed, cfg.run.threads,
              cfg.regimes.empty() ? "" : ", regime shift scheduled");

  workload::WebWorkload pop;
  exp::ExperimentService service(pop, cfg);

  std::FILE* scoreboard = nullptr;
  if (!no_files) {
    const std::string path = out_dir + "/scoreboard.jsonl";
    scoreboard = std::fopen(path.c_str(), "w");
    if (scoreboard == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
  }
  service.set_snapshot_hook([&](const exp::ScoreboardSnapshot& snap) {
    if (scoreboard != nullptr) {
      const std::string line = snap.to_json();
      std::fwrite(line.data(), 1, line.size(), scoreboard);
      std::fputc('\n', scoreboard);
      std::fflush(scoreboard);
    }
    if (!quiet && print_every != 0 &&
        (snap.window % print_every == 0 || snap.alerts_so_far != 0)) {
      std::fputs(describe(snap).c_str(), stdout);
    }
  });

  exp::ServiceResult res = service.run();
  bool io_ok = true;
  if (scoreboard != nullptr) io_ok = std::fclose(scoreboard) == 0;

  std::printf("\n=== final scoreboard (%llu windows, %.1f simulated days, "
              "%llu connections/arm) ===\n",
              (unsigned long long)res.windows,
              res.end_time.seconds_d() / 86400.0,
              (unsigned long long)(res.arms.empty()
                                       ? 0
                                       : res.arms[0].connections_run));
  if (!res.snapshots.empty()) {
    std::fputs(describe(res.snapshots.back()).c_str(), stdout);
  }
  std::printf("\ndecisions:\n");
  for (const exp::DecisionRecord& d : res.decisions) {
    std::printf("  window %-5llu %-8s %-10s %s (p=%.2g, delta=%+.3g)\n",
                (unsigned long long)d.window, to_string(d.action),
                d.arm_name.c_str(), d.reason.c_str(), d.primary.p,
                d.primary.mean);
  }
  std::printf("alerts: %llu", (unsigned long long)res.alerts_total);
  for (const exp::AlertRecord& a : res.alerts) {
    std::printf("\n  window %-5llu %-10s %-11s value=%.4g baseline=%.4g "
                "stat=%.1f>h=%.1f  quarantined ids [%llu,%llu) -> "
                "prr_inspect episodes --arm \"%s\" --connections %llu "
                "--first %llu --seed %llu --loss-scale %g",
                (unsigned long long)a.window, a.arm_name.c_str(),
                to_string(a.series), a.value, a.baseline, a.stat,
                a.threshold, (unsigned long long)a.first_connection,
                (unsigned long long)(a.first_connection + a.connections),
                a.arm_name.c_str(), (unsigned long long)a.connections,
                (unsigned long long)a.first_connection,
                (unsigned long long)a.seed, a.loss_scale);
  }
  std::printf("\n");

  if (!no_files) {
    io_ok = write_file(out_dir + "/decisions.jsonl",
                       res.decision_log_jsonl()) && io_ok;
    io_ok = write_file(out_dir + "/alerts.jsonl", res.alert_log_jsonl()) &&
            io_ok;
    io_ok = write_file(out_dir + "/service_timeline.json",
                       exp::service_timeline_json(res)) && io_ok;
    std::printf("artifacts: %s/{scoreboard.jsonl,decisions.jsonl,"
                "alerts.jsonl,service_timeline.json}\n",
                out_dir.c_str());
  }
  const long rss = peak_rss_kb();
  if (rss > 0) std::printf("peak_rss_mb: %.1f\n", rss / 1024.0);

  int rc = io_ok ? 0 : 2;
  if (!expect_promote.empty()) {
    bool promoted = false;
    for (std::size_t a = 0; a < res.arms.size(); ++a) {
      if (res.arms[a].name == expect_promote &&
          res.final_state[a] == exp::Action::kPromote) {
        promoted = true;
      }
    }
    if (!promoted) {
      std::fprintf(stderr, "FAIL: arm %s not promoted\n",
                   expect_promote.c_str());
      rc = 1;
    }
  }
  if (expect_alert && res.alerts_total == 0) {
    std::fprintf(stderr, "FAIL: no drift alert fired\n");
    rc = 1;
  }
  return rc;
}
