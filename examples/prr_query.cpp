// prr_query: the trace-store analytics CLI (DESIGN.md §14.4). Where
// prr_inspect re-runs connections live, prr_query works entirely offline
// from .prrstore files — the paper's own workflow, where tables are mined
// from persisted traces of production flows rather than recomputed.
//
//   prr_query sweep --out PREFIX [...]      run a sweep with capture on,
//                                           writing one store per arm
//   prr_query info STORE                    header meta + block geometry
//   prr_query records STORE [--conn ID]     human-readable record dump
//   prr_query agg STORE --field F [...]     filter/group-by/aggregate JSON
//   prr_query series STORE --conn ID [...]  (time, field) TSV for plotting
//   prr_query episodes STORE                episode table rebuilt from the
//                                           store (Tables 3/5/6/7 machinery)
//   prr_query table3 STORE                  Table 3 counters + ratios
//   prr_query critpath STORE [--conn ID]    where recovery latency went
//   prr_query merge OUT IN1 IN2 ...         merge fork-per-shard stores
//
// Aggregates: --field accepts at_ns|a|b|f0..f5 plus per-type aliases
// (--type ack --field cwnd). --group conn|type|time (+--bucket-ms N).
// Determinism: every byte printed (and every store written) is a pure
// function of the input store bytes.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "obs/flight_recorder.h"
#include "obs/query.h"
#include "obs/store/store_reader.h"
#include "obs/store/store_writer.h"
#include "util/checked_write.h"
#include "util/table.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

int usage() {
  std::printf(
      "usage: prr_query <command> [options]\n"
      "  sweep --out PREFIX       run a web sweep with capture on; writes\n"
      "                           PREFIX.<arm>.prrstore per arm\n"
      "    --capture SPEC         all | none | sample=N | full=TRIG|TRIG...\n"
      "                           | recovery_ms>=X | retx>=N   (default all)\n"
      "    --arm NAME             prr | rfc3517 | linux | all  (default all)\n"
      "    --connections N --first ID --seed S --threads T --chaos\n"
      "  info STORE               header meta + block/record accounting\n"
      "  records STORE            dump records (--conn ID, --limit N)\n"
      "  agg STORE --field F      count/sum/min/max[/mean] aggregate JSON\n"
      "    --type T               restrict to one record type (ack, ...)\n"
      "    --group conn|type|time group rows (--bucket-ms N, default 1000)\n"
      "    --conn-min A --conn-max B --sampled-only --full-only\n"
      "    --out FILE             also write the JSON to FILE\n"
      "  series STORE --conn ID   TSV time-series (--type ack --field cwnd)\n"
      "  episodes STORE           rebuild the episode table (--json, --out F)\n"
      "  table3 STORE             Table 3 counters + ratios from the store\n"
      "  critpath STORE           recovery-latency attribution (--conn ID)\n"
      "  merge OUT IN1 IN2 ...    merge disjoint-range stores into OUT\n"
      "  --no-verify              skip the digest check on open (read cmds)\n");
  return 2;
}

bool open_store(const std::string& path, bool verify,
                obs::StoreReader* reader) {
  std::string err;
  if (!obs::StoreReader::open(path, reader, &err, verify)) {
    std::fprintf(stderr, "prr_query: %s\n", err.c_str());
    return false;
  }
  return true;
}

int cmd_info(const obs::StoreReader& reader, const std::string& path) {
  const obs::StoreMeta& m = reader.meta();
  std::printf("store    %s\n", path.c_str());
  std::printf("version  %u\n", m.version);
  std::printf("seed     %" PRIu64 "\n", m.seed);
  std::printf("arm      %s\n", m.arm.c_str());
  std::printf("policy   %s\n", m.policy.c_str());
  std::printf("scenario %s\n", m.scenario.empty() ? "(none)"
                                                  : m.scenario.c_str());
  uint64_t payload = 0, full = 0, sampled = 0, truncated = 0;
  for (const auto& b : reader.blocks()) {
    payload += b.bytes;
    if (b.flags & obs::kBlockFull) ++full;
    if (b.flags & obs::kBlockSampled) ++sampled;
    if (b.flags & obs::kBlockTruncated) ++truncated;
  }
  std::printf("blocks   %zu (%" PRIu64 " full, %" PRIu64 " sampled, %" PRIu64
              " ring-truncated)\n",
              reader.blocks().size(), full, sampled, truncated);
  std::printf("conns    %zu\n", reader.connections().size());
  std::printf("records  %" PRIu64 " (%.2f payload bytes/record)\n",
              reader.total_records(),
              reader.total_records() == 0
                  ? 0.0
                  : static_cast<double>(payload) /
                        static_cast<double>(reader.total_records()));
  return 0;
}

int cmd_records(const obs::StoreReader& reader, int64_t conn,
                uint64_t limit) {
  std::vector<obs::TraceRecord> records;
  if (conn >= 0) {
    if (!reader.read_connection(static_cast<uint64_t>(conn), &records)) {
      std::fprintf(stderr, "prr_query: conn %lld failed to decode\n",
                   static_cast<long long>(conn));
      return 1;
    }
  } else {
    for (std::size_t i = 0; i < reader.blocks().size(); ++i) {
      if (limit != 0 && records.size() >= limit) break;
      if (!reader.read_block(i, &records)) {
        std::fprintf(stderr, "prr_query: block %zu failed to decode\n", i);
        return 1;
      }
    }
  }
  uint64_t shown = 0;
  for (const obs::TraceRecord& r : records) {
    if (limit != 0 && shown++ >= limit) break;
    std::printf("%s\n", obs::describe(r).c_str());
  }
  return 0;
}

int cmd_agg(const obs::StoreReader& reader, const obs::AggregateQuery& q,
            const std::string& out_file) {
  obs::AggregateResult result;
  std::string err;
  if (!obs::run_aggregate(reader, q, &result, &err)) {
    std::fprintf(stderr, "prr_query: %s\n", err.c_str());
    return 1;
  }
  const std::string json = result.to_json();
  std::printf("%s\n", json.c_str());
  if (!out_file.empty() && !util::checked_write_json(out_file, json)) {
    std::fprintf(stderr, "prr_query: short write to %s\n",
                 out_file.c_str());
    return 1;
  }
  return 0;
}

int cmd_series(const obs::StoreReader& reader, uint64_t conn,
               obs::TraceType type, obs::QueryField field) {
  std::vector<obs::SeriesPoint> series;
  std::string err;
  if (!obs::extract_series(reader, conn, type, field, &series, &err)) {
    std::fprintf(stderr, "prr_query: %s\n", err.c_str());
    return 1;
  }
  std::printf("# conn %" PRIu64 " type %s: time_ms\tvalue\n", conn,
              obs::to_string(type));
  for (const auto& pt : series) {
    std::printf("%.6f\t%" PRIu64 "\n",
                static_cast<double>(pt.at_ns) / 1e6, pt.value);
  }
  return 0;
}

int cmd_episodes(const obs::StoreReader& reader, bool as_json,
                 const std::string& out_file) {
  obs::EpisodeTable table;
  std::string err;
  if (!obs::episodes_from_store(reader, obs::QueryFilter{}, &table, &err)) {
    std::fprintf(stderr, "prr_query: %s\n", err.c_str());
    return 1;
  }
  if (as_json) {
    std::printf("%s\n", table.to_json().c_str());
  } else {
    std::printf("%s\n", table.summary_string().c_str());
  }
  if (!out_file.empty() &&
      !util::checked_write_json(out_file, table.to_json())) {
    std::fprintf(stderr, "prr_query: short write to %s\n",
                 out_file.c_str());
    return 1;
  }
  return 0;
}

int cmd_table3(const obs::StoreReader& reader) {
  obs::EpisodeTable table;
  std::string err;
  if (!obs::episodes_from_store(reader, obs::QueryFilter{}, &table, &err)) {
    std::fprintf(stderr, "prr_query: %s\n", err.c_str());
    return 1;
  }
  const auto& s = table.stream();
  auto ratio = [](uint64_t a, uint64_t b) {
    return b == 0 ? std::string("-")
                  : util::Table::fmt(static_cast<double>(a) /
                                         static_cast<double>(b),
                                     2);
  };
  auto ratio_pct = [](uint64_t a, uint64_t b) {
    return b == 0 ? std::string("-")
                  : util::Table::fmt_pct(static_cast<double>(a) /
                                         static_cast<double>(b));
  };
  std::printf("arm %s, %zu FR events (%" PRIu64 " undo)\n",
              reader.meta().arm.c_str(), table.total(), s.undo_events);
  util::Table t({"metric", "value"});
  t.add_row({"Fast retransmits / FR event",
             ratio(s.fast_retransmits, table.total())});
  t.add_row({"DSACKs / FR event",
             ratio_pct(s.dsacks_received, table.total())});
  t.add_row({"DSACKs / retransmit",
             ratio_pct(s.dsacks_received, s.retransmits_total)});
  t.add_row({"Lost fast retransmits / FR event",
             ratio_pct(s.lost_fast_retransmits, table.total())});
  t.add_row({"Lost retransmits / retransmit",
             ratio_pct(s.lost_retransmits_detected, s.retransmits_total)});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}

int cmd_critpath(const obs::StoreReader& reader, int64_t conn) {
  std::string err;
  if (conn >= 0) {
    obs::CriticalPathReport rep;
    if (!obs::critical_path(reader, static_cast<uint64_t>(conn), &rep,
                            &err)) {
      std::fprintf(stderr, "prr_query: %s\n", err.c_str());
      return 1;
    }
    std::printf("%s", obs::describe(rep).c_str());
    return 0;
  }
  obs::CriticalPathReport sum;
  for (uint64_t c : reader.connections()) {
    obs::CriticalPathReport rep;
    if (!obs::critical_path(reader, c, &rep, &err)) {
      std::fprintf(stderr, "prr_query: %s\n", err.c_str());
      return 1;
    }
    sum.merge(rep);
  }
  // describe() leads with "conn N:" — replace that with the real subject.
  std::string text = obs::describe(sum);
  text.erase(0, text.find(':') + 1);
  std::printf("all %zu stored connection(s):%s",
              reader.connections().size(), text.c_str());
  return 0;
}

int cmd_merge(const std::string& out,
              const std::vector<std::string>& inputs) {
  std::string err;
  if (!obs::merge_store_files(inputs, out, &err)) {
    std::fprintf(stderr, "prr_query: merge failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("merged %zu store(s) into %s\n", inputs.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  // --- flag parsing (shared across subcommands) ---
  std::string store_path, out_file, capture = "all", arm_name = "all";
  std::string field_name, group_name, type_name;
  std::vector<std::string> positional;
  int64_t conn = -1;
  uint64_t limit = 0, bucket_ms = 1000;
  obs::QueryFilter filter;
  bool verify = true, as_json = false, chaos = false;
  exp::RunOptions opts;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  for (int i = 2; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* a = argv[i];
    const char* v = nullptr;
    if (std::strcmp(a, "--no-verify") == 0) {
      verify = false;
    } else if (std::strcmp(a, "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(a, "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(a, "--sampled-only") == 0) {
      filter.include_full = false;
    } else if (std::strcmp(a, "--full-only") == 0) {
      filter.include_sampled = false;
    } else if (std::strcmp(a, "--conn") == 0) {
      if (!(v = need(a))) return 2;
      conn = std::atoll(v);
    } else if (std::strcmp(a, "--limit") == 0) {
      if (!(v = need(a))) return 2;
      limit = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--conn-min") == 0) {
      if (!(v = need(a))) return 2;
      filter.conn_min = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--conn-max") == 0) {
      if (!(v = need(a))) return 2;
      filter.conn_max = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--field") == 0) {
      if (!(v = need(a))) return 2;
      field_name = v;
    } else if (std::strcmp(a, "--type") == 0) {
      if (!(v = need(a))) return 2;
      type_name = v;
    } else if (std::strcmp(a, "--group") == 0) {
      if (!(v = need(a))) return 2;
      group_name = v;
    } else if (std::strcmp(a, "--bucket-ms") == 0) {
      if (!(v = need(a))) return 2;
      bucket_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--out") == 0) {
      if (!(v = need(a))) return 2;
      out_file = v;
    } else if (std::strcmp(a, "--capture") == 0) {
      if (!(v = need(a))) return 2;
      capture = v;
    } else if (std::strcmp(a, "--arm") == 0) {
      if (!(v = need(a))) return 2;
      arm_name = v;
    } else if (std::strcmp(a, "--connections") == 0) {
      if (!(v = need(a))) return 2;
      opts.connections = std::atoi(v);
    } else if (std::strcmp(a, "--first") == 0) {
      if (!(v = need(a))) return 2;
      opts.first_connection = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!(v = need(a))) return 2;
      opts.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(a, "--threads") == 0) {
      if (!(v = need(a))) return 2;
      opts.threads = std::atoi(v);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      return usage();
    } else {
      positional.push_back(a);
    }
  }

  if (cmd == "sweep") {
    if (out_file.empty()) {
      std::fprintf(stderr, "sweep requires --out PREFIX\n");
      return usage();
    }
    if (!obs::trace_compiled_in()) {
      std::printf("prr_query: tracing compiled out (PRR_TRACING=OFF); "
                  "stores would be empty. Rebuild with tracing.\n");
      return 0;
    }
    opts.store_path = out_file;
    opts.capture = capture;
    std::vector<exp::ArmConfig> arms;
    if (arm_name == "all") {
      arms = {exp::ArmConfig::prr_arm(), exp::ArmConfig::rfc3517_arm(),
              exp::ArmConfig::linux_arm()};
    } else if (arm_name == "prr") {
      arms = {exp::ArmConfig::prr_arm()};
    } else if (arm_name == "rfc3517") {
      arms = {exp::ArmConfig::rfc3517_arm()};
    } else if (arm_name == "linux") {
      arms = {exp::ArmConfig::linux_arm()};
    } else {
      std::fprintf(stderr, "unknown arm '%s'\n", arm_name.c_str());
      return 2;
    }
    workload::WebWorkload base;
    std::optional<exp::ChaosPopulation> chaos_pop;
    const workload::Population* pop = &base;
    if (chaos) {
      exp::ChaosSpec spec = exp::ChaosSpec::everything();
      opts.scenario = "chaos/" + spec.name;
      opts.check_invariants = true;
      chaos_pop.emplace(base, std::move(spec.profile));
      pop = &*chaos_pop;
    }
    const auto results = exp::run_arms(*pop, arms, opts);
    // Summarize from the writers' own accounting (carried on ArmResult),
    // not by reopening the files: StoreReader loads a store whole, which
    // would make the sweep's peak RSS scale with the kept bytes and undo
    // the streaming write path's flat-memory guarantee.
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::string path =
          obs::store_path_for_arm(out_file, arms[i].name);
      std::printf("%-10s %s: %" PRIu64 " conns, %" PRIu64 " records\n",
                  arms[i].name.c_str(), path.c_str(),
                  results[i].store_connections, results[i].store_records);
    }
    return 0;
  }

  if (cmd == "merge") {
    if (positional.size() < 2) {
      std::fprintf(stderr, "merge needs OUT and at least one IN\n");
      return usage();
    }
    return cmd_merge(positional[0],
                     {positional.begin() + 1, positional.end()});
  }

  // All remaining commands read one store.
  if (positional.empty()) {
    std::fprintf(stderr, "%s requires a STORE path\n", cmd.c_str());
    return usage();
  }
  store_path = positional[0];
  obs::StoreReader reader;
  if (!open_store(store_path, verify, &reader)) return 1;

  obs::TraceType type = obs::TraceType::kAck;
  if (!type_name.empty()) {
    if (!obs::parse_trace_type(type_name, &type)) {
      std::fprintf(stderr, "unknown record type '%s'\n", type_name.c_str());
      return 2;
    }
    filter.set_only_type(type);
  }

  if (cmd == "info") return cmd_info(reader, store_path);
  if (cmd == "records") return cmd_records(reader, conn, limit);
  if (cmd == "agg") {
    obs::AggregateQuery q;
    q.filter = filter;
    q.bucket_ns = static_cast<int64_t>(bucket_ms) * 1'000'000;
    if (group_name == "conn") {
      q.group = obs::GroupKey::kConn;
    } else if (group_name == "type") {
      q.group = obs::GroupKey::kType;
    } else if (group_name == "time") {
      q.group = obs::GroupKey::kTimeBucket;
    } else if (!group_name.empty()) {
      std::fprintf(stderr, "unknown group '%s' (want conn|type|time)\n",
                   group_name.c_str());
      return 2;
    }
    std::string err;
    if (field_name.empty()) field_name = "at_ns";
    if (!obs::parse_field(type, field_name, &q.field, &err)) {
      std::fprintf(stderr, "prr_query: %s\n", err.c_str());
      return 2;
    }
    return cmd_agg(reader, q, out_file);
  }
  if (cmd == "series") {
    if (conn < 0) {
      std::fprintf(stderr, "series requires --conn ID\n");
      return usage();
    }
    obs::QueryField field;
    std::string err;
    if (field_name.empty()) field_name = "cwnd";
    if (!obs::parse_field(type, field_name, &field, &err)) {
      std::fprintf(stderr, "prr_query: %s\n", err.c_str());
      return 2;
    }
    return cmd_series(reader, static_cast<uint64_t>(conn), type, field);
  }
  if (cmd == "episodes") return cmd_episodes(reader, as_json, out_file);
  if (cmd == "table3") return cmd_table3(reader);
  if (cmd == "critpath") return cmd_critpath(reader, conn);
  return usage();
}
