// Video streaming over a constrained path: one progressive-HTTP video
// transfer (initial burst, then encoder-rate throttling) on an
// India-like path, showing the recovery machinery of a long flow —
// recovery episodes, time in loss recovery, and goodput per algorithm.
//
// Usage: video_streaming [algorithm: prr|linux|rfc3517] [seed]
#include <cstdio>
#include <cstring>
#include <memory>

#include "exp/experiment.h"
#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/table.h"
#include "workload/video_workload.h"

using namespace prr;

int main(int argc, char** argv) {
  tcp::RecoveryKind kind = tcp::RecoveryKind::kPrr;
  const char* name = "prr";
  if (argc > 1) {
    name = argv[1];
    if (std::strcmp(argv[1], "linux") == 0)
      kind = tcp::RecoveryKind::kLinuxRateHalving;
    else if (std::strcmp(argv[1], "rfc3517") == 0)
      kind = tcp::RecoveryKind::kRfc3517;
  }
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  workload::VideoWorkload pop;
  sim::Rng rng(seed);
  workload::ConnectionSample sample = pop.sample(rng.fork(100));

  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.recovery = kind;
  cfg.sender.handshake_rtt = sample.rtt;
  cfg.receiver.dsack_enabled = sample.client_dsack;
  cfg.path = net::Path::Config::symmetric(sample.bandwidth, sample.rtt,
                                          sample.queue_packets);

  tcp::Metrics metrics;
  stats::RecoveryLog rlog;
  tcp::Connection conn(sim, cfg, rng.fork(101), &metrics, &rlog);
  if (sample.loss.p_good_to_bad > 0) {
    conn.path().data_link().set_loss_model(
        std::make_unique<net::GilbertElliottLoss>(sample.loss,
                                                  rng.fork(102)));
  }

  stats::LatencyTracker latency;
  http::ServerApp app(sim, conn, sample.responses, &latency);
  app.start();
  sim.run(sim::Time::seconds(900));

  const auto& resp = latency.responses().at(0);
  std::printf("video transfer with %s recovery\n", name);
  std::printf("  path: %.2f Mbps, RTT %lld ms, queue %zu pkts, burst "
              "loss p=%.4f\n",
              sample.bandwidth.mbps_d(), (long long)sample.rtt.ms(),
              sample.queue_packets, sample.loss.p_good_to_bad);
  std::printf("  transfer: %llu bytes in %.1f s (goodput %.0f kbps)\n",
              (unsigned long long)resp.bytes, resp.latency_ms() / 1000.0,
              resp.bytes * 8.0 / resp.latency_ms());
  std::printf("  network transmit time: %.1f s, in loss recovery: %.1f s "
              "(%.0f%%)\n",
              conn.sender().network_transmit_time().seconds_d(),
              conn.sender().loss_recovery_time().seconds_d(),
              conn.sender().network_transmit_time().seconds_d() > 0
                  ? conn.sender().loss_recovery_time() /
                        conn.sender().network_transmit_time() * 100
                  : 0.0);
  std::printf("  recovery episodes: %zu, fast retransmits: %llu, "
              "timeouts: %llu, lost fast retransmits: %llu\n",
              rlog.count(), (unsigned long long)metrics.fast_retransmits,
              (unsigned long long)metrics.timeouts_total,
              (unsigned long long)metrics.lost_fast_retransmits);

  util::Table t({"episode", "start [s]", "dur [ms]", "retx",
                 "burst [segs]", "cwnd after [segs]", "timeout?"});
  int i = 0;
  for (const auto& e : rlog.events()) {
    if (++i > 12) break;  // first dozen is plenty for a demo
    t.add_row({std::to_string(i), util::Table::fmt(e.start.seconds_d(), 1),
               util::Table::fmt(e.duration().ms_d(), 0),
               std::to_string(e.retransmits),
               std::to_string(e.max_burst_segments),
               util::Table::fmt(e.cwnd_after_exit_segs(), 0),
               e.interrupted_by_timeout ? "yes" : "no"});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
