// Lossy-link explorer: run one of the paper's deterministic-drop
// scenarios with a chosen recovery algorithm and dump the raw
// time-sequence trace as CSV (for plotting) plus summary counters.
//
// Usage: lossy_link_explorer [prr|prr-crb|prr-ub|linux|rfc3517]
//                            [fig2|fig3|fig4] [--csv | --pcap <file>]
// The CSV goes to stdout for plotting; --pcap writes a Wireshark-
// compatible capture of the run; the ASCII view is the default.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "exp/scenarios.h"

using namespace prr;

int main(int argc, char** argv) {
  std::string algo = argc > 1 ? argv[1] : "prr";
  std::string fig = argc > 2 ? argv[2] : "fig2";
  const bool csv = argc > 3 && std::strcmp(argv[3], "--csv") == 0;
  const char* pcap_path =
      (argc > 4 && std::strcmp(argv[3], "--pcap") == 0) ? argv[4] : nullptr;

  tcp::RecoveryKind kind = tcp::RecoveryKind::kPrr;
  core::ReductionBound bound = core::ReductionBound::kSlowStart;
  if (algo == "linux") kind = tcp::RecoveryKind::kLinuxRateHalving;
  else if (algo == "rfc3517") kind = tcp::RecoveryKind::kRfc3517;
  else if (algo == "prr-crb") bound = core::ReductionBound::kConservative;
  else if (algo == "prr-ub") bound = core::ReductionBound::kUnlimited;

  exp::FigureScenario scenario =
      fig == "fig3" ? exp::FigureScenario::fig3(kind)
      : fig == "fig4" ? exp::FigureScenario::fig4(kind)
                      : exp::FigureScenario::fig2(kind);
  scenario.prr_bound = bound;
  if (pcap_path != nullptr) scenario.pcap_path = pcap_path;

  exp::FigureRun run = exp::run_figure_scenario(scenario);
  if (pcap_path != nullptr) {
    std::printf("wrote capture to %s\n", pcap_path);
  }
  if (csv) {
    run.trace.write_csv(std::cout);
    return 0;
  }
  std::printf("%s on %s\n\n%s\n", algo.c_str(), fig.c_str(),
              run.trace.render_ascii().c_str());
  std::printf("segments=%llu retransmits=%llu fast=%llu timeouts=%llu "
              "recoveries=%llu\nall data ACKed at %lld ms\n",
              (unsigned long long)run.metrics.data_segments_sent,
              (unsigned long long)run.metrics.retransmits_total,
              (unsigned long long)run.metrics.fast_retransmits,
              (unsigned long long)run.metrics.timeouts_total,
              (unsigned long long)run.metrics.fast_recovery_events,
              (long long)run.all_acked_at.ms());
  return 0;
}
