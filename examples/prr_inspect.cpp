// prr_inspect: the episode-analytics CLI (DESIGN.md §9). Three views of
// the same machinery:
//
//   prr_inspect episodes [--connections N] [--seed S]
//       Run the standard 3-arm web sweep and print each arm's episode
//       table: counts, exit breakdown, stream counters, log2-histogram
//       percentiles. This is Tables 3/5/6/7 viewed as one object.
//
//   prr_inspect dump --conn ID [--arm NAME] [--connections N] [--seed S]
//       Re-run one connection in isolation under one arm and print every
//       recovery episode with its per-ACK ledger: DeliveredData, sndcnt,
//       pipe vs ssthresh, the PRR internals, the exit, and the first
//       post-recovery cwnd samples.
//
//   prr_inspect diff --conn ID [--arm NAME] [--arm-b NAME] [...]
//       Run the SAME connection under two arms. Common random numbers
//       make the sample paths identical, so the streams match record for
//       record until the first divergent sender decision; print that
//       decision with context and write a paired Perfetto trace
//       (prr_diff_connID.json, arm A = pid 1, arm B = pid 2) with FIRST
//       DIVERGENCE markers. Drop it into https://ui.perfetto.dev.
//
// `episodes` and `dump` also take --store FILE (a .prrstore written by a
// captured sweep, DESIGN.md §14): the same analyses run offline from the
// persisted records — no re-simulation, and no tracing requirement in
// the inspecting binary.
//
// Arms: prr (default), rfc3517, linux. Defaults: 2000 connections,
// seed 42 — matching exp::RunOptions, so episode counts line up with
// the other examples out of the box.
//
// Requires tracing compiled in (-DPRR_TRACING=ON, the default); prints
// a skip message otherwise.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/episodes.h"
#include "obs/flight_recorder.h"
#include "obs/query.h"
#include "obs/store/store_reader.h"
#include "obs/trace_diff.h"
#include "util/artifacts.h"
#include "workload/arrival.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

int usage() {
  std::printf(
      "usage: prr_inspect <episodes|dump|diff> [options]\n"
      "  episodes                 per-arm episode tables for the web sweep\n"
      "  dump --conn ID           one connection's episodes + ACK ledgers\n"
      "  diff --conn ID           first divergent decision between two arms\n"
      "options:\n"
      "  --store FILE             read a .prrstore instead of re-running\n"
      "                           (episodes and dump only)\n"
      "  --arm NAME               prr | rfc3517 | linux   (default prr)\n"
      "  --arm-b NAME             second arm for diff     (default rfc3517)\n"
      "  --conn ID                connection id for dump/diff\n"
      "  --connections N          sweep size              (default 2000)\n"
      "  --first ID               first connection id     (default 0)\n"
      "  --seed S                 experiment seed         (default 42)\n"
      "  --loss-scale X           scale loss regime, as in a drift alert\n"
      "  --rtt-scale X            scale RTTs\n"
      "  --bandwidth-scale X      scale access-link bandwidth\n"
      "The regime scales replay an experiment-service quarantined window:\n"
      "paste the alert's first_connection/connections/seed/scales here.\n");
  return 2;
}

// Accepts both the CLI short names and the display names the experiment
// service prints in its triage commands ("PRR", "RFC 3517", "Linux"):
// case-insensitive, spaces/underscores/hyphens ignored.
bool parse_arm(const char* name, exp::ArmConfig* out) {
  std::string key;
  for (const char* p = name; *p != '\0'; ++p) {
    if (*p == ' ' || *p == '_' || *p == '-') continue;
    key.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (key == "prr") {
    *out = exp::ArmConfig::prr_arm();
  } else if (key == "rfc3517") {
    *out = exp::ArmConfig::rfc3517_arm();
  } else if (key == "linux") {
    *out = exp::ArmConfig::linux_arm();
  } else {
    std::printf("unknown arm '%s' (want prr, rfc3517 or linux)\n", name);
    return false;
  }
  return true;
}

// --- store-backed views (offline: no sweep, no tracing requirement) ---

int cmd_episodes_store(const obs::StoreReader& reader) {
  std::printf("store: arm %s, seed %llu, policy %s\n\n",
              reader.meta().arm.c_str(),
              (unsigned long long)reader.meta().seed,
              reader.meta().policy.c_str());
  obs::EpisodeTable table;
  std::string err;
  if (!obs::episodes_from_store(reader, obs::QueryFilter{}, &table, &err)) {
    std::printf("store decode failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("==== arm %s (from store) ====\n%s\n",
              reader.meta().arm.c_str(), table.summary_string().c_str());
  return 0;
}

int cmd_dump_store(const obs::StoreReader& reader, uint64_t conn) {
  std::printf("connection %llu from store (arm %s, seed %llu)\n",
              (unsigned long long)conn, reader.meta().arm.c_str(),
              (unsigned long long)reader.meta().seed);
  std::vector<obs::TraceRecord> records;
  if (!reader.read_connection(conn, &records)) {
    std::printf("store decode failed for conn %llu\n",
                (unsigned long long)conn);
    return 1;
  }
  if (records.empty()) {
    std::printf("connection %llu is not in this store — the capture "
                "policy (%s) did not keep it. Try prr_query info.\n",
                (unsigned long long)conn, reader.meta().policy.c_str());
    return 0;
  }
  obs::EpisodeBuilder builder(obs::EpisodeBuilder::Options{
      /*keep_ledgers=*/true});
  for (const obs::TraceRecord& r : records) builder.on_record(r);
  builder.finish();
  std::printf("%zu stored records, %zu episode(s)\n\n", records.size(),
              builder.episodes().size());
  if (builder.episodes().empty()) {
    std::printf("no recovery episodes in the stored slice.\n");
    return 0;
  }
  for (std::size_t i = 0; i < builder.episodes().size(); ++i) {
    std::printf("---- episode %zu/%zu ----\n%s\n", i + 1,
                builder.episodes().size(),
                obs::describe(builder.episodes()[i]).c_str());
  }
  return 0;
}

int cmd_episodes(const workload::Population& pop,
                 const exp::RunOptions& opts) {
  const std::vector<exp::ArmConfig> arms = {exp::ArmConfig::prr_arm(),
                                            exp::ArmConfig::rfc3517_arm(),
                                            exp::ArmConfig::linux_arm()};
  std::printf("web sweep: ids [%llu, %llu), seed %llu, 3 arms\n\n",
              (unsigned long long)opts.first_connection,
              (unsigned long long)(opts.first_connection +
                                   (uint64_t)opts.connections),
              (unsigned long long)opts.seed);
  const auto results = exp::run_arms(pop, arms, opts);
  for (const auto& r : results) {
    std::printf("==== arm %s ====\n%s\n", r.name.c_str(),
                r.episodes.summary_string().c_str());
  }
  return 0;
}

int cmd_dump(const workload::Population& pop, const exp::RunOptions& opts,
             const exp::ArmConfig& arm, uint64_t conn) {
  std::printf("connection %llu under arm %s (seed %llu)\n",
              (unsigned long long)conn, arm.name.c_str(),
              (unsigned long long)opts.seed);
  const exp::TracedConnection t =
      exp::trace_connection(pop, arm, opts, conn);
  std::printf("%zu trace records, %zu episode(s)%s%s\n\n",
              t.records.size(), t.episodes.size(),
              t.aborted ? ", ABORTED" : "",
              t.all_acked ? ", fully acked" : "");
  if (t.episodes.empty()) {
    std::printf("no recovery episodes: this connection never entered "
                "fast recovery. Try another id.\n");
    return 0;
  }
  for (std::size_t i = 0; i < t.episodes.size(); ++i) {
    std::printf("---- episode %zu/%zu ----\n%s\n", i + 1,
                t.episodes.size(), obs::describe(t.episodes[i]).c_str());
  }
  return 0;
}

int cmd_diff(const workload::Population& pop, const exp::RunOptions& opts,
             const exp::ArmConfig& arm_a, const exp::ArmConfig& arm_b,
             uint64_t conn) {
  std::printf("connection %llu: %s vs %s (seed %llu, CRN-aligned)\n\n",
              (unsigned long long)conn, arm_a.name.c_str(),
              arm_b.name.c_str(), (unsigned long long)opts.seed);
  const exp::TracedConnection a =
      exp::trace_connection(pop, arm_a, opts, conn);
  const exp::TracedConnection b =
      exp::trace_connection(pop, arm_b, opts, conn);
  std::printf("%-10s %zu records, %zu episode(s)\n", arm_a.name.c_str(),
              a.records.size(), a.episodes.size());
  std::printf("%-10s %zu records, %zu episode(s)\n\n", arm_b.name.c_str(),
              b.records.size(), b.episodes.size());

  const obs::DivergencePoint d =
      obs::first_divergence(a.records, b.records);
  std::printf("%s\n",
              obs::explain_divergence(d, arm_a.name, arm_b.name).c_str());

  char name[64];
  std::snprintf(name, sizeof(name), "prr_diff_conn%llu.json",
                (unsigned long long)conn);
  const std::string path = util::artifact_path(name);
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string json =
        obs::perfetto_diff_json(a.records, b.records, arm_a.name,
                                arm_b.name);
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok) {
      std::printf("wrote %s -- open it at https://ui.perfetto.dev "
                  "(%s = pid 1, %s = pid 2)\n",
                  path.c_str(), arm_a.name.c_str(), arm_b.name.c_str());
    } else {
      std::printf("short write to %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string store_path;
  exp::ArmConfig arm_a = exp::ArmConfig::prr_arm();
  exp::ArmConfig arm_b = exp::ArmConfig::rfc3517_arm();
  int64_t conn = -1;
  exp::RunOptions opts;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.collect_episodes = true;
  // Always-active path regime (identity unless the --*-scale flags are
  // given) — replays the exact scaling an experiment-service drift
  // alert recorded for its quarantined window.
  workload::RegimeShift regime;

  for (int i = 2; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--store") == 0) {
      const char* v = need("--store");
      if (!v) return 2;
      store_path = v;
    } else if (std::strcmp(argv[i], "--arm") == 0) {
      const char* v = need("--arm");
      if (!v || !parse_arm(v, &arm_a)) return 2;
    } else if (std::strcmp(argv[i], "--arm-b") == 0) {
      const char* v = need("--arm-b");
      if (!v || !parse_arm(v, &arm_b)) return 2;
    } else if (std::strcmp(argv[i], "--conn") == 0) {
      const char* v = need("--conn");
      if (!v) return 2;
      conn = std::atoll(v);
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      const char* v = need("--connections");
      if (!v) return 2;
      opts.connections = std::atoi(v);
    } else if (std::strcmp(argv[i], "--first") == 0) {
      const char* v = need("--first");
      if (!v) return 2;
      opts.first_connection = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need("--seed");
      if (!v) return 2;
      opts.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--loss-scale") == 0) {
      const char* v = need("--loss-scale");
      if (!v) return 2;
      regime.loss_scale = std::atof(v);
    } else if (std::strcmp(argv[i], "--rtt-scale") == 0) {
      const char* v = need("--rtt-scale");
      if (!v) return 2;
      regime.rtt_scale = std::atof(v);
    } else if (std::strcmp(argv[i], "--bandwidth-scale") == 0) {
      const char* v = need("--bandwidth-scale");
      if (!v) return 2;
      regime.bandwidth_scale = std::atof(v);
    } else {
      std::printf("unknown option '%s'\n", argv[i]);
      return usage();
    }
  }

  // Store-backed paths first: they need neither a sweep nor tracing in
  // this binary (records were captured by whoever wrote the store).
  if (!store_path.empty()) {
    if (cmd == "diff") {
      std::printf("diff re-runs two arms live and cannot use --store\n");
      return 2;
    }
    obs::StoreReader reader;
    std::string err;
    if (!obs::StoreReader::open(store_path, &reader, &err)) {
      std::printf("prr_inspect: %s\n", err.c_str());
      return 1;
    }
    if (cmd == "episodes") return cmd_episodes_store(reader);
    if (cmd == "dump") {
      if (conn < 0) {
        std::printf("dump requires --conn ID\n");
        return usage();
      }
      return cmd_dump_store(reader, static_cast<uint64_t>(conn));
    }
    return usage();
  }

  if (!obs::trace_compiled_in()) {
    std::printf("prr_inspect: tracing compiled out (PRR_TRACING=OFF); "
                "rebuild with tracing (or pass --store) to use the "
                "inspector.\n");
    return 0;
  }

  workload::WebWorkload base;
  workload::RegimeSchedule sched;
  if (!regime.is_identity()) {
    sched.shifts.push_back(regime);  // active from t = 0
    std::printf("regime: loss x%g, rtt x%g, bandwidth x%g\n",
                regime.loss_scale, regime.rtt_scale,
                regime.bandwidth_scale);
  }
  workload::RegimePopulation pop(base, sched);
  pop.set_window_time(sim::Time::zero());

  if (cmd == "episodes") return cmd_episodes(pop, opts);
  if (cmd == "dump" || cmd == "diff") {
    if (conn < 0) {
      std::printf("%s requires --conn ID\n", cmd.c_str());
      return usage();
    }
    if (cmd == "dump") {
      return cmd_dump(pop, opts, arm_a, static_cast<uint64_t>(conn));
    }
    return cmd_diff(pop, opts, arm_a, arm_b, static_cast<uint64_t>(conn));
  }
  return usage();
}
