#include "tcp/cc/newreno.h"

#include <algorithm>

namespace prr::tcp {

uint64_t NewReno::ssthresh_after_loss(uint64_t cwnd_bytes) {
  return std::max<uint64_t>(cwnd_bytes / 2, 2 * mss_);
}

uint64_t NewReno::on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                         uint64_t acked_bytes, sim::Time) {
  if (cwnd_bytes < ssthresh_bytes) {
    // Slow start: grow by the data ACKed, at most one MSS per ACK
    // (RFC 5681 with L = 1*SMSS).
    return cwnd_bytes + std::min<uint64_t>(acked_bytes, mss_);
  }
  // Congestion avoidance: one MSS per window of data ACKed.
  avoid_acc_ += acked_bytes;
  if (avoid_acc_ >= cwnd_bytes) {
    avoid_acc_ -= cwnd_bytes;
    return cwnd_bytes + mss_;
  }
  return cwnd_bytes;
}

}  // namespace prr::tcp
