// CUBIC (Ha, Rhee, Xu 2008): beta = 0.7 multiplicative decrease — the 30%
// reduction the paper's proportional-part example uses ("seven new
// segments for every ten incoming ACKs") — and real-time cubic window
// growth with a TCP-friendly region.
#pragma once

#include "tcp/cc/congestion_control.h"

namespace prr::tcp {

class Cubic final : public CongestionControl {
 public:
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;  // segments / s^3

  explicit Cubic(uint32_t mss) : mss_(mss) {}

  uint64_t ssthresh_after_loss(uint64_t cwnd_bytes) override;
  uint64_t on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                  uint64_t acked_bytes, sim::Time now) override;
  void on_timeout(sim::Time now) override;
  std::string name() const override { return "cubic"; }

 private:
  double w_max_segs_ = 0;      // window before the last reduction
  sim::Time epoch_start_ = sim::Time::zero();
  bool epoch_valid_ = false;
  double k_ = 0;               // time to regain w_max (seconds)
  double w_est_segs_ = 0;      // TCP-friendly (Reno-equivalent) window
  double est_acc_segs_ = 0;

  uint32_t mss_;
};

}  // namespace prr::tcp
