// GAIMD (Yang & Lam 2000): general AIMD with additive increase alpha
// (segments per RTT) and multiplicative decrease beta. Included because
// the paper stresses PRR composes with any (alpha, beta) choice; the
// reduction-bound ablation bench sweeps beta through it.
#pragma once

#include "tcp/cc/congestion_control.h"

namespace prr::tcp {

class Gaimd final : public CongestionControl {
 public:
  Gaimd(uint32_t mss, double alpha = 1.0, double beta = 0.5)
      : mss_(mss), alpha_(alpha), beta_(beta) {}

  uint64_t ssthresh_after_loss(uint64_t cwnd_bytes) override;
  uint64_t on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                  uint64_t acked_bytes, sim::Time now) override;
  void on_timeout(sim::Time /*now*/) override {}
  std::string name() const override { return "gaimd"; }

  double beta() const { return beta_; }

 private:
  uint32_t mss_;
  double alpha_;
  double beta_;
  uint64_t avoid_acc_ = 0;
};

}  // namespace prr::tcp
