// Classic Reno/NewReno window rules: halve on loss, slow start below
// ssthresh, +1 MSS per RTT in congestion avoidance.
#pragma once

#include "tcp/cc/congestion_control.h"

namespace prr::tcp {

class NewReno final : public CongestionControl {
 public:
  explicit NewReno(uint32_t mss) : mss_(mss) {}

  uint64_t ssthresh_after_loss(uint64_t cwnd_bytes) override;
  uint64_t on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                  uint64_t acked_bytes, sim::Time now) override;
  void on_timeout(sim::Time /*now*/) override {}
  std::string name() const override { return "newreno"; }

 private:
  uint32_t mss_;
  uint64_t avoid_acc_ = 0;  // byte accumulator for congestion avoidance
};

}  // namespace prr::tcp
