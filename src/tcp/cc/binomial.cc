#include "tcp/cc/binomial.h"

#include <algorithm>
#include <cmath>

namespace prr::tcp {

uint64_t Binomial::ssthresh_after_loss(uint64_t cwnd_bytes) {
  const double w = static_cast<double>(cwnd_bytes) / mss_;
  const double target = std::max(w - beta_ * std::pow(w, l_), 2.0);
  return static_cast<uint64_t>(target * mss_);
}

uint64_t Binomial::on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                          uint64_t acked_bytes, sim::Time) {
  if (cwnd_bytes < ssthresh_bytes) {
    return cwnd_bytes + std::min<uint64_t>(acked_bytes, mss_);
  }
  // Per-RTT increase of alpha / w^k segments, accumulated per ACK: each
  // window's worth of ACKed bytes adds the full per-RTT quantum.
  const double w = static_cast<double>(cwnd_bytes) / mss_;
  increase_acc_segs_ +=
      (alpha_ / std::pow(w, k_)) * (static_cast<double>(acked_bytes) /
                                    static_cast<double>(cwnd_bytes));
  if (increase_acc_segs_ >= 1.0) {
    increase_acc_segs_ -= 1.0;
    return cwnd_bytes + mss_;
  }
  return cwnd_bytes;
}

}  // namespace prr::tcp
