// Pluggable congestion control. PRR is explicitly designed to work with
// any of these (§4: "both parts of the PRR algorithm are independent of
// the congestion control algorithm"); the recovery policies only consume
// the ssthresh each CC chooses. All window quantities are bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/time.h"

namespace prr::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Target window after a loss event (the paper's CongCtrlAlg()).
  virtual uint64_t ssthresh_after_loss(uint64_t cwnd_bytes) = 0;

  // Window growth for an ACK of `acked_bytes` received in the Open state.
  // Returns the new cwnd. `in_slow_start` is cwnd < ssthresh.
  virtual uint64_t on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                          uint64_t acked_bytes, sim::Time now) = 0;

  // Resets epoch state after an RTO.
  virtual void on_timeout(sim::Time now) = 0;

  virtual std::string name() const = 0;
};

enum class CcKind { kNewReno, kCubic, kGaimd, kBinomial };

// `gaimd_alpha`/`gaimd_beta` only apply to kGaimd (additive increase in
// segments per RTT, multiplicative decrease factor).
std::unique_ptr<CongestionControl> make_congestion_control(
    CcKind kind, uint32_t mss, double gaimd_alpha = 1.0,
    double gaimd_beta = 0.5);

// Pool-recycle support: rewinds `cc` in place to exactly the state
// make_congestion_control(kind, mss, gaimd_alpha, gaimd_beta) would
// construct, with no allocation. Returns false when `cc` is not an
// instance of `kind` — the caller then recreates via the factory.
bool reset_congestion_control(CongestionControl& cc, CcKind kind,
                              uint32_t mss, double gaimd_alpha = 1.0,
                              double gaimd_beta = 0.5);

}  // namespace prr::tcp
