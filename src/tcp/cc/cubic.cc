#include "tcp/cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace prr::tcp {

uint64_t Cubic::ssthresh_after_loss(uint64_t cwnd_bytes) {
  const double cwnd_segs = static_cast<double>(cwnd_bytes) / mss_;
  w_max_segs_ = cwnd_segs;
  epoch_valid_ = false;  // epoch restarts on the first ACK after recovery
  const double target = std::max(cwnd_segs * kBeta, 2.0);
  return static_cast<uint64_t>(target * mss_);
}

uint64_t Cubic::on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                       uint64_t acked_bytes, sim::Time now) {
  if (cwnd_bytes < ssthresh_bytes) {
    return cwnd_bytes + std::min<uint64_t>(acked_bytes, mss_);
  }
  const double cwnd_segs = static_cast<double>(cwnd_bytes) / mss_;
  if (!epoch_valid_) {
    epoch_valid_ = true;
    epoch_start_ = now;
    if (w_max_segs_ < cwnd_segs) w_max_segs_ = cwnd_segs;
    k_ = std::cbrt(w_max_segs_ * (1.0 - kBeta) / kC);
    w_est_segs_ = cwnd_segs;
    est_acc_segs_ = 0;
  }
  const double t = (now - epoch_start_).seconds_d();
  const double target =
      w_max_segs_ + kC * (t - k_) * (t - k_) * (t - k_);

  // TCP-friendly region: emulate Reno/AIMD growth with the CUBIC-adjusted
  // additive factor 3*(1-beta)/(1+beta) per RTT (approximated per ACK).
  est_acc_segs_ += static_cast<double>(acked_bytes) / mss_;
  const double alpha = 3.0 * (1.0 - kBeta) / (1.0 + kBeta);
  if (est_acc_segs_ >= w_est_segs_) {
    est_acc_segs_ -= w_est_segs_;
    w_est_segs_ += alpha;
  }

  double next = cwnd_segs;
  const double goal = std::max(target, w_est_segs_);
  if (goal > cwnd_segs) {
    // Spread the climb over roughly one RTT of ACKs.
    next = cwnd_segs + (goal - cwnd_segs) / cwnd_segs;
  }
  next = std::max(next, 2.0);
  return static_cast<uint64_t>(next * mss_);
}

void Cubic::on_timeout(sim::Time) {
  epoch_valid_ = false;
  w_max_segs_ = 0;
  w_est_segs_ = 0;
  est_acc_segs_ = 0;
}

}  // namespace prr::tcp
