#include "tcp/cc/gaimd.h"

#include <algorithm>
#include <cmath>

#include "tcp/cc/cubic.h"
#include "tcp/cc/binomial.h"
#include "tcp/cc/newreno.h"

namespace prr::tcp {

uint64_t Gaimd::ssthresh_after_loss(uint64_t cwnd_bytes) {
  const double target = std::max(static_cast<double>(cwnd_bytes) * beta_,
                                 2.0 * mss_);
  return static_cast<uint64_t>(target);
}

uint64_t Gaimd::on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                       uint64_t acked_bytes, sim::Time) {
  if (cwnd_bytes < ssthresh_bytes) {
    return cwnd_bytes + std::min<uint64_t>(acked_bytes, mss_);
  }
  avoid_acc_ += acked_bytes;
  if (avoid_acc_ >= cwnd_bytes) {
    avoid_acc_ -= cwnd_bytes;
    return cwnd_bytes + static_cast<uint64_t>(alpha_ * mss_);
  }
  return cwnd_bytes;
}

std::unique_ptr<CongestionControl> make_congestion_control(
    CcKind kind, uint32_t mss, double gaimd_alpha, double gaimd_beta) {
  switch (kind) {
    case CcKind::kNewReno:
      return std::make_unique<NewReno>(mss);
    case CcKind::kCubic:
      return std::make_unique<Cubic>(mss);
    case CcKind::kGaimd:
      return std::make_unique<Gaimd>(mss, gaimd_alpha, gaimd_beta);
    case CcKind::kBinomial:
      return std::make_unique<Binomial>(mss);  // IIAD defaults (k=1, l=0)
  }
  return nullptr;
}

bool reset_congestion_control(CongestionControl& cc, CcKind kind,
                              uint32_t mss, double gaimd_alpha,
                              double gaimd_beta) {
  // Copy-assignment from a freshly constructed instance is the poison-
  // proof definition of "reset": the recycled object is byte-for-byte
  // what the factory would have produced.
  switch (kind) {
    case CcKind::kNewReno:
      if (auto* p = dynamic_cast<NewReno*>(&cc)) {
        *p = NewReno(mss);
        return true;
      }
      return false;
    case CcKind::kCubic:
      if (auto* p = dynamic_cast<Cubic*>(&cc)) {
        *p = Cubic(mss);
        return true;
      }
      return false;
    case CcKind::kGaimd:
      if (auto* p = dynamic_cast<Gaimd*>(&cc)) {
        *p = Gaimd(mss, gaimd_alpha, gaimd_beta);
        return true;
      }
      return false;
    case CcKind::kBinomial:
      if (auto* p = dynamic_cast<Binomial*>(&cc)) {
        *p = Binomial(mss);
        return true;
      }
      return false;
  }
  return false;
}

}  // namespace prr::tcp
