// Binomial congestion control (Bansal & Balakrishnan 2001), the other
// family the paper's reviewers asked about. Generalizes AIMD:
//   increase: w += alpha / w^k   per RTT
//   decrease: w -= beta * w^l    per loss event
// (k=0, l=1) is AIMD; (k=1, l=0) is IIAD; (k=l=1/2) is SQRT. Like GAIMD,
// it only determines ssthresh and growth — PRR handles the reduction
// pacing regardless of the rule.
#pragma once

#include "tcp/cc/congestion_control.h"

namespace prr::tcp {

class Binomial final : public CongestionControl {
 public:
  Binomial(uint32_t mss, double k = 1.0, double l = 0.0,
           double alpha = 1.0, double beta = 1.0)
      : mss_(mss), k_(k), l_(l), alpha_(alpha), beta_(beta) {}

  uint64_t ssthresh_after_loss(uint64_t cwnd_bytes) override;
  uint64_t on_ack(uint64_t cwnd_bytes, uint64_t ssthresh_bytes,
                  uint64_t acked_bytes, sim::Time now) override;
  void on_timeout(sim::Time /*now*/) override {}
  std::string name() const override { return "binomial"; }

 private:
  uint32_t mss_;
  double k_, l_, alpha_, beta_;
  double increase_acc_segs_ = 0;
};

}  // namespace prr::tcp
