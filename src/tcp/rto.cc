#include "tcp/rto.h"

#include <algorithm>

namespace prr::tcp {

void RtoEstimator::on_rtt_sample(sim::Time rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // RFC 6298: alpha = 1/8, beta = 1/4.
  const sim::Time err = rtt >= srtt_ ? rtt - srtt_ : srtt_ - rtt;
  rttvar_ = rttvar_ * 3 / 4 + err / 4;
  srtt_ = srtt_ * 7 / 8 + rtt / 8;
}

sim::Time RtoEstimator::rto() const {
  sim::Time base = has_sample_ ? srtt_ + 4 * rttvar_ : config_.initial_rto;
  base = std::max(base, config_.min_rto);
  for (int i = 0; i < backoff_shift_; ++i) {
    base = base * 2;
    if (base >= config_.max_rto) break;
  }
  return std::min(base, config_.max_rto);
}

sim::Time RtoEstimator::backoff() {
  ++backoff_shift_;
  return rto();
}

}  // namespace prr::tcp
