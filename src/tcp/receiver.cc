#include "tcp/receiver.h"

#include <algorithm>
#include <utility>

namespace prr::tcp {

Receiver::Receiver(sim::Simulator& sim, Config config, SendAckFn send_ack)
    : sim_(sim),
      config_(config),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { send_ack_now(std::nullopt); }),
      renege_timer_(sim, [this] { renege(); }) {
  quickack_left_ = config_.quickack_segments;
  if (!config_.renege_at.is_zero()) {
    renege_timer_.start(config_.renege_at - sim_.now());
  }
}

void Receiver::reset(Config config) {
  config_ = config;
  delack_timer_.stop();  // stale after Simulator::reset; stop() clears
  renege_timer_.stop();
  rcv_nxt_ = 0;
  ooo_.clear();
  recency_counter_ = 0;
  unacked_segments_ = 0;
  ts_recent_ = 0;
  quickack_left_ = config_.quickack_segments;
  ece_pending_ = false;
  segments_received_ = 0;
  duplicate_segments_ = 0;
  acks_sent_ = 0;
  reneged_bytes_ = 0;
  if (!config_.renege_at.is_zero()) {
    renege_timer_.start(config_.renege_at - sim_.now());
  }
}

void Receiver::renege() {
  // Memory pressure: the OOO queue is dropped wholesale. Subsequent ACKs
  // carry no SACK blocks for the discarded data, and retransmissions of
  // it are treated as fresh arrivals (covered() no longer claims them).
  for (const auto& b : ooo_) reneged_bytes_ += b.end - b.start;
  ooo_.clear();
  if (reneged_bytes_ > 0) send_ack_now(std::nullopt);
}

bool Receiver::covered(uint64_t start, uint64_t end) const {
  if (end <= rcv_nxt_) return true;
  for (const auto& b : ooo_)
    if (b.start <= start && end <= b.end) return true;
  return false;
}

void Receiver::merge_ooo(uint64_t start, uint64_t end) {
  // Insert [start,end) and merge overlapping/adjacent blocks; the merged
  // block takes the newest recency so SACK ordering reflects arrivals.
  const uint64_t rec = ++recency_counter_;
  uint64_t s = start, e = end;
  for (auto it = ooo_.begin(); it != ooo_.end();) {
    if (it->end < s || it->start > e) {
      ++it;
      continue;
    }
    s = std::min(s, it->start);
    e = std::max(e, it->end);
    it = ooo_.erase(it);
  }
  ooo_.push_back({s, e, rec});
}

void Receiver::on_data(const net::Segment& seg) {
  ++segments_received_;
  if (config_.ecn) {
    // RFC 3168: latch ECE on CE-marked data; clear it when the sender
    // confirms its reduction with CWR.
    if (seg.ce) ece_pending_ = true;
    if (seg.cwr) ece_pending_ = false;
  }
  // RFC 7323: update TS.Recent from segments that are in order (fill or
  // extend the left edge of the window).
  if (config_.timestamps && seg.has_ts && seg.seq <= rcv_nxt_) {
    ts_recent_ = seg.tsval;
  }
  const uint64_t start = seg.seq;
  const uint64_t end = seg.seq + seg.len;

  // Duplicate: everything already received -> immediate ACK with DSACK.
  if (covered(start, end)) {
    ++duplicate_segments_;
    std::optional<net::SackBlock> dsack;
    if (config_.dsack_enabled && config_.sack_enabled) {
      dsack = net::SackBlock{start, end};
    }
    send_ack_now(dsack);
    return;
  }

  const bool was_in_order = start <= rcv_nxt_;
  bool filled_hole = false;
  if (was_in_order) {
    rcv_nxt_ = std::max(rcv_nxt_, end);
    // Pull any out-of-order blocks the advance now reaches.
    bool merged = true;
    while (merged) {
      merged = false;
      for (auto it = ooo_.begin(); it != ooo_.end(); ++it) {
        if (it->start <= rcv_nxt_) {
          rcv_nxt_ = std::max(rcv_nxt_, it->end);
          ooo_.erase(it);
          merged = true;
          filled_hole = true;
          break;
        }
      }
    }
  } else {
    merge_ooo(start, end);
  }

  const bool have_holes = !ooo_.empty();
  if (!was_in_order || have_holes || filled_hole) {
    // Out-of-order data or still-missing holes: ACK immediately
    // (generates the dupack/SACK stream fast recovery is clocked by).
    send_ack_now(std::nullopt);
    return;
  }
  // In-order: quickack mode ACKs immediately; otherwise delayed ACK,
  // one per `ack_every` segments or on timeout.
  if (quickack_left_ > 0) {
    --quickack_left_;
    send_ack_now(std::nullopt);
    return;
  }
  if (++unacked_segments_ >= config_.ack_every) {
    send_ack_now(std::nullopt);
  } else if (!delack_timer_.pending()) {
    delack_timer_.start(config_.delack_timeout);
  }
}

void Receiver::send_ack_now(std::optional<net::SackBlock> dsack) {
  delack_timer_.stop();
  unacked_segments_ = 0;

  net::Segment ack;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  ack.rwnd = config_.rwnd;
  ack.tx_time = sim_.now();
  if (config_.timestamps) {
    ack.has_ts = true;
    ack.tsval = static_cast<uint32_t>(sim_.now().ms());
    ack.tsecr = ts_recent_;
  }
  if (config_.ecn) ack.ece = ece_pending_;
  if (config_.sack_enabled) {
    ack.dsack = dsack;
    // Up to max_sack_blocks OOO intervals, most recently updated first:
    // a top-k selection over ooo_ (k <= 4, recencies unique), kept
    // allocation-free — this runs on every ACK of every lossy window.
    const int k = std::min<int>(config_.max_sack_blocks, 4);
    const OooBlock* top[4] = {nullptr, nullptr, nullptr, nullptr};
    int filled = 0;
    for (const OooBlock& b : ooo_) {
      int i = filled;
      while (i > 0 && top[i - 1]->recency < b.recency) --i;
      if (i >= k) continue;
      if (filled < k) ++filled;
      for (int j = filled - 1; j > i; --j) top[j] = top[j - 1];
      top[i] = &b;
    }
    for (int i = 0; i < filled; ++i) {
      ack.sacks.push_back({top[i]->start, top[i]->end});
    }
  }
  ++acks_sent_;
  send_ack_(std::move(ack));
}

}  // namespace prr::tcp
