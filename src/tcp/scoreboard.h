// Sender-side SACK scoreboard: one record per transmitted segment between
// snd.una and snd.nxt, with the loss/retransmit state machinery of
// RFC 2018/3517/6675 plus the Linux extras the paper's baseline uses:
//   - FACK loss marking (threshold retransmission; holes below the
//     forward-most SACK are lost once in recovery),
//   - lost-retransmission detection (a retransmission is deemed lost when
//     data sent after it is SACKed),
//   - reordering detection (a segment presumed lost but never
//     retransmitted is later ACKed/SACKed), which feeds the dynamic
//     dupthresh and disables FACK.
// The scoreboard also computes pipe (RFC 3517 SetPipe) and DeliveredData,
// the per-ACK quantity PRR is built on.
//
// Accounting is incremental: running byte/segment tallies are updated at
// the points records change state, so pipe(), total_sacked_bytes(),
// sacked_segment_count(), lost_segment_count() and any_sacked() are O(1)
// per call instead of O(window) scans. find() is a binary search over the
// start-sorted records_ ring. A randomized differential test
// (test_scoreboard_differential.cc) checks every tally against a brute-
// force recomputation after each operation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/segment.h"
#include "sim/time.h"
#include "util/ring_queue.h"

namespace prr::tcp {

struct SegRecord {
  uint64_t start = 0;
  uint64_t end = 0;  // half-open
  bool sacked = false;
  bool lost = false;
  // True while the most recent retransmission of this record may still be
  // in the network (cleared when that retransmission is deemed lost).
  bool retransmitted = false;
  bool ever_retransmitted = false;
  // Last retransmit was sent during fast recovery (for the lost-fast-
  // retransmit statistic of Tables 8/10).
  bool last_retx_was_fast = false;
  int retrans_count = 0;
  // snd.nxt at the moment of the last retransmission: if data above this
  // gets SACKed while this record remains unSACKed, the retransmission
  // itself was lost.
  uint64_t retrans_marker = 0;
  sim::Time first_tx_time;
  sim::Time last_tx_time;

  uint64_t len() const { return end - start; }
};

struct AckOutcome {
  uint64_t newly_acked_bytes = 0;   // cumulative-ACK advance
  uint64_t newly_sacked_bytes = 0;  // newly SACKed above snd.una
  bool una_advanced = false;
  bool saw_dsack = false;
  std::optional<net::SackBlock> dsack_block;
  int lost_retransmits_detected = 0;
  int lost_fast_retransmits_detected = 0;
  // Largest reordering distance (in segments) observed on this ACK; 0 if
  // no reordering evidence.
  int reorder_distance_segs = 0;
  // Valid RTT sample per Karn's rule (never-retransmitted data only).
  std::optional<sim::Time> rtt_sample;
  // Last (re)transmission time of the newest cumulatively-ACKed record
  // that had been retransmitted — the reference point for Eifel
  // detection (RFC 3522): an echoed timestamp older than this proves the
  // ACK came from the original transmission.
  std::optional<sim::Time> acked_rexmit_tx_time;

  // DeliveredData as PRR defines it: delta(snd.una) + delta(SACKed).
  uint64_t delivered_bytes() const {
    return newly_acked_bytes + newly_sacked_bytes;
  }
};

class Scoreboard {
 public:
  explicit Scoreboard(uint32_t mss) : mss_(mss) {}

  void reset(uint64_t snd_una);
  // Pool-recycle variant: also adopts a new MSS (the next connection's
  // config may differ). Record/ring capacity is kept.
  void reset(uint64_t snd_una, uint32_t mss) {
    mss_ = mss;
    reset(snd_una);
  }

  // Records a (re)transmission covering [start, end).
  void on_transmit(uint64_t start, uint64_t end, sim::Time now);
  // Marks an existing record as retransmitted. `snd_nxt` stamps the
  // lost-retransmit detection marker; `fast` tags fast vs RTO retransmits.
  void on_retransmit(uint64_t start, sim::Time now, uint64_t snd_nxt,
                     bool fast);

  // Processes an incoming ACK: advances snd.una, applies SACK blocks,
  // detects reordering and lost retransmissions.
  AckOutcome on_ack(const net::Segment& ack, sim::Time now,
                    bool detect_lost_retransmits);

  // Applies loss-marking rules; returns segments newly marked lost.
  // `in_recovery` enables the aggressive FACK rule (all holes below the
  // forward-most SACK are lost).
  int update_loss_marks(int dupthresh, bool use_fack, bool in_recovery);

  // Marks every non-SACKed record lost and forgets in-flight
  // retransmissions (RTO: everything is slated for retransmit).
  void on_timeout_mark_all_lost();

  // RFC 2018 §8 reneging recovery: discard every SACK mark so the data
  // becomes retransmittable again. Called before on_timeout_mark_all_lost
  // when the sender decides the receiver's SACK state can no longer be
  // trusted (the head of the window is SACKed yet snd.una never advanced
  // over it — impossible with an honest receiver). Returns bytes forgotten.
  uint64_t forget_sack_marks();

  // True when the record at snd.una is SACKed — with an honest receiver a
  // SACK covering rcv_nxt is impossible (it would have been cum-ACKed),
  // so this is the reneging/false-SACK wedge signal (Linux
  // tcp_check_sack_reneging checks exactly the head skb).
  bool head_sacked() const {
    return !records_.empty() && records_.front().sacked;
  }

  // Forces the first hole lost (early-retransmit entry, where the dupack
  // threshold was lowered below what the marking rules require).
  void mark_first_hole_lost();

  // F-RTO undo: a timeout proved spurious, so loss marks on segments that
  // were never retransmitted are reverted (the originals are in flight).
  void clear_unretransmitted_loss_marks();

  // RFC 3517 SetPipe over the scoreboard, in bytes. O(1): maintained
  // incrementally as (outstanding - sacked - lost) + retransmitted.
  uint64_t pipe() const {
    return (total_bytes_ - sacked_bytes_ - lost_bytes_) +
           retransmitted_in_flight_bytes_;
  }

  // Would the RFC 6675 / FACK entry condition fire (is the first
  // outstanding segment reconstructible as lost)?
  bool first_hole_lost() const;

  // Next record to retransmit: lowest lost && !retransmitted. nullptr if
  // none.
  const SegRecord* next_retransmit_candidate() const;

  // Highest-sequence record not yet SACKed (the tail-loss-probe target).
  const SegRecord* last_unsacked() const;

  bool has_records() const { return !records_.empty(); }
  bool any_sacked() const { return sacked_segs_ > 0; }
  bool all_acked_up_to(uint64_t seq) const { return snd_una_ >= seq; }
  uint64_t snd_una() const { return snd_una_; }
  uint64_t highest_sacked_end() const { return highest_sacked_end_; }
  uint64_t total_sacked_bytes() const { return sacked_bytes_; }
  // Number of SACKed segments at/above snd.una — the FACK "fackets out".
  int sacked_segment_count() const { return sacked_segs_; }
  // Segments marked lost and not (yet) SACKed.
  int lost_segment_count() const { return lost_segs_; }
  const util::RingQueue<SegRecord>& records() const { return records_; }

 private:
  SegRecord* find(uint64_t start);

  // All record state changes funnel through these so the running tallies
  // stay consistent (each is idempotent in the flag it sets/clears).
  void set_sacked(SegRecord& r);
  void clear_sacked(SegRecord& r);
  void set_lost(SegRecord& r);
  void clear_lost(SegRecord& r);
  void set_retransmitted(SegRecord& r);
  void clear_retransmitted(SegRecord& r);
  void account_remove(const SegRecord& r);

  uint32_t mss_;
  uint64_t snd_una_ = 0;
  uint64_t highest_sacked_end_ = 0;
  // Start-sorted, non-overlapping in-flight records. A ring (not a
  // deque) so the steady-state transmit/ack cycle — push at the tail,
  // pop at the head — recycles slots instead of churning deque blocks.
  util::RingQueue<SegRecord> records_;

  // Incremental tallies over records_. lost/retransmitted figures count
  // only non-SACKed records (the states pipe() distinguishes); a SACKed
  // record's stale lost/retransmitted flags are excluded on the spot.
  uint64_t total_bytes_ = 0;   // sum of len() over records_
  uint64_t sacked_bytes_ = 0;  // sacked
  uint64_t lost_bytes_ = 0;    // lost && !sacked
  uint64_t retransmitted_in_flight_bytes_ = 0;  // retransmitted && !sacked
  int sacked_segs_ = 0;
  int lost_segs_ = 0;
};

}  // namespace prr::tcp
