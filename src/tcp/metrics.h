// SNMP-like counter set mirroring the Linux MIBs the paper reports
// (Tables 2, 3, 8, 10 and the early-retransmit statistics of §6). One
// Metrics instance aggregates an experiment arm; connections share it.
#pragma once

#include <cstdint>
#include <string>

namespace prr::tcp {

struct Metrics {
  // --- transmission ---
  uint64_t data_segments_sent = 0;
  uint64_t bytes_sent = 0;

  // --- retransmission breakdown (Table 2) ---
  uint64_t retransmits_total = 0;
  uint64_t fast_retransmits = 0;        // sent while in fast recovery
  uint64_t timeout_retransmits = 0;     // first retransmit of each RTO
  uint64_t slow_start_retransmits = 0;  // further retransmits in Loss state
  uint64_t failed_retransmits = 0;      // sent but never advanced snd.una
                                        // on aborted connections

  // --- timeouts by the state they hit (Table 2) ---
  uint64_t timeouts_total = 0;
  uint64_t timeouts_in_open = 0;
  uint64_t timeouts_in_disorder = 0;
  uint64_t timeouts_in_recovery = 0;
  uint64_t timeouts_exp_backoff = 0;  // RTO while already in Loss

  // --- fast recovery (Table 3) ---
  uint64_t fast_recovery_events = 0;
  uint64_t dsacks_received = 0;
  uint64_t recoveries_with_dsack = 0;
  uint64_t lost_retransmits_detected = 0;
  uint64_t lost_fast_retransmits = 0;
  uint64_t undo_events = 0;   // congestion state reverted (Eifel/DSACK)
  uint64_t spurious_retransmits = 0;  // retransmits reported as DSACK dups
  uint64_t spurious_rto_undone = 0;   // F-RTO: timeout proved spurious

  // --- ECN (extension; RFC 6937's non-loss reduction path) ---
  uint64_t ecn_cwr_events = 0;

  // --- tail loss probe (extension; §8 future work) ---
  uint64_t tlp_probes_sent = 0;

  // --- early retransmit (§6) ---
  uint64_t er_triggered = 0;         // recoveries entered via ER
  uint64_t er_delayed_cancelled = 0; // pending delayed-ER cancelled by ACK
  uint64_t er_spurious = 0;          // ER recoveries later undone

  // --- adversarial-endpoint defenses (torture engine) ---
  uint64_t sack_reneg_events = 0;   // SACK marks forgotten at RTO
  uint64_t bad_acks_ignored = 0;    // ack > snd_nxt dropped (RFC 5961)
  uint64_t window_probes_sent = 0;  // zero-window probes (RFC 793)

  // --- connections ---
  uint64_t connections = 0;
  uint64_t connections_aborted = 0;

  Metrics& operator+=(const Metrics& o);
  // Counter-wise difference; with a before-snapshot of a shared
  // accumulator this recovers one connection's contribution (used to
  // feed per-connection values into the obs::MetricsRegistry).
  Metrics& operator-=(const Metrics& o);
  // Deterministic shard merge for the parallel experiment harness: all
  // fields are sums, so merging per-worker accumulators in any order
  // reproduces the serial counters exactly.
  void merge(const Metrics& o) { *this += o; }
  std::string summary() const;
};

}  // namespace prr::tcp
