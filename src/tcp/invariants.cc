#include "tcp/invariants.h"

#include <cstdio>
#include <utility>

#include "tcp/recovery/prr.h"

namespace prr::tcp {

const char* to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kSndUnaRegressed: return "snd_una_regressed";
    case InvariantKind::kSndUnaBeyondSndNxt: return "snd_una_beyond_snd_nxt";
    case InvariantKind::kCwndBelowFloor: return "cwnd_below_floor";
    case InvariantKind::kCwndAboveRwnd: return "cwnd_above_rwnd";
    case InvariantKind::kPipeExceedsFlight: return "pipe_exceeds_flight";
    case InvariantKind::kPrrBeyondSlowStart: return "prr_beyond_slow_start";
    case InvariantKind::kTimerLeak: return "timer_leak";
    case InvariantKind::kInjected: return "injected";
    case InvariantKind::kNoForwardProgress: return "no_forward_progress";
    case InvariantKind::kNoTermination: return "no_termination";
    case InvariantKind::kConservation: return "conservation";
    case InvariantKind::kArmDivergence: return "arm_divergence";
  }
  return "?";
}

InvariantChecker::InvariantChecker(sim::Simulator& sim, Sender& sender,
                                   Config config)
    : sim_(sim), sender_(sender), config_(config) {
  auto prev = sender_.on_post_ack_hook;
  sender_.on_post_ack_hook = [this, prev](const net::Segment& ack) {
    if (prev) prev(ack);
    on_post_ack();
  };
}

void InvariantChecker::record(InvariantKind kind, std::string detail) {
  // Mark the violation in the sender's flight recorder too, so the
  // quarantine trace tail carries the failure point inline with the
  // state transitions that led to it.
  PRR_TRACE(sender_.recorder(), sim_.now(), sender_.conn_id(),
            obs::TraceType::kInvariant, static_cast<uint8_t>(kind), 0,
            sender_.snd_una(), sender_.snd_nxt(), sender_.cwnd_bytes(),
            sender_.pipe_bytes());
  InvariantViolation v;
  v.kind = kind;
  v.at = sim_.now();
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

void InvariantChecker::on_post_ack() {
  ++acks_checked_;
  char buf[192];

  const uint64_t una = sender_.snd_una();
  const uint64_t nxt = sender_.snd_nxt();
  const uint64_t cwnd = sender_.cwnd_bytes();
  const uint64_t pipe = sender_.pipe_bytes();
  const uint32_t mss = sender_.config().mss;

  if (una < prev_una_) {
    std::snprintf(buf, sizeof buf, "snd_una went %llu -> %llu",
                  static_cast<unsigned long long>(prev_una_),
                  static_cast<unsigned long long>(una));
    record(InvariantKind::kSndUnaRegressed, buf);
  }
  prev_una_ = una;

  if (una > nxt) {
    std::snprintf(buf, sizeof buf, "snd_una %llu > snd_nxt %llu",
                  static_cast<unsigned long long>(una),
                  static_cast<unsigned long long>(nxt));
    record(InvariantKind::kSndUnaBeyondSndNxt, buf);
  }

  if (!sender_.aborted() && sender_.state() != TcpState::kRecovery &&
      cwnd < mss) {
    std::snprintf(buf, sizeof buf, "cwnd %llu < 1 MSS (%u) in state %s",
                  static_cast<unsigned long long>(cwnd), mss,
                  to_string(sender_.state()));
    record(InvariantKind::kCwndBelowFloor, buf);
  }

  // TCP never clamps cwnd to rwnd directly (the send gate does), but with
  // RFC 2861 cwnd validation the window cannot grow meaningfully past
  // what the peer lets us keep in flight. The bound is the *largest*
  // window the peer ever advertised: congestion state grown under an
  // earlier, wider window legitimately persists when a misbehaving
  // receiver later shrinks rwnd (RFC 793 — shrinking must be tolerated,
  // and cwnd is not flow-control state; the torture campaign's
  // rwnd-shrink pathology exercises exactly this).
  const uint64_t rwnd = sender_.peer_rwnd();
  if (rwnd != UINT64_MAX && rwnd > max_rwnd_seen_) max_rwnd_seen_ = rwnd;
  if (max_rwnd_seen_ != 0 &&
      cwnd > max_rwnd_seen_ + sender_.config().initial_cwnd_bytes()) {
    std::snprintf(buf, sizeof buf, "cwnd %llu above max advertised rwnd %llu",
                  static_cast<unsigned long long>(cwnd),
                  static_cast<unsigned long long>(max_rwnd_seen_));
    record(InvariantKind::kCwndAboveRwnd, buf);
  }

  // RFC 3517 SetPipe counts every un-SACKed octet at most once as an
  // original and once as a live retransmission; anything larger means
  // scoreboard corruption (or an underflowed subtraction upstream).
  const uint64_t flight = nxt - una;
  if (pipe > 2 * flight) {
    std::snprintf(buf, sizeof buf, "pipe %llu > 2x flight %llu",
                  static_cast<unsigned long long>(pipe),
                  static_cast<unsigned long long>(flight));
    record(InvariantKind::kPipeExceedsFlight, buf);
  }

  // PRR §3, "never more than slow start": per ACK the SSRB part allows
  // at most DeliveredData + MSS, i.e. prr_out may lead prr_delivered by
  // one MSS per ACK of the episode — exactly slow start's growth rate.
  // The cumulative bound therefore scales with the episode's ACK count,
  // plus two MSS of slack for the entry fast retransmit and the
  // triggering ACK. The unlimited bound (UB) deliberately sends the
  // whole hole at once, so it is exempt.
  bool in_prr_recovery = false;
  if (sender_.state() == TcpState::kRecovery) {
    if (const auto* prr_policy =
            dynamic_cast<const PrrRecovery*>(sender_.recovery_policy())) {
      const core::PrrState& st = prr_policy->state();
      if (st.in_recovery()) {
        in_prr_recovery = true;
        const bool new_episode = !prr_was_in_recovery_ ||
                                 st.prr_delivered() < prr_prev_delivered_;
        if (new_episode) prr_episode_acks_ = 0;
        ++prr_episode_acks_;
        prr_prev_delivered_ = st.prr_delivered();
        const uint64_t allowance = (prr_episode_acks_ + 2) * uint64_t{mss};
        if (st.bound() != core::ReductionBound::kUnlimited &&
            st.prr_out() > st.prr_delivered() + allowance) {
          std::snprintf(
              buf, sizeof buf,
              "prr_out %llu > prr_delivered %llu + %llu MSS (%llu acks)",
              static_cast<unsigned long long>(st.prr_out()),
              static_cast<unsigned long long>(st.prr_delivered()),
              static_cast<unsigned long long>(prr_episode_acks_ + 2),
              static_cast<unsigned long long>(prr_episode_acks_));
          record(InvariantKind::kPrrBeyondSlowStart, buf);
        }
      }
    }
  }
  prr_was_in_recovery_ = in_prr_recovery;

  if (config_.inject_on_ack != 0 && acks_checked_ == config_.inject_on_ack) {
    std::snprintf(buf, sizeof buf, "synthetic violation on ack %llu",
                  static_cast<unsigned long long>(acks_checked_));
    record(InvariantKind::kInjected, buf);
  }
}

void InvariantChecker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if ((sender_.aborted() || sender_.all_acked()) &&
      sender_.loss_timers_pending()) {
    record(InvariantKind::kTimerLeak,
           sender_.aborted() ? "loss timer armed after abort"
                             : "loss timer armed after flow completion");
  }
}

}  // namespace prr::tcp
