// Wires a Sender, Receiver and duplex Path into one simulated TCP
// connection. Connections start established (the paper's latency metric
// excludes the handshake).
#pragma once

#include <memory>

#include "net/path.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/recovery_log.h"
#include "tcp/metrics.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace prr::tcp {

struct ConnectionConfig {
  SenderConfig sender;
  Receiver::Config receiver;
  net::Path::Config path;
};

class Connection {
 public:
  Connection(sim::Simulator& sim, ConnectionConfig config, sim::Rng rng,
             Metrics* metrics = nullptr,
             stats::RecoveryLog* recovery_log = nullptr);

  // Pool-recycle: rewires the whole connection (path, sender, receiver)
  // to the state a fresh construction with these arguments would
  // produce, keeping every buffer/timer/event-slot capacity. Must run
  // after the owning Simulator was reset and before any per-connection
  // wiring (recorder, loss models, checker, app) is attached.
  void reset(ConnectionConfig config, sim::Rng rng, Metrics* metrics,
             stats::RecoveryLog* recovery_log);

  // Application write on the server side.
  void write(uint64_t bytes) { sender_->write(bytes); }

  Sender& sender() { return *sender_; }
  Receiver& receiver() { return *receiver_; }
  net::Path& path() { return *path_; }
  const ConnectionConfig& config() const { return config_; }

 private:
  ConnectionConfig config_;
  std::unique_ptr<net::Path> path_;
  std::unique_ptr<Sender> sender_;
  std::unique_ptr<Receiver> receiver_;
};

}  // namespace prr::tcp
