#include "tcp/sender.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <utility>

#include "tcp/cc/congestion_control.h"
#include "tcp/recovery/prr.h"

namespace prr::tcp {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kOpen: return "Open";
    case TcpState::kDisorder: return "Disorder";
    case TcpState::kRecovery: return "Recovery";
    case TcpState::kLoss: return "Loss";
  }
  return "?";
}

namespace {
// Ring of recently retransmitted ranges for spurious-retransmit (DSACK)
// matching; bounded so long flows stay O(1).
constexpr std::size_t kRetxHistoryLimit = 512;
}  // namespace

Sender::Sender(sim::Simulator& sim, SenderConfig config, SendFn send,
               Metrics* metrics, stats::RecoveryLog* recovery_log)
    : sim_(sim),
      config_(config),
      send_(std::move(send)),
      metrics_(metrics),
      recovery_log_(recovery_log),
      cc_(make_congestion_control(config.cc, config.mss,
                                  config.gaimd_alpha, config.gaimd_beta)),
      policy_(make_recovery_policy(config.recovery, config.prr_bound)),
      scoreboard_(config.mss),
      rto_est_(config.rto),
      rto_timer_(sim, [this] { on_rto(); }),
      er_timer_(sim, [this] { on_er_timer(); }),
      tlp_timer_(sim, [this] { on_tlp_timer(); }),
      pacing_timer_(sim, [this] { try_send(); }),
      persist_timer_(sim, [this] { on_persist_timer(); }) {
  prr_policy_ = dynamic_cast<const PrrRecovery*>(policy_.get());
  scoreboard_.reset(0);
  reset_core_state();
}

void Sender::reset(SenderConfig config, Metrics* metrics,
                   stats::RecoveryLog* recovery_log) {
  config_ = config;
  metrics_ = metrics;
  local_ = Metrics{};
  recovery_log_ = recovery_log;
  if (!reset_congestion_control(*cc_, config.cc, config.mss,
                                config.gaimd_alpha, config.gaimd_beta)) {
    cc_ = make_congestion_control(config.cc, config.mss, config.gaimd_alpha,
                                  config.gaimd_beta);
  }
  if (!reset_recovery_policy(*policy_, config.recovery, config.prr_bound)) {
    policy_ = make_recovery_policy(config.recovery, config.prr_bound);
  }
  prr_policy_ = dynamic_cast<const PrrRecovery*>(policy_.get());
  scoreboard_.reset(0, config.mss);
  rto_est_ = RtoEstimator(config.rto);
  // All timer EventIds are stale after Simulator::reset; stop() clears
  // them without touching the (recycled) event queue.
  rto_timer_.stop();
  er_timer_.stop();
  tlp_timer_.stop();
  pacing_timer_.stop();
  persist_timer_.stop();
  // Per-connection wiring must not leak into the next connection: the
  // hooks capture checker/watchdog/app objects that are themselves reset
  // or destroyed between connections.
  on_transmit_hook = nullptr;
  on_una_advance_hook = nullptr;
  on_ack_hook = nullptr;
  on_post_ack_hook = nullptr;
  on_abort_hook = nullptr;
  on_rto_hook = nullptr;
  on_ack_cost_hook = nullptr;
  set_recorder(nullptr, 0);
  reset_core_state();
}

void Sender::reset_core_state() {
  state_ = TcpState::kOpen;
  snd_una_ = 0;
  snd_nxt_ = 0;
  write_end_ = 0;
  cwnd_ = config_.initial_cwnd_bytes();
  ssthresh_ = UINT64_MAX;
  peer_rwnd_ = UINT64_MAX;
  next_segment_id_ = 1;
  dupthresh_ = config_.dupthresh;
  dupack_count_ = 0;
  reorder_metric_segs_ = 0;
  fack_enabled_ = config_.use_fack;
  reordering_seen_ = false;
  cwnd_limited_ = true;
  aborted_ = false;
  busy_ = false;
  in_loss_recovery_ = false;
  last_transmit_ = sim::Time::zero();
  busy_since_ = sim::Time::zero();
  busy_accum_ = sim::Time::zero();
  loss_since_ = sim::Time::zero();
  loss_accum_ = sim::Time::zero();
  persist_backoff_ = 0;
  next_pace_at_ = sim::Time::zero();
  recovery_point_ = 0;
  recovery_via_er_ = false;
  retransmitted_this_event_ = false;
  prior_cwnd_ = 0;
  prior_ssthresh_ = 0;
  undo_valid_ = false;
  undo_retrans_ = 0;
  spurious_seen_ = false;
  retx_history_.clear();
  current_event_ = stats::RecoveryEvent{};
  burst_in_progress_ = 0;
  rto_head_retransmit_pending_ = false;
  retransmits_since_progress_ = 0;
  frto_check_pending_ = false;
  frto_head_end_ = 0;
  tlp_probe_outstanding_ = false;
  cwr_active_ = false;
  cwr_point_ = 0;
  cwr_flag_pending_ = false;
  cwr_prr_ = core::PrrState{};
  prior_loss_cwnd_ = 0;
  prior_loss_ssthresh_ = 0;
  traced_state_ = TcpState::kOpen;
  if (!config_.handshake_rtt.is_zero()) {
    rto_est_.on_rtt_sample(config_.handshake_rtt);
  }
}

// --- counter plumbing: every event bumps the per-connection counters and,
// when present, the shared experiment-arm counters. ---
#define COUNT(field)                 \
  do {                               \
    ++local_.field;                  \
    if (metrics_) ++metrics_->field; \
  } while (0)
#define ADD(field, v)                  \
  do {                                 \
    local_.field += (v);               \
    if (metrics_) metrics_->field += (v); \
  } while (0)

void Sender::set_recorder(obs::FlightRecorder* recorder, uint32_t conn_id) {
  recorder_ = recorder;
  conn_id_ = conn_id;
  traced_state_ = state_;
#if PRR_TRACE_ENABLED
  const struct {
    sim::Timer* timer;
    uint8_t id;
  } timers[] = {{&rto_timer_, 0},
                {&er_timer_, 1},
                {&tlp_timer_, 2},
                {&pacing_timer_, 3},
                {&persist_timer_, 4}};
  for (const auto& [timer, id] : timers) {
    if (recorder == nullptr) {
      timer->set_trace(nullptr);
      continue;
    }
    // kOpSchedule/kOpFire/kOpCancel align with the consecutive
    // kTimerSchedule/kTimerFire/kTimerCancel trace types.
    timer->set_trace([this, id = id](uint8_t op, sim::Time expiry) {
      PRR_TRACE(recorder_, sim_.now(), conn_id_,
                static_cast<obs::TraceType>(
                    static_cast<uint8_t>(obs::TraceType::kTimerSchedule) + op),
                id, 0, static_cast<uint64_t>(expiry.ns()));
    });
  }
#endif
}

void Sender::write(uint64_t bytes) {
  if (aborted_ || bytes == 0) return;
  if (config_.slow_start_after_idle && snd_una_ >= snd_nxt_ &&
      state_ == TcpState::kOpen && snd_nxt_ > 0) {
    // Idle restart (RFC 2861): halve the window per RTO elapsed idle.
    sim::Time idle = sim_.now() - last_transmit_;
    const sim::Time rto = rto_est_.rto();
    while (idle > rto && cwnd_ > config_.initial_cwnd_bytes()) {
      cwnd_ = std::max(cwnd_ / 2, config_.initial_cwnd_bytes());
      idle -= rto;
    }
  }
  write_end_ += bytes;
  try_send();
  maybe_arm_persist();
}

uint64_t Sender::effective_pipe() const {
  if (config_.sack_enabled) return scoreboard_.pipe();
  // NewReno estimate: every dupack signals one segment that left the
  // network; the scoreboard still excludes marked-lost segments and
  // re-adds retransmissions.
  const uint64_t base = scoreboard_.pipe();
  const uint64_t discount =
      static_cast<uint64_t>(dupack_count_) * config_.mss;
  return base > discount ? base - discount : 0;
}

bool Sender::can_send_new() const {
  if (snd_nxt_ >= write_end_) return false;
  if (peer_rwnd_ != UINT64_MAX &&
      snd_nxt_ - snd_una_ + config_.mss > peer_rwnd_) {
    return false;
  }
  return true;
}

void Sender::try_send() {
  if (aborted_) return;
  const bool retransmits_allowed =
      state_ == TcpState::kRecovery || state_ == TcpState::kLoss;
  // Without limited transmit (RFC 3042), a sender in Disorder may not
  // transmit new data on dupacks at all.
  const bool new_data_allowed =
      state_ != TcpState::kDisorder || config_.limited_transmit;
  while (true) {
    const uint64_t pipe = effective_pipe();
    const SegRecord* cand =
        retransmits_allowed ? scoreboard_.next_retransmit_candidate()
                            : nullptr;
    if (cand != nullptr) {
      // Quantize to whole segments: a send needs window room for the
      // entire segment. This is what paces PRR's byte-exact sndcnt onto
      // alternate ACKs instead of leaking one segment per ACK.
      if (pipe + cand->len() > cwnd_) break;
      if (!pacing_allows_send()) break;
      send_retransmit(cand->start, cand->end);
      note_paced_send();
      continue;
    }
    if (!new_data_allowed || !can_send_new()) break;
    const uint64_t len =
        std::min<uint64_t>(config_.mss, write_end_ - snd_nxt_);
    if (pipe + len > cwnd_) break;
    if (!pacing_allows_send()) break;
    send_new_segment();
    note_paced_send();
  }
  // Arm (or refresh) the tail-loss-probe timer once per send batch, after
  // snd.nxt reflects everything transmitted.
  maybe_arm_tlp();
}

void Sender::send_new_segment() {
  const uint64_t len =
      std::min<uint64_t>(config_.mss, write_end_ - snd_nxt_);
  transmit(snd_nxt_, snd_nxt_ + len, /*retx=*/false);
  snd_nxt_ += len;
}

void Sender::send_retransmit(uint64_t start, uint64_t end) {
  transmit(start, end, /*retx=*/true);
}

void Sender::transmit(uint64_t start, uint64_t end, bool retx) {
  const uint32_t len = static_cast<uint32_t>(end - start);

  if (!retx) {
    scoreboard_.on_transmit(start, end, sim_.now());
  } else {
    scoreboard_.on_retransmit(start, sim_.now(), snd_nxt_,
                              state_ == TcpState::kRecovery);
  }

  COUNT(data_segments_sent);
  ADD(bytes_sent, len);
  if (retx) {
    COUNT(retransmits_total);
    ++retransmits_since_progress_;
    if (undo_valid_) {
      ++undo_retrans_;
      retx_history_.push_back({start, end});
      if (retx_history_.size() > kRetxHistoryLimit) retx_history_.pop_front();
    }
    switch (state_) {
      case TcpState::kRecovery:
        COUNT(fast_retransmits);
        ++current_event_.retransmits;
        retransmitted_this_event_ = true;
        break;
      case TcpState::kLoss:
        if (rto_head_retransmit_pending_) {
          COUNT(timeout_retransmits);
          rto_head_retransmit_pending_ = false;
        } else {
          COUNT(slow_start_retransmits);
        }
        break;
      default:
        break;
    }
  }
  if (cwr_active_ && state_ == TcpState::kOpen) {
    cwr_prr_.on_data_sent(len);
  }
  if (state_ == TcpState::kRecovery) {
    policy_->on_sent(len);
    current_event_.bytes_sent_during += len;
    ++burst_in_progress_;
    current_event_.max_burst_segments =
        std::max(current_event_.max_burst_segments, burst_in_progress_);
  }

  last_transmit_ = sim_.now();
  // Busy-time accounting: data is now outstanding.
  if (!busy_) {
    busy_ = true;
    busy_since_ = sim_.now();
  }
  // Coalesced arm (sim::Timer::start_coalesced): under batch delivery
  // the queue push is deferred — one per transmit burst instead of one
  // per segment — with the fire time, FIFO seq, and trace identical.
  if (!rto_timer_.pending()) rto_timer_.start_coalesced(rto_est_.rto());

  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kTransmit,
            retx ? 1 : 0, static_cast<uint16_t>(state_), start, len, cwnd_,
            snd_nxt_);
  if (on_transmit_hook) on_transmit_hook(start, len, retx);

  net::Segment seg;
  seg.seq = start;
  seg.len = len;
  seg.is_retransmit = retx;
  seg.id = next_segment_id_++;
  seg.tx_time = sim_.now();
  if (config_.timestamps) {
    seg.has_ts = true;
    seg.tsval = static_cast<uint32_t>(sim_.now().ms());
  }
  if (config_.ecn) {
    seg.ect = true;
    if (cwr_flag_pending_) {
      seg.cwr = true;
      cwr_flag_pending_ = false;
    }
  }
  send_(std::move(seg));
}

void Sender::on_ack_segment(const net::Segment& ack) {
  if (!on_ack_cost_hook) {
    process_ack(ack);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  process_ack(ack);
  const auto t1 = std::chrono::steady_clock::now();
  on_ack_cost_hook(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

void Sender::process_ack(const net::Segment& ack) {
  if (aborted_) return;
  if (on_ack_hook) on_ack_hook(ack);
  if (config_.validate_acks && ack.ack > snd_nxt_) {
    // RFC 5961 §5: an ACK for data never sent is invalid — processing it
    // would teleport snd.una beyond snd.nxt. Drop it (its rwnd too: a
    // corrupted segment's fields are all untrustworthy).
    COUNT(bad_acks_ignored);
    return;
  }
  if (ack.rwnd != 0) peer_rwnd_ = ack.rwnd;
  if (ack.ack < snd_una_) return;  // ancient ACK: ignore

#if PRR_TRACE_ENABLED
  if (recorder_ != nullptr) {
    for (const net::SackBlock& blk : ack.sacks) {
      recorder_->write(obs::make_record(sim_.now(), conn_id_,
                                        obs::TraceType::kSackSeen, 0, 0,
                                        blk.start, blk.end));
    }
    if (ack.dsack.has_value()) {
      recorder_->write(obs::make_record(sim_.now(), conn_id_,
                                        obs::TraceType::kSackSeen, 1, 0,
                                        ack.dsack->start, ack.dsack->end));
    }
  }
#endif

  burst_in_progress_ = 0;

  // Linux tcp_is_cwnd_limited: the window may only grow if the flight
  // was actually filling it (RFC 2861 cwnd validation); app-limited
  // connections must not inflate cwnd they never use.
  cwnd_limited_ = snd_nxt_ - snd_una_ + config_.mss >= cwnd_;

  AckOutcome out =
      scoreboard_.on_ack(ack, sim_.now(), config_.detect_lost_retransmits);

  if (out.lost_retransmits_detected > 0) {
    ADD(lost_retransmits_detected,
        static_cast<uint64_t>(out.lost_retransmits_detected));
    ADD(lost_fast_retransmits,
        static_cast<uint64_t>(out.lost_fast_retransmits_detected));
    PRR_TRACE(recorder_, sim_.now(), conn_id_,
              obs::TraceType::kLostRetransmit, 0, 0,
              static_cast<uint64_t>(out.lost_retransmits_detected),
              static_cast<uint64_t>(out.lost_fast_retransmits_detected));
  }
  if (config_.timestamps && ack.has_ts && ack.tsecr > 0 &&
      out.una_advanced) {
    // Timestamp echo (RFC 7323 RTTM): sample on ACKs of new data only —
    // the echo then reflects the segment that advanced the left edge,
    // even when that was a retransmission (no Karn restriction). Pure
    // dupacks echo the stale TS.Recent of older in-order data and must
    // not feed the estimator.
    const sim::Time echoed = sim::Time::milliseconds(ack.tsecr);
    if (sim_.now() >= echoed) rto_est_.on_rtt_sample(sim_.now() - echoed);
  } else if (out.rtt_sample) {
    rto_est_.on_rtt_sample(*out.rtt_sample);
  }

  if (out.una_advanced) {
    snd_una_ = scoreboard_.snd_una();
    rto_est_.reset_backoff();
    retransmits_since_progress_ = 0;
    dupack_count_ = 0;
    tlp_probe_outstanding_ = false;
    if (er_timer_.pending()) {
      er_timer_.stop();
      COUNT(er_delayed_cancelled);
    }
    PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kUnaAdvance,
              0, 0, snd_una_);
    if (on_una_advance_hook) on_una_advance_hook(snd_una_);
  } else if (out.newly_sacked_bytes > 0 || out.saw_dsack ||
             (!config_.sack_enabled && ack.ack == snd_una_ &&
              snd_nxt_ > snd_una_ && ack.len == 0)) {
    ++dupack_count_;
  }

  if (out.reorder_distance_segs > 0) {
    reordering_seen_ = true;
    reorder_metric_segs_ =
        std::max(reorder_metric_segs_, out.reorder_distance_segs);
    if (config_.dynamic_dupthresh) {
      dupthresh_ = std::clamp(reorder_metric_segs_, config_.dupthresh,
                              config_.max_dupthresh);
    }
    fack_enabled_ = false;  // Linux: reordering disables FACK
  }

  handle_dsack(out);
  check_eifel(ack, out);
  if (aborted_) return;

  if (config_.ecn) {
    maybe_enter_cwr(ack);
    process_cwr(out);
  }

  switch (state_) {
    case TcpState::kOpen:
      process_in_open(out);
      break;
    case TcpState::kDisorder:
      process_in_disorder(out);
      break;
    case TcpState::kRecovery:
      process_in_recovery(out);
      break;
    case TcpState::kLoss:
      process_in_loss(out);
      break;
  }

  try_send();

  // Timer management: restart on forward progress (cumulative or SACK,
  // as Linux re-arms on any ACK that changes what is outstanding);
  // disarm when idle.
  if (snd_una_ >= snd_nxt_) {
    rto_timer_.stop();
    tlp_timer_.stop();
    if (busy_) {
      busy_ = false;
      busy_accum_ += sim_.now() - busy_since_;
    }
  } else if (out.una_advanced || out.newly_sacked_bytes > 0) {
    // Progress restarts the retransmission timer — unless the probe
    // timer currently owns the deadline (it re-arms the RTO itself).
    // The hottest rearm in the simulator (once per progress ACK):
    // coalesced, it costs one queue push per ACK train instead of one
    // per ACK, with identical fire time and tie-break order.
    if (!tlp_timer_.pending()) rto_timer_.start_coalesced(rto_est_.rto());
    maybe_arm_tlp();
  }
  // Zero-window handling: an opened window ends any persist episode; a
  // closed one with nothing in flight starts (or continues) probing.
  if (can_send_new() || snd_nxt_ >= write_end_) {
    persist_timer_.stop();
    persist_backoff_ = 0;
  }
  maybe_arm_persist();

#if PRR_TRACE_ENABLED
  if (recorder_ != nullptr) {
    recorder_->write(obs::make_record(
        sim_.now(), conn_id_, obs::TraceType::kAck,
        static_cast<uint8_t>(state_), 0, ack.ack, cwnd_, effective_pipe(),
        ssthresh_, out.delivered_bytes(), snd_nxt_));
    if (state_ == TcpState::kRecovery) {
      if (const auto* prr = prr_policy_) {
        const core::PrrState& st = prr->state();
        recorder_->write(obs::make_record(
            sim_.now(), conn_id_, obs::TraceType::kPrr,
            st.in_proportional_mode() ? 1 : 0,
            static_cast<uint16_t>(st.bound()), st.prr_delivered(),
            st.prr_out(), st.recover_fs(), st.ssthresh(), cwnd_));
      }
    }
  }
#endif

  if (on_post_ack_hook) on_post_ack_hook(ack);
}

void Sender::process_in_open(const AckOutcome& out) {
  if (out.una_advanced) grow_cwnd_open(out.newly_acked_bytes);
  const bool non_sack_dupack =
      !config_.sack_enabled && !out.una_advanced && dupack_count_ > 0 &&
      snd_nxt_ > snd_una_;
  if (scoreboard_.any_sacked() || non_sack_dupack) {
    state_ = TcpState::kDisorder;
    note_transmit_state_change();
    process_in_disorder(out);
  }
}

void Sender::process_in_disorder(const AckOutcome& out) {
  if (out.una_advanced && !scoreboard_.any_sacked()) {
    // The hole filled without a retransmit (pure reordering): back to
    // Open with no window reduction.
    state_ = TcpState::kOpen;
    note_transmit_state_change();
    grow_cwnd_open(out.newly_acked_bytes);
    return;
  }
  maybe_enter_recovery(out);
}

void Sender::maybe_enter_recovery(const AckOutcome& out) {
  scoreboard_.update_loss_marks(dupthresh_, fack_enabled_,
                                /*in_recovery=*/false);
  const bool classic = dupack_count_ >= dupthresh_;
  const bool fack_threshold = scoreboard_.first_hole_lost();
  if (classic || fack_threshold) {
    enter_recovery(out.delivered_bytes(), /*via_er=*/false);
    return;
  }
  check_early_retransmit(out);
}

void Sender::check_early_retransmit(const AckOutcome& out) {
  if (config_.early_retransmit == EarlyRetransmitMode::kOff) return;
  if (state_ != TcpState::kDisorder) return;
  if (snd_nxt_ <= snd_una_) return;
  const uint64_t outstanding = snd_nxt_ - snd_una_;
  const int osegs =
      static_cast<int>((outstanding + config_.mss - 1) / config_.mss);
  if (osegs >= 4) return;       // RFC 5827: only when flight < 4 segments
  if (can_send_new()) return;   // new data would trigger normal recovery
  const int er_thresh = std::max(1, osegs - 1);
  if (dupack_count_ < er_thresh) return;
  if ((config_.early_retransmit == EarlyRetransmitMode::kReorderMitigation ||
       config_.early_retransmit == EarlyRetransmitMode::kBothMitigations) &&
      reordering_seen_) {
    return;  // mitigation 1: past reordering disables ER
  }
  if (config_.early_retransmit == EarlyRetransmitMode::kBothMitigations) {
    // Mitigation 2: delay the early retransmit by srtt/4 (clamped); an
    // ACK advancing snd.una cancels it.
    if (!er_timer_.pending()) {
      sim::Time delay = rto_est_.has_sample() ? rto_est_.srtt() / 4
                                              : config_.er_delay_min;
      delay = std::clamp(delay, config_.er_delay_min, config_.er_delay_max);
      er_timer_.start(delay);
    }
    return;
  }
  enter_recovery(out.delivered_bytes(), /*via_er=*/true);
}

bool Sender::pacing_allows_send() {
  if (!config_.pacing || !rto_est_.has_sample()) return true;
  if (sim_.now() >= next_pace_at_) return true;
  if (!pacing_timer_.pending()) {
    pacing_timer_.start(next_pace_at_ - sim_.now());
  }
  return false;
}

void Sender::note_paced_send() {
  if (!config_.pacing || !rto_est_.has_sample()) return;
  // Rate = pacing_gain * cwnd / srtt  =>  one segment every
  // srtt / (gain * cwnd_segments).
  const double cwnd_segs = std::max(
      1.0, static_cast<double>(cwnd_) / config_.mss);
  const sim::Time interval =
      rto_est_.srtt() * (1.0 / (config_.pacing_gain * cwnd_segs));
  const sim::Time base = std::max(sim_.now(), next_pace_at_);
  next_pace_at_ = base + interval;
}

void Sender::maybe_enter_cwr(const net::Segment& ack) {
  if (!ack.ece || cwr_active_ || state_ != TcpState::kOpen) return;
  if (snd_nxt_ <= snd_una_) return;
  // RFC 3168 + RFC 6937: one window reduction per RTT of ECE signals,
  // paced by PRR rather than applied in a single step.
  cwr_active_ = true;
  cwr_point_ = snd_nxt_;
  cwr_flag_pending_ = true;
  ssthresh_ = cc_->ssthresh_after_loss(cwnd_);
  cwr_prr_.enter_recovery(snd_nxt_ - snd_una_, ssthresh_, config_.mss);
  COUNT(ecn_cwr_events);
}

void Sender::process_cwr(const AckOutcome& out) {
  if (!cwr_active_) return;
  if (state_ != TcpState::kOpen) {
    // Loss recovery supersedes the ECN reduction.
    cwr_active_ = false;
    return;
  }
  if (snd_una_ >= cwr_point_) {
    cwnd_ = std::max<uint64_t>(cwr_prr_.exit_cwnd(), config_.mss);
    cwr_active_ = false;
    return;
  }
  const uint64_t sndcnt =
      cwr_prr_.on_ack(out.delivered_bytes(), effective_pipe());
  cwnd_ = effective_pipe() + sndcnt;
}

void Sender::maybe_arm_tlp() {
  if (!config_.tail_loss_probe) return;
  if (state_ != TcpState::kOpen || snd_una_ >= snd_nxt_ ||
      tlp_probe_outstanding_) {
    tlp_timer_.stop();
    return;
  }
  sim::Time pto;
  if (rto_est_.has_sample()) {
    pto = 2 * rto_est_.srtt();
    if (snd_nxt_ - snd_una_ <= config_.mss) {
      // A single outstanding segment may be sitting behind a delayed-ACK
      // timer at the receiver; wait it out before probing.
      pto += config_.tlp_delack_bound;
    }
    pto = std::max(pto, config_.tlp_min_pto);
  } else {
    pto = rto_est_.rto();
  }
  pto = std::min(pto, rto_est_.rto());
  tlp_timer_.start_coalesced(pto);  // per-ACK rearm: defer the queue push
  // The probe timer supersedes the retransmission timer (as in Linux,
  // where ICSK_TIME_LOSS_PROBE replaces ICSK_TIME_RETRANS); the RTO is
  // re-armed when the probe fires.
  rto_timer_.stop();
}

void Sender::on_tlp_timer() {
  if (aborted_ || state_ != TcpState::kOpen) return;
  if (snd_una_ >= snd_nxt_) return;
  tlp_probe_outstanding_ = true;  // at most one probe per episode
  COUNT(tlp_probes_sent);
  if (can_send_new()) {
    // Probe with new data: it advances snd.nxt and, if the tail was
    // lost, its SACK exposes the hole to fast recovery.
    send_new_segment();
  } else if (const SegRecord* tail = scoreboard_.last_unsacked()) {
    send_retransmit(tail->start, tail->end);
  }
  // The probe restarts the RTO clock (RFC 8985: re-arm after the probe
  // so the timeout measures from the last transmission).
  rto_timer_.start(rto_est_.rto());
}

void Sender::on_er_timer() {
  if (aborted_ || state_ != TcpState::kDisorder) return;
  enter_recovery(0, /*via_er=*/true);
  try_send();
}

void Sender::enter_recovery(uint64_t delivered_on_trigger, bool via_er) {
  state_ = TcpState::kRecovery;
  note_transmit_state_change();
  tlp_timer_.stop();
  COUNT(fast_recovery_events);
  if (via_er) COUNT(er_triggered);
  recovery_via_er_ = via_er;
  recovery_point_ = snd_nxt_;
  retransmitted_this_event_ = false;

  prior_cwnd_ = cwnd_;
  prior_ssthresh_ = ssthresh_;
  undo_valid_ = config_.dsack_undo;
  undo_retrans_ = 0;
  spurious_seen_ = false;
  retx_history_.clear();

  ssthresh_ = cc_->ssthresh_after_loss(cwnd_);
  scoreboard_.update_loss_marks(dupthresh_, fack_enabled_,
                                /*in_recovery=*/true);
  if (scoreboard_.next_retransmit_candidate() == nullptr) {
    scoreboard_.mark_first_hole_lost();
  }

  const uint64_t pipe = effective_pipe();
  const uint64_t flight = snd_nxt_ - snd_una_;
  policy_->on_enter(flight, ssthresh_, cwnd_, config_.mss);
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kEnterRecovery,
            via_er ? 1 : 0, static_cast<uint16_t>(config_.mss), flight,
            ssthresh_, pipe, prior_cwnd_, recovery_point_);

  current_event_ = stats::RecoveryEvent{};
  current_event_.start = sim_.now();
  current_event_.pipe_at_start = pipe;
  current_event_.ssthresh = ssthresh_;
  current_event_.cwnd_at_start = cwnd_;
  current_event_.mss = config_.mss;

  // The triggering ACK also clocks the policy. Without SACK the
  // trigger dupack is known to have delivered one segment (RFC 6937's
  // non-SACK heuristic).
  if (!config_.sack_enabled && delivered_on_trigger == 0) {
    delivered_on_trigger = config_.mss;
  }
  RecoveryAckContext ctx;
  ctx.delivered_bytes = delivered_on_trigger;
  ctx.pipe_bytes = pipe;
  ctx.cwnd_bytes = cwnd_;
  ctx.mss = config_.mss;
  cwnd_ = policy_->on_ack(ctx);

  try_send();
  if (!retransmitted_this_event_) {
    // RFC 3517's explicit fast_retransmit(): the first retransmission is
    // sent even when pipe exceeds the reduced window.
    if (const SegRecord* cand = scoreboard_.next_retransmit_candidate()) {
      send_retransmit(cand->start, cand->end);
    }
  }
}

void Sender::process_in_recovery(const AckOutcome& out) {
  scoreboard_.update_loss_marks(dupthresh_, fack_enabled_,
                                /*in_recovery=*/true);
  if (snd_una_ >= recovery_point_) {
    exit_recovery();
    return;
  }
  uint64_t delivered = out.delivered_bytes();
  if (!config_.sack_enabled) {
    if (out.una_advanced) {
      // NewReno partial ACK (RFC 6582): forward progress that stops
      // short of the recovery point pinpoints the next hole, which is
      // retransmitted immediately (not subject to the window budget).
      scoreboard_.mark_first_hole_lost();
      if (const SegRecord* c = scoreboard_.next_retransmit_candidate()) {
        send_retransmit(c->start, c->end);
      }
    } else if (delivered == 0) {
      delivered = config_.mss;  // dupack = one segment delivered
    }
  }
  RecoveryAckContext ctx;
  ctx.delivered_bytes = delivered;
  ctx.pipe_bytes = effective_pipe();
  ctx.cwnd_bytes = cwnd_;
  ctx.mss = config_.mss;
  cwnd_ = policy_->on_ack(ctx);
}

void Sender::exit_recovery() {
  const uint64_t pipe = effective_pipe();
  current_event_.cwnd_at_exit = cwnd_;
  current_event_.pipe_at_exit = pipe;
  cwnd_ = std::max<uint64_t>(policy_->exit_cwnd(pipe, cwnd_), config_.mss);
  current_event_.cwnd_after_exit = cwnd_;
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kExitRecovery,
            0, 0, cwnd_, pipe,
            static_cast<uint64_t>(current_event_.retransmits),
            current_event_.bytes_sent_during, current_event_.cwnd_at_exit,
            static_cast<uint64_t>(current_event_.max_burst_segments));
  finish_recovery_event(/*completed=*/true, /*timeout=*/false);

  state_ = scoreboard_.any_sacked() ? TcpState::kDisorder : TcpState::kOpen;
  note_transmit_state_change();
  dupack_count_ = 0;
}

void Sender::finish_recovery_event(bool completed, bool timeout) {
  current_event_.end = sim_.now();
  current_event_.completed = completed;
  current_event_.interrupted_by_timeout = timeout;
  current_event_.slow_start_after = cwnd_ < ssthresh_;
  if (completed && current_event_.cwnd_after_exit == 0) {
    current_event_.cwnd_after_exit = cwnd_;
  }
  if (recovery_log_) recovery_log_->add(current_event_);
}

void Sender::handle_dsack(const AckOutcome& out) {
  if (!out.saw_dsack) return;
  COUNT(dsacks_received);
  if (!config_.dsack_undo || !undo_valid_ || !out.dsack_block) return;
  // A DSACK covering a range we retransmitted means that retransmission
  // was spurious (the original arrived too).
  const auto& blk = *out.dsack_block;
  for (auto it = retx_history_.begin(); it != retx_history_.end(); ++it) {
    if (it->first >= blk.start && it->second <= blk.end) {
      retx_history_.erase(it);
      COUNT(spurious_retransmits);
      spurious_seen_ = true;
      if (undo_retrans_ > 0) --undo_retrans_;
      break;
    }
  }
  if (spurious_seen_ && undo_retrans_ == 0) try_undo();
}

void Sender::check_eifel(const net::Segment& ack, const AckOutcome& out) {
  if (!config_.timestamps || !ack.has_ts || !out.acked_rexmit_tx_time) {
    return;
  }
  // Eifel detection (RFC 3522): the ACK acknowledges a segment we
  // retransmitted, but the echoed timestamp predates the retransmission —
  // so the *original* arrived and the retransmission was spurious.
  // Compare at timestamp-clock granularity (whole milliseconds): tsval
  // is the truncated send time, so the retransmission's own echo is
  // exactly floor(tx_time).
  const uint32_t retx_tsval =
      static_cast<uint32_t>(out.acked_rexmit_tx_time->ms());
  if (ack.tsecr >= retx_tsval) return;
  if (state_ == TcpState::kRecovery && undo_valid_) {
    COUNT(spurious_retransmits);
    try_undo();
  } else if (state_ == TcpState::kLoss && frto_check_pending_) {
    frto_check_pending_ = false;
    COUNT(spurious_retransmits);
    undo_loss_state();
  }
}

void Sender::undo_loss_state() {
  // A timeout proved spurious (F-RTO heuristic or Eifel): restore the
  // congestion state and revert loss marks on data still in flight.
  cwnd_ = prior_loss_cwnd_;
  ssthresh_ = prior_loss_ssthresh_;
  scoreboard_.clear_unretransmitted_loss_marks();
  COUNT(spurious_rto_undone);
  COUNT(undo_events);
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kUndo, 1, 0,
            cwnd_, ssthresh_);
  state_ = scoreboard_.any_sacked() ? TcpState::kDisorder
                                    : TcpState::kOpen;
  note_transmit_state_change();
  rto_head_retransmit_pending_ = false;
}

void Sender::try_undo() {
  // Every retransmission of the episode proved spurious: revert the
  // congestion state (Eifel response via DSACK).
  cwnd_ = std::max(cwnd_, prior_cwnd_);
  ssthresh_ = prior_ssthresh_;
  COUNT(undo_events);
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kUndo, 0, 0,
            cwnd_, ssthresh_, scoreboard_.pipe(),
            static_cast<uint64_t>(current_event_.max_burst_segments));
  if (recovery_via_er_) COUNT(er_spurious);
  undo_valid_ = false;
  spurious_seen_ = false;
  if (state_ == TcpState::kRecovery) {
    current_event_.cwnd_at_exit = cwnd_;
    current_event_.pipe_at_exit = scoreboard_.pipe();
    current_event_.cwnd_after_exit = cwnd_;
    finish_recovery_event(/*completed=*/true, /*timeout=*/false);
    state_ = TcpState::kOpen;
    note_transmit_state_change();
    dupack_count_ = 0;
  }
}

void Sender::process_in_loss(const AckOutcome& out) {
  if (!out.una_advanced) {
    // A dupack during Loss means the network really is dropping: the
    // F-RTO spurious hypothesis is rejected (RFC 5682 step 2b).
    if (out.newly_sacked_bytes > 0) frto_check_pending_ = false;
    return;
  }
  if (frto_check_pending_) {
    frto_check_pending_ = false;
    if (snd_una_ > frto_head_end_) {
      // The ACK covers data beyond the only segment retransmitted since
      // the timeout: original transmissions are being delivered, so the
      // RTO was spurious. Revert the congestion state and loss marks.
      undo_loss_state();
      return;
    }
  }
  cwnd_ = cc_->on_ack(cwnd_, ssthresh_, out.newly_acked_bytes, sim_.now());
  if (snd_una_ >= recovery_point_) {
    state_ = scoreboard_.any_sacked() ? TcpState::kDisorder : TcpState::kOpen;
    note_transmit_state_change();
    rto_head_retransmit_pending_ = false;
  }
}

void Sender::on_rto() {
  if (aborted_) return;
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding (stale timer)

  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kRtoFired,
            static_cast<uint8_t>(state_), 0, snd_una_, snd_nxt_, cwnd_,
            static_cast<uint64_t>(rto_est_.backoff_count()),
            static_cast<uint64_t>(rto_est_.rto().ns()),
            state_ == TcpState::kRecovery
                ? static_cast<uint64_t>(current_event_.max_burst_segments)
                : 0);
  COUNT(timeouts_total);
  switch (state_) {
    case TcpState::kOpen:
      COUNT(timeouts_in_open);
      break;
    case TcpState::kDisorder:
      COUNT(timeouts_in_disorder);
      break;
    case TcpState::kRecovery:
      COUNT(timeouts_in_recovery);
      finish_recovery_event(/*completed=*/false, /*timeout=*/true);
      break;
    case TcpState::kLoss:
      COUNT(timeouts_exp_backoff);
      break;
  }

  if (state_ != TcpState::kLoss) {
    prior_loss_cwnd_ = cwnd_;
    prior_loss_ssthresh_ = ssthresh_;
    ssthresh_ = cc_->ssthresh_after_loss(cwnd_);
    cc_->on_timeout(sim_.now());
    undo_valid_ = false;
    recovery_point_ = snd_nxt_;
    state_ = TcpState::kLoss;
    note_transmit_state_change();
  }

  cwnd_ = config_.mss;  // restart the self clock from one segment
  if (config_.renege_recovery && scoreboard_.head_sacked()) {
    // The head of the window is SACKed yet snd.una never moved over it:
    // the receiver reneged (RFC 2018 §8) or the SACK was a lie. Either
    // way the marks are untrustworthy — forget them all so the data
    // below becomes retransmittable, exactly like Linux's
    // tcp_check_sack_reneging → tcp_timeout_mark_lost path.
    [[maybe_unused]] const uint64_t forgotten =
        scoreboard_.forget_sack_marks();
    COUNT(sack_reneg_events);
    PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kSackReneg, 0,
              0, snd_una_, forgotten);
  }
  scoreboard_.on_timeout_mark_all_lost();
  rto_head_retransmit_pending_ = true;
  if (config_.frto) {
    frto_check_pending_ = true;
    const SegRecord* head = scoreboard_.next_retransmit_candidate();
    frto_head_end_ = head != nullptr ? head->end : snd_una_ + config_.mss;
  }
  dupack_count_ = 0;
  er_timer_.stop();

  tlp_timer_.stop();
  rto_est_.backoff();
  if (on_rto_hook) on_rto_hook(snd_una_, rto_est_.backoff_count());
  if (rto_est_.backoff_count() > config_.max_rto_backoffs) {
    abort_connection();
    return;
  }
  try_send();
  rto_timer_.start(rto_est_.rto());
}

void Sender::maybe_arm_persist() {
  // Deadlock guard: data is waiting, nothing is in flight (so no RTO is
  // armed), and the advertised window blocks even one MSS. Without a
  // probe no event will ever fire again on this connection.
  if (!config_.zero_window_probes || aborted_) return;
  if (persist_timer_.pending()) return;
  if (snd_una_ < snd_nxt_) return;      // in-flight data: RTO owns progress
  if (snd_nxt_ >= write_end_) return;   // nothing left to send
  if (can_send_new()) return;           // window open: try_send handles it
  const sim::Time base = rto_est_.rto();
  const int shift = std::min(persist_backoff_, 6);
  const sim::Time interval =
      std::min(base * (int64_t{1} << shift), sim::Time::seconds(60.0));
  persist_timer_.start(interval);
}

void Sender::on_persist_timer() {
  if (aborted_) return;
  if (can_send_new() || snd_nxt_ >= write_end_ || snd_una_ < snd_nxt_) {
    // The window opened (or data went into flight) since arming.
    persist_backoff_ = 0;
    return;
  }
  // RFC 793 window probe: one byte beyond the advertised window. The
  // probe is real stream data, so its ACK both advances the flow and
  // reports the current window.
  COUNT(window_probes_sent);
  ++persist_backoff_;
  transmit(snd_nxt_, snd_nxt_ + 1, /*retx=*/false);
  snd_nxt_ += 1;
}

void Sender::abort_connection() {
  aborted_ = true;
  ADD(failed_retransmits, retransmits_since_progress_);
  COUNT(connections_aborted);
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kAbort, 0, 0,
            snd_una_, snd_nxt_);
  rto_timer_.stop();
  er_timer_.stop();
  tlp_timer_.stop();
  pacing_timer_.stop();
  persist_timer_.stop();
  if (busy_) {
    busy_ = false;
    busy_accum_ += sim_.now() - busy_since_;
  }
  note_transmit_state_change();  // close loss-time accounting
  if (on_abort_hook) on_abort_hook();
}

void Sender::grow_cwnd_open(uint64_t acked_bytes) {
  if (cwr_active_) return;  // the CWR episode owns the window
  if (!cwnd_limited_) return;
  cwnd_ = cc_->on_ack(cwnd_, ssthresh_, acked_bytes, sim_.now());
}

void Sender::note_transmit_state_change() {
  // Called after every state_ assignment, so this is the single point
  // that sees all CA-state transitions.
  if (state_ != traced_state_) {
    PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kStateChange,
              static_cast<uint8_t>(traced_state_),
              static_cast<uint16_t>(state_), cwnd_, ssthresh_, snd_una_,
              snd_nxt_);
    traced_state_ = state_;
  }
  const bool now_loss = !aborted_ && (state_ == TcpState::kRecovery ||
                                      state_ == TcpState::kLoss);
  if (now_loss && !in_loss_recovery_) {
    in_loss_recovery_ = true;
    loss_since_ = sim_.now();
  } else if (!now_loss && in_loss_recovery_) {
    in_loss_recovery_ = false;
    loss_accum_ += sim_.now() - loss_since_;
  }
}

sim::Time Sender::network_transmit_time() const {
  sim::Time t = busy_accum_;
  if (busy_) t += sim_.now() - busy_since_;
  return t;
}

sim::Time Sender::loss_recovery_time() const {
  sim::Time t = loss_accum_;
  if (in_loss_recovery_) t += sim_.now() - loss_since_;
  return t;
}

#undef COUNT
#undef ADD

}  // namespace prr::tcp
