// RFC 6298 retransmission-timeout estimator with exponential backoff and
// Karn's rule (callers must not feed samples from retransmitted segments).
// The Linux-style 200 ms floor from the paper's Table 4 is the default.
#pragma once

#include "sim/time.h"

namespace prr::tcp {

class RtoEstimator {
 public:
  struct Config {
    sim::Time initial_rto = sim::Time::seconds(1);
    sim::Time min_rto = sim::Time::milliseconds(200);
    sim::Time max_rto = sim::Time::seconds(120);
  };

  RtoEstimator();  // defaults (defined below: nested-class completeness)
  explicit RtoEstimator(Config config) : config_(config) {}

  // Feeds one RTT measurement (never from a retransmitted segment).
  void on_rtt_sample(sim::Time rtt);

  // Current timeout including backoff.
  sim::Time rto() const;

  // Doubles the backoff (called on each timeout). Returns new rto.
  sim::Time backoff();
  void reset_backoff() { backoff_shift_ = 0; }
  int backoff_count() const { return backoff_shift_; }

  bool has_sample() const { return has_sample_; }
  sim::Time srtt() const { return srtt_; }
  sim::Time rttvar() const { return rttvar_; }

 private:
  Config config_;
  bool has_sample_ = false;
  sim::Time srtt_ = sim::Time::zero();
  sim::Time rttvar_ = sim::Time::zero();
  int backoff_shift_ = 0;
};

inline RtoEstimator::RtoEstimator() : RtoEstimator(Config{}) {}

}  // namespace prr::tcp
