// TCP sender implementing the loss-recovery machinery the paper studies:
// the four Linux recovery states (Open, Disorder, Recovery, Loss), SACK-
// based loss marking with FACK and dynamic dupthresh, limited transmit
// (RFC 3042), pluggable congestion control and fast-recovery window
// regulation (RFC 3517 / Linux rate halving / PRR), RTO with exponential
// backoff (RFC 6298), DSACK-based undo (Eifel response), lost-retransmit
// detection, and early retransmit (RFC 5827) with the two mitigations the
// paper evaluates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "core/prr.h"
#include "net/segment.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"
#include "stats/recovery_log.h"
#include "tcp/cc/congestion_control.h"
#include "tcp/metrics.h"
#include "tcp/recovery/recovery.h"
#include "tcp/rto.h"
#include "tcp/scoreboard.h"

namespace prr::tcp {

class PrrRecovery;

enum class TcpState { kOpen, kDisorder, kRecovery, kLoss };

const char* to_string(TcpState s);

enum class EarlyRetransmitMode {
  kOff,
  kNaive,             // RFC 5827 with no mitigation
  kReorderMitigation, // disable ER once reordering was detected (M1)
  kBothMitigations,   // M1 + short delay timer (M2), the paper's choice
};

struct SenderConfig {
  uint32_t mss = 1430;
  uint32_t initial_cwnd_segments = 10;  // Table 4: IW10
  CcKind cc = CcKind::kCubic;
  // GAIMD parameters (used only when cc == kGaimd).
  double gaimd_alpha = 1.0;
  double gaimd_beta = 0.5;
  RecoveryKind recovery = RecoveryKind::kPrr;
  core::ReductionBound prr_bound = core::ReductionBound::kSlowStart;

  // SACK negotiated on this connection (96% of the paper's connections).
  // Without SACK the sender falls back to NewReno-style recovery: pure
  // dupack counting, one retransmission per partial ACK, and the RFC 6937
  // non-SACK heuristic of treating each dupack as one delivered MSS.
  bool sack_enabled = true;
  // TCP timestamps (RFC 7323; 12% of the paper's connections). Enables
  // per-ACK RTT sampling without Karn's restriction and Eifel detection
  // (RFC 3522): an echoed timestamp older than the retransmission proves
  // the retransmission spurious, and the window reduction is undone.
  bool timestamps = false;
  int dupthresh = 3;
  bool use_fack = true;
  bool dynamic_dupthresh = true;   // reordering raises dupthresh
  int max_dupthresh = 127;
  bool limited_transmit = true;
  bool detect_lost_retransmits = true;
  bool dsack_undo = true;
  // RFC 2861 / Linux tcp_slow_start_after_idle: halve cwnd per RTO of
  // idle time (floor: initial window) before transmitting after an idle
  // period, so persistent connections do not blast a stale window.
  bool slow_start_after_idle = true;
  // F-RTO-style spurious-timeout detection: if the first cumulative ACK
  // after an RTO covers more than the retransmitted head segment, the
  // extra coverage can only be original data still in flight — the
  // timeout was spurious and the congestion state is restored.
  bool frto = true;

  EarlyRetransmitMode early_retransmit = EarlyRetransmitMode::kOff;
  sim::Time er_delay_min = sim::Time::milliseconds(25);
  sim::Time er_delay_max = sim::Time::milliseconds(500);

  // Tail loss probe (the paper's §8 future work, later RFC 8985 /
  // draft-dukkipati-tcpm-tcp-loss-probe): when the tail of a flow is
  // lost there are no dupacks, so the only standard repair is an RTO.
  // TLP arms a probe timer at ~2*SRTT; if nothing is ACKed by then the
  // sender transmits one probe (new data if available, else a
  // retransmission of the last outstanding segment), whose SACK feedback
  // converts would-be timeouts into fast recovery. Off by default: the
  // paper's measured baseline predates TLP.
  bool tail_loss_probe = false;
  sim::Time tlp_min_pto = sim::Time::milliseconds(10);
  sim::Time tlp_delack_bound = sim::Time::milliseconds(50);

  // ECN (RFC 3168): stamp ECT on data; on an ECE echo, reduce the
  // window to CongCtrlAlg()'s target *without* retransmitting anything,
  // pacing the reduction with PRR exactly as RFC 6937 prescribes for
  // non-loss congestion signals. Off by default (the paper's servers
  // disabled ECN).
  bool ecn = false;

  // Sender-side pacing (sch_fq style): spread transmissions at
  // cwnd/srtt * pacing_gain instead of line-rate bursts. Addresses the
  // paper's observation that bursts (RFC 3517's, or any post-stall
  // catch-up) are "hard on the network". Off by default.
  bool pacing = false;
  double pacing_gain = 1.25;

  // RFC 2018 §8 reneging recovery: when an RTO fires with the head of
  // the window SACKed but never cumulatively ACKed — impossible with an
  // honest receiver, so the SACK state is a lie or has been reneged —
  // forget all SACK marks so the data is retransmitted. Without this a
  // reneging receiver (or one false-SACK) wedges the connection: the
  // "SACKed" head is never eligible for retransmission and snd.una never
  // advances. Off reproduces the wedge (torture corpus).
  bool renege_recovery = true;
  // RFC 5961-flavored ACK validation: ignore ACKs acknowledging data
  // never sent (ack > snd.nxt). Without it a corrupted ACK teleports
  // snd.una beyond snd.nxt and the scoreboard melts down.
  bool validate_acks = true;
  // RFC 793 zero-window probing: when the peer's advertised window
  // blocks all sending and nothing is in flight, probe with one byte at
  // a backed-off interval instead of waiting forever. Without it a
  // receiver that shrinks rwnd below one MSS deadlocks the connection
  // (no timer is pending once the flight drains).
  bool zero_window_probes = true;

  RtoEstimator::Config rto;
  // RTT measured during the SYN exchange (zero = none): real stacks enter
  // ESTABLISHED with one sample, which keeps the first RTO sane on long
  // paths.
  sim::Time handshake_rtt = sim::Time::zero();
  int max_rto_backoffs = 12;  // abort the connection beyond this

  uint64_t initial_cwnd_bytes() const {
    return static_cast<uint64_t>(initial_cwnd_segments) * mss;
  }
};

class Sender {
 public:
  using SendFn = std::function<void(net::Segment&&)>;

  Sender(sim::Simulator& sim, SenderConfig config, SendFn send,
         Metrics* metrics, stats::RecoveryLog* recovery_log);

  // Pool-recycle: returns the sender to the state a fresh construction
  // with (config, metrics, recovery_log) would produce, keeping the send
  // callback and all container/timer capacity. Every observer hook and
  // the flight-recorder attachment are cleared — per-connection wiring
  // (invariant checker, watchdog, app) captures objects that die with
  // the connection, so stale hooks must never survive into the next one.
  // Precondition: the owning Simulator has been reset.
  void reset(SenderConfig config, Metrics* metrics,
             stats::RecoveryLog* recovery_log);

  // ---- application interface ----
  // Appends `bytes` to the send buffer and transmits what the window
  // allows. Byte identities are offsets in one infinite stream.
  void write(uint64_t bytes);
  // Total bytes the application has queued so far.
  uint64_t write_end() const { return write_end_; }
  bool all_acked() const { return snd_una_ >= write_end_; }
  bool aborted() const { return aborted_; }

  // ---- network interface ----
  void on_ack_segment(const net::Segment& ack);

  // ---- observers ----
  // (seq, len, is_retransmit): every segment put on the wire.
  std::function<void(uint64_t, uint32_t, bool)> on_transmit_hook;
  // Fired when snd.una advances (new value).
  std::function<void(uint64_t)> on_una_advance_hook;
  // Fired for every incoming ACK segment before processing.
  std::function<void(const net::Segment&)> on_ack_hook;
  // Fired after an ACK has been fully processed (state machine, window
  // regulation, and transmissions done) — the invariant checker's
  // observation point (tcp/invariants.h).
  std::function<void(const net::Segment&)> on_post_ack_hook;
  std::function<void()> on_abort_hook;
  // Fired on every RTO expiry with (snd_una, backoff_count) after the
  // backoff was applied — the progress watchdog's observation point
  // (torture/oracles.h): during a blackhole no ACKs arrive, so a per-ACK
  // hook would never see the stall.
  std::function<void(uint64_t, int)> on_rto_hook;
  // Self-profiling tap (obs::SelfProfiler): wall-clock nanoseconds spent
  // processing each ACK. When unset, on_ack_segment takes no clock
  // readings.
  std::function<void(int64_t)> on_ack_cost_hook;

  // ---- flight recorder (obs/) ----
  // Attaches (or, with nullptr, detaches) a flight recorder: state
  // transitions, per-ACK window/PRR decisions, (re)transmissions, RTO
  // and undo events, and loss-timer activity are written as TraceRecords
  // tagged with `conn_id`. Pure observation — recording changes no
  // sender behavior, so aggregates are bit-identical with or without it.
  void set_recorder(obs::FlightRecorder* recorder, uint32_t conn_id);
  obs::FlightRecorder* recorder() const { return recorder_; }
  uint32_t conn_id() const { return conn_id_; }

  // ---- inspection (tests, experiments) ----
  TcpState state() const { return state_; }
  uint64_t snd_una() const { return snd_una_; }
  uint64_t snd_nxt() const { return snd_nxt_; }
  uint64_t cwnd_bytes() const { return cwnd_; }
  double cwnd_segments() const {
    return static_cast<double>(cwnd_) / config_.mss;
  }
  uint64_t ssthresh_bytes() const { return ssthresh_; }
  uint64_t pipe_bytes() const { return effective_pipe(); }
  uint64_t peer_rwnd() const { return peer_rwnd_; }
  // Any of the loss-detection timers (RTO, early-retransmit delay, tail
  // loss probe) still armed — must be false once the flow is finished or
  // aborted (the no-timer-leak invariant).
  bool loss_timers_pending() const {
    return rto_timer_.pending() || er_timer_.pending() ||
           tlp_timer_.pending() || persist_timer_.pending();
  }
  int dupthresh() const { return dupthresh_; }
  bool fack_enabled() const { return fack_enabled_; }
  bool reordering_seen() const { return reordering_seen_; }
  const Scoreboard& scoreboard() const { return scoreboard_; }
  const RtoEstimator& rto_estimator() const { return rto_est_; }
  const SenderConfig& config() const { return config_; }
  const RecoveryPolicy* recovery_policy() const { return policy_.get(); }
  uint64_t retransmits() const { return local_.retransmits_total; }
  const Metrics& local_metrics() const { return local_; }
  // Cumulative time spent with unacknowledged data outstanding ("network
  // transmit time" in Table 10) and the part spent in Recovery/Loss.
  sim::Time network_transmit_time() const;
  sim::Time loss_recovery_time() const;

 private:
  void process_ack(const net::Segment& ack);
  void try_send();
  bool can_send_new() const;
  // RFC 3517 pipe in SACK mode; the dupack-discounted flight estimate in
  // NewReno (non-SACK) mode.
  uint64_t effective_pipe() const;
  void send_new_segment();
  void send_retransmit(uint64_t start, uint64_t end);
  void transmit(uint64_t start, uint64_t end, bool retx);

  void process_in_open(const AckOutcome& out);
  void process_in_disorder(const AckOutcome& out);
  void process_in_recovery(const AckOutcome& out);
  void process_in_loss(const AckOutcome& out);

  void maybe_enter_recovery(const AckOutcome& out);
  void enter_recovery(uint64_t delivered_on_trigger, bool via_er);
  void exit_recovery();
  void finish_recovery_event(bool completed, bool timeout);

  void check_early_retransmit(const AckOutcome& out);
  void on_er_timer();

  void maybe_arm_tlp();
  void on_tlp_timer();

  void maybe_enter_cwr(const net::Segment& ack);
  void process_cwr(const AckOutcome& out);

  // Pacing gate: true if a segment may go out now; otherwise arms the
  // pacing timer and the caller must stop sending.
  bool pacing_allows_send();
  void note_paced_send();

  void handle_dsack(const AckOutcome& out);
  void check_eifel(const net::Segment& ack, const AckOutcome& out);
  void try_undo();
  void undo_loss_state();

  void on_rto();
  void arm_rto();
  void abort_connection();

  void maybe_arm_persist();
  void on_persist_timer();

  void grow_cwnd_open(uint64_t acked_bytes);
  void note_transmit_state_change();

  // Rewinds every per-connection value field to its fresh-construction
  // state for the current config_. Shared by the constructor and reset()
  // so the two paths cannot drift (fresh == recycled by construction).
  void reset_core_state();

  sim::Simulator& sim_;
  SenderConfig config_;
  SendFn send_;
  Metrics* metrics_;  // shared, may be null
  Metrics local_;
  stats::RecoveryLog* recovery_log_;  // may be null

  // ---- hot per-ACK fields ----
  // Every scalar the common process_ack -> try_send cycle reads or
  // writes, declared together so they share a cache-line neighborhood
  // instead of being interleaved with cold episode bookkeeping.
  TcpState state_ = TcpState::kOpen;
  uint64_t snd_una_ = 0;
  uint64_t snd_nxt_ = 0;
  uint64_t write_end_ = 0;
  uint64_t cwnd_ = 0;
  uint64_t ssthresh_ = UINT64_MAX;
  uint64_t peer_rwnd_ = UINT64_MAX;
  // Per-sender (not global): connections must stay independent so the
  // experiment harness can run them on worker threads deterministically.
  uint64_t next_segment_id_ = 1;
  int dupthresh_ = 3;
  int dupack_count_ = 0;
  int reorder_metric_segs_ = 0;
  bool fack_enabled_ = true;
  bool reordering_seen_ = false;
  bool cwnd_limited_ = true;
  bool aborted_ = false;
  // Busy-time accounting (Table 10) — updated on most ACKs/transmits.
  bool busy_ = false;
  bool in_loss_recovery_ = false;
  sim::Time last_transmit_ = sim::Time::zero();
  sim::Time busy_since_ = sim::Time::zero();
  sim::Time busy_accum_ = sim::Time::zero();
  sim::Time loss_since_ = sim::Time::zero();
  sim::Time loss_accum_ = sim::Time::zero();

  std::unique_ptr<CongestionControl> cc_;
  std::unique_ptr<RecoveryPolicy> policy_;
  // Cached downcast of policy_ (null when the policy is not PRR): the
  // traced per-ACK path needs the PRR internals and must not pay a
  // dynamic_cast per ACK for them.
  const PrrRecovery* prr_policy_ = nullptr;
  Scoreboard scoreboard_;
  RtoEstimator rto_est_;
  sim::Timer rto_timer_;
  sim::Timer er_timer_;
  sim::Timer tlp_timer_;
  sim::Timer pacing_timer_;
  sim::Timer persist_timer_;

  // ---- cold episode/bookkeeping fields ----
  int persist_backoff_ = 0;
  sim::Time next_pace_at_ = sim::Time::zero();

  // Recovery episode state.
  uint64_t recovery_point_ = 0;
  bool recovery_via_er_ = false;
  bool retransmitted_this_event_ = false;
  uint64_t prior_cwnd_ = 0;
  uint64_t prior_ssthresh_ = 0;
  bool undo_valid_ = false;
  int undo_retrans_ = 0;
  bool spurious_seen_ = false;
  std::deque<std::pair<uint64_t, uint64_t>> retx_history_;
  stats::RecoveryEvent current_event_;
  uint64_t burst_in_progress_ = 0;

  // Loss (RTO) episode state.
  bool rto_head_retransmit_pending_ = false;
  uint64_t retransmits_since_progress_ = 0;
  bool frto_check_pending_ = false;
  uint64_t frto_head_end_ = 0;
  bool tlp_probe_outstanding_ = false;

  // ECN CWR episode (window reduction without losses, PRR-paced).
  bool cwr_active_ = false;
  uint64_t cwr_point_ = 0;
  bool cwr_flag_pending_ = false;
  core::PrrState cwr_prr_;
  uint64_t prior_loss_cwnd_ = 0;
  uint64_t prior_loss_ssthresh_ = 0;

  // Flight recorder attachment (null = not tracing) and the last state
  // recorded, so note_transmit_state_change() can emit exactly one
  // kStateChange per transition.
  obs::FlightRecorder* recorder_ = nullptr;
  uint32_t conn_id_ = 0;
  TcpState traced_state_ = TcpState::kOpen;
};

}  // namespace prr::tcp
