#include "tcp/metrics.h"

#include <sstream>

namespace prr::tcp {

Metrics& Metrics::operator+=(const Metrics& o) {
  data_segments_sent += o.data_segments_sent;
  bytes_sent += o.bytes_sent;
  retransmits_total += o.retransmits_total;
  fast_retransmits += o.fast_retransmits;
  timeout_retransmits += o.timeout_retransmits;
  slow_start_retransmits += o.slow_start_retransmits;
  failed_retransmits += o.failed_retransmits;
  timeouts_total += o.timeouts_total;
  timeouts_in_open += o.timeouts_in_open;
  timeouts_in_disorder += o.timeouts_in_disorder;
  timeouts_in_recovery += o.timeouts_in_recovery;
  timeouts_exp_backoff += o.timeouts_exp_backoff;
  fast_recovery_events += o.fast_recovery_events;
  dsacks_received += o.dsacks_received;
  recoveries_with_dsack += o.recoveries_with_dsack;
  lost_retransmits_detected += o.lost_retransmits_detected;
  lost_fast_retransmits += o.lost_fast_retransmits;
  undo_events += o.undo_events;
  spurious_retransmits += o.spurious_retransmits;
  spurious_rto_undone += o.spurious_rto_undone;
  ecn_cwr_events += o.ecn_cwr_events;
  tlp_probes_sent += o.tlp_probes_sent;
  er_triggered += o.er_triggered;
  er_delayed_cancelled += o.er_delayed_cancelled;
  er_spurious += o.er_spurious;
  sack_reneg_events += o.sack_reneg_events;
  bad_acks_ignored += o.bad_acks_ignored;
  window_probes_sent += o.window_probes_sent;
  connections += o.connections;
  connections_aborted += o.connections_aborted;
  return *this;
}

Metrics& Metrics::operator-=(const Metrics& o) {
  data_segments_sent -= o.data_segments_sent;
  bytes_sent -= o.bytes_sent;
  retransmits_total -= o.retransmits_total;
  fast_retransmits -= o.fast_retransmits;
  timeout_retransmits -= o.timeout_retransmits;
  slow_start_retransmits -= o.slow_start_retransmits;
  failed_retransmits -= o.failed_retransmits;
  timeouts_total -= o.timeouts_total;
  timeouts_in_open -= o.timeouts_in_open;
  timeouts_in_disorder -= o.timeouts_in_disorder;
  timeouts_in_recovery -= o.timeouts_in_recovery;
  timeouts_exp_backoff -= o.timeouts_exp_backoff;
  fast_recovery_events -= o.fast_recovery_events;
  dsacks_received -= o.dsacks_received;
  recoveries_with_dsack -= o.recoveries_with_dsack;
  lost_retransmits_detected -= o.lost_retransmits_detected;
  lost_fast_retransmits -= o.lost_fast_retransmits;
  undo_events -= o.undo_events;
  spurious_retransmits -= o.spurious_retransmits;
  spurious_rto_undone -= o.spurious_rto_undone;
  ecn_cwr_events -= o.ecn_cwr_events;
  tlp_probes_sent -= o.tlp_probes_sent;
  er_triggered -= o.er_triggered;
  er_delayed_cancelled -= o.er_delayed_cancelled;
  er_spurious -= o.er_spurious;
  sack_reneg_events -= o.sack_reneg_events;
  bad_acks_ignored -= o.bad_acks_ignored;
  window_probes_sent -= o.window_probes_sent;
  connections -= o.connections;
  connections_aborted -= o.connections_aborted;
  return *this;
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "segments=" << data_segments_sent
     << " retx=" << retransmits_total
     << " fast_retx=" << fast_retransmits
     << " rto=" << timeouts_total
     << " fr_events=" << fast_recovery_events
     << " lost_retx=" << lost_retransmits_detected
     << " undo=" << undo_events;
  return os.str();
}

}  // namespace prr::tcp
