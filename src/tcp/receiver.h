// TCP receiver: in-order delivery tracking, out-of-order interval store,
// SACK block generation (RFC 2018: up to 3 blocks, most recent first),
// DSACK reports for duplicate segments (RFC 2883), and delayed ACKs with
// immediate ACKs on out-of-order or hole-filling data.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/segment.h"
#include "sim/simulator.h"

namespace prr::tcp {

class Receiver {
 public:
  using SendAckFn = std::function<void(net::Segment&&)>;

  struct Config {
    bool sack_enabled = true;
    bool dsack_enabled = true;
    bool timestamps = false;  // RFC 7323 (12% of paper's connections)
    bool ecn = false;         // RFC 3168 ECN echo
    int ack_every = 2;  // delayed ACK: one ACK per this many segments
    // Linux-style quickack: ACK each of the first N in-order segments
    // immediately (helps the sender's slow start clock); 0 disables.
    int quickack_segments = 0;
    sim::Time delack_timeout = sim::Time::milliseconds(40);
    uint64_t rwnd = 16 * 1024 * 1024;
    int max_sack_blocks = 3;  // hard wire cap of 4 (RFC 2018 option space)
    // Stateful SACK reneging (RFC 2018 §8 allows it): at this time the
    // receiver discards its entire out-of-order queue — data it already
    // SACKed — and stops reporting it. Previously-SACKed holes must then
    // be retransmitted by the sender or the connection wedges. Zero = off.
    sim::Time renege_at = sim::Time::zero();
  };

  Receiver(sim::Simulator& sim, Config config, SendAckFn send_ack);

  // Pool-recycle: returns the receiver to a freshly-constructed state
  // under a new config, keeping the ACK callback and OOO-store capacity.
  // Precondition: the owning Simulator has been reset (timers are stale).
  void reset(Config config);

  void on_data(const net::Segment& seg);

  // Forces the advertised window to a value (0 stalls the sender); used
  // by experiments that exercise PRR's banking under rwnd stalls.
  void set_rwnd(uint64_t rwnd) { config_.rwnd = rwnd; }

  uint64_t rcv_nxt() const { return rcv_nxt_; }
  uint64_t segments_received() const { return segments_received_; }
  uint64_t duplicate_segments() const { return duplicate_segments_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t reneged_bytes() const { return reneged_bytes_; }

 private:
  struct OooBlock {
    uint64_t start;
    uint64_t end;
    uint64_t recency;  // higher = more recently updated
  };

  void send_ack_now(std::optional<net::SackBlock> dsack);
  void merge_ooo(uint64_t start, uint64_t end);
  bool covered(uint64_t start, uint64_t end) const;
  void renege();

  sim::Simulator& sim_;
  Config config_;
  SendAckFn send_ack_;
  sim::Timer delack_timer_;
  sim::Timer renege_timer_;

  uint64_t rcv_nxt_ = 0;
  std::vector<OooBlock> ooo_;
  uint64_t recency_counter_ = 0;
  int unacked_segments_ = 0;

  uint32_t ts_recent_ = 0;  // RFC 7323 TS.Recent to echo
  int quickack_left_ = 0;
  bool ece_pending_ = false;  // echo ECE until the sender's CWR arrives
  uint64_t segments_received_ = 0;
  uint64_t duplicate_segments_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t reneged_bytes_ = 0;
};

}  // namespace prr::tcp
