// RFC 3517 fast recovery (Algorithm 1 in the paper): cwnd is dropped to
// ssthresh in one step on entry and stays there; each ACK allows
// MAX(0, cwnd - pipe) to be sent. Exhibits the paper's two standard
// problems: a half-RTT silence under light loss (pipe stays above cwnd
// until half the window's ACKs pass) and arbitrarily large bursts when
// losses drive pipe far below ssthresh.
#pragma once

#include "tcp/recovery/recovery.h"

namespace prr::tcp {

class Rfc3517Recovery final : public RecoveryPolicy {
 public:
  void on_enter(uint64_t flight_bytes, uint64_t ssthresh, uint64_t cwnd,
                uint32_t mss) override {
    (void)flight_bytes;
    (void)cwnd;
    (void)mss;
    ssthresh_ = ssthresh;
  }

  uint64_t on_ack(const RecoveryAckContext&) override { return ssthresh_; }

  void on_sent(uint64_t) override {}

  uint64_t exit_cwnd(uint64_t, uint64_t) override { return ssthresh_; }

  std::string name() const override { return "rfc3517"; }

 private:
  uint64_t ssthresh_ = 0;
};

}  // namespace prr::tcp
