#include "tcp/recovery/rate_halving.h"

#include <algorithm>

namespace prr::tcp {

void RateHalvingRecovery::on_enter(uint64_t flight_bytes, uint64_t ssthresh,
                                   uint64_t cwnd, uint32_t mss) {
  (void)flight_bytes;
  ssthresh_ = ssthresh;
  cwnd_ = cwnd;  // reduction happens gradually, not in one step
  mss_ = mss;
  ack_count_ = 0;
}

uint64_t RateHalvingRecovery::on_ack(const RecoveryAckContext& ctx) {
  ++ack_count_;
  // Rate halving: decrement one MSS on every second ACK while above the
  // congestion-control target.
  if ((ack_count_ & 1) == 0 && cwnd_ > ssthresh_ && cwnd_ >= mss_) {
    cwnd_ -= mss_;
  }
  // Burst avoidance (tcp_cwnd_down): never let cwnd exceed pipe + 1 MSS,
  // so at most one segment can be sent per pipe-reducing ACK.
  cwnd_ = std::min(cwnd_, ctx.pipe_bytes + mss_);
  return cwnd_;
}

uint64_t RateHalvingRecovery::exit_cwnd(uint64_t pipe_bytes,
                                        uint64_t cwnd_bytes) {
  // Linux keeps the (possibly tiny) window it ended recovery with: at
  // most pipe + 1. This is the behaviour PRR was designed to fix.
  (void)cwnd_bytes;
  return std::min(cwnd_, pipe_bytes + mss_);
}

}  // namespace prr::tcp
