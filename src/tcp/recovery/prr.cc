#include "tcp/recovery/prr.h"

#include "tcp/recovery/rate_halving.h"
#include "tcp/recovery/rfc3517.h"

namespace prr::tcp {

std::unique_ptr<RecoveryPolicy> make_recovery_policy(
    RecoveryKind kind, core::ReductionBound bound) {
  switch (kind) {
    case RecoveryKind::kRfc3517:
      return std::make_unique<Rfc3517Recovery>();
    case RecoveryKind::kLinuxRateHalving:
      return std::make_unique<RateHalvingRecovery>();
    case RecoveryKind::kPrr:
      return std::make_unique<PrrRecovery>(bound);
  }
  return nullptr;
}

bool reset_recovery_policy(RecoveryPolicy& policy, RecoveryKind kind,
                           core::ReductionBound bound) {
  switch (kind) {
    case RecoveryKind::kRfc3517:
      if (auto* p = dynamic_cast<Rfc3517Recovery*>(&policy)) {
        *p = Rfc3517Recovery();
        return true;
      }
      return false;
    case RecoveryKind::kLinuxRateHalving:
      if (auto* p = dynamic_cast<RateHalvingRecovery*>(&policy)) {
        *p = RateHalvingRecovery();
        return true;
      }
      return false;
    case RecoveryKind::kPrr:
      if (auto* p = dynamic_cast<PrrRecovery*>(&policy)) {
        *p = PrrRecovery(bound);
        return true;
      }
      return false;
  }
  return false;
}

}  // namespace prr::tcp
