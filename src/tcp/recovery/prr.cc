#include "tcp/recovery/prr.h"

#include "tcp/recovery/rate_halving.h"
#include "tcp/recovery/rfc3517.h"

namespace prr::tcp {

std::unique_ptr<RecoveryPolicy> make_recovery_policy(
    RecoveryKind kind, core::ReductionBound bound) {
  switch (kind) {
    case RecoveryKind::kRfc3517:
      return std::make_unique<Rfc3517Recovery>();
    case RecoveryKind::kLinuxRateHalving:
      return std::make_unique<RateHalvingRecovery>();
    case RecoveryKind::kPrr:
      return std::make_unique<PrrRecovery>(bound);
  }
  return nullptr;
}

}  // namespace prr::tcp
