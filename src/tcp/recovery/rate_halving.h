// Linux (pre-3.x) fast recovery: rate halving with burst avoidance, after
// Mathis & Mahdavi's rate-halving and the tcp_cwnd_down() logic of the
// 2.6 kernels the paper measured. The window is decremented by one MSS on
// every second ACK (spreading the reduction across the round trip) and is
// additionally clamped to pipe + 1 MSS on every ACK, which is what makes
// Linux end recovery with a tiny window when losses are heavy or the
// application stalls — the paper's "slow start after recovery" problem.
#pragma once

#include "tcp/recovery/recovery.h"

namespace prr::tcp {

class RateHalvingRecovery final : public RecoveryPolicy {
 public:
  void on_enter(uint64_t flight_bytes, uint64_t ssthresh, uint64_t cwnd,
                uint32_t mss) override;
  uint64_t on_ack(const RecoveryAckContext& ctx) override;
  void on_sent(uint64_t) override {}
  uint64_t exit_cwnd(uint64_t pipe_bytes, uint64_t cwnd_bytes) override;
  std::string name() const override { return "linux"; }

 private:
  uint64_t ssthresh_ = 0;
  uint64_t cwnd_ = 0;
  uint32_t mss_ = 1;
  uint64_t ack_count_ = 0;
};

}  // namespace prr::tcp
