// Adapter binding the standalone PRR module (core/prr.h) to the
// simulator's RecoveryPolicy interface. All three reduction-bound
// variants (SSRB — the paper's "PRR" — plus CRB and UB for the ablation
// bench) are selected at construction.
#pragma once

#include "core/prr.h"
#include "tcp/recovery/recovery.h"

namespace prr::tcp {

class PrrRecovery final : public RecoveryPolicy {
 public:
  explicit PrrRecovery(
      core::ReductionBound bound = core::ReductionBound::kSlowStart)
      : state_(bound) {}

  void on_enter(uint64_t flight_bytes, uint64_t ssthresh, uint64_t cwnd,
                uint32_t mss) override {
    (void)cwnd;
    state_.enter_recovery(flight_bytes, ssthresh, mss);
  }

  uint64_t on_ack(const RecoveryAckContext& ctx) override {
    const uint64_t sndcnt = state_.on_ack(ctx.delivered_bytes,
                                          ctx.pipe_bytes);
    return ctx.pipe_bytes + sndcnt;  // Algorithm 2: cwnd = pipe + sndcnt
  }

  void on_sent(uint64_t bytes) override { state_.on_data_sent(bytes); }

  uint64_t exit_cwnd(uint64_t, uint64_t) override {
    return state_.exit_cwnd();  // cwnd = ssthresh at the end of recovery
  }

  std::string name() const override {
    switch (state_.bound()) {
      case core::ReductionBound::kSlowStart: return "prr";
      case core::ReductionBound::kConservative: return "prr-crb";
      case core::ReductionBound::kUnlimited: return "prr-ub";
    }
    return "prr";
  }

  const core::PrrState& state() const { return state_; }

 private:
  core::PrrState state_;
};

std::unique_ptr<RecoveryPolicy> make_recovery_policy(
    RecoveryKind kind,
    core::ReductionBound bound = core::ReductionBound::kSlowStart);

// Pool-recycle support: rewinds `policy` in place to the state
// make_recovery_policy(kind, bound) would construct, with no allocation.
// Returns false when `policy` is not an instance of `kind`.
bool reset_recovery_policy(RecoveryPolicy& policy, RecoveryKind kind,
                           core::ReductionBound bound =
                               core::ReductionBound::kSlowStart);

}  // namespace prr::tcp
