// Fast-recovery window regulation as a policy object. The sender owns the
// scoreboard, chooses *which* bytes to send (retransmissions before new
// data), and asks the policy only *how much* may be sent — the separation
// the paper calls out ("the decision of which data to send ... is
// independent of PRR").
//
// Contract per recovery episode:
//   on_enter(...)               once, on the ACK that triggers recovery;
//   cwnd_bytes = on_ack(...)    for every ACK during recovery, including
//                               the triggering one. The sender may then
//                               transmit while pipe < cwnd_bytes;
//   on_sent(bytes)              for every (re)transmission in recovery;
//   exit_cwnd(...)              once, when snd.una passes the recovery
//                               point; the result becomes cwnd.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace prr::tcp {

struct RecoveryAckContext {
  uint64_t delivered_bytes = 0;  // DeliveredData for this ACK
  uint64_t pipe_bytes = 0;       // RFC 3517 SetPipe
  uint64_t cwnd_bytes = 0;       // sender's current cwnd
  uint32_t mss = 1;
};

class RecoveryPolicy {
 public:
  virtual ~RecoveryPolicy() = default;

  // `flight_bytes` is snd.nxt - snd.una at entry (RecoverFS); `ssthresh`
  // the target chosen by congestion control; `cwnd` the window at entry.
  virtual void on_enter(uint64_t flight_bytes, uint64_t ssthresh,
                        uint64_t cwnd, uint32_t mss) = 0;

  // Returns the cwnd (bytes) to use until the next ACK. The sender
  // transmits while pipe < cwnd.
  virtual uint64_t on_ack(const RecoveryAckContext& ctx) = 0;

  virtual void on_sent(uint64_t bytes) = 0;

  // cwnd to install on leaving recovery.
  virtual uint64_t exit_cwnd(uint64_t pipe_bytes, uint64_t cwnd_bytes) = 0;

  virtual std::string name() const = 0;
};

enum class RecoveryKind { kRfc3517, kLinuxRateHalving, kPrr };

}  // namespace prr::tcp
