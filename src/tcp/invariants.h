// TCP invariant checker: a per-ACK observer asserting the paper's core
// guarantees on a live Sender and recording violations as structured
// records instead of crashing — the safety net the chaos harness uses to
// quarantine misbehaving connections (exp/experiment.h).
//
// Checked per ACK (after the sender fully processed it):
//   - snd.una is monotone non-decreasing and never passes snd.nxt;
//   - cwnd >= 1 MSS outside fast recovery (inside recovery the window
//     regulation may legitimately compute pipe + sndcnt < MSS);
//   - cwnd stays within the peer's receive window (plus the initial
//     window of slack, since TCP never validates cwnd against rwnd
//     directly — the send gate does);
//   - pipe never exceeds twice the flight size (every outstanding octet
//     is counted at most once as original and once as retransmission);
//   - during PRR recovery, the paper's §3 bounds: prr_out never exceeds
//     prr_delivered by more than the slow-start allowance ("never more
//     than slow start"), and the episode's cwnd target is honored.
// Checked at teardown (finalize()):
//   - no loss-detection timer remains armed once the flow completed or
//     aborted (timer leaks wedge the event queue at scale).
//
// The checker is attach-only: construct it next to a Sender and it chains
// onto the sender's hooks. Connections that never construct one pay
// nothing — the default experiment hot path runs checker-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "tcp/sender.h"

namespace prr::tcp {

enum class InvariantKind {
  kSndUnaRegressed,
  kSndUnaBeyondSndNxt,
  kCwndBelowFloor,
  kCwndAboveRwnd,
  kPipeExceedsFlight,
  kPrrBeyondSlowStart,
  kTimerLeak,
  kInjected,  // synthetic violation for quarantine-path testing
  // Torture-engine oracles (torture/oracles.h) report through the same
  // violation/quarantine pipeline:
  kNoForwardProgress,  // snd_una stuck across K RTO backoffs, path up
  kNoTermination,      // flow neither finished nor aborted by the deadline
  kConservation,       // byte-accounting identity broken at teardown
  kArmDivergence,      // arms delivered different byte streams (cross-arm)
};

const char* to_string(InvariantKind kind);

struct InvariantViolation {
  InvariantKind kind = InvariantKind::kInjected;
  sim::Time at;
  std::string detail;
};

class InvariantChecker {
 public:
  struct Config {
    // Record one synthetic kInjected violation on the Nth checked ACK
    // (1-based; 0 = never). Exists so the quarantine machinery can be
    // exercised end-to-end without a real bug.
    uint64_t inject_on_ack = 0;
  };

  // Chains onto the sender's on_post_ack_hook (preserving any existing
  // hook). The checker must outlive the sender's ACK processing.
  InvariantChecker(sim::Simulator& sim, Sender& sender, Config config);
  InvariantChecker(sim::Simulator& sim, Sender& sender)
      : InvariantChecker(sim, sender, Config()) {}

  // Teardown checks; call once the simulation has finished.
  void finalize();

  // Entry point for external oracles (torture/oracles.h): the violation
  // joins this checker's list — and its flight-recorder annotation — so
  // oracle findings flow through the same quarantine/replay pipeline as
  // the per-ACK checks.
  void record_external(InvariantKind kind, std::string detail) {
    record(kind, std::move(detail));
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  uint64_t acks_checked() const { return acks_checked_; }

 private:
  void on_post_ack();
  void record(InvariantKind kind, std::string detail);

  sim::Simulator& sim_;
  Sender& sender_;
  Config config_;
  uint64_t prev_una_ = 0;
  // Widest window the peer ever advertised — the cwnd-vs-rwnd bound's
  // reference (a later shrink does not invalidate earlier cwnd growth).
  uint64_t max_rwnd_seen_ = 0;
  uint64_t acks_checked_ = 0;
  // PRR episode tracking for the "never more than slow start" bound:
  // slow-start growth is one extra MSS per ACK, so the bound scales with
  // the number of ACKs the current recovery episode has processed.
  bool prr_was_in_recovery_ = false;
  uint64_t prr_prev_delivered_ = 0;
  uint64_t prr_episode_acks_ = 0;
  bool finalized_ = false;
  std::vector<InvariantViolation> violations_;
};

}  // namespace prr::tcp
