#include "tcp/connection.h"

#include <utility>

namespace prr::tcp {

Connection::Connection(sim::Simulator& sim, ConnectionConfig config,
                       sim::Rng rng, Metrics* metrics,
                       stats::RecoveryLog* recovery_log)
    : config_(config) {
  path_ = std::make_unique<net::Path>(sim, config.path, rng);
  sender_ = std::make_unique<Sender>(
      sim, config.sender,
      [this](net::Segment&& seg) { path_->send_data(std::move(seg)); },
      metrics, recovery_log);
  receiver_ = std::make_unique<Receiver>(
      sim, config.receiver,
      [this](net::Segment&& seg) { path_->send_ack(std::move(seg)); });
  path_->set_data_sink(
      [this](net::Segment&& seg) { receiver_->on_data(seg); });
  path_->set_ack_sink(
      [this](net::Segment&& seg) { sender_->on_ack_segment(seg); });
  if (metrics) ++metrics->connections;
}

void Connection::reset(ConnectionConfig config, sim::Rng rng,
                       Metrics* metrics, stats::RecoveryLog* recovery_log) {
  config_ = config;
  // Same sub-object order as the constructor. The data/ACK sinks and the
  // send callbacks capture `this`/path_ which are stable across
  // recycling, so no rewiring is needed.
  path_->reset(config.path, rng);
  sender_->reset(config.sender, metrics, recovery_log);
  receiver_->reset(config.receiver);
  if (metrics) ++metrics->connections;
}

}  // namespace prr::tcp
