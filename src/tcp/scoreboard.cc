#include "tcp/scoreboard.h"

#include <algorithm>
#include <cassert>

namespace prr::tcp {

// --- incremental accounting -------------------------------------------
// Every flag flip goes through one of these helpers; each is idempotent,
// so call sites never need to pre-check the flag to keep tallies right.

void Scoreboard::set_sacked(SegRecord& r) {
  if (r.sacked) return;
  sacked_bytes_ += r.len();
  ++sacked_segs_;
  if (r.lost) {
    lost_bytes_ -= r.len();
    --lost_segs_;
  }
  if (r.retransmitted) retransmitted_in_flight_bytes_ -= r.len();
  r.sacked = true;
}

void Scoreboard::clear_sacked(SegRecord& r) {
  if (!r.sacked) return;
  sacked_bytes_ -= r.len();
  --sacked_segs_;
  // Stale lost/retransmitted flags re-enter the pipe tallies they were
  // excluded from while the record counted as SACKed.
  if (r.lost) {
    lost_bytes_ += r.len();
    ++lost_segs_;
  }
  if (r.retransmitted) retransmitted_in_flight_bytes_ += r.len();
  r.sacked = false;
}

void Scoreboard::set_lost(SegRecord& r) {
  if (r.lost) return;
  if (!r.sacked) {
    lost_bytes_ += r.len();
    ++lost_segs_;
  }
  r.lost = true;
}

void Scoreboard::clear_lost(SegRecord& r) {
  if (!r.lost) return;
  if (!r.sacked) {
    lost_bytes_ -= r.len();
    --lost_segs_;
  }
  r.lost = false;
}

void Scoreboard::set_retransmitted(SegRecord& r) {
  if (!r.retransmitted && !r.sacked) {
    retransmitted_in_flight_bytes_ += r.len();
  }
  r.retransmitted = true;
}

void Scoreboard::clear_retransmitted(SegRecord& r) {
  if (r.retransmitted && !r.sacked) {
    retransmitted_in_flight_bytes_ -= r.len();
  }
  r.retransmitted = false;
}

void Scoreboard::account_remove(const SegRecord& r) {
  total_bytes_ -= r.len();
  if (r.sacked) {
    sacked_bytes_ -= r.len();
    --sacked_segs_;
    return;
  }
  if (r.lost) {
    lost_bytes_ -= r.len();
    --lost_segs_;
  }
  if (r.retransmitted) retransmitted_in_flight_bytes_ -= r.len();
}

// ----------------------------------------------------------------------

void Scoreboard::reset(uint64_t snd_una) {
  snd_una_ = snd_una;
  highest_sacked_end_ = snd_una;
  records_.clear();
  total_bytes_ = 0;
  sacked_bytes_ = 0;
  lost_bytes_ = 0;
  retransmitted_in_flight_bytes_ = 0;
  sacked_segs_ = 0;
  lost_segs_ = 0;
}

void Scoreboard::on_transmit(uint64_t start, uint64_t end, sim::Time now) {
  assert(start >= snd_una_);
  assert(records_.empty() || start >= records_.back().end);
  SegRecord r;
  r.start = start;
  r.end = end;
  r.first_tx_time = now;
  r.last_tx_time = now;
  total_bytes_ += r.len();
  records_.push_back(r);
}

SegRecord* Scoreboard::find(uint64_t start) {
  // records_ is sorted by start and non-overlapping: binary-search the
  // last record starting at or below `start`, then check containment.
  auto it = std::upper_bound(
      records_.begin(), records_.end(), start,
      [](uint64_t v, const SegRecord& r) { return v < r.start; });
  if (it == records_.begin()) return nullptr;
  --it;
  return (it->start <= start && start < it->end) ? &*it : nullptr;
}

void Scoreboard::on_retransmit(uint64_t start, sim::Time now,
                               uint64_t snd_nxt, bool fast) {
  SegRecord* r = find(start);
  assert(r != nullptr);
  set_retransmitted(*r);
  r->ever_retransmitted = true;
  r->last_retx_was_fast = fast;
  ++r->retrans_count;
  r->retrans_marker = snd_nxt;
  r->last_tx_time = now;
}

AckOutcome Scoreboard::on_ack(const net::Segment& ack, sim::Time now,
                              bool detect_lost_retransmits) {
  AckOutcome out;
  // SACK frontier before this ACK: deliveries of never-retransmitted data
  // from below it are reordering evidence (the original arrived after
  // higher data did).
  const uint64_t prior_fack = highest_sacked_end_;

  if (ack.dsack) {
    out.saw_dsack = true;
    out.dsack_block = ack.dsack;
  }

  // 1. Cumulative advance: pop fully-ACKed records.
  if (ack.ack > snd_una_) {
    out.una_advanced = true;
    out.newly_acked_bytes = ack.ack - snd_una_;
    while (!records_.empty() && records_.front().end <= ack.ack) {
      const SegRecord& r = records_.front();
      if (!r.sacked) {
        if (!r.ever_retransmitted && prior_fack > r.end) {
          const int dist =
              static_cast<int>((prior_fack - r.start) / mss_);
          out.reorder_distance_segs =
              std::max(out.reorder_distance_segs, std::max(dist, 1));
        }
        // Already-SACKed bytes were counted as delivered when SACKed; a
        // cumulative ACK over them must not double-count.
      } else {
        out.newly_acked_bytes -= r.len();
      }
      if (!r.ever_retransmitted) {
        // Karn: sample only never-retransmitted data; use the newest.
        out.rtt_sample = now - r.last_tx_time;
      } else {
        out.acked_rexmit_tx_time = r.last_tx_time;
      }
      account_remove(r);
      records_.pop_front();
    }
    // Partial-record coverage cannot happen (ACKs land on segment
    // boundaries in this model), but guard anyway.
    snd_una_ = ack.ack;
    if (highest_sacked_end_ < snd_una_) highest_sacked_end_ = snd_una_;
  }

  // 2. SACK blocks: mark newly-SACKed records.
  // Track the highest start among records SACKed by *this* ACK: only
  // data first sent after a retransmission (seq >= the snd.nxt recorded
  // at retransmit time) can prove that retransmission lost.
  uint64_t max_newly_sacked_start = 0;
  bool any_newly_sacked = false;
  for (const auto& blk : ack.sacks) {
    for (auto& r : records_) {
      if (r.sacked) continue;
      if (blk.start <= r.start && r.end <= blk.end) {
        set_sacked(r);
        out.newly_sacked_bytes += r.len();
        any_newly_sacked = true;
        max_newly_sacked_start = std::max(max_newly_sacked_start, r.start);
        highest_sacked_end_ = std::max(highest_sacked_end_, r.end);
        if (!r.ever_retransmitted && prior_fack > r.end) {
          const int dist =
              static_cast<int>((prior_fack - r.start) / mss_);
          out.reorder_distance_segs =
              std::max(out.reorder_distance_segs, std::max(dist, 1));
          clear_lost(r);  // it clearly is not lost
        }
      }
    }
  }

  // 3. Lost-retransmission detection (Linux tcp_mark_lost_retrans): a
  // still-unSACKed record whose retransmission predates data that was
  // *first transmitted after it* and has now been SACKed was lost again.
  // Sequence test: only bytes at/above the snd.nxt recorded when the
  // retransmission went out can have been first-sent after it.
  if (detect_lost_retransmits && any_newly_sacked) {
    for (auto& r : records_) {
      if (r.sacked || !r.retransmitted) continue;
      if (r.retrans_marker > 0 &&
          max_newly_sacked_start >= r.retrans_marker) {
        clear_retransmitted(r);  // that copy is gone; eligible again
        set_lost(r);
        ++out.lost_retransmits_detected;
        if (r.last_retx_was_fast) ++out.lost_fast_retransmits_detected;
      }
    }
  }

  return out;
}

int Scoreboard::update_loss_marks(int dupthresh, bool use_fack,
                                  bool in_recovery) {
  (void)in_recovery;
  int newly_lost = 0;
  const uint64_t fack = highest_sacked_end_;
  if (use_fack) {
    // Linux FACK (tcp_update_scoreboard / tcp_mark_head_lost): with
    // fackets_out segments between snd.una and the forward-most SACK,
    // mark the unSACKed segments among the first fackets_out - dupthresh
    // of them lost. Marking is progressive: each new SACK pushes the
    // frontier and exposes one more hole.
    if (fack <= snd_una_) return 0;
    const uint64_t fackets =
        (fack - snd_una_ + mss_ - 1) / mss_;
    if (fackets <= static_cast<uint64_t>(dupthresh)) return 0;
    const uint64_t mark_below =
        snd_una_ + (fackets - static_cast<uint64_t>(dupthresh)) * mss_;
    for (auto& r : records_) {
      if (r.start >= mark_below) break;
      if (r.sacked || r.lost) continue;
      set_lost(r);
      ++newly_lost;
    }
    return newly_lost;
  }
  // RFC 6675 IsLost: more than (dupthresh-1)*SMSS SACKed bytes above the
  // record. One forward pass: SACKed bytes above r = total SACKed minus
  // the SACKed bytes accumulated below it (records_ is start-sorted).
  const uint64_t thresh = static_cast<uint64_t>(dupthresh - 1) * mss_;
  uint64_t sacked_below = 0;
  for (auto& r : records_) {
    if (r.sacked) {
      sacked_below += r.len();
      continue;
    }
    if (r.lost) continue;
    if (sacked_bytes_ - sacked_below > thresh) {
      set_lost(r);
      ++newly_lost;
    }
  }
  return newly_lost;
}

void Scoreboard::on_timeout_mark_all_lost() {
  for (auto& r : records_) {
    if (r.sacked) continue;
    set_lost(r);
    clear_retransmitted(r);  // everything is slated for retransmission
  }
}

uint64_t Scoreboard::forget_sack_marks() {
  uint64_t forgotten = 0;
  for (auto& r : records_) {
    if (!r.sacked) continue;
    forgotten += r.len();
    clear_sacked(r);
  }
  // The FACK frontier was built from marks we no longer believe.
  highest_sacked_end_ = snd_una_;
  return forgotten;
}

void Scoreboard::clear_unretransmitted_loss_marks() {
  for (auto& r : records_) {
    if (r.lost && !r.retransmitted) clear_lost(r);
  }
}

void Scoreboard::mark_first_hole_lost() {
  for (auto& r : records_) {
    if (r.sacked) continue;
    set_lost(r);
    return;
  }
}

bool Scoreboard::first_hole_lost() const {
  for (const auto& r : records_) {
    if (r.sacked) continue;
    return r.lost;
  }
  return false;
}

const SegRecord* Scoreboard::next_retransmit_candidate() const {
  for (const auto& r : records_) {
    if (r.lost && !r.sacked && !r.retransmitted) return &r;
  }
  return nullptr;
}

const SegRecord* Scoreboard::last_unsacked() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (!it->sacked) return &*it;
  }
  return nullptr;
}

}  // namespace prr::tcp
