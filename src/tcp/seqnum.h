// Wrap-aware 32-bit TCP sequence-number arithmetic (RFC 793 comparison
// rules). The simulator tracks sequences as 64-bit values internally; this
// type provides the on-the-wire view and is exhaustively tested so the
// segment model stays honest about wraparound.
#pragma once

#include <cstdint>

namespace prr::tcp {

class SeqNum {
 public:
  constexpr SeqNum() = default;
  explicit constexpr SeqNum(uint32_t v) : v_(v) {}
  static constexpr SeqNum from_u64(uint64_t v) {
    return SeqNum(static_cast<uint32_t>(v));
  }

  constexpr uint32_t value() const { return v_; }

  // Signed circular distance from `other` to this (RFC 1982 style): the
  // result is correct when the true distance is < 2^31.
  constexpr int32_t operator-(SeqNum other) const {
    return static_cast<int32_t>(v_ - other.v_);
  }
  constexpr SeqNum operator+(uint32_t n) const { return SeqNum(v_ + n); }
  constexpr SeqNum operator-(uint32_t n) const { return SeqNum(v_ - n); }
  constexpr SeqNum& operator+=(uint32_t n) { v_ += n; return *this; }

  friend constexpr bool operator==(SeqNum a, SeqNum b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(SeqNum a, SeqNum b) { return a.v_ != b.v_; }

  // Circular ordering: a < b iff a precedes b on the sequence circle.
  friend constexpr bool seq_lt(SeqNum a, SeqNum b) { return (b - a) > 0; }
  friend constexpr bool seq_leq(SeqNum a, SeqNum b) { return (b - a) >= 0; }
  friend constexpr bool seq_gt(SeqNum a, SeqNum b) { return (a - b) > 0; }
  friend constexpr bool seq_geq(SeqNum a, SeqNum b) { return (a - b) >= 0; }

  // True if this lies in the half-open window [lo, lo+len).
  constexpr bool in_window(SeqNum lo, uint32_t len) const {
    return static_cast<uint32_t>(v_ - lo.v_) < len;
  }

 private:
  uint32_t v_ = 0;
};

}  // namespace prr::tcp
