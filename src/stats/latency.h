// Per-HTTP-response TCP latency tracking, using the paper's definition:
// from when the server sends the first byte of the response until it
// receives the ACK for the last byte (§1). Also records whether the
// response experienced any retransmission and the path's ideal (min) RTT,
// which Figure 1 uses as the ideal response time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/quantiles.h"

namespace prr::stats {

struct ResponseRecord {
  uint64_t bytes = 0;
  sim::Time first_byte_sent;
  sim::Time last_byte_acked;
  bool had_retransmit = false;
  bool completed = false;
  double path_rtt_ms = 0;  // configured two-way propagation delay

  double latency_ms() const {
    return (last_byte_acked - first_byte_sent).ms_d();
  }
  double rtts_taken() const {
    return path_rtt_ms > 0 ? latency_ms() / path_rtt_ms : 0;
  }
};

class LatencyTracker {
 public:
  void add(ResponseRecord r) { responses_.push_back(r); }
  void append(const LatencyTracker& other);
  // Deterministic shard merge: merged in connection-id order by the
  // parallel harness, reproducing the serial response sequence exactly.
  void merge(const LatencyTracker& other) { append(other); }
  const std::vector<ResponseRecord>& responses() const { return responses_; }

  enum class Filter { kAll, kWithRetransmit, kWithoutRetransmit };

  util::Samples latency_ms(Filter f = Filter::kAll,
                           uint64_t min_bytes = 0,
                           uint64_t max_bytes = UINT64_MAX) const;
  util::Samples rtts_taken(Filter f = Filter::kAll) const;
  double fraction_with_retransmit() const;

 private:
  std::vector<ResponseRecord> responses_;
};

}  // namespace prr::stats
