// Per-HTTP-response TCP latency tracking, using the paper's definition:
// from when the server sends the first byte of the response until it
// receives the ACK for the last byte (§1). Also records whether the
// response experienced any retransmission and the path's ideal (min) RTT,
// which Figure 1 uses as the ideal response time.
//
// Two storage modes:
//  - unbounded (default): every ResponseRecord is kept, so exact
//    quantiles over arbitrary filters are available (the table benches).
//  - bounded: O(1) counters plus log2 histograms only — the form the
//    million-connection streaming sweeps use, where keeping a ~48-byte
//    record per response would make memory grow with N. Counters are
//    maintained in BOTH modes, so count() and fraction_with_retransmit()
//    are mode-independent and shard merges stay bit-identical at any
//    worker count (counter sums and per-bucket sums are associative).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/log2_hist.h"
#include "util/quantiles.h"

namespace prr::stats {

struct ResponseRecord {
  uint64_t bytes = 0;
  sim::Time first_byte_sent;
  sim::Time last_byte_acked;
  bool had_retransmit = false;
  bool completed = false;
  double path_rtt_ms = 0;  // configured two-way propagation delay

  double latency_ms() const {
    return (last_byte_acked - first_byte_sent).ms_d();
  }
  double rtts_taken() const {
    return path_rtt_ms > 0 ? latency_ms() / path_rtt_ms : 0;
  }
};

class LatencyTracker {
 public:
  void add(ResponseRecord r);
  void append(const LatencyTracker& other);
  // Deterministic shard merge: merged in connection-id order by the
  // parallel harness, reproducing the serial response sequence exactly.
  void merge(const LatencyTracker& other) { append(other); }
  const std::vector<ResponseRecord>& responses() const { return responses_; }

  // Switches to bounded (counters + histograms) storage. Only valid
  // before the first add(); records already kept are not re-folded.
  void set_bounded(bool bounded) { bounded_ = bounded; }
  bool bounded() const { return bounded_; }

  // Total responses observed, in either mode (== responses().size() in
  // unbounded mode). The sweep fingerprints hash this, not the vector.
  uint64_t count() const { return total_; }
  uint64_t completed_count() const { return completed_; }

  // Bounded-mode distributions (also populated in unbounded mode so the
  // two modes report identical aggregate JSON for the same run).
  const util::Log2Histogram& latency_us_hist() const { return latency_us_; }
  const util::Log2Histogram& rtts_milli_hist() const { return rtts_milli_; }

  enum class Filter { kAll, kWithRetransmit, kWithoutRetransmit };

  // Exact-sample views; empty in bounded mode (use the histograms).
  util::Samples latency_ms(Filter f = Filter::kAll,
                           uint64_t min_bytes = 0,
                           uint64_t max_bytes = UINT64_MAX) const;
  util::Samples rtts_taken(Filter f = Filter::kAll) const;
  double fraction_with_retransmit() const;

 private:
  std::vector<ResponseRecord> responses_;
  bool bounded_ = false;
  uint64_t total_ = 0;
  uint64_t completed_ = 0;
  uint64_t completed_with_retx_ = 0;
  util::Log2Histogram latency_us_;
  util::Log2Histogram rtts_milli_;
};

}  // namespace prr::stats
