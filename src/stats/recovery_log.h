// Per-recovery-event instrumentation: everything Tables 5, 6, 7, Fig 5 and
// Table 10 need. The sender appends one record per fast-recovery episode.
//
// Like LatencyTracker, the log has an unbounded mode (every event kept,
// exact quantiles) and a bounded mode for streaming sweeps (counters +
// log2 histograms only, O(1) memory per arm). The classification
// counters are maintained in both modes, so count() and the fraction_*
// accessors report identical values either way.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/log2_hist.h"
#include "util/quantiles.h"

namespace prr::stats {

struct RecoveryEvent {
  sim::Time start;
  sim::Time end;
  // All window quantities in bytes at the named instant.
  uint64_t pipe_at_start = 0;
  uint64_t ssthresh = 0;
  uint64_t cwnd_at_start = 0;
  uint64_t cwnd_at_exit = 0;       // just prior to exit adjustment
  uint64_t cwnd_after_exit = 0;    // after the exit adjustment
  uint64_t pipe_at_exit = 0;
  uint32_t mss = 1;
  uint64_t retransmits = 0;        // segments retransmitted during event
  uint64_t bytes_sent_during = 0;  // all data sent while in recovery
  uint64_t max_burst_segments = 0; // largest single-ACK send burst
  bool interrupted_by_timeout = false;
  bool completed = false;          // snd.una reached the recovery point
  bool slow_start_after = false;   // exited with cwnd < ssthresh

  sim::Time duration() const { return end - start; }
  // Segment-denominated views (paper tables are in segments).
  double pipe_minus_ssthresh_segs() const {
    return (static_cast<double>(pipe_at_start) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_minus_ssthresh_at_exit_segs() const {
    return (static_cast<double>(cwnd_at_exit) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_after_exit_segs() const {
    return static_cast<double>(cwnd_after_exit) / mss;
  }
};

class RecoveryLog {
 public:
  void add(RecoveryEvent e);
  void append(const RecoveryLog& other);
  // Deterministic shard merge: callers merge shards in connection-id
  // order, so the concatenated event list is byte-identical to a serial
  // run (events within a shard are already in emission order).
  void merge(const RecoveryLog& other) { append(other); }
  const std::vector<RecoveryEvent>& events() const { return events_; }
  // Total events observed in either mode (== events().size() when
  // unbounded).
  std::size_t count() const { return total_; }

  // Switches to bounded (counters + histograms) storage. Only valid
  // before the first add().
  void set_bounded(bool bounded) { bounded_ = bounded; }
  bool bounded() const { return bounded_; }

  // Bounded-mode distributions (populated in both modes).
  const util::Log2Histogram& duration_us_hist() const { return duration_us_; }
  const util::Log2Histogram& burst_hist() const { return burst_; }

  // Table 5: fraction of events starting in each PRR mode.
  double fraction_start_below_ssthresh() const;   // pipe < ssthresh
  double fraction_start_equal_ssthresh() const;
  double fraction_start_above_ssthresh() const;   // pipe > ssthresh

  // Exact-sample views; empty in bounded mode (use the histograms).
  util::Samples pipe_minus_ssthresh_segs() const;       // Table 5 quantiles
  util::Samples cwnd_minus_ssthresh_exit_segs() const;  // Table 6
  util::Samples cwnd_after_exit_segs() const;           // Table 7
  util::Samples recovery_time_ms() const;               // Fig 5
  util::Samples burst_sizes() const;

  double fraction_slow_start_after() const;  // Table 10 row
  double fraction_with_timeout() const;

 private:
  std::vector<RecoveryEvent> events_;
  bool bounded_ = false;
  uint64_t total_ = 0;
  uint64_t below_ = 0;
  uint64_t equal_ = 0;
  uint64_t above_ = 0;
  uint64_t completed_ = 0;
  uint64_t slow_start_after_ = 0;
  uint64_t timeout_ = 0;
  util::Log2Histogram duration_us_;
  util::Log2Histogram burst_;
};

}  // namespace prr::stats
