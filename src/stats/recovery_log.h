// Per-recovery-event instrumentation: everything Tables 5, 6, 7, Fig 5 and
// Table 10 need. The sender appends one record per fast-recovery episode.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "util/quantiles.h"

namespace prr::stats {

struct RecoveryEvent {
  sim::Time start;
  sim::Time end;
  // All window quantities in bytes at the named instant.
  uint64_t pipe_at_start = 0;
  uint64_t ssthresh = 0;
  uint64_t cwnd_at_start = 0;
  uint64_t cwnd_at_exit = 0;       // just prior to exit adjustment
  uint64_t cwnd_after_exit = 0;    // after the exit adjustment
  uint64_t pipe_at_exit = 0;
  uint32_t mss = 1;
  uint64_t retransmits = 0;        // segments retransmitted during event
  uint64_t bytes_sent_during = 0;  // all data sent while in recovery
  uint64_t max_burst_segments = 0; // largest single-ACK send burst
  bool interrupted_by_timeout = false;
  bool completed = false;          // snd.una reached the recovery point
  bool slow_start_after = false;   // exited with cwnd < ssthresh

  sim::Time duration() const { return end - start; }
  // Segment-denominated views (paper tables are in segments).
  double pipe_minus_ssthresh_segs() const {
    return (static_cast<double>(pipe_at_start) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_minus_ssthresh_at_exit_segs() const {
    return (static_cast<double>(cwnd_at_exit) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_after_exit_segs() const {
    return static_cast<double>(cwnd_after_exit) / mss;
  }
};

class RecoveryLog {
 public:
  void add(RecoveryEvent e) { events_.push_back(e); }
  void append(const RecoveryLog& other);
  // Deterministic shard merge: callers merge shards in connection-id
  // order, so the concatenated event list is byte-identical to a serial
  // run (events within a shard are already in emission order).
  void merge(const RecoveryLog& other) { append(other); }
  const std::vector<RecoveryEvent>& events() const { return events_; }
  std::size_t count() const { return events_.size(); }

  // Table 5: fraction of events starting in each PRR mode.
  double fraction_start_below_ssthresh() const;   // pipe < ssthresh
  double fraction_start_equal_ssthresh() const;
  double fraction_start_above_ssthresh() const;   // pipe > ssthresh

  util::Samples pipe_minus_ssthresh_segs() const;       // Table 5 quantiles
  util::Samples cwnd_minus_ssthresh_exit_segs() const;  // Table 6
  util::Samples cwnd_after_exit_segs() const;           // Table 7
  util::Samples recovery_time_ms() const;               // Fig 5
  util::Samples burst_sizes() const;

  double fraction_slow_start_after() const;  // Table 10 row
  double fraction_with_timeout() const;

 private:
  std::vector<RecoveryEvent> events_;
};

}  // namespace prr::stats
