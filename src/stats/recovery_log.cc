#include "stats/recovery_log.h"

namespace prr::stats {

void RecoveryLog::append(const RecoveryLog& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

namespace {
// The paper's Table 5 works in whole segments; compare pipe and ssthresh
// in segment units so "equal" means within the same segment count.
int seg_diff(const RecoveryEvent& e) {
  const int64_t pipe_segs =
      static_cast<int64_t>(e.pipe_at_start / e.mss);
  const int64_t ss_segs = static_cast<int64_t>(e.ssthresh / e.mss);
  return static_cast<int>(pipe_segs - ss_segs);
}
}  // namespace

double RecoveryLog::fraction_start_below_ssthresh() const {
  if (events_.empty()) return 0;
  std::size_t n = 0;
  for (const auto& e : events_) n += seg_diff(e) < 0;
  return static_cast<double>(n) / static_cast<double>(events_.size());
}

double RecoveryLog::fraction_start_equal_ssthresh() const {
  if (events_.empty()) return 0;
  std::size_t n = 0;
  for (const auto& e : events_) n += seg_diff(e) == 0;
  return static_cast<double>(n) / static_cast<double>(events_.size());
}

double RecoveryLog::fraction_start_above_ssthresh() const {
  if (events_.empty()) return 0;
  std::size_t n = 0;
  for (const auto& e : events_) n += seg_diff(e) > 0;
  return static_cast<double>(n) / static_cast<double>(events_.size());
}

util::Samples RecoveryLog::pipe_minus_ssthresh_segs() const {
  util::Samples s;
  for (const auto& e : events_) s.add(e.pipe_minus_ssthresh_segs());
  return s;
}

util::Samples RecoveryLog::cwnd_minus_ssthresh_exit_segs() const {
  util::Samples s;
  for (const auto& e : events_)
    if (e.completed) s.add(e.cwnd_minus_ssthresh_at_exit_segs());
  return s;
}

util::Samples RecoveryLog::cwnd_after_exit_segs() const {
  util::Samples s;
  for (const auto& e : events_)
    if (e.completed) s.add(e.cwnd_after_exit_segs());
  return s;
}

util::Samples RecoveryLog::recovery_time_ms() const {
  util::Samples s;
  for (const auto& e : events_) s.add(e.duration().ms_d());
  return s;
}

util::Samples RecoveryLog::burst_sizes() const {
  util::Samples s;
  for (const auto& e : events_)
    s.add(static_cast<double>(e.max_burst_segments));
  return s;
}

double RecoveryLog::fraction_slow_start_after() const {
  if (events_.empty()) return 0;
  std::size_t n = 0, denom = 0;
  for (const auto& e : events_) {
    if (!e.completed) continue;
    ++denom;
    n += e.slow_start_after;
  }
  return denom == 0 ? 0 : static_cast<double>(n) / static_cast<double>(denom);
}

double RecoveryLog::fraction_with_timeout() const {
  if (events_.empty()) return 0;
  std::size_t n = 0;
  for (const auto& e : events_) n += e.interrupted_by_timeout;
  return static_cast<double>(n) / static_cast<double>(events_.size());
}

}  // namespace prr::stats
