#include "stats/recovery_log.h"

namespace prr::stats {

namespace {
// The paper's Table 5 works in whole segments; compare pipe and ssthresh
// in segment units so "equal" means within the same segment count.
int seg_diff(const RecoveryEvent& e) {
  const int64_t pipe_segs =
      static_cast<int64_t>(e.pipe_at_start / e.mss);
  const int64_t ss_segs = static_cast<int64_t>(e.ssthresh / e.mss);
  return static_cast<int>(pipe_segs - ss_segs);
}
}  // namespace

void RecoveryLog::add(RecoveryEvent e) {
  ++total_;
  const int d = seg_diff(e);
  below_ += d < 0;
  equal_ += d == 0;
  above_ += d > 0;
  if (e.completed) {
    ++completed_;
    slow_start_after_ += e.slow_start_after;
  }
  timeout_ += e.interrupted_by_timeout;
  const double dur_ms = e.duration().ms_d();
  duration_us_.record(dur_ms <= 0 ? 0
                                  : static_cast<uint64_t>(dur_ms * 1000.0));
  burst_.record(e.max_burst_segments);
  if (!bounded_) events_.push_back(e);
}

void RecoveryLog::append(const RecoveryLog& other) {
  total_ += other.total_;
  below_ += other.below_;
  equal_ += other.equal_;
  above_ += other.above_;
  completed_ += other.completed_;
  slow_start_after_ += other.slow_start_after_;
  timeout_ += other.timeout_;
  duration_us_.merge(other.duration_us_);
  burst_.merge(other.burst_);
  if (!bounded_)
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
}

double RecoveryLog::fraction_start_below_ssthresh() const {
  return total_ == 0 ? 0
                     : static_cast<double>(below_) /
                           static_cast<double>(total_);
}

double RecoveryLog::fraction_start_equal_ssthresh() const {
  return total_ == 0 ? 0
                     : static_cast<double>(equal_) /
                           static_cast<double>(total_);
}

double RecoveryLog::fraction_start_above_ssthresh() const {
  return total_ == 0 ? 0
                     : static_cast<double>(above_) /
                           static_cast<double>(total_);
}

util::Samples RecoveryLog::pipe_minus_ssthresh_segs() const {
  util::Samples s;
  for (const auto& e : events_) s.add(e.pipe_minus_ssthresh_segs());
  return s;
}

util::Samples RecoveryLog::cwnd_minus_ssthresh_exit_segs() const {
  util::Samples s;
  for (const auto& e : events_)
    if (e.completed) s.add(e.cwnd_minus_ssthresh_at_exit_segs());
  return s;
}

util::Samples RecoveryLog::cwnd_after_exit_segs() const {
  util::Samples s;
  for (const auto& e : events_)
    if (e.completed) s.add(e.cwnd_after_exit_segs());
  return s;
}

util::Samples RecoveryLog::recovery_time_ms() const {
  util::Samples s;
  for (const auto& e : events_) s.add(e.duration().ms_d());
  return s;
}

util::Samples RecoveryLog::burst_sizes() const {
  util::Samples s;
  for (const auto& e : events_)
    s.add(static_cast<double>(e.max_burst_segments));
  return s;
}

double RecoveryLog::fraction_slow_start_after() const {
  return completed_ == 0 ? 0
                         : static_cast<double>(slow_start_after_) /
                               static_cast<double>(completed_);
}

double RecoveryLog::fraction_with_timeout() const {
  return total_ == 0 ? 0
                     : static_cast<double>(timeout_) /
                           static_cast<double>(total_);
}

}  // namespace prr::stats
