#include "stats/sequential.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace prr::stats {

namespace {
// Variance floor: an arm pair whose paired differences are all exactly
// zero (CRN with no behavioural divergence yet) carries no evidence in
// either direction — treat it as underpowered rather than dividing by
// zero.
constexpr double kVarFloor = 1e-300;
}  // namespace

double ConfidenceSequence::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

void ConfidenceSequence::observe(double d) {
  ++n_;
  const double delta = d - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (d - mean_);
  // The always-valid p is the running minimum over every peek, so it is
  // updated on each observation, not lazily at read time.
  const double log_e = log_e_value();
  if (log_e > 0) {
    // p = min(p, exp(-log_e)); in log space to survive huge e-values.
    const double candidate = std::exp(-std::min(log_e, 700.0));
    p_ = std::min(p_, candidate);
  }
}

double ConfidenceSequence::log_e_value() const {
  const double var = variance();
  if (n_ < cfg_.min_n || var <= kVarFloor) return 0.0;
  const double n = static_cast<double>(n_);
  const double r = cfg_.mixture_ratio;
  const double denom = 1.0 + n * r;
  return -0.5 * std::log(denom) +
         (n * n * mean_ * mean_ * r) / (2.0 * var * denom);
}

double ConfidenceSequence::e_value() const {
  return std::exp(std::min(log_e_value(), 700.0));
}

double ConfidenceSequence::radius() const {
  const double var = variance();
  if (n_ < cfg_.min_n || var <= kVarFloor) {
    return std::numeric_limits<double>::infinity();
  }
  const double n = static_cast<double>(n_);
  const double r = cfg_.mixture_ratio;
  const double denom = 1.0 + n * r;
  const double log_term = std::log(denom / (cfg_.alpha * cfg_.alpha));
  return std::sqrt(var * denom / (n * n * r) * log_term);
}

bool ConfidenceSequence::rejects_zero() const {
  return n_ >= cfg_.min_n && p_ <= cfg_.alpha;
}

std::string ConfidenceSequence::to_json() const {
  std::string out = "{\"n\":" + std::to_string(n_);
  out += ",\"mean\":" + obs::json_double(mean_);
  const double rad = radius();
  if (std::isfinite(rad)) {
    out += ",\"lo\":" + obs::json_double(mean_ - rad);
    out += ",\"hi\":" + obs::json_double(mean_ + rad);
  } else {
    out += ",\"lo\":null,\"hi\":null";
  }
  out += ",\"p\":" + obs::json_double(p_);
  out += ",\"log10_e\":" + obs::json_double(log_e_value() / std::log(10.0));
  out += "}";
  return out;
}

}  // namespace prr::stats
