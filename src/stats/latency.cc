#include "stats/latency.h"

namespace prr::stats {

void LatencyTracker::append(const LatencyTracker& other) {
  responses_.insert(responses_.end(), other.responses_.begin(),
                    other.responses_.end());
}

util::Samples LatencyTracker::latency_ms(Filter f, uint64_t min_bytes,
                                         uint64_t max_bytes) const {
  util::Samples s;
  for (const auto& r : responses_) {
    if (!r.completed) continue;
    if (r.bytes < min_bytes || r.bytes > max_bytes) continue;
    if (f == Filter::kWithRetransmit && !r.had_retransmit) continue;
    if (f == Filter::kWithoutRetransmit && r.had_retransmit) continue;
    s.add(r.latency_ms());
  }
  return s;
}

util::Samples LatencyTracker::rtts_taken(Filter f) const {
  util::Samples s;
  for (const auto& r : responses_) {
    if (!r.completed) continue;
    if (f == Filter::kWithRetransmit && !r.had_retransmit) continue;
    if (f == Filter::kWithoutRetransmit && r.had_retransmit) continue;
    s.add(r.rtts_taken());
  }
  return s;
}

double LatencyTracker::fraction_with_retransmit() const {
  if (responses_.empty()) return 0;
  std::size_t n = 0, denom = 0;
  for (const auto& r : responses_) {
    if (!r.completed) continue;
    ++denom;
    n += r.had_retransmit;
  }
  return denom == 0 ? 0 : static_cast<double>(n) / static_cast<double>(denom);
}

}  // namespace prr::stats
