#include "stats/latency.h"

namespace prr::stats {

void LatencyTracker::add(ResponseRecord r) {
  ++total_;
  if (r.completed) {
    ++completed_;
    completed_with_retx_ += r.had_retransmit;
    const double lat_ms = r.latency_ms();
    latency_us_.record(
        lat_ms <= 0 ? 0 : static_cast<uint64_t>(lat_ms * 1000.0));
    const double rtts = r.rtts_taken();
    rtts_milli_.record(
        rtts <= 0 ? 0 : static_cast<uint64_t>(rtts * 1000.0));
  }
  if (!bounded_) responses_.push_back(r);
}

void LatencyTracker::append(const LatencyTracker& other) {
  total_ += other.total_;
  completed_ += other.completed_;
  completed_with_retx_ += other.completed_with_retx_;
  latency_us_.merge(other.latency_us_);
  rtts_milli_.merge(other.rtts_milli_);
  if (!bounded_)
    responses_.insert(responses_.end(), other.responses_.begin(),
                      other.responses_.end());
}

util::Samples LatencyTracker::latency_ms(Filter f, uint64_t min_bytes,
                                         uint64_t max_bytes) const {
  util::Samples s;
  for (const auto& r : responses_) {
    if (!r.completed) continue;
    if (r.bytes < min_bytes || r.bytes > max_bytes) continue;
    if (f == Filter::kWithRetransmit && !r.had_retransmit) continue;
    if (f == Filter::kWithoutRetransmit && r.had_retransmit) continue;
    s.add(r.latency_ms());
  }
  return s;
}

util::Samples LatencyTracker::rtts_taken(Filter f) const {
  util::Samples s;
  for (const auto& r : responses_) {
    if (!r.completed) continue;
    if (f == Filter::kWithRetransmit && !r.had_retransmit) continue;
    if (f == Filter::kWithoutRetransmit && r.had_retransmit) continue;
    s.add(r.rtts_taken());
  }
  return s;
}

double LatencyTracker::fraction_with_retransmit() const {
  // Counter-based so the answer is identical in bounded and unbounded
  // modes (the counters count exactly what the vector loop counted).
  return completed_ == 0 ? 0
                         : static_cast<double>(completed_with_retx_) /
                               static_cast<double>(completed_);
}

}  // namespace prr::stats
