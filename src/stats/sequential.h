// Always-valid sequential statistics for the live experiment service
// (DESIGN.md §13): a mixture sequential probability ratio test (mSPRT)
// over a stream of paired observations, yielding an e-process, an
// always-valid p-value, and a confidence sequence for the mean — all
// safe to inspect after every observation ("any-time peeking"), which
// is exactly what a continuously-watched A/B/n scoreboard does and what
// a fixed-N test forbids.
//
// Model: observations d_1, d_2, ... are treated as i.i.d. with unknown
// mean mu and unknown variance; H0: mu = 0. The mixture likelihood
// ratio under a normal prior with variance tau^2 = mixture_ratio *
// sigma^2 over the alternative mean is
//
//   Lambda_n = sqrt(1/(1+n r)) * exp( n^2 dbar^2 r / (2 sigma^2 (1+n r)) )
//
// with r = mixture_ratio and sigma^2 the running sample variance
// (Welford). Lambda_n is an e-process: under H0, P(sup_n Lambda_n >=
// 1/alpha) <= alpha (Ville), so p_n = min_k<=n 1/Lambda_k is an
// always-valid p-value and
//
//   dbar_n +/- sqrt( sigma^2 (1+n r) / (n^2 r) * ln((1+n r)/alpha^2) )
//
// is a (1-alpha) confidence sequence: with probability >= 1-alpha it
// covers mu at EVERY n simultaneously. Estimated variance makes both
// approximate at small n, so rejection is additionally gated on a
// minimum sample count.
//
// Everything here is plain double arithmetic in observation order — fed
// from the service's per-window folded aggregates (bit-identical at any
// worker-thread count), the whole statistic stream is deterministic.
#pragma once

#include <cstdint>
#include <string>

namespace prr::stats {

class ConfidenceSequence {
 public:
  struct Config {
    double alpha = 0.05;         // size of the test / CS miscoverage
    // Mixture variance as a fraction of the observation variance
    // (tau^2 = mixture_ratio * sigma^2). Larger detects big effects
    // sooner; smaller is more sensitive to small effects late. The
    // scale-free form keeps one default sane across metrics measured
    // in fractions and in milliseconds.
    double mixture_ratio = 0.25;
    // No rejection (and an infinite-radius CS) before this many
    // observations: the variance estimate needs support before the
    // always-valid guarantee is meaningful with a plug-in sigma.
    uint64_t min_n = 10;
  };

  ConfidenceSequence() = default;
  explicit ConfidenceSequence(Config cfg) : cfg_(cfg) {}

  void observe(double d);

  uint64_t n() const { return n_; }
  double mean() const { return mean_; }
  // Unbiased sample variance; 0 until two observations.
  double variance() const;

  // log of the current mixture likelihood ratio Lambda_n (an e-process
  // sample path). 0 while underpowered (n < min_n or zero variance).
  double log_e_value() const;
  double e_value() const;
  // Always-valid p-value: running minimum of 1/Lambda, clamped to 1.
  double p_value() const { return p_; }

  // Confidence-sequence half width at level alpha; infinite while
  // underpowered.
  double radius() const;
  double lower() const { return mean_ - radius(); }
  double upper() const { return mean_ + radius(); }

  // p <= alpha with the minimum sample count met: the CS excludes 0.
  bool rejects_zero() const;

  const Config& config() const { return cfg_; }

  // {"n":...,"mean":...,"lo":...,"hi":...,"p":...,"log10_e":...}
  std::string to_json() const;

 private:
  Config cfg_;
  uint64_t n_ = 0;
  double mean_ = 0;  // Welford running mean
  double m2_ = 0;    // Welford sum of squared deviations
  double p_ = 1.0;   // running-min always-valid p
};

}  // namespace prr::stats
