#include "stats/drift.h"

#include <algorithm>
#include <cmath>

namespace prr::stats {

namespace {
// A flat calibration window (all samples identical) still needs a
// usable scale: fall back to a small absolute floor so a later genuine
// shift registers as a huge z rather than a division by zero.
constexpr double kStdFloor = 1e-12;

double welford_std(uint64_t n, double m2) {
  if (n < 2) return kStdFloor;
  return std::max(kStdFloor, std::sqrt(m2 / static_cast<double>(n - 1)));
}
}  // namespace

double Cusum::baseline_mean() const { return mean_; }
double Cusum::baseline_std() const { return welford_std(std::min(n_, static_cast<uint64_t>(cfg_.calibration)), m2_); }

bool Cusum::observe(double x) {
  if (!calibrated()) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    return false;
  }
  ++n_;
  const double z = (x - mean_) / baseline_std();
  s_pos_ = std::max(0.0, s_pos_ + z - cfg_.k);
  s_neg_ = std::max(0.0, s_neg_ - z - cfg_.k);
  if (s_pos_ > cfg_.h || s_neg_ > cfg_.h) {
    ++alarms_;
    stat_at_alarm_ = stat();
    s_pos_ = 0;
    s_neg_ = 0;
    return true;
  }
  return false;
}

double PageHinkley::baseline_mean() const { return mean_; }
double PageHinkley::baseline_std() const { return welford_std(std::min(n_, static_cast<uint64_t>(cfg_.calibration)), m2_); }

double PageHinkley::stat() const {
  return std::max(m_up_ - min_up_, max_down_ - m_down_);
}

bool PageHinkley::observe(double x) {
  if (!calibrated()) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    return false;
  }
  ++n_;
  const double z = (x - mean_) / baseline_std();
  m_up_ += z - cfg_.delta;
  min_up_ = std::min(min_up_, m_up_);
  m_down_ += z + cfg_.delta;
  max_down_ = std::max(max_down_, m_down_);
  if (m_up_ - min_up_ > cfg_.lambda || max_down_ - m_down_ > cfg_.lambda) {
    ++alarms_;
    stat_at_alarm_ = stat();
    m_up_ = 0;
    min_up_ = 0;
    m_down_ = 0;
    max_down_ = 0;
    return true;
  }
  return false;
}

}  // namespace prr::stats
