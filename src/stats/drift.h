// Drift detectors for the live experiment service (DESIGN.md §13):
// CUSUM and Page-Hinkley over a scalar per-window series (mean response
// latency, retransmission rate, post-recovery cwnd). Both standardize
// against a baseline estimated from a calibration prefix — the first
// `calibration` observations, frozen thereafter — so thresholds are in
// sigma units and one default works across series measured in
// fractions, milliseconds, and bytes.
//
// CUSUM (two-sided, tabular): with z_t = (x_t - mu0)/sigma0,
//   S+_t = max(0, S+_{t-1} + z_t - k)     S-_t = max(0, S-_{t-1} - z_t - k)
// and an alarm when either exceeds h. k (the allowance) sets the
// smallest shift considered interesting (~half of it, in sigmas); h
// trades detection delay against false-alarm rate (ARL roughly e^{2kh}
// for small k). After an alarm both statistics reset, so a persisting
// shift re-alarms after another detection delay rather than every
// window.
//
// Page-Hinkley: the classic cumulative-deviation form on the same
// standardized series; alarm when the deviation from the running
// extremum exceeds lambda.
//
// Deterministic: pure double arithmetic in observation order.
#pragma once

#include <cstdint>

namespace prr::stats {

class Cusum {
 public:
  struct Config {
    double k = 0.5;        // allowance, in baseline sigmas
    double h = 8.0;        // decision threshold, in baseline sigmas
    int calibration = 30;  // baseline window (no alarms during it)
  };

  Cusum() = default;
  explicit Cusum(Config cfg) : cfg_(cfg) {}

  // Feeds one observation; returns true when this observation fires an
  // alarm (never during calibration).
  bool observe(double x);

  bool calibrated() const { return n_ >= static_cast<uint64_t>(cfg_.calibration); }
  double baseline_mean() const;
  double baseline_std() const;
  double s_pos() const { return s_pos_; }
  double s_neg() const { return s_neg_; }
  // Detection statistic currently closest to the threshold.
  double stat() const { return s_pos_ > s_neg_ ? s_pos_ : s_neg_; }
  // Value the statistic reached when the most recent alarm fired (the
  // running stat() resets to 0 on alarm; alert records want the peak).
  double stat_at_alarm() const { return stat_at_alarm_; }
  uint64_t alarms() const { return alarms_; }
  uint64_t n() const { return n_; }

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  uint64_t n_ = 0;
  // Calibration accumulators (Welford), frozen once n_ reaches the
  // calibration count.
  double mean_ = 0;
  double m2_ = 0;
  double s_pos_ = 0;
  double s_neg_ = 0;
  double stat_at_alarm_ = 0;
  uint64_t alarms_ = 0;
};

class PageHinkley {
 public:
  struct Config {
    double delta = 0.05;   // per-step tolerance, in baseline sigmas
    double lambda = 10.0;  // decision threshold, in baseline sigmas
    int calibration = 30;
  };

  PageHinkley() = default;
  explicit PageHinkley(Config cfg) : cfg_(cfg) {}

  bool observe(double x);

  bool calibrated() const { return n_ >= static_cast<uint64_t>(cfg_.calibration); }
  double baseline_mean() const;
  double baseline_std() const;
  // Deviation of the cumulative sum from its running extremum, for the
  // direction currently closest to alarming.
  double stat() const;
  double stat_at_alarm() const { return stat_at_alarm_; }
  uint64_t alarms() const { return alarms_; }
  uint64_t n() const { return n_; }

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double m_up_ = 0;    // cumulative (z - delta); alarms on increase
  double min_up_ = 0;
  double m_down_ = 0;  // cumulative (z + delta); alarms on decrease
  double max_down_ = 0;
  double stat_at_alarm_ = 0;
  uint64_t alarms_ = 0;
};

}  // namespace prr::stats
