// Seeded pathology grammar: the torture campaign's generator of
// adversarial connection environments. A PathologyProfile gives each
// pathology family an independent activation probability and an
// intensity range; draw() composes an activated subset into one
// concrete, plain-data PathologyDraw — wire-level ACK misbehavior
// (net::MisbehaviorConfig), stateful receiver reneging, ACK-path
// impairments, and time-varying path faults (net::FaultProfile, the
// chaos machinery reused as a grammar production).
//
// Determinism contract: draw() is a pure function of (profile, rng), so
// a (seed, connection id) pair replays the identical pathology set —
// the property the quarantine/replay/shrink pipeline is built on.
// TorturePopulation applies the draw through a reserved sub-stream
// (fork 0x7047) of the per-connection rng, leaving the base sample
// path untouched: cross-arm comparisons stay common-random-numbers.
#pragma once

#include <cstdint>

#include "net/fault_schedule.h"
#include "net/misbehavior.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "workload/population.h"

namespace prr::torture {

// One concrete pathology set for one connection: everything the grammar
// layered on top of the base sample, as plain data (loggable,
// serializable into a ReproCase, shrinkable).
struct PathologyDraw {
  net::MisbehaviorConfig misbehavior;
  sim::Time renege_at = sim::Time::zero();
  double ack_loss_prob = 0.0;      // 0 = keep the base sample's value
  uint32_t ack_stretch = 1;        // 1 = keep the base sample's value
  net::FaultSchedule faults;       // merged into the base sample's

  // Applies this draw on top of a base sample.
  void apply(workload::ConnectionSample& s) const;
};

struct PathologyProfile {
  // --- stateful receiver reneging (tcp::Receiver) ---
  double p_renege = 0.0;
  sim::Time renege_min = sim::Time::milliseconds(200);
  sim::Time renege_max = sim::Time::seconds(3);

  // --- wire-level SACK lies / duplication / suppression ---
  double p_lie_sack = 0.0;
  double lie_prob_min = 0.005, lie_prob_max = 0.08;
  double p_dup_sack = 0.0;
  double dup_sack_prob_min = 0.02, dup_sack_prob_max = 0.3;
  double p_suppress = 0.0;
  sim::Time suppress_onset_min = sim::Time::milliseconds(200);
  sim::Time suppress_onset_max = sim::Time::seconds(3);
  sim::Time suppress_dur_min = sim::Time::milliseconds(200);
  sim::Time suppress_dur_max = sim::Time::seconds(2);

  // --- ACK stream shape attacks ---
  double p_divide = 0.0;
  uint32_t divide_factor_min = 2, divide_factor_max = 8;
  double p_dup_ack = 0.0;
  double dup_ack_prob_min = 0.02, dup_ack_prob_max = 0.15;
  double p_reorder_acks = 0.0;
  double reorder_prob_min = 0.005, reorder_prob_max = 0.06;

  // --- flow-control and field corruption ---
  double p_shrink = 0.0;
  sim::Time shrink_onset_min = sim::Time::milliseconds(200);
  sim::Time shrink_onset_max = sim::Time::seconds(3);
  sim::Time shrink_dur_min = sim::Time::milliseconds(300);
  sim::Time shrink_dur_max = sim::Time::seconds(2);
  double p_corrupt = 0.0;
  double corrupt_prob_min = 0.001, corrupt_prob_max = 0.02;

  // --- ACK-path impairments layered over the base sample ---
  double p_ack_loss = 0.0;
  double ack_loss_min = 0.02, ack_loss_max = 0.15;
  double p_stretch = 0.0;
  uint32_t stretch_min = 2, stretch_max = 4;

  // --- time-varying path faults (chaos grammar productions) ---
  net::FaultProfile faults;

  // Draws one connection's pathology set. Pure in (this, rng).
  PathologyDraw draw(sim::Rng rng) const;

  // The campaign's default mix: every family active with moderate
  // probability (a typical connection composes one to three
  // pathologies), plus blackouts/ACK outages from the fault grammar.
  static PathologyProfile standard();
  // Single-family profiles, one per pathology, for focused tests.
  static PathologyProfile only_renege();
  static PathologyProfile only_lie_sack();
  static PathologyProfile only_shrink();
  static PathologyProfile only_corrupt();
};

// Decorator: draws the base population's sample unchanged, then layers a
// pathology draw from `profile` on top, using the reserved sub-stream
// fork 0x7047 of the per-connection rng (the base sample path — and
// hence every cross-arm comparison — is identical with and without
// torture).
class TorturePopulation final : public workload::Population {
 public:
  TorturePopulation(const workload::Population& base,
                    PathologyProfile profile)
      : base_(base), profile_(profile) {}

  workload::ConnectionSample sample(sim::Rng rng) const override;

 private:
  const workload::Population& base_;
  PathologyProfile profile_;
};

}  // namespace prr::torture
