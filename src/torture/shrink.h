// Automatic failure minimization: a greedy delta-debugging loop over a
// ReproCase. Each step proposes a structurally smaller candidate —
// a fault event removed, a response dropped or halved, a pathology
// feature disabled, an onset or duration halved, a loss process
// zeroed — replays it through exp::Experiment::replay, and keeps the
// candidate iff it still exhibits the original failure signature
// (the same invariant kinds; exact times are free to move, since
// shrinking changes timing). Passes repeat to a fixpoint, so removals
// that only become possible after other removals are still found.
//
// The output is the campaign's checked-in artifact: a minimal,
// self-contained repro a human can read top to bottom, whose every
// remaining line is load-bearing (removing any single element was
// tried and broke reproduction).
#pragma once

#include <functional>
#include <string>

#include "torture/repro.h"

namespace prr::torture {

struct ShrinkOptions {
  int max_replays = 400;  // hard cap on candidate evaluations
  // Optional progress sink ("accepted drop-fault-2, 9 replays in").
  std::function<void(const std::string&)> log;
};

struct ShrinkResult {
  ReproCase minimized;
  int replays = 0;   // candidate evaluations performed
  int accepted = 0;  // candidates that kept the failure and were kept
  // The starting case itself failed to reproduce its signature, so no
  // shrinking was attempted (minimized == the input).
  bool input_reproduced = false;
};

// Minimizes `start`. If start.expect is empty, the signature is first
// derived by replaying the unmodified case.
ShrinkResult shrink(const ReproCase& start, const ShrinkOptions& opts = {});

}  // namespace prr::torture
