// The torture campaign: a bounded, seeded randomized fuzzing run over
// the pathology grammar. Each campaign seed draws a small batch of
// tortured connections and runs them through all three recovery arms
// (PRR / RFC 3517 / Linux rate halving) with invariant checking and the
// torture oracles armed, plus the cross-arm differential oracle over
// the terminal byte streams. Every failure is materialized into a
// self-contained ReproCase and (optionally) minimized by the shrinker.
//
// Determinism: campaign seed i is base_seed + i, every connection's
// sample path derives from (seed, id), and aggregation follows the
// experiment harness's id-ordered merge — so the same configuration
// produces a byte-identical summary_json() at any thread count. The
// wall-clock budget (when set) is the only nondeterministic input; runs
// that hit it are marked truncated.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "torture/pathology.h"
#include "torture/repro.h"

namespace prr::torture {

struct CampaignConfig {
  int seeds = 200;
  uint64_t base_seed = 1;
  int connections_per_seed = 6;
  sim::Time per_connection_limit = sim::Time::seconds(300);
  int threads = 1;
  int watchdog_rto_backoffs = 4;
  PathologyProfile profile = PathologyProfile::standard();

  bool shrink_failures = true;
  int shrink_max_replays = 200;

  // Wall-clock budget in seconds; 0 = unbounded. Checked between seeds:
  // a run that exceeds it stops starting new seeds and is marked
  // truncated in the summary.
  double time_budget_seconds = 0;

  // Optional progress sink (one line per seed / per shrink step).
  std::function<void(const std::string&)> log;
};

// One cross-arm differential finding (torture/oracles.h catalog:
// kArmDivergence-class, detected over ConnOutcome tables).
struct Divergence {
  uint64_t connection = 0;
  std::string arm;   // offending arm ("" when the finding is cross-arm)
  std::string kind;  // "not_terminated" | "delivered_mismatch" |
                     // "over_delivered" | "expected_mismatch"
  std::string detail;
};

// Compares the arms' per-connection terminal states (requires
// RunOptions::collect_outcomes): every arm must deliver the identical
// byte stream or abort cleanly.
std::vector<Divergence> diff_outcomes(const std::vector<exp::ArmResult>& arms);

struct CampaignFailure {
  uint64_t seed = 0;
  uint64_t connection = 0;
  std::string arm;
  std::vector<std::string> kinds;  // failure signature (sorted, unique)
  std::string summary;             // human-readable original finding
  // Perfetto JSON of the original quarantine's trace tail (empty for
  // cross-arm divergences and in builds with tracing compiled out);
  // excluded from summary_json() so the summary stays deterministic
  // across trace configurations.
  std::string trace_json;
  ReproCase repro;                 // minimized when shrinking succeeded
  bool repro_verified = false;     // the (minimized) repro reproduces
  int shrink_replays = 0;
  int shrink_accepted = 0;
};

struct CampaignResult {
  int seeds_run = 0;
  uint64_t connections_run = 0;  // per arm x arms
  uint64_t acks_checked = 0;
  uint64_t violations = 0;
  bool truncated_by_budget = false;
  std::vector<CampaignFailure> failures;

  // Deterministic summary (no timestamps, no wall-clock): totals plus
  // one entry per failure in campaign order.
  std::string summary_json() const;
};

CampaignResult run_campaign(const workload::Population& base,
                            const CampaignConfig& cfg);

}  // namespace prr::torture
