#include "torture/campaign.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "torture/shrink.h"

namespace prr::torture {

namespace {

std::string arm_slug(const std::string& name) {
  if (name == "RFC 3517") return "rfc3517";
  if (name == "Linux") return "linux";
  if (name == "PRR") return "prr";
  std::string slug;
  for (char ch : name) {
    slug += (ch == ' ' ? '-' : static_cast<char>(std::tolower(ch)));
  }
  return slug;
}

// Materializes the explicit environment connection (seed, id) ran under
// — the same draw the experiment harness performs.
workload::ConnectionSample materialize(const workload::Population& pop,
                                       uint64_t seed, uint64_t id) {
  return pop.sample(sim::Rng(seed).fork(id).fork(100));
}

ReproCase make_repro(const workload::Population& pop,
                     const CampaignConfig& cfg, uint64_t seed, uint64_t id,
                     const std::string& arm_name,
                     std::vector<std::string> expect) {
  ReproCase c;
  char buf[96];
  std::snprintf(buf, sizeof buf, "s%" PRIu64 "-c%" PRIu64 "-%s", seed, id,
                arm_slug(arm_name).c_str());
  c.name = buf;
  c.arm = arm_name;
  c.seed = seed;
  c.connection = id;
  c.limit = cfg.per_connection_limit;
  c.watchdog_rto_backoffs = cfg.watchdog_rto_backoffs;
  c.sample = materialize(pop, seed, id);
  c.expect = std::move(expect);
  return c;
}

std::vector<std::string> signature_of(const exp::QuarantineRecord& rec) {
  std::vector<std::string> kinds;
  for (const auto& v : rec.violations) kinds.push_back(tcp::to_string(v.kind));
  if (!rec.exception.empty()) kinds.push_back("exception");
  std::sort(kinds.begin(), kinds.end());
  kinds.erase(std::unique(kinds.begin(), kinds.end()), kinds.end());
  return kinds;
}

}  // namespace

std::vector<Divergence> diff_outcomes(
    const std::vector<exp::ArmResult>& arms) {
  std::vector<Divergence> out;
  if (arms.empty()) return out;
  const std::size_t n = arms[0].outcomes.size();
  for (const auto& arm : arms) {
    if (arm.outcomes.size() != n) {
      out.push_back({0, arm.name, "expected_mismatch",
                     "arms ran different connection counts"});
      return out;
    }
  }
  char buf[200];
  for (std::size_t i = 0; i < n; ++i) {
    const exp::ConnOutcome& ref = arms[0].outcomes[i];
    for (const auto& arm : arms) {
      const exp::ConnOutcome& o = arm.outcomes[i];
      // Common random numbers: the drawn workload is arm-independent.
      if (o.expected_bytes != ref.expected_bytes || o.id != ref.id) {
        std::snprintf(buf, sizeof buf,
                      "conn %" PRIu64 ": expected %" PRIu64
                      " bytes vs %" PRIu64 " in arm '%s'",
                      ref.id, ref.expected_bytes, o.expected_bytes,
                      arm.name.c_str());
        out.push_back({ref.id, arm.name, "expected_mismatch", buf});
        continue;
      }
      const bool finished = o.all_acked && o.app_finished;
      if (!finished && !o.aborted) {
        std::snprintf(buf, sizeof buf,
                      "conn %" PRIu64 " in arm '%s' neither completed nor "
                      "aborted (delivered %" PRIu64 "/%" PRIu64 ")",
                      o.id, arm.name.c_str(), o.delivered_bytes,
                      o.expected_bytes);
        out.push_back({o.id, arm.name, "not_terminated", buf});
      }
      if (finished && o.delivered_bytes != o.expected_bytes) {
        std::snprintf(buf, sizeof buf,
                      "conn %" PRIu64 " in arm '%s' completed but delivered "
                      "%" PRIu64 " of %" PRIu64 " bytes",
                      o.id, arm.name.c_str(), o.delivered_bytes,
                      o.expected_bytes);
        out.push_back({o.id, arm.name, "delivered_mismatch", buf});
      }
      if (o.delivered_bytes > o.expected_bytes) {
        std::snprintf(buf, sizeof buf,
                      "conn %" PRIu64 " in arm '%s' delivered %" PRIu64
                      " bytes beyond the %" PRIu64 "-byte workload",
                      o.id, arm.name.c_str(), o.delivered_bytes,
                      o.expected_bytes);
        out.push_back({o.id, arm.name, "over_delivered", buf});
      }
    }
  }
  return out;
}

CampaignResult run_campaign(const workload::Population& base,
                            const CampaignConfig& cfg) {
  CampaignResult result;
  TorturePopulation pop(base, cfg.profile);
  const std::vector<exp::ArmConfig> arms = {exp::ArmConfig::prr_arm(),
                                            exp::ArmConfig::rfc3517_arm(),
                                            exp::ArmConfig::linux_arm()};
  const auto started = std::chrono::steady_clock::now();

  for (int s = 0; s < cfg.seeds; ++s) {
    if (cfg.time_budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() > cfg.time_budget_seconds) {
        result.truncated_by_budget = true;
        break;
      }
    }
    const uint64_t seed = cfg.base_seed + static_cast<uint64_t>(s);

    exp::RunOptions opts;
    opts.connections = cfg.connections_per_seed;
    opts.seed = seed;
    opts.per_connection_limit = cfg.per_connection_limit;
    opts.threads = cfg.threads;
    opts.check_invariants = true;
    opts.torture_oracles = true;
    opts.watchdog_rto_backoffs = cfg.watchdog_rto_backoffs;
    opts.collect_outcomes = true;
    opts.scenario = "torture";

    std::vector<exp::ArmResult> results = exp::run_arms(pop, arms, opts);
    ++result.seeds_run;

    std::vector<CampaignFailure> found;
    for (const exp::ArmResult& arm : results) {
      result.connections_run += arm.connections_run;
      result.acks_checked += arm.acks_checked;
      result.violations += arm.invariant_violations;
      for (const exp::QuarantineRecord& rec : arm.quarantined) {
        CampaignFailure f;
        f.seed = seed;
        f.connection = rec.connection_id;
        f.arm = arm.name;
        f.kinds = signature_of(rec);
        f.summary = rec.summary();
        f.trace_json = rec.trace_json();
        f.repro = make_repro(pop, cfg, seed, rec.connection_id, arm.name,
                             f.kinds);
        found.push_back(std::move(f));
      }
    }
    for (const Divergence& d : diff_outcomes(results)) {
      CampaignFailure f;
      f.seed = seed;
      f.connection = d.connection;
      f.arm = d.arm;
      f.kinds = {d.kind};
      f.summary = d.detail;
      f.repro = make_repro(pop, cfg, seed, d.connection, d.arm, {d.kind});
      found.push_back(std::move(f));
    }

    for (CampaignFailure& f : found) {
      if (cfg.log) {
        cfg.log("seed " + std::to_string(seed) + ": " + f.summary);
      }
      if (cfg.shrink_failures) {
        ShrinkOptions sopts;
        sopts.max_replays = cfg.shrink_max_replays;
        sopts.log = cfg.log;
        ShrinkResult shrunk = shrink(f.repro, sopts);
        f.shrink_replays = shrunk.replays;
        f.shrink_accepted = shrunk.accepted;
        f.repro_verified = shrunk.input_reproduced;
        if (shrunk.input_reproduced) f.repro = std::move(shrunk.minimized);
      } else {
        f.repro_verified = repro_reproduced(f.repro, run_repro(f.repro));
      }
      result.failures.push_back(std::move(f));
    }
    if (cfg.log) {
      cfg.log("seed " + std::to_string(seed) + " done (" +
              std::to_string(result.failures.size()) + " failures total)");
    }
  }
  return result;
}

std::string CampaignResult::summary_json() const {
  std::string out = "{\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  \"seeds_run\": %d,\n  \"connections_run\": %" PRIu64
                ",\n  \"acks_checked\": %" PRIu64
                ",\n  \"violations\": %" PRIu64
                ",\n  \"truncated_by_budget\": %s,\n",
                seeds_run, connections_run, acks_checked, violations,
                truncated_by_budget ? "true" : "false");
  out += buf;
  out += "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const CampaignFailure& f = failures[i];
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof buf,
                  "    {\"seed\": %" PRIu64 ", \"connection\": %" PRIu64
                  ", \"arm\": ",
                  f.seed, f.connection);
    out += buf;
    out += obs::json_quote(f.arm);
    out += ", \"kinds\": [";
    for (std::size_t k = 0; k < f.kinds.size(); ++k) {
      if (k) out += ", ";
      out += obs::json_quote(f.kinds[k]);
    }
    std::snprintf(buf, sizeof buf,
                  "], \"repro_verified\": %s, \"shrink_replays\": %d, "
                  "\"shrink_accepted\": %d}",
                  f.repro_verified ? "true" : "false", f.shrink_replays,
                  f.shrink_accepted);
    out += buf;
  }
  out += failures.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace prr::torture
