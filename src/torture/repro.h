// Self-contained failure repro cases: everything needed to re-run one
// torturing connection in isolation, as a plain text file — the
// artifact the shrinker minimizes and the checked-in corpus
// (tests/corpus/) replays as regression tests.
//
// A ReproCase pins the *explicit* connection environment (network,
// workload, faults, pathologies — a full ConnectionSample, not a
// reference to the population that drew it), the arm configuration
// including defense toggles, the (seed, connection id) pair that seeds
// the network randomness, and the expected failure signature. Running
// one goes through exp::Experiment::replay, so a repro executes the
// exact code path the campaign's quarantine machinery exercised.
//
// File format: a `prr-repro v1` header then `key = value` lines;
// `#` starts a comment. Repeated `response`, `fault` and `expect` keys
// build lists. to_text()/from_text() round-trip exactly (times in
// integer nanoseconds, probabilities in %.17g), so a saved case replays
// the original byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "sim/time.h"
#include "workload/population.h"

namespace prr::torture {

struct ReproCase {
  std::string name;        // slug for filenames and logs
  std::string arm = "PRR"; // "PRR" | "RFC 3517" | "Linux"
  uint64_t seed = 1;
  uint64_t connection = 0; // id within the run (pins the rng forks)
  sim::Time limit = sim::Time::seconds(300);
  int watchdog_rto_backoffs = 4;

  // Arm overrides (defense toggles; see exp::ArmConfig).
  int max_rto_backoffs = 7;
  bool renege_recovery = true;
  bool validate_acks = true;
  bool zero_window_probes = true;

  // The full, explicit connection environment.
  workload::ConnectionSample sample;

  // Failure signature: invariant-kind names (tcp::to_string) this case
  // must reproduce. Special tokens: "exception" (the connection threw),
  // "not_terminated" (neither completed nor aborted by the limit),
  // "aborted" (the sender gave up).
  std::vector<std::string> expect;
};

// Population wrapper returning `sample` for every connection id (the
// repro pins one explicit environment; network randomness still derives
// from the run's (seed, id) forks as usual).
class ReproPopulation final : public workload::Population {
 public:
  explicit ReproPopulation(const workload::ConnectionSample& s)
      : sample_(s) {}
  workload::ConnectionSample sample(sim::Rng) const override {
    return sample_;
  }

 private:
  workload::ConnectionSample sample_;
};

std::string to_text(const ReproCase& c);
// Returns false (and sets *error when non-null) on malformed input.
bool from_text(const std::string& text, ReproCase& out, std::string* error);

bool save_repro(const ReproCase& c, const std::string& path,
                std::string* error);
bool load_repro(const std::string& path, ReproCase& out, std::string* error);

// The arm configuration this case runs under.
exp::ArmConfig repro_arm(const ReproCase& c);

// Replays the case (invariant checking and torture oracles forced on).
exp::ReplayResult run_repro(const ReproCase& c);

// True when `r` exhibits the case's recorded failure signature: every
// expected invariant kind appears among the replay's violations (and
// "exception" matches a throwing run).
bool repro_reproduced(const ReproCase& c, const exp::ReplayResult& r);

}  // namespace prr::torture
