#include "torture/shrink.h"

#include <string>
#include <utility>
#include <vector>

#include "tcp/invariants.h"

namespace prr::torture {

namespace {

// One proposed reduction: a label for the progress log and the mutated
// candidate. Generators only propose candidates that actually differ
// from the current case.
struct Candidate {
  std::string label;
  ReproCase next;
};

sim::Time halve(sim::Time t) { return sim::Time::nanoseconds(t.ns() / 2); }

// All single-step reductions applicable to `c`, cheapest-win first:
// whole-feature removals lead, parameter halvings follow.
std::vector<Candidate> propose(const ReproCase& c) {
  std::vector<Candidate> out;
  auto add = [&out, &c](const char* label, auto mutate) {
    Candidate cand{label, c};
    mutate(cand.next);
    out.push_back(std::move(cand));
  };
  const workload::ConnectionSample& s = c.sample;
  const net::MisbehaviorConfig& m = s.misbehavior;

  // --- whole-feature removals ---
  if (!s.faults.empty()) {
    add("drop-all-faults",
        [](ReproCase& n) { n.sample.faults = net::FaultSchedule(); });
  }
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    Candidate cand{"drop-fault-" + std::to_string(i), c};
    net::FaultSchedule kept;
    for (std::size_t j = 0; j < s.faults.size(); ++j) {
      if (j != i) kept.add(s.faults.events()[j]);
    }
    cand.next.sample.faults = std::move(kept);
    out.push_back(std::move(cand));
  }
  if (s.renege_at.ns() > 0) {
    add("drop-renege", [](ReproCase& n) {
      n.sample.renege_at = sim::Time::zero();
    });
  }
  if (m.lie_sack_probability > 0) {
    add("drop-lie-sack", [](ReproCase& n) {
      n.sample.misbehavior.lie_sack_probability = 0;
    });
  }
  if (m.dup_sack_probability > 0) {
    add("drop-dup-sack", [](ReproCase& n) {
      n.sample.misbehavior.dup_sack_probability = 0;
    });
  }
  if (!m.suppress_duration.is_zero()) {
    add("drop-suppress", [](ReproCase& n) {
      n.sample.misbehavior.suppress_duration = sim::Time::zero();
    });
  }
  if (m.divide_factor > 1) {
    add("drop-divide",
        [](ReproCase& n) { n.sample.misbehavior.divide_factor = 1; });
  }
  if (m.dup_ack_probability > 0) {
    add("drop-dup-ack", [](ReproCase& n) {
      n.sample.misbehavior.dup_ack_probability = 0;
    });
  }
  if (m.reorder_probability > 0) {
    add("drop-ack-reorder", [](ReproCase& n) {
      n.sample.misbehavior.reorder_probability = 0;
    });
  }
  if (!m.shrink_duration.is_zero()) {
    add("drop-rwnd-shrink", [](ReproCase& n) {
      n.sample.misbehavior.shrink_duration = sim::Time::zero();
    });
  }
  if (m.corrupt_probability > 0) {
    add("drop-corrupt", [](ReproCase& n) {
      n.sample.misbehavior.corrupt_probability = 0;
    });
  }
  if (s.loss.p_good_to_bad > 0 || s.loss.loss_in_good > 0) {
    add("drop-loss", [](ReproCase& n) {
      n.sample.loss.p_good_to_bad = 0;
      n.sample.loss.loss_in_good = 0;
    });
  }
  if (s.outages) {
    add("drop-outages", [](ReproCase& n) { n.sample.outages = false; });
  }
  if (s.ack_loss_prob > 0) {
    add("drop-ack-loss", [](ReproCase& n) { n.sample.ack_loss_prob = 0; });
  }
  if (s.ack_stretch > 1) {
    add("drop-ack-stretch", [](ReproCase& n) { n.sample.ack_stretch = 1; });
  }
  if (s.reorder_prob > 0) {
    add("drop-reorder", [](ReproCase& n) { n.sample.reorder_prob = 0; });
  }
  if (s.client_abandons) {
    add("drop-abandon",
        [](ReproCase& n) { n.sample.client_abandons = false; });
  }

  // --- workload reductions ---
  if (s.responses.size() > 1) {
    add("drop-last-response",
        [](ReproCase& n) { n.sample.responses.pop_back(); });
    add("keep-first-response", [](ReproCase& n) {
      n.sample.responses.resize(1);
    });
  }
  for (std::size_t i = 0; i < s.responses.size(); ++i) {
    if (s.responses[i].bytes >= 2 * 1430) {
      Candidate cand{"halve-response-" + std::to_string(i), c};
      cand.next.sample.responses[i].bytes /= 2;
      // Throttling parameters scale with the body they pace.
      cand.next.sample.responses[i].burst_bytes /= 2;
      out.push_back(std::move(cand));
    }
    if (!s.responses[i].gap_before.is_zero()) {
      Candidate cand{"drop-gap-" + std::to_string(i), c};
      cand.next.sample.responses[i].gap_before = sim::Time::zero();
      out.push_back(std::move(cand));
    }
  }

  // --- parameter halvings (interval narrowing / onset bisection) ---
  const sim::Time kMinInterval = sim::Time::milliseconds(50);
  if (s.renege_at > kMinInterval) {
    add("halve-renege-at",
        [](ReproCase& n) { n.sample.renege_at = halve(n.sample.renege_at); });
  }
  if (m.suppress_at > kMinInterval) {
    add("halve-suppress-at", [](ReproCase& n) {
      n.sample.misbehavior.suppress_at =
          halve(n.sample.misbehavior.suppress_at);
    });
  }
  if (m.suppress_duration > kMinInterval) {
    add("halve-suppress-duration", [](ReproCase& n) {
      n.sample.misbehavior.suppress_duration =
          halve(n.sample.misbehavior.suppress_duration);
    });
  }
  if (m.shrink_at > kMinInterval) {
    add("halve-shrink-at", [](ReproCase& n) {
      n.sample.misbehavior.shrink_at = halve(n.sample.misbehavior.shrink_at);
    });
  }
  if (m.shrink_duration > kMinInterval) {
    add("halve-shrink-duration", [](ReproCase& n) {
      n.sample.misbehavior.shrink_duration =
          halve(n.sample.misbehavior.shrink_duration);
    });
  }
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    const net::FaultEvent& e = s.faults.events()[i];
    if (e.duration > kMinInterval) {
      Candidate cand{"halve-fault-duration-" + std::to_string(i), c};
      net::FaultSchedule sched;
      for (std::size_t j = 0; j < s.faults.size(); ++j) {
        net::FaultEvent ev = s.faults.events()[j];
        if (j == i) ev.duration = halve(ev.duration);
        sched.add(ev);
      }
      cand.next.sample.faults = std::move(sched);
      out.push_back(std::move(cand));
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const ReproCase& start, const ShrinkOptions& opts) {
  ShrinkResult result;
  result.minimized = start;

  // Establish (or verify) the failure signature on the unmodified case.
  {
    exp::ReplayResult base = run_repro(result.minimized);
    ++result.replays;
    if (result.minimized.expect.empty()) {
      for (const auto& v : base.violations) {
        const std::string kind = tcp::to_string(v.kind);
        bool seen = false;
        for (const auto& k : result.minimized.expect) {
          if (k == kind) seen = true;
        }
        if (!seen) result.minimized.expect.push_back(kind);
      }
      if (!base.exception.empty()) {
        result.minimized.expect.push_back("exception");
      }
    }
    result.input_reproduced =
        repro_reproduced(result.minimized, base) &&
        !result.minimized.expect.empty();
    if (!result.input_reproduced) return result;
  }

  // Greedy fixpoint: keep sweeping the proposal list until a full pass
  // accepts nothing (or the replay budget runs out).
  bool progressed = true;
  while (progressed && result.replays < opts.max_replays) {
    progressed = false;
    for (const Candidate& cand : propose(result.minimized)) {
      if (result.replays >= opts.max_replays) break;
      exp::ReplayResult r = run_repro(cand.next);
      ++result.replays;
      if (!repro_reproduced(result.minimized, r)) continue;
      ReproCase kept = cand.next;
      kept.expect = result.minimized.expect;
      result.minimized = std::move(kept);
      ++result.accepted;
      progressed = true;
      if (opts.log) {
        opts.log("accepted " + cand.label + " (" +
                 std::to_string(result.replays) + " replays)");
      }
      break;  // re-propose against the smaller case
    }
  }
  return result;
}

}  // namespace prr::torture
