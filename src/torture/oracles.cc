#include "torture/oracles.h"

#include <cstdio>
#include <utility>

namespace prr::torture {

ProgressWatchdog::ProgressWatchdog(tcp::Sender& sender,
                                   tcp::InvariantChecker& checker,
                                   Config config,
                                   std::function<bool()> path_up)
    : sender_(sender),
      checker_(checker),
      config_(config),
      path_up_(std::move(path_up)) {
  auto prev = std::move(sender_.on_rto_hook);
  sender_.on_rto_hook = [this, prev = std::move(prev)](uint64_t una,
                                                       int backoffs) {
    if (prev) prev(una, backoffs);
    on_rto(una, backoffs);
  };
}

void ProgressWatchdog::on_rto(uint64_t snd_una, int /*backoff_count*/) {
  const uint64_t retx = sender_.retransmits();
  const bool up = path_up_ ? path_up_() : true;
  // Progress means either snd.una moved or the previous RTO's repair
  // actually retransmitted something (which an honest path may then
  // lose). An RTO firing with neither is the repair machinery spinning.
  if (!up || snd_una != last_una_ || retx != last_retx_) {
    stuck_ = 0;
  } else {
    ++stuck_;
  }
  last_una_ = snd_una;
  last_retx_ = retx;
  if (stuck_ >= config_.stuck_backoffs && !fired_) {
    fired_ = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "snd_una=%llu stuck across %d RTO firings with no "
                  "retransmission and path up",
                  static_cast<unsigned long long>(snd_una), stuck_);
    checker_.record_external(tcp::InvariantKind::kNoForwardProgress, buf);
  }
}

void check_deadlock(const sim::Simulator& sim, const tcp::Sender& sender,
                    tcp::InvariantChecker& checker) {
  if (!sim.idle()) return;  // stopped on the time limit, not a drain
  if (sender.all_acked() || sender.aborted()) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "event queue drained with snd_una=%llu < write_end=%llu, "
                "not aborted, no timer pending",
                static_cast<unsigned long long>(sender.snd_una()),
                static_cast<unsigned long long>(sender.write_end()));
  checker.record_external(tcp::InvariantKind::kNoTermination, buf);
}

void check_conservation(const tcp::Sender& sender,
                        tcp::InvariantChecker& checker) {
  const uint64_t una = sender.snd_una();
  const uint64_t nxt = sender.snd_nxt();
  const uint64_t end = sender.write_end();
  char buf[200];
  if (!(una <= nxt && nxt <= end)) {
    std::snprintf(buf, sizeof(buf),
                  "sequence ordering broken: snd_una=%llu snd_nxt=%llu "
                  "write_end=%llu",
                  static_cast<unsigned long long>(una),
                  static_cast<unsigned long long>(nxt),
                  static_cast<unsigned long long>(end));
    checker.record_external(tcp::InvariantKind::kConservation, buf);
    return;  // derived checks below would cascade
  }
  // A finished or aborted flow must leave nothing behind: the scoreboard
  // window is [snd_una, snd_nxt), so completion empties it and pipe goes
  // to zero. (A flow cut off by the time limit legitimately has flight.)
  if (sender.all_acked() || sender.aborted()) {
    const auto& sb = sender.scoreboard();
    if (sender.all_acked() && sb.has_records()) {
      std::snprintf(buf, sizeof(buf),
                    "flow completed but scoreboard retains records "
                    "(snd_una=%llu)",
                    static_cast<unsigned long long>(una));
      checker.record_external(tcp::InvariantKind::kConservation, buf);
    }
    if (sender.all_acked() && sb.pipe() != 0) {
      std::snprintf(buf, sizeof(buf),
                    "flow completed with nonzero pipe=%llu",
                    static_cast<unsigned long long>(sb.pipe()));
      checker.record_external(tcp::InvariantKind::kConservation, buf);
    }
  }
  // Transmission accounting: every byte past snd_una was put on the wire
  // at least once, so cumulative wire bytes cover [0, snd_nxt).
  const auto& m = sender.local_metrics();
  const uint64_t wire = m.bytes_sent;
  if (wire < nxt) {
    std::snprintf(buf, sizeof(buf),
                  "wire bytes %llu < snd_nxt %llu: acked data never sent",
                  static_cast<unsigned long long>(wire),
                  static_cast<unsigned long long>(nxt));
    checker.record_external(tcp::InvariantKind::kConservation, buf);
  }
}

}  // namespace prr::torture
