// Progress and conservation oracles for the torture engine — failure
// detectors beyond the per-ACK InvariantChecker, for bugs whose symptom
// is *silence* (a wedged connection never delivers a bad ACK to check).
// All findings are recorded through InvariantChecker::record_external,
// so they ride the existing quarantine → replay → prr_inspect pipeline.
//
// Oracle catalog:
//   - ProgressWatchdog (kNoForwardProgress): snd_una stuck across K
//     consecutive RTO firings while the path was up AND the timer-driven
//     repair machinery produced no retransmission between them. A
//     healthy sender always retransmits something on RTO; firing with
//     nothing to send means the scoreboard has wedged (e.g. a reneged or
//     lying SACK made the head permanently "delivered"). Requiring the
//     no-retransmission clause keeps honest deep-backoff episodes (every
//     head retransmit genuinely lost) from false-positives.
//   - check_deadlock (kNoTermination): the event queue drained with data
//     neither fully acknowledged nor aborted — nothing will ever happen
//     again on this connection (e.g. a zero-window stall with no persist
//     timer: no data in flight, no timer armed, no ACK coming).
//   - check_conservation (kConservation): teardown byte-accounting
//     identities — snd_una <= snd_nxt <= write_end, every transmitted
//     byte was counted, a completed flow left an empty scoreboard and no
//     in-flight pipe.
//   - diff_outcomes (kArmDivergence, torture/campaign.cc): every arm
//     must deliver the identical byte stream or abort cleanly; a
//     completed arm that delivered the wrong byte count diverged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "tcp/invariants.h"
#include "tcp/sender.h"

namespace prr::torture {

class ProgressWatchdog {
 public:
  struct Config {
    // Consecutive no-progress, no-retransmission RTO firings (path up)
    // before the oracle fires.
    int stuck_backoffs = 4;
  };

  // Chains onto sender.on_rto_hook (preserving any existing hook).
  // `path_up` reports whether the path could have carried traffic since
  // the last RTO; when it returns false the stuck counter resets (a
  // blackout legitimately stalls the flow). Must outlive the sender's
  // RTO processing.
  ProgressWatchdog(tcp::Sender& sender, tcp::InvariantChecker& checker,
                   Config config, std::function<bool()> path_up);

  int stuck_count() const { return stuck_; }
  bool fired() const { return fired_; }

 private:
  void on_rto(uint64_t snd_una, int backoff_count);

  tcp::Sender& sender_;
  tcp::InvariantChecker& checker_;
  Config config_;
  std::function<bool()> path_up_;
  uint64_t last_una_ = UINT64_MAX;
  uint64_t last_retx_ = UINT64_MAX;
  int stuck_ = 0;
  bool fired_ = false;
};

// Teardown oracles; call after the simulation has run, before
// InvariantChecker::finalize().
void check_deadlock(const sim::Simulator& sim, const tcp::Sender& sender,
                    tcp::InvariantChecker& checker);
void check_conservation(const tcp::Sender& sender,
                        tcp::InvariantChecker& checker);

}  // namespace prr::torture
