#include "torture/pathology.h"

namespace prr::torture {

namespace {

sim::Time draw_time(sim::Rng& rng, sim::Time lo, sim::Time hi) {
  return sim::Time::nanoseconds(static_cast<int64_t>(
      rng.uniform(static_cast<double>(lo.ns()), static_cast<double>(hi.ns()))));
}

}  // namespace

void PathologyDraw::apply(workload::ConnectionSample& s) const {
  s.misbehavior = misbehavior;
  s.renege_at = renege_at;
  if (ack_loss_prob > 0) s.ack_loss_prob = ack_loss_prob;
  if (ack_stretch > 1) s.ack_stretch = ack_stretch;
  s.faults.merge(faults);
}

PathologyDraw PathologyProfile::draw(sim::Rng rng) const {
  // Each family draws from its own fork of the rng, so a family's
  // outcome is a pure function of (its parameters, the seed): tightening
  // or disabling one family never perturbs what any other family draws.
  PathologyDraw d;

  if (sim::Rng r = rng.fork(10); r.bernoulli(p_renege)) {
    d.renege_at = draw_time(r, renege_min, renege_max);
  }
  if (sim::Rng r = rng.fork(11); r.bernoulli(p_lie_sack)) {
    d.misbehavior.lie_sack_probability = r.uniform(lie_prob_min, lie_prob_max);
  }
  if (sim::Rng r = rng.fork(12); r.bernoulli(p_dup_sack)) {
    d.misbehavior.dup_sack_probability =
        r.uniform(dup_sack_prob_min, dup_sack_prob_max);
  }
  if (sim::Rng r = rng.fork(13); r.bernoulli(p_suppress)) {
    d.misbehavior.suppress_at =
        draw_time(r, suppress_onset_min, suppress_onset_max);
    d.misbehavior.suppress_duration =
        draw_time(r, suppress_dur_min, suppress_dur_max);
  }
  if (sim::Rng r = rng.fork(14); r.bernoulli(p_divide)) {
    d.misbehavior.divide_factor = static_cast<uint32_t>(
        r.uniform_int(divide_factor_min, divide_factor_max));
  }
  if (sim::Rng r = rng.fork(15); r.bernoulli(p_dup_ack)) {
    d.misbehavior.dup_ack_probability =
        r.uniform(dup_ack_prob_min, dup_ack_prob_max);
  }
  if (sim::Rng r = rng.fork(16); r.bernoulli(p_reorder_acks)) {
    d.misbehavior.reorder_probability =
        r.uniform(reorder_prob_min, reorder_prob_max);
  }
  if (sim::Rng r = rng.fork(17); r.bernoulli(p_shrink)) {
    d.misbehavior.shrink_at = draw_time(r, shrink_onset_min, shrink_onset_max);
    d.misbehavior.shrink_duration =
        draw_time(r, shrink_dur_min, shrink_dur_max);
  }
  if (sim::Rng r = rng.fork(18); r.bernoulli(p_corrupt)) {
    d.misbehavior.corrupt_probability =
        r.uniform(corrupt_prob_min, corrupt_prob_max);
  }
  if (sim::Rng r = rng.fork(19); r.bernoulli(p_ack_loss)) {
    d.ack_loss_prob = r.uniform(ack_loss_min, ack_loss_max);
  }
  if (sim::Rng r = rng.fork(20); r.bernoulli(p_stretch)) {
    d.ack_stretch =
        static_cast<uint32_t>(r.uniform_int(stretch_min, stretch_max));
  }
  d.faults = net::FaultSchedule::random(faults, rng.fork(1));
  return d;
}

PathologyProfile PathologyProfile::standard() {
  PathologyProfile p;
  p.p_renege = 0.25;
  p.p_lie_sack = 0.25;
  p.p_dup_sack = 0.2;
  p.p_suppress = 0.2;
  p.p_divide = 0.2;
  p.p_dup_ack = 0.2;
  p.p_reorder_acks = 0.2;
  p.p_shrink = 0.25;
  p.p_corrupt = 0.15;
  p.p_ack_loss = 0.15;
  p.p_stretch = 0.15;
  p.faults.p_blackout = 0.15;
  p.faults.p_ack_outage = 0.1;
  p.faults.p_receiver_stall = 0.1;
  p.faults.p_rtt_spike = 0.1;
  return p;
}

PathologyProfile PathologyProfile::only_renege() {
  PathologyProfile p;
  p.p_renege = 1.0;
  return p;
}

PathologyProfile PathologyProfile::only_lie_sack() {
  PathologyProfile p;
  p.p_lie_sack = 1.0;
  return p;
}

PathologyProfile PathologyProfile::only_shrink() {
  PathologyProfile p;
  p.p_shrink = 1.0;
  return p;
}

PathologyProfile PathologyProfile::only_corrupt() {
  PathologyProfile p;
  p.p_corrupt = 1.0;
  return p;
}

workload::ConnectionSample TorturePopulation::sample(sim::Rng rng) const {
  workload::ConnectionSample s = base_.sample(rng);
  profile_.draw(rng.fork(0x7047)).apply(s);
  return s;
}

}  // namespace prr::torture
