#include "torture/repro.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "net/fault_schedule.h"

namespace prr::torture {

namespace {

void kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += " = ";
  out += value;
  out += '\n';
}

std::string fmt_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string fmt_f(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_u64(const std::string& s, uint64_t& v) {
  char* end = nullptr;
  v = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

bool parse_i64(const std::string& s, int64_t& v) {
  char* end = nullptr;
  v = std::strtoll(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

bool parse_f(const std::string& s, double& v) {
  char* end = nullptr;
  v = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool parse_bool(const std::string& s, bool& v) {
  if (s == "1" || s == "true") { v = true; return true; }
  if (s == "0" || s == "false") { v = false; return true; }
  return false;
}

const char* fault_kind_name(net::FaultKind k) { return net::to_string(k); }

bool parse_fault_kind(const std::string& s, net::FaultKind& k) {
  using net::FaultKind;
  if (s == "blackout") k = FaultKind::kBlackout;
  else if (s == "bw_shift") k = FaultKind::kBandwidthShift;
  else if (s == "rtt_spike") k = FaultKind::kRttSpike;
  else if (s == "queue_resize") k = FaultKind::kQueueResize;
  else if (s == "ack_outage") k = FaultKind::kAckOutage;
  else if (s == "recv_stall") k = FaultKind::kReceiverStall;
  else return false;
  return true;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::string to_text(const ReproCase& c) {
  const workload::ConnectionSample& s = c.sample;
  const net::MisbehaviorConfig& m = s.misbehavior;
  std::string out = "prr-repro v1\n";
  kv(out, "name", c.name);
  kv(out, "arm", c.arm);
  kv(out, "seed", fmt_u64(c.seed));
  kv(out, "connection", fmt_u64(c.connection));
  kv(out, "limit_ns", fmt_i64(c.limit.ns()));
  kv(out, "watchdog_rto_backoffs", fmt_i64(c.watchdog_rto_backoffs));
  kv(out, "max_rto_backoffs", fmt_i64(c.max_rto_backoffs));
  kv(out, "renege_recovery", c.renege_recovery ? "1" : "0");
  kv(out, "validate_acks", c.validate_acks ? "1" : "0");
  kv(out, "zero_window_probes", c.zero_window_probes ? "1" : "0");

  kv(out, "rtt_ns", fmt_i64(s.rtt.ns()));
  kv(out, "bandwidth_bps", fmt_i64(s.bandwidth.bits_per_second()));
  kv(out, "queue_packets", fmt_u64(s.queue_packets));
  kv(out, "loss_p_good_to_bad", fmt_f(s.loss.p_good_to_bad));
  kv(out, "loss_p_bad_to_good", fmt_f(s.loss.p_bad_to_good));
  kv(out, "loss_in_good", fmt_f(s.loss.loss_in_good));
  kv(out, "loss_in_bad", fmt_f(s.loss.loss_in_bad));
  kv(out, "outages", s.outages ? "1" : "0");
  kv(out, "outage_mean_between_ns", fmt_i64(s.outage.mean_time_between.ns()));
  kv(out, "outage_mean_duration_ns", fmt_i64(s.outage.mean_duration.ns()));
  kv(out, "ack_loss_prob", fmt_f(s.ack_loss_prob));
  kv(out, "ack_stretch", fmt_u64(s.ack_stretch));
  kv(out, "ack_stretch_flush_ns", fmt_i64(s.ack_stretch_flush.ns()));
  kv(out, "reorder_prob", fmt_f(s.reorder_prob));
  kv(out, "reorder_min_ns", fmt_i64(s.reorder_min.ns()));
  kv(out, "reorder_max_ns", fmt_i64(s.reorder_max.ns()));
  kv(out, "client_sack", s.client_sack ? "1" : "0");
  kv(out, "client_ecn", s.client_ecn ? "1" : "0");
  kv(out, "ecn_mark_threshold", fmt_u64(s.ecn_mark_threshold));
  kv(out, "client_timestamps", s.client_timestamps ? "1" : "0");
  kv(out, "client_dsack", s.client_dsack ? "1" : "0");
  kv(out, "client_abandons", s.client_abandons ? "1" : "0");
  kv(out, "abandon_after_ns", fmt_i64(s.abandon_after.ns()));
  kv(out, "renege_at_ns", fmt_i64(s.renege_at.ns()));

  kv(out, "mis_lie_sack_prob", fmt_f(m.lie_sack_probability));
  kv(out, "mis_lie_span_bytes", fmt_u64(m.lie_span_bytes));
  kv(out, "mis_dup_sack_prob", fmt_f(m.dup_sack_probability));
  kv(out, "mis_suppress_at_ns", fmt_i64(m.suppress_at.ns()));
  kv(out, "mis_suppress_duration_ns", fmt_i64(m.suppress_duration.ns()));
  kv(out, "mis_divide_factor", fmt_u64(m.divide_factor));
  kv(out, "mis_divide_step_bytes", fmt_u64(m.divide_step_bytes));
  kv(out, "mis_dup_ack_prob", fmt_f(m.dup_ack_probability));
  kv(out, "mis_reorder_prob", fmt_f(m.reorder_probability));
  kv(out, "mis_reorder_flush_ns", fmt_i64(m.reorder_flush_timeout.ns()));
  kv(out, "mis_shrink_at_ns", fmt_i64(m.shrink_at.ns()));
  kv(out, "mis_shrink_duration_ns", fmt_i64(m.shrink_duration.ns()));
  kv(out, "mis_shrink_rwnd_bytes", fmt_u64(m.shrink_rwnd_bytes));
  kv(out, "mis_corrupt_prob", fmt_f(m.corrupt_probability));

  for (const net::FaultEvent& e : s.faults.events()) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s %" PRId64 " %" PRId64 " %.17g %zu",
                  fault_kind_name(e.kind), e.at.ns(), e.duration.ns(),
                  e.scale, e.queue_limit_packets);
    kv(out, "fault", buf);
  }
  for (const http::ResponseSpec& r : s.responses) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%" PRIu64 " %" PRId64 " %" PRIu64 " %" PRIu64 " %" PRId64,
                  r.bytes, r.gap_before.ns(), r.burst_bytes, r.chunk_bytes,
                  r.chunk_interval.ns());
    kv(out, "response", buf);
  }
  for (const std::string& e : c.expect) kv(out, "expect", e);
  return out;
}

bool from_text(const std::string& text, ReproCase& out, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "prr-repro v1") {
    return fail("missing 'prr-repro v1' header");
  }
  ReproCase c;
  c.sample.responses.clear();
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (split_ws(line).empty()) continue;  // blank
      return fail("line " + std::to_string(lineno) + ": expected key = value");
    }
    std::vector<std::string> keys = split_ws(line.substr(0, eq));
    if (keys.size() != 1) {
      return fail("line " + std::to_string(lineno) + ": bad key");
    }
    const std::string& key = keys[0];
    std::string value = line.substr(eq + 1);
    // Trim surrounding whitespace.
    const std::size_t b = value.find_first_not_of(" \t\r");
    const std::size_t e = value.find_last_not_of(" \t\r");
    value = b == std::string::npos ? "" : value.substr(b, e - b + 1);

    workload::ConnectionSample& s = c.sample;
    net::MisbehaviorConfig& m = s.misbehavior;
    bool ok = true;
    uint64_t u = 0;
    int64_t i = 0;
    bool bv = false;
    auto t = [&i] { return sim::Time::nanoseconds(i); };

    if (key == "name") c.name = value;
    else if (key == "arm") c.arm = value;
    else if (key == "seed") ok = parse_u64(value, c.seed);
    else if (key == "connection") ok = parse_u64(value, c.connection);
    else if (key == "limit_ns") { ok = parse_i64(value, i); c.limit = t(); }
    else if (key == "watchdog_rto_backoffs") {
      ok = parse_i64(value, i); c.watchdog_rto_backoffs = static_cast<int>(i);
    } else if (key == "max_rto_backoffs") {
      ok = parse_i64(value, i); c.max_rto_backoffs = static_cast<int>(i);
    } else if (key == "renege_recovery") {
      ok = parse_bool(value, c.renege_recovery);
    } else if (key == "validate_acks") {
      ok = parse_bool(value, c.validate_acks);
    } else if (key == "zero_window_probes") {
      ok = parse_bool(value, c.zero_window_probes);
    } else if (key == "rtt_ns") { ok = parse_i64(value, i); s.rtt = t(); }
    else if (key == "bandwidth_bps") {
      ok = parse_i64(value, i); s.bandwidth = util::DataRate::bps(i);
    } else if (key == "queue_packets") {
      ok = parse_u64(value, u); s.queue_packets = static_cast<std::size_t>(u);
    } else if (key == "loss_p_good_to_bad") {
      ok = parse_f(value, s.loss.p_good_to_bad);
    } else if (key == "loss_p_bad_to_good") {
      ok = parse_f(value, s.loss.p_bad_to_good);
    } else if (key == "loss_in_good") ok = parse_f(value, s.loss.loss_in_good);
    else if (key == "loss_in_bad") ok = parse_f(value, s.loss.loss_in_bad);
    else if (key == "outages") { ok = parse_bool(value, bv); s.outages = bv; }
    else if (key == "outage_mean_between_ns") {
      ok = parse_i64(value, i); s.outage.mean_time_between = t();
    } else if (key == "outage_mean_duration_ns") {
      ok = parse_i64(value, i); s.outage.mean_duration = t();
    } else if (key == "ack_loss_prob") ok = parse_f(value, s.ack_loss_prob);
    else if (key == "ack_stretch") {
      ok = parse_u64(value, u); s.ack_stretch = static_cast<uint32_t>(u);
    } else if (key == "ack_stretch_flush_ns") {
      ok = parse_i64(value, i); s.ack_stretch_flush = t();
    } else if (key == "reorder_prob") ok = parse_f(value, s.reorder_prob);
    else if (key == "reorder_min_ns") {
      ok = parse_i64(value, i); s.reorder_min = t();
    } else if (key == "reorder_max_ns") {
      ok = parse_i64(value, i); s.reorder_max = t();
    } else if (key == "client_sack") { ok = parse_bool(value, s.client_sack); }
    else if (key == "client_ecn") { ok = parse_bool(value, s.client_ecn); }
    else if (key == "ecn_mark_threshold") {
      ok = parse_u64(value, u);
      s.ecn_mark_threshold = static_cast<std::size_t>(u);
    } else if (key == "client_timestamps") {
      ok = parse_bool(value, s.client_timestamps);
    } else if (key == "client_dsack") {
      ok = parse_bool(value, s.client_dsack);
    } else if (key == "client_abandons") {
      ok = parse_bool(value, s.client_abandons);
    } else if (key == "abandon_after_ns") {
      ok = parse_i64(value, i); s.abandon_after = t();
    } else if (key == "renege_at_ns") {
      ok = parse_i64(value, i); s.renege_at = t();
    } else if (key == "mis_lie_sack_prob") {
      ok = parse_f(value, m.lie_sack_probability);
    } else if (key == "mis_lie_span_bytes") {
      ok = parse_u64(value, u); m.lie_span_bytes = static_cast<uint32_t>(u);
    } else if (key == "mis_dup_sack_prob") {
      ok = parse_f(value, m.dup_sack_probability);
    } else if (key == "mis_suppress_at_ns") {
      ok = parse_i64(value, i); m.suppress_at = t();
    } else if (key == "mis_suppress_duration_ns") {
      ok = parse_i64(value, i); m.suppress_duration = t();
    } else if (key == "mis_divide_factor") {
      ok = parse_u64(value, u); m.divide_factor = static_cast<uint32_t>(u);
    } else if (key == "mis_divide_step_bytes") {
      ok = parse_u64(value, u); m.divide_step_bytes = static_cast<uint32_t>(u);
    } else if (key == "mis_dup_ack_prob") {
      ok = parse_f(value, m.dup_ack_probability);
    } else if (key == "mis_reorder_prob") {
      ok = parse_f(value, m.reorder_probability);
    } else if (key == "mis_reorder_flush_ns") {
      ok = parse_i64(value, i); m.reorder_flush_timeout = t();
    } else if (key == "mis_shrink_at_ns") {
      ok = parse_i64(value, i); m.shrink_at = t();
    } else if (key == "mis_shrink_duration_ns") {
      ok = parse_i64(value, i); m.shrink_duration = t();
    } else if (key == "mis_shrink_rwnd_bytes") {
      ok = parse_u64(value, m.shrink_rwnd_bytes);
    } else if (key == "mis_corrupt_prob") {
      ok = parse_f(value, m.corrupt_probability);
    } else if (key == "fault") {
      std::vector<std::string> tok = split_ws(value);
      net::FaultEvent ev;
      int64_t at = 0, dur = 0;
      ok = tok.size() == 5 && parse_fault_kind(tok[0], ev.kind) &&
           parse_i64(tok[1], at) && parse_i64(tok[2], dur) &&
           parse_f(tok[3], ev.scale) && parse_u64(tok[4], u);
      if (ok) {
        ev.at = sim::Time::nanoseconds(at);
        ev.duration = sim::Time::nanoseconds(dur);
        ev.queue_limit_packets = static_cast<std::size_t>(u);
        s.faults.add(ev);
      }
    } else if (key == "response") {
      std::vector<std::string> tok = split_ws(value);
      http::ResponseSpec r;
      int64_t gap = 0, interval = 0;
      ok = tok.size() == 5 && parse_u64(tok[0], r.bytes) &&
           parse_i64(tok[1], gap) && parse_u64(tok[2], r.burst_bytes) &&
           parse_u64(tok[3], r.chunk_bytes) && parse_i64(tok[4], interval);
      if (ok) {
        r.gap_before = sim::Time::nanoseconds(gap);
        r.chunk_interval = sim::Time::nanoseconds(interval);
        s.responses.push_back(r);
      }
    } else if (key == "expect") {
      ok = !value.empty();
      if (ok) c.expect.push_back(value);
    } else {
      return fail("line " + std::to_string(lineno) + ": unknown key '" +
                  key + "'");
    }
    if (!ok) {
      return fail("line " + std::to_string(lineno) + ": bad value for '" +
                  key + "'");
    }
  }
  out = std::move(c);
  return true;
}

bool save_repro(const ReproCase& c, const std::string& path,
                std::string* error) {
  std::ofstream f(path);
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  f << to_text(c);
  return static_cast<bool>(f);
}

bool load_repro(const std::string& path, ReproCase& out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return from_text(buf.str(), out, error);
}

exp::ArmConfig repro_arm(const ReproCase& c) {
  exp::ArmConfig arm;
  if (c.arm == "RFC 3517") arm = exp::ArmConfig::rfc3517_arm();
  else if (c.arm == "Linux") arm = exp::ArmConfig::linux_arm();
  else arm = exp::ArmConfig::prr_arm();
  arm.max_rto_backoffs = c.max_rto_backoffs;
  arm.renege_recovery = c.renege_recovery;
  arm.validate_acks = c.validate_acks;
  arm.zero_window_probes = c.zero_window_probes;
  return arm;
}

exp::ReplayResult run_repro(const ReproCase& c) {
  ReproPopulation pop(c.sample);
  exp::RunOptions opts;
  opts.seed = c.seed;
  opts.per_connection_limit = c.limit;
  opts.check_invariants = true;
  opts.torture_oracles = true;
  opts.watchdog_rto_backoffs = c.watchdog_rto_backoffs;
  opts.scenario = "repro:" + c.name;
  exp::Experiment experiment(pop, opts);
  exp::QuarantineRecord rec;
  rec.seed = c.seed;
  rec.connection_id = c.connection;
  return experiment.replay(repro_arm(c), rec);
}

bool repro_reproduced(const ReproCase& c, const exp::ReplayResult& r) {
  if (c.expect.empty()) {
    return !r.violations.empty() || !r.exception.empty();
  }
  for (const std::string& want : c.expect) {
    if (want == "exception") {
      if (r.exception.empty()) return false;
      continue;
    }
    if (want == "not_terminated") {
      if (r.all_acked || r.aborted) return false;
      continue;
    }
    if (want == "aborted") {
      if (!r.aborted) return false;
      continue;
    }
    bool found = false;
    for (const auto& v : r.violations) {
      if (want == tcp::to_string(v.kind)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace prr::torture
