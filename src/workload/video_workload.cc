#include "workload/video_workload.h"

#include <algorithm>
#include <cmath>

namespace prr::workload {

ConnectionSample VideoWorkload::sample(sim::Rng rng) const {
  ConnectionSample s;
  sample_into(rng, s);
  return s;
}

void VideoWorkload::sample_into(sim::Rng rng, ConnectionSample& s) const {
  s.reset_keep_capacity();
  sim::Rng net_rng = rng.fork(1);
  sim::Rng app_rng = rng.fork(2);

  const double rtt_ms = std::clamp(
      net_rng.lognormal_with_mean(params_.mean_rtt_ms, params_.rtt_sigma),
      100.0, 4000.0);
  s.rtt = sim::Time::milliseconds(static_cast<int64_t>(rtt_ms));

  const double bw = std::clamp(
      net_rng.lognormal_with_mean(params_.mean_bandwidth_mbps,
                                  params_.bandwidth_sigma),
      0.2, 5.0);
  s.bandwidth = util::DataRate::mbps(bw);
  const double bdp_packets = bw * 1e6 / 8.0 * (rtt_ms / 1000.0) / 1500.0;
  s.queue_packets =
      static_cast<std::size_t>(std::max(50.0, 1.5 * bdp_packets));

  if (net_rng.uniform() < params_.clean_path_fraction) {
    s.loss.p_good_to_bad = 0.0;
    s.loss.loss_in_bad = 0.0;
  } else {
    s.loss.p_good_to_bad =
        std::min(0.1, net_rng.exponential(params_.lossy_p_good_to_bad));
    s.loss.p_bad_to_good = 1.0 / params_.mean_burst_len;
    s.loss.loss_in_good = 0.0;
    s.loss.loss_in_bad = params_.loss_in_bad;
  }

  if (net_rng.uniform() < params_.outage_client_fraction) {
    s.outages = true;
    s.outage.mean_time_between =
        sim::Time::seconds(params_.outage_mean_gap_s);
    s.outage.mean_duration =
        sim::Time::seconds(params_.outage_mean_duration_s);
  }
  s.ack_loss_prob = params_.ack_loss_prob;
  s.ack_stretch =
      net_rng.uniform() < params_.stretch_client_fraction ? 2 : 1;
  s.reorder_prob = params_.reorder_prob;
  s.reorder_max = std::max(sim::Time::milliseconds(2), s.rtt / 16);
  s.client_sack = net_rng.uniform() < params_.sack_client_fraction;
  s.client_timestamps =
      net_rng.uniform() < params_.timestamp_client_fraction;
  s.client_dsack =
      s.client_sack && net_rng.uniform() < params_.dsack_client_fraction;

  const uint64_t bytes = static_cast<uint64_t>(std::clamp(
      app_rng.lognormal_with_mean(params_.mean_transfer_bytes,
                                  params_.transfer_sigma),
      200e3, 20e6));
  http::ResponseSpec spec;
  spec.bytes = bytes;
  // Progressive HTTP: an initial burst, then chunks at the encoding rate.
  spec.burst_bytes = static_cast<uint64_t>(
      params_.encoding_rate_mbps * 1e6 / 8.0 * params_.burst_seconds);
  spec.chunk_interval = sim::Time::milliseconds(250);
  spec.chunk_bytes = static_cast<uint64_t>(
      params_.encoding_rate_mbps * 1e6 / 8.0 * 0.25);
  s.responses.push_back(spec);
}

}  // namespace prr::workload
