// Open-world arrival machinery for the live experiment service
// (DESIGN.md §13): an inhomogeneous Poisson connection-arrival process
// with a diurnal load curve, and a population decorator that applies a
// scheduled "regime" (loss / RTT / bandwidth scaling) to the samples of
// one snapshot window — the service's mid-flight drift injection.
//
// Determinism: the arrival stream is a pure function of its Rng seed —
// one exponential draw (plus thinning draws) per arrival, consumed
// strictly in arrival order by the single-threaded service loop — so
// the same seed yields the same admission timeline at any worker-thread
// count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "workload/population.h"

namespace prr::workload {

// Multiplicative load curve: rate(t) = base * at(t), mean 1 over one
// period, never negative. amplitude 0 = homogeneous Poisson.
struct DiurnalCurve {
  double amplitude = 0.0;             // peak-to-mean swing, in [0, 1]
  sim::Time period = sim::Time::seconds(86400);
  double phase = 0.0;                 // fraction of a period, [0, 1)

  double at(sim::Time t) const;
};

// Inhomogeneous Poisson arrivals by thinning: candidate gaps are drawn
// at the peak rate and accepted with probability rate(t)/peak, which
// preserves the Poisson property under any bounded rate curve.
class ArrivalProcess {
 public:
  struct Config {
    double rate_per_sec = 100.0;  // mean arrival rate (diurnal mean)
    DiurnalCurve diurnal;
  };

  ArrivalProcess(Config cfg, sim::Rng rng);

  // Time of the next arrival (strictly increasing).
  sim::Time next();
  sim::Time now() const { return t_; }

 private:
  Config cfg_;
  sim::Rng rng_;
  sim::Time t_ = sim::Time::zero();
  double peak_rate_ = 0;
};

// One loss/path regime, active from `at` onward (the latest shift whose
// `at` has passed wins — shifts are absolute, not cumulative).
struct RegimeShift {
  sim::Time at = sim::Time::zero();
  double loss_scale = 1.0;       // scales GE p(good->bad) and loss_in_good
  double rtt_scale = 1.0;
  double bandwidth_scale = 1.0;  // <1 = slower access links
  bool is_identity() const {
    return loss_scale == 1.0 && rtt_scale == 1.0 && bandwidth_scale == 1.0;
  }
};

struct RegimeSchedule {
  std::vector<RegimeShift> shifts;  // sorted by `at` ascending
  bool empty() const { return shifts.empty(); }
  // The regime in force at time t (identity before the first shift).
  RegimeShift active_at(sim::Time t) const;
};

// Decorator: draws the base population's sample unchanged, then applies
// the regime the service selected for the current snapshot window. The
// service sets the window time once per window, before the (possibly
// parallel) window run — workers only read it, and every arm sees the
// identical scaled sample (the regime is arm-independent, so CRN
// pairing is preserved). For quarantine triage the same scaling is
// reproducible from the alert's recorded scale factors (prr_inspect
// --loss-scale).
class RegimePopulation final : public Population {
 public:
  RegimePopulation(const Population& base, RegimeSchedule schedule)
      : base_(base), schedule_(std::move(schedule)) {}

  // Selects the regime for samples drawn until the next call. Not
  // thread-safe against concurrent sampling — call between window runs.
  void set_window_time(sim::Time t) { current_ = schedule_.active_at(t); }
  const RegimeShift& current() const { return current_; }

  ConnectionSample sample(sim::Rng rng) const override;
  void sample_into(sim::Rng rng, ConnectionSample& out) const override;

  // The scaling applied to one drawn sample — shared with prr_inspect's
  // triage path so a quarantined window replays bit-exactly.
  static void apply(const RegimeShift& regime, ConnectionSample& s);

 private:
  const Population& base_;
  RegimeSchedule schedule_;
  RegimeShift current_;
};

}  // namespace prr::workload
