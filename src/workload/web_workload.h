// DC1-style interactive Web population (paper §2, Table 1): short HTTP
// responses averaging ~7.5 kB, ~3.1 requests per persistent connection, a
// heavy share of single-segment responses (analytics beacons), mean user
// bandwidth ~1.9 Mbps, diverse RTTs, correlated (bursty) losses tuned so
// a minority of responses see retransmissions, a small rate of abandoned
// clients, and ACK-path impairments (loss, stretch, light reordering).
#pragma once

#include "workload/population.h"

namespace prr::workload {

struct WebWorkloadParams {
  double mean_rtt_ms = 120;
  double rtt_sigma = 0.9;       // lognormal shape
  double mean_bandwidth_mbps = 1.9;
  double bandwidth_sigma = 0.9;
  double mean_requests_per_conn = 3.1;
  // Mixture mean works out to ~7.5 kB with the tiny-beacon mass below.
  double mean_response_bytes = 12100;
  double response_sigma = 1.6;
  double tiny_response_fraction = 0.40;  // one-segment beacons
  uint64_t tiny_response_bytes = 700;
  double mean_gap_ms = 800;     // between requests on a connection

  // Loss environment: fraction of connections on clean paths, and the
  // burst-loss intensity for the lossy remainder. Tuned so the aggregate
  // segment retransmission rate lands near the paper's 2.8% with ~6% of
  // responses experiencing retransmissions.
  double clean_path_fraction = 0.38;
  double lossy_p_good_to_bad = 0.016;   // mean, drawn exponentially
  double mean_burst_len = 3.0;          // ~3 fast retransmits per event
  double loss_in_bad = 0.9;

  double ack_loss_prob = 0.01;
  double stretch_client_fraction = 0.15;  // clients behind LRO (k=2)
  double reorder_prob = 0.0008;           // light Internet reordering
  double sack_client_fraction = 0.96;       // Table 1
  double timestamp_client_fraction = 0.12;  // Table 1 (Windows: off)
  double dsack_client_fraction = 0.85;
  double abandon_fraction = 0.02;
  double abandon_after_ms = 400;
};

class WebWorkload final : public Population {
 public:
  explicit WebWorkload(WebWorkloadParams params = {}) : params_(params) {}
  ConnectionSample sample(sim::Rng rng) const override;
  void sample_into(sim::Rng rng, ConnectionSample& out) const override;
  const WebWorkloadParams& params() const { return params_; }

 private:
  WebWorkloadParams params_;
};

}  // namespace prr::workload
