#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace prr::workload {

double DiurnalCurve::at(sim::Time t) const {
  if (amplitude == 0.0 || period.is_zero()) return 1.0;
  constexpr double kTau = 6.283185307179586476925286766559;
  const double cycles = t / period + phase;
  return std::max(0.0, 1.0 + amplitude * std::sin(kTau * cycles));
}

ArrivalProcess::ArrivalProcess(Config cfg, sim::Rng rng)
    : cfg_(cfg), rng_(rng) {
  peak_rate_ = cfg_.rate_per_sec * (1.0 + std::max(0.0, cfg_.diurnal.amplitude));
  if (peak_rate_ <= 0) peak_rate_ = 1e-9;
}

sim::Time ArrivalProcess::next() {
  if (cfg_.rate_per_sec <= 0) {
    // A silent process never arrives; advance far enough that any
    // horizon/connection cap terminates the caller's window loop.
    t_ += sim::Time::seconds(86400.0 * 365);
    return t_;
  }
  // Thinning (Lewis & Shedler): homogeneous candidates at the peak
  // rate, each kept with probability rate(t)/peak.
  for (;;) {
    const double gap_s = rng_.exponential(1.0 / peak_rate_);
    t_ += sim::Time::seconds(gap_s);
    const double accept =
        cfg_.rate_per_sec * cfg_.diurnal.at(t_) / peak_rate_;
    if (rng_.bernoulli(accept)) return t_;
  }
}

RegimeShift RegimeSchedule::active_at(sim::Time t) const {
  RegimeShift active;  // identity before the first shift
  for (const RegimeShift& s : shifts) {
    if (s.at <= t) active = s;
  }
  return active;
}

void RegimePopulation::apply(const RegimeShift& regime, ConnectionSample& s) {
  if (regime.is_identity()) return;
  if (regime.loss_scale != 1.0) {
    s.loss.p_good_to_bad =
        std::min(1.0, s.loss.p_good_to_bad * regime.loss_scale);
    s.loss.loss_in_good =
        std::min(1.0, s.loss.loss_in_good * regime.loss_scale);
  }
  if (regime.rtt_scale != 1.0) {
    s.rtt = s.rtt * regime.rtt_scale;
  }
  if (regime.bandwidth_scale != 1.0) {
    s.bandwidth = util::DataRate::bps(static_cast<int64_t>(
        static_cast<double>(s.bandwidth.bits_per_second()) *
        regime.bandwidth_scale));
  }
}

ConnectionSample RegimePopulation::sample(sim::Rng rng) const {
  ConnectionSample s = base_.sample(rng);
  apply(current_, s);
  return s;
}

void RegimePopulation::sample_into(sim::Rng rng, ConnectionSample& out) const {
  base_.sample_into(rng, out);
  apply(current_, out);
}

}  // namespace prr::workload
