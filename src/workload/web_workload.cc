#include "workload/web_workload.h"

#include <algorithm>
#include <cmath>

namespace prr::workload {

ConnectionSample WebWorkload::sample(sim::Rng rng) const {
  ConnectionSample s;
  sample_into(rng, s);
  return s;
}

void WebWorkload::sample_into(sim::Rng rng, ConnectionSample& s) const {
  s.reset_keep_capacity();
  sim::Rng net_rng = rng.fork(1);
  sim::Rng app_rng = rng.fork(2);

  const double rtt_ms = std::clamp(
      net_rng.lognormal_with_mean(params_.mean_rtt_ms, params_.rtt_sigma),
      10.0, 3000.0);
  s.rtt = sim::Time::milliseconds(static_cast<int64_t>(rtt_ms));

  const double bw = std::clamp(
      net_rng.lognormal_with_mean(params_.mean_bandwidth_mbps,
                                  params_.bandwidth_sigma),
      0.064, 50.0);
  s.bandwidth = util::DataRate::mbps(bw);

  // Access-link buffers are deep in practice (bufferbloat): at least a
  // few dozen packets regardless of the (often tiny) BDP.
  const double bdp_packets =
      bw * 1e6 / 8.0 * (rtt_ms / 1000.0) / 1500.0;
  s.queue_packets = static_cast<std::size_t>(
      std::max(40.0, 2.0 * bdp_packets));

  if (net_rng.uniform() < params_.clean_path_fraction) {
    s.loss.p_good_to_bad = 0.0;
    s.loss.loss_in_bad = 0.0;
  } else {
    s.loss.p_good_to_bad =
        std::min(0.08, net_rng.exponential(params_.lossy_p_good_to_bad));
    s.loss.p_bad_to_good = 1.0 / params_.mean_burst_len;
    s.loss.loss_in_good = 0.0;
    s.loss.loss_in_bad = params_.loss_in_bad;
  }

  s.ack_loss_prob = params_.ack_loss_prob;
  s.ack_stretch =
      net_rng.uniform() < params_.stretch_client_fraction ? 2 : 1;
  s.reorder_prob = params_.reorder_prob;
  s.reorder_min = sim::Time::milliseconds(1);
  s.reorder_max = std::max(sim::Time::milliseconds(2), s.rtt / 16);
  s.client_sack = net_rng.uniform() < params_.sack_client_fraction;
  s.client_timestamps =
      net_rng.uniform() < params_.timestamp_client_fraction;
  s.client_dsack =
      s.client_sack && net_rng.uniform() < params_.dsack_client_fraction;
  s.client_abandons = net_rng.uniform() < params_.abandon_fraction;
  s.abandon_after = sim::Time::milliseconds(static_cast<int64_t>(
      app_rng.exponential(params_.abandon_after_ms)));

  const int requests = app_rng.geometric(params_.mean_requests_per_conn);
  for (int i = 0; i < requests; ++i) {
    uint64_t bytes;
    if (app_rng.uniform() < params_.tiny_response_fraction) {
      bytes = params_.tiny_response_bytes;
    } else {
      bytes = static_cast<uint64_t>(std::clamp(
          app_rng.lognormal_with_mean(params_.mean_response_bytes,
                                      params_.response_sigma),
          400.0, 500e3));
    }
    sim::Time gap = sim::Time::zero();
    if (i > 0) {
      gap = sim::Time::milliseconds(static_cast<int64_t>(
                app_rng.exponential(params_.mean_gap_ms))) +
            s.rtt;  // request upload takes a round trip
    }
    s.responses.push_back(http::ResponseSpec::plain(bytes, gap));
  }
}

}  // namespace prr::workload
