// DC2-style YouTube-India population (paper §5.4): one long progressive-
// HTTP video transfer per connection (average 2.3 MB), very long RTTs
// (average 860 ms), access bandwidth with little or no surplus over the
// video encoding rate, heavier correlated losses, and encoder-rate
// throttling after an initial unthrottled burst.
#pragma once

#include "workload/population.h"

namespace prr::workload {

struct VideoWorkloadParams {
  double mean_rtt_ms = 860;
  double rtt_sigma = 0.5;
  double mean_bandwidth_mbps = 0.65;
  double bandwidth_sigma = 0.5;
  double mean_transfer_bytes = 2.3e6;
  double transfer_sigma = 0.6;
  double encoding_rate_mbps = 0.5;   // chunked write rate after the burst
  double burst_seconds = 15;         // first seconds sent as fast as possible

  double clean_path_fraction = 0.25;
  double lossy_p_good_to_bad = 0.014;
  double mean_burst_len = 4.5;
  double loss_in_bad = 0.9;

  // A fraction of (mobile-ish) paths suffer periodic total outages long
  // enough to force RTO backoff chains.
  double outage_client_fraction = 0.35;
  double outage_mean_gap_s = 60;
  double outage_mean_duration_s = 1.2;

  double ack_loss_prob = 0.02;
  double stretch_client_fraction = 0.1;
  double reorder_prob = 0.0008;
  double sack_client_fraction = 0.96;
  double timestamp_client_fraction = 0.12;
  double dsack_client_fraction = 0.8;
  double abandon_fraction = 0.0;  // abandonment tracked via Web workload
};

class VideoWorkload final : public Population {
 public:
  explicit VideoWorkload(VideoWorkloadParams params = {}) : params_(params) {}
  ConnectionSample sample(sim::Rng rng) const override;
  void sample_into(sim::Rng rng, ConnectionSample& out) const override;
  const VideoWorkloadParams& params() const { return params_; }

 private:
  VideoWorkloadParams params_;
};

}  // namespace prr::workload
