#include "workload/population.h"

// Population is an interface; concrete models live in web_workload.cc and
// video_workload.cc. This TU anchors the vtable.

namespace prr::workload {}  // namespace prr::workload
