// Synthetic user populations replacing the paper's live Google traffic.
// A Population draws, per connection, the network environment (RTT,
// access bandwidth, burst-loss process, ACK impairments) and the HTTP
// workload (response sizes, request gaps, client behaviour). Each
// connection's sample derives from a (run seed, connection id) pair so
// every experiment arm sees the identical sequence of sample paths —
// the common-random-numbers analogue of the paper's A/B server binning.
#pragma once

#include <cstdint>
#include <vector>

#include "http/server_app.h"
#include "net/fault_schedule.h"
#include "net/loss_model.h"
#include "net/misbehavior.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "util/units.h"

namespace prr::workload {

struct ConnectionSample {
  sim::Time rtt = sim::Time::milliseconds(100);
  util::DataRate bandwidth = util::DataRate::mbps(1.9);
  std::size_t queue_packets = 100;

  net::GilbertElliottLoss::Params loss;
  // Optional time-based outages layered over the segment-level loss.
  bool outages = false;
  net::OutageLoss::Params outage;
  double ack_loss_prob = 0.0;
  uint32_t ack_stretch = 1;      // >1 emulates LRO/GRO stretch ACKs
  // How long the offload engine may hold an ACK waiting to coalesce.
  sim::Time ack_stretch_flush = sim::Time::microseconds(500);
  double reorder_prob = 0.0;
  sim::Time reorder_min = sim::Time::milliseconds(1);
  sim::Time reorder_max = sim::Time::milliseconds(4);

  bool client_sack = true;   // SACK negotiated (96% in Table 1)
  bool client_ecn = false;   // ECN negotiated (servers disabled it, §5.1)
  // AQM marking threshold on the bottleneck (0 = plain drop-tail).
  std::size_t ecn_mark_threshold = 0;
  bool client_timestamps = false;  // Timestamps negotiated (12%)
  bool client_dsack = true;
  bool client_abandons = false;  // user walked away: ACKs stop forever
  sim::Time abandon_after = sim::Time::zero();

  // Time-varying path dynamics applied during the connection (chaos
  // experiments): blackouts, bandwidth shifts, RTT spikes, queue
  // resizes, ACK outages, receiver stalls. Empty = stationary path.
  net::FaultSchedule faults;

  // Adversarial endpoint models (torture experiments): wire-level ACK
  // misbehavior applied inside the AckMangler, and stateful SACK
  // reneging in the receiver (it discards its OOO queue at this time;
  // zero = never). All off by default.
  net::MisbehaviorConfig misbehavior;
  sim::Time renege_at = sim::Time::zero();

  std::vector<http::ResponseSpec> responses;

  // Rewinds every field to its default-constructed value while keeping
  // the responses/faults vector capacity — the pool-recycle hot path
  // resets a reused sample instead of constructing a fresh one.
  void reset_keep_capacity() {
    auto responses_keep = std::move(responses);
    responses_keep.clear();
    auto faults_keep = std::move(faults);
    faults_keep.clear();
    *this = ConnectionSample{};
    responses = std::move(responses_keep);
    faults = std::move(faults_keep);
  }
};

class Population {
 public:
  virtual ~Population() = default;
  // Draws connection `id`'s full sample. Must be deterministic in
  // (seed carried by rng, id).
  virtual ConnectionSample sample(sim::Rng rng) const = 0;

  // Draws the sample into `out`, reusing its buffer capacity where the
  // population supports it. Semantically identical to `out = sample(rng)`
  // (the default does exactly that); the sweep populations override it
  // to fill in place so the warm sweep loop performs no allocation.
  virtual void sample_into(sim::Rng rng, ConnectionSample& out) const {
    out = sample(rng);
  }
};

}  // namespace prr::workload
