// Simulation time: a strong 64-bit nanosecond type with arithmetic and
// unit helpers. All modules express time in sim::Time to avoid unit bugs.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>
#include <type_traits>

namespace prr::sim {

class Time {
 public:
  constexpr Time() = default;
  static constexpr Time nanoseconds(int64_t ns) { return Time(ns); }
  static constexpr Time microseconds(int64_t us) { return Time(us * 1000); }
  static constexpr Time milliseconds(int64_t ms) {
    return Time(ms * 1'000'000);
  }
  static constexpr Time seconds(double s) {
    return Time(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time infinite() {
    return Time(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t ns() const { return ns_; }
  constexpr int64_t us() const { return ns_ / 1000; }
  constexpr int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double seconds_d() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ms_d() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<int64_t>::max();
  }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(Time a, I k) {
    return Time(a.ns_ * static_cast<int64_t>(k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(I k, Time a) {
    return Time(a.ns_ * static_cast<int64_t>(k));
  }
  template <typename F>
    requires std::is_floating_point_v<F>
  friend constexpr Time operator*(Time a, F k) {
    return Time(static_cast<int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr Time operator/(Time a, int64_t k) { return Time(a.ns_ / k); }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Time& operator+=(Time b) { ns_ += b.ns_; return *this; }
  constexpr Time& operator-=(Time b) { ns_ -= b.ns_; return *this; }
  friend constexpr auto operator<=>(Time a, Time b) = default;

  std::string to_string() const {
    if (is_infinite()) return "inf";
    if (ns_ >= 1'000'000) return std::to_string(ns_ / 1'000'000) + "ms";
    if (ns_ >= 1'000) return std::to_string(ns_ / 1'000) + "us";
    return std::to_string(ns_) + "ns";
  }

 private:
  explicit constexpr Time(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

namespace literals {
constexpr Time operator""_ms(unsigned long long v) {
  return Time::milliseconds(static_cast<int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v) {
  return Time::microseconds(static_cast<int64_t>(v));
}
constexpr Time operator""_ns(unsigned long long v) {
  return Time::nanoseconds(static_cast<int64_t>(v));
}
constexpr Time operator""_s(unsigned long long v) {
  return Time::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace prr::sim
