// Binary-heap event queue with stable FIFO ordering for equal timestamps
// and O(log n) lazy cancellation via event ids.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace prr::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Events with equal time fire in
  // scheduling order. Returns an id usable with cancel().
  EventId schedule(Time at, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired, already-
  // cancelled, never-issued, or invalid id is a true no-op: no state is
  // retained for it (lazy deletion: the heap entry, if any, is skipped
  // when popped).
  void cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }
  Time next_time() const;

  // Pops and runs the earliest event; returns its time. Precondition:
  // !empty().
  Time run_next();

 private:
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO among equal times
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of events scheduled but not yet fired or cancelled: a heap entry
  // is live iff its id is in here. Tracking liveness (rather than a
  // cancellation set) bounds memory by the number of pending events —
  // cancelling fired or bogus ids cannot grow anything — and makes
  // size()/empty() exact.
  mutable std::unordered_set<EventId> pending_;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace prr::sim
