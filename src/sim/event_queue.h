// Event queue built for allocation-free steady-state operation: a
// generation-tagged slot map holds the callbacks (free-listed slots, so
// schedule/fire/cancel recycle storage instead of allocating), and a
// pluggable ordering backend provides (time, seq) ordering — equal times
// fire in scheduling order via the seq tie-breaker, exactly as the
// original heap-of-std::function design did.
//
// Two backends exist, selectable per queue while empty (DESIGN.md §12):
//   kHeap  — 4-ary min-heap of (time, seq, slot, gen) entries.
//   kWheel — hierarchical timing wheel (sim/timing_wheel.h): O(1)
//            schedule/cancel/reschedule via intrusive per-slot lists
//            with the same global seq tie-break, overflow levels
//            cascading on advance. Cancels unlink eagerly, so the wheel
//            holds no stale entries and never churns memory under
//            reschedule-heavy timer traffic.
// Both implement the identical strict total order (time, seq), so pop
// order is byte-identical between them (asserted by the differential
// tests in tests/test_timing_wheel.cc). The compile-time default comes
// from the PRR_SCHEDULER_WHEEL_DEFAULT CMake option; RunOptions can
// override it per run.
//
// An EventId packs (generation << 32 | slot index). The generation bumps
// whenever the slot's pending event is fired, cancelled or rescheduled,
// so a stale id can never touch a recycled slot: cancel() and
// reschedule() are O(1) array probes that no-op on dead ids. Heap
// entries whose generation no longer matches their slot are skipped
// lazily on pop; wheel entries are unlinked eagerly instead. Callbacks are util::InlineFunction, so the typical
// capture (`this` plus a slot index or a Time) lives inside the slot —
// no per-event heap allocation anywhere in the schedule/fire/cancel
// cycle once the slot and backend vectors have reached steady capacity.
//
// Batch-delivery support (DESIGN.md §12): take_seq() hands out the next
// FIFO sequence number without scheduling, and schedule_with_seq() /
// reschedule_with_seq() insert an entry under such a pre-drawn seq.
// A caller that dispatches some work inline (net::Link draining an
// ACK train) draws seqs at exactly the call points where per-event mode
// would have scheduled, so the relative order of everything that does
// reach the queue — and hence the dispatch order — is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "sim/timing_wheel.h"
#include "util/inline_function.h"

namespace prr::sim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// 48 bytes of inline capture space: enough for a std::function being
// forwarded, or `this` + a couple of words, with headroom.
using EventCallback = util::InlineFunction<void(), 48>;

enum class SchedulerBackend : uint8_t { kHeap, kWheel };

#ifdef PRR_SCHEDULER_WHEEL_DEFAULT
inline constexpr SchedulerBackend kDefaultSchedulerBackend =
    PRR_SCHEDULER_WHEEL_DEFAULT ? SchedulerBackend::kWheel
                                : SchedulerBackend::kHeap;
#else
inline constexpr SchedulerBackend kDefaultSchedulerBackend =
    SchedulerBackend::kWheel;
#endif

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Events with equal time fire in
  // scheduling order. Returns an id usable with cancel()/reschedule().
  EventId schedule(Time at, EventCallback fn);

  // Moves a pending event to a new time, keeping its callback and slot
  // (no allocation, no callback reconstruction). The event is re-sequenced
  // as if it had been cancelled and freshly scheduled, so FIFO ordering
  // among equal times is identical to a cancel+schedule pair. Returns the
  // event's new id, or kInvalidEventId if `id` was stale (already fired,
  // cancelled, or never issued) — the caller then schedules normally.
  EventId reschedule(EventId id, Time at);

  // Cancels a pending event. Cancelling an already-fired, already-
  // cancelled, never-issued, or invalid id is a true no-op: the
  // generation check makes stale ids unable to touch a recycled slot.
  void cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  Time next_time() const;

  // ---- batch delivery (pre-drawn sequence numbers) ----
  // Draws the next FIFO sequence number without scheduling anything.
  // A caller that will dispatch work inline (or materialize a deferred
  // timer rearm later) draws its seq at the exact point per-event mode
  // would have scheduled, keeping the global tie-break order identical.
  uint64_t take_seq() { return next_seq_++; }
  // Like schedule()/reschedule(), but under a seq from take_seq().
  EventId schedule_with_seq(Time at, uint64_t seq, EventCallback fn);
  EventId reschedule_with_seq(EventId id, Time at, uint64_t seq);
  // True when the queue is empty or its earliest pending (time, seq) key
  // is strictly after (at, seq) — i.e. dispatching (at, seq) inline now
  // cannot overtake any queued event.
  bool next_is_after(Time at, uint64_t seq) const;

  // Selects the ordering backend. Only callable while the queue is empty
  // (construction, or between clear() and the first schedule).
  void set_backend(SchedulerBackend b);
  SchedulerBackend backend() const { return backend_; }

  // Drops every pending event and restarts the FIFO sequence counter, so
  // the queue behaves exactly like a freshly constructed one (equal-time
  // tie-breaking included) while keeping slot and backend capacity. Live
  // slots get their generation bumped, so any EventId issued before
  // clear() — including Timer handles held by pooled objects — goes
  // stale and cancel()/reschedule() on it is a safe no-op.
  void clear();

  // Pops and runs the earliest event; returns its time. Precondition:
  // !empty().
  Time run_next();

 private:
  static constexpr uint32_t kNilIndex = 0xffffffffu;

  struct Slot {
    EventCallback fn;
    uint32_t gen = 1;  // generations start at 1 so no id is ever 0
    uint32_t next_free = kNilIndex;
    bool live = false;
  };
  struct HeapEntry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO among equal times
    uint32_t slot;
    uint32_t gen;
  };

  static EventId make_id(uint32_t gen, uint32_t index) {
    return (static_cast<EventId>(gen) << 32) | index;
  }
  static uint32_t id_gen(EventId id) { return static_cast<uint32_t>(id >> 32); }
  static uint32_t id_index(EventId id) { return static_cast<uint32_t>(id); }

  static void bump_gen(Slot& s) {
    if (++s.gen == 0) s.gen = 1;  // skip 0 so ids stay non-zero
  }

  Slot* live_slot(EventId id);
  uint32_t acquire_slot();
  void push_entry(Time at, uint64_t seq, uint32_t slot, uint32_t gen);
  void drop_stale_head() const;
  bool entry_stale(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void pop_head() const;
  void rebuild_heap() const;

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilIndex;
  // kHeap backend: 4-ary min-heap on (at, seq) — shallower and more
  // cache-friendly than the binary std::push_heap/pop_heap it replaces,
  // with the identical pop order ((at, seq) is a strict total order, so
  // every correct heap agrees on it). Entries for cancelled/rescheduled
  // events go stale in place and are dropped lazily; live_ counts the
  // real pending events so size() and empty() stay exact.
  mutable std::vector<HeapEntry> heap_;
  // kWheel backend (mutable: peeking may cascade overflow slots).
  mutable TimingWheel wheel_;
  SchedulerBackend backend_ = kDefaultSchedulerBackend;
  std::size_t live_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace prr::sim
