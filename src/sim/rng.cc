#include "sim/rng.h"

#include <cmath>

namespace prr::sim {

namespace {
// SplitMix64: mixes (seed, stream) into a fresh engine seed.
uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

Rng Rng::fork(uint64_t stream) const {
  return Rng(splitmix64(seed_ ^ splitmix64(stream)));
}

uint64_t Rng::uniform_int(uint64_t lo, uint64_t hi) {
  return std::uniform_int_distribution<uint64_t>(lo, hi)(engine());
}

double Rng::exponential(double mean) {
  // std::exponential_distribution(1.0 / mean) verbatim: the library
  // divides by the (rounded) lambda rather than multiplying by the mean,
  // and the replica must round identically.
  const double lambda = 1.0 / mean;
  return -std::log(1.0 - canonical()) / lambda;
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine());
}

double Rng::lognormal_with_mean(double mean, double sigma) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - s^2/2.
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return lognormal(mu, sigma);
}

int Rng::geometric(double mean) {
  if (mean <= 1.0) return 1;
  // Support {1, 2, ...} with E = mean: success prob p = 1/mean.
  const double p = 1.0 / mean;
  return 1 + std::geometric_distribution<int>(p)(engine());
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine());
}

double Rng::pareto(double scale, double shape) {
  const double u = uniform();
  return scale / std::pow(1.0 - u, 1.0 / shape);
}

}  // namespace prr::sim
