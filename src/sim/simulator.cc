#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace prr::sim {

EventId Simulator::schedule_in(Time delay, EventCallback fn) {
  if (delay < Time::zero()) delay = Time::zero();
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventCallback fn) {
  if (at < now_) at = now_;
  return queue_.schedule(at, std::move(fn));
}

EventId Simulator::reschedule_in(Time delay, EventId id) {
  if (delay < Time::zero()) delay = Time::zero();
  return queue_.reschedule(id, now_ + delay);
}

Time Simulator::run(Time deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline && !deadline.is_infinite()) now_ = deadline;
  return now_;
}

void Simulator::reset() {
  now_ = Time::zero();
  deadline_ = Time::infinite();
  queue_.clear();
  events_processed_ = 0;
  slice_profiler_ = nullptr;
  // Deferred rearms belong to Timers of the torn-down connection; their
  // queue entries are gone with clear() and their ids are stale.
  for (Timer* t : lazy_timers_) t->lazy_ = false;
  lazy_timers_.clear();
  lazy_barrier_ = Time::infinite();
}

bool Simulator::step(Time deadline) {
  Time next = queue_.next_time();
  // Materialize deferred timer rearms before anything at/after the
  // barrier could fire (including the case of an otherwise-empty queue:
  // a deferred rearm IS pending work).
  if (!lazy_timers_.empty() && next >= lazy_barrier_) {
    flush_lazy();
    next = queue_.next_time();
  }
  if (next.is_infinite() || next > deadline) return false;
  // Advance the clock before dispatching so callbacks see now() == their
  // scheduled time (nested schedule_in must be relative to it).
  now_ = next;
  deadline_ = deadline;
  if (slice_profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    queue_.run_next();
    const auto t1 = std::chrono::steady_clock::now();
    slice_profiler_(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  } else {
    queue_.run_next();
  }
  ++events_processed_;
  return true;
}

void Simulator::register_lazy(Timer* t) { lazy_timers_.push_back(t); }

void Simulator::deregister_lazy(Timer* t) {
  auto it = std::find(lazy_timers_.begin(), lazy_timers_.end(), t);
  if (it != lazy_timers_.end()) lazy_timers_.erase(it);
  if (lazy_timers_.empty()) lazy_barrier_ = Time::infinite();
  // A non-empty list keeps the old (possibly too-early) barrier: an
  // early flush is always safe, a late one never happens.
}

void Simulator::flush_lazy() {
  for (Timer* t : lazy_timers_) t->flush_deferred();
  lazy_timers_.clear();
  lazy_barrier_ = Time::infinite();
}

void Timer::start(Time delay) {
  expiry_ = sim_->now() + delay;
  if (trace_) trace_(kOpSchedule, expiry_);
  if (lazy_) {
    // A deferred rearm is superseded before it materialized. Per-event
    // mode would have consumed one seq per start; the deferred one was
    // already drawn, so draw the eager one fresh and materialize now.
    lazy_ = false;
    sim_->deregister_lazy(this);
  }
  if (id_ != kInvalidEventId) {
    // Rearm in place: the armed event keeps its slot and callback.
    id_ = sim_->reschedule_in(delay, id_);
    if (id_ != kInvalidEventId) {
      armed_at_ = expiry_;
      return;
    }
  }
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEventId;
    expiry_ = Time::infinite();
    if (trace_) trace_(kOpFire, sim_->now());
    on_expire_();
  });
  armed_at_ = expiry_;
}

void Timer::start_coalesced(Time delay) {
  if (!sim_->batch_delivery()) {
    start(delay);
    return;
  }
  expiry_ = sim_->now() + delay;
  if (trace_) trace_(kOpSchedule, expiry_);
  // Draw the seq at exactly the point per-event mode would have pushed,
  // then defer the queue update. The barrier covers both the old armed
  // entry (it must not fire while superseded) and the new expiry (the
  // materialized entry must exist before its own fire time).
  pending_seq_ = sim_->take_seq();
  if (!lazy_) {
    lazy_ = true;
    sim_->register_lazy(this);
  }
  Time barrier = expiry_;
  if (id_ != kInvalidEventId && armed_at_ < barrier) barrier = armed_at_;
  sim_->note_lazy_barrier(barrier);
}

void Timer::flush_deferred() {
  lazy_ = false;
  if (id_ != kInvalidEventId) {
    id_ = sim_->reschedule_at_with_seq(id_, expiry_, pending_seq_);
    if (id_ != kInvalidEventId) {
      armed_at_ = expiry_;
      return;
    }
  }
  id_ = sim_->schedule_at_with_seq(expiry_, pending_seq_, [this] {
    id_ = kInvalidEventId;
    expiry_ = Time::infinite();
    if (trace_) trace_(kOpFire, sim_->now());
    on_expire_();
  });
  armed_at_ = expiry_;
}

void Timer::stop() {
  const bool was_pending = pending();
  if (lazy_) {
    lazy_ = false;
    sim_->deregister_lazy(this);
  }
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
  if (was_pending) {
    if (trace_) trace_(kOpCancel, expiry_);
    expiry_ = Time::infinite();
  }
}

}  // namespace prr::sim
