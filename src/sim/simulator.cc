#include "sim/simulator.h"

#include <chrono>
#include <utility>

namespace prr::sim {

EventId Simulator::schedule_in(Time delay, EventCallback fn) {
  if (delay < Time::zero()) delay = Time::zero();
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventCallback fn) {
  if (at < now_) at = now_;
  return queue_.schedule(at, std::move(fn));
}

EventId Simulator::reschedule_in(Time delay, EventId id) {
  if (delay < Time::zero()) delay = Time::zero();
  return queue_.reschedule(id, now_ + delay);
}

Time Simulator::run(Time deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline && !deadline.is_infinite()) now_ = deadline;
  return now_;
}

void Simulator::reset() {
  now_ = Time::zero();
  queue_.clear();
  events_processed_ = 0;
  slice_profiler_ = nullptr;
}

bool Simulator::step(Time deadline) {
  if (queue_.empty()) return false;
  const Time next = queue_.next_time();
  if (next > deadline) return false;
  // Advance the clock before dispatching so callbacks see now() == their
  // scheduled time (nested schedule_in must be relative to it).
  now_ = next;
  if (slice_profiler_) {
    const auto t0 = std::chrono::steady_clock::now();
    queue_.run_next();
    const auto t1 = std::chrono::steady_clock::now();
    slice_profiler_(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  } else {
    queue_.run_next();
  }
  ++events_processed_;
  return true;
}

void Timer::start(Time delay) {
  expiry_ = sim_->now() + delay;
  if (trace_) trace_(kOpSchedule, expiry_);
  if (id_ != kInvalidEventId) {
    // Rearm in place: the armed event keeps its slot and callback.
    id_ = sim_->reschedule_in(delay, id_);
    if (id_ != kInvalidEventId) return;
  }
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEventId;
    expiry_ = Time::infinite();
    if (trace_) trace_(kOpFire, sim_->now());
    on_expire_();
  });
}

void Timer::stop() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    if (trace_) trace_(kOpCancel, expiry_);
    id_ = kInvalidEventId;
    expiry_ = Time::infinite();
  }
}

}  // namespace prr::sim
