#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace prr::sim {

namespace {

// Min-heap on (at, seq): std::push_heap builds a max-heap under the
// comparator, so "greater" ordering keeps the earliest entry on top.
constexpr auto later = [](const auto& a, const auto& b) {
  if (a.at != b.at) return a.at > b.at;
  return a.seq > b.seq;
};

}  // namespace

EventQueue::Slot* EventQueue::live_slot(EventId id) {
  const uint32_t index = id_index(id);
  if (index >= slots_.size()) return nullptr;
  Slot& s = slots_[index];
  if (!s.live || s.gen != id_gen(id)) return nullptr;
  return &s;
}

uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilIndex) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  const uint32_t index = static_cast<uint32_t>(slots_.size());
  slots_.emplace_back();
  return index;
}

void EventQueue::push_entry(Time at, uint32_t slot, uint32_t gen) {
  // Reschedule-heavy patterns (a timer re-armed on every ACK) leave
  // stale entries that are only dropped lazily when their old time is
  // reached. If they ever dominate, rebuild the heap from the live
  // entries in place: pop order is the strict total order (at, seq), so
  // compaction cannot change what fires when.
  if (heap_.size() >= 64 && heap_.size() > 4 * live_) {
    std::erase_if(heap_, [this](const HeapEntry& e) {
      return entry_stale(e);
    });
    std::make_heap(heap_.begin(), heap_.end(), later);
  }
  heap_.push_back(HeapEntry{at, next_seq_++, slot, gen});
  std::push_heap(heap_.begin(), heap_.end(),
                 later);
}

EventId EventQueue::schedule(Time at, EventCallback fn) {
  const uint32_t index = acquire_slot();
  Slot& s = slots_[index];
  s.fn = std::move(fn);
  s.live = true;
  push_entry(at, index, s.gen);
  ++live_;
  return make_id(s.gen, index);
}

EventId EventQueue::reschedule(EventId id, Time at) {
  Slot* s = live_slot(id);
  if (s == nullptr) return kInvalidEventId;
  // Re-sequencing under a fresh generation makes the old heap entry
  // stale in place; the callback and the slot are untouched.
  bump_gen(*s);
  push_entry(at, id_index(id), s->gen);
  return make_id(s->gen, id_index(id));
}

void EventQueue::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return;  // fired/cancelled/never-issued: true no-op
  s->fn.reset();  // release captures now, not at lazy heap pop
  s->live = false;
  bump_gen(*s);
  s->next_free = free_head_;
  free_head_ = id_index(id);
  --live_;
  // With nothing pending, every remaining heap entry is stale — drop
  // them all now (capacity is kept) rather than waiting for lazy pops
  // that may never come.
  if (live_ == 0) heap_.clear();
}

void EventQueue::drop_stale_head() const {
  while (!heap_.empty() && entry_stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  later);
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_stale_head();
  return heap_.empty() ? Time::infinite() : heap_.front().at;
}

Time EventQueue::run_next() {
  drop_stale_head();
  assert(!heap_.empty());
  const HeapEntry head = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(),
                later);
  heap_.pop_back();

  Slot& s = slots_[head.slot];
  // Move the callback out before releasing the slot: the callback may
  // schedule new events, which can recycle this slot or grow slots_.
  EventCallback fn = std::move(s.fn);
  s.live = false;
  bump_gen(s);
  s.next_free = free_head_;
  free_head_ = head.slot;
  --live_;
  if (live_ == 0) heap_.clear();

  fn();
  return head.at;
}

}  // namespace prr::sim
