#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace prr::sim {

namespace {

constexpr auto earlier = [](const auto& a, const auto& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
};

}  // namespace

void EventQueue::sift_up(std::size_t i) const {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = i * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::pop_head() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::rebuild_heap() const {
  if (heap_.size() < 2) return;
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    sift_down(i);
  }
}

EventQueue::Slot* EventQueue::live_slot(EventId id) {
  const uint32_t index = id_index(id);
  if (index >= slots_.size()) return nullptr;
  Slot& s = slots_[index];
  if (!s.live || s.gen != id_gen(id)) return nullptr;
  return &s;
}

uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNilIndex) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  const uint32_t index = static_cast<uint32_t>(slots_.size());
  slots_.emplace_back();
  return index;
}

void EventQueue::push_entry(Time at, uint64_t seq, uint32_t slot,
                            uint32_t gen) {
  if (backend_ == SchedulerBackend::kWheel) {
    // The wheel keeps one intrusive node per slot index: a reschedule
    // unlinks the old position here (O(1)); a fresh schedule finds the
    // node already detached and this is a cheap no-op.
    wheel_.remove_if_linked(slot);
    wheel_.insert(slot, at.ns(), seq);
    return;
  }
  (void)gen;
  // Reschedule-heavy patterns (a timer re-armed on every ACK) leave
  // stale entries that are only dropped lazily when their old time is
  // reached. If they ever dominate, rebuild the heap from the live
  // entries in place: pop order is the strict total order (at, seq), so
  // compaction cannot change what fires when.
  if (heap_.size() >= 64 && heap_.size() > 4 * live_) {
    std::erase_if(heap_, [this](const HeapEntry& e) {
      return entry_stale(e);
    });
    rebuild_heap();
  }
  heap_.push_back(HeapEntry{at, seq, slot, gen});
  sift_up(heap_.size() - 1);
}

void EventQueue::set_backend(SchedulerBackend b) {
  assert(live_ == 0 && "backend switch requires an empty queue");
  if (b == backend_) return;
  heap_.clear();
  wheel_.clear();
  backend_ = b;
}

EventId EventQueue::schedule(Time at, EventCallback fn) {
  return schedule_with_seq(at, next_seq_++, std::move(fn));
}

EventId EventQueue::schedule_with_seq(Time at, uint64_t seq,
                                      EventCallback fn) {
  const uint32_t index = acquire_slot();
  Slot& s = slots_[index];
  s.fn = std::move(fn);
  s.live = true;
  push_entry(at, seq, index, s.gen);
  ++live_;
  return make_id(s.gen, index);
}

EventId EventQueue::reschedule(EventId id, Time at) {
  Slot* s = live_slot(id);
  if (s == nullptr) return kInvalidEventId;
  // Re-sequencing under a fresh generation makes the old heap entry
  // stale in place (the wheel relinks its node instead); the callback
  // and the slot are untouched.
  bump_gen(*s);
  push_entry(at, next_seq_++, id_index(id), s->gen);
  return make_id(s->gen, id_index(id));
}

EventId EventQueue::reschedule_with_seq(EventId id, Time at, uint64_t seq) {
  Slot* s = live_slot(id);
  if (s == nullptr) return kInvalidEventId;
  bump_gen(*s);
  push_entry(at, seq, id_index(id), s->gen);
  return make_id(s->gen, id_index(id));
}

void EventQueue::cancel(EventId id) {
  Slot* s = live_slot(id);
  if (s == nullptr) return;  // fired/cancelled/never-issued: true no-op
  if (backend_ == SchedulerBackend::kWheel) {
    wheel_.remove_if_linked(id_index(id));
  }
  s->fn.reset();  // release captures now, not at lazy heap pop
  s->live = false;
  bump_gen(*s);
  s->next_free = free_head_;
  free_head_ = id_index(id);
  --live_;
  // With nothing pending, every remaining heap entry is stale — drop
  // them all now (capacity is kept) rather than waiting for lazy pops
  // that may never come. The wheel unlinked eagerly, so it is already
  // structurally empty.
  if (live_ == 0) heap_.clear();
}

void EventQueue::clear() {
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.live) continue;
    s.fn.reset();
    s.live = false;
    bump_gen(s);
    s.next_free = free_head_;
    free_head_ = i;
  }
  heap_.clear();
  wheel_.clear();
  live_ = 0;
  next_seq_ = 1;
}

void EventQueue::drop_stale_head() const {
  while (!heap_.empty() && entry_stale(heap_.front())) {
    pop_head();
  }
}

Time EventQueue::next_time() const {
  if (live_ == 0) return Time::infinite();
  if (backend_ == SchedulerBackend::kWheel) {
    const TimingWheel::MinRef* m = wheel_.find_min();
    assert(m != nullptr);
    return Time::nanoseconds(m->at);
  }
  drop_stale_head();
  return heap_.empty() ? Time::infinite() : heap_.front().at;
}

bool EventQueue::next_is_after(Time at, uint64_t seq) const {
  if (live_ == 0) return true;
  if (backend_ == SchedulerBackend::kWheel) {
    const TimingWheel::MinRef* m = wheel_.find_min();
    assert(m != nullptr);
    if (Time::nanoseconds(m->at) != at) return Time::nanoseconds(m->at) > at;
    return m->seq > seq;
  }
  drop_stale_head();
  if (heap_.empty()) return true;
  const HeapEntry& head = heap_.front();
  if (head.at != at) return head.at > at;
  return head.seq > seq;
}

Time EventQueue::run_next() {
  Time at;
  uint32_t slot;
  if (backend_ == SchedulerBackend::kWheel) {
    const TimingWheel::MinRef* m = wheel_.find_min();
    assert(m != nullptr);
    at = Time::nanoseconds(m->at);
    slot = m->idx;
    wheel_.pop_found();
  } else {
    drop_stale_head();
    assert(!heap_.empty());
    const HeapEntry head = heap_.front();
    pop_head();
    at = head.at;
    slot = head.slot;
  }

  Slot& s = slots_[slot];
  // Move the callback out before releasing the slot: the callback may
  // schedule new events, which can recycle this slot or grow slots_.
  EventCallback fn = std::move(s.fn);
  s.live = false;
  bump_gen(s);
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  if (live_ == 0) heap_.clear();  // wheel already structurally empty

  fn();
  return at;
}

}  // namespace prr::sim
