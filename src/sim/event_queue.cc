#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace prr::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  pending_.erase(id);  // no-op for fired/cancelled/never-issued ids
  // With nothing pending, any remaining heap entries are dead weight from
  // cancellations — release them now rather than waiting for lazy pops
  // that may never come.
  if (pending_.empty() && !heap_.empty()) heap_ = {};
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  return heap_.empty() ? Time::infinite() : heap_.top().at;
}

Time EventQueue::run_next() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callable instead (events are small closures).
  Entry e = heap_.top();
  heap_.pop();
  pending_.erase(e.id);
  e.fn();
  return e.at;
}

}  // namespace prr::sim
