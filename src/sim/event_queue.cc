#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace prr::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  cancelled_.insert(id);
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_head();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  return heap_.empty() ? Time::infinite() : heap_.top().at;
}

Time EventQueue::run_next() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callable instead (events are small closures).
  Entry e = heap_.top();
  heap_.pop();
  e.fn();
  return e.at;
}

}  // namespace prr::sim
