// Hierarchical timing wheel: the O(1) ordering backend behind EventQueue
// (DESIGN.md §12). Eleven levels of 64 slots each cover the full int64
// nanosecond range at 1 ns tick granularity; an entry lives at the level
// of the highest 6-bit digit in which its expiry differs from the wheel
// cursor, so the far future lands in overflow levels whose slots cascade
// down one level at a time as the cursor reaches them.
//
// Entries are intrusive doubly-linked list nodes in a pool indexed by
// the EventQueue slot index, so insert, cancel and reschedule are O(1)
// unlink/link operations with zero allocation once the pool is warm —
// the wheel never holds stale entries (unlike the heap backend's lazy
// drops), and the steady-state zero-allocation invariant (DESIGN.md §7)
// holds for reschedule-heavy timer traffic that would make slot vectors
// churn.
//
// Pop order is the strict total order (time, seq) — byte-identical to
// the 4-ary heap backend, which every differential test in
// tests/test_timing_wheel.cc asserts. Three structural invariants make
// that exact:
//   1. A level-0 slot holds exactly one timestamp (tick = 1 ns): the
//      cursor's 64 ns window only changes via a cascade, which requires
//      level 0 to be empty first.
//   2. Every slot list is kept in ascending seq order, so the level-0
//      minimum is the list head. Fresh schedules draw globally
//      increasing seqs and append at the tail in O(1); batch delivery
//      materializes PRE-DRAWN seqs late (Timer::start_coalesced,
//      Link::drain_train), which can legally arrive out of seq order
//      and walk backwards to their sorted position. A cascade re-homes
//      a seq-sorted source list in order, so each destination receives
//      an ascending subsequence — tail appends.
//   3. All wheel entries have time >= cursor_. The one exception the
//      simulator can produce — scheduling below a cursor that peeking
//      advanced past — is held in a small (time, seq)-sorted `early_`
//      list that is checked first (its times precede everything in the
//      wheel proper).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace prr::sim {

class TimingWheel {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 64
  static constexpr int kLevels = 11;  // 11 * 6 = 66 bits >= int64 range
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  // The minimum live entry, as located by find_min().
  struct MinRef {
    int64_t at;
    uint64_t seq;
    uint32_t idx;  // EventQueue slot index
  };

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  // Links entry `idx` (the EventQueue slot index) at time/seq. The node
  // pool grows with the EventQueue slot pool and is recycled with it,
  // so a warm pool never allocates here.
  void insert(uint32_t idx, int64_t at, uint64_t seq) {
    ensure_storage(idx);
    Node& n = nodes_[idx];
    assert(n.home == kHomeNone && "slot already linked");
    n.at = at;
    n.seq = seq;
    ++count_;
    // Keep the cached minimum hot: a new entry below it simply becomes
    // the minimum — no rescan needed on the next peek.
    if (min_valid_ &&
        (at < min_.at || (at == min_.at && seq < min_.seq))) {
      min_ = MinRef{at, seq, idx};
    }
    if (at < cursor_) {
      link_early(idx);
      return;
    }
    link_into_wheel(idx);
  }

  // O(1) true removal (cancel / reschedule): unlink the node wherever
  // it lives. No-op if the slot is not linked.
  void remove_if_linked(uint32_t idx) {
    if (idx >= nodes_.size() || nodes_[idx].home == kHomeNone) return;
    if (min_valid_ && idx == min_.idx) min_valid_ = false;
    unlink(idx);
  }

  // Locates the minimum entry by (time, seq), cascading overflow slots
  // as needed. Returns nullptr when empty. The result is cached, so
  // repeated peeks (batch delivery probes the head once per inline
  // dispatch) cost two branches; the cache is maintained across inserts
  // and invalidated only when the minimum itself is removed. The
  // reference stays valid until the next mutation; pop_found() removes
  // exactly this entry.
  const MinRef* find_min() {
    if (count_ == 0) return nullptr;
    if (min_valid_) return &min_;
    // Early list first: its times all precede cursor_, hence everything
    // in the wheel proper, and it is (time, seq)-sorted.
    if (early_head_ != kNil) {
      const Node& n = nodes_[early_head_];
      min_ = MinRef{n.at, n.seq, early_head_};
      min_valid_ = true;
      return &min_;
    }
    for (;;) {
      assert(level_occ_ != 0);
      const int level = std::countr_zero(level_occ_);
      const int s = std::countr_zero(occ_[level]);
      if (level == 0) {
        // Single-timestamp slot in ascending seq order: head is min.
        const uint32_t h = heads_[static_cast<std::size_t>(s)];
        const Node& n = nodes_[h];
        min_ = MinRef{n.at, n.seq, h};
        min_valid_ = true;
        return &min_;
      }
      cascade(level, s);
    }
  }

  // Removes the entry find_min() just returned and advances the cursor
  // to its time. Precondition: find_min() returned non-null and no
  // mutation happened in between.
  void pop_found() {
    const Node& n = nodes_[min_.idx];
    if (n.home != kHomeEarly) cursor_ = n.at;
    min_valid_ = false;
    unlink(min_.idx);
    // Re-prime the cache when the new minimum is already locatable
    // without a cascade: the early list head precedes everything in the
    // wheel, and failing that the lowest occupied level-0 slot is the
    // minimum (all level-0 entries sit in the cursor's window at or
    // after it, so slot index order is time order, and each slot list
    // is seq-sorted). Anything else needs a cascade — leave it to the
    // next find_min().
    if (early_head_ != kNil) {
      const Node& e = nodes_[early_head_];
      min_ = MinRef{e.at, e.seq, early_head_};
      min_valid_ = true;
    } else if (occ_[0] != 0) {
      const int s = std::countr_zero(occ_[0]);
      const uint32_t h = heads_[static_cast<std::size_t>(s)];
      const Node& m = nodes_[h];
      min_ = MinRef{m.at, m.seq, h};
      min_valid_ = true;
    }
  }

  // Drops every entry and rewinds the cursor to zero, keeping the node
  // pool (pool-recycle friendly, mirroring EventQueue::clear()).
  // Rewinding is safe: the cursor only picks which level an insert
  // homes to, never the pop order.
  void clear() {
    while (level_occ_ != 0) {
      const int level = std::countr_zero(level_occ_);
      while (occ_[level] != 0) {
        const int s = std::countr_zero(occ_[level]);
        unlink_all(static_cast<uint16_t>(level * kSlotsPerLevel + s));
        clear_bit(level, s);
      }
    }
    uint32_t it = early_head_;
    while (it != kNil) {
      const uint32_t next = nodes_[it].next;
      detach(nodes_[it]);
      it = next;
    }
    early_head_ = early_tail_ = kNil;
    count_ = 0;
    cursor_ = 0;
    min_valid_ = false;
  }

 private:
  // `home` values: a wheel list index (level * 64 + slot), or one of:
  static constexpr uint16_t kHomeNone = 0xFFFF;
  static constexpr uint16_t kHomeEarly = 0xFFFE;

  struct Node {
    int64_t at = 0;
    uint64_t seq = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    uint16_t home = kHomeNone;
  };

  void ensure_storage(uint32_t idx) {
    if (heads_.empty()) {
      heads_.assign(kLevels * kSlotsPerLevel, kNil);
      tails_.assign(kLevels * kSlotsPerLevel, kNil);
    }
    if (idx >= nodes_.size()) nodes_.resize(idx + 1);
  }

  void link_into_wheel(uint32_t idx) {
    const Node& n = nodes_[idx];
    const uint64_t diff =
        static_cast<uint64_t>(n.at) ^ static_cast<uint64_t>(cursor_);
    const int level =
        diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
    const int s =
        static_cast<int>(n.at >> (kLevelBits * level)) & (kSlotsPerLevel - 1);
    link_seq_sorted(static_cast<uint16_t>(level * kSlotsPerLevel + s), idx);
    occ_[level] |= uint64_t{1} << s;
    level_occ_ |= uint16_t(1u << level);
  }

  // Links `idx` into wheel list `list` at its seq-sorted position.
  // Fresh schedules carry the highest seq drawn so far, so the tail
  // append is the common case; late-materialized pre-drawn seqs walk
  // backwards (they were drawn recently, so the walk is short).
  void link_seq_sorted(uint16_t list, uint32_t idx) {
    Node& n = nodes_[idx];
    n.home = list;
    uint32_t after = tails_[list];
    while (after != kNil && nodes_[after].seq > n.seq) {
      after = nodes_[after].prev;
    }
    link_after(heads_[list], tails_[list], after, idx);
  }

  // Early list: times differ, so order by (time, seq).
  void link_early(uint32_t idx) {
    Node& n = nodes_[idx];
    n.home = kHomeEarly;
    uint32_t after = early_tail_;
    while (after != kNil) {
      const Node& p = nodes_[after];
      if (p.at < n.at || (p.at == n.at && p.seq < n.seq)) break;
      after = p.prev;
    }
    link_after(early_head_, early_tail_, after, idx);
  }

  void link_after(uint32_t& head, uint32_t& tail, uint32_t after,
                  uint32_t idx) {
    Node& n = nodes_[idx];
    n.prev = after;
    if (after == kNil) {
      n.next = head;
      head = idx;
    } else {
      n.next = nodes_[after].next;
      nodes_[after].next = idx;
    }
    if (n.next == kNil) {
      tail = idx;
    } else {
      nodes_[n.next].prev = idx;
    }
  }

  void unlink(uint32_t idx) {
    Node& n = nodes_[idx];
    uint32_t* head;
    uint32_t* tail;
    if (n.home == kHomeEarly) {
      head = &early_head_;
      tail = &early_tail_;
    } else {
      head = &heads_[n.home];
      tail = &tails_[n.home];
    }
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      *head = n.next;
    }
    if (n.next != kNil) {
      nodes_[n.next].prev = n.prev;
    } else {
      *tail = n.prev;
    }
    if (n.home != kHomeEarly && *head == kNil) {
      clear_bit(n.home / kSlotsPerLevel, n.home % kSlotsPerLevel);
    }
    detach(n);
    --count_;
  }

  void detach(Node& n) {
    n.home = kHomeNone;
    n.prev = kNil;
    n.next = kNil;
  }

  // Re-homes every entry of overflow slot (level, s) one level down,
  // advancing the cursor to the slot's window start first (everything
  // below it is empty). Walking the seq-sorted source in order keeps
  // every destination list seq-sorted via tail appends.
  void cascade(int level, int s) {
    const int shift = kLevelBits * level;
    const int64_t digit_mask =
        ~((static_cast<int64_t>(1) << (shift + kLevelBits)) - 1);
    const int64_t window =
        (cursor_ & digit_mask) | (static_cast<int64_t>(s) << shift);
    if (window > cursor_) cursor_ = window;
    const auto list = static_cast<uint16_t>(level * kSlotsPerLevel + s);
    uint32_t it = heads_[list];
    heads_[list] = kNil;
    tails_[list] = kNil;
    clear_bit(level, s);
    while (it != kNil) {
      const uint32_t next = nodes_[it].next;
      Node& n = nodes_[it];
      n.prev = kNil;
      n.next = kNil;
      assert(n.at >= cursor_);
      link_into_wheel(it);  // strictly lower level: digit at `level` is 0
      it = next;
    }
  }

  void unlink_all(uint16_t list) {
    uint32_t it = heads_[list];
    while (it != kNil) {
      const uint32_t next = nodes_[it].next;
      detach(nodes_[it]);
      it = next;
    }
    heads_[list] = kNil;
    tails_[list] = kNil;
  }

  void clear_bit(int level, int s) {
    occ_[level] &= ~(uint64_t{1} << s);
    if (occ_[level] == 0) level_occ_ &= uint16_t(~(1u << level));
  }

  // Node pool indexed by EventQueue slot index; grows with the slot
  // pool during warmup, then never again.
  std::vector<Node> nodes_;
  // heads_/tails_[level * kSlotsPerLevel + slot], allocated once on
  // first insert so heap-backend queues pay no wheel memory.
  std::vector<uint32_t> heads_;
  std::vector<uint32_t> tails_;
  uint64_t occ_[kLevels] = {};
  uint16_t level_occ_ = 0;  // bit per level with any occupied slot
  int64_t cursor_ = 0;
  uint32_t early_head_ = kNil;
  uint32_t early_tail_ = kNil;
  std::size_t count_ = 0;
  bool min_valid_ = false;  // cached-minimum flag for min_
  MinRef min_{};  // cached minimum / locator for the last find_min()
};

}  // namespace prr::sim
