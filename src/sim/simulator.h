// The simulator: owns the clock and event queue, provides scheduling in
// relative or absolute time plus cancellable Timer handles. Callbacks are
// EventCallback (small-buffer inline storage), so scheduling a typical
// closure allocates nothing; Timer rearms by rescheduling its event slot
// in place instead of cancelling and reallocating.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace prr::sim {

class Simulator {
 public:
  Time now() const { return now_; }

  // Schedules fn at now() + delay (delay clamped to >= 0).
  EventId schedule_in(Time delay, EventCallback fn);
  // Schedules fn at absolute time `at` (clamped to >= now()).
  EventId schedule_at(Time at, EventCallback fn);
  // Moves a pending event to now() + delay, keeping its callback.
  // Returns the new id, or kInvalidEventId if `id` was stale.
  EventId reschedule_in(Time delay, EventId id);
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue drains or `deadline` passes. Returns the
  // final clock value.
  Time run(Time deadline = Time::infinite());

  // Runs a single event if one exists before deadline; returns false if
  // the queue is empty or the next event is after deadline.
  bool step(Time deadline = Time::infinite());

  bool idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return events_processed_; }

  // Returns the simulator to its freshly-constructed state (clock at
  // zero, no pending events, no profiler tap) while keeping the event
  // queue's slot/heap capacity. EventIds issued before reset() are
  // stale afterwards and safe to cancel/reschedule (no-ops), which is
  // what lets pooled Timers survive across connections.
  void reset();

  // Self-profiling tap (obs::SelfProfiler): when set, step() wall-clock
  // times each event callback and reports the duration in nanoseconds.
  // Unset (the default), step() pays one branch and takes no clock
  // readings, so simulation behavior and performance are untouched.
  void set_slice_profiler(std::function<void(int64_t ns)> profiler) {
    slice_profiler_ = std::move(profiler);
  }

 private:
  Time now_ = Time::zero();
  EventQueue queue_;
  uint64_t events_processed_ = 0;
  std::function<void(int64_t)> slice_profiler_;
};

// RAII-free cancellable timer bound to a Simulator. Rescheduling cancels
// any pending expiry. Used for RTO, delayed-ACK, ER-delay timers. A
// restart while pending reuses the armed event's slot and callback
// (EventQueue::reschedule), so the per-ACK rearm that RTO management
// performs allocates nothing and constructs nothing.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer to fire `delay` from now.
  void start(Time delay);
  void stop();
  bool pending() const { return id_ != kInvalidEventId; }
  Time expiry() const { return expiry_; }

  // Trace tap (flight recorder): called with (op, expiry) on every arm
  // (kOpSchedule, expiry = when it will fire), expiry (kOpFire), and
  // explicit cancellation of a pending timer (kOpCancel). Unset by
  // default; the armed-event fast path then pays nothing.
  static constexpr uint8_t kOpSchedule = 0;
  static constexpr uint8_t kOpFire = 1;
  static constexpr uint8_t kOpCancel = 2;
  void set_trace(std::function<void(uint8_t op, Time expiry)> trace) {
    trace_ = std::move(trace);
  }

 private:
  Simulator* sim_;
  std::function<void()> on_expire_;
  std::function<void(uint8_t, Time)> trace_;
  EventId id_ = kInvalidEventId;
  Time expiry_ = Time::infinite();
};

}  // namespace prr::sim
