// The simulator: owns the clock and event queue, provides scheduling in
// relative or absolute time plus cancellable Timer handles. Callbacks are
// EventCallback (small-buffer inline storage), so scheduling a typical
// closure allocates nothing; Timer rearms by rescheduling its event slot
// in place instead of cancelling and reallocating.
//
// Batch delivery (DESIGN.md §12): with set_batch_delivery(true), trusted
// sources (net::Link ACK trains, Timer coalesced rearms) may dispatch
// work inline under pre-drawn sequence numbers instead of going through
// the queue, provided can_dispatch_inline() proves no queued event would
// have fired first. The observable schedule — clock values, callback
// order, seq consumption — is byte-identical to per-event mode; only the
// number of priority-queue operations changes.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace prr::sim {

class Timer;

class Simulator {
 public:
  Time now() const { return now_; }

  // Schedules fn at now() + delay (delay clamped to >= 0).
  EventId schedule_in(Time delay, EventCallback fn);
  // Schedules fn at absolute time `at` (clamped to >= now()).
  EventId schedule_at(Time at, EventCallback fn);
  // Moves a pending event to now() + delay, keeping its callback.
  // Returns the new id, or kInvalidEventId if `id` was stale.
  EventId reschedule_in(Time delay, EventId id);
  void cancel(EventId id) { queue_.cancel(id); }

  // ---- batch delivery (net::Link trains, Timer coalesced rearms) ----
  bool batch_delivery() const { return batch_delivery_; }
  // Set before the run (idle simulator); per-event and batch mode are
  // observation-equivalent, so this is a performance toggle only.
  void set_batch_delivery(bool on) { batch_delivery_ = on; }
  // Ordering backend for the event queue; only while no events pending.
  void set_scheduler(SchedulerBackend b) { queue_.set_backend(b); }
  SchedulerBackend scheduler() const { return queue_.backend(); }

  // Draws the next FIFO seq without scheduling (see EventQueue::take_seq).
  uint64_t take_seq() { return queue_.take_seq(); }
  // Scheduling under a pre-drawn seq, at an absolute time.
  EventId schedule_at_with_seq(Time at, uint64_t seq, EventCallback fn) {
    if (at < now_) at = now_;
    return queue_.schedule_with_seq(at, seq, std::move(fn));
  }
  EventId reschedule_at_with_seq(EventId id, Time at, uint64_t seq) {
    if (at < now_) at = now_;
    return queue_.reschedule_with_seq(id, at, seq);
  }
  // True when a batch source may dispatch (at, seq) inline right now:
  // nothing queued (after materializing any deferred timer rearms that
  // could land at or before `at`) would have fired first, and `at` does
  // not overrun the deadline of the step() in progress.
  bool can_dispatch_inline(Time at, uint64_t seq) {
    if (at > deadline_) return false;
    if (!lazy_timers_.empty() && at >= lazy_barrier_) flush_lazy();
    return queue_.next_is_after(at, seq);
  }
  // Advances the clock to a batched sub-event's own timestamp before its
  // inline dispatch, keeping events_processed() identical to per-event
  // mode (each batched delivery counts as one event).
  void advance_to(Time t) {
    assert(t >= now_);
    now_ = t;
    ++events_processed_;
  }

  // Runs events until the queue drains or `deadline` passes. Returns the
  // final clock value.
  Time run(Time deadline = Time::infinite());

  // Runs a single event if one exists before deadline; returns false if
  // the queue is empty or the next event is after deadline.
  bool step(Time deadline = Time::infinite());

  bool idle() const { return queue_.empty() && lazy_timers_.empty(); }
  uint64_t events_processed() const { return events_processed_; }

  // Returns the simulator to its freshly-constructed state (clock at
  // zero, no pending events, no profiler tap) while keeping the event
  // queue's slot/backend capacity and the configured scheduler and
  // batch-delivery mode. EventIds issued before reset() are stale
  // afterwards and safe to cancel/reschedule (no-ops), which is what
  // lets pooled Timers survive across connections.
  void reset();

  // Self-profiling tap (obs::SelfProfiler): when set, step() wall-clock
  // times each event callback and reports the duration in nanoseconds.
  // Unset (the default), step() pays one branch and takes no clock
  // readings, so simulation behavior and performance are untouched.
  void set_slice_profiler(std::function<void(int64_t ns)> profiler) {
    slice_profiler_ = std::move(profiler);
  }

 private:
  friend class Timer;

  // Deferred (coalesced) timer rearms: registered Timers have drawn their
  // seq and recorded their new expiry but not yet touched the queue.
  // flush_lazy() materializes them; step()/can_dispatch_inline() call it
  // before anything at/after lazy_barrier_ (the earliest time at which a
  // deferred rearm could matter) can dispatch.
  void register_lazy(Timer* t);
  void deregister_lazy(Timer* t);
  void note_lazy_barrier(Time b) {
    if (b < lazy_barrier_) lazy_barrier_ = b;
  }
  void flush_lazy();

  Time now_ = Time::zero();
  Time deadline_ = Time::infinite();  // deadline of the step() in progress
  EventQueue queue_;
  uint64_t events_processed_ = 0;
  bool batch_delivery_ = false;
  std::vector<Timer*> lazy_timers_;
  Time lazy_barrier_ = Time::infinite();
  std::function<void(int64_t)> slice_profiler_;
};

// RAII-free cancellable timer bound to a Simulator. Rescheduling cancels
// any pending expiry. Used for RTO, delayed-ACK, ER-delay timers. A
// restart while pending reuses the armed event's slot and callback
// (EventQueue::reschedule), so the per-ACK rearm that RTO management
// performs allocates nothing and constructs nothing.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer to fire `delay` from now.
  void start(Time delay);
  // Like start(), but in batch-delivery mode the queue update is
  // deferred: the FIFO seq is drawn immediately (so tie-break order is
  // untouched) and the entry is materialized by Simulator::flush_lazy()
  // before anything at or after min(old expiry, new expiry) can
  // dispatch. A rearm-per-ACK pattern then costs one queue push per
  // train instead of one per ACK. Outside batch mode this is start().
  void start_coalesced(Time delay);
  void stop();
  bool pending() const { return lazy_ || id_ != kInvalidEventId; }
  Time expiry() const { return expiry_; }

  // Trace tap (flight recorder): called with (op, expiry) on every arm
  // (kOpSchedule, expiry = when it will fire), expiry (kOpFire), and
  // explicit cancellation of a pending timer (kOpCancel). Unset by
  // default; the armed-event fast path then pays nothing.
  static constexpr uint8_t kOpSchedule = 0;
  static constexpr uint8_t kOpFire = 1;
  static constexpr uint8_t kOpCancel = 2;
  void set_trace(std::function<void(uint8_t op, Time expiry)> trace) {
    trace_ = std::move(trace);
  }

 private:
  friend class Simulator;

  // Materializes a deferred rearm (registered state only; the Simulator
  // clears its registry after flushing everyone).
  void flush_deferred();

  Simulator* sim_;
  std::function<void()> on_expire_;
  std::function<void(uint8_t, Time)> trace_;
  EventId id_ = kInvalidEventId;
  Time expiry_ = Time::infinite();
  // Deferred-rearm state: valid while lazy_ (registered with sim_).
  Time armed_at_ = Time::infinite();  // time of the live queue entry
  uint64_t pending_seq_ = 0;
  bool lazy_ = false;
};

}  // namespace prr::sim
