// Deterministic random number generation for experiments. Every connection
// in an experiment arm derives its own Rng from a (run seed, stream id)
// pair so different recovery algorithms see identical sample paths
// (common random numbers), mirroring the paper's paired A/B design.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <random>

namespace prr::sim {

// Drop-in replacement for std::mt19937_64 that emits the exact same
// output stream but advances the 312-word state incrementally — one
// twist per draw — instead of regenerating the whole block at once.
// Forked per-connection streams draw a handful of values each, so the
// batch engine wastes nearly all of its state-regeneration work; this
// one does O(draws) twisting. Equivalence with the std engine is pinned
// by a unit test and by the serial digest goldens.
class Mt64 {
 public:
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  explicit Mt64(uint64_t seed) {
    x_[0] = seed;
    for (unsigned i = 1; i < kN; ++i) {
      x_[i] = 6364136223846793005ULL * (x_[i - 1] ^ (x_[i - 1] >> 62)) + i;
    }
  }

  result_type operator()() {
    // Twisting in index order with in-place updates reads exactly the
    // old/new state words the batched loop reads, so each word — and
    // therefore each tempered output — matches std::mt19937_64.
    if (pos_ == kN) pos_ = 0;
    const unsigned i = pos_++;
    unsigned i1 = i + 1;
    if (i1 == kN) i1 = 0;
    unsigned im = i + kM;
    if (im >= kN) im -= kN;
    const uint64_t y = (x_[i] & kUpperMask) | (x_[i1] & kLowerMask);
    uint64_t z = x_[im] ^ (y >> 1) ^ ((y & 1ULL) ? kMatrixA : 0ULL);
    x_[i] = z;
    z ^= (z >> 29) & 0x5555555555555555ULL;
    z ^= (z << 17) & 0x71D67FFFEDA60000ULL;
    z ^= (z << 37) & 0xFFF7EEE000000000ULL;
    z ^= z >> 43;
    return z;
  }

 private:
  static constexpr unsigned kN = 312;
  static constexpr unsigned kM = 156;
  static constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
  static constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
  static constexpr uint64_t kLowerMask = 0x000000007FFFFFFFULL;

  uint64_t x_[kN];
  unsigned pos_ = kN;  // seeded state is "exhausted": first draw twists
};

class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed) {}
  // Derives an independent sub-stream; stable across runs.
  Rng fork(uint64_t stream) const;

  uint64_t seed() const { return seed_; }

  // The three distributions on the per-segment hot path (loss, reorder
  // and ACK-impairment draws) are open-coded bit-exact replicas of the
  // libstdc++ formulas — same engine advance, same arithmetic, same
  // rounding — so they inline to a twist plus a few flops instead of a
  // distribution-object construction per draw. Equivalence with the std
  // distributions is pinned by a unit test and the serial digest goldens.
  double uniform() { return canonical(); }  // [0, 1)
  double uniform(double lo, double hi) {    // [lo, hi)
    return canonical() * (hi - lo) + lo;
  }
  uint64_t uniform_int(uint64_t lo, uint64_t hi);  // inclusive
  // Degenerate p consumes NO engine draw — the early-outs predate the
  // golden digests, so their draw-skipping is part of the frozen stream
  // behavior. For 0 < p < 1 this is bit-exact with
  // std::bernoulli_distribution on the same engine.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return canonical() < p;
  }
  double exponential(double mean);
  double lognormal(double mu, double sigma);
  // Lognormal parameterized by the distribution mean and sigma of the
  // underlying normal — convenient for "mean response size 7.5 kB" specs.
  double lognormal_with_mean(double mean, double sigma);
  int geometric(double mean);  // >= 1, mean as given
  double normal(double mean, double stddev);
  double pareto(double scale, double shape);

 private:
  // The 2.5 kB Mersenne Twister state is a pure function of seed_, so it
  // is materialized only on the first draw. Many Rngs per connection are
  // fork parents that never draw (common-random-numbers tree roots), and
  // for those this skips the O(state) seeding entirely — with draw
  // sequences unchanged for every stream that is actually sampled.
  Mt64& engine() {
    if (!engine_) engine_.emplace(seed_);
    return *engine_;
  }

  // generate_canonical<double, 53>(Mt64) verbatim: for a full-range
  // 64-bit engine it reduces to one draw rounded to double and scaled by
  // 2^-64 (an exact exponent shift, identical to the library's division
  // by 2^64), clamped below 1.0 exactly as the library clamps.
  double canonical() {
    const double ret = static_cast<double>(engine()()) * 0x1p-64;
    if (ret >= 1.0) [[unlikely]] {
      return 1.0 - std::numeric_limits<double>::epsilon() / 2.0;
    }
    return ret;
  }

  uint64_t seed_ = 0;
  std::optional<Mt64> engine_;
};

}  // namespace prr::sim
