// Deterministic random number generation for experiments. Every connection
// in an experiment arm derives its own Rng from a (run seed, stream id)
// pair so different recovery algorithms see identical sample paths
// (common random numbers), mirroring the paper's paired A/B design.
#pragma once

#include <cstdint>
#include <random>

namespace prr::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(seed) {}
  // Derives an independent sub-stream; stable across runs.
  Rng fork(uint64_t stream) const;

  uint64_t seed() const { return seed_; }

  double uniform();                         // [0, 1)
  double uniform(double lo, double hi);     // [lo, hi)
  uint64_t uniform_int(uint64_t lo, uint64_t hi);  // inclusive
  bool bernoulli(double p);
  double exponential(double mean);
  double lognormal(double mu, double sigma);
  // Lognormal parameterized by the distribution mean and sigma of the
  // underlying normal — convenient for "mean response size 7.5 kB" specs.
  double lognormal_with_mean(double mean, double sigma);
  int geometric(double mean);  // >= 1, mean as given
  double normal(double mean, double stddev);
  double pareto(double scale, double shape);

 private:
  uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace prr::sim
