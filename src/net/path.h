// Duplex path between a TCP sender and receiver: a data link (loss +
// reordering) forward and an ACK link (loss + stretch via AckMangler)
// back. The path owns the links; endpoints attach delivery callbacks.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/ack_mangler.h"
#include "net/link.h"
#include "net/segment.h"
#include "obs/flight_recorder.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace prr::net {

class Path {
 public:
  struct Config {
    Link::Config data_link;
    Link::Config ack_link;
    AckMangler::Config ack_mangler;

    // Convenience builder for symmetric paths: a bottleneck of `rate` with
    // round-trip propagation time `rtt` split evenly across directions and
    // a queue of `queue_packets`. The ACK direction is fast (ACKs are tiny
    // and rarely the bottleneck).
    static Config symmetric(util::DataRate rate, sim::Time rtt,
                            std::size_t queue_packets = 1000);
  };

  Path(sim::Simulator& sim, Config config, sim::Rng rng);

  // Pool-recycle: returns the path (both links + mangler) to a freshly-
  // constructed state for a new (config, rng) pair. The data/ACK sinks
  // installed by the owning Connection are kept — they capture the
  // Connection, whose address is stable across recycling — but the wire
  // tap and recorder are cleared like any other per-connection wiring.
  // Precondition: the owning Simulator has been reset.
  void reset(Config config, sim::Rng rng);

  // Optional wire tap: sees every data segment and every ACK at the
  // moment it enters the network (before loss/queueing). Used by the
  // pcap writer. For trace records prefer set_recorder — the recorder
  // write is a handful of stores, the tap is a std::function dispatch
  // per segment.
  std::function<void(const Segment&, bool is_ack, sim::Time at)> wire_tap;

  // Optional flight recorder: when attached, every data segment and ACK
  // entering the network writes a kWireData/kWireAck record (before the
  // wire_tap fires).
  void set_recorder(obs::FlightRecorder* recorder, uint32_t conn_id) {
    recorder_ = recorder;
    trace_conn_id_ = conn_id;
  }

  // Endpoint attachment. Must both be set before traffic flows.
  void set_data_sink(Link::DeliverFn fn) { deliver_data_ = std::move(fn); }
  void set_ack_sink(Link::DeliverFn fn) { deliver_ack_ = std::move(fn); }

  void send_data(Segment&& seg);
  void send_ack(Segment&& seg);

  Link& data_link() { return *data_link_; }
  Link& ack_link() { return *ack_link_; }
  AckMangler& ack_mangler() { return *ack_mangler_; }

  // Models a client that goes silent (user abandoned): all further ACK
  // delivery stops. The sender will RTO repeatedly and eventually abort.
  void kill_client() { client_dead_ = true; }
  bool client_dead() const { return client_dead_; }

  // Receiver stall (rebuffering, a descheduled client process): while
  // stalled, ACKs are held instead of forwarded. Because every ACK
  // snapshots complete receiver state, keeping only the newest held ACK
  // and releasing it when the stall ends is an exact model — the released
  // ACK acknowledges everything the suppressed ones did.
  void set_ack_stall(bool on);
  bool ack_stalled() const { return ack_stalled_; }

 private:
  sim::Simulator& sim_;
  Link::DeliverFn deliver_data_;
  Link::DeliverFn deliver_ack_;
  std::unique_ptr<Link> data_link_;
  std::unique_ptr<Link> ack_link_;
  std::unique_ptr<AckMangler> ack_mangler_;
  obs::FlightRecorder* recorder_ = nullptr;
  uint32_t trace_conn_id_ = 0;
  bool client_dead_ = false;
  bool ack_stalled_ = false;
  std::optional<Segment> stalled_ack_;
};

}  // namespace prr::net
