// Point-to-point link: serialization at a configurable rate, propagation
// delay, and a drop-tail queue bounded in packets. Loss and reordering
// models plug in at egress (after the queue), so queue overflows and
// modeled network drops are counted separately.
//
// Rate, propagation delay, queue limit, and a blackout gate are mutable
// at runtime (route changes, rebuffering links, transient dead zones —
// see net/fault_injector.h). Mutations respect in-flight segments: a
// segment whose serialization already started completes at the old rate,
// a segment already propagating keeps its old delivery time, and a queue
// shrink drops the excess from the tail as ordinary queue drops.
//
// Segments are never copied and never captured in event closures: the
// segment being serialized lives in a member, propagating segments live
// in a free-listed flight pool, and events carry only `this` plus a pool
// index — so the steady-state forwarding path performs no heap
// allocation and moves each Segment exactly once per hop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/reorder_model.h"
#include "net/segment.h"
#include "sim/simulator.h"
#include "util/ring_queue.h"
#include "util/units.h"

namespace prr::net {

struct LinkStats {
  uint64_t delivered = 0;
  uint64_t dropped_queue = 0;
  uint64_t dropped_loss_model = 0;
  uint64_t dropped_blackout = 0;
  uint64_t enqueued = 0;
  uint64_t max_queue_depth = 0;
  uint64_t ce_marked = 0;
};

class Link {
 public:
  using DeliverFn = std::function<void(Segment&&)>;

  struct Config {
    util::DataRate rate = util::DataRate::mbps(10);
    sim::Time propagation_delay = sim::Time::milliseconds(10);
    std::size_t queue_limit_packets = 1000;
    // ECN marking (RFC 3168 AQM-lite): when > 0, ECT segments arriving
    // to a queue at/above this depth are CE-marked instead of being
    // allowed to build further standing queue. 0 disables marking.
    std::size_t ecn_mark_threshold = 0;
  };

  Link(sim::Simulator& sim, Config config, DeliverFn deliver);

  // Pool-recycle: returns the link to a freshly-constructed state under a
  // new config while keeping queue/flight-pool capacity and the delivery
  // callback. Precondition: the owning Simulator has been reset (no
  // serialization/propagation events are pending). Custom loss/reorder
  // models are replaced with the defaults; the common no-model case
  // allocates nothing.
  void reset(Config config);

  void set_loss_model(std::unique_ptr<LossModel> m) {
    loss_ = std::move(m);
    models_customized_ = true;
  }
  void set_reorder_model(std::unique_ptr<ReorderModel> m) {
    reorder_ = std::move(m);
    models_customized_ = true;
  }

  // Enqueues a segment for transmission; drops it if the queue is full.
  void send(Segment&& seg);

  // ---- runtime path mutation (fault injection) ----
  // New rate applies to serializations starting after the call; the
  // segment currently on the wire finishes at the old rate.
  void set_rate(util::DataRate rate) { config_.rate = rate; }
  // New delay applies to segments entering propagation after the call;
  // segments already propagating keep their scheduled delivery times (a
  // shrinking delay can therefore reorder across the change, exactly as
  // a route change does).
  void set_propagation_delay(sim::Time delay) {
    config_.propagation_delay = delay;
  }
  // Shrinking the limit drops the excess from the tail of the queue
  // (counted as queue drops); growing it simply admits more.
  void set_queue_limit(std::size_t packets);
  // While blacked out, every segment reaching the end of serialization is
  // dropped (counted separately from loss-model drops). Segments already
  // propagating still arrive; queued segments survive a short blackout.
  void set_blackout(bool on) { blackout_ = on; }

  util::DataRate rate() const { return config_.rate; }
  sim::Time propagation_delay() const { return config_.propagation_delay; }
  std::size_t queue_limit() const { return config_.queue_limit_packets; }
  bool blackout() const { return blackout_; }

  const LinkStats& stats() const { return stats_; }
  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }

 private:
  // One propagating segment's scheduled arrival in batch-delivery mode:
  // the (time, seq) key it would have occupied in the event queue, plus
  // its flight-pool slot. The train is kept sorted by (time, seq) and
  // represented in the queue by a single drain event keyed at its front.
  struct FlightEvent {
    sim::Time at;
    uint64_t seq;
    uint32_t slot;
  };

  void begin_serialization(Segment&& seg);
  void start_transmission();
  void finish_transmission();
  void deliver_flight(uint32_t slot);
  void enqueue_flight(sim::Time at, uint64_t seq, uint32_t slot);
  void drain_train();

  sim::Simulator& sim_;
  Config config_;
  DeliverFn deliver_;
  std::unique_ptr<LossModel> loss_;
  std::unique_ptr<ReorderModel> reorder_;
  util::RingQueue<Segment> queue_;
  // The segment on the wire (valid iff busy_) and the pool of segments
  // in propagation; events reference pool slots by index.
  Segment serializing_;
  std::vector<Segment> flight_;
  std::vector<uint32_t> flight_free_;
  // Batch-delivery train (sorted by (at, seq), consumed from train_head_)
  // and the single queue event standing in for its front.
  std::vector<FlightEvent> train_;
  std::size_t train_head_ = 0;
  sim::EventId drain_id_ = sim::kInvalidEventId;
  bool busy_ = false;
  bool blackout_ = false;
  bool models_customized_ = false;
  LinkStats stats_;
};

}  // namespace prr::net
