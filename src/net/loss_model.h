// Loss models applied to the data direction of a path. Each model decides
// per segment whether the network drops it. Deterministic (index-based)
// drops reproduce the paper's Figure 2-4 scenarios; Gilbert-Elliott
// produces the correlated bursts the paper measures (~3 fast retransmits
// per recovery event).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "net/segment.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace prr::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  // Returns true if the network drops this segment.
  virtual bool should_drop(const Segment& seg) = 0;
};

// Never drops.
class NoLoss final : public LossModel {
 public:
  bool should_drop(const Segment&) override { return false; }
};

// Independent per-segment drop probability.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double p, sim::Rng rng) : p_(p), rng_(rng) {}
  bool should_drop(const Segment&) override { return rng_.bernoulli(p_); }

 private:
  double p_;
  sim::Rng rng_;
};

// Two-state Markov (Gilbert-Elliott) burst-loss model. In the Good state
// segments drop with p_good (usually 0); in Bad with p_bad (usually high).
// Mean burst length = 1 / p_bad_to_good.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.005;  // per segment
    double p_bad_to_good = 0.33;   // => mean bad-state run of ~3 segments
    double loss_in_good = 0.0;
    double loss_in_bad = 0.9;
  };
  GilbertElliottLoss(Params p, sim::Rng rng) : p_(p), rng_(rng) {}
  bool should_drop(const Segment&) override;
  bool in_bad_state() const { return bad_; }

 private:
  Params p_;
  sim::Rng rng_;
  bool bad_ = false;
};

// Drops data segments by 1-based index in the arrival order of *original*
// (non-retransmit) transmissions, exactly the "drop segments 1-4 and
// 11-16" style scenarios of the paper's figures. Retransmissions are
// dropped only if their index is listed in retransmit_drops (counted over
// retransmissions seen).
class DeterministicLoss final : public LossModel {
 public:
  explicit DeterministicLoss(std::set<uint64_t> original_drops,
                             std::set<uint64_t> retransmit_drops = {})
      : original_drops_(std::move(original_drops)),
        retransmit_drops_(std::move(retransmit_drops)) {}
  bool should_drop(const Segment& seg) override;

  uint64_t originals_seen() const { return originals_seen_; }

 private:
  std::set<uint64_t> original_drops_;
  std::set<uint64_t> retransmit_drops_;
  uint64_t originals_seen_ = 0;
  uint64_t retransmits_seen_ = 0;
};

// Time-based outages (cellular dead zones, Wi-Fi roams): every so often
// the path goes completely dark for a while, dropping everything. This
// is what drives consecutive RTO backoffs and slow-start retransmissions
// in the paper's Table 2 (DC2's 29% slow-start retransmits need outages
// longer than one RTO).
class OutageLoss final : public LossModel {
 public:
  struct Params {
    sim::Time mean_time_between = sim::Time::seconds(60);
    sim::Time mean_duration = sim::Time::seconds(2);
  };
  OutageLoss(sim::Simulator& sim, Params params, sim::Rng rng);
  bool should_drop(const Segment& seg) override;
  bool in_outage() const;

 private:
  void roll_next_outage();

  sim::Simulator& sim_;
  Params params_;
  sim::Rng rng_;
  sim::Time outage_start_;
  sim::Time outage_end_;
};

// Composite: drops if any child drops.
class CompositeLoss final : public LossModel {
 public:
  void add(std::unique_ptr<LossModel> m) { models_.push_back(std::move(m)); }
  bool should_drop(const Segment& seg) override {
    bool drop = false;
    for (auto& m : models_) drop = m->should_drop(seg) || drop;
    return drop;
  }

 private:
  std::vector<std::unique_ptr<LossModel>> models_;
};

}  // namespace prr::net
