#include "net/fault_injector.h"

#include <bit>

namespace prr::net {

void FaultInjector::arm() {
  for (const FaultEvent& e : schedule_.events()) {
    sim_.schedule_at(e.at, [this, e] { apply(e); });
  }
}

void FaultInjector::apply(const FaultEvent& e) {
  ++stats_.faults_applied;
  PRR_TRACE(recorder_, sim_.now(), conn_id_, obs::TraceType::kFault,
            static_cast<uint8_t>(e.kind), 0,
            static_cast<uint64_t>(e.duration.ns()),
            std::bit_cast<uint64_t>(e.scale), e.queue_limit_packets);
  switch (e.kind) {
    case FaultKind::kBlackout: {
      ++stats_.blackouts;
      if (++data_blackout_depth_ == 1) path_.data_link().set_blackout(true);
      sim_.schedule_in(e.duration, [this] {
        if (--data_blackout_depth_ == 0) {
          path_.data_link().set_blackout(false);
        }
      });
      break;
    }
    case FaultKind::kBandwidthShift: {
      ++stats_.bandwidth_shifts;
      const int64_t bps = static_cast<int64_t>(
          static_cast<double>(path_.data_link().rate().bits_per_second()) *
          e.scale);
      // Floor at 1 kbps: a zero rate would stall serialization forever,
      // which is a blackout's job, not a bandwidth shift's.
      path_.data_link().set_rate(util::DataRate::bps(bps < 1000 ? 1000 : bps));
      break;
    }
    case FaultKind::kRttSpike: {
      ++stats_.rtt_spikes;
      if (++rtt_spike_depth_ == 1) {
        base_data_delay_ = path_.data_link().propagation_delay();
        base_ack_delay_ = path_.ack_link().propagation_delay();
      }
      path_.data_link().set_propagation_delay(base_data_delay_ * e.scale);
      path_.ack_link().set_propagation_delay(base_ack_delay_ * e.scale);
      sim_.schedule_in(e.duration, [this] {
        if (--rtt_spike_depth_ == 0) {
          path_.data_link().set_propagation_delay(base_data_delay_);
          path_.ack_link().set_propagation_delay(base_ack_delay_);
        }
      });
      break;
    }
    case FaultKind::kQueueResize: {
      ++stats_.queue_resizes;
      path_.data_link().set_queue_limit(e.queue_limit_packets);
      break;
    }
    case FaultKind::kAckOutage: {
      ++stats_.ack_outages;
      if (++ack_blackout_depth_ == 1) path_.ack_link().set_blackout(true);
      sim_.schedule_in(e.duration, [this] {
        if (--ack_blackout_depth_ == 0) {
          path_.ack_link().set_blackout(false);
        }
      });
      break;
    }
    case FaultKind::kReceiverStall: {
      ++stats_.receiver_stalls;
      if (++stall_depth_ == 1) path_.set_ack_stall(true);
      sim_.schedule_in(e.duration, [this] {
        if (--stall_depth_ == 0) path_.set_ack_stall(false);
      });
      break;
    }
  }
}

}  // namespace prr::net
