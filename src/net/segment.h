// Wire model of a TCP segment. One type carries both directions: data
// segments (seq/len) from sender to receiver and pure ACKs (ack/SACK
// blocks/rwnd) back. Sequence numbers are 64-bit simulator-internal values;
// wrap-aware 32-bit wire arithmetic lives in tcp/seqnum.h.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.h"
#include "util/inline_vector.h"

namespace prr::net {

// Half-open byte range [start, end).
struct SackBlock {
  uint64_t start = 0;
  uint64_t end = 0;
  uint64_t len() const { return end - start; }
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

struct Segment {
  // --- data direction ---
  uint64_t seq = 0;    // first byte carried
  uint32_t len = 0;    // payload bytes (0 for pure ACK)
  bool is_retransmit = false;

  // --- ack direction ---
  bool is_ack = false;
  uint64_t ack = 0;  // cumulative: next byte expected
  // Most recently received first. Inline storage for the RFC 2018 wire
  // cap of 3-4 blocks, so building/moving a pure ACK never allocates.
  util::InlineVector<SackBlock, 4> sacks;
  std::optional<SackBlock> dsack;      // duplicate-SACK report (RFC 2883)
  uint64_t rwnd = 0;                   // receive window in bytes

  // --- ECN (RFC 3168), when negotiated ---
  bool ect = false;  // ECN-capable transport (data direction)
  bool ce = false;   // congestion experienced (set by AQM marking)
  bool ece = false;  // ECN echo (ack direction)
  bool cwr = false;  // congestion window reduced (data direction)

  // --- timestamp option (RFC 7323), when negotiated ---
  bool has_ts = false;
  uint32_t tsval = 0;  // sender clock, milliseconds (wraps)
  uint32_t tsecr = 0;  // echoed peer timestamp

  // --- bookkeeping ---
  uint64_t id = 0;          // unique per transmission
  sim::Time tx_time;        // stamped by the sending endpoint

  static constexpr uint32_t kHeaderBytes = 40;  // IP + TCP, no options
  static constexpr uint32_t kSackBlockBytes = 8;
  static constexpr uint32_t kTimestampBytes = 12;

  uint32_t wire_size() const {
    uint32_t options = 0;
    if (!sacks.empty() || dsack.has_value()) {
      options = 2 + kSackBlockBytes * static_cast<uint32_t>(
                        sacks.size() + (dsack.has_value() ? 1 : 0));
    }
    if (has_ts) options += kTimestampBytes;
    return kHeaderBytes + options + len;
  }
};

}  // namespace prr::net
