#include "net/loss_model.h"

namespace prr::net {

bool GilbertElliottLoss::should_drop(const Segment&) {
  // State transition first, then loss draw in the new state.
  if (bad_) {
    if (rng_.bernoulli(p_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.bernoulli(p_.p_good_to_bad)) bad_ = true;
  }
  return rng_.bernoulli(bad_ ? p_.loss_in_bad : p_.loss_in_good);
}

OutageLoss::OutageLoss(sim::Simulator& sim, Params params, sim::Rng rng)
    : sim_(sim), params_(params), rng_(rng) {
  outage_start_ = sim::Time::zero();
  outage_end_ = sim::Time::zero();
  roll_next_outage();
}

void OutageLoss::roll_next_outage() {
  const double gap_ms =
      rng_.exponential(params_.mean_time_between.ms_d());
  const double dur_ms = rng_.exponential(params_.mean_duration.ms_d());
  outage_start_ =
      outage_end_ + sim::Time::milliseconds(static_cast<int64_t>(gap_ms));
  outage_end_ =
      outage_start_ + sim::Time::milliseconds(static_cast<int64_t>(dur_ms));
}

bool OutageLoss::in_outage() const {
  return sim_.now() >= outage_start_ && sim_.now() < outage_end_;
}

bool OutageLoss::should_drop(const Segment&) {
  while (sim_.now() >= outage_end_) roll_next_outage();
  return in_outage();
}

bool DeterministicLoss::should_drop(const Segment& seg) {
  if (seg.is_retransmit) {
    ++retransmits_seen_;
    return retransmit_drops_.count(retransmits_seen_) > 0;
  }
  ++originals_seen_;
  return original_drops_.count(originals_seen_) > 0;
}

}  // namespace prr::net
