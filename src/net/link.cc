#include "net/link.h"

#include <algorithm>
#include <utility>

namespace prr::net {

Link::Link(sim::Simulator& sim, Config config, DeliverFn deliver)
    : sim_(sim),
      config_(config),
      deliver_(std::move(deliver)),
      loss_(std::make_unique<NoLoss>()),
      reorder_(std::make_unique<NoReorder>()) {}

void Link::send(Segment seg) {
  if (config_.ecn_mark_threshold > 0 && seg.ect &&
      queue_depth() >= config_.ecn_mark_threshold) {
    seg.ce = true;
    ++stats_.ce_marked;
  }
  if (busy_) {
    if (queue_.size() >= config_.queue_limit_packets) {
      ++stats_.dropped_queue;
      return;
    }
    queue_.push_back(std::move(seg));
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
    return;
  }
  ++stats_.enqueued;
  busy_ = true;
  const sim::Time serialize = config_.rate.transmit_time(seg.wire_size());
  sim_.schedule_in(serialize, [this, seg = std::move(seg)]() mutable {
    finish_transmission(std::move(seg));
  });
}

void Link::set_queue_limit(std::size_t packets) {
  config_.queue_limit_packets = packets;
  while (queue_.size() > config_.queue_limit_packets) {
    queue_.pop_back();
    ++stats_.dropped_queue;
  }
}

void Link::finish_transmission(Segment seg) {
  // Serialization done: propagate (plus any reordering extra delay) and
  // start the next queued segment.
  if (blackout_) {
    ++stats_.dropped_blackout;
  } else if (loss_->should_drop(seg)) {
    ++stats_.dropped_loss_model;
  } else {
    const sim::Time total = config_.propagation_delay +
                            reorder_->extra_delay(seg);
    ++stats_.delivered;
    sim_.schedule_in(total, [this, seg = std::move(seg)]() mutable {
      deliver_(std::move(seg));
    });
  }
  busy_ = false;
  start_transmission();
}

void Link::start_transmission() {
  if (busy_ || queue_.empty()) return;
  Segment seg = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.enqueued;
  busy_ = true;
  const sim::Time serialize = config_.rate.transmit_time(seg.wire_size());
  sim_.schedule_in(serialize, [this, seg = std::move(seg)]() mutable {
    finish_transmission(std::move(seg));
  });
}

}  // namespace prr::net
