#include "net/link.h"

#include <algorithm>
#include <utility>

namespace prr::net {

Link::Link(sim::Simulator& sim, Config config, DeliverFn deliver)
    : sim_(sim),
      config_(config),
      deliver_(std::move(deliver)),
      loss_(std::make_unique<NoLoss>()),
      reorder_(std::make_unique<NoReorder>()) {}

void Link::reset(Config config) {
  config_ = config;
  if (models_customized_) {
    loss_ = std::make_unique<NoLoss>();
    reorder_ = std::make_unique<NoReorder>();
    models_customized_ = false;
  }
  queue_.clear();
  serializing_ = Segment{};
  // Every flight slot is dead (the simulator reset dropped their delivery
  // events); return them all to the free list, keeping pool capacity.
  flight_free_.clear();
  for (uint32_t i = 0; i < flight_.size(); ++i) flight_free_.push_back(i);
  train_.clear();
  train_head_ = 0;
  drain_id_ = sim::kInvalidEventId;
  busy_ = false;
  blackout_ = false;
  stats_ = {};
}

void Link::send(Segment&& seg) {
  if (config_.ecn_mark_threshold > 0 && seg.ect &&
      queue_depth() >= config_.ecn_mark_threshold) {
    seg.ce = true;
    ++stats_.ce_marked;
  }
  if (busy_) {
    if (queue_.size() >= config_.queue_limit_packets) {
      ++stats_.dropped_queue;
      return;
    }
    queue_.push_back(std::move(seg));
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
    return;
  }
  begin_serialization(std::move(seg));
}

void Link::begin_serialization(Segment&& seg) {
  ++stats_.enqueued;
  busy_ = true;
  const sim::Time serialize = config_.rate.transmit_time(seg.wire_size());
  serializing_ = std::move(seg);
  sim_.schedule_in(serialize, [this] { finish_transmission(); });
}

void Link::set_queue_limit(std::size_t packets) {
  config_.queue_limit_packets = packets;
  while (queue_.size() > config_.queue_limit_packets) {
    queue_.drop_back();
    ++stats_.dropped_queue;
  }
}

void Link::finish_transmission() {
  // Serialization done: propagate (plus any reordering extra delay) and
  // start the next queued segment.
  Segment seg = std::move(serializing_);
  if (blackout_) {
    ++stats_.dropped_blackout;
  } else if (loss_->should_drop(seg)) {
    ++stats_.dropped_loss_model;
  } else {
    const sim::Time total = config_.propagation_delay +
                            reorder_->extra_delay(seg);
    ++stats_.delivered;
    uint32_t slot;
    if (!flight_free_.empty()) {
      slot = flight_free_.back();
      flight_free_.pop_back();
      flight_[slot] = std::move(seg);
    } else {
      slot = static_cast<uint32_t>(flight_.size());
      flight_.push_back(std::move(seg));
    }
    if (sim_.batch_delivery()) {
      // Draw the seq at exactly the point per-event mode would schedule,
      // so the (time, seq) key — and hence global dispatch order — is
      // identical; only the queue traffic differs (one drain event per
      // contiguous train instead of one event per segment).
      const uint64_t seq = sim_.take_seq();
      sim::Time at = sim_.now() + total;
      if (at < sim_.now()) at = sim_.now();
      enqueue_flight(at, seq, slot);
    } else {
      sim_.schedule_in(total, [this, slot] { deliver_flight(slot); });
    }
  }
  busy_ = false;
  start_transmission();
}

void Link::enqueue_flight(sim::Time at, uint64_t seq, uint32_t slot) {
  if (train_head_ == train_.size()) {
    train_.clear();
    train_head_ = 0;
  }
  const bool was_empty = train_.size() == train_head_;
  bool new_front = was_empty;
  if (was_empty || at > train_.back().at ||
      (at == train_.back().at && seq > train_.back().seq)) {
    // Common case: delivery times are nondecreasing (fixed propagation
    // delay), so the new arrival appends at the tail.
    train_.push_back(FlightEvent{at, seq, slot});
  } else {
    // A propagation-delay shrink mid-train (route-change fault) delivers
    // this segment before ones already propagating — insert in (at, seq)
    // order, exactly where the event queue would have sorted it.
    auto pos = std::upper_bound(
        train_.begin() + static_cast<std::ptrdiff_t>(train_head_),
        train_.end(), FlightEvent{at, seq, slot},
        [](const FlightEvent& a, const FlightEvent& b) {
          if (a.at != b.at) return a.at < b.at;
          return a.seq < b.seq;
        });
    new_front =
        pos == train_.begin() + static_cast<std::ptrdiff_t>(train_head_);
    train_.insert(pos, FlightEvent{at, seq, slot});
  }
  if (new_front) {
    // The drain event always carries the front's own (time, seq) key, so
    // it dispatches exactly when the front's per-event entry would have.
    if (drain_id_ != sim::kInvalidEventId) {
      drain_id_ = sim_.reschedule_at_with_seq(drain_id_, at, seq);
    }
    if (drain_id_ == sim::kInvalidEventId) {
      drain_id_ =
          sim_.schedule_at_with_seq(at, seq, [this] { drain_train(); });
    }
  }
}

void Link::drain_train() {
  drain_id_ = sim::kInvalidEventId;  // this event is firing
  bool first = true;
  for (;;) {
    const FlightEvent fe = train_[train_head_++];
    // The drain event fired at the front's own timestamp; each further
    // batched delivery advances the clock to its own timestamp first, so
    // every deliver_ callback sees exactly the now() it sees per-event.
    if (!first) sim_.advance_to(fe.at);
    first = false;
    deliver_flight(fe.slot);
    if (train_head_ == train_.size()) {
      train_.clear();
      train_head_ = 0;
      return;
    }
    const FlightEvent& next = train_[train_head_];
    if (!sim_.can_dispatch_inline(next.at, next.seq)) {
      // A queued event (or the step deadline) comes first: put the rest
      // of the train back behind a drain event under the front's
      // original key and yield to the queue.
      drain_id_ = sim_.schedule_at_with_seq(next.at, next.seq,
                                            [this] { drain_train(); });
      return;
    }
  }
}

void Link::deliver_flight(uint32_t slot) {
  Segment seg = std::move(flight_[slot]);
  flight_free_.push_back(slot);
  deliver_(std::move(seg));
}

void Link::start_transmission() {
  if (busy_ || queue_.empty()) return;
  begin_serialization(queue_.pop_front());
}

}  // namespace prr::net
