#include "net/link.h"

#include <algorithm>
#include <utility>

namespace prr::net {

Link::Link(sim::Simulator& sim, Config config, DeliverFn deliver)
    : sim_(sim),
      config_(config),
      deliver_(std::move(deliver)),
      loss_(std::make_unique<NoLoss>()),
      reorder_(std::make_unique<NoReorder>()) {}

void Link::reset(Config config) {
  config_ = config;
  if (models_customized_) {
    loss_ = std::make_unique<NoLoss>();
    reorder_ = std::make_unique<NoReorder>();
    models_customized_ = false;
  }
  queue_.clear();
  serializing_ = Segment{};
  // Every flight slot is dead (the simulator reset dropped their delivery
  // events); return them all to the free list, keeping pool capacity.
  flight_free_.clear();
  for (uint32_t i = 0; i < flight_.size(); ++i) flight_free_.push_back(i);
  busy_ = false;
  blackout_ = false;
  stats_ = {};
}

void Link::send(Segment&& seg) {
  if (config_.ecn_mark_threshold > 0 && seg.ect &&
      queue_depth() >= config_.ecn_mark_threshold) {
    seg.ce = true;
    ++stats_.ce_marked;
  }
  if (busy_) {
    if (queue_.size() >= config_.queue_limit_packets) {
      ++stats_.dropped_queue;
      return;
    }
    queue_.push_back(std::move(seg));
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
    return;
  }
  begin_serialization(std::move(seg));
}

void Link::begin_serialization(Segment&& seg) {
  ++stats_.enqueued;
  busy_ = true;
  const sim::Time serialize = config_.rate.transmit_time(seg.wire_size());
  serializing_ = std::move(seg);
  sim_.schedule_in(serialize, [this] { finish_transmission(); });
}

void Link::set_queue_limit(std::size_t packets) {
  config_.queue_limit_packets = packets;
  while (queue_.size() > config_.queue_limit_packets) {
    queue_.drop_back();
    ++stats_.dropped_queue;
  }
}

void Link::finish_transmission() {
  // Serialization done: propagate (plus any reordering extra delay) and
  // start the next queued segment.
  Segment seg = std::move(serializing_);
  if (blackout_) {
    ++stats_.dropped_blackout;
  } else if (loss_->should_drop(seg)) {
    ++stats_.dropped_loss_model;
  } else {
    const sim::Time total = config_.propagation_delay +
                            reorder_->extra_delay(seg);
    ++stats_.delivered;
    uint32_t slot;
    if (!flight_free_.empty()) {
      slot = flight_free_.back();
      flight_free_.pop_back();
      flight_[slot] = std::move(seg);
    } else {
      slot = static_cast<uint32_t>(flight_.size());
      flight_.push_back(std::move(seg));
    }
    sim_.schedule_in(total, [this, slot] { deliver_flight(slot); });
  }
  busy_ = false;
  start_transmission();
}

void Link::deliver_flight(uint32_t slot) {
  Segment seg = std::move(flight_[slot]);
  flight_free_.push_back(slot);
  deliver_(std::move(seg));
}

void Link::start_transmission() {
  if (busy_ || queue_.empty()) return;
  begin_serialization(queue_.pop_front());
}

}  // namespace prr::net
