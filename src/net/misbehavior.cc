#include "net/misbehavior.h"

#include <algorithm>
#include <utility>

namespace prr::net {

AckMisbehaver::AckMisbehaver(sim::Simulator& sim, MisbehaviorConfig config,
                             sim::Rng rng, EmitFn emit)
    : sim_(sim),
      config_(config),
      rng_(rng),
      emit_(std::move(emit)),
      reorder_flush_timer_(sim, [this] { flush_held(); }) {}

void AckMisbehaver::process(Segment&& ack) {
  // Reordering is decided on the *untransformed* stream so that a swap
  // exchanges two independently-transformed ACKs. A held ACK is released
  // after its successor, producing an adjacent swap on the wire.
  if (held_) {
    Segment prev = std::move(*held_);
    held_.reset();
    reorder_flush_timer_.stop();
    transform_and_emit(std::move(ack));
    transform_and_emit(std::move(prev));
    return;
  }
  if (config_.reorder_probability > 0 &&
      rng_.bernoulli(config_.reorder_probability)) {
    ++stats_.acks_reordered;
    held_ = std::move(ack);
    reorder_flush_timer_.start(config_.reorder_flush_timeout);
    return;
  }
  transform_and_emit(std::move(ack));
}

void AckMisbehaver::flush_held() {
  if (!held_) return;
  Segment prev = std::move(*held_);
  held_.reset();
  transform_and_emit(std::move(prev));
}

void AckMisbehaver::transform_and_emit(Segment&& ack) {
  const sim::Time now = sim_.now();

  if (in_window(now, config_.suppress_at, config_.suppress_duration) &&
      !ack.sacks.empty()) {
    ack.sacks.clear();
    ack.dsack.reset();
    ++stats_.sacks_suppressed;
  }

  if (config_.lie_sack_probability > 0 && !ack.sacks.empty() &&
      rng_.bernoulli(config_.lie_sack_probability)) {
    // Claim one extra span above the newest block — data the receiver
    // never got. The sender must never let a falsely-SACKed hole block
    // retransmission forever.
    ack.sacks[0].end += config_.lie_span_bytes;
    ++stats_.sack_lies;
  }

  if (config_.dup_sack_probability > 0 && !ack.sacks.empty() &&
      ack.sacks.size() < 4 &&  // RFC 2018 wire cap
      rng_.bernoulli(config_.dup_sack_probability)) {
    ack.sacks.push_back(ack.sacks[0]);
    ++stats_.sack_dups;
  }

  if (in_window(now, config_.shrink_at, config_.shrink_duration)) {
    // Clamp to 1: rwnd 0 on the wire reads as "field unset" at the
    // sender, which would silently disable the shrink.
    ack.rwnd = std::max<uint64_t>(1, config_.shrink_rwnd_bytes);
    ++stats_.rwnds_shrunk;
  }

  if (config_.corrupt_probability > 0 &&
      rng_.bernoulli(config_.corrupt_probability)) {
    ++stats_.acks_corrupted;
    switch (rng_.uniform_int(0, 2)) {
      case 0:  // ack far beyond anything ever sent (RFC 5961 territory)
        ack.ack += 16u << 20;
        break;
      case 1:  // ancient regressed ack
        ack.ack /= 2;
        break;
      default:  // inverted SACK block
        if (!ack.sacks.empty()) {
          std::swap(ack.sacks[0].start, ack.sacks[0].end);
        } else {
          ack.ack += 16u << 20;
        }
        break;
    }
  }

  // ACK division: replay the cumulative advance in sub-MSS steps. Only
  // the final sub-ACK carries the SACK blocks (earlier ones predate the
  // OOO state being reported); all carry the same rwnd.
  const uint64_t advance =
      ack.ack > last_ack_forwarded_ ? ack.ack - last_ack_forwarded_ : 0;
  if (config_.divide_factor > 1 && advance > config_.divide_step_bytes) {
    const uint64_t step = std::max<uint64_t>(1, config_.divide_step_bytes);
    uint64_t pieces = std::min<uint64_t>(
        config_.divide_factor, (advance + step - 1) / step);
    uint64_t at = ack.ack - advance;
    ++stats_.acks_divided;
    for (uint64_t i = 1; i < pieces; ++i) {
      at += step;
      Segment sub = ack;
      sub.ack = at;
      sub.sacks.clear();
      sub.dsack.reset();
      emit_one(std::move(sub));
    }
  }
  emit_one(std::move(ack));
}

void AckMisbehaver::emit_one(Segment&& ack) {
  last_ack_forwarded_ = std::max(last_ack_forwarded_, ack.ack);
  const bool dup = config_.dup_ack_probability > 0 &&
                   rng_.bernoulli(config_.dup_ack_probability);
  if (dup) {
    ++stats_.acks_duplicated;
    Segment copy = ack;
    emit_(std::move(copy));
  }
  emit_(std::move(ack));
}

}  // namespace prr::net
