#include "net/fault_schedule.h"

#include <algorithm>
#include <cstdio>

namespace prr::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kBandwidthShift: return "bw_shift";
    case FaultKind::kRttSpike: return "rtt_spike";
    case FaultKind::kQueueResize: return "queue_resize";
    case FaultKind::kAckOutage: return "ack_outage";
    case FaultKind::kReceiverStall: return "recv_stall";
  }
  return "?";
}

void FaultSchedule::add(FaultEvent e) {
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, e);
}

FaultSchedule& FaultSchedule::merge(const FaultSchedule& other) {
  for (const auto& e : other.events_) add(e);
  return *this;
}

std::string FaultSchedule::describe() const {
  std::string out;
  char buf[128];
  for (const auto& e : events_) {
    if (!out.empty()) out += ", ";
    switch (e.kind) {
      case FaultKind::kBlackout:
      case FaultKind::kAckOutage:
      case FaultKind::kReceiverStall:
        std::snprintf(buf, sizeof buf, "%s@%.0fms/%.0fms", to_string(e.kind),
                      e.at.ms_d(), e.duration.ms_d());
        break;
      case FaultKind::kBandwidthShift:
        std::snprintf(buf, sizeof buf, "%s@%.0fms x%.2f", to_string(e.kind),
                      e.at.ms_d(), e.scale);
        break;
      case FaultKind::kRttSpike:
        std::snprintf(buf, sizeof buf, "%s@%.0fms x%.2f/%.0fms",
                      to_string(e.kind), e.at.ms_d(), e.scale,
                      e.duration.ms_d());
        break;
      case FaultKind::kQueueResize:
        std::snprintf(buf, sizeof buf, "%s@%.0fms ->%zu pkts",
                      to_string(e.kind), e.at.ms_d(), e.queue_limit_packets);
        break;
    }
    out += buf;
  }
  return out.empty() ? "(none)" : out;
}

FaultSchedule FaultSchedule::blackout(sim::Time at, sim::Time duration) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBlackout;
  e.duration = duration;
  s.add(e);
  return s;
}

FaultSchedule FaultSchedule::flap(sim::Time at, int repeats, sim::Time down,
                                  sim::Time gap) {
  FaultSchedule s;
  sim::Time t = at;
  for (int i = 0; i < repeats; ++i) {
    FaultEvent e;
    e.at = t;
    e.kind = FaultKind::kBlackout;
    e.duration = down;
    s.add(e);
    t = t + down + gap;
  }
  return s;
}

FaultSchedule FaultSchedule::bandwidth_shift(sim::Time at, double scale) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBandwidthShift;
  e.scale = scale;
  s.add(e);
  return s;
}

FaultSchedule FaultSchedule::rtt_spike(sim::Time at, double scale,
                                       sim::Time duration) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRttSpike;
  e.scale = scale;
  e.duration = duration;
  s.add(e);
  return s;
}

FaultSchedule FaultSchedule::queue_resize(sim::Time at, std::size_t packets) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kQueueResize;
  e.queue_limit_packets = packets;
  s.add(e);
  return s;
}

FaultSchedule FaultSchedule::ack_outage(sim::Time at, sim::Time duration) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kAckOutage;
  e.duration = duration;
  s.add(e);
  return s;
}

FaultSchedule FaultSchedule::receiver_stall(sim::Time at,
                                            sim::Time duration) {
  FaultSchedule s;
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kReceiverStall;
  e.duration = duration;
  s.add(e);
  return s;
}

namespace {

sim::Time uniform_time(sim::Rng& rng, sim::Time lo, sim::Time hi) {
  if (hi <= lo) return lo;
  return sim::Time::nanoseconds(static_cast<int64_t>(
      rng.uniform_int(static_cast<uint64_t>(lo.ns()),
                      static_cast<uint64_t>(hi.ns()))));
}

sim::Time uniform_onset(sim::Rng& rng, sim::Time horizon) {
  return uniform_time(rng, horizon / 8, horizon);
}

}  // namespace

FaultSchedule FaultSchedule::random(const FaultProfile& p, sim::Rng rng) {
  FaultSchedule s;
  if (rng.bernoulli(p.p_blackout)) {
    const sim::Time at = uniform_onset(rng, p.horizon);
    const sim::Time down = uniform_time(rng, p.blackout_min, p.blackout_max);
    const int repeats =
        p.flap_repeats <= 1
            ? 1
            : static_cast<int>(rng.uniform_int(
                  1, static_cast<uint64_t>(p.flap_repeats)));
    s.merge(flap(at, repeats, down, p.flap_gap));
  }
  if (rng.bernoulli(p.p_bandwidth_shift)) {
    FaultEvent e;
    e.at = uniform_onset(rng, p.horizon);
    e.kind = FaultKind::kBandwidthShift;
    e.scale = rng.uniform(p.bandwidth_scale_min, p.bandwidth_scale_max);
    s.add(e);
  }
  if (rng.bernoulli(p.p_rtt_spike)) {
    FaultEvent e;
    e.at = uniform_onset(rng, p.horizon);
    e.kind = FaultKind::kRttSpike;
    e.scale = rng.uniform(p.rtt_scale_min, p.rtt_scale_max);
    e.duration = uniform_time(rng, p.rtt_spike_min, p.rtt_spike_max);
    s.add(e);
  }
  if (rng.bernoulli(p.p_queue_resize)) {
    FaultEvent e;
    e.at = uniform_onset(rng, p.horizon);
    e.kind = FaultKind::kQueueResize;
    e.queue_limit_packets = static_cast<std::size_t>(rng.uniform_int(
        static_cast<uint64_t>(p.queue_min_packets),
        static_cast<uint64_t>(p.queue_max_packets)));
    s.add(e);
  }
  if (rng.bernoulli(p.p_ack_outage)) {
    FaultEvent e;
    e.at = uniform_onset(rng, p.horizon);
    e.kind = FaultKind::kAckOutage;
    e.duration = uniform_time(rng, p.ack_outage_min, p.ack_outage_max);
    s.add(e);
  }
  if (rng.bernoulli(p.p_receiver_stall)) {
    FaultEvent e;
    e.at = uniform_onset(rng, p.horizon);
    e.kind = FaultKind::kReceiverStall;
    e.duration = uniform_time(rng, p.stall_min, p.stall_max);
    s.add(e);
  }
  return s;
}

}  // namespace prr::net
