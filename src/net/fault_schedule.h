// Time-varying path dynamics for chaos experiments: a FaultSchedule is a
// time-ordered list of path mutations — blackouts and flaps, bandwidth
// shifts, RTT spikes (route changes), queue resizes, ACK-direction
// outages, and receiver stalls — that a FaultInjector replays against a
// live Path. Schedules are plain data: they can be drawn deterministically
// from a (seed, connection id) Rng, logged alongside a quarantined
// connection, and replayed bit-for-bit in isolation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace prr::net {

enum class FaultKind {
  kBlackout,        // data link drops everything for `duration`
  kBandwidthShift,  // data-link rate *= scale, permanent (route change)
  kRttSpike,        // both directions' propagation delay *= scale for
                    // `duration`, then restored (transient reroute)
  kQueueResize,     // data-link queue limit set to `queue_limit_packets`
  kAckOutage,       // ack link drops everything for `duration`
  kReceiverStall,   // client stops ACKing for `duration` (rebuffering /
                    // process stall); held state is released afterwards
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  sim::Time at;                 // absolute simulation time
  FaultKind kind = FaultKind::kBlackout;
  sim::Time duration = sim::Time::zero();  // blackout/spike/outage/stall
  double scale = 1.0;                      // bandwidth / RTT multiplier
  std::size_t queue_limit_packets = 0;     // queue resize target
};

// Per-connection fault intensities for random schedule generation. Each
// fault family fires independently with the given probability; onset
// times are uniform in [horizon/8, horizon] so early slow start is
// exercised too, but a connection is never born mid-fault.
struct FaultProfile {
  sim::Time horizon = sim::Time::seconds(8);

  double p_blackout = 0.0;
  sim::Time blackout_min = sim::Time::milliseconds(300);
  sim::Time blackout_max = sim::Time::seconds(3);
  // A blackout draw may flap: repeat up to `flap_repeats` dark periods
  // separated by `flap_gap`.
  int flap_repeats = 1;
  sim::Time flap_gap = sim::Time::milliseconds(500);

  double p_bandwidth_shift = 0.0;
  double bandwidth_scale_min = 0.1;
  double bandwidth_scale_max = 2.0;

  double p_rtt_spike = 0.0;
  double rtt_scale_min = 1.5;
  double rtt_scale_max = 6.0;
  sim::Time rtt_spike_min = sim::Time::milliseconds(500);
  sim::Time rtt_spike_max = sim::Time::seconds(4);

  double p_queue_resize = 0.0;
  std::size_t queue_min_packets = 4;
  std::size_t queue_max_packets = 400;

  double p_ack_outage = 0.0;
  sim::Time ack_outage_min = sim::Time::milliseconds(200);
  sim::Time ack_outage_max = sim::Time::seconds(2);

  double p_receiver_stall = 0.0;
  sim::Time stall_min = sim::Time::milliseconds(200);
  sim::Time stall_max = sim::Time::seconds(2);
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(FaultEvent e);
  void clear() { events_.clear(); }  // keeps capacity (pool recycle)
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // One-line summary ("blackout@1.2s/800ms, rtt_spike@3s x4.0/2s") for
  // quarantine records and logs.
  std::string describe() const;

  // ---- named builders ----
  static FaultSchedule blackout(sim::Time at, sim::Time duration);
  // `repeats` dark periods of `down` separated by `gap` (a flapping link).
  static FaultSchedule flap(sim::Time at, int repeats, sim::Time down,
                            sim::Time gap);
  static FaultSchedule bandwidth_shift(sim::Time at, double scale);
  static FaultSchedule rtt_spike(sim::Time at, double scale,
                                 sim::Time duration);
  static FaultSchedule queue_resize(sim::Time at, std::size_t packets);
  static FaultSchedule ack_outage(sim::Time at, sim::Time duration);
  static FaultSchedule receiver_stall(sim::Time at, sim::Time duration);

  // Deterministic random schedule: identical (profile, rng seed) pairs
  // yield identical schedules, the property quarantine replay relies on.
  static FaultSchedule random(const FaultProfile& profile, sim::Rng rng);

  // Merges another schedule's events into this one (kept time-sorted).
  FaultSchedule& merge(const FaultSchedule& other);

 private:
  std::vector<FaultEvent> events_;  // sorted by `at`
};

}  // namespace prr::net
