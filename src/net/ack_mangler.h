// ACK-path impairments: independent ACK loss and stretch-ACK (LRO/GRO)
// coalescing. Because each ACK snapshots complete receiver state
// (cumulative ACK + SACK blocks), dropping all but the last ACK of a
// coalescing window is an exact model of receive offload: the surviving
// ACK acknowledges everything the dropped ones did.
//
// Adversarial endpoint models (net/misbehavior.h) plug in ahead of the
// ordinary impairments: misbehavior first (the endpoint emits bad ACKs),
// then loss and stretch (the path damages whatever was emitted).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/misbehavior.h"
#include "net/segment.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace prr::net {

class AckMangler {
 public:
  using ForwardFn = std::function<void(Segment&&)>;

  struct Config {
    double ack_loss_probability = 0.0;
    // Stretch factor k: deliver one ACK per k generated (k=1 disables).
    uint32_t stretch_factor = 1;
    // A held ACK is flushed after this long even if the window isn't full,
    // like an LRO flush timer.
    sim::Time stretch_flush_timeout = sim::Time::microseconds(500);
    // Adversarial endpoint pathologies (all off by default).
    MisbehaviorConfig misbehavior;
  };

  AckMangler(sim::Simulator& sim, Config config, sim::Rng rng,
             ForwardFn forward);

  // Pool-recycle: returns the mangler to a freshly-constructed state for
  // a new (config, rng) pair, keeping the forward callback. Precondition:
  // the owning Simulator has been reset. Allocates only when the new
  // config enables misbehavior (the misbehaver is recreated).
  void reset(Config config, sim::Rng rng);

  void on_ack(Segment&& ack);

  uint64_t acks_seen() const { return acks_seen_; }
  uint64_t acks_forwarded() const { return acks_forwarded_; }
  uint64_t acks_dropped() const { return acks_dropped_; }
  uint64_t acks_coalesced() const { return acks_coalesced_; }
  // Null when no misbehavior is configured (the common case).
  const AckMisbehaver* misbehaver() const { return misbehaver_.get(); }

 private:
  void impair(Segment&& ack);  // loss + stretch, post-misbehavior
  void flush();

  sim::Simulator& sim_;
  Config config_;
  sim::Rng rng_;
  ForwardFn forward_;
  std::unique_ptr<AckMisbehaver> misbehaver_;
  sim::Timer flush_timer_;
  std::optional<Segment> held_;
  uint32_t held_count_ = 0;
  uint64_t acks_seen_ = 0;
  uint64_t acks_forwarded_ = 0;
  uint64_t acks_dropped_ = 0;
  uint64_t acks_coalesced_ = 0;
};

}  // namespace prr::net
