// Misbehaving-endpoint models for the torture engine: a receiver (or a
// middlebox on the reverse path) that does not play by the ACK rules the
// sender's recovery machinery assumes. Each pathology is a per-segment
// transform applied where ACKs enter the reverse path (inside
// net::AckMangler, before the ordinary loss/stretch impairments), so a
// torture schedule drawn from a deterministic Rng replays bit-for-bit:
//
//   - lying SACK blocks: a block is widened to claim one extra
//     never-delivered segment above it (the classic optimistic-ACK /
//     false-SACK attack — falsely-SACKed holes must not wedge recovery);
//   - duplicated SACK blocks: a block is reported twice on the wire
//     (wire-legal; the scoreboard must stay idempotent);
//   - SACK suppression: during [suppress_at, +duration) every ACK has its
//     SACK blocks stripped (a SACK-eating middlebox, or the wire view of
//     a reneging receiver that stopped reporting its OOO queue);
//   - divided ACKs: one cumulative advance is split into MSS-grained
//     sub-ACKs delivered back-to-back (Savage's ACK-division attack —
//     byte-counted cwnd growth must not be amplified);
//   - ACK duplication and reordering: the reverse path delivers copies
//     and swaps adjacent ACKs (late ACKs carry stale SACK state);
//   - receiver-window shrinking: during [shrink_at, +duration) the
//     advertised window is overwritten with a tiny (possibly zero)
//     value, violating the RFC 793 "don't shrink" SHOULD;
//   - corrupted ACK fields: the ack number jumps above anything ever
//     sent (must be ignored per RFC 5961), regresses to an ancient
//     value, or a SACK block arrives inverted (start > end).
//
// Stateful reneging — the receiver actually *discarding* SACKed data —
// cannot be modeled on the wire; that flavor lives in tcp::Receiver
// (Config::renege_at) so the grammar can compose both.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/segment.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace prr::net {

struct MisbehaviorConfig {
  // Per-ACK probability of widening the most recent SACK block by one
  // `lie_span_bytes` beyond what was actually received.
  double lie_sack_probability = 0.0;
  uint32_t lie_span_bytes = 1430;

  // Per-ACK probability of repeating the first SACK block (capacity
  // permitting — the wire cap of 4 blocks is respected).
  double dup_sack_probability = 0.0;

  // SACK suppression window (zero duration = off).
  sim::Time suppress_at = sim::Time::zero();
  sim::Time suppress_duration = sim::Time::zero();

  // Divided ACKs: split a cumulative advance into at most this many
  // sub-ACKs, stepped at `divide_step_bytes`. 1 = off.
  uint32_t divide_factor = 1;
  uint32_t divide_step_bytes = 1430;

  // Per-ACK probability of emitting an extra copy.
  double dup_ack_probability = 0.0;

  // Per-ACK probability of holding this ACK and releasing it after the
  // next one (adjacent swap). A held ACK is flushed after
  // `reorder_flush_timeout` if no successor arrives.
  double reorder_probability = 0.0;
  sim::Time reorder_flush_timeout = sim::Time::milliseconds(200);

  // Receiver-window shrink window: while active, rwnd is overwritten
  // with `shrink_rwnd_bytes`. Any value below one MSS stalls the sender
  // once the flight drains and requires zero-window probes to recover.
  // Must be >= 1: rwnd 0 on the wire means "field unset" to the sender
  // (it keeps the previous window), so a 1-byte window is the strongest
  // expressible shrink. Zero duration = off.
  sim::Time shrink_at = sim::Time::zero();
  sim::Time shrink_duration = sim::Time::zero();
  uint64_t shrink_rwnd_bytes = 1;

  // Per-ACK probability of corrupting a field. The corruption drawn is
  // uniform over: ack beyond anything sent (+16 MB), ack regressed to
  // half its value, one SACK block inverted (start/end swapped).
  double corrupt_probability = 0.0;

  bool any_active() const {
    return lie_sack_probability > 0 || dup_sack_probability > 0 ||
           !suppress_duration.is_zero() || divide_factor > 1 ||
           dup_ack_probability > 0 || reorder_probability > 0 ||
           !shrink_duration.is_zero() || corrupt_probability > 0;
  }
};

class AckMisbehaver {
 public:
  struct Stats {
    uint64_t sack_lies = 0;
    uint64_t sack_dups = 0;
    uint64_t sacks_suppressed = 0;
    uint64_t acks_divided = 0;
    uint64_t acks_duplicated = 0;
    uint64_t acks_reordered = 0;
    uint64_t rwnds_shrunk = 0;
    uint64_t acks_corrupted = 0;
  };

  using EmitFn = std::function<void(Segment&&)>;

  // `emit` receives every (possibly transformed, possibly multiplied)
  // ACK in delivery order; the misbehaver must outlive the simulation.
  AckMisbehaver(sim::Simulator& sim, MisbehaviorConfig config, sim::Rng rng,
                EmitFn emit);

  void process(Segment&& ack);

  const Stats& stats() const { return stats_; }

 private:
  void transform_and_emit(Segment&& ack);
  void emit_one(Segment&& ack);
  void flush_held();
  bool in_window(sim::Time at, sim::Time start, sim::Time dur) const {
    return !dur.is_zero() && at >= start && at < start + dur;
  }

  sim::Simulator& sim_;
  MisbehaviorConfig config_;
  sim::Rng rng_;
  EmitFn emit_;
  sim::Timer reorder_flush_timer_;
  std::optional<Segment> held_;  // awaiting the next ACK (reordering)
  uint64_t last_ack_forwarded_ = 0;
  Stats stats_;
};

}  // namespace prr::net
