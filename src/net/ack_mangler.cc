#include "net/ack_mangler.h"

#include <utility>

namespace prr::net {

AckMangler::AckMangler(sim::Simulator& sim, Config config, sim::Rng rng,
                       ForwardFn forward)
    : sim_(sim),
      config_(config),
      rng_(rng),
      forward_(std::move(forward)),
      flush_timer_(sim, [this] { flush(); }) {
  // The misbehaver draws from its own fork so enabling a pathology never
  // perturbs the loss/stretch draw sequence of the base impairments.
  if (config_.misbehavior.any_active()) {
    misbehaver_ = std::make_unique<AckMisbehaver>(
        sim, config_.misbehavior, rng.fork(0xBAD),
        [this](Segment&& s) { impair(std::move(s)); });
  }
}

void AckMangler::reset(Config config, sim::Rng rng) {
  config_ = config;
  rng_ = rng;
  if (config_.misbehavior.any_active()) {
    // Same fork discipline as the constructor, so a recycled mangler's
    // draw sequence matches a fresh one's exactly.
    misbehaver_ = std::make_unique<AckMisbehaver>(
        sim_, config_.misbehavior, rng.fork(0xBAD),
        [this](Segment&& s) { impair(std::move(s)); });
  } else {
    misbehaver_.reset();
  }
  flush_timer_.stop();  // stale after Simulator::reset; stop() clears it
  held_.reset();
  held_count_ = 0;
  acks_seen_ = 0;
  acks_forwarded_ = 0;
  acks_dropped_ = 0;
  acks_coalesced_ = 0;
}

void AckMangler::on_ack(Segment&& ack) {
  ++acks_seen_;
  if (misbehaver_) {
    misbehaver_->process(std::move(ack));
    return;
  }
  impair(std::move(ack));
}

void AckMangler::impair(Segment&& ack) {
  if (config_.ack_loss_probability > 0 &&
      rng_.bernoulli(config_.ack_loss_probability)) {
    ++acks_dropped_;
    return;
  }
  if (config_.stretch_factor <= 1) {
    ++acks_forwarded_;
    forward_(std::move(ack));
    return;
  }
  // Coalesce: keep only the newest ACK; it supersedes the held one. A
  // DSACK report must not be swallowed, so a held DSACK is merged forward.
  if (held_ && held_->dsack && !ack.dsack) ack.dsack = held_->dsack;
  if (held_) ++acks_coalesced_;
  held_ = std::move(ack);
  ++held_count_;
  if (held_count_ >= config_.stretch_factor) {
    flush();
  } else if (!flush_timer_.pending()) {
    flush_timer_.start(config_.stretch_flush_timeout);
  }
}

void AckMangler::flush() {
  flush_timer_.stop();
  if (!held_) return;
  ++acks_forwarded_;
  forward_(std::move(*held_));
  held_.reset();
  held_count_ = 0;
}

}  // namespace prr::net
