// Replays a FaultSchedule against a live Path: blackouts and ACK outages
// toggle the link blackout gates, bandwidth shifts rescale the data-link
// rate, RTT spikes scale both directions' propagation delay and restore
// it afterwards, queue resizes retarget the data-link queue, and receiver
// stalls pause ACK generation at the client. All mutations run as
// ordinary simulator events, so a schedule drawn from a deterministic Rng
// replays bit-for-bit.
#pragma once

#include <cstdint>

#include "net/fault_schedule.h"
#include "net/path.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"

namespace prr::net {

class FaultInjector {
 public:
  struct Stats {
    uint64_t faults_applied = 0;
    uint64_t blackouts = 0;
    uint64_t bandwidth_shifts = 0;
    uint64_t rtt_spikes = 0;
    uint64_t queue_resizes = 0;
    uint64_t ack_outages = 0;
    uint64_t receiver_stalls = 0;
  };

  FaultInjector(sim::Simulator& sim, Path& path, FaultSchedule schedule)
      : sim_(sim), path_(path), schedule_(std::move(schedule)) {}

  // Schedules every fault event. Call once, before (or during) the run.
  // The injector must outlive the simulation it armed.
  void arm();

  const FaultSchedule& schedule() const { return schedule_; }
  const Stats& stats() const { return stats_; }

  // Flight-recorder tap: every applied fault is written as a kFault
  // record tagged with `conn_id`, so the Perfetto export shows fault
  // windows on the same timeline as the TCP state they perturb.
  void set_recorder(obs::FlightRecorder* recorder, uint32_t conn_id) {
    recorder_ = recorder;
    conn_id_ = conn_id;
  }

 private:
  void apply(const FaultEvent& e);

  sim::Simulator& sim_;
  Path& path_;
  FaultSchedule schedule_;
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
  uint32_t conn_id_ = 0;
  // Nesting depth per toggled state, so overlapping faults of the same
  // family (e.g. a flap burst overlapping a long blackout) do not clear
  // each other's gate early.
  int data_blackout_depth_ = 0;
  int ack_blackout_depth_ = 0;
  int stall_depth_ = 0;
  int rtt_spike_depth_ = 0;
  sim::Time base_data_delay_;  // restored when the last spike ends
  sim::Time base_ack_delay_;
};

}  // namespace prr::net
