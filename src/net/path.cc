#include "net/path.h"

#include <utility>

namespace prr::net {

Path::Config Path::Config::symmetric(util::DataRate rate, sim::Time rtt,
                                     std::size_t queue_packets) {
  Config c;
  c.data_link.rate = rate;
  c.data_link.propagation_delay = rtt / 2;
  c.data_link.queue_limit_packets = queue_packets;
  c.ack_link.rate = util::DataRate::mbps(100);
  c.ack_link.propagation_delay = rtt / 2;
  c.ack_link.queue_limit_packets = 10000;
  return c;
}

Path::Path(sim::Simulator& sim, Config config, sim::Rng rng) : sim_(sim) {
  data_link_ = std::make_unique<Link>(
      sim, config.data_link,
      [this](Segment&& s) {
        if (deliver_data_) deliver_data_(std::move(s));
      });
  ack_link_ = std::make_unique<Link>(
      sim, config.ack_link,
      [this](Segment&& s) {
        if (deliver_ack_) deliver_ack_(std::move(s));
      });
  ack_mangler_ = std::make_unique<AckMangler>(
      sim, config.ack_mangler, rng.fork(0x41434b),
      [this](Segment&& s) { ack_link_->send(std::move(s)); });
}

void Path::reset(Config config, sim::Rng rng) {
  data_link_->reset(config.data_link);
  ack_link_->reset(config.ack_link);
  // Same fork stream id as the constructor so recycled draw sequences
  // match fresh ones.
  ack_mangler_->reset(config.ack_mangler, rng.fork(0x41434b));
  wire_tap = nullptr;
  recorder_ = nullptr;
  trace_conn_id_ = 0;
  client_dead_ = false;
  ack_stalled_ = false;
  stalled_ack_.reset();
}

void Path::send_data(Segment&& seg) {
#if PRR_TRACE_ENABLED
  if (recorder_ != nullptr) {
    uint16_t flags = 0;
    if (seg.is_retransmit) flags |= obs::kWireFlagRetransmit;
    if (seg.ece) flags |= obs::kWireFlagEce;
    if (seg.cwr) flags |= obs::kWireFlagCwr;
    if (seg.ect) flags |= obs::kWireFlagEct;
    if (seg.ce) flags |= obs::kWireFlagCe;
    if (seg.has_ts) flags |= obs::kWireFlagHasTs;
    recorder_->write(obs::make_record(
        sim_.now(), trace_conn_id_, obs::TraceType::kWireData,
        static_cast<uint8_t>(seg.sacks.size()), flags, seg.seq, seg.len,
        seg.rwnd));
  }
#endif
  if (wire_tap) wire_tap(seg, /*is_ack=*/false, sim_.now());
  data_link_->send(std::move(seg));
}

void Path::send_ack(Segment&& seg) {
  if (client_dead_) return;
  if (ack_stalled_) {
    stalled_ack_ = std::move(seg);  // newest ACK supersedes the held one
    return;
  }
#if PRR_TRACE_ENABLED
  if (recorder_ != nullptr) {
    recorder_->write(obs::make_record(
        sim_.now(), trace_conn_id_, obs::TraceType::kWireAck,
        static_cast<uint8_t>(seg.sacks.size()), 0, seg.ack, seg.len,
        seg.rwnd));
  }
#endif
  if (wire_tap) wire_tap(seg, /*is_ack=*/true, sim_.now());
  ack_mangler_->on_ack(std::move(seg));
}

void Path::set_ack_stall(bool on) {
  ack_stalled_ = on;
  if (!on && stalled_ack_.has_value()) {
    Segment held = std::move(*stalled_ack_);
    stalled_ack_.reset();
    send_ack(std::move(held));
  }
}

}  // namespace prr::net
