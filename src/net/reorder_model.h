// Reordering model: with probability p a segment is held for an extra
// delay, letting later segments overtake it. This reproduces the small
// forward-path reordering the paper found in the Internet (router
// load-balancing overtaking the last sub-MSS segment).
#pragma once

#include "net/segment.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace prr::net {

class ReorderModel {
 public:
  virtual ~ReorderModel() = default;
  // Extra delay to add to this segment's delivery (zero = in order).
  virtual sim::Time extra_delay(const Segment& seg) = 0;
};

class NoReorder final : public ReorderModel {
 public:
  sim::Time extra_delay(const Segment&) override { return sim::Time::zero(); }
};

class RandomReorder final : public ReorderModel {
 public:
  RandomReorder(double probability, sim::Time min_delay, sim::Time max_delay,
                sim::Rng rng)
      : p_(probability), min_(min_delay), max_(max_delay), rng_(rng) {}

  sim::Time extra_delay(const Segment&) override {
    if (!rng_.bernoulli(p_)) return sim::Time::zero();
    const double frac = rng_.uniform();
    return min_ + (max_ - min_) * frac;
  }

 private:
  double p_;
  sim::Time min_, max_;
  sim::Rng rng_;
};

}  // namespace prr::net
