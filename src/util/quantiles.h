// Exact sample-based quantile/percentile computation and a simple fixed-
// bucket histogram. Experiments collect full samples (millions of doubles
// fit easily in memory at our scale), so estimates are exact.
#pragma once

#include <cstddef>
#include <vector>

namespace prr::util {

class Samples {
 public:
  void add(double v) { values_.push_back(v); sorted_ = false; }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  double stddev() const;
  // q in [0, 1]; nearest-rank with linear interpolation. Empty -> 0.
  double quantile(double q) const;
  double percentile(double p) const { return quantile(p / 100.0); }
  // Fraction of samples satisfying pred-like threshold comparisons.
  double fraction_below(double threshold) const;
  double fraction_above(double threshold) const;
  double fraction_equal(double value) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

struct HistogramBucket {
  double lo = 0;
  double hi = 0;
  std::size_t count = 0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range values clamp to
// the end buckets (matching the paper's RTT-bucket plots).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double v);
  std::vector<HistogramBucket> buckets() const;
  std::size_t total() const { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace prr::util
