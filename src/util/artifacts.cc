#include "util/artifacts.h"

#include <cstdlib>
#include <filesystem>

namespace prr::util {

std::string artifact_dir() {
  const char* env = std::getenv("PRR_ARTIFACT_DIR");
  std::string dir = (env != nullptr && env[0] != '\0') ? env : "artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

std::string artifact_path(const std::string& filename) {
  return artifact_dir() + "/" + filename;
}

}  // namespace prr::util
