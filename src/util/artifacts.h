// Artifact routing for example/bench binaries that write files (traces,
// JSONL streams, diff dumps). Everything goes under one directory —
// $PRR_ARTIFACT_DIR when set, else ./artifacts — created on first use,
// so running tools from a source checkout never litters the repo root
// (CI's clean-tree check enforces this after the bench smoke).
#pragma once

#include <string>

namespace prr::util {

// The artifact directory (no trailing slash), created if missing.
std::string artifact_dir();

// artifact_dir() + "/" + filename.
std::string artifact_path(const std::string& filename);

}  // namespace prr::util
