// Fixed-layout FIFO over a power-of-two ring of default-constructed
// slots: Link's drop-tail queue and the scoreboard's segment records.
// Unlike std::deque (which allocates and frees ~512-byte blocks as the
// queue breathes), a ring at steady depth performs zero allocations —
// slots are moved out on pop and reset to a default-constructed T,
// releasing whatever the element owned. Random-access iterators support
// the scoreboard's binary searches; they are invalidated by growth,
// like a vector's.
#pragma once

#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace prr::util {

template <typename T>
class RingQueue {
 public:
  template <typename Q, typename V>
  class Iter {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = V*;
    using reference = V&;

    Iter() = default;
    Iter(Q* q, std::size_t i) : q_(q), i_(i) {}
    // iterator -> const_iterator conversion.
    operator Iter<const Q, const V>() const { return {q_, i_}; }

    reference operator*() const { return (*q_)[i_]; }
    pointer operator->() const { return &(*q_)[i_]; }
    reference operator[](difference_type n) const {
      return (*q_)[i_ + static_cast<std::size_t>(n)];
    }

    Iter& operator++() { ++i_; return *this; }
    Iter operator++(int) { Iter t = *this; ++i_; return t; }
    Iter& operator--() { --i_; return *this; }
    Iter operator--(int) { Iter t = *this; --i_; return t; }
    Iter& operator+=(difference_type n) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
      return *this;
    }
    Iter& operator-=(difference_type n) { return *this += -n; }
    friend Iter operator+(Iter it, difference_type n) { return it += n; }
    friend Iter operator+(difference_type n, Iter it) { return it += n; }
    friend Iter operator-(Iter it, difference_type n) { return it -= n; }
    friend difference_type operator-(const Iter& a, const Iter& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const Iter& a, const Iter& b) {
      return a.i_ <=> b.i_;
    }

   private:
    Q* q_ = nullptr;
    std::size_t i_ = 0;  // logical index from the front
  };

  using iterator = Iter<RingQueue, T>;
  using const_iterator = Iter<const RingQueue, const T>;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buf_.size(); }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }

  T& operator[](std::size_t i) { return buf_[wrap(head_ + i)]; }
  const T& operator[](std::size_t i) const { return buf_[wrap(head_ + i)]; }

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, size_}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size_}; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }
  T& back() { return buf_[wrap(head_ + size_ - 1)]; }
  const T& back() const { return buf_[wrap(head_ + size_ - 1)]; }

  // Moves the head element out and resets its slot.
  T pop_front() {
    T out = std::move(buf_[head_]);
    buf_[head_] = T{};
    head_ = wrap(head_ + 1);
    --size_;
    return out;
  }

  // Destroys the newest element (drop-tail).
  void drop_back() {
    buf_[wrap(head_ + size_ - 1)] = T{};
    --size_;
  }

  void clear() {
    while (size_ > 0) drop_back();
  }

 private:
  std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow() {
    const std::size_t fresh_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> fresh(fresh_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(fresh);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace prr::util
