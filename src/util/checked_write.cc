#include "util/checked_write.h"

#include <cstdio>

#include "obs/json.h"

namespace prr::util {

namespace {

// Shared tail of both writers: stream the body, then collapse every
// failure mode (short write, sticky error flag, failed flush-on-close)
// into one boolean so no caller can forget one of the three checks.
bool write_and_close(std::FILE* f, std::string_view body) {
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool clean = std::ferror(f) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && clean && closed;
}

}  // namespace

bool checked_write_file(const std::string& path, std::string_view body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  return write_and_close(f, body);
}

bool checked_write_json(const std::string& path, std::string_view body) {
  if (!obs::json_valid(body)) return false;
  return checked_write_file(path, body);
}

bool checked_append_line(const std::string& path, std::string_view line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  std::string buf(line);
  if (buf.empty() || buf.back() != '\n') buf.push_back('\n');
  return write_and_close(f, buf);
}

}  // namespace prr::util
