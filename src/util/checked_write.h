// Checked whole-file writers for machine-readable artifacts (BENCH_*.json,
// shard JSON, JSONL history lines, torture summaries). Every bench and
// gate used to hand-roll the same fopen/fwrite/ferror/fclose dance; a torn
// artifact (ENOSPC, a buffered tail lost at exit) must fail the producing
// tool, not surface later as unparseable JSON in a consumer. These helpers
// centralize that contract: they return false on ANY failure — open, short
// write, stream error, or fclose — and never leave a half-validated
// success path behind.
#pragma once

#include <string>
#include <string_view>

namespace prr::util {

// Writes `body` to `path` (truncating). Returns true iff every byte was
// durably handed to the OS (fwrite complete, no stream error, fclose
// clean). The body is not required to be JSON — the name records the
// dominant use — but see checked_write_json for the validating form.
bool checked_write_file(const std::string& path, std::string_view body);

// checked_write_file + a structural JSON validation of `body` first
// (obs::json_valid). Refusing to write malformed JSON at the producer
// keeps bench/json_gate a backstop instead of the first line of defense.
bool checked_write_json(const std::string& path, std::string_view body);

// Appends `line` to `path` (creating it if missing). A trailing newline
// is added when `line` does not end with one, so JSONL files stay one
// record per line. Returns false on any error — a torn append corrupts
// the whole JSONL history, so callers must treat false as fatal.
bool checked_append_line(const std::string& path, std::string_view line);

}  // namespace prr::util
