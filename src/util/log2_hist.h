// Log2-bucket histogram (moved here from obs so the stats layer can use
// it without depending on the observability registry). A sample v lands
// in bucket bit_width(v) (bucket 0 holds v == 0), i.e. bucket b spans
// [2^(b-1), 2^b). Record is a handful of arithmetic ops — no
// allocation, no search — which is what lets per-ACK cost, event-slice
// timings, and the bounded-stats sweep mode feed it from the hot path.
// Covers the full uint64 range in 65 buckets. Merge is a per-bucket sum,
// so shard merges are order-insensitive and bit-identical at any worker
// count.
#pragma once

#include <algorithm>
#include <cstdint>

namespace prr::util {

class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  static int bucket_of(uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  // Inclusive lower edge of bucket b.
  static uint64_t bucket_floor(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int b) const { return buckets_[b]; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Upper edge of the bucket containing the q-quantile (q in [0,1]) —
  // log2 resolution, good enough for "p99 is ~2-4us" statements.
  uint64_t approx_quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) {
        // Upper edge of bucket b, clamped to the observed max.
        const uint64_t edge =
            b >= 64 ? max_ : (uint64_t{1} << b) - 1;
        return std::min(edge, max_);
      }
    }
    return max_;
  }

  // q-quantile with linear interpolation across the ranks inside the
  // containing bucket, clamped to the observed [min, max]. Still log2
  // resolution between buckets, but smooth within one — the form the
  // episode tables and registry JSON report.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Same rank convention as approx_quantile, then spread the bucket's
    // occupants evenly across its value range and pick the rank's spot.
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (seen + buckets_[b] >= rank) {
        const double lo = static_cast<double>(bucket_floor(b));
        const double hi = b >= 64 ? static_cast<double>(max_)
                                  : static_cast<double>((uint64_t{1} << b) - 1);
        const double within =
            buckets_[b] == 1
                ? 0.0
                : static_cast<double>(rank - seen - 1) /
                      static_cast<double>(buckets_[b] - 1);
        const double v = lo + (hi - lo) * within;
        return std::clamp(v, static_cast<double>(min_),
                          static_cast<double>(max_));
      }
      seen += buckets_[b];
    }
    return static_cast<double>(max_);
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void merge(const Log2Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  void reset() { *this = Log2Histogram{}; }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace prr::util
