// Small vector with N elements of inline storage: the backing store for
// Segment::sacks (RFC 2018 caps wire SACK options at 3-4 blocks), so
// building, copying and moving a pure ACK never touches the heap. Spills
// to a heap buffer beyond N like a normal vector; moving a spilled
// vector steals the buffer, moving an inline one moves the elements.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace prr::util {

template <typename T, std::size_t N>
class InlineVector {
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVector() : data_(inline_ptr()) {}
  InlineVector(std::initializer_list<T> init) : InlineVector() {
    for (const T& v : init) push_back(v);
  }
  InlineVector(const InlineVector& other) : InlineVector() {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) {
      ::new (data_ + i) T(other.data_[i]);
    }
    size_ = other.size_;
  }
  InlineVector(InlineVector&& other) noexcept : InlineVector() {
    steal(other);
  }
  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (data_ + i) T(other.data_[i]);
      }
      size_ = other.size_;
    }
    return *this;
  }
  InlineVector& operator=(InlineVector&& other) noexcept {
    if (this != &other) {
      release();
      data_ = inline_ptr();
      capacity_ = N;
      size_ = 0;
      steal(other);
    }
    return *this;
  }
  ~InlineVector() { release(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  // True while the elements live in the inline buffer (no heap in play).
  bool is_inline() const { return data_ == inline_ptr(); }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }
  template <typename... CtorArgs>
  T& emplace_back(CtorArgs&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* p = ::new (data_ + size_) T(std::forward<CtorArgs>(args)...);
    ++size_;
    return *p;
  }
  void pop_back() {
    --size_;
    data_[size_].~T();
  }
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }
  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }
  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  friend bool operator==(const InlineVector& a, const InlineVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(storage_); }
  const T* inline_ptr() const { return reinterpret_cast<const T*>(storage_); }

  void grow(std::size_t n) {
    if (n < capacity_ * 2) n = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(n * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(static_cast<void*>(data_));
    data_ = fresh;
    capacity_ = n;
  }

  // Destroys elements and frees any heap buffer; leaves members stale
  // (callers reset them).
  void release() {
    clear();
    if (!is_inline()) ::operator delete(static_cast<void*>(data_));
  }

  // Precondition: *this is empty and inline. Leaves `other` empty.
  void steal(InlineVector& other) noexcept {
    static_assert(std::is_nothrow_move_constructible_v<T>);
    if (other.is_inline()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (data_ + i) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_ptr();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  T* data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  alignas(T) unsigned char storage_[N * sizeof(T)];
};

}  // namespace prr::util
