// Heap-allocation counting for tests and microbenchmarks. The counters
// are fed by global operator new/delete replacements that live in a
// separate translation unit (util/alloc_hooks.cc, target
// prr_alloc_hooks) linked ONLY into the test and microbench binaries —
// the simulator library and experiment binaries never pay for the
// atomic bumps. Binaries that do not link the hooks must not include
// this header (the accessors would be undefined symbols).
//
// Used to enforce the steady-state zero-allocation invariant of the
// per-ACK hot path (see DESIGN.md §7) and to report allocs/op next to
// ns/op in micro_perack_cost.
#pragma once

#include <cstdint>

namespace prr::util {

struct AllocCounts {
  uint64_t allocations = 0;  // operator new calls (all variants)
  uint64_t frees = 0;        // operator delete calls (all variants)
};

// Snapshot of the process-wide counters (relaxed loads; exact in
// single-threaded tests).
AllocCounts alloc_counts() noexcept;

// True when the counting hooks TU is linked in. Lets shared helpers
// degrade to "not measured" instead of reporting zero.
bool alloc_counting_enabled() noexcept;

}  // namespace prr::util
