#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace prr::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c])) << cell
         << " | ";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << "+";
    os << "-\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace prr::util
