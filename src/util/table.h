// Minimal fixed-width ASCII table printer used by every bench binary to
// emit paper-style tables (header row + aligned columns).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace prr::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with `precision` decimals.
  static std::string fmt(double v, int precision = 1);
  static std::string fmt_pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prr::util
