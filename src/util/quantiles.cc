#include "util/quantiles.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace prr::util {

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::min() const {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::quantile(double q) const {
  if (values_.empty()) return 0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::fraction_below(double threshold) const {
  if (values_.empty()) return 0;
  ensure_sorted();
  auto it = std::lower_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Samples::fraction_above(double threshold) const {
  if (values_.empty()) return 0;
  ensure_sorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(values_.end() - it) /
         static_cast<double>(values_.size());
}

double Samples::fraction_equal(double value) const {
  return 1.0 - fraction_below(value) - fraction_above(value);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double v) {
  std::ptrdiff_t idx =
      static_cast<std::ptrdiff_t>(std::floor((v - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::vector<HistogramBucket> Histogram::buckets() const {
  std::vector<HistogramBucket> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.push_back({lo_ + width_ * static_cast<double>(i),
                   lo_ + width_ * static_cast<double>(i + 1), counts_[i]});
  }
  return out;
}

}  // namespace prr::util
