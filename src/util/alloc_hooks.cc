// Global operator new/delete replacements that count every heap
// allocation and free. Linked only into test/microbench binaries (see
// util/alloc_counter.h). malloc/free-backed so the replacements stay
// self-contained; the sized and aligned variants all funnel through the
// same two counters.
#include "util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace prr::util {
namespace {

std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

AllocCounts alloc_counts() noexcept {
  return {g_allocations.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed)};
}

bool alloc_counting_enabled() noexcept { return true; }

}  // namespace prr::util

void* operator new(std::size_t size) {
  void* p = prr::util::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = prr::util::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return prr::util::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return prr::util::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = prr::util::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = prr::util::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { prr::util::counted_free(p); }
void operator delete[](void* p) noexcept { prr::util::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  prr::util::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  prr::util::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  prr::util::counted_free(p);
}
