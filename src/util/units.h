// Strong data-rate type plus byte-count helpers. Rates are bits/second
// internally; transmission-time math returns sim::Time.
#pragma once

#include <cstdint>
#include <compare>

#include "sim/time.h"

namespace prr::util {

class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bps(int64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(int64_t v) { return DataRate(v * 1000); }
  static constexpr DataRate mbps(double v) {
    return DataRate(static_cast<int64_t>(v * 1e6));
  }
  static constexpr DataRate gbps(double v) {
    return DataRate(static_cast<int64_t>(v * 1e9));
  }

  constexpr int64_t bits_per_second() const { return bps_; }
  constexpr double mbps_d() const { return static_cast<double>(bps_) / 1e6; }
  constexpr bool is_zero() const { return bps_ == 0; }

  // Serialization delay for `bytes` at this rate.
  constexpr sim::Time transmit_time(int64_t bytes) const {
    // ns = bits * 1e9 / bps; compute in long double-free integer math:
    // bits * 1'000'000'000 may overflow for huge values, so split.
    const int64_t bits = bytes * 8;
    const int64_t whole = bits / bps_;
    const int64_t rem = bits % bps_;
    return sim::Time::nanoseconds(whole * 1'000'000'000 +
                                  rem * 1'000'000'000 / bps_);
  }

  friend constexpr auto operator<=>(DataRate a, DataRate b) = default;

 private:
  explicit constexpr DataRate(int64_t bps) : bps_(bps) {}
  int64_t bps_ = 0;
};

}  // namespace prr::util
