// Small-buffer-optimized move-only callable: the event queue's
// replacement for std::function. Callables whose captures fit in the
// inline buffer (and are nothrow-move-constructible) are stored in
// place, so constructing, moving and destroying an event callback in
// the simulator hot path performs no heap allocation; oversized or
// throwing-move callables fall back to a single heap allocation,
// exactly like std::function. Invocation is one indirect call either
// way.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace prr::util {

template <typename Sig, std::size_t N = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t N>
class InlineFunction<R(Args...), N> {
 public:
  // True when callable F would be stored in the inline buffer (the
  // zero-allocation path). Exposed so tests can pin the spill boundary.
  template <typename F>
  static constexpr bool stores_inline_v =
      sizeof(F) <= N && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  template <typename F>
  InlineFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  R operator()(Args... args) {
    return ops_->invoke(&buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*move_destroy)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<F*>(p))(std::forward<Args>(args)...);
    }
    static void move_destroy(void* src, void* dst) noexcept {
      F* s = static_cast<F*>(src);
      ::new (dst) F(std::move(*s));
      s->~F();
    }
    static void destroy(void* p) noexcept { static_cast<F*>(p)->~F(); }
    static constexpr Ops ops{&invoke, &move_destroy, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* p) { return *static_cast<F**>(p); }
    static R invoke(void* p, Args&&... args) {
      return (*slot(p))(std::forward<Args>(args)...);
    }
    static void move_destroy(void* src, void* dst) noexcept {
      *static_cast<F**>(dst) = slot(src);
    }
    static void destroy(void* p) noexcept { delete slot(p); }
    static constexpr Ops ops{&invoke, &move_destroy, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (stores_inline_v<D>) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      static_assert(sizeof(D*) <= N);
      *reinterpret_cast<D**>(&buf_) = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move_destroy(&other.buf_, &buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[N];
  const Ops* ops_ = nullptr;
};

}  // namespace prr::util
