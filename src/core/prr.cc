#include "core/prr.h"

#include <algorithm>

namespace prr::core {

void PrrState::enter_recovery(uint64_t flight_size, uint64_t ssthresh,
                              uint32_t mss) {
  in_recovery_ = true;
  proportional_mode_ = true;
  mss_ = mss == 0 ? 1 : mss;
  recover_fs_ = std::max<uint64_t>(flight_size, 1);
  ssthresh_ = ssthresh;
  prr_delivered_ = 0;
  prr_out_ = 0;
  cwnd_ = ssthresh;
}

uint64_t PrrState::on_ack(uint64_t delivered_bytes, uint64_t pipe_bytes) {
  prr_delivered_ += delivered_bytes;

  int64_t sndcnt = 0;
  const int64_t out = static_cast<int64_t>(prr_out_);
  if (pipe_bytes > ssthresh_) {
    // Proportional part: pace the window reduction across the ACK clock
    // so that when prr_delivered -> RecoverFS, prr_out -> ssthresh.
    // CEIL(prr_delivered * ssthresh / RecoverFS) - prr_out.
    proportional_mode_ = true;
    const __int128 num = static_cast<__int128>(prr_delivered_) * ssthresh_;
    const uint64_t target = static_cast<uint64_t>(
        (num + recover_fs_ - 1) / recover_fs_);
    sndcnt = static_cast<int64_t>(target) - out;
  } else {
    // Reduction bound: pipe has fallen to/below ssthresh (heavy loss or
    // application stall); stop reducing and rebuild pipe toward ssthresh.
    proportional_mode_ = false;
    const int64_t room =
        static_cast<int64_t>(ssthresh_) - static_cast<int64_t>(pipe_bytes);
    int64_t limit = 0;
    switch (bound_) {
      case ReductionBound::kSlowStart:
        // MAX(prr_delivered - prr_out, DeliveredData) + MSS: repay banked
        // sending opportunities, then grow no faster than slow start.
        limit = std::max(static_cast<int64_t>(prr_delivered_) - out,
                         static_cast<int64_t>(delivered_bytes)) +
                static_cast<int64_t>(mss_);
        break;
      case ReductionBound::kConservative:
        // Strict packet conservation: send only as much as was delivered.
        limit = static_cast<int64_t>(prr_delivered_) - out;
        break;
      case ReductionBound::kUnlimited:
        limit = room;  // fill the hole at once (bursty)
        break;
    }
    sndcnt = std::min(room, limit);
  }

  sndcnt = std::max<int64_t>(sndcnt, 0);
  cwnd_ = pipe_bytes + static_cast<uint64_t>(sndcnt);
  return static_cast<uint64_t>(sndcnt);
}

}  // namespace prr::core
