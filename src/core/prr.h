// Proportional Rate Reduction (Dukkipati, Mathis, Cheng, Ghobadi,
// IMC 2011; later RFC 6937) as a standalone, dependency-free module.
//
// PRR regulates how many bytes a TCP sender may transmit per incoming ACK
// during fast recovery so that (1) retransmissions are paced smoothly
// across the ACK clock instead of in bursts or after a half-RTT silence,
// and (2) the congestion window converges to exactly the ssthresh the
// congestion-control algorithm chose.
//
// The caller (a TCP stack or, in this repo, src/tcp/recovery/prr.cc)
// provides two inputs per ACK:
//   - DeliveredData: newly delivered bytes this ACK indicates,
//     delta(snd.una) + delta(SACKed) — NOT the count of ACKs received;
//   - pipe: the RFC 3517 estimate of bytes outstanding in the network;
// and reports every (re)transmission via on_data_sent(). The module is a
// pure state machine: no clocks, no I/O, no allocation after entry.
//
// Usage:
//   PrrState prr;
//   prr.enter_recovery(flight_size, ssthresh_from_cc, mss);
//   ... per ACK in recovery:
//   uint64_t sndcnt = prr.on_ack(delivered_bytes, pipe_bytes);
//   // transmit up to sndcnt bytes (retransmissions and/or new data)
//   prr.on_data_sent(bytes_actually_sent);
//   ... at the end of recovery: cwnd = prr.ssthresh().
#pragma once

#include <cstdint>

namespace prr::core {

// Reduction-bound variants evaluated in the IETF draft (the paper ships
// SSRB; see §4 footnote 3 — "PRR" in the paper means PRR-SSRB):
//   kSlowStart    (SSRB): when pipe < ssthresh, grow like slow start,
//                 +1 MSS per delivered MSS, after repaying banked sends.
//   kConservative (CRB): strict packet conservation; never send more than
//                 has been delivered. Most conservative, can be slow.
//   kUnlimited    (UB): no bound below ssthresh — send whatever rebuilds
//                 pipe to ssthresh at once (bursty, RFC 3517-like).
enum class ReductionBound { kSlowStart, kConservative, kUnlimited };

class PrrState {
 public:
  explicit PrrState(ReductionBound bound = ReductionBound::kSlowStart)
      : bound_(bound) {}

  // Begins a recovery episode. `flight_size` is snd.nxt - snd.una at
  // entry (RecoverFS), `ssthresh` the target window chosen by congestion
  // control, both in bytes.
  void enter_recovery(uint64_t flight_size, uint64_t ssthresh, uint32_t mss);

  // Per-ACK step (Algorithm 2). Returns sndcnt: how many bytes the sender
  // may transmit in response to this ACK. Also records the result so
  // cwnd() reflects pipe + sndcnt.
  uint64_t on_ack(uint64_t delivered_bytes, uint64_t pipe_bytes);

  // Reports bytes actually transmitted (new data or retransmission) while
  // in recovery; maintains prr_out.
  void on_data_sent(uint64_t bytes) { prr_out_ += bytes; }

  // Congestion window to install when recovery completes.
  uint64_t exit_cwnd() const { return ssthresh_; }

  // cwnd implied by the last on_ack (pipe + sndcnt).
  uint64_t cwnd() const { return cwnd_; }

  bool in_recovery() const { return in_recovery_; }
  void leave_recovery() { in_recovery_ = false; }

  // Observable state (the paper's three new state variables).
  uint64_t prr_delivered() const { return prr_delivered_; }
  uint64_t prr_out() const { return prr_out_; }
  uint64_t recover_fs() const { return recover_fs_; }
  uint64_t ssthresh() const { return ssthresh_; }
  ReductionBound bound() const { return bound_; }

  // True while the last on_ack used the proportional part (pipe >
  // ssthresh); false means the slow-start / reduction-bound part ran.
  bool in_proportional_mode() const { return proportional_mode_; }

 private:
  ReductionBound bound_;
  bool in_recovery_ = false;
  bool proportional_mode_ = true;
  uint32_t mss_ = 1;
  uint64_t recover_fs_ = 0;
  uint64_t ssthresh_ = 0;
  uint64_t prr_delivered_ = 0;
  uint64_t prr_out_ = 0;
  uint64_t cwnd_ = 0;
};

}  // namespace prr::core
