// Pcap capture of simulated traffic: writes classic little-endian pcap
// (Ethernet + IPv4 + TCP) so traces open directly in Wireshark or
// tcptrace. Sequence numbers are encoded through the wrap-aware 32-bit
// SeqNum type; SACK blocks (kind 5, with DSACK-first ordering), and the
// timestamp option (kind 8) are emitted as real TCP options.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "net/segment.h"
#include "sim/time.h"

namespace prr::obs {
class Instrument;
}

namespace prr::trace {

class PcapWriter {
 public:
  struct Config {
    // Payload bytes actually stored per packet (pcap snaplen semantics:
    // orig_len records the true size).
    uint32_t snap_payload = 64;
    uint32_t sender_ip = 0x0A000001;    // 10.0.0.1
    uint32_t receiver_ip = 0x0A000002;  // 10.0.0.2
    uint16_t sender_port = 443;
    uint16_t receiver_port = 40000;
  };

  explicit PcapWriter(std::ostream& os);  // defaults (defined below)
  PcapWriter(std::ostream& os, Config config);

  // Appends one captured packet. `from_sender` selects address/port
  // orientation (data flows sender->receiver; ACKs the reverse).
  void record(const net::Segment& seg, sim::Time at, bool from_sender);

  // Subscribes to the connection's wire-level events via its
  // Instrument: every data segment and ACK that enters the network is
  // captured. The writer must outlive the instrumented traffic.
  void attach(obs::Instrument& instrument);

  uint64_t packets_written() const { return packets_; }

 private:
  std::ostream& os_;
  Config config_;
  uint64_t packets_ = 0;
};

inline PcapWriter::PcapWriter(std::ostream& os)
    : PcapWriter(os, Config{}) {}

}  // namespace prr::trace
