#include "trace/timeseq.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace prr::trace {

void TimeSeqTrace::attach(sim::Simulator& sim, tcp::Connection& conn) {
  tcp::Sender& snd = conn.sender();
  snd.on_transmit_hook = [this, &sim](uint64_t seq, uint32_t len,
                                      bool retx) {
    record({sim.now(), retx ? EventKind::kRetransmit : EventKind::kSend,
            seq, seq + len});
  };
  snd.on_una_advance_hook = [this, &sim](uint64_t una) {
    record({sim.now(), EventKind::kUnaAdvance, una, una});
  };
  snd.on_ack_hook = [this, &sim](const net::Segment& ack) {
    for (const auto& blk : ack.sacks) {
      record({sim.now(), EventKind::kSack, blk.start, blk.end});
    }
  };
}

void TimeSeqTrace::write_csv(std::ostream& os) const {
  os << "time_ms,kind,seq_lo,seq_hi\n";
  for (const auto& e : events_) {
    const char* k = "";
    switch (e.kind) {
      case EventKind::kSend: k = "send"; break;
      case EventKind::kRetransmit: k = "retransmit"; break;
      case EventKind::kUnaAdvance: k = "una"; break;
      case EventKind::kSack: k = "sack"; break;
    }
    os << e.at.ms_d() << "," << k << "," << e.seq_lo << "," << e.seq_hi
       << "\n";
  }
}

std::string TimeSeqTrace::render_ascii(int width, sim::Time slot) const {
  if (events_.empty()) return "(empty trace)\n";
  uint64_t max_seq = 1;
  sim::Time max_t = sim::Time::zero();
  for (const auto& e : events_) {
    max_seq = std::max(max_seq, e.seq_hi);
    max_t = std::max(max_t, e.at);
  }
  const int rows = static_cast<int>(max_t / slot) + 1;
  const double bytes_per_col = static_cast<double>(max_seq) / width;

  std::vector<std::string> grid(rows, std::string(width, ' '));
  auto col_of = [&](uint64_t seq) {
    int c = static_cast<int>(static_cast<double>(seq) / bytes_per_col);
    return std::clamp(c, 0, width - 1);
  };
  auto row_of = [&](sim::Time t) {
    int r = static_cast<int>(t / slot);
    return std::clamp(r, 0, rows - 1);
  };
  // Paint in priority order: SACK < una < send < retransmit.
  auto paint = [&](const TraceEvent& e, char ch) {
    const int r = row_of(e.at);
    const int lo = col_of(e.seq_lo);
    const int hi = std::max(lo, e.kind == EventKind::kUnaAdvance
                                    ? lo
                                    : col_of(e.seq_hi - 1));
    for (int c = lo; c <= hi; ++c) grid[r][c] = ch;
  };
  for (const auto& e : events_)
    if (e.kind == EventKind::kSack) paint(e, 's');
  for (const auto& e : events_)
    if (e.kind == EventKind::kUnaAdvance) paint(e, '-');
  for (const auto& e : events_)
    if (e.kind == EventKind::kSend) paint(e, '#');
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) paint(e, 'R');

  std::ostringstream os;
  os << "time ->  sequence (cols = " << static_cast<uint64_t>(bytes_per_col)
     << " bytes each); '#'=send 'R'=retransmit '-'=snd.una 's'=SACK\n";
  for (int r = 0; r < rows; ++r) {
    os << (slot * r).ms() << "ms\t|" << grid[r] << "|\n";
  }
  return os.str();
}

std::vector<TraceEvent> TimeSeqTrace::retransmits() const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) out.push_back(e);
  return out;
}

sim::Time TimeSeqTrace::time_of_last_retransmit() const {
  sim::Time t = sim::Time::zero();
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) t = std::max(t, e.at);
  return t;
}

sim::Time TimeSeqTrace::longest_send_gap(sim::Time from, sim::Time to) const {
  sim::Time prev = from;
  sim::Time longest = sim::Time::zero();
  for (const auto& e : events_) {
    if (e.kind != EventKind::kSend && e.kind != EventKind::kRetransmit)
      continue;
    if (e.at < from || e.at > to) continue;
    longest = std::max(longest, e.at - prev);
    prev = e.at;
  }
  longest = std::max(longest, to - prev);
  return longest;
}

int TimeSeqTrace::max_burst(sim::Time window) const {
  std::vector<sim::Time> sends;
  for (const auto& e : events_) {
    if (e.kind == EventKind::kSend || e.kind == EventKind::kRetransmit)
      sends.push_back(e.at);
  }
  std::sort(sends.begin(), sends.end());
  int best = 0;
  for (std::size_t i = 0; i < sends.size(); ++i) {
    std::size_t j = i;
    while (j < sends.size() && sends[j] - sends[i] <= window) ++j;
    best = std::max(best, static_cast<int>(j - i));
  }
  return best;
}

}  // namespace prr::trace
