#include "trace/timeseq.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/instrument.h"

namespace prr::trace {

void TimeSeqTrace::attach(obs::Instrument& instrument) {
  instrument.recorder().add_listener([this](const obs::TraceRecord& r) {
    const sim::Time at = sim::Time::nanoseconds(r.at_ns);
    switch (r.type) {
      case obs::TraceType::kTransmit:
        record({at, r.a != 0 ? EventKind::kRetransmit : EventKind::kSend,
                r.f[0], r.f[0] + r.f[1]});
        break;
      case obs::TraceType::kUnaAdvance:
        record({at, EventKind::kUnaAdvance, r.f[0], r.f[0]});
        break;
      case obs::TraceType::kSackSeen:
        // Plain SACK blocks only; DSACK reports (a == 1) are not part of
        // the time-sequence picture.
        if (r.a == 0) record({at, EventKind::kSack, r.f[0], r.f[1]});
        break;
      default:
        break;
    }
  });
}

void TimeSeqTrace::write_csv(std::ostream& os) const {
  os << "time_ms,kind,seq_lo,seq_hi\n";
  for (const auto& e : events_) {
    const char* k = "";
    switch (e.kind) {
      case EventKind::kSend: k = "send"; break;
      case EventKind::kRetransmit: k = "retransmit"; break;
      case EventKind::kUnaAdvance: k = "una"; break;
      case EventKind::kSack: k = "sack"; break;
    }
    os << e.at.ms_d() << "," << k << "," << e.seq_lo << "," << e.seq_hi
       << "\n";
  }
}

std::string TimeSeqTrace::render_ascii(int width, sim::Time slot) const {
  if (events_.empty()) return "(empty trace)\n";
  uint64_t max_seq = 1;
  sim::Time max_t = sim::Time::zero();
  for (const auto& e : events_) {
    max_seq = std::max(max_seq, e.seq_hi);
    max_t = std::max(max_t, e.at);
  }
  const int rows = static_cast<int>(max_t / slot) + 1;
  const double bytes_per_col = static_cast<double>(max_seq) / width;

  std::vector<std::string> grid(rows, std::string(width, ' '));
  auto col_of = [&](uint64_t seq) {
    int c = static_cast<int>(static_cast<double>(seq) / bytes_per_col);
    return std::clamp(c, 0, width - 1);
  };
  auto row_of = [&](sim::Time t) {
    int r = static_cast<int>(t / slot);
    return std::clamp(r, 0, rows - 1);
  };
  // Paint in priority order: SACK < una < send < retransmit.
  auto paint = [&](const TraceEvent& e, char ch) {
    const int r = row_of(e.at);
    const int lo = col_of(e.seq_lo);
    const int hi = std::max(lo, e.kind == EventKind::kUnaAdvance
                                    ? lo
                                    : col_of(e.seq_hi - 1));
    for (int c = lo; c <= hi; ++c) grid[r][c] = ch;
  };
  for (const auto& e : events_)
    if (e.kind == EventKind::kSack) paint(e, 's');
  for (const auto& e : events_)
    if (e.kind == EventKind::kUnaAdvance) paint(e, '-');
  for (const auto& e : events_)
    if (e.kind == EventKind::kSend) paint(e, '#');
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) paint(e, 'R');

  std::ostringstream os;
  os << "time ->  sequence (cols = " << static_cast<uint64_t>(bytes_per_col)
     << " bytes each); '#'=send 'R'=retransmit '-'=snd.una 's'=SACK\n";
  for (int r = 0; r < rows; ++r) {
    os << (slot * r).ms() << "ms\t|" << grid[r] << "|\n";
  }
  return os.str();
}

std::vector<TraceEvent> TimeSeqTrace::retransmits() const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) out.push_back(e);
  return out;
}

sim::Time TimeSeqTrace::time_of_last_retransmit() const {
  sim::Time t = sim::Time::zero();
  for (const auto& e : events_)
    if (e.kind == EventKind::kRetransmit) t = std::max(t, e.at);
  return t;
}

sim::Time TimeSeqTrace::longest_send_gap(sim::Time from, sim::Time to) const {
  sim::Time prev = from;
  sim::Time longest = sim::Time::zero();
  for (const auto& e : events_) {
    if (e.kind != EventKind::kSend && e.kind != EventKind::kRetransmit)
      continue;
    if (e.at < from || e.at > to) continue;
    longest = std::max(longest, e.at - prev);
    prev = e.at;
  }
  longest = std::max(longest, to - prev);
  return longest;
}

int TimeSeqTrace::max_burst(sim::Time window) const {
  std::vector<sim::Time> sends;
  for (const auto& e : events_) {
    if (e.kind == EventKind::kSend || e.kind == EventKind::kRetransmit)
      sends.push_back(e.at);
  }
  std::sort(sends.begin(), sends.end());
  int best = 0;
  for (std::size_t i = 0; i < sends.size(); ++i) {
    std::size_t j = i;
    while (j < sends.size() && sends[j] - sends[i] <= window) ++j;
    best = std::max(best, static_cast<int>(j - i));
  }
  return best;
}

}  // namespace prr::trace
