// Time-sequence trace capture and rendering, the simulator's equivalent
// of the paper's packet-trace figures (Figs 2-4): original transmissions,
// retransmissions, snd.una advances, and SACK arrivals over time, with a
// CSV writer and an ASCII renderer for terminal inspection.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace prr::obs {
class Instrument;
}

namespace prr::trace {

enum class EventKind {
  kSend,        // original data transmission
  kRetransmit,  // retransmission
  kUnaAdvance,  // cumulative ACK progress at the sender
  kSack,        // SACK block reported to the sender
};

struct TraceEvent {
  sim::Time at;
  EventKind kind;
  uint64_t seq_lo = 0;  // byte range (for una advance: new snd.una in lo)
  uint64_t seq_hi = 0;
};

class TimeSeqTrace {
 public:
  // Subscribes to the connection's flight recorder via its Instrument:
  // kTransmit, kUnaAdvance, and kSackSeen records become TraceEvents as
  // they are written. The trace must outlive the instrumented traffic.
  // (Requires a tracing-enabled build — with PRR_TRACING=OFF the
  // recorder receives no sender records and the trace stays empty.)
  void attach(obs::Instrument& instrument);

  void record(TraceEvent e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }

  // CSV: time_ms,kind,seq_lo,seq_hi
  void write_csv(std::ostream& os) const;

  // ASCII time-sequence plot: rows are time slots, columns sequence
  // ranges; '#' original send, 'R' retransmit, '-' cumulative ACK level,
  // 's' SACKed range.
  std::string render_ascii(int width = 72, sim::Time slot =
                               sim::Time::milliseconds(20)) const;

  // Convenience analytics used by tests and benches.
  std::vector<TraceEvent> retransmits() const;
  sim::Time time_of_last_retransmit() const;
  // Longest gap between consecutive sender transmissions inside [from,to]
  // (detects the RFC 3517 half-RTT silence).
  sim::Time longest_send_gap(sim::Time from, sim::Time to) const;
  // Maximum number of transmissions within `window` of each other
  // (burst detection).
  int max_burst(sim::Time window = sim::Time::milliseconds(1)) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace prr::trace
