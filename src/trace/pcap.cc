#include "trace/pcap.h"

#include <algorithm>
#include <ostream>

#include "net/path.h"
#include "obs/instrument.h"
#include "tcp/seqnum.h"

namespace prr::trace {

namespace {

// Little-endian writers (pcap classic format is host-endian; we fix LE).
void le16(std::vector<uint8_t>& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
}
void le32(std::vector<uint8_t>& b, uint32_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v >> 16));
  b.push_back(static_cast<uint8_t>(v >> 24));
}
// Network byte order for the packet contents.
void be16(std::vector<uint8_t>& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v));
}
void be32(std::vector<uint8_t>& b, uint32_t v) {
  b.push_back(static_cast<uint8_t>(v >> 24));
  b.push_back(static_cast<uint8_t>(v >> 16));
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v));
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& os, Config config)
    : os_(os), config_(config) {
  std::vector<uint8_t> hdr;
  le32(hdr, 0xA1B2C3D4);  // magic, microsecond timestamps
  le16(hdr, 2);           // version major
  le16(hdr, 4);           // version minor
  le32(hdr, 0);           // thiszone
  le32(hdr, 0);           // sigfigs
  le32(hdr, 65535);       // snaplen
  le32(hdr, 1);           // LINKTYPE_ETHERNET
  os_.write(reinterpret_cast<const char*>(hdr.data()),
            static_cast<std::streamsize>(hdr.size()));
}

void PcapWriter::record(const net::Segment& seg, sim::Time at,
                        bool from_sender) {
  // --- TCP options ---
  std::vector<uint8_t> opts;
  if (seg.has_ts) {
    opts.push_back(1);  // NOP padding for 4-byte alignment
    opts.push_back(1);
    opts.push_back(8);   // kind: timestamp
    opts.push_back(10);  // length
    be32(opts, seg.tsval);
    be32(opts, seg.tsecr);
  }
  if (!seg.sacks.empty() || seg.dsack.has_value()) {
    std::vector<net::SackBlock> blocks;
    if (seg.dsack) blocks.push_back(*seg.dsack);  // DSACK reported first
    for (const auto& s : seg.sacks) {
      if (blocks.size() >= 4) break;  // TCP option space limit
      blocks.push_back(s);
    }
    opts.push_back(1);  // NOPs for alignment
    opts.push_back(1);
    opts.push_back(5);  // kind: SACK
    opts.push_back(static_cast<uint8_t>(2 + 8 * blocks.size()));
    for (const auto& blk : blocks) {
      be32(opts, tcp::SeqNum::from_u64(blk.start).value());
      be32(opts, tcp::SeqNum::from_u64(blk.end).value());
    }
  }
  while (opts.size() % 4 != 0) opts.push_back(1);  // pad to 32-bit words

  const uint32_t payload_full = seg.len;
  const uint32_t payload_stored =
      std::min(payload_full, config_.snap_payload);
  const uint32_t tcp_len = 20 + static_cast<uint32_t>(opts.size());
  const uint32_t ip_len_full = 20 + tcp_len + payload_full;

  std::vector<uint8_t> pkt;
  // Ethernet: synthetic MACs encode direction.
  const uint8_t src_mac = from_sender ? 0x01 : 0x02;
  const uint8_t dst_mac = from_sender ? 0x02 : 0x01;
  for (int i = 0; i < 5; ++i) pkt.push_back(0x02);
  pkt.push_back(dst_mac);
  for (int i = 0; i < 5; ++i) pkt.push_back(0x02);
  pkt.push_back(src_mac);
  be16(pkt, 0x0800);  // IPv4

  // IPv4 header (no checksum; analyzers accept zero).
  pkt.push_back(0x45);  // version 4, IHL 5
  pkt.push_back(0);
  be16(pkt, static_cast<uint16_t>(std::min<uint32_t>(ip_len_full, 65535)));
  be16(pkt, static_cast<uint16_t>(packets_ & 0xFFFF));  // IP id
  be16(pkt, 0x4000);                                    // DF
  pkt.push_back(64);  // TTL
  pkt.push_back(6);   // TCP
  be16(pkt, 0);       // checksum
  be32(pkt, from_sender ? config_.sender_ip : config_.receiver_ip);
  be32(pkt, from_sender ? config_.receiver_ip : config_.sender_ip);

  // TCP header: 32-bit wrap-aware wire sequence numbers.
  be16(pkt, from_sender ? config_.sender_port : config_.receiver_port);
  be16(pkt, from_sender ? config_.receiver_port : config_.sender_port);
  be32(pkt, tcp::SeqNum::from_u64(seg.seq).value());
  be32(pkt, tcp::SeqNum::from_u64(seg.ack).value());
  pkt.push_back(static_cast<uint8_t>((tcp_len / 4) << 4));  // data offset
  pkt.push_back(0x10);  // flags: ACK
  be16(pkt, static_cast<uint16_t>(
                std::min<uint64_t>(seg.rwnd / 256, 65535)));  // scaled-ish
  be16(pkt, 0);  // checksum
  be16(pkt, 0);  // urgent
  pkt.insert(pkt.end(), opts.begin(), opts.end());
  pkt.insert(pkt.end(), payload_stored, 0);  // zeroed payload sample

  // Pcap record header.
  std::vector<uint8_t> rec;
  le32(rec, static_cast<uint32_t>(at.us() / 1'000'000));  // ts_sec
  le32(rec, static_cast<uint32_t>(at.us() % 1'000'000));  // ts_usec
  le32(rec, static_cast<uint32_t>(pkt.size()));           // incl_len
  le32(rec, static_cast<uint32_t>(pkt.size() +
                                  (payload_full - payload_stored)));
  os_.write(reinterpret_cast<const char*>(rec.data()),
            static_cast<std::streamsize>(rec.size()));
  os_.write(reinterpret_cast<const char*>(pkt.data()),
            static_cast<std::streamsize>(pkt.size()));
  ++packets_;
}

void PcapWriter::attach(obs::Instrument& instrument) {
  instrument.add_wire_listener(
      [this](const net::Segment& seg, bool is_ack, sim::Time at) {
        record(seg, at, !is_ack);
      });
}

}  // namespace prr::trace
