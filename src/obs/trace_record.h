// Flight-recorder record: one fixed-size, trivially-copyable cell of the
// per-connection trace ring (obs/flight_recorder.h). Every interesting
// transition in the simulator — CA-state changes, per-ACK PRR decisions,
// (re)transmissions, RTO fires, undo events, timer schedule/fire/cancel,
// fault-injector actions, wire-level segments, invariant violations — is
// one 64-byte record: a nanosecond timestamp, the connection id, a type
// tag, two small scalar args and six 64-bit payload words whose meaning
// is per-type (documented on the enum). Fixed layout keeps the hot-path
// write a handful of stores and lets the ring be preallocated once.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "sim/time.h"

namespace prr::obs {

enum class TraceType : uint8_t {
  // a = old TcpState, b = new TcpState;
  // f = {cwnd, ssthresh, snd_una, snd_nxt}.
  kStateChange = 0,
  // Per-ACK decision point, recorded after the ACK is fully processed.
  // a = TcpState; f = {ack, cwnd, pipe, ssthresh, delivered, snd_nxt}.
  kAck,
  // PRR internals for an ACK processed during PRR fast recovery.
  // a = 1 if the proportional part ran (pipe > ssthresh), b = bound;
  // f = {prr_delivered, prr_out, recover_fs, prr_ssthresh, cwnd}.
  kPrr,
  // a = 1 for retransmission, b = TcpState;
  // f = {seq, len, cwnd, snd_nxt}.
  kTransmit,
  // f = {new snd_una}.
  kUnaAdvance,
  // One SACK block reported to the sender. a = 1 for a DSACK report;
  // f = {start, end}.
  kSackSeen,
  // a = 1 when triggered via early retransmit; b = mss;
  // f = {flight, ssthresh, pipe, prior_cwnd, recovery_point}.
  kEnterRecovery,
  // f = {cwnd_after_exit, pipe, retransmits_during, bytes_sent_during,
  // cwnd_at_exit (pre-adjustment), max_burst_segments}.
  kExitRecovery,
  // a = TcpState when the timer hit; f = {snd_una, snd_nxt, cwnd,
  // backoff_count, rto_ns, max_burst_segments (when interrupting
  // recovery, else 0)}.
  kRtoFired,
  // Congestion-state reversion. a = 0 for DSACK/Eifel undo in recovery,
  // 1 for a spurious-RTO (F-RTO/Eifel) undo; f = {cwnd, ssthresh,
  // pipe_at_exit, max_burst_segments} (f[2], f[3] only for a = 0).
  kUndo,
  // Connection aborted (max RTO backoffs exceeded). f = {snd_una,
  // snd_nxt}.
  kAbort,
  // Loss-detection timer activity. a = timer id (0 = RTO, 1 = early-
  // retransmit delay, 2 = TLP probe, 3 = pacing); f = {expiry_ns}.
  kTimerSchedule,
  kTimerFire,
  kTimerCancel,
  // Fault-injector action. a = net::FaultKind; f = {duration_ns,
  // bit-cast scale double, queue_limit_packets}.
  kFault,
  // Wire-level segment entering the network (data direction).
  // a = SACK-block count, b = flag bits (1 retransmit, 2 ece, 4 cwr,
  // 8 ect, 16 ce, 32 has_ts); f = {seq, len, rwnd}.
  kWireData,
  // Same, ACK direction. f = {ack, len, rwnd}.
  kWireAck,
  // Invariant checker fired. a = tcp::InvariantKind.
  kInvariant,
  // SACK/DSACK evidence showed one or more retransmissions were
  // themselves lost (RFC 6675 rescue detection on this ACK).
  // f = {detected, fast_detected} — counts for this ACK only.
  kLostRetransmit,
  // Sender decided the receiver's SACK state is untrustworthy (head of
  // window SACKed at RTO: reneging or a false SACK) and forgot all SACK
  // marks. f = {snd_una, bytes_forgotten}.
  kSackReneg,
  // Live-service control plane (DESIGN.md §13); conn = snapshot window
  // index, at_ns = arrival-clock time of the window's end.
  // Drift-detector alarm: a = drift series id, b = arm index;
  // f = {first_conn_id, conns_in_window, bit-cast observed value,
  //      bit-cast detector statistic, bit-cast threshold}.
  kServiceAlert,
  // Promote/hold/rollback transition: a = action (0 hold, 1 promote,
  // 2 rollback), b = arm index; f = {n_windows, bit-cast mean delta of
  // the primary metric, bit-cast always-valid p, bit-cast CS lower,
  // bit-cast CS upper}.
  kServiceDecision,
  kCount,
};

const char* to_string(TraceType t);

// kWireData flag bits stored in TraceRecord::b.
inline constexpr uint16_t kWireFlagRetransmit = 1;
inline constexpr uint16_t kWireFlagEce = 2;
inline constexpr uint16_t kWireFlagCwr = 4;
inline constexpr uint16_t kWireFlagEct = 8;
inline constexpr uint16_t kWireFlagCe = 16;
inline constexpr uint16_t kWireFlagHasTs = 32;

struct TraceRecord {
  int64_t at_ns = 0;
  uint32_t conn = 0;
  TraceType type = TraceType::kStateChange;
  uint8_t a = 0;
  uint16_t b = 0;
  uint64_t f[6] = {0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(TraceRecord) == 64, "one cache line per record");
static_assert(std::is_trivially_copyable_v<TraceRecord>);

inline TraceRecord make_record(sim::Time at, uint32_t conn, TraceType type,
                               uint8_t a = 0, uint16_t b = 0,
                               uint64_t f0 = 0, uint64_t f1 = 0,
                               uint64_t f2 = 0, uint64_t f3 = 0,
                               uint64_t f4 = 0, uint64_t f5 = 0) {
  TraceRecord r;
  r.at_ns = at.ns();
  r.conn = conn;
  r.type = type;
  r.a = a;
  r.b = b;
  r.f[0] = f0;
  r.f[1] = f1;
  r.f[2] = f2;
  r.f[3] = f3;
  r.f[4] = f4;
  r.f[5] = f5;
  return r;
}

// Human-readable one-liner ("12.345ms conn 7 ack cwnd=14608 pipe=...").
// For terminal forensics (examples/replay_quarantine); the machine form
// is the Perfetto export (obs/perfetto.h).
std::string describe(const TraceRecord& r);

}  // namespace prr::obs
