#include "obs/perfetto.h"

#include <cstdio>
#include <set>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace prr::obs {

namespace {

constexpr int kPid = 1;

std::string ts_us(int64_t at_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(at_ns) / 1e3);
  return buf;
}

void event_prefix(std::string& out, const char* ph, int pid,
                  const TraceRecord& r, const std::string& name) {
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(r.conn);
  out += ",\"ts\":" + ts_us(r.at_ns);
  out += ",\"name\":" + json_quote(name);
}

void counter_event(std::string& out, int pid, const TraceRecord& r,
                   const std::string& track, const char* k0, uint64_t v0,
                   const char* k1, uint64_t v1, const char* k2 = nullptr,
                   uint64_t v2 = 0) {
  event_prefix(out, "C", pid, r, track);
  out += ",\"args\":{\"";
  out += k0;
  out += "\":" + std::to_string(v0) + ",\"";
  out += k1;
  out += "\":" + std::to_string(v1);
  if (k2 != nullptr) {
    out += ",\"";
    out += k2;
    out += "\":" + std::to_string(v2);
  }
  out += "}},\n";
}

void instant_event(std::string& out, int pid, const TraceRecord& r,
                   const std::string& name) {
  event_prefix(out, "i", pid, r, name);
  out += ",\"s\":\"t\",\"args\":{\"detail\":" + json_quote(describe(r)) +
         "}},\n";
}

}  // namespace

void perfetto_append_process(std::string& out,
                             const std::vector<TraceRecord>& records,
                             int pid, const std::string& process_name) {
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":" +
         json_quote(process_name) + "}},\n";

  // One thread_name metadata event per connection seen.
  std::set<uint32_t> conns;
  for (const TraceRecord& r : records) conns.insert(r.conn);
  for (uint32_t conn : conns) {
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(conn) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"conn " +
           std::to_string(conn) + "\"}},\n";
  }

  for (const TraceRecord& r : records) {
    const std::string conn_s = std::to_string(r.conn);
    switch (r.type) {
      case TraceType::kAck:
        counter_event(out, pid, r, "conn" + conn_s + " window", "cwnd",
                      r.f[1], "pipe", r.f[2], "ssthresh", r.f[3]);
        break;
      case TraceType::kPrr:
        counter_event(out, pid, r, "conn" + conn_s + " prr", "prr_delivered",
                      r.f[0], "prr_out", r.f[1]);
        break;
      case TraceType::kEnterRecovery:
        event_prefix(out, "B", pid, r, "fast recovery");
        out += ",\"args\":{\"ssthresh\":" + std::to_string(r.f[1]) +
               ",\"pipe\":" + std::to_string(r.f[2]) +
               ",\"prior_cwnd\":" + std::to_string(r.f[3]) + "}},\n";
        break;
      case TraceType::kExitRecovery:
        event_prefix(out, "E", pid, r, "fast recovery");
        out += ",\"args\":{\"cwnd\":" + std::to_string(r.f[0]) + "}},\n";
        break;
      case TraceType::kFault:
        event_prefix(out, "X", pid, r, "fault");
        out += ",\"dur\":" + ts_us(static_cast<int64_t>(r.f[0]));
        out += ",\"args\":{\"detail\":" + json_quote(describe(r)) + "}},\n";
        break;
      case TraceType::kStateChange:
      case TraceType::kRtoFired:
      case TraceType::kUndo:
      case TraceType::kAbort:
      case TraceType::kTimerSchedule:
      case TraceType::kTimerFire:
      case TraceType::kTimerCancel:
      case TraceType::kInvariant:
      case TraceType::kLostRetransmit:
      case TraceType::kSackReneg:
      case TraceType::kServiceAlert:
      case TraceType::kServiceDecision:
        instant_event(out, pid, r, to_string(r.type));
        break;
      case TraceType::kTransmit:
        // Only retransmissions become instants; regular transmissions
        // are visible through the window counter track and would bloat
        // the export by an order of magnitude.
        if (r.a != 0) instant_event(out, pid, r, "retransmit");
        break;
      case TraceType::kUnaAdvance:
      case TraceType::kSackSeen:
      case TraceType::kWireData:
      case TraceType::kWireAck:
      case TraceType::kCount:
        break;
    }
  }
}

std::string perfetto_trace_json(const std::vector<TraceRecord>& records) {
  std::string out = "{\"traceEvents\":[\n";
  perfetto_append_process(out, records, kPid, "prr simulator");

  // Closing sentinel avoids trailing-comma bookkeeping in the loop.
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"name\":\"trace_complete\",\"args\":{\"records\":" +
         std::to_string(records.size()) + "}}\n";
  out += "]}\n";
  return out;
}

std::string perfetto_trace_json(const FlightRecorder& rec) {
  std::vector<TraceRecord> records;
  records.reserve(rec.size());
  for (std::size_t i = 0; i < rec.size(); ++i) records.push_back(rec[i]);
  return perfetto_trace_json(records);
}

}  // namespace prr::obs
