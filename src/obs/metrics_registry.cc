#include "obs/metrics_registry.h"

#include <algorithm>

#include "obs/json.h"

namespace prr::obs {

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LogHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name)->add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge* mine = gauge(name);
    mine->set(std::max(mine->value(), g->value()));
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name)->merge(*h);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ':' + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + std::to_string(h->sum());
    out += ",\"min\":" + std::to_string(h->min());
    out += ",\"max\":" + std::to_string(h->max());
    out += ",\"mean\":" + json_double(h->mean());
    out += ",\"p50\":" + json_double(h->p50());
    out += ",\"p95\":" + json_double(h->p95());
    out += ",\"p99\":" + json_double(h->p99());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < LogHistogram::kBuckets; ++b) {
      if (h->bucket(b) == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[' + std::to_string(LogHistogram::bucket_floor(b)) + ',' +
             std::to_string(h->bucket(b)) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace prr::obs
