#include "obs/metrics_registry.h"

#include <algorithm>

#include "obs/json.h"

namespace prr::obs {

uint64_t LogHistogram::approx_quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Upper edge of bucket b, clamped to the observed max.
      const uint64_t edge =
          b >= 64 ? max_ : (uint64_t{1} << b) - 1;
      return std::min(edge, max_);
    }
  }
  return max_;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Same rank convention as approx_quantile, then spread the bucket's
  // occupants evenly across its value range and pick the rank's spot.
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] >= rank) {
      const double lo = static_cast<double>(bucket_floor(b));
      const double hi = b >= 64 ? static_cast<double>(max_)
                                : static_cast<double>((uint64_t{1} << b) - 1);
      const double within =
          buckets_[b] == 1
              ? 0.0
              : static_cast<double>(rank - seen - 1) /
                    static_cast<double>(buckets_[b] - 1);
      const double v = lo + (hi - lo) * within;
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    seen += buckets_[b];
  }
  return static_cast<double>(max_);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LogHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name)->add(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge* mine = gauge(name);
    mine->set(std::max(mine->value(), g->value()));
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name)->merge(*h);
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ':' + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name) + ":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + std::to_string(h->sum());
    out += ",\"min\":" + std::to_string(h->min());
    out += ",\"max\":" + std::to_string(h->max());
    out += ",\"mean\":" + json_double(h->mean());
    out += ",\"p50\":" + json_double(h->p50());
    out += ",\"p95\":" + json_double(h->p95());
    out += ",\"p99\":" + json_double(h->p99());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < LogHistogram::kBuckets; ++b) {
      if (h->bucket(b) == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[' + std::to_string(LogHistogram::bucket_floor(b)) + ',' +
             std::to_string(h->bucket(b)) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace prr::obs
