// CRN-aligned cross-arm trace diffing (DESIGN.md §9). Under the
// common-random-numbers harness, a connection's entire sample path —
// transfer size, think times, drop lottery, fault schedule — derives
// from (seed, connection id) and is arm-independent, so the same
// connection run under two recovery arms produces *identical* record
// streams up to the first ACK where the arms' senders decide
// differently. That makes diffing trivial and exact: walk the two
// streams in lockstep (records are trivially comparable 64-byte cells)
// and the first mismatch IS the first divergent sender decision — the
// thing the paper's A/B setup could only infer statistically.
//
// The streams compared should come from the same (seed, connection,
// scenario) under two arms; nothing enforces that here, but on
// unrelated streams the "divergence" is just the first record pair,
// which is still reported faithfully.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace_record.h"

namespace prr::obs {

struct DiffOptions {
  // Timer schedule/cancel records are bookkeeping-dense and often
  // differ slightly *after* the interesting decision without being one
  // themselves; skipping them keeps the reported divergence on a
  // sender decision. Fires stay visible through their consequences.
  bool ignore_timers = true;
  // Context records to keep before the divergence in the report.
  std::size_t context_records = 5;
};

struct DivergencePoint {
  bool diverged = false;
  // True when one stream ended while the other continued — divergence
  // by exhaustion (e.g. one arm finished recovery and the trace tail
  // was cut differently).
  bool a_ended = false;
  bool b_ended = false;
  // Indices into the *filtered* views of the two streams, valid when
  // the corresponding stream did not end.
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  TraceRecord a{};  // first divergent record of each stream (if any)
  TraceRecord b{};
  // Up to DiffOptions::context_records common records immediately
  // preceding the divergence, oldest first.
  std::vector<TraceRecord> common;
  // Records compared equal before the divergence (filtered view).
  std::size_t common_count = 0;
};

// Lockstep comparison of two record streams (oldest first). Returns
// diverged == false when the filtered streams are identical end to end.
DivergencePoint first_divergence(const std::vector<TraceRecord>& a,
                                 const std::vector<TraceRecord>& b,
                                 const DiffOptions& opts = {});

// Human-readable report: the common prefix tail, the two divergent
// records (or which stream ended), and a field-level callout of what
// changed when the records share a type.
std::string explain_divergence(const DivergencePoint& d,
                               const std::string& arm_a,
                               const std::string& arm_b);

// Paired Perfetto export: arm A as pid 1, arm B as pid 2 (process
// names = arm names), plus a "FIRST DIVERGENCE" instant on each side
// at the divergence timestamps so the viewer lands on the decision.
std::string perfetto_diff_json(const std::vector<TraceRecord>& a,
                               const std::vector<TraceRecord>& b,
                               const std::string& arm_a,
                               const std::string& arm_b,
                               const DiffOptions& opts = {});

}  // namespace prr::obs
