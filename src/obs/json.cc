#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace prr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %g may print "1e+06" etc. — valid JSON; integers print bare, also
  // valid. Nothing further needed.
  return buf;
}

namespace {

// Recursive-descent validator over a cursor.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit()) return false;
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digit()) return false;
      while (digit()) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool digit() const {
    return pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]));
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view s) { return Parser(s).parse(); }

}  // namespace prr::obs
