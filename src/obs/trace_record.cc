#include "obs/trace_record.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace prr::obs {

namespace {

// obs/ sits below tcp/ and net/, so it names their enum values through
// local tables instead of including their headers. The numeric
// correspondence is pinned by static_asserts in obs/instrument.cc,
// which sees both sides.
const char* tcp_state_name(unsigned s) {
  static const char* kNames[] = {"open", "disorder", "recovery", "loss"};
  return s < 4 ? kNames[s] : "?";
}

const char* timer_name(unsigned id) {
  static const char* kNames[] = {"rto", "er", "tlp", "pacing", "persist"};
  return id < 5 ? kNames[id] : "?";
}

const char* fault_name(unsigned k) {
  static const char* kNames[] = {"blackout",     "bandwidth_shift",
                                 "rtt_spike",    "queue_resize",
                                 "ack_outage",   "receiver_stall"};
  return k < 6 ? kNames[k] : "?";
}

double u64_as_double(uint64_t v) { return std::bit_cast<double>(v); }

const char* invariant_name(unsigned k) {
  static const char* kNames[] = {
      "snd_una_regressed", "snd_una_beyond_snd_nxt", "cwnd_below_floor",
      "cwnd_above_rwnd",   "pipe_exceeds_flight",    "prr_beyond_slow_start",
      "timer_leak",        "injected",               "no_forward_progress",
      "no_termination",    "conservation",           "arm_divergence"};
  return k < 12 ? kNames[k] : "?";
}

}  // namespace

const char* to_string(TraceType t) {
  switch (t) {
    case TraceType::kStateChange: return "state_change";
    case TraceType::kAck: return "ack";
    case TraceType::kPrr: return "prr";
    case TraceType::kTransmit: return "transmit";
    case TraceType::kUnaAdvance: return "una_advance";
    case TraceType::kSackSeen: return "sack_seen";
    case TraceType::kEnterRecovery: return "enter_recovery";
    case TraceType::kExitRecovery: return "exit_recovery";
    case TraceType::kRtoFired: return "rto_fired";
    case TraceType::kUndo: return "undo";
    case TraceType::kAbort: return "abort";
    case TraceType::kTimerSchedule: return "timer_schedule";
    case TraceType::kTimerFire: return "timer_fire";
    case TraceType::kTimerCancel: return "timer_cancel";
    case TraceType::kFault: return "fault";
    case TraceType::kWireData: return "wire_data";
    case TraceType::kWireAck: return "wire_ack";
    case TraceType::kInvariant: return "invariant";
    case TraceType::kLostRetransmit: return "lost_retransmit";
    case TraceType::kSackReneg: return "sack_reneg";
    case TraceType::kServiceAlert: return "service_alert";
    case TraceType::kServiceDecision: return "service_decision";
    case TraceType::kCount: break;
  }
  return "?";
}

std::string describe(const TraceRecord& r) {
  char buf[256];
  const double ms = static_cast<double>(r.at_ns) / 1e6;
  int n = std::snprintf(buf, sizeof(buf), "%10.3fms conn %u %-14s ", ms,
                        r.conn, to_string(r.type));
  if (n < 0) return {};
  char* p = buf + n;
  const std::size_t left = sizeof(buf) - static_cast<std::size_t>(n);
  switch (r.type) {
    case TraceType::kStateChange:
      std::snprintf(p, left,
                    "%s->%s cwnd=%" PRIu64 " ssthresh=%" PRIu64
                    " una=%" PRIu64 " nxt=%" PRIu64,
                    tcp_state_name(r.a), tcp_state_name(r.b), r.f[0], r.f[1],
                    r.f[2], r.f[3]);
      break;
    case TraceType::kAck:
      std::snprintf(p, left,
                    "ack=%" PRIu64 " state=%s cwnd=%" PRIu64 " pipe=%" PRIu64
                    " ssthresh=%" PRIu64 " delivered=%" PRIu64,
                    r.f[0], tcp_state_name(r.a), r.f[1], r.f[2], r.f[3],
                    r.f[4]);
      break;
    case TraceType::kPrr:
      std::snprintf(p, left,
                    "%s prr_delivered=%" PRIu64 " prr_out=%" PRIu64
                    " recover_fs=%" PRIu64 " ssthresh=%" PRIu64
                    " cwnd=%" PRIu64,
                    r.a ? "proportional" : "reduction-bound", r.f[0], r.f[1],
                    r.f[2], r.f[3], r.f[4]);
      break;
    case TraceType::kTransmit:
      std::snprintf(p, left,
                    "%sseq=%" PRIu64 " len=%" PRIu64 " state=%s cwnd=%" PRIu64,
                    r.a ? "RETX " : "", r.f[0], r.f[1],
                    tcp_state_name(static_cast<unsigned>(r.b)), r.f[2]);
      break;
    case TraceType::kUnaAdvance:
      std::snprintf(p, left, "una=%" PRIu64, r.f[0]);
      break;
    case TraceType::kSackSeen:
      std::snprintf(p, left, "%s[%" PRIu64 ",%" PRIu64 ")",
                    r.a ? "dsack " : "", r.f[0], r.f[1]);
      break;
    case TraceType::kEnterRecovery:
      std::snprintf(p, left,
                    "%sflight=%" PRIu64 " ssthresh=%" PRIu64 " pipe=%" PRIu64
                    " prior_cwnd=%" PRIu64 " recovery_point=%" PRIu64,
                    r.a ? "early-retransmit " : "", r.f[0], r.f[1], r.f[2],
                    r.f[3], r.f[4]);
      break;
    case TraceType::kExitRecovery:
      std::snprintf(p, left, "cwnd=%" PRIu64 " pipe=%" PRIu64, r.f[0],
                    r.f[1]);
      break;
    case TraceType::kRtoFired:
      std::snprintf(p, left,
                    "state=%s una=%" PRIu64 " nxt=%" PRIu64 " cwnd=%" PRIu64
                    " backoff=%" PRIu64 " rto=%.1fms",
                    tcp_state_name(r.a), r.f[0], r.f[1], r.f[2], r.f[3],
                    static_cast<double>(r.f[4]) / 1e6);
      break;
    case TraceType::kUndo:
      std::snprintf(p, left, "%s cwnd=%" PRIu64 " ssthresh=%" PRIu64,
                    r.a ? "spurious-rto" : "dsack", r.f[0], r.f[1]);
      break;
    case TraceType::kAbort:
      std::snprintf(p, left, "una=%" PRIu64 " nxt=%" PRIu64, r.f[0], r.f[1]);
      break;
    case TraceType::kTimerSchedule:
      std::snprintf(p, left, "%s expiry=%.3fms", timer_name(r.a),
                    static_cast<double>(r.f[0]) / 1e6);
      break;
    case TraceType::kTimerFire:
      std::snprintf(p, left, "%s", timer_name(r.a));
      break;
    case TraceType::kTimerCancel:
      std::snprintf(p, left, "%s", timer_name(r.a));
      break;
    case TraceType::kFault:
      std::snprintf(p, left, "%s duration=%.1fms", fault_name(r.a),
                    static_cast<double>(r.f[0]) / 1e6);
      break;
    case TraceType::kWireData:
      std::snprintf(p, left, "%sseq=%" PRIu64 " len=%" PRIu64,
                    (r.b & 1) ? "RETX " : "", r.f[0], r.f[1]);
      break;
    case TraceType::kWireAck:
      std::snprintf(p, left, "ack=%" PRIu64 " sacks=%u rwnd=%" PRIu64,
                    r.f[0], static_cast<unsigned>(r.a), r.f[2]);
      break;
    case TraceType::kInvariant:
      std::snprintf(p, left, "VIOLATION %s", invariant_name(r.a));
      break;
    case TraceType::kLostRetransmit:
      std::snprintf(p, left, "detected=%" PRIu64 " fast=%" PRIu64, r.f[0],
                    r.f[1]);
      break;
    case TraceType::kSackReneg:
      std::snprintf(p, left, "una=%" PRIu64 " forgotten=%" PRIu64, r.f[0],
                    r.f[1]);
      break;
    case TraceType::kServiceAlert:
      // conn carries the snapshot window index for service records.
      std::snprintf(p, left,
                    "DRIFT series=%u arm=%u first_id=%" PRIu64
                    " conns=%" PRIu64 " value=%g stat=%g h=%g",
                    static_cast<unsigned>(r.a), static_cast<unsigned>(r.b),
                    r.f[0], r.f[1], u64_as_double(r.f[2]),
                    u64_as_double(r.f[3]), u64_as_double(r.f[4]));
      break;
    case TraceType::kServiceDecision: {
      static const char* kActions[] = {"hold", "PROMOTE", "ROLLBACK"};
      std::snprintf(p, left,
                    "%s arm=%u n=%" PRIu64 " delta=%g p=%g ci=[%g,%g]",
                    r.a < 3 ? kActions[r.a] : "?",
                    static_cast<unsigned>(r.b), r.f[0], u64_as_double(r.f[1]),
                    u64_as_double(r.f[2]), u64_as_double(r.f[3]),
                    u64_as_double(r.f[4]));
      break;
    }
    case TraceType::kCount:
      break;
  }
  return std::string(buf);
}

}  // namespace prr::obs
