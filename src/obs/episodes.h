// Recovery-episode analytics (DESIGN.md §9): folds a connection's
// TraceRecord stream into first-class RecoveryEpisode objects — the unit
// the paper's entire evaluation (Tables 3–7) is phrased in. An episode
// runs from kEnterRecovery to whichever of kExitRecovery / in-recovery
// kUndo / kRtoFired closes it, carrying the trigger path, a per-ACK
// ledger of DeliveredData/sndcnt/pipe/ssthresh, the exit window state,
// and the first few post-recovery cwnd samples.
//
// Layering: like the rest of obs/, this sits below tcp/ and net/ — it
// sees only TraceRecords, never the Sender. The derivation is exact by
// construction: every field the stats::RecoveryLog accumulates is also
// present in (or derivable from) the trace records the same code paths
// emit, so an EpisodeTable built from the stream reconciles bit-exactly
// with the RecoveryLog and tcp::Metrics counters (bench/episode_gate
// enforces this at several thread counts, tracing on and off).
//
// Aggregation: each worker shard folds its connections into a private
// EpisodeTable; shards merge in connection-id order, so rows, counters
// and log2 histograms are byte-identical to a serial run at any thread
// count — the same determinism contract as ArmResult itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace_record.h"
#include "util/quantiles.h"

namespace prr::obs {

// How an episode ended. kTruncated = the stream ended (end of run or of
// the captured tail) with recovery still in progress; such episodes are
// counted but excluded from the "finished" views that mirror the
// stats::RecoveryLog (which only records finished events).
enum class EpisodeExit : uint8_t {
  kCompleted,       // snd.una reached the recovery point (kExitRecovery)
  kUndo,            // DSACK/Eifel undo reverted the episode (kUndo a=0)
  kRtoInterrupted,  // the retransmission timer fired mid-recovery
  kTruncated,       // stream ended mid-episode
};

const char* to_string(EpisodeExit e);

// One row of an episode table: everything Tables 3/5/6/7 need, plus the
// sndcnt/DeliveredData accounting, in a compact trivially-copyable form.
struct EpisodeSummary {
  static constexpr int kPostTrajectory = 8;

  uint32_t conn = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  // Window quantities in bytes at the named instants (RecoveryEvent's
  // exact field set, same units).
  uint64_t pipe_at_start = 0;
  uint64_t ssthresh = 0;       // the reduced target chosen at entry
  uint64_t cwnd_at_start = 0;  // prior cwnd, before the reduction
  uint64_t cwnd_at_exit = 0;   // just prior to the exit adjustment
  uint64_t cwnd_after_exit = 0;
  uint64_t pipe_at_exit = 0;
  uint64_t flight_at_start = 0;  // RecoverFS
  uint64_t recovery_point = 0;
  uint32_t mss = 1;
  EpisodeExit exit = EpisodeExit::kTruncated;
  bool via_early_retransmit = false;
  bool slow_start_after = false;  // exited with cwnd < ssthresh
  // Per-ACK ledger totals (full rows live on RecoveryEpisode::ledger).
  uint64_t acks = 0;
  uint64_t delivered_bytes = 0;  // sum of DeliveredData over the episode
  uint64_t sndcnt_bytes = 0;     // sum of per-ACK send allowances
  uint64_t retransmits = 0;      // segments retransmitted in-episode
  uint64_t bytes_sent_during = 0;
  uint64_t max_burst_segments = 0;
  uint64_t sacks_seen = 0;
  uint64_t dsacks_seen = 0;
  // cwnd (bytes) at the first post-recovery ACKs — the convergence
  // trajectory Table 7 summarizes the first point of.
  uint64_t post_cwnd[kPostTrajectory] = {};
  uint8_t post_cwnd_count = 0;

  bool finished() const { return exit != EpisodeExit::kTruncated; }
  // Mirrors stats::RecoveryEvent::completed (undo counts as completed).
  bool completed() const {
    return exit == EpisodeExit::kCompleted || exit == EpisodeExit::kUndo;
  }
  bool interrupted_by_timeout() const {
    return exit == EpisodeExit::kRtoInterrupted;
  }
  sim::Time duration() const {
    return sim::Time::nanoseconds(end_ns - start_ns);
  }
  // Segment-denominated views, the exact arithmetic of
  // stats::RecoveryEvent (paper tables are in segments).
  double pipe_minus_ssthresh_segs() const {
    return (static_cast<double>(pipe_at_start) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_minus_ssthresh_at_exit_segs() const {
    return (static_cast<double>(cwnd_at_exit) -
            static_cast<double>(ssthresh)) / mss;
  }
  double cwnd_after_exit_segs() const {
    return static_cast<double>(cwnd_after_exit) / mss;
  }
};

// One ledger entry: the sender's decision state after one ACK processed
// during the episode. sndcnt is the window headroom the regulation left
// after this ACK (cwnd - pipe, floored at 0) — what PRR calls sndcnt.
struct EpisodeAck {
  int64_t at_ns = 0;
  uint64_t ack = 0;
  uint64_t cwnd = 0;
  uint64_t pipe = 0;
  uint64_t ssthresh = 0;
  uint64_t delivered = 0;  // DeliveredData for this ACK
  uint64_t sndcnt = 0;
  // PRR internals when the PRR policy annotated this ACK (kPrr record).
  bool prr_valid = false;
  bool prr_proportional = false;
  uint64_t prr_delivered = 0;
  uint64_t prr_out = 0;
  uint64_t recover_fs = 0;
};

// A fully materialized episode: the summary row plus (when the builder
// keeps ledgers) the per-ACK decision trail.
struct RecoveryEpisode {
  EpisodeSummary summary;
  std::vector<EpisodeAck> ledger;  // empty unless Options::keep_ledgers
};

// Multi-line human-readable dump (episode header, ledger lines, exit and
// post-recovery trajectory) for examples/prr_inspect and quarantine
// forensics.
std::string describe(const RecoveryEpisode& e);
// One-line form of just the summary row.
std::string describe(const EpisodeSummary& s);

// Folds one connection's record stream (oldest first) into episodes.
// Feed every record to on_record(); call finish() at stream end to close
// an in-progress episode as kTruncated. The builder also accumulates the
// stream-level counters Table 3 consumes (retransmits, DSACKs, undo and
// lost-retransmit events), which are not per-episode quantities.
class EpisodeBuilder {
 public:
  struct Options {
    bool keep_ledgers = false;  // store per-ACK rows on each episode
  };

  // Stream-level counters: exact mirrors of the tcp::Metrics fields of
  // the same name, derived purely from trace records.
  struct StreamCounts {
    uint64_t data_segments_sent = 0;
    uint64_t retransmits_total = 0;
    uint64_t fast_retransmits = 0;  // retransmits inside episodes
    uint64_t dsacks_received = 0;
    uint64_t undo_events = 0;
    uint64_t lost_retransmits_detected = 0;
    uint64_t lost_fast_retransmits = 0;
    uint64_t timeouts_total = 0;

    void merge(const StreamCounts& o);
  };

  EpisodeBuilder() = default;
  explicit EpisodeBuilder(Options opts) : opts_(opts) {}

  void on_record(const TraceRecord& r);
  void finish();

  const std::vector<RecoveryEpisode>& episodes() const { return episodes_; }
  const StreamCounts& stream() const { return stream_; }
  bool in_episode() const { return in_episode_; }

  // Resets to a fresh stream (episodes, counters, in-progress state).
  void reset();

 private:
  void begin(const TraceRecord& r);
  void close(EpisodeExit exit, int64_t end_ns);

  Options opts_;
  std::vector<RecoveryEpisode> episodes_;
  StreamCounts stream_;
  RecoveryEpisode current_;
  bool in_episode_ = false;
  // Post-recovery trajectory capture target (last finished episode).
  bool capture_post_ = false;
};

// Per-arm aggregation of episode rows: deterministic merge across worker
// shards (rows append in connection-id order; counters sum; histograms
// bucket-sum), RecoveryLog-mirroring sample accessors for the paper
// tables, and log2-histogram percentiles for the JSON/CLI summaries.
class EpisodeTable {
 public:
  // Appends everything the builder derived for one connection. Called in
  // connection order within a shard, so rows are emission-ordered.
  void fold(const EpisodeBuilder& b);
  void merge(const EpisodeTable& other);

  const std::vector<EpisodeSummary>& rows() const { return rows_; }
  const EpisodeBuilder::StreamCounts& stream() const { return stream_; }

  // Counts. total() includes truncated episodes and equals the
  // tcp::Metrics fast_recovery_events counter; finished() equals
  // stats::RecoveryLog::count().
  std::size_t total() const { return rows_.size(); }
  std::size_t finished() const { return finished_; }
  std::size_t truncated() const { return rows_.size() - finished_; }

  // --- exact mirrors of the stats::RecoveryLog accessors (same math,
  // same event ordering, same filters), over finished rows ---
  double fraction_start_below_ssthresh() const;
  double fraction_start_equal_ssthresh() const;
  double fraction_start_above_ssthresh() const;
  util::Samples pipe_minus_ssthresh_segs() const;       // Table 5
  util::Samples cwnd_minus_ssthresh_exit_segs() const;  // Table 6
  util::Samples cwnd_after_exit_segs() const;           // Table 7
  util::Samples recovery_time_ms() const;               // Fig 5
  double fraction_slow_start_after() const;
  double fraction_with_timeout() const;

  // Log2 summaries (built incrementally; percentiles via
  // LogHistogram::quantile interpolation).
  const LogHistogram& duration_us() const { return duration_us_; }
  const LogHistogram& retransmits_per_episode() const { return retx_; }
  const LogHistogram& acks_per_episode() const { return acks_; }
  const LogHistogram& sndcnt_per_episode() const { return sndcnt_; }

  // {"episodes":N,...,"histograms":{...p50/p95/p99...}} — byte-stable.
  std::string to_json() const;
  // Human-readable per-arm summary block for examples/prr_inspect.
  std::string summary_string() const;

 private:
  std::vector<EpisodeSummary> rows_;
  EpisodeBuilder::StreamCounts stream_;
  std::size_t finished_ = 0;
  LogHistogram duration_us_;
  LogHistogram retx_;
  LogHistogram acks_;
  LogHistogram sndcnt_;
};

}  // namespace prr::obs
