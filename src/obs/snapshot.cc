#include "obs/snapshot.h"

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "tcp/sender.h"

namespace prr::obs {

namespace {

const char* cc_name(tcp::CcKind cc) {
  switch (cc) {
    case tcp::CcKind::kNewReno: return "newreno";
    case tcp::CcKind::kCubic: return "cubic";
    case tcp::CcKind::kGaimd: return "gaimd";
    case tcp::CcKind::kBinomial: return "binomial";
  }
  return "?";
}

const char* recovery_name(tcp::RecoveryKind r) {
  switch (r) {
    case tcp::RecoveryKind::kRfc3517: return "rfc3517";
    case tcp::RecoveryKind::kLinuxRateHalving: return "rate_halving";
    case tcp::RecoveryKind::kPrr: return "prr";
  }
  return "?";
}

}  // namespace

std::string snapshot(const tcp::Sender& s, uint32_t conn_id) {
  const tcp::SenderConfig& cfg = s.config();
  const tcp::RtoEstimator& rto = s.rto_estimator();
  char buf[512];
  std::string out;

  std::snprintf(buf, sizeof(buf), "conn %u state:%s%s\n", conn_id,
                tcp::to_string(s.state()), s.aborted() ? " ABORTED" : "");
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  %s %s rto:%.0fms rtt:%.1f/%.1fms mss:%u dupthresh:%d%s\n",
                cc_name(cfg.cc), recovery_name(cfg.recovery),
                rto.rto().ms_d(), rto.srtt().ms_d(), rto.rttvar().ms_d(),
                cfg.mss, s.dupthresh(),
                s.reordering_seen() ? " reordering" : "");
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "  cwnd:%.1f ssthresh:%llu pipe:%llu una:%llu nxt:%llu "
                "rwnd:%llu\n",
                s.cwnd_segments(),
                static_cast<unsigned long long>(s.ssthresh_bytes()),
                static_cast<unsigned long long>(s.pipe_bytes()),
                static_cast<unsigned long long>(s.snd_una()),
                static_cast<unsigned long long>(s.snd_nxt()),
                static_cast<unsigned long long>(s.peer_rwnd()));
  out += buf;

  const tcp::Scoreboard& sb = s.scoreboard();
  std::snprintf(buf, sizeof(buf),
                "  sacked:%d lost:%d retrans:%llu timers:%s\n",
                sb.sacked_segment_count(), sb.lost_segment_count(),
                static_cast<unsigned long long>(s.retransmits()),
                s.loss_timers_pending() ? "armed" : "none");
  out += buf;
  return out;
}

std::string snapshot_json(const tcp::Sender& s, uint32_t conn_id) {
  const tcp::SenderConfig& cfg = s.config();
  const tcp::RtoEstimator& rto = s.rto_estimator();
  const tcp::Scoreboard& sb = s.scoreboard();
  std::string out = "{";
  out += "\"conn\":" + std::to_string(conn_id);
  out += ",\"state\":" + json_quote(tcp::to_string(s.state()));
  out += ",\"aborted\":" + std::string(s.aborted() ? "true" : "false");
  out += ",\"cc\":" + json_quote(cc_name(cfg.cc));
  out += ",\"recovery\":" + json_quote(recovery_name(cfg.recovery));
  out += ",\"rto_ms\":" + json_double(rto.rto().ms_d());
  out += ",\"srtt_ms\":" + json_double(rto.srtt().ms_d());
  out += ",\"rttvar_ms\":" + json_double(rto.rttvar().ms_d());
  out += ",\"backoffs\":" + std::to_string(rto.backoff_count());
  out += ",\"mss\":" + std::to_string(cfg.mss);
  out += ",\"dupthresh\":" + std::to_string(s.dupthresh());
  out += ",\"reordering\":" +
         std::string(s.reordering_seen() ? "true" : "false");
  out += ",\"cwnd_bytes\":" + std::to_string(s.cwnd_bytes());
  out += ",\"ssthresh_bytes\":" + std::to_string(s.ssthresh_bytes());
  out += ",\"pipe_bytes\":" + std::to_string(s.pipe_bytes());
  out += ",\"snd_una\":" + std::to_string(s.snd_una());
  out += ",\"snd_nxt\":" + std::to_string(s.snd_nxt());
  out += ",\"peer_rwnd\":" + std::to_string(s.peer_rwnd());
  out += ",\"sacked_segments\":" + std::to_string(sb.sacked_segment_count());
  out += ",\"lost_segments\":" + std::to_string(sb.lost_segment_count());
  out += ",\"retransmits\":" + std::to_string(s.retransmits());
  out += ",\"timers_pending\":" +
         std::string(s.loss_timers_pending() ? "true" : "false");
  out += "}";
  return out;
}

}  // namespace prr::obs
