// Simulator self-profiling: wall-clock cost of event-loop slices and of
// per-ACK processing, recorded into log2 histograms and exported into a
// MetricsRegistry. Both producers are pull-free hooks — Simulator and
// Sender time themselves only while a profiler is attached, so the
// unprofiled paths keep their zero-overhead guarantee. Wall-clock
// samples are inherently nondeterministic, which is why they live in a
// separate profiler object and are exported only when the caller asks
// (RunOptions::self_profile); the deterministic registry contents are
// never mixed with them implicitly.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics_registry.h"

namespace prr::sim {
class Simulator;
}
namespace prr::tcp {
class Sender;
}

namespace prr::obs {

class SelfProfiler {
 public:
  // Installs the simulator's slice-timing hook (duration of each
  // executed event callback, ns).
  void attach(sim::Simulator& sim);
  // Installs the sender's per-ACK cost hook (duration of each
  // on_ack_segment call, ns). May be called for several senders; their
  // samples share one histogram.
  void attach(tcp::Sender& sender);

  const LogHistogram& slice_ns() const { return slice_ns_; }
  const LogHistogram& ack_ns() const { return ack_ns_; }

  // Copies the histograms into `registry` as "<prefix>.slice_ns" and
  // "<prefix>.ack_ns".
  void export_into(MetricsRegistry& registry,
                   const std::string& prefix = "profile") const;

 private:
  LogHistogram slice_ns_;
  LogHistogram ack_ns_;
};

}  // namespace prr::obs
