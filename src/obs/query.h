// Offline analytics over trace-store files (DESIGN.md §14.4): the library
// behind the `prr_query` CLI. Four layers, all operating on a StoreReader:
//
//   * filter / group-by / aggregate / time-bucket over raw TraceRecords
//     (run_aggregate): count/sum/min/max/mean of any record field, grouped
//     by connection, record type, or fixed time buckets.
//   * time-series extraction (extract_series): (at_ns, field) pairs of one
//     record type for one connection — cwnd-over-time and pipe-over-time
//     plots come straight from kAck records.
//   * episode reconstruction (episodes_from_store): replays each stored
//     connection's records through the SAME EpisodeBuilder/EpisodeTable
//     machinery the live harness uses, so every table derived from a store
//     (Tables 1/3/5/6/7) reconciles field-exactly with the in-process
//     path; bench/query_gate enforces this.
//   * critical-path attribution (critical_path): walks a stored episode's
//     record chain and reports where its recovery latency went —
//     waiting-for-ack vs rto-wait vs app-limited vs send-window-limited.
//
// Determinism: everything here is a pure function of the store bytes, and
// store bytes are a pure function of (seed, arms, policy) — so query
// output is byte-stable across machines and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/episodes.h"
#include "obs/store/store_reader.h"
#include "obs/trace_record.h"

namespace prr::obs {

// Which numeric field of a TraceRecord a query aggregates or extracts.
enum class QueryField : uint8_t {
  kAtNs,
  kA,
  kB,
  kF0,
  kF1,
  kF2,
  kF3,
  kF4,
  kF5,
};

uint64_t field_value(const TraceRecord& r, QueryField f);

// Parses "at_ns" | "a" | "b" | "f0".."f5", plus per-type aliases for the
// common plots: for `ack` records ack/cwnd/pipe/ssthresh/delivered/
// snd_nxt map to f0..f5; for `transmit` records seq/len/cwnd/snd_nxt do.
// `type` only enables the aliases; generic names always parse.
bool parse_field(TraceType type, std::string_view name, QueryField* out,
                 std::string* err);

// Round-trips the to_string(TraceType) names ("ack", "enter_recovery"...).
bool parse_trace_type(std::string_view name, TraceType* out);

// Record/block predicate. Block-level clauses (conn range, capture class)
// prune whole blocks before decoding; record-level clauses (type mask,
// time range) filter decoded records.
struct QueryFilter {
  uint64_t conn_min = 0;
  uint64_t conn_max = UINT64_MAX;
  uint32_t type_mask = 0xFFFFFFFFu;  // bit i = TraceType(i) included
  int64_t t_min_ns = INT64_MIN;
  int64_t t_max_ns = INT64_MAX;
  bool include_sampled = true;  // blocks kept by a sample=N draw
  bool include_full = true;     // blocks kept whole by a trigger

  void set_only_type(TraceType t) {
    type_mask = 1u << static_cast<uint32_t>(t);
  }
  bool matches_block(const StoreBlockMeta& b) const;
  bool matches_record(const TraceRecord& r) const;
};

enum class GroupKey : uint8_t {
  kNone,        // one global row
  kConn,        // per connection id
  kType,        // per TraceType
  kTimeBucket,  // per floor(at_ns / bucket_ns)
};

struct AggregateQuery {
  QueryFilter filter;
  GroupKey group = GroupKey::kNone;
  int64_t bucket_ns = 1'000'000'000;       // kTimeBucket width
  QueryField field = QueryField::kAtNs;    // value being aggregated
};

// One output row: the group key (conn id, type id, or bucket index;
// 0 for kNone) and the field's count/sum/min/max.
struct AggregateRow {
  uint64_t key = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;
  uint64_t max = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct AggregateResult {
  GroupKey group = GroupKey::kNone;
  int64_t bucket_ns = 0;
  std::vector<AggregateRow> rows;  // ascending key

  // {"group":"conn","rows":[{"key":...,"count":...,...}]} — byte-stable,
  // so two runs of the same sweep can be diffed with strcmp.
  std::string to_json() const;
};

// Runs `q` over every matching record. False only on a decode failure
// (possible when the reader skipped digest verification).
bool run_aggregate(const StoreReader& reader, const AggregateQuery& q,
                   AggregateResult* out, std::string* err);

struct SeriesPoint {
  int64_t at_ns = 0;
  uint64_t value = 0;
};

// (at_ns, field) of every type-`type` record of connection `conn`, in
// stream order. cwnd-over-time = (kAck, f1); pipe-over-time = (kAck, f2).
bool extract_series(const StoreReader& reader, uint64_t conn,
                    TraceType type, QueryField field,
                    std::vector<SeriesPoint>* out, std::string* err);

// Rebuilds the EpisodeTable from stored records: per connection (ascending
// id), feed its records through an EpisodeBuilder and fold — the exact
// live-path machinery, so tables reconcile field-exactly. Only the
// filter's BLOCK-level clauses apply (conn range, capture class);
// record-level filtering would corrupt episode reconstruction.
bool episodes_from_store(const StoreReader& reader,
                         const QueryFilter& filter, EpisodeTable* out,
                         std::string* err);

// --- critical-path attribution ---------------------------------------
//
// Where did a stored episode's wall-clock go? Every inter-record gap
// inside an episode is attributed to one bucket:
//
//   rto_wait        the gap ended with the retransmission timer firing —
//                   recovery sat waiting for the RTO clock.
//   send_window     window headroom (cwnd − pipe) was below one MSS when
//                   the gap began: the regulation (or a tiny cwnd) forbade
//                   sending, so progress had to wait for deliveries.
//   waiting_for_ack headroom existed and the sender had just put data on
//                   the wire — the gap is flight time, waiting for the
//                   network to return an ACK.
//   app_limited     headroom existed and nothing was in flight from this
//                   instant — the sender had nothing (left) to send.
//
// The classification is a heuristic over the recorded state (it tracks
// cwnd/pipe from kAck and kTransmit records), not a replay of the sender;
// buckets sum exactly to the episode's duration by construction.
struct CriticalPathReport {
  uint64_t conn = 0;
  uint64_t episodes = 0;
  uint64_t gaps = 0;
  int64_t total_ns = 0;  // summed episode durations
  int64_t waiting_for_ack_ns = 0;
  int64_t rto_wait_ns = 0;
  int64_t app_limited_ns = 0;
  int64_t send_window_ns = 0;

  void merge(const CriticalPathReport& o);
  std::string to_json() const;
};

// Attribution over one connection's full record stream (every episode in
// it). Exposed on raw records so tests can drive it synthetically.
CriticalPathReport attribute_critical_path(const TraceRecord* records,
                                           std::size_t n);

// Store-backed form: decodes connection `conn` and attributes it.
bool critical_path(const StoreReader& reader, uint64_t conn,
                   CriticalPathReport* out, std::string* err);

// Human-readable block for the CLI ("recovery latency: 61.2% waiting for
// ACKs, 30.1% RTO wait, ...").
std::string describe(const CriticalPathReport& r);

}  // namespace prr::obs
