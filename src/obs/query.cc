#include "obs/query.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace prr::obs {

uint64_t field_value(const TraceRecord& r, QueryField f) {
  switch (f) {
    case QueryField::kAtNs: return static_cast<uint64_t>(r.at_ns);
    case QueryField::kA: return r.a;
    case QueryField::kB: return r.b;
    case QueryField::kF0: return r.f[0];
    case QueryField::kF1: return r.f[1];
    case QueryField::kF2: return r.f[2];
    case QueryField::kF3: return r.f[3];
    case QueryField::kF4: return r.f[4];
    case QueryField::kF5: return r.f[5];
  }
  return 0;
}

bool parse_field(TraceType type, std::string_view name, QueryField* out,
                 std::string* err) {
  static constexpr struct {
    const char* name;
    QueryField field;
  } kGeneric[] = {
      {"at_ns", QueryField::kAtNs}, {"a", QueryField::kA},
      {"b", QueryField::kB},        {"f0", QueryField::kF0},
      {"f1", QueryField::kF1},      {"f2", QueryField::kF2},
      {"f3", QueryField::kF3},      {"f4", QueryField::kF4},
      {"f5", QueryField::kF5},
  };
  for (const auto& g : kGeneric) {
    if (name == g.name) {
      *out = g.field;
      return true;
    }
  }
  // Per-type aliases (the TraceType enum's documented f-slot meanings).
  static constexpr struct {
    TraceType type;
    const char* name;
    QueryField field;
  } kAliases[] = {
      {TraceType::kAck, "ack", QueryField::kF0},
      {TraceType::kAck, "cwnd", QueryField::kF1},
      {TraceType::kAck, "pipe", QueryField::kF2},
      {TraceType::kAck, "ssthresh", QueryField::kF3},
      {TraceType::kAck, "delivered", QueryField::kF4},
      {TraceType::kAck, "snd_nxt", QueryField::kF5},
      {TraceType::kTransmit, "seq", QueryField::kF0},
      {TraceType::kTransmit, "len", QueryField::kF1},
      {TraceType::kTransmit, "cwnd", QueryField::kF2},
      {TraceType::kTransmit, "snd_nxt", QueryField::kF3},
      {TraceType::kPrr, "prr_delivered", QueryField::kF0},
      {TraceType::kPrr, "prr_out", QueryField::kF1},
      {TraceType::kPrr, "recover_fs", QueryField::kF2},
      {TraceType::kPrr, "prr_ssthresh", QueryField::kF3},
      {TraceType::kPrr, "cwnd", QueryField::kF4},
  };
  for (const auto& a : kAliases) {
    if (a.type == type && name == a.name) {
      *out = a.field;
      return true;
    }
  }
  if (err != nullptr) {
    *err = "unknown field '" + std::string(name) +
           "' (want at_ns|a|b|f0..f5 or a per-type alias like cwnd)";
  }
  return false;
}

bool parse_trace_type(std::string_view name, TraceType* out) {
  for (uint32_t i = 0; i < static_cast<uint32_t>(TraceType::kCount); ++i) {
    const TraceType t = static_cast<TraceType>(i);
    if (name == to_string(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

bool QueryFilter::matches_block(const StoreBlockMeta& b) const {
  if (b.conn < conn_min || b.conn > conn_max) return false;
  if (!include_full && (b.flags & kBlockFull) != 0) return false;
  if (!include_sampled && (b.flags & kBlockSampled) != 0) return false;
  return true;
}

bool QueryFilter::matches_record(const TraceRecord& r) const {
  if ((type_mask & (1u << static_cast<uint32_t>(r.type))) == 0) {
    return false;
  }
  return r.at_ns >= t_min_ns && r.at_ns <= t_max_ns;
}

namespace {

bool decode_failed(std::string* err, const StoreReader& reader,
                   std::size_t block) {
  if (err != nullptr) {
    *err = "block " + std::to_string(block) + " (conn " +
           std::to_string(reader.blocks()[block].conn) +
           ") failed to decode";
  }
  return false;
}

}  // namespace

bool run_aggregate(const StoreReader& reader, const AggregateQuery& q,
                   AggregateResult* out, std::string* err) {
  // std::map keeps keys sorted, so rows come out ascending regardless of
  // group kind — byte-stable JSON for free.
  std::map<uint64_t, AggregateRow> groups;
  std::vector<TraceRecord> records;
  const int64_t bucket =
      q.bucket_ns > 0 ? q.bucket_ns : 1'000'000'000;
  for (std::size_t i = 0; i < reader.blocks().size(); ++i) {
    if (!q.filter.matches_block(reader.blocks()[i])) continue;
    records.clear();
    if (!reader.read_block(i, &records)) {
      return decode_failed(err, reader, i);
    }
    for (const TraceRecord& r : records) {
      if (!q.filter.matches_record(r)) continue;
      uint64_t key = 0;
      switch (q.group) {
        case GroupKey::kNone: key = 0; break;
        case GroupKey::kConn: key = r.conn; break;
        case GroupKey::kType: key = static_cast<uint64_t>(r.type); break;
        case GroupKey::kTimeBucket:
          key = static_cast<uint64_t>(r.at_ns / bucket);
          break;
      }
      AggregateRow& row = groups[key];
      row.key = key;
      const uint64_t v = field_value(r, q.field);
      row.count += 1;
      row.sum += v;
      if (v < row.min) row.min = v;
      if (v > row.max) row.max = v;
    }
  }
  out->group = q.group;
  out->bucket_ns = q.group == GroupKey::kTimeBucket ? bucket : 0;
  out->rows.clear();
  out->rows.reserve(groups.size());
  for (const auto& [key, row] : groups) out->rows.push_back(row);
  return true;
}

std::string AggregateResult::to_json() const {
  const char* name = "none";
  switch (group) {
    case GroupKey::kNone: name = "none"; break;
    case GroupKey::kConn: name = "conn"; break;
    case GroupKey::kType: name = "type"; break;
    case GroupKey::kTimeBucket: name = "time_bucket"; break;
  }
  std::string out = "{\"group\":";
  out += json_quote(name);
  if (group == GroupKey::kTimeBucket) {
    out += ",\"bucket_ns\":" + std::to_string(bucket_ns);
  }
  out += ",\"rows\":[";
  char buf[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AggregateRow& r = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"key\":%" PRIu64 ",\"count\":%" PRIu64
                  ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 "}",
                  i == 0 ? "" : ",", r.key, r.count, r.sum,
                  r.count == 0 ? uint64_t{0} : r.min, r.max);
    out += buf;
  }
  out += "]}";
  return out;
}

bool extract_series(const StoreReader& reader, uint64_t conn,
                    TraceType type, QueryField field,
                    std::vector<SeriesPoint>* out, std::string* err) {
  std::vector<TraceRecord> records;
  if (!reader.read_connection(conn, &records)) {
    if (err != nullptr) {
      *err = "conn " + std::to_string(conn) + " failed to decode";
    }
    return false;
  }
  for (const TraceRecord& r : records) {
    if (r.type != type) continue;
    out->push_back({r.at_ns, field_value(r, field)});
  }
  return true;
}

bool episodes_from_store(const StoreReader& reader,
                         const QueryFilter& filter, EpisodeTable* out,
                         std::string* err) {
  EpisodeBuilder builder;
  std::vector<TraceRecord> records;
  const auto& blocks = reader.blocks();
  std::size_t i = 0;
  while (i < blocks.size()) {
    // One connection = the run of blocks sharing a conn id.
    const uint64_t conn = blocks[i].conn;
    std::size_t end = i;
    while (end < blocks.size() && blocks[end].conn == conn) ++end;
    if (filter.matches_block(blocks[i])) {
      records.clear();
      for (std::size_t b = i; b < end; ++b) {
        if (!reader.read_block(b, &records)) {
          return decode_failed(err, reader, b);
        }
      }
      builder.reset();
      for (const TraceRecord& r : records) builder.on_record(r);
      builder.finish();
      out->fold(builder);
    }
    i = end;
  }
  return true;
}

// --- critical-path attribution ---------------------------------------

void CriticalPathReport::merge(const CriticalPathReport& o) {
  episodes += o.episodes;
  gaps += o.gaps;
  total_ns += o.total_ns;
  waiting_for_ack_ns += o.waiting_for_ack_ns;
  rto_wait_ns += o.rto_wait_ns;
  app_limited_ns += o.app_limited_ns;
  send_window_ns += o.send_window_ns;
}

CriticalPathReport attribute_critical_path(const TraceRecord* records,
                                           std::size_t n) {
  CriticalPathReport rep;
  if (n > 0) rep.conn = records[0].conn;
  bool in_episode = false;
  uint64_t mss = 1;
  uint64_t cwnd = 0;
  uint64_t pipe = 0;
  bool just_sent = false;  // the previous record put data on the wire
  int64_t prev_ns = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = records[i];
    if (in_episode) {
      const int64_t gap = r.at_ns - prev_ns;
      if (gap > 0) {
        rep.gaps += 1;
        rep.total_ns += gap;
        if (r.type == TraceType::kRtoFired ||
            (r.type == TraceType::kTimerFire && r.a == 0)) {
          rep.rto_wait_ns += gap;
        } else if (cwnd < pipe + mss) {  // headroom below one MSS
          rep.send_window_ns += gap;
        } else if (just_sent) {
          rep.waiting_for_ack_ns += gap;
        } else {
          rep.app_limited_ns += gap;
        }
      }
    }
    // State tracking (order matters: classify the gap BEFORE updating
    // the window view with this record's contents).
    switch (r.type) {
      case TraceType::kEnterRecovery:
        if (!in_episode) {
          in_episode = true;
          rep.episodes += 1;
          mss = r.b > 0 ? r.b : 1;
          pipe = r.f[2];
          cwnd = r.f[1];  // recovery regulates toward ssthresh
          just_sent = false;
        }
        break;
      case TraceType::kExitRecovery:
        in_episode = false;
        break;
      case TraceType::kRtoFired:
        in_episode = false;  // an RTO mid-recovery ends the episode
        break;
      case TraceType::kUndo:
        if (r.a == 0) in_episode = false;  // DSACK/Eifel undo in recovery
        break;
      case TraceType::kAck:
        cwnd = r.f[1];
        pipe = r.f[2];
        just_sent = false;
        break;
      case TraceType::kTransmit:
        cwnd = r.f[2];
        pipe += r.f[1];  // len joins the flight
        just_sent = true;
        break;
      case TraceType::kWireData:
        just_sent = true;
        break;
      default:
        break;
    }
    prev_ns = r.at_ns;
  }
  return rep;
}

bool critical_path(const StoreReader& reader, uint64_t conn,
                   CriticalPathReport* out, std::string* err) {
  std::vector<TraceRecord> records;
  if (!reader.read_connection(conn, &records)) {
    if (err != nullptr) {
      *err = "conn " + std::to_string(conn) + " failed to decode";
    }
    return false;
  }
  *out = attribute_critical_path(records.data(), records.size());
  out->conn = conn;
  return true;
}

std::string CriticalPathReport::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"conn\":%" PRIu64 ",\"episodes\":%" PRIu64 ",\"gaps\":%" PRIu64
      ",\"total_ns\":%lld,\"waiting_for_ack_ns\":%lld,"
      "\"rto_wait_ns\":%lld,\"app_limited_ns\":%lld,"
      "\"send_window_ns\":%lld}",
      conn, episodes, gaps, static_cast<long long>(total_ns),
      static_cast<long long>(waiting_for_ack_ns),
      static_cast<long long>(rto_wait_ns),
      static_cast<long long>(app_limited_ns),
      static_cast<long long>(send_window_ns));
  return buf;
}

std::string describe(const CriticalPathReport& r) {
  const double total = r.total_ns > 0 ? static_cast<double>(r.total_ns) : 1;
  auto pct = [total](int64_t ns) {
    return 100.0 * static_cast<double>(ns) / total;
  };
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "conn %" PRIu64 ": %" PRIu64 " episode(s), %.3fms in recovery\n"
      "  waiting_for_ack %7.3fms (%5.1f%%)\n"
      "  rto_wait        %7.3fms (%5.1f%%)\n"
      "  send_window     %7.3fms (%5.1f%%)\n"
      "  app_limited     %7.3fms (%5.1f%%)\n",
      r.conn, r.episodes, static_cast<double>(r.total_ns) / 1e6,
      static_cast<double>(r.waiting_for_ack_ns) / 1e6,
      pct(r.waiting_for_ack_ns),
      static_cast<double>(r.rto_wait_ns) / 1e6, pct(r.rto_wait_ns),
      static_cast<double>(r.send_window_ns) / 1e6, pct(r.send_window_ns),
      static_cast<double>(r.app_limited_ns) / 1e6, pct(r.app_limited_ns));
  return buf;
}

}  // namespace prr::obs
