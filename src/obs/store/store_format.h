// On-disk format of the sweep-scale trace store (DESIGN.md §14) and the
// varint/zigzag primitives every part of it shares.
//
// A store file persists the TraceRecords of selected connections from one
// experiment arm, column-grouped and delta-encoded so a million-connection
// sweep's capture is a few tens of bytes per sampled record instead of the
// in-memory 64:
//
//   file    := header block* index footer
//   header  := magic8 "PRRSTOR1" | u32le version | u32le flags
//            | varint seed | vstr arm | vstr policy | vstr scenario
//   block   := one connection's records (or one segment of them when a
//              connection exceeds kMaxBlockRecords), stored as columns in
//              this order, each column fully encoded before the next:
//                at_ns  : zigzag-varint delta (vs previous record)
//                type   : raw u8 per record
//                a      : raw u8 per record
//                b      : varint per record
//                f[0..5]: six columns, each zigzag-varint delta within
//                         its own column (seq/cwnd-like fields grow
//                         slowly, so deltas are short)
//              Block geometry (conn id, byte length, record count, flags)
//              lives only in the index — blocks carry zero framing bytes.
//   index   := varint block_count, then per block:
//                varint conn_delta   (conn − previous block's conn;
//                                     blocks are written in ascending
//                                     conn order, segments in stream
//                                     order, so deltas are ≥ 0)
//              | varint byte_len | varint record_count | u8 flags
//              Block offsets are implied: blocks are contiguous from the
//              end of the header.
//   footer  := u64le index_offset | u64le digest | magic8 "PRRSTEND"
//              digest = word-folded FNV 64 (StoreDigest below) over
//              every byte of the file before the digest field itself
//              (header + blocks + index + index_offset). A truncated or
//              bit-flipped file fails to open; readers never see
//              partial data.
//
// Determinism: every encoded byte is a pure function of (record stream,
// conn id, header meta). The experiment harness appends blocks in
// ascending connection-id order at any thread count, so store files are
// byte-identical across threads 1/4/8 and across fork-per-shard runs
// merged by connection id (bench/query_gate enforces both).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace prr::obs {

inline constexpr char kStoreMagic[8] = {'P', 'R', 'R', 'S',
                                        'T', 'O', 'R', '1'};
inline constexpr char kStoreEndMagic[8] = {'P', 'R', 'R', 'S',
                                           'T', 'E', 'N', 'D'};
inline constexpr uint32_t kStoreVersion = 1;
// Fixed footer: index_offset + digest + end magic.
inline constexpr std::size_t kStoreFooterBytes = 8 + 8 + 8;

// A connection whose ring holds more than this many records is split
// into multiple blocks with the same conn id (stream order preserved),
// bounding the encoder's scratch buffer — and therefore the writer's
// peak memory — regardless of ring capacity.
inline constexpr std::size_t kMaxBlockRecords = 1u << 14;

// Block flags (index `flags` byte).
inline constexpr uint8_t kBlockFull = 1;       // kept whole by a trigger
inline constexpr uint8_t kBlockSampled = 2;    // kept by 1-in-N sampling
inline constexpr uint8_t kBlockTruncated = 4;  // ring wrapped: head lost

// Geometry of one block as the index records it. `offset` is derived by
// the reader (blocks are contiguous); the writer tracks it implicitly.
struct StoreBlockMeta {
  uint64_t conn = 0;
  uint64_t offset = 0;  // from start of file (reader-side only)
  uint32_t bytes = 0;
  uint32_t records = 0;
  uint8_t flags = 0;
};

// --- varint / zigzag primitives -------------------------------------

// LEB128 unsigned varint, 1–10 bytes.
inline void put_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

// Reads a varint from [p, end); advances *p. Returns false on overrun
// or a varint longer than 10 bytes (malformed input, never emitted).
inline bool get_varint(const uint8_t** p, const uint8_t* end,
                       uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    const uint8_t byte = *(*p)++;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Raw-cursor form for the encoder's hot loop: the caller guarantees at
// least kMaxVarintBytes of headroom, so no per-byte capacity check.
inline constexpr std::size_t kMaxVarintBytes = 10;
inline void put_varint_raw(uint8_t*& p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<uint8_t>(v);
}

// Zigzag: small negative deltas stay small on the wire.
inline uint64_t zigzag_encode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t zigzag_decode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void put_zigzag(std::vector<uint8_t>& out, int64_t v) {
  put_varint(out, zigzag_encode(v));
}
inline void put_zigzag_raw(uint8_t*& p, int64_t v) {
  put_varint_raw(p, zigzag_encode(v));
}
inline bool get_zigzag(const uint8_t** p, const uint8_t* end,
                       int64_t* out) {
  uint64_t u = 0;
  if (!get_varint(p, end, &u)) return false;
  *out = zigzag_decode(u);
  return true;
}

// Length-prefixed string.
inline void put_vstr(std::vector<uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}
inline bool get_vstr(const uint8_t** p, const uint8_t* end,
                     std::string* out) {
  uint64_t n = 0;
  if (!get_varint(p, end, &n)) return false;
  if (static_cast<uint64_t>(end - *p) < n) return false;
  out->assign(reinterpret_cast<const char*>(*p),
              static_cast<std::size_t>(n));
  *p += n;
  return true;
}

inline void put_u32le(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline void put_u64le(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline uint64_t get_u64le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
inline uint32_t get_u32le(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

// Incremental word-folded FNV 64 — the file digest. Seeded with the
// standard FNV offset basis, but folding eight little-endian bytes per
// multiply instead of one: each step `h = (h ^ word) * prime` is a
// bijection in both h and word, so any single-word difference (bit
// flip, truncation mid-word via the length-tagged tail) always changes
// the final value, at an eighth of byte-wise FNV-1a's cost — the
// multiply chain is the serial bottleneck when digesting megabytes of
// capture per sweep. The value is independent of how feed() calls chunk
// the stream: partial words buffer until eight bytes accumulate, and
// value() folds any unfinished tail together with its byte count.
struct StoreDigest {
  uint64_t h = 1469598103934665603ull;
  uint64_t pending = 0;  // partial word, little-endian, `have` bytes
  uint32_t have = 0;

  void mix(uint64_t w) {
    h ^= w;
    h *= 1099511628211ull;
  }
  void feed(const uint8_t* p, std::size_t n) {
    while (have != 0 && n != 0) {
      pending |= static_cast<uint64_t>(*p++) << (8 * have);
      --n;
      if (++have == 8) {
        mix(pending);
        pending = 0;
        have = 0;
      }
    }
    while (n >= 8) {
      mix(get_u64le(p));
      p += 8;
      n -= 8;
    }
    while (n != 0) {
      pending |= static_cast<uint64_t>(*p++) << (8 * have);
      ++have;
      --n;
    }
  }
  // Digest of everything fed so far; feed() may continue afterwards.
  uint64_t value() const {
    if (have == 0) return h;
    uint64_t v = h;
    v ^= pending;
    v *= 1099511628211ull;
    v ^= have;
    v *= 1099511628211ull;
    return v;
  }
};

// Store metadata carried in the header: enough to identify what produced
// the file (and for merge to refuse mixing files from different runs).
struct StoreMeta {
  uint32_t version = kStoreVersion;
  uint64_t seed = 0;
  std::string arm;
  std::string policy;
  std::string scenario;

  bool operator==(const StoreMeta& o) const {
    return version == o.version && seed == o.seed && arm == o.arm &&
           policy == o.policy && scenario == o.scenario;
  }
};

// Per-arm store path: `prefix` with a sanitized arm name spliced in
// before a trailing ".prrstore" (appended otherwise). Both run_arm and
// run_arms route through this, so a caller always knows where an arm's
// file landed: ("sweep.prrstore", "RFC 3517") → "sweep.rfc_3517.prrstore".
std::string store_path_for_arm(const std::string& prefix,
                               const std::string& arm_name);

}  // namespace prr::obs
