// Read side of the trace store. open() slurps the file, verifies the
// footer magic and the file digest over everything before it (so a
// truncated or corrupted file is rejected up front, never half-decoded),
// and parses the block index; records decode lazily per block. The whole
// file is held in memory — store files are a few bytes per kept record,
// so even a million-connection sweep's sampled store is tens of MB, well
// inside what an offline analytics CLI can map.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/store/store_format.h"
#include "obs/trace_record.h"

namespace prr::obs {

class StoreReader {
 public:
  // `verify_digest` can be disabled for very large files when the caller
  // has already checked integrity (the CLI exposes --no-verify); the
  // structural footer/index checks always run.
  static bool open(const std::string& path, StoreReader* out,
                   std::string* err, bool verify_digest = true);

  const StoreMeta& meta() const { return meta_; }
  // Blocks in file order: ascending conn, stream order within a conn.
  const std::vector<StoreBlockMeta>& blocks() const { return blocks_; }
  uint64_t total_records() const { return total_records_; }

  // Decodes block i, appending its records to *out. False on malformed
  // payload (possible only if the digest check was skipped).
  bool read_block(std::size_t i, std::vector<TraceRecord>* out) const;

  // Every record of connection `conn` (all its blocks, stream order).
  // False on decode failure; an absent conn yields true and no records.
  bool read_connection(uint64_t conn,
                       std::vector<TraceRecord>* out) const;

  // Distinct connection ids present, ascending.
  std::vector<uint64_t> connections() const;

  // Raw payload access for the merge tool.
  const uint8_t* block_data(std::size_t i) const {
    return reinterpret_cast<const uint8_t*>(file_.data()) +
           blocks_[i].offset;
  }

 private:
  std::string file_;
  StoreMeta meta_;
  std::vector<StoreBlockMeta> blocks_;
  uint64_t total_records_ = 0;
};

}  // namespace prr::obs
