#include "obs/store/capture_policy.h"

#include <cstdlib>
#include <vector>

namespace prr::obs {

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    start = end + 1;
    if (end == s.size()) break;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses a nonnegative integer; false on empty/garbage/overflow-ish.
bool parse_u64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - 9) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

bool capture_sampled(uint64_t conn, uint64_t n) {
  if (n == 0) return false;
  if (n == 1) return true;
  return mix64(conn) % n == 0;
}

CapturePolicy CapturePolicy::all() {
  CapturePolicy p;
  p.keep_all_ = true;
  p.spec_ = "all";
  return p;
}

bool CapturePolicy::keeps_anything() const {
  return keep_all_ || sample_n_ > 0 || full_timeout_ ||
         full_rto_interrupt_ || full_undo_ || full_invariant_ ||
         full_abort_ || retx_threshold_ != UINT64_MAX ||
         recovery_ms_threshold_ >= 0;
}

bool CapturePolicy::parse(std::string_view spec, CapturePolicy* out,
                          std::string* err) {
  CapturePolicy p;
  p.spec_ = std::string(trim(spec));
  if (trim(spec).empty()) {
    if (err != nullptr) *err = "empty capture spec (use 'all' or 'none')";
    return false;
  }
  for (std::string_view raw : split(spec, ',')) {
    const std::string_view clause = trim(raw);
    if (clause.empty()) continue;
    if (clause == "all") {
      p.keep_all_ = true;
    } else if (clause == "none") {
      // explicit no-op: a header-only store is a valid baseline
    } else if (clause.substr(0, 7) == "sample=") {
      uint64_t n = 0;
      if (!parse_u64(clause.substr(7), &n) || n == 0) {
        if (err != nullptr) {
          *err = "bad sample clause '" + std::string(clause) +
                 "' (want sample=N with N >= 1)";
        }
        return false;
      }
      p.sample_n_ = n;
    } else if (clause.substr(0, 5) == "full=") {
      for (std::string_view t : split(clause.substr(5), '|')) {
        const std::string_view trig = trim(t);
        if (trig == "timeout") {
          p.full_timeout_ = true;
        } else if (trig == "rto_interrupt") {
          p.full_rto_interrupt_ = true;
        } else if (trig == "undo") {
          p.full_undo_ = true;
        } else if (trig == "invariant") {
          p.full_invariant_ = true;
        } else if (trig == "abort") {
          p.full_abort_ = true;
        } else {
          if (err != nullptr) {
            *err = "unknown trigger '" + std::string(trig) +
                   "' (want timeout|rto_interrupt|undo|invariant|abort)";
          }
          return false;
        }
      }
    } else if (clause.substr(0, 13) == "recovery_ms>=") {
      double v = 0;
      if (!parse_double(clause.substr(13), &v) || v < 0) {
        if (err != nullptr) {
          *err = "bad recovery_ms clause '" + std::string(clause) + "'";
        }
        return false;
      }
      p.recovery_ms_threshold_ = v;
    } else if (clause.substr(0, 6) == "retx>=") {
      uint64_t n = 0;
      if (!parse_u64(clause.substr(6), &n)) {
        if (err != nullptr) {
          *err = "bad retx clause '" + std::string(clause) + "'";
        }
        return false;
      }
      p.retx_threshold_ = n;
    } else {
      if (err != nullptr) {
        *err = "unknown capture clause '" + std::string(clause) + "'";
      }
      return false;
    }
  }
  *out = std::move(p);
  return true;
}

CaptureDecision CapturePolicy::evaluate(const CaptureStats& s) const {
  CaptureDecision d;
  const bool triggered =
      keep_all_ || (full_timeout_ && s.timeouts > 0) ||
      (full_rto_interrupt_ && s.rto_interrupted_recovery) ||
      (full_undo_ && s.undo_events > 0) ||
      (full_invariant_ && s.invariant_violations > 0) ||
      (full_abort_ && s.aborted) || s.retransmits >= retx_threshold_ ||
      (recovery_ms_threshold_ >= 0 &&
       s.recovery_ms >= recovery_ms_threshold_);
  if (triggered) {
    d.keep = true;
    d.full = true;
    return d;
  }
  if (capture_sampled(s.conn, sample_n_)) {
    d.keep = true;
    d.full = false;
  }
  return d;
}

}  // namespace prr::obs
