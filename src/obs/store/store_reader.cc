#include "obs/store/store_reader.h"

#include <cstdio>

#include "obs/store/store_writer.h"

namespace prr::obs {

namespace {

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

bool slurp(const std::string& path, std::string* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(err, "cannot open " + path);
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool clean = std::ferror(f) == 0;
  std::fclose(f);
  if (!clean) return fail(err, "read error on " + path);
  return true;
}

}  // namespace

bool StoreReader::open(const std::string& path, StoreReader* out,
                       std::string* err, bool verify_digest) {
  StoreReader r;
  if (!slurp(path, &r.file_, err)) return false;
  const uint8_t* file =
      reinterpret_cast<const uint8_t*>(r.file_.data());
  const std::size_t size = r.file_.size();

  // Structural floor: header magic + version + flags + one varint seed +
  // three empty vstrs would still exceed this, but the footer alone is
  // enough to reject obvious truncation before reading fields.
  if (size < 8 + kStoreFooterBytes) {
    return fail(err, path + ": too short to be a trace store");
  }
  if (std::memcmp(file + size - 8, kStoreEndMagic, 8) != 0) {
    return fail(err, path + ": missing end magic (truncated store?)");
  }
  const uint64_t digest = get_u64le(file + size - 16);
  const uint64_t index_offset = get_u64le(file + size - kStoreFooterBytes);
  // Everything before the digest field is under the digest.
  if (verify_digest) {
    StoreDigest d;
    d.feed(file, size - 16);
    if (d.value() != digest) {
      return fail(err, path + ": digest mismatch (corrupted store)");
    }
  }

  // Header.
  if (std::memcmp(file, kStoreMagic, 8) != 0) {
    return fail(err, path + ": bad header magic");
  }
  if (index_offset < 8 || index_offset > size - kStoreFooterBytes) {
    return fail(err, path + ": index offset out of range");
  }
  const uint8_t* p = file + 8;
  const uint8_t* header_end = file + index_offset;
  if (header_end - p < 8) return fail(err, path + ": short header");
  r.meta_.version = get_u32le(p);
  p += 4;
  p += 4;  // header flags, reserved
  if (r.meta_.version != kStoreVersion) {
    return fail(err, path + ": unsupported store version " +
                         std::to_string(r.meta_.version));
  }
  if (!get_varint(&p, header_end, &r.meta_.seed) ||
      !get_vstr(&p, header_end, &r.meta_.arm) ||
      !get_vstr(&p, header_end, &r.meta_.policy) ||
      !get_vstr(&p, header_end, &r.meta_.scenario)) {
    return fail(err, path + ": malformed header");
  }
  const uint64_t blocks_begin =
      static_cast<uint64_t>(p - file);  // blocks start after the header

  // Index. Offsets are implied: blocks are contiguous from blocks_begin.
  const uint8_t* ip = file + index_offset;
  const uint8_t* index_end = file + size - kStoreFooterBytes;
  uint64_t block_count = 0;
  if (!get_varint(&ip, index_end, &block_count)) {
    return fail(err, path + ": malformed index");
  }
  // Each index entry is >= 4 bytes; a count implying more is garbage.
  if (block_count > static_cast<uint64_t>(index_end - ip)) {
    return fail(err, path + ": implausible block count");
  }
  r.blocks_.reserve(static_cast<std::size_t>(block_count));
  uint64_t conn = 0;
  uint64_t offset = blocks_begin;
  for (uint64_t i = 0; i < block_count; ++i) {
    uint64_t conn_delta = 0, bytes = 0, records = 0;
    if (!get_varint(&ip, index_end, &conn_delta) ||
        !get_varint(&ip, index_end, &bytes) ||
        !get_varint(&ip, index_end, &records) || ip >= index_end) {
      return fail(err, path + ": malformed index entry");
    }
    const uint8_t flags = *ip++;
    conn += conn_delta;
    StoreBlockMeta b;
    b.conn = conn;
    b.offset = offset;
    b.bytes = static_cast<uint32_t>(bytes);
    b.records = static_cast<uint32_t>(records);
    b.flags = flags;
    offset += bytes;
    if (offset > index_offset) {
      return fail(err, path + ": block extends past index");
    }
    r.blocks_.push_back(b);
    r.total_records_ += records;
  }
  if (ip != index_end) {
    return fail(err, path + ": trailing bytes after index");
  }
  if (offset != index_offset) {
    return fail(err, path + ": block payloads do not span to the index");
  }
  *out = std::move(r);
  return true;
}

bool StoreReader::read_block(std::size_t i,
                             std::vector<TraceRecord>* out) const {
  const StoreBlockMeta& b = blocks_[i];
  return decode_block(block_data(i), b.bytes, b.records, b.conn, out);
}

bool StoreReader::read_connection(uint64_t conn,
                                  std::vector<TraceRecord>* out) const {
  // Blocks are sorted by conn; binary-search the run.
  std::size_t lo = 0, hi = blocks_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (blocks_[mid].conn < conn) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (std::size_t i = lo; i < blocks_.size() && blocks_[i].conn == conn;
       ++i) {
    if (!read_block(i, out)) return false;
  }
  return true;
}

std::vector<uint64_t> StoreReader::connections() const {
  std::vector<uint64_t> out;
  for (const StoreBlockMeta& b : blocks_) {
    if (out.empty() || out.back() != b.conn) out.push_back(b.conn);
  }
  return out;
}

}  // namespace prr::obs
