#include "obs/store/store_writer.h"

#include <algorithm>
#include <numeric>

#include "obs/flight_recorder.h"
#include "obs/store/store_reader.h"

namespace prr::obs {

std::string store_path_for_arm(const std::string& prefix,
                               const std::string& arm_name) {
  std::string arm;
  arm.reserve(arm_name.size());
  for (char c : arm_name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      arm.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      arm.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      arm.push_back('_');
    }
  }
  const std::string ext = ".prrstore";
  if (prefix.size() >= ext.size() &&
      prefix.compare(prefix.size() - ext.size(), ext.size(), ext) == 0) {
    return prefix.substr(0, prefix.size() - ext.size()) + "." + arm + ext;
  }
  return prefix + "." + arm + ext;
}

void StoreShard::merge(StoreShard&& other) {
  if (other.empty()) return;
  const uint64_t base = bytes.size();
  bytes.insert(bytes.end(), other.bytes.begin(), other.bytes.end());
  blocks.reserve(blocks.size() + other.blocks.size());
  for (StoreBlockMeta b : other.blocks) {
    b.offset += base;
    blocks.push_back(b);
  }
  other.clear();
}

void StoreEncoder::encode(const TraceRecord* records, std::size_t n,
                          uint64_t conn, uint8_t flags,
                          StoreShard* shard) {
  std::size_t done = 0;
  while (done < n) {
    const std::size_t count = std::min(n - done, kMaxBlockRecords);
    const TraceRecord* r = records + done;
    // Worst case per record: at_ns + 6 fields as 10-byte varints, plus
    // type, a and a 3-byte b. Sizing scratch once and writing through a
    // raw cursor keeps the capture hot path free of per-byte capacity
    // checks; scratch is bounded by kMaxBlockRecords and reused.
    const std::size_t worst = count * (7 * kMaxVarintBytes + 5);
    if (scratch_.size() < worst) scratch_.resize(worst);
    uint8_t* p = scratch_.data();
    // Column order: at_ns, type, a, b, f0..f5 (store_format.h).
    int64_t prev_at = 0;
    for (std::size_t i = 0; i < count; ++i) {
      put_zigzag_raw(p, r[i].at_ns - prev_at);
      prev_at = r[i].at_ns;
    }
    for (std::size_t i = 0; i < count; ++i) {
      *p++ = static_cast<uint8_t>(r[i].type);
    }
    for (std::size_t i = 0; i < count; ++i) *p++ = r[i].a;
    for (std::size_t i = 0; i < count; ++i) put_varint_raw(p, r[i].b);
    for (int k = 0; k < 6; ++k) {
      uint64_t prev = 0;
      for (std::size_t i = 0; i < count; ++i) {
        put_zigzag_raw(p, static_cast<int64_t>(r[i].f[k] - prev));
        prev = r[i].f[k];
      }
    }
    StoreBlockMeta meta;
    meta.conn = conn;
    meta.offset = shard->bytes.size();
    meta.bytes = static_cast<uint32_t>(p - scratch_.data());
    meta.records = static_cast<uint32_t>(count);
    meta.flags = flags;
    shard->bytes.insert(shard->bytes.end(), scratch_.data(), p);
    shard->blocks.push_back(meta);
    done += count;
  }
}

void StoreEncoder::encode(const FlightRecorder& ring, uint64_t conn,
                          uint8_t flags, StoreShard* shard) {
  const std::size_t n = ring.size();
  if (n == 0) return;
  if (ring.dropped() > 0) flags |= kBlockTruncated;
  // An unwrapped ring (the common case: capacity above the connection's
  // record count) is already one flat run — encode straight from ring
  // storage, no copy. A wrapped ring is flattened with two bulk copies
  // first: block boundaries (every kMaxBlockRecords) and delta resets
  // are positions in the logical record stream, so the two runs cannot
  // be encoded independently without changing the bytes.
  const FlightRecorder::Runs runs = ring.runs();
  if (runs.len[1] == 0) {
    encode(runs.ptr[0], n, conn, flags, shard);
    return;
  }
  static thread_local std::vector<TraceRecord> window;
  window.resize(n);
  std::copy(runs.ptr[0], runs.ptr[0] + runs.len[0], window.data());
  std::copy(runs.ptr[1], runs.ptr[1] + runs.len[1],
            window.data() + runs.len[0]);
  encode(window.data(), n, conn, flags, shard);
}

bool decode_block(const uint8_t* data, std::size_t bytes,
                  std::size_t records, uint64_t conn,
                  std::vector<TraceRecord>* out) {
  const uint8_t* p = data;
  const uint8_t* end = data + bytes;
  const std::size_t base = out->size();
  out->resize(base + records);
  TraceRecord* r = out->data() + base;
  int64_t at = 0;
  for (std::size_t i = 0; i < records; ++i) {
    int64_t delta = 0;
    if (!get_zigzag(&p, end, &delta)) return false;
    at += delta;
    r[i].at_ns = at;
    r[i].conn = static_cast<uint32_t>(conn);
  }
  if (static_cast<std::size_t>(end - p) < 2 * records) return false;
  for (std::size_t i = 0; i < records; ++i) {
    const uint8_t t = *p++;
    if (t >= static_cast<uint8_t>(TraceType::kCount)) return false;
    r[i].type = static_cast<TraceType>(t);
  }
  for (std::size_t i = 0; i < records; ++i) r[i].a = *p++;
  for (std::size_t i = 0; i < records; ++i) {
    uint64_t v = 0;
    if (!get_varint(&p, end, &v)) return false;
    if (v > UINT16_MAX) return false;
    r[i].b = static_cast<uint16_t>(v);
  }
  for (int k = 0; k < 6; ++k) {
    uint64_t prev = 0;
    for (std::size_t i = 0; i < records; ++i) {
      int64_t delta = 0;
      if (!get_zigzag(&p, end, &delta)) return false;
      prev += static_cast<uint64_t>(delta);
      r[i].f[k] = prev;
    }
  }
  // Trailing garbage inside the block payload is as malformed as a
  // short one.
  return p == end;
}

StoreWriter::~StoreWriter() {
  if (f_ != nullptr) {
    std::fclose(f_);  // abandoned without finish(): leave no fd behind
  }
}

bool StoreWriter::write(const uint8_t* p, std::size_t n) {
  if (failed_ || f_ == nullptr) return false;
  if (std::fwrite(p, 1, n, f_) != n) {
    failed_ = true;
    return false;
  }
  digest_.feed(p, n);
  offset_ += n;
  return true;
}

bool StoreWriter::open(const std::string& path, const StoreMeta& meta) {
  if (f_ != nullptr) return false;
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    failed_ = true;
    return false;
  }
  // Blocks are ~1-2 kB; stdio's default buffer would turn nearly every
  // append into a write(2). One big buffer makes the per-connection
  // flush path syscall-free until it fills.
  buf_.resize(1u << 20);
  std::setvbuf(f_, reinterpret_cast<char*>(buf_.data()), _IOFBF,
               buf_.size());
  path_ = path;
  std::vector<uint8_t> header;
  header.insert(header.end(), kStoreMagic, kStoreMagic + 8);
  put_u32le(header, meta.version);
  put_u32le(header, 0);  // header flags, reserved
  put_varint(header, meta.seed);
  put_vstr(header, meta.arm);
  put_vstr(header, meta.policy);
  put_vstr(header, meta.scenario);
  return write(header.data(), header.size());
}

bool StoreWriter::append_block(const StoreBlockMeta& meta,
                               const uint8_t* data) {
  if (!write(data, meta.bytes)) return false;
  if (index_.empty() || index_.back().conn != meta.conn) ++conns_;
  StoreBlockMeta m = meta;
  m.offset = 0;  // offsets are implied on disk; don't persist shard ones
  index_.push_back(m);
  records_ += meta.records;
  payload_bytes_ += meta.bytes;
  return true;
}

bool StoreWriter::append_shard(const StoreShard& shard) {
  for (const StoreBlockMeta& b : shard.blocks) {
    if (!append_block(b, shard.bytes.data() + b.offset)) return false;
  }
  return true;
}

bool StoreWriter::finish() {
  if (finished_) return !failed_;
  finished_ = true;
  if (f_ == nullptr) return false;
  const uint64_t index_offset = offset_;
  std::vector<uint8_t> tail;
  put_varint(tail, index_.size());
  uint64_t prev_conn = 0;
  for (const StoreBlockMeta& b : index_) {
    put_varint(tail, b.conn - prev_conn);
    prev_conn = b.conn;
    put_varint(tail, b.bytes);
    put_varint(tail, b.records);
    tail.push_back(b.flags);
  }
  put_u64le(tail, index_offset);
  // Everything written so far plus the index and index_offset is under
  // the digest; the digest field itself and the end magic are not.
  if (!write(tail.data(), tail.size())) {
    std::fclose(f_);
    f_ = nullptr;
    return false;
  }
  std::vector<uint8_t> end;
  put_u64le(end, digest_.value());
  end.insert(end.end(), kStoreEndMagic, kStoreEndMagic + 8);
  const bool wrote =
      std::fwrite(end.data(), 1, end.size(), f_) == end.size();
  const bool clean = std::ferror(f_) == 0;
  const bool closed = std::fclose(f_) == 0;
  f_ = nullptr;
  if (!wrote || !clean || !closed) failed_ = true;
  return !failed_;
}

bool merge_store_files(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* err) {
  if (inputs.empty()) {
    if (err != nullptr) *err = "no input stores";
    return false;
  }
  std::vector<StoreReader> readers(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!StoreReader::open(inputs[i], &readers[i], err)) return false;
    if (!(readers[i].meta() == readers[0].meta())) {
      if (err != nullptr) {
        *err = "store meta mismatch between " + inputs[0] + " and " +
               inputs[i] + " (different seed/arm/policy/scenario)";
      }
      return false;
    }
  }

  // Global block order: ascending conn; ties (same-conn segments within
  // one store must stay in stream order) break by (input, block) order
  // via the stable sort. Inputs cover disjoint id ranges in the fork-
  // per-shard protocol, so this reproduces the single-process file.
  struct Ref {
    std::size_t input;
    std::size_t block;
    uint64_t conn;
  };
  std::vector<Ref> order;
  for (std::size_t i = 0; i < readers.size(); ++i) {
    const auto& blocks = readers[i].blocks();
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      order.push_back({i, b, blocks[b].conn});
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Ref& a, const Ref& b) {
                     return a.conn < b.conn;
                   });

  StoreWriter writer;
  if (!writer.open(out_path, readers[0].meta())) {
    if (err != nullptr) *err = "cannot open " + out_path + " for write";
    return false;
  }
  for (const Ref& ref : order) {
    const StoreBlockMeta& b = readers[ref.input].blocks()[ref.block];
    if (!writer.append_block(b, readers[ref.input].block_data(ref.block))) {
      if (err != nullptr) *err = "write failure on " + out_path;
      return false;
    }
  }
  if (!writer.finish()) {
    if (err != nullptr) *err = "short write finishing " + out_path;
    return false;
  }
  return true;
}

}  // namespace prr::obs
