// Trigger-based capture for the trace store (DESIGN.md §14). The paper's
// tables come from mining per-connection traces of billions of flows —
// persisting every record of every connection at that scale is neither
// affordable nor useful. A CapturePolicy is a small predicate, evaluated
// once at connection teardown, that decides whether the connection's
// trace ring is persisted and why:
//
//   spec     := clause (',' clause)*
//   clause   := "all"                   keep every connection, full flag
//             | "none"                  keep nothing (header-only store)
//             | "sample=N"              keep 1-in-N connections (by a
//                                       deterministic hash of the conn
//                                       id), flagged kBlockSampled
//             | "full=" trigger ('|' trigger)*
//             | "recovery_ms>=X"        full capture when the connection
//                                       spent ≥ X ms in loss recovery
//             | "retx>=N"               full capture when it retransmitted
//                                       ≥ N segments
//   trigger  := "timeout"               any RTO fired
//             | "rto_interrupt"         an RTO fired DURING fast recovery
//             | "undo"                  a DSACK/Eifel or spurious-RTO undo
//             | "invariant"             the invariant checker fired
//             | "abort"                 max RTO backoffs exceeded
//
// The ISSUE's headline policy "full on timeout + 1-in-64 sample" is
// spelled `sample=64,full=timeout`. Full-fidelity triggers win over
// sampling: an interesting connection is kept whole (kBlockFull) even
// when the sample draw would also have kept it.
//
// Everything here is a pure function of (spec, per-connection stats), and
// the stats themselves derive from (seed, id, arm) — so capture decisions,
// and therefore store files, are byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace prr::obs {

// Teardown-time inputs to the predicate. All deltas are this
// connection's own (not shard accumulators).
struct CaptureStats {
  uint64_t conn = 0;
  uint64_t timeouts = 0;       // RTO firings
  uint64_t undo_events = 0;
  uint64_t retransmits = 0;
  uint64_t invariant_violations = 0;
  bool rto_interrupted_recovery = false;  // an RTO fired mid-episode
  bool aborted = false;
  double recovery_ms = 0;  // total simulated time in loss recovery
};

struct CaptureDecision {
  bool keep = false;
  bool full = false;  // kBlockFull vs kBlockSampled
};

class CapturePolicy {
 public:
  // Default-constructed = "none": keeps nothing. The harness only
  // evaluates a policy when a store path is configured.
  CapturePolicy() = default;

  // Keep every connection at full fidelity (spec "all") — the mode the
  // reconciliation gates use, since exact table reproduction needs every
  // connection's records.
  static CapturePolicy all();

  // Parses `spec` (grammar above). On failure returns false and leaves
  // a human-readable reason in *err; *out is untouched.
  static bool parse(std::string_view spec, CapturePolicy* out,
                    std::string* err);

  CaptureDecision evaluate(const CaptureStats& s) const;

  // The rto_interrupt trigger needs a cheap scan of the connection's
  // ring (an enter/exit state machine over the records); the harness
  // skips that scan when no clause asks for it.
  bool needs_rto_interrupt() const { return full_rto_interrupt_; }
  // False for "none": lets the harness skip stats collection entirely.
  bool keeps_anything() const;

  // Canonical spec string (as parsed), recorded into the store header.
  const std::string& spec() const { return spec_; }

 private:
  std::string spec_ = "none";
  bool keep_all_ = false;
  uint64_t sample_n_ = 0;  // 0 = no sampling clause
  bool full_timeout_ = false;
  bool full_rto_interrupt_ = false;
  bool full_undo_ = false;
  bool full_invariant_ = false;
  bool full_abort_ = false;
  // Thresholds; ~0 / +inf sentinels mean "clause absent".
  uint64_t retx_threshold_ = UINT64_MAX;
  double recovery_ms_threshold_ = -1;  // <0 = absent
};

// Deterministic 1-in-N sample membership (splitmix64 finalizer over the
// conn id). Exposed so tests and offline tools can predict the draw.
bool capture_sampled(uint64_t conn, uint64_t n);

}  // namespace prr::obs
