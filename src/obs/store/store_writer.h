// Write side of the trace store (format in store_format.h): a columnar
// encoder with a bounded, reused scratch buffer; an in-memory shard for
// worker threads (encoded blocks buffered until the stream fold reaches
// them); and the file writer that streams blocks to disk behind libc
// buffering while maintaining the index and digest incrementally.
//
// Memory contract: the encoder's scratch is bounded by kMaxBlockRecords
// regardless of ring size and is reused across connections (no steady-
// state allocation once warm); the writer holds only the index in memory
// (one small entry per kept block). With a sampling capture policy, a
// million-connection sweep's store state is kilobytes — flat RSS.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/store/store_format.h"
#include "obs/trace_record.h"

namespace prr::obs {

class FlightRecorder;

// Encoded blocks buffered in memory: what a worker shard accumulates
// between the capture decision and the stream fold. merge() appends —
// shards merge in ascending connection-id order, exactly like every
// other ArmResult aggregate, so the concatenation is the serial order.
struct StoreShard {
  std::vector<uint8_t> bytes;          // concatenated block payloads
  std::vector<StoreBlockMeta> blocks;  // geometry, in append order

  void merge(StoreShard&& other);
  void clear() {
    bytes.clear();
    blocks.clear();
  }
  bool empty() const { return blocks.empty(); }
};

// Columnar encoder. One instance per worker (scratch reuse); encode()
// appends one connection's records as one or more blocks.
class StoreEncoder {
 public:
  // Encodes `n` records into `shard`, splitting into blocks of at most
  // kMaxBlockRecords. `flags` is ORed into every emitted block's flags.
  void encode(const TraceRecord* records, std::size_t n, uint64_t conn,
              uint8_t flags, StoreShard* shard);

  // Convenience: the surviving contents of a ring, oldest first. Adds
  // kBlockTruncated when the ring wrapped (head records were lost).
  void encode(const FlightRecorder& ring, uint64_t conn, uint8_t flags,
              StoreShard* shard);

 private:
  std::vector<uint8_t> scratch_;
};

// Decodes one block payload (exactly `records` records for `conn`) back
// into TraceRecords, appending to *out. Returns false on malformed or
// short data; *out may then hold a partial prefix.
bool decode_block(const uint8_t* data, std::size_t bytes,
                  std::size_t records, uint64_t conn,
                  std::vector<TraceRecord>* out);

// Streaming file writer. Usage: open() → append_block()/append_shard()
// repeatedly in ascending conn order → finish(). Any IO error latches:
// subsequent calls no-op and finish() returns false.
class StoreWriter {
 public:
  StoreWriter() = default;
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  bool open(const std::string& path, const StoreMeta& meta);
  bool append_block(const StoreBlockMeta& meta, const uint8_t* data);
  // Flushes every block of `shard` (does not clear it).
  bool append_shard(const StoreShard& shard);
  // Writes index + footer and closes. Idempotent; false on any earlier
  // or current IO failure.
  bool finish();

  bool failed() const { return failed_; }
  const std::string& path() const { return path_; }
  uint64_t blocks() const { return index_.size(); }
  uint64_t records() const { return records_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  // Distinct connections appended. Exact because blocks arrive in
  // ascending conn order with same-conn blocks contiguous.
  uint64_t connections() const { return conns_; }

 private:
  bool write(const uint8_t* p, std::size_t n);

  std::FILE* f_ = nullptr;
  std::vector<uint8_t> buf_;  // stdio buffer; must outlive f_
  std::string path_;
  StoreDigest digest_;
  std::vector<StoreBlockMeta> index_;
  uint64_t offset_ = 0;  // bytes written so far
  uint64_t records_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t conns_ = 0;
  bool failed_ = false;
  bool finished_ = false;
};

// Merges store files covering disjoint connection-id ranges (the
// SWEEP_PROCS fork-per-shard output) into one file that is byte-identical
// to a single-process run over the union: blocks are re-emitted in
// ascending (conn, stream) order under the shared header meta. Inputs
// must agree on StoreMeta; returns false (with *err set) on meta
// mismatch, unreadable input, or IO failure.
bool merge_store_files(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* err);

}  // namespace prr::obs
