#include "obs/instrument.h"

#include <utility>

#include "net/fault_schedule.h"
#include "tcp/invariants.h"

namespace prr::obs {

// obs/trace_record.cc names tcp/net enum values through local tables
// (obs sits below those layers); this file sees both sides, so pin the
// numeric correspondence here.
static_assert(static_cast<int>(tcp::TcpState::kOpen) == 0 &&
              static_cast<int>(tcp::TcpState::kLoss) == 3);
static_assert(static_cast<int>(net::FaultKind::kBlackout) == 0 &&
              static_cast<int>(net::FaultKind::kReceiverStall) == 5);
static_assert(static_cast<int>(tcp::InvariantKind::kSndUnaRegressed) == 0 &&
              static_cast<int>(tcp::InvariantKind::kInjected) == 7 &&
              static_cast<int>(tcp::InvariantKind::kArmDivergence) == 11);

Instrument::Instrument(sim::Simulator& sim, tcp::Connection& conn,
                       FlightRecorder& recorder, uint32_t conn_id)
    : sim_(sim), conn_(conn), recorder_(recorder), conn_id_(conn_id) {
  conn_.sender().set_recorder(&recorder_, conn_id_);
  conn_.path().set_recorder(&recorder_, conn_id_);
}

Instrument::~Instrument() {
  conn_.sender().set_recorder(nullptr, 0);
  conn_.path().set_recorder(nullptr, 0);
  if (tap_installed_) conn_.path().wire_tap = std::move(prev_tap_);
}

void Instrument::add_wire_listener(WireListener l) {
  wire_listeners_.push_back(std::move(l));
  if (tap_installed_) return;
  tap_installed_ = true;
  prev_tap_ = std::move(conn_.path().wire_tap);
  conn_.path().wire_tap = [this](const net::Segment& seg, bool is_ack,
                                 sim::Time at) {
    if (prev_tap_) prev_tap_(seg, is_ack, at);
    for (const WireListener& wl : wire_listeners_) wl(seg, is_ack, at);
  };
}

}  // namespace prr::obs
