#include "obs/self_profile.h"

#include "sim/simulator.h"
#include "tcp/sender.h"

namespace prr::obs {

void SelfProfiler::attach(sim::Simulator& sim) {
  sim.set_slice_profiler([this](int64_t ns) {
    slice_ns_.record(ns < 0 ? 0 : static_cast<uint64_t>(ns));
  });
}

void SelfProfiler::attach(tcp::Sender& sender) {
  sender.on_ack_cost_hook = [this](int64_t ns) {
    ack_ns_.record(ns < 0 ? 0 : static_cast<uint64_t>(ns));
  };
}

void SelfProfiler::export_into(MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.histogram(prefix + ".slice_ns")->merge(slice_ns_);
  registry.histogram(prefix + ".ack_ns")->merge(ack_ns_);
}

}  // namespace prr::obs
