// Minimal JSON helpers for the exporters: string escaping for emission
// and a strict recursive-descent validator used by the golden-file test
// and the CI reconciliation tool (bench/obs_chaos_trace). Emission here
// is string building, not a DOM — exports are write-only and the
// formats (Perfetto trace-event, registry dump) are flat enough that a
// serializer library would be dead weight.
#pragma once

#include <string>
#include <string_view>

namespace prr::obs {

// Escapes `"`, `\`, and control characters per RFC 8259.
std::string json_escape(std::string_view s);

inline std::string json_quote(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

// Shortest round-trippable form that is still valid JSON (never bare
// "inf"/"nan": those are clamped to 0, which the exporters never feed
// it anyway).
std::string json_double(double v);

// True iff `s` is one complete, well-formed JSON value (object, array,
// string, number, true/false/null) with nothing but whitespace after
// it. Validates structure only — no limits on depth or duplicate keys.
bool json_valid(std::string_view s);

}  // namespace prr::obs
