#include "obs/trace_diff.h"

#include <cstdio>
#include <cstring>

#include "obs/json.h"
#include "obs/perfetto.h"

namespace prr::obs {

namespace {

bool skipped(const TraceRecord& r, const DiffOptions& opts) {
  if (!opts.ignore_timers) return false;
  return r.type == TraceType::kTimerSchedule ||
         r.type == TraceType::kTimerCancel;
}

// TraceRecord is 64 bytes with no padding (static_asserted at the
// definition), so memcmp is a complete equality test.
bool equal(const TraceRecord& x, const TraceRecord& y) {
  return std::memcmp(&x, &y, sizeof(TraceRecord)) == 0;
}

std::size_t next_unskipped(const std::vector<TraceRecord>& v, std::size_t i,
                           const DiffOptions& opts) {
  while (i < v.size() && skipped(v[i], opts)) ++i;
  return i;
}

const char* field_name(TraceType t, int i) {
  // Names for the f[] payload words of the record types a divergence
  // lands on in practice (per-ACK decisions and transmissions); other
  // types fall back to positional names.
  switch (t) {
    case TraceType::kAck: {
      static const char* kNames[] = {"ack",      "cwnd",      "pipe",
                                     "ssthresh", "delivered", "snd_nxt"};
      return kNames[i];
    }
    case TraceType::kPrr: {
      static const char* kNames[] = {"prr_delivered", "prr_out",
                                     "recover_fs",    "prr_ssthresh",
                                     "cwnd",          "f5"};
      return kNames[i];
    }
    case TraceType::kTransmit: {
      static const char* kNames[] = {"seq", "len", "cwnd",
                                     "snd_nxt", "f4", "f5"};
      return kNames[i];
    }
    case TraceType::kEnterRecovery: {
      static const char* kNames[] = {"flight",     "ssthresh",
                                     "pipe",       "prior_cwnd",
                                     "recovery_point", "f5"};
      return kNames[i];
    }
    case TraceType::kExitRecovery: {
      static const char* kNames[] = {"cwnd_after", "pipe",
                                     "retransmits", "bytes_sent",
                                     "cwnd_at_exit", "max_burst"};
      return kNames[i];
    }
    default: {
      static const char* kNames[] = {"f0", "f1", "f2", "f3", "f4", "f5"};
      return kNames[i];
    }
  }
}

}  // namespace

DivergencePoint first_divergence(const std::vector<TraceRecord>& a,
                                 const std::vector<TraceRecord>& b,
                                 const DiffOptions& opts) {
  DivergencePoint d;
  std::vector<TraceRecord> context;
  std::size_t i = next_unskipped(a, 0, opts);
  std::size_t j = next_unskipped(b, 0, opts);
  while (i < a.size() && j < b.size()) {
    if (!equal(a[i], b[j])) {
      d.diverged = true;
      d.index_a = i;
      d.index_b = j;
      d.a = a[i];
      d.b = b[j];
      d.common = std::move(context);
      return d;
    }
    context.push_back(a[i]);
    if (context.size() > opts.context_records) {
      context.erase(context.begin());
    }
    ++d.common_count;
    i = next_unskipped(a, i + 1, opts);
    j = next_unskipped(b, j + 1, opts);
  }
  d.a_ended = i >= a.size();
  d.b_ended = j >= b.size();
  if (d.a_ended != d.b_ended) {
    // One stream has more records: divergence by exhaustion.
    d.diverged = true;
    d.index_a = i;
    d.index_b = j;
    if (!d.a_ended) d.a = a[i];
    if (!d.b_ended) d.b = b[j];
    d.common = std::move(context);
  }
  return d;
}

std::string explain_divergence(const DivergencePoint& d,
                               const std::string& arm_a,
                               const std::string& arm_b) {
  std::string out;
  char buf[256];
  if (!d.diverged) {
    std::snprintf(buf, sizeof(buf),
                  "no divergence: %s and %s produced identical traces "
                  "(%zu records compared)\n",
                  arm_a.c_str(), arm_b.c_str(), d.common_count);
    return buf;
  }
  if (!d.common.empty()) {
    out += "common prefix (last " + std::to_string(d.common.size()) +
           " records, identical under both arms):\n";
    for (const TraceRecord& r : d.common) {
      out += "  " + describe(r) + "\n";
    }
  }
  std::snprintf(buf, sizeof(buf),
                "FIRST DIVERGENCE after %zu identical records:\n",
                d.common_count);
  out += buf;
  if (d.a_ended || d.b_ended) {
    const std::string& ended = d.a_ended ? arm_a : arm_b;
    const std::string& cont = d.a_ended ? arm_b : arm_a;
    const TraceRecord& r = d.a_ended ? d.b : d.a;
    out += "  " + ended + ": trace ended\n";
    out += "  " + cont + ": " + describe(r) + "\n";
    return out;
  }
  out += "  " + arm_a + ": " + describe(d.a) + "\n";
  out += "  " + arm_b + ": " + describe(d.b) + "\n";
  if (d.a.type == d.b.type) {
    // Same decision point, different outcome: name exactly what moved.
    out += "  differing fields:";
    if (d.a.at_ns != d.b.at_ns) {
      std::snprintf(buf, sizeof(buf), " at(%.3fms vs %.3fms)",
                    static_cast<double>(d.a.at_ns) / 1e6,
                    static_cast<double>(d.b.at_ns) / 1e6);
      out += buf;
    }
    if (d.a.a != d.b.a) {
      std::snprintf(buf, sizeof(buf), " a(%u vs %u)", d.a.a, d.b.a);
      out += buf;
    }
    if (d.a.b != d.b.b) {
      std::snprintf(buf, sizeof(buf), " b(%u vs %u)", d.a.b, d.b.b);
      out += buf;
    }
    for (int k = 0; k < 6; ++k) {
      if (d.a.f[k] != d.b.f[k]) {
        std::snprintf(buf, sizeof(buf), " %s(%llu vs %llu)",
                      field_name(d.a.type, k),
                      static_cast<unsigned long long>(d.a.f[k]),
                      static_cast<unsigned long long>(d.b.f[k]));
        out += buf;
      }
    }
    out += "\n";
  } else {
    out += "  different record types: " + std::string(to_string(d.a.type)) +
           " vs " + to_string(d.b.type) + "\n";
  }
  return out;
}

std::string perfetto_diff_json(const std::vector<TraceRecord>& a,
                               const std::vector<TraceRecord>& b,
                               const std::string& arm_a,
                               const std::string& arm_b,
                               const DiffOptions& opts) {
  const DivergencePoint d = first_divergence(a, b, opts);
  std::string out = "{\"traceEvents\":[\n";
  perfetto_append_process(out, a, 1, arm_a);
  perfetto_append_process(out, b, 2, arm_b);
  if (d.diverged) {
    const struct {
      int pid;
      bool ended;
      const TraceRecord* r;
    } sides[] = {{1, d.a_ended, &d.a}, {2, d.b_ended, &d.b}};
    for (const auto& side : sides) {
      if (side.ended) continue;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,"
                    "\"name\":\"FIRST DIVERGENCE\",\"s\":\"p\",",
                    side.pid, side.r->conn,
                    static_cast<double>(side.r->at_ns) / 1e3);
      out += buf;
      out += "\"args\":{\"detail\":" + json_quote(describe(*side.r)) +
             "}},\n";
    }
  }
  out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_complete\",\"args\":{"
         "\"records\":" +
         std::to_string(a.size() + b.size()) + "}}\n";
  out += "]}\n";
  return out;
}

}  // namespace prr::obs
