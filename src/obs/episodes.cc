#include "obs/episodes.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace prr::obs {

namespace {

// TcpState::kRecovery as it appears in TraceRecord a/b fields. obs/
// cannot include tcp/ headers (layering); the correspondence is pinned
// by the static_asserts in obs/instrument.cc.
constexpr unsigned kStateRecovery = 2;

}  // namespace

const char* to_string(EpisodeExit e) {
  switch (e) {
    case EpisodeExit::kCompleted: return "completed";
    case EpisodeExit::kUndo: return "undo";
    case EpisodeExit::kRtoInterrupted: return "rto_interrupted";
    case EpisodeExit::kTruncated: return "truncated";
  }
  return "?";
}

void EpisodeBuilder::StreamCounts::merge(const StreamCounts& o) {
  data_segments_sent += o.data_segments_sent;
  retransmits_total += o.retransmits_total;
  fast_retransmits += o.fast_retransmits;
  dsacks_received += o.dsacks_received;
  undo_events += o.undo_events;
  lost_retransmits_detected += o.lost_retransmits_detected;
  lost_fast_retransmits += o.lost_fast_retransmits;
  timeouts_total += o.timeouts_total;
}

void EpisodeBuilder::begin(const TraceRecord& r) {
  current_ = RecoveryEpisode{};
  EpisodeSummary& s = current_.summary;
  s.conn = r.conn;
  s.start_ns = r.at_ns;
  s.flight_at_start = r.f[0];
  s.ssthresh = r.f[1];
  s.pipe_at_start = r.f[2];
  s.cwnd_at_start = r.f[3];
  s.recovery_point = r.f[4];
  s.mss = r.b != 0 ? r.b : 1;
  s.via_early_retransmit = r.a != 0;
  in_episode_ = true;
  capture_post_ = false;
}

void EpisodeBuilder::close(EpisodeExit exit, int64_t end_ns) {
  current_.summary.exit = exit;
  current_.summary.end_ns = end_ns;
  episodes_.push_back(std::move(current_));
  current_ = RecoveryEpisode{};
  in_episode_ = false;
  // Start collecting the post-recovery cwnd trajectory for the episode
  // just closed (kTruncated means the stream ended — nothing follows).
  capture_post_ = exit != EpisodeExit::kTruncated;
}

void EpisodeBuilder::on_record(const TraceRecord& r) {
  EpisodeSummary& s = current_.summary;
  switch (r.type) {
    case TraceType::kEnterRecovery:
      // A new entry while one is open means the exit record was lost
      // (e.g. reconstructing from a ring tail); close defensively.
      if (in_episode_) close(EpisodeExit::kTruncated, r.at_ns);
      begin(r);
      break;

    case TraceType::kAck:
      if (in_episode_ && r.a == kStateRecovery) {
        ++s.acks;
        s.delivered_bytes += r.f[4];
        const uint64_t sndcnt = r.f[1] > r.f[2] ? r.f[1] - r.f[2] : 0;
        s.sndcnt_bytes += sndcnt;
        if (opts_.keep_ledgers) {
          EpisodeAck row;
          row.at_ns = r.at_ns;
          row.ack = r.f[0];
          row.cwnd = r.f[1];
          row.pipe = r.f[2];
          row.ssthresh = r.f[3];
          row.delivered = r.f[4];
          row.sndcnt = sndcnt;
          current_.ledger.push_back(row);
        }
      } else if (capture_post_ && !episodes_.empty()) {
        EpisodeSummary& last = episodes_.back().summary;
        if (last.post_cwnd_count < EpisodeSummary::kPostTrajectory) {
          last.post_cwnd[last.post_cwnd_count++] = r.f[1];
        } else {
          capture_post_ = false;
        }
      }
      break;

    case TraceType::kPrr:
      // Emitted right after the kAck record for the same ACK; annotate
      // the latest ledger row with the PRR internals.
      if (in_episode_ && opts_.keep_ledgers && !current_.ledger.empty()) {
        EpisodeAck& row = current_.ledger.back();
        row.prr_valid = true;
        row.prr_proportional = r.a != 0;
        row.prr_delivered = r.f[0];
        row.prr_out = r.f[1];
        row.recover_fs = r.f[2];
      }
      break;

    case TraceType::kTransmit:
      ++stream_.data_segments_sent;
      if (r.a != 0) {
        ++stream_.retransmits_total;
        if (r.b == kStateRecovery) ++stream_.fast_retransmits;
      }
      if (in_episode_ && r.b == kStateRecovery) {
        if (r.a != 0) ++s.retransmits;
        s.bytes_sent_during += r.f[1];
      }
      break;

    case TraceType::kSackSeen:
      if (r.a != 0) {
        ++stream_.dsacks_received;
        if (in_episode_) ++s.dsacks_seen;
      } else if (in_episode_) {
        ++s.sacks_seen;
      }
      break;

    case TraceType::kLostRetransmit:
      stream_.lost_retransmits_detected += r.f[0];
      stream_.lost_fast_retransmits += r.f[1];
      break;

    case TraceType::kExitRecovery:
      if (in_episode_) {
        s.cwnd_after_exit = r.f[0];
        s.pipe_at_exit = r.f[1];
        // The sender's own tallies are authoritative; they equal the
        // stream-derived counts whenever the whole episode was seen,
        // and repair them when the head was cut off by the ring.
        s.retransmits = r.f[2];
        s.bytes_sent_during = r.f[3];
        s.cwnd_at_exit = r.f[4];
        s.max_burst_segments = r.f[5];
        s.slow_start_after = r.f[0] < s.ssthresh;
        close(EpisodeExit::kCompleted, r.at_ns);
      }
      break;

    case TraceType::kUndo:
      ++stream_.undo_events;
      // a == 0: DSACK/Eifel undo — ends the episode when one is open
      // (the sender restores cwnd/ssthresh and leaves recovery).
      // a == 1: spurious-RTO undo, outside fast recovery by definition.
      if (r.a == 0 && in_episode_) {
        s.cwnd_at_exit = r.f[0];
        s.cwnd_after_exit = r.f[0];
        s.pipe_at_exit = r.f[2];
        s.max_burst_segments = r.f[3];
        // The sender restores ssthresh before judging slow-start, so
        // compare against the restored value carried on the record.
        s.slow_start_after = r.f[0] < r.f[1];
        close(EpisodeExit::kUndo, r.at_ns);
      }
      break;

    case TraceType::kRtoFired:
      ++stream_.timeouts_total;
      if (in_episode_) {
        // Mirrors finish_recovery_event on the RTO path: cwnd is still
        // the pre-reset value and ssthresh still the entry value, and
        // the exit-window fields stay unset.
        s.max_burst_segments = r.f[5];
        s.slow_start_after = r.f[2] < s.ssthresh;
        close(EpisodeExit::kRtoInterrupted, r.at_ns);
      }
      break;

    default:
      break;
  }
}

void EpisodeBuilder::finish() {
  if (in_episode_) {
    close(EpisodeExit::kTruncated, current_.summary.start_ns);
  }
  capture_post_ = false;
}

void EpisodeBuilder::reset() {
  episodes_.clear();
  stream_ = StreamCounts{};
  current_ = RecoveryEpisode{};
  in_episode_ = false;
  capture_post_ = false;
}

void EpisodeTable::fold(const EpisodeBuilder& b) {
  for (const RecoveryEpisode& e : b.episodes()) {
    const EpisodeSummary& s = e.summary;
    rows_.push_back(s);
    if (!s.finished()) continue;
    ++finished_;
    duration_us_.record(static_cast<uint64_t>(
        std::max<int64_t>(0, (s.end_ns - s.start_ns) / 1000)));
    retx_.record(s.retransmits);
    acks_.record(s.acks);
    sndcnt_.record(s.sndcnt_bytes);
  }
  stream_.merge(b.stream());
}

void EpisodeTable::merge(const EpisodeTable& other) {
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  stream_.merge(other.stream_);
  finished_ += other.finished_;
  duration_us_.merge(other.duration_us_);
  retx_.merge(other.retx_);
  acks_.merge(other.acks_);
  sndcnt_.merge(other.sndcnt_);
}

namespace {

// Table 5 compares pipe and ssthresh in whole segments, exactly as
// stats::RecoveryLog does (integer division per operand).
int seg_diff(const EpisodeSummary& s) {
  const int64_t pipe_segs = static_cast<int64_t>(s.pipe_at_start / s.mss);
  const int64_t ss_segs = static_cast<int64_t>(s.ssthresh / s.mss);
  return static_cast<int>(pipe_segs - ss_segs);
}

}  // namespace

double EpisodeTable::fraction_start_below_ssthresh() const {
  if (finished_ == 0) return 0;
  std::size_t n = 0;
  for (const auto& s : rows_)
    if (s.finished()) n += seg_diff(s) < 0;
  return static_cast<double>(n) / static_cast<double>(finished_);
}

double EpisodeTable::fraction_start_equal_ssthresh() const {
  if (finished_ == 0) return 0;
  std::size_t n = 0;
  for (const auto& s : rows_)
    if (s.finished()) n += seg_diff(s) == 0;
  return static_cast<double>(n) / static_cast<double>(finished_);
}

double EpisodeTable::fraction_start_above_ssthresh() const {
  if (finished_ == 0) return 0;
  std::size_t n = 0;
  for (const auto& s : rows_)
    if (s.finished()) n += seg_diff(s) > 0;
  return static_cast<double>(n) / static_cast<double>(finished_);
}

util::Samples EpisodeTable::pipe_minus_ssthresh_segs() const {
  util::Samples out;
  for (const auto& s : rows_)
    if (s.finished()) out.add(s.pipe_minus_ssthresh_segs());
  return out;
}

util::Samples EpisodeTable::cwnd_minus_ssthresh_exit_segs() const {
  util::Samples out;
  for (const auto& s : rows_)
    if (s.completed()) out.add(s.cwnd_minus_ssthresh_at_exit_segs());
  return out;
}

util::Samples EpisodeTable::cwnd_after_exit_segs() const {
  util::Samples out;
  for (const auto& s : rows_)
    if (s.completed()) out.add(s.cwnd_after_exit_segs());
  return out;
}

util::Samples EpisodeTable::recovery_time_ms() const {
  util::Samples out;
  for (const auto& s : rows_)
    if (s.finished()) out.add(s.duration().ms_d());
  return out;
}

double EpisodeTable::fraction_slow_start_after() const {
  std::size_t n = 0, denom = 0;
  for (const auto& s : rows_) {
    if (!s.completed()) continue;
    ++denom;
    n += s.slow_start_after;
  }
  return denom == 0 ? 0
                    : static_cast<double>(n) / static_cast<double>(denom);
}

double EpisodeTable::fraction_with_timeout() const {
  if (finished_ == 0) return 0;
  std::size_t n = 0;
  for (const auto& s : rows_)
    if (s.finished()) n += s.interrupted_by_timeout();
  return static_cast<double>(n) / static_cast<double>(finished_);
}

namespace {

void append_hist_json(std::string& out, const char* name,
                      const LogHistogram& h) {
  out += json_quote(name) + ":{";
  out += "\"count\":" + std::to_string(h.count());
  out += ",\"mean\":" + json_double(h.mean());
  out += ",\"p50\":" + json_double(h.p50());
  out += ",\"p95\":" + json_double(h.p95());
  out += ",\"p99\":" + json_double(h.p99());
  out += "}";
}

}  // namespace

std::string EpisodeTable::to_json() const {
  std::string out = "{";
  out += "\"episodes\":" + std::to_string(total());
  out += ",\"finished\":" + std::to_string(finished());
  out += ",\"truncated\":" + std::to_string(truncated());
  std::size_t completed = 0, undone = 0, rto = 0;
  for (const auto& s : rows_) {
    completed += s.exit == EpisodeExit::kCompleted;
    undone += s.exit == EpisodeExit::kUndo;
    rto += s.exit == EpisodeExit::kRtoInterrupted;
  }
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"undo\":" + std::to_string(undone);
  out += ",\"rto_interrupted\":" + std::to_string(rto);
  out += ",\"stream\":{";
  out += "\"data_segments_sent\":" +
         std::to_string(stream_.data_segments_sent);
  out += ",\"retransmits_total\":" +
         std::to_string(stream_.retransmits_total);
  out += ",\"fast_retransmits\":" + std::to_string(stream_.fast_retransmits);
  out += ",\"dsacks_received\":" + std::to_string(stream_.dsacks_received);
  out += ",\"undo_events\":" + std::to_string(stream_.undo_events);
  out += ",\"lost_retransmits_detected\":" +
         std::to_string(stream_.lost_retransmits_detected);
  out += ",\"lost_fast_retransmits\":" +
         std::to_string(stream_.lost_fast_retransmits);
  out += ",\"timeouts_total\":" + std::to_string(stream_.timeouts_total);
  out += "},\"histograms\":{";
  append_hist_json(out, "duration_us", duration_us_);
  out += ",";
  append_hist_json(out, "retransmits", retx_);
  out += ",";
  append_hist_json(out, "acks", acks_);
  out += ",";
  append_hist_json(out, "sndcnt_bytes", sndcnt_);
  out += "}}";
  return out;
}

std::string EpisodeTable::summary_string() const {
  char buf[256];
  std::string out;
  std::size_t completed = 0, undone = 0, rto = 0;
  for (const auto& s : rows_) {
    completed += s.exit == EpisodeExit::kCompleted;
    undone += s.exit == EpisodeExit::kUndo;
    rto += s.exit == EpisodeExit::kRtoInterrupted;
  }
  std::snprintf(buf, sizeof(buf),
                "episodes: %zu (completed %zu, undo %zu, rto %zu, "
                "truncated %zu)\n",
                total(), completed, undone, rto, truncated());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "duration_us: p50 %.0f p95 %.0f p99 %.0f\n",
                duration_us_.p50(), duration_us_.p95(), duration_us_.p99());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "retransmits/episode: mean %.2f p50 %.0f p95 %.0f p99 %.0f\n",
                retx_.mean(), retx_.p50(), retx_.p95(), retx_.p99());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "acks/episode: mean %.2f p50 %.0f p95 %.0f p99 %.0f\n",
                acks_.mean(), acks_.p50(), acks_.p95(), acks_.p99());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "stream: sent %" PRIu64 " retx %" PRIu64 " (fast %" PRIu64
                ") dsacks %" PRIu64 " undo %" PRIu64 " lost-retx %" PRIu64
                " timeouts %" PRIu64 "\n",
                stream_.data_segments_sent, stream_.retransmits_total,
                stream_.fast_retransmits, stream_.dsacks_received,
                stream_.undo_events, stream_.lost_retransmits_detected,
                stream_.timeouts_total);
  out += buf;
  return out;
}

std::string describe(const EpisodeSummary& s) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "conn %u %10.3fms +%.3fms %-15s%s pipe0=%" PRIu64 " ssthresh=%" PRIu64
      " cwnd0=%" PRIu64 " exit_cwnd=%" PRIu64 " retx=%" PRIu64
      " acks=%" PRIu64 "%s",
      s.conn, static_cast<double>(s.start_ns) / 1e6,
      static_cast<double>(s.end_ns - s.start_ns) / 1e6, to_string(s.exit),
      s.via_early_retransmit ? " (ER)" : "", s.pipe_at_start, s.ssthresh,
      s.cwnd_at_start, s.cwnd_after_exit, s.retransmits, s.acks,
      s.slow_start_after ? " slow-start-after" : "");
  return std::string(buf);
}

std::string describe(const RecoveryEpisode& e) {
  const EpisodeSummary& s = e.summary;
  std::string out = describe(s);
  out += '\n';
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  entry: flight=%" PRIu64 " recovery_point=%" PRIu64
                " mss=%u trigger=%s\n",
                s.flight_at_start, s.recovery_point, s.mss,
                s.via_early_retransmit ? "early-retransmit" : "dupthresh");
  out += buf;
  for (const EpisodeAck& a : e.ledger) {
    std::snprintf(buf, sizeof(buf),
                  "  %10.3fms ack=%" PRIu64 " cwnd=%" PRIu64 " pipe=%" PRIu64
                  " delivered=%" PRIu64 " sndcnt=%" PRIu64,
                  static_cast<double>(a.at_ns) / 1e6, a.ack, a.cwnd, a.pipe,
                  a.delivered, a.sndcnt);
    out += buf;
    if (a.prr_valid) {
      std::snprintf(buf, sizeof(buf),
                    " [prr %s prr_delivered=%" PRIu64 " prr_out=%" PRIu64
                    " recover_fs=%" PRIu64 "]",
                    a.prr_proportional ? "proportional" : "reduction-bound",
                    a.prr_delivered, a.prr_out, a.recover_fs);
      out += buf;
    }
    out += '\n';
  }
  std::snprintf(buf, sizeof(buf),
                "  exit: %s cwnd_at_exit=%" PRIu64 " cwnd_after=%" PRIu64
                " pipe=%" PRIu64 " delivered=%" PRIu64 " sndcnt=%" PRIu64
                " max_burst=%" PRIu64 "\n",
                to_string(s.exit), s.cwnd_at_exit, s.cwnd_after_exit,
                s.pipe_at_exit, s.delivered_bytes, s.sndcnt_bytes,
                s.max_burst_segments);
  out += buf;
  if (s.post_cwnd_count > 0) {
    out += "  post-recovery cwnd:";
    for (uint8_t i = 0; i < s.post_cwnd_count; ++i) {
      std::snprintf(buf, sizeof(buf), " %" PRIu64, s.post_cwnd[i]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace prr::obs
