// `ss -i`-style one-connection state dump: congestion-control and
// recovery algorithm, CA state, RTT estimator internals, window and
// scoreboard occupancy — the same live-internals view "TCPTuner" argues
// for, formatted close enough to Linux `ss -tin` that eyes trained on
// production output parse it instantly. Pure inspection: reads only the
// Sender's const accessors, touches nothing.
#pragma once

#include <string>

namespace prr::tcp {
class Sender;
}

namespace prr::obs {

// Multi-line human-readable snapshot, e.g.
//   conn 7 state:recovery
//     cubic prr rto:204ms rtt:41.8/2.1ms mss:1430 dupthresh:3
//     cwnd:14 ssthresh:7 pipe:11440 una:1250200 nxt:1310260 rwnd:65535
//     sacked:3 lost:2 retrans:17 timers:rto
std::string snapshot(const tcp::Sender& sender, uint32_t conn_id);

// Single JSON object with the same fields, for machine consumption.
std::string snapshot_json(const tcp::Sender& sender, uint32_t conn_id);

}  // namespace prr::obs
