// Per-connection instrumentation bundle: attaches one FlightRecorder to
// a Connection's sender (CA-state, per-ACK, timer, retransmit records)
// and to its path's wire tap (kWireData/kWireAck records), and offers
// the single subscription point downstream consumers share. trace/
// timeseq and trace/pcap attach HERE instead of installing their own
// sender hooks and wire taps — one set of instrumentation points, many
// consumers (satellite: the bespoke taps they used to install are gone).
//
// The Instrument must outlive the connection's traffic; destroying it
// detaches the recorder from the sender and the tap from the path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/segment.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::obs {

class Instrument {
 public:
  // Chains onto (and preserves) any wire tap already installed on the
  // path.
  Instrument(sim::Simulator& sim, tcp::Connection& conn,
             FlightRecorder& recorder, uint32_t conn_id = 0);
  ~Instrument();
  Instrument(const Instrument&) = delete;
  Instrument& operator=(const Instrument&) = delete;

  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }
  uint32_t conn_id() const { return conn_id_; }
  tcp::Connection& connection() { return conn_; }
  sim::Simulator& simulator() { return sim_; }

  // Called for every segment entering the network, after the wire
  // record is written (trace/pcap's event source). Wire records
  // themselves are written by the Path directly (set_recorder — a few
  // stores per segment); the std::function tap is installed only when
  // the first segment-level listener registers, so record-only tracing
  // never pays a dispatch per segment.
  using WireListener =
      std::function<void(const net::Segment&, bool is_ack, sim::Time at)>;
  void add_wire_listener(WireListener l);

  // kWireData flag bits stored in TraceRecord::b (canonical values in
  // trace_record.h; kept here for existing call sites).
  static constexpr uint16_t kFlagRetransmit = kWireFlagRetransmit;
  static constexpr uint16_t kFlagEce = kWireFlagEce;
  static constexpr uint16_t kFlagCwr = kWireFlagCwr;
  static constexpr uint16_t kFlagEct = kWireFlagEct;
  static constexpr uint16_t kFlagCe = kWireFlagCe;
  static constexpr uint16_t kFlagHasTs = kWireFlagHasTs;

 private:
  sim::Simulator& sim_;
  tcp::Connection& conn_;
  FlightRecorder& recorder_;
  uint32_t conn_id_;
  bool tap_installed_ = false;
  std::function<void(const net::Segment&, bool, sim::Time)> prev_tap_;
  std::vector<WireListener> wire_listeners_;
};

}  // namespace prr::obs
