// Chrome trace-event JSON exporter, loadable in ui.perfetto.dev or
// chrome://tracing. Layout: one process ("prr simulator", pid 1), one
// thread track per connection (tid = connection id, named via "M"
// metadata events), plus per-connection counter tracks:
//
//   "conn<id> window" — cwnd / pipe / ssthresh sampled at every ACK
//   "conn<id> prr"    — prr_delivered / prr_out during fast recovery
//
// Recovery episodes render as "B"/"E" duration slices on the
// connection's track; fault-injector actions as "X" complete slices
// with their real duration; state changes, retransmits, RTO fires,
// undo, abort, timer activity and invariant violations as "i" instant
// events. Wire-level records (kWireData/kWireAck) are deliberately not
// exported — at scale they dwarf everything else, and trace/pcap is
// the right tool for packet-level views.
//
// Timestamps: trace-event "ts" is microseconds; simulation time is
// nanoseconds, exported as fractional us with ns resolution.
#pragma once

#include <string>
#include <vector>

#include "obs/trace_record.h"

namespace prr::obs {

class FlightRecorder;

// Records may span multiple connections and need not be sorted; events
// are emitted in input order (the trace-event format does not require
// sorting, viewers sort by ts).
std::string perfetto_trace_json(const std::vector<TraceRecord>& records);

// Everything currently held in the ring, oldest first.
std::string perfetto_trace_json(const FlightRecorder& rec);

// Appends one record stream's process/thread metadata and events under
// the given pid/process name (no envelope, no sentinel) — the
// composition point for multi-process exports such as the arm-vs-arm
// diff track (obs/trace_diff.h), which lays two streams side by side
// as two named processes in one trace.
void perfetto_append_process(std::string& out,
                             const std::vector<TraceRecord>& records,
                             int pid, const std::string& process_name);

}  // namespace prr::obs
