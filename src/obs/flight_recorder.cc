#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace prr::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity_records) {
  ring_.resize(round_up_pow2(std::max<std::size_t>(capacity_records, 2)));
  mask_ = ring_.size() - 1;
}

std::vector<TraceRecord> FlightRecorder::tail(std::size_t max_records) const {
  const std::size_t n = std::min(max_records, size());
  std::vector<TraceRecord> out;
  out.reserve(n);
  const std::size_t first = size() - n;
  for (std::size_t i = first; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

void FlightRecorder::clear() {
  next_ = 0;
  std::memset(counts_, 0, sizeof(counts_));
}

}  // namespace prr::obs
