// Metrics registry (DESIGN.md §8): named counters, gauges, and
// log2-bucket histograms. Instruments are registered once at setup —
// registration returns a pointer that stays valid for the registry's
// lifetime — and sampled O(1) with no allocation on the hot path.
// Registries merge deterministically (counters sum, gauges take the
// max, histograms sum per bucket), mirroring how ArmResult shards
// merge in connection-id order, so per-arm metric totals are
// bit-identical at any worker-thread count. `to_json()` walks the
// name-sorted maps, so the exported JSON is byte-stable too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/log2_hist.h"

namespace prr::obs {

class Counter {
 public:
  void add(uint64_t v) { value_ += v; }
  void inc() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-written-wins locally; merge keeps the max across shards (the
// only deterministic choice that is also useful for high-water marks).
class Gauge {
 public:
  void set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Histogram over log2 buckets. The implementation lives in
// util::Log2Histogram so layers below obs (stats' bounded mode) can use
// the same fold; this alias keeps the obs-facing name and API stable.
using LogHistogram = util::Log2Histogram;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Idempotent: re-registering a name returns the existing instrument.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LogHistogram* histogram(const std::string& name);

  // nullptr when absent — for tests and reconciliation tools.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LogHistogram* find_histogram(const std::string& name) const;

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Deterministic by-name merge: counters sum, gauges max, histograms
  // bucket-sum. Instruments present only in `other` are created.
  void merge(const MetricsRegistry& other);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with keys in
  // sorted order; histograms export count/sum/min/max/mean/p50/p99 and
  // the non-empty buckets as [[floor,count],...].
  std::string to_json() const;

 private:
  // std::map for sorted, pointer-stable instruments; lookups happen at
  // registration time only, never per sample.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace prr::obs
