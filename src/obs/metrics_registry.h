// Metrics registry (DESIGN.md §8): named counters, gauges, and
// log2-bucket histograms. Instruments are registered once at setup —
// registration returns a pointer that stays valid for the registry's
// lifetime — and sampled O(1) with no allocation on the hot path.
// Registries merge deterministically (counters sum, gauges take the
// max, histograms sum per bucket), mirroring how ArmResult shards
// merge in connection-id order, so per-arm metric totals are
// bit-identical at any worker-thread count. `to_json()` walks the
// name-sorted maps, so the exported JSON is byte-stable too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace prr::obs {

class Counter {
 public:
  void add(uint64_t v) { value_ += v; }
  void inc() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-written-wins locally; merge keeps the max across shards (the
// only deterministic choice that is also useful for high-water marks).
class Gauge {
 public:
  void set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Histogram over log2 buckets: a sample v lands in bucket bit_width(v)
// (bucket 0 holds v == 0), i.e. bucket b spans [2^(b-1), 2^b). Record
// is a handful of arithmetic ops — no allocation, no search — which is
// what lets per-ACK cost and event-slice timings feed it from the hot
// path. Covers the full uint64 range in 65 buckets.
class LogHistogram {
 public:
  static constexpr int kBuckets = 65;

  void record(uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  static int bucket_of(uint64_t v) {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  // Inclusive lower edge of bucket b.
  static uint64_t bucket_floor(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int b) const { return buckets_[b]; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  // Upper edge of the bucket containing the q-quantile (q in [0,1]) —
  // log2 resolution, good enough for "p99 is ~2-4us" statements.
  uint64_t approx_quantile(double q) const;
  // q-quantile with linear interpolation across the ranks inside the
  // containing bucket, clamped to the observed [min, max]. Still log2
  // resolution between buckets, but smooth within one — the form the
  // episode tables and registry JSON report.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void merge(const LogHistogram& other);

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Idempotent: re-registering a name returns the existing instrument.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LogHistogram* histogram(const std::string& name);

  // nullptr when absent — for tests and reconciliation tools.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LogHistogram* find_histogram(const std::string& name) const;

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Deterministic by-name merge: counters sum, gauges max, histograms
  // bucket-sum. Instruments present only in `other` are created.
  void merge(const MetricsRegistry& other);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with keys in
  // sorted order; histograms export count/sum/min/max/mean/p50/p99 and
  // the non-empty buckets as [[floor,count],...].
  std::string to_json() const;

 private:
  // std::map for sorted, pointer-stable instruments; lookups happen at
  // registration time only, never per sample.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace prr::obs
