// Flight recorder: a preallocated power-of-two ring of fixed-size
// TraceRecords (DESIGN.md §8). Writers pay a null check when tracing is
// off and a bounds-masked store when on — never a heap allocation, so
// the PR 3 steady-state zero-alloc invariant holds with tracing enabled
// (tests/test_alloc_free.cc). When the ring wraps, the oldest records
// are overwritten; `dropped()` counts them. Readers (Perfetto export,
// quarantine tail capture, trace/timeseq) walk `size()` records oldest
// first via `operator[]` or take the last N via `tail()`.
//
// Instrumentation sites use the PRR_TRACE macro rather than calling
// write() directly: under -DPRR_TRACE_ENABLED=0 the whole statement —
// including argument evaluation — compiles away, which is what keeps
// the "tracing compiled out" build at zero overhead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace_record.h"

namespace prr::obs {

#ifndef PRR_TRACE_ENABLED
#define PRR_TRACE_ENABLED 1
#endif

constexpr bool trace_compiled_in() { return PRR_TRACE_ENABLED != 0; }

#if PRR_TRACE_ENABLED
// rec is a FlightRecorder*; the remaining arguments are forwarded to
// make_record and are evaluated only when a recorder is attached.
#define PRR_TRACE(rec, ...)                                   \
  do {                                                        \
    if (rec) (rec)->write(::prr::obs::make_record(__VA_ARGS__)); \
  } while (0)
#else
#define PRR_TRACE(rec, ...) \
  do {                      \
  } while (0)
#endif

class FlightRecorder {
 public:
  // Capacity is rounded up to a power of two; the ring is allocated
  // once here and never resized.
  explicit FlightRecorder(std::size_t capacity_records = 4096);

  void write(const TraceRecord& r) {
    ring_[next_ & mask_] = r;
    ++next_;
    ++counts_[static_cast<std::size_t>(r.type)];
    if (!listeners_.empty()) {
      for (const auto& l : listeners_) l(r);
    }
  }

  std::size_t capacity() const { return ring_.size(); }
  // Records currently held (≤ capacity).
  std::size_t size() const {
    return next_ < ring_.size() ? next_ : ring_.size();
  }
  // Records ever written, including overwritten ones.
  uint64_t total_written() const { return next_; }
  uint64_t dropped() const {
    return next_ < ring_.size() ? 0 : next_ - ring_.size();
  }
  uint64_t count(TraceType t) const {
    return counts_[static_cast<std::size_t>(t)];
  }

  // i-th surviving record, oldest first (0 ≤ i < size()).
  const TraceRecord& operator[](std::size_t i) const {
    const uint64_t oldest = next_ - size();
    return ring_[(oldest + i) & mask_];
  }

  // The surviving records as at most two contiguous runs, oldest first.
  // An unwrapped ring (the common sweep case: capacity sized above the
  // connection's record count) is a single run, letting bulk readers —
  // the store encoder — walk raw storage with no per-record rotation
  // arithmetic and no copy. len[1] == 0 unless the ring wrapped.
  struct Runs {
    const TraceRecord* ptr[2];
    std::size_t len[2];
  };
  Runs runs() const {
    const std::size_t n = size();
    const std::size_t oldest =
        static_cast<std::size_t>((next_ - n) & mask_);
    const std::size_t first =
        n < ring_.size() - oldest ? n : ring_.size() - oldest;
    return {{ring_.data() + oldest, ring_.data()}, {first, n - first}};
  }

  // Last min(max_records, size()) records, oldest first. Copies; for
  // post-mortem capture (quarantine artifacts), not the hot path.
  std::vector<TraceRecord> tail(std::size_t max_records) const;

  // Fan-out for setup-time subscribers (trace/timeseq, trace/pcap):
  // each listener sees every record as it is written. Listeners must
  // not allocate if the zero-alloc invariant matters to the caller.
  void add_listener(std::function<void(const TraceRecord&)> l) {
    listeners_.push_back(std::move(l));
  }

  // Detaches the most recently added listener. Lets a caller that
  // borrows a shared recorder (one episode builder per connection on a
  // reused per-shard ring) subscribe for one connection's lifetime and
  // leave earlier subscribers untouched — clear() deliberately keeps
  // listeners, so scoped subscribers must unhook themselves.
  void pop_listener() {
    if (!listeners_.empty()) listeners_.pop_back();
  }
  std::size_t listener_count() const { return listeners_.size(); }

  void clear();

 private:
  std::vector<TraceRecord> ring_;
  uint64_t mask_ = 0;
  uint64_t next_ = 0;
  uint64_t counts_[static_cast<std::size_t>(TraceType::kCount)] = {};
  std::vector<std::function<void(const TraceRecord&)>> listeners_;
};

}  // namespace prr::obs
