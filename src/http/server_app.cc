#include "http/server_app.h"

#include <algorithm>
#include <utility>

namespace prr::http {

ServerApp::ServerApp(sim::Simulator& sim, tcp::Connection& conn,
                     std::vector<ResponseSpec> responses,
                     stats::LatencyTracker* latency)
    : sim_(sim),
      conn_(conn),
      responses_(std::move(responses)),
      latency_(latency),
      chunk_timer_(sim, [this] { write_chunk(); }) {
  path_rtt_ms_ = (conn.config().path.data_link.propagation_delay +
                  conn.config().path.ack_link.propagation_delay)
                     .ms_d();
  wire_hooks();
}

void ServerApp::wire_hooks() {
  // Chain onto any hooks already installed (e.g. a trace). A chaining
  // closure captures this + a std::function and exceeds the inline
  // buffer, so it heap-allocates on assignment; in the pooled sweep
  // Sender::reset has just cleared every hook, and the bare this-only
  // closures below stay inline — keeping the warm reset allocation-free.
  auto& tx = conn_.sender().on_transmit_hook;
  if (tx) {
    tx = [this, prev = std::move(tx)](uint64_t seq, uint32_t len, bool r) {
      prev(seq, len, r);
      on_transmit(seq, len, r);
    };
  } else {
    tx = [this](uint64_t seq, uint32_t len, bool r) {
      on_transmit(seq, len, r);
    };
  }
  auto& una = conn_.sender().on_una_advance_hook;
  if (una) {
    una = [this, prev = std::move(una)](uint64_t u) {
      prev(u);
      on_una(u);
    };
  } else {
    una = [this](uint64_t u) { on_una(u); };
  }
  auto& abort = conn_.sender().on_abort_hook;
  if (abort) {
    abort = [this, prev = std::move(abort)] {
      prev();
      on_abort();
    };
  } else {
    abort = [this] { on_abort(); };
  }
}

void ServerApp::reset(const std::vector<ResponseSpec>& responses,
                      stats::LatencyTracker* latency) {
  responses_ = responses;  // copy-assign: the spec vector keeps capacity
  latency_ = latency;
  path_rtt_ms_ = (conn_.config().path.data_link.propagation_delay +
                  conn_.config().path.ack_link.propagation_delay)
                     .ms_d();
  next_ = 0;
  completed_ = 0;
  finished_ = false;
  active_ = false;
  cur_start_ = 0;
  cur_end_ = 0;
  cur_written_ = 0;
  cur_record_ = stats::ResponseRecord{};
  first_byte_seen_ = false;
  chunk_timer_.stop();  // stale after Simulator::reset; stop() clears it
  on_finished = nullptr;
  wire_hooks();
}

void ServerApp::start() {
  if (responses_.empty()) {
    finish();
    return;
  }
  begin_response(0);
}

void ServerApp::begin_response(std::size_t idx) {
  next_ = idx;
  const ResponseSpec& spec = responses_[idx];
  auto begin = [this, &spec] {
    active_ = true;
    first_byte_seen_ = false;
    cur_start_ = conn_.sender().write_end();
    cur_end_ = cur_start_ + spec.bytes;
    cur_written_ = 0;
    cur_record_ = stats::ResponseRecord{};
    cur_record_.bytes = spec.bytes;
    cur_record_.path_rtt_ms = path_rtt_ms_;
    write_chunk();
  };
  if (spec.gap_before.is_zero()) {
    begin();
  } else {
    sim_.schedule_in(spec.gap_before, begin);
  }
}

void ServerApp::write_chunk() {
  const ResponseSpec& spec = responses_[next_];
  uint64_t n;
  if (spec.chunk_bytes == 0) {
    n = spec.bytes - cur_written_;  // unthrottled: everything at once
  } else if (cur_written_ == 0) {
    n = std::min(spec.burst_bytes > 0 ? spec.burst_bytes : spec.chunk_bytes,
                 spec.bytes);
  } else {
    n = std::min(spec.chunk_bytes, spec.bytes - cur_written_);
  }
  cur_written_ += n;
  conn_.write(n);
  if (cur_written_ < spec.bytes) {
    chunk_timer_.start(spec.chunk_interval);
  }
}

void ServerApp::on_transmit(uint64_t seq, uint32_t len, bool retx) {
  if (!active_) return;
  const uint64_t end = seq + len;
  if (end <= cur_start_ || seq >= cur_end_) return;  // other response
  if (!first_byte_seen_ && !retx && seq <= cur_start_ && end > cur_start_) {
    first_byte_seen_ = true;
    cur_record_.first_byte_sent = sim_.now();
  }
  if (retx) cur_record_.had_retransmit = true;
}

void ServerApp::on_una(uint64_t una) {
  if (!active_ || una < cur_end_) return;
  active_ = false;
  chunk_timer_.stop();
  cur_record_.last_byte_acked = sim_.now();
  cur_record_.completed = true;
  if (latency_) latency_->add(cur_record_);
  ++completed_;
  if (next_ + 1 < responses_.size()) {
    begin_response(next_ + 1);
  } else {
    finish();
  }
}

void ServerApp::on_abort() {
  if (active_) {
    active_ = false;
    chunk_timer_.stop();
    cur_record_.completed = false;
    if (latency_) latency_->add(cur_record_);
  }
  finish();
}

void ServerApp::finish() {
  if (finished_) return;
  finished_ = true;
  chunk_timer_.stop();
  if (on_finished) on_finished();
}

}  // namespace prr::http
