// Server application driving a TCP connection through a sequence of HTTP
// responses, measuring each response's TCP latency exactly as the paper
// does (first byte sent -> last byte ACKed). Supports:
//   - request gaps between responses (client think time + request upload),
//   - throttled writes at an encoding rate after an initial burst
//     (YouTube's progressive HTTP, §5.4),
//   - application stalls (a scripted pause mid-response, §4 Fig 4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "stats/latency.h"
#include "tcp/connection.h"

namespace prr::http {

struct ResponseSpec {
  uint64_t bytes = 0;
  // Delay between the previous response completing and this one starting.
  sim::Time gap_before = sim::Time::zero();
  // Throttling: 0 = write everything at once. Otherwise write
  // `burst_bytes` up front, then `chunk_bytes` every `chunk_interval`.
  uint64_t burst_bytes = 0;
  uint64_t chunk_bytes = 0;
  sim::Time chunk_interval = sim::Time::zero();

  static ResponseSpec plain(uint64_t bytes,
                            sim::Time gap = sim::Time::zero()) {
    ResponseSpec r;
    r.bytes = bytes;
    r.gap_before = gap;
    return r;
  }
};

class ServerApp {
 public:
  ServerApp(sim::Simulator& sim, tcp::Connection& conn,
            std::vector<ResponseSpec> responses,
            stats::LatencyTracker* latency = nullptr);

  // Pool-recycle: rewinds the app for the next connection on the same
  // (recycled) Connection. Copy-assigns the response list so the spec
  // vector's capacity is reused, and re-chains the sender hooks exactly
  // as the constructor does — so it must be called at the same point in
  // the per-connection wiring order (after checker/watchdog hooks are
  // installed on the freshly reset sender).
  void reset(const std::vector<ResponseSpec>& responses,
             stats::LatencyTracker* latency);

  void start();
  bool finished() const { return finished_; }
  std::size_t responses_completed() const { return completed_; }
  std::function<void()> on_finished;

 private:
  void wire_hooks();
  void begin_response(std::size_t idx);
  void write_chunk();
  void on_transmit(uint64_t seq, uint32_t len, bool retx);
  void on_una(uint64_t una);
  void on_abort();
  void finish();

  sim::Simulator& sim_;
  tcp::Connection& conn_;
  std::vector<ResponseSpec> responses_;
  stats::LatencyTracker* latency_;
  double path_rtt_ms_;

  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  bool finished_ = false;

  // Current in-flight response.
  bool active_ = false;
  uint64_t cur_start_ = 0;
  uint64_t cur_end_ = 0;
  uint64_t cur_written_ = 0;
  stats::ResponseRecord cur_record_;
  bool first_byte_seen_ = false;
  sim::Timer chunk_timer_;
};

}  // namespace prr::http
