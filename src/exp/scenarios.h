// The paper's §4.1 testbed scenarios: a 100 ms RTT, 1.2 Mbps link,
// 1000-byte MSS, Reno congestion control, scripted application writes and
// deterministic segment drops. Used by the Fig 2/3/4 benches and by the
// integration tests that assert the qualitative behaviours of each
// recovery algorithm.
#pragma once

#include <memory>
#include <string>
#include <set>
#include <utility>
#include <vector>

#include "core/prr.h"
#include "net/fault_schedule.h"
#include "sim/time.h"
#include "stats/recovery_log.h"
#include "tcp/invariants.h"
#include "tcp/metrics.h"
#include "tcp/sender.h"
#include "trace/timeseq.h"
#include "workload/population.h"

namespace prr::exp {

struct FigureScenario {
  // 1-based indices of original data segments the network drops.
  std::set<uint64_t> original_drops;
  // Indices of retransmissions to drop (counted over retransmissions).
  std::set<uint64_t> retransmit_drops;
  // Scripted application writes: (time, bytes).
  std::vector<std::pair<sim::Time, uint64_t>> writes;

  tcp::RecoveryKind recovery = tcp::RecoveryKind::kPrr;
  core::ReductionBound prr_bound = core::ReductionBound::kSlowStart;
  tcp::CcKind cc = tcp::CcKind::kNewReno;
  uint32_t mss = 1000;
  uint32_t initial_cwnd_segments = 20;
  sim::Time rtt = sim::Time::milliseconds(100);
  double link_mbps = 1.2;
  sim::Time run_for = sim::Time::seconds(5);
  int receiver_ack_every = 1;  // the paper's traces ACK every segment
  // When non-empty, a Wireshark-compatible capture of the run is written
  // to this path.
  std::string pcap_path;
  // Attach a tcp::InvariantChecker; violations land in
  // FigureRun::violations.
  bool check_invariants = false;

  // Fig 2: server writes 20 kB at t=0 and 10 kB at t=500 ms; the first
  // four segments are dropped.
  static FigureScenario fig2(tcp::RecoveryKind kind);
  // Fig 3: heavy losses — segments 1-4 and 11-16 dropped (PRR).
  static FigureScenario fig3(tcp::RecoveryKind kind);
  // Fig 4: banking — 20 segments with segment 1 lost; the application
  // stalls, then writes 10 more mid-recovery.
  static FigureScenario fig4(tcp::RecoveryKind kind);
};

struct FigureRun {
  trace::TimeSeqTrace trace;
  tcp::Metrics metrics;              // the connection's local counters
  stats::RecoveryLog recovery_log;
  uint64_t final_cwnd_bytes = 0;
  uint64_t final_ssthresh_bytes = 0;
  tcp::TcpState final_state = tcp::TcpState::kOpen;
  sim::Time all_acked_at;            // when snd.una reached write_end
  uint64_t total_written = 0;
  // Populated when FigureScenario::check_invariants is set.
  std::vector<tcp::InvariantViolation> violations;
  uint64_t acks_checked = 0;
};

FigureRun run_figure_scenario(const FigureScenario& scenario);

// ---- Chaos scenarios ----
//
// A ChaosSpec names one fault regime (which path mutations fire, how
// often, how hard). The chaos sweep runs every spec in the suite across
// all recovery arms with invariant checking on; anything that trips is
// quarantined, not fatal.
struct ChaosSpec {
  std::string name;
  net::FaultProfile profile;

  // Single-family regimes, one per fault kind the injector supports.
  static ChaosSpec blackout();         // one dark period mid-transfer
  static ChaosSpec link_flap();        // repeated short dark periods
  static ChaosSpec rtt_spike();        // transient reroute, RTT x1.5-6
  static ChaosSpec bandwidth_shift();  // permanent rate change x0.1-2
  static ChaosSpec ack_outage();       // reverse path goes dark
  static ChaosSpec receiver_stall();   // client stops ACKing, then resumes
  // All families at once with elevated probabilities — the worst case.
  static ChaosSpec everything();
};

// The specs the chaos sweep and robustness bench iterate, in order.
std::vector<ChaosSpec> standard_chaos_suite();

// Decorator: draws the base population's sample unchanged, then attaches
// a random fault schedule from `profile`. The fault draw uses a reserved
// sub-stream (fork 0xFA17) of the per-connection rng, so the base sample
// path — and hence every cross-arm comparison — is identical with and
// without chaos.
class ChaosPopulation final : public workload::Population {
 public:
  ChaosPopulation(const workload::Population& base, net::FaultProfile profile)
      : base_(base), profile_(std::move(profile)) {}

  workload::ConnectionSample sample(sim::Rng rng) const override;

 private:
  const workload::Population& base_;
  net::FaultProfile profile_;
};

}  // namespace prr::exp
