// Perfetto export of one live-service run (DESIGN.md §13): the
// scoreboard as per-arm counter tracks sampled at every snapshot
// (retx/timeout rates, latency quantiles, cumulative admissions) plus
// the control-plane instants — drift alerts and promote/hold/rollback
// decisions — from the service flight recorder, composed as a second
// process via the existing trace-event exporter (obs/perfetto.h). Drop
// the output on ui.perfetto.dev to scrub the whole experiment.
#pragma once

#include <string>

#include "exp/service.h"

namespace prr::exp {

// Chrome trace-event JSON for the full run. Deterministic: built only
// from the snapshot stream and control records, which are themselves
// bit-identical at any thread count.
std::string service_timeline_json(const ServiceResult& res);

}  // namespace prr::exp
