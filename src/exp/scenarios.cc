#include "exp/scenarios.h"

#include <fstream>

#include "net/loss_model.h"
#include "obs/instrument.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "trace/pcap.h"

namespace prr::exp {

FigureScenario FigureScenario::fig2(tcp::RecoveryKind kind) {
  FigureScenario s;
  s.original_drops = {1, 2, 3, 4};
  s.writes = {{sim::Time::zero(), 20'000},
              {sim::Time::milliseconds(500), 10'000}};
  s.recovery = kind;
  return s;
}

FigureScenario FigureScenario::fig3(tcp::RecoveryKind kind) {
  FigureScenario s;
  s.original_drops = {1, 2, 3, 4, 11, 12, 13, 14, 15, 16};
  s.writes = {{sim::Time::zero(), 20'000},
              {sim::Time::milliseconds(500), 10'000}};
  s.recovery = kind;
  return s;
}

FigureScenario FigureScenario::fig4(tcp::RecoveryKind kind) {
  FigureScenario s;
  s.original_drops = {1};
  // The application stalls after the first 20 segments and catches up
  // mid-recovery while the proportional part is still active (pipe >
  // ssthresh until ~169 ms at this link rate), releasing the banked
  // sending opportunities as a bounded burst.
  s.writes = {{sim::Time::zero(), 20'000},
              {sim::Time::milliseconds(172), 10'000}};
  s.recovery = kind;
  return s;
}

FigureRun run_figure_scenario(const FigureScenario& scenario) {
  sim::Simulator sim;
  FigureRun run;

  tcp::ConnectionConfig cfg;
  cfg.sender.mss = scenario.mss;
  cfg.sender.initial_cwnd_segments = scenario.initial_cwnd_segments;
  cfg.sender.cc = scenario.cc;
  cfg.sender.recovery = scenario.recovery;
  cfg.sender.prr_bound = scenario.prr_bound;
  cfg.receiver.ack_every = scenario.receiver_ack_every;
  cfg.path = net::Path::Config::symmetric(
      util::DataRate::mbps(scenario.link_mbps), scenario.rtt,
      /*queue_packets=*/200);

  tcp::Connection conn(sim, cfg, sim::Rng(1), &run.metrics,
                       &run.recovery_log);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(scenario.original_drops,
                                               scenario.retransmit_drops));
  std::unique_ptr<tcp::InvariantChecker> checker;
  if (scenario.check_invariants) {
    checker = std::make_unique<tcp::InvariantChecker>(sim, conn.sender());
  }
  // Single instrumentation point: the time-sequence trace and the pcap
  // writer both subscribe to the flight recorder's event stream.
  obs::FlightRecorder recorder;
  obs::Instrument instrument(sim, conn, recorder, /*conn_id=*/0);
  run.trace.attach(instrument);

  std::ofstream pcap_file;
  std::unique_ptr<trace::PcapWriter> pcap;
  if (!scenario.pcap_path.empty()) {
    pcap_file.open(scenario.pcap_path, std::ios::binary);
    pcap = std::make_unique<trace::PcapWriter>(pcap_file);
    pcap->attach(instrument);
  }

  uint64_t total = 0;
  for (const auto& [at, bytes] : scenario.writes) {
    total += bytes;
    sim.schedule_at(at, [&conn, bytes = bytes] { conn.write(bytes); });
  }
  run.total_written = total;

  // Record completion time via the una hook already installed by the
  // trace: chain another.
  auto prev = conn.sender().on_una_advance_hook;
  bool done = false;
  conn.sender().on_una_advance_hook = [&](uint64_t una) {
    if (prev) prev(una);
    if (!done && una >= total && conn.sender().write_end() >= total) {
      done = true;
      run.all_acked_at = sim.now();
    }
  };

  sim.run(scenario.run_for);

  if (checker) {
    checker->finalize();
    run.violations = checker->violations();
    run.acks_checked = checker->acks_checked();
  }
  run.final_cwnd_bytes = conn.sender().cwnd_bytes();
  run.final_ssthresh_bytes = conn.sender().ssthresh_bytes();
  run.final_state = conn.sender().state();
  return run;
}

ChaosSpec ChaosSpec::blackout() {
  ChaosSpec s;
  s.name = "blackout";
  s.profile.p_blackout = 1.0;
  s.profile.flap_repeats = 1;
  return s;
}

ChaosSpec ChaosSpec::link_flap() {
  ChaosSpec s;
  s.name = "link_flap";
  s.profile.p_blackout = 1.0;
  s.profile.blackout_min = sim::Time::milliseconds(100);
  s.profile.blackout_max = sim::Time::milliseconds(600);
  s.profile.flap_repeats = 4;
  s.profile.flap_gap = sim::Time::milliseconds(400);
  return s;
}

ChaosSpec ChaosSpec::rtt_spike() {
  ChaosSpec s;
  s.name = "rtt_spike";
  s.profile.p_rtt_spike = 1.0;
  return s;
}

ChaosSpec ChaosSpec::bandwidth_shift() {
  ChaosSpec s;
  s.name = "bandwidth_shift";
  s.profile.p_bandwidth_shift = 1.0;
  return s;
}

ChaosSpec ChaosSpec::ack_outage() {
  ChaosSpec s;
  s.name = "ack_outage";
  s.profile.p_ack_outage = 1.0;
  return s;
}

ChaosSpec ChaosSpec::receiver_stall() {
  ChaosSpec s;
  s.name = "receiver_stall";
  s.profile.p_receiver_stall = 1.0;
  return s;
}

ChaosSpec ChaosSpec::everything() {
  ChaosSpec s;
  s.name = "everything";
  s.profile.p_blackout = 0.5;
  s.profile.flap_repeats = 3;
  s.profile.p_bandwidth_shift = 0.5;
  s.profile.p_rtt_spike = 0.5;
  s.profile.p_queue_resize = 0.5;
  s.profile.p_ack_outage = 0.35;
  s.profile.p_receiver_stall = 0.35;
  return s;
}

std::vector<ChaosSpec> standard_chaos_suite() {
  return {ChaosSpec::blackout(),        ChaosSpec::link_flap(),
          ChaosSpec::rtt_spike(),       ChaosSpec::bandwidth_shift(),
          ChaosSpec::ack_outage(),      ChaosSpec::receiver_stall(),
          ChaosSpec::everything()};
}

workload::ConnectionSample ChaosPopulation::sample(sim::Rng rng) const {
  workload::ConnectionSample s = base_.sample(rng);
  // Reserved sub-stream: existing populations fork 100-104, so the fault
  // draw never collides with (or shifts) the base sample's randomness.
  s.faults.merge(net::FaultSchedule::random(profile_, rng.fork(0xFA17)));
  return s;
}

}  // namespace prr::exp
