// N-way experiment harness: runs a population through one or more
// recovery-algorithm arms with common random numbers (identical per-
// connection sample paths across arms), aggregating the statistics every
// paper table consumes. The simulator analogue of the paper's server-
// binned A/B framework (§5.1).
//
// Sweeps shard connections across a worker pool (RunOptions::threads):
// every connection's entire sample path derives from (seed, id), so
// workers share no state, and per-chunk ArmResult accumulators merged in
// connection-id order make the aggregates byte-identical to a serial run
// at any thread count.
//
// Production-scale safety net: with `RunOptions::check_invariants` every
// connection runs under a tcp::InvariantChecker, and a connection that
// trips an invariant or throws is *quarantined* — its (seed, connection
// id, arm, scenario, fault schedule) tuple is logged to
// ArmResult::quarantined and the run continues. Experiment::replay()
// re-runs a quarantined connection deterministically in isolation (the
// whole sample path derives from (seed, id), so the replay is exact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/prr.h"
#include "obs/episodes.h"
#include "sim/event_queue.h"
#include "obs/metrics_registry.h"
#include "obs/store/capture_policy.h"
#include "obs/store/store_writer.h"
#include "obs/trace_record.h"
#include "sim/time.h"
#include "stats/latency.h"
#include "stats/recovery_log.h"
#include "tcp/invariants.h"
#include "tcp/metrics.h"
#include "tcp/sender.h"
#include "workload/population.h"

namespace prr::exp {

struct ArmConfig {
  std::string name;
  tcp::RecoveryKind recovery = tcp::RecoveryKind::kPrr;
  core::ReductionBound prr_bound = core::ReductionBound::kSlowStart;
  tcp::CcKind cc = tcp::CcKind::kCubic;
  tcp::EarlyRetransmitMode early_retransmit = tcp::EarlyRetransmitMode::kOff;
  bool tail_loss_probe = false;
  bool pacing = false;
  bool ecn = false;  // overrides the sample's client_ecn when true
  uint32_t initial_cwnd_segments = 10;
  uint32_t mss = 1430;
  int max_rto_backoffs = 7;

  // Adversarial-endpoint defenses (SenderConfig pass-throughs). On by
  // default; the torture corpus pins them off to reproduce the classic
  // wedges each defense prevents (reneging wedge, corrupted-ACK
  // meltdown, zero-window deadlock).
  bool renege_recovery = true;
  bool validate_acks = true;
  bool zero_window_probes = true;

  static ArmConfig prr_arm() {
    ArmConfig a;
    a.name = "PRR";
    a.recovery = tcp::RecoveryKind::kPrr;
    return a;
  }
  static ArmConfig rfc3517_arm() {
    ArmConfig a;
    a.name = "RFC 3517";
    a.recovery = tcp::RecoveryKind::kRfc3517;
    return a;
  }
  static ArmConfig linux_arm() {
    ArmConfig a;
    a.name = "Linux";
    a.recovery = tcp::RecoveryKind::kLinuxRateHalving;
    return a;
  }
};

// Everything needed to reproduce one misbehaving connection in isolation:
// the full sample path (network, workload, faults) derives from
// (seed, connection_id), and the arm is identified by name.
struct QuarantineRecord {
  uint64_t seed = 0;
  uint64_t connection_id = 0;
  std::string arm_name;
  std::string scenario;       // RunOptions::scenario at the time of the run
  std::string fault_summary;  // FaultSchedule::describe() of the sample
  // Trace geometry of the run that produced this record. replay() pins
  // these (when nonzero) so a replayed connection re-runs under the
  // exact recorder configuration — the captured tail is byte-identical.
  uint32_t trace_ring_records = 0;
  uint32_t trace_tail_records = 0;
  std::vector<tcp::InvariantViolation> violations;
  std::string exception;  // non-empty if the connection threw
  // Tail of the connection's flight recorder at the moment of failure
  // (newest RunOptions::trace_tail_records records, oldest first). Empty
  // in builds with tracing compiled out.
  std::vector<obs::TraceRecord> trace_tail;
  // Recovery episodes reconstructed from the trace tail (ledgers kept):
  // the last one is the culprit — the episode in flight, or closest to,
  // the moment of failure. Empty when tracing is compiled out.
  std::vector<obs::RecoveryEpisode> episodes;

  std::string summary() const;
  // The trace tail as Chrome trace-event JSON (ui.perfetto.dev).
  std::string trace_json() const;
  // Human-readable dump of the culprit episode (the last reconstructed
  // one, per-ACK ledger included); empty string when none was captured.
  std::string episode_summary() const;
};

// Per-connection terminal state, collected with
// RunOptions::collect_outcomes: the input to the torture engine's
// cross-arm differential oracle (every arm must deliver the identical
// byte stream or abort cleanly).
struct ConnOutcome {
  uint64_t id = 0;
  uint64_t expected_bytes = 0;   // sum of drawn response sizes
  uint64_t delivered_bytes = 0;  // receiver's rcv_nxt at teardown
  bool all_acked = false;
  bool aborted = false;
  // The application wrote every response (all_acked alone also holds
  // mid-gap between responses, where delivered < expected is normal).
  bool app_finished = false;
};

struct ArmResult {
  std::string name;
  tcp::Metrics metrics;
  stats::RecoveryLog recovery_log;
  // Structured recovery episodes derived from each connection's trace
  // stream (populated only with RunOptions::collect_episodes and tracing
  // compiled in). Reconciles bit-exactly with `recovery_log` and
  // `metrics` — bench/episode_gate enforces it.
  obs::EpisodeTable episodes;
  stats::LatencyTracker latency;
  sim::Time total_network_transmit_time;
  sim::Time total_loss_recovery_time;
  uint64_t connections_run = 0;
  // Sum of all drawn response sizes: identical across arms by the
  // common-random-numbers construction (checked in tests).
  uint64_t total_workload_bytes = 0;

  // Chaos-harness safety net (graceful degradation): connections that
  // tripped an invariant or threw, with enough context to replay each.
  std::vector<QuarantineRecord> quarantined;
  uint64_t invariant_violations = 0;  // total across the arm
  uint64_t acks_checked = 0;          // ACKs the checker examined

  // Per-connection terminal states in ascending id order (only with
  // RunOptions::collect_outcomes).
  std::vector<ConnOutcome> outcomes;

  // Trace-store blocks buffered by a worker shard between the capture
  // decision and the stream fold (only with RunOptions::store_path). The
  // fold callback flushes this to the arm's StoreWriter in connection-id
  // order and clears it, so the file is byte-identical to a serial run;
  // in the serial path it is flushed after every connection, keeping RSS
  // flat at any sweep size.
  obs::StoreShard store;

  // Final accounting of the arm's finished store file (only with
  // RunOptions::store_path; filled by run_arm after the writer closes).
  // Callers wanting a post-run summary should read these instead of
  // reopening the file — StoreReader loads the whole store, which would
  // undo the flat-RSS write path on a large sweep.
  uint64_t store_connections = 0;
  uint64_t store_records = 0;
  uint64_t store_payload_bytes = 0;

  // Named-instrument view of the arm (DESIGN.md §8): per-connection
  // counters/histograms under "tcp." and "exp.", recorder accounting
  // under "obs.trace." (only when tracing ran), wall-clock profiles
  // under "profile." (only with RunOptions::self_profile). The "tcp."
  // and "exp." sections are deterministic — identical at any thread
  // count and with tracing on or off — and the counter totals reconcile
  // exactly with `metrics` (checked in CI by tools/obs_chaos_trace).
  obs::MetricsRegistry registry;

  // Folds a shard covering a higher connection-id range into this one.
  // The parallel harness merges shards in ascending connection-id order,
  // so every aggregate (counter sums, event/response/quarantine
  // sequences) is byte-identical to the serial run at any thread count.
  void merge(ArmResult&& shard);

  double retransmission_rate() const {
    return metrics.data_segments_sent == 0
               ? 0
               : static_cast<double>(metrics.retransmits_total) /
                     static_cast<double>(metrics.data_segments_sent);
  }
  double fraction_time_in_loss_recovery() const {
    return total_network_transmit_time.is_zero()
               ? 0
               : total_loss_recovery_time / total_network_transmit_time;
  }
  double fraction_bytes_in_fast_recovery() const;
  double fraction_fast_retransmits_lost() const {
    return metrics.fast_retransmits == 0
               ? 0
               : static_cast<double>(metrics.lost_fast_retransmits) /
                     static_cast<double>(metrics.fast_retransmits);
  }
};

struct RunOptions {
  int connections = 2000;
  // First connection id: the run covers ids [first_connection,
  // first_connection + connections). Every connection's sample path
  // derives from (seed, id) alone, so running a population as disjoint
  // id-ranges — in one process or across several (the fork-per-shard
  // bench mode) — and summing the per-range aggregates in ascending-id
  // order reproduces the single-run aggregates exactly.
  uint64_t first_connection = 0;
  uint64_t seed = 42;
  // Wall-clock cap per connection (simulated time).
  sim::Time per_connection_limit = sim::Time::seconds(600);

  // Worker threads for the sweep. 1 = serial (the default), 0 = hardware
  // concurrency, N = exactly N workers. Results are byte-identical at any
  // value: each connection's sample path derives only from (seed, id), so
  // workers share nothing, and shard accumulators are merged back in
  // connection-id order.
  int threads = 1;

  // --- million-connection sweeps ---
  // Keep only counters and log2 histograms in the latency/recovery
  // aggregates, discarding the per-response and per-event sample
  // vectors: memory per arm becomes O(1) instead of O(connections).
  // Every fraction_* statistic and count() is maintained identically in
  // both modes; exact-sample quantiles degrade to histogram
  // approximations (stats::LatencyTracker/RecoveryLog docs). Off by
  // default so existing consumers of the raw vectors are unaffected.
  bool bounded_stats = false;
  // Reorder window, in chunks, for the streaming shard fold (how far a
  // worker may run ahead of the fold frontier). Live shard memory is
  // O(fold_window + threads) regardless of connection count. 0 = auto
  // (2 * threads).
  uint64_t fold_window = 0;
  // Recycle one Simulator/Connection/ServerApp arena per worker across
  // connections (the reset() protocol) instead of constructing fresh
  // objects per connection. Behavior-identical — "fresh == reset by
  // construction", enforced by digest tests — and roughly halves serial
  // sweep cost; on by default.
  bool pool_connections = true;

  // --- serial hot path (DESIGN.md §12) ---
  // Ordering backend for each connection's event queue. kWheel (the
  // compiled default unless PRR_SCHEDULER_WHEEL_DEFAULT=0) is the O(1)
  // hierarchical timing wheel; kHeap is the 4-ary min-heap. Pop order —
  // and therefore every aggregate and digest — is byte-identical between
  // them (the differential tests in tests/test_timing_wheel.cc and the
  // bench/scheduler_equivalence_gate enforce it).
  sim::SchedulerBackend scheduler = sim::kDefaultSchedulerBackend;
  // ACK-train batch delivery + coalesced timer rearms: links deliver
  // contiguous runs of propagating segments per queue event (the clock
  // still advances to each segment's own timestamp before its hook) and
  // per-ACK timer rearms defer their queue push under a pre-drawn FIFO
  // seq. Observation-equivalent to per-event mode by construction; on by
  // default because it is the serial-throughput win.
  bool batch_delivery = true;

  // Attach a tcp::InvariantChecker to every connection and quarantine
  // the ones that trip it. Off by default: the stationary experiment hot
  // path pays nothing for the safety net.
  bool check_invariants = false;
  // Label recorded into QuarantineRecords (e.g. the chaos scenario name).
  std::string scenario;
  // Synthetic-violation injection for testing the quarantine machinery:
  // connection `inject_violation_connection` records one artificial
  // violation on its `inject_violation_on_ack`-th ACK (-1 = never).
  int64_t inject_violation_connection = -1;
  uint64_t inject_violation_on_ack = 1;

  // Attach a flight recorder to every connection (a no-op statement per
  // instrumentation site in builds with PRR_TRACING=OFF). Checked and
  // replayed connections get a recorder regardless, so quarantine
  // artifacts always carry their event tail. Tracing never changes the
  // simulation: aggregates stay byte-identical with it on or off.
  bool trace = false;
  uint32_t trace_ring_records = 2048;  // ring capacity per connection
  uint32_t trace_tail_records = 256;   // tail kept on quarantine/replay
  // Fold every connection's trace stream into ArmResult::episodes (a
  // recorder is attached regardless of `trace`, so the table is
  // identical with tracing on or off; a no-op when tracing is compiled
  // out). Episodes are built from a listener on the recorder, so ring
  // wrap cannot cost episodes on long connections.
  bool collect_episodes = false;
  // --- trace store (DESIGN.md §14) ---
  // When non-empty, persist selected connections' trace rings to a
  // columnar store file at obs::store_path_for_arm(store_path, arm.name)
  // ("out.prrstore" + arm "RFC 3517" → "out.rfc_3517.prrstore"). A
  // recorder is attached to every connection (like `trace`); at teardown
  // the capture policy below decides whether the ring is encoded and
  // appended. Store bytes are a pure function of (population, arm, seed,
  // policy): byte-identical at any thread count (bench/query_gate).
  std::string store_path;
  // CapturePolicy spec (grammar in obs/store/capture_policy.h), e.g.
  // "all", "sample=64,full=timeout". Parsed by run_arm; a malformed spec
  // throws std::invalid_argument before any connection runs.
  std::string capture = "all";

  // Wall-clock self-profiling (event-slice and per-ACK cost histograms)
  // into ArmResult::registry under "profile.". Nondeterministic by
  // nature; off by default so the registry stays reproducible.
  bool self_profile = false;

  // --- torture engine (torture/) ---
  // Arm the progress/conservation/termination oracles on every checked
  // connection (requires check_invariants to have any effect; oracle
  // findings join the same quarantine pipeline as invariant violations).
  bool torture_oracles = false;
  // No-forward-progress watchdog: flag a connection whose snd_una has
  // not moved across this many consecutive RTO firings while the path
  // was up the whole time (a true blackhole legitimately stalls; a
  // healthy path must not).
  int watchdog_rto_backoffs = 4;
  // Record every connection's terminal state into ArmResult::outcomes
  // for the cross-arm differential oracle.
  bool collect_outcomes = false;
};

// Outcome of re-running a single quarantined connection in isolation.
struct ReplayResult {
  std::vector<tcp::InvariantViolation> violations;
  std::string exception;
  bool aborted = false;
  bool all_acked = false;
  uint64_t acks_checked = 0;
  // Recorder tail from the replayed connection (always captured on a
  // failing replay; empty when tracing is compiled out).
  std::vector<obs::TraceRecord> trace_tail;

  // The replay saw the same failure class the original run recorded.
  bool reproduced(const QuarantineRecord& rec) const;
};

// Bundles a population with run options so a chaos sweep and the replay
// of anything it quarantines share one configuration.
class Experiment {
 public:
  Experiment(const workload::Population& pop, RunOptions opts)
      : pop_(pop), opts_(std::move(opts)) {}

  ArmResult run(const ArmConfig& arm) const;
  std::vector<ArmResult> run(const std::vector<ArmConfig>& arms) const;

  // Re-runs one quarantined connection deterministically, with invariant
  // checking forced on. `arm` must be the configuration of the arm named
  // in the record.
  ReplayResult replay(const ArmConfig& arm,
                      const QuarantineRecord& record) const;

  const RunOptions& options() const { return opts_; }

 private:
  const workload::Population& pop_;
  RunOptions opts_;
};

// One connection's full forensic capture: the (ring-capped) record
// stream plus its episodes with per-ACK ledgers. The input to
// examples/prr_inspect's single-connection views and the cross-arm diff
// (obs/trace_diff.h) — run the same id under two arms and compare.
struct TracedConnection {
  std::vector<obs::TraceRecord> records;
  std::vector<obs::RecoveryEpisode> episodes;
  bool aborted = false;
  bool all_acked = false;
};

// Re-runs connection `id` of the (pop, arm, opts) experiment in
// isolation with a recorder attached, capturing every record through a
// listener (so the stream is complete even past the ring capacity, up
// to `max_records`; 0 = unbounded). Deterministic: the sample path
// derives from (opts.seed, id) only.
TracedConnection trace_connection(const workload::Population& pop,
                                  const ArmConfig& arm,
                                  const RunOptions& opts, uint64_t id,
                                  std::size_t max_records = 1u << 20);

// Runs one arm over the population.
ArmResult run_arm(const workload::Population& pop, const ArmConfig& arm,
                  const RunOptions& opts);

// Runs several arms over the identical sample paths.
std::vector<ArmResult> run_arms(const workload::Population& pop,
                                const std::vector<ArmConfig>& arms,
                                const RunOptions& opts);

}  // namespace prr::exp
