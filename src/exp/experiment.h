// N-way experiment harness: runs a population through one or more
// recovery-algorithm arms with common random numbers (identical per-
// connection sample paths across arms), aggregating the statistics every
// paper table consumes. The simulator analogue of the paper's server-
// binned A/B framework (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/prr.h"
#include "sim/time.h"
#include "stats/latency.h"
#include "stats/recovery_log.h"
#include "tcp/metrics.h"
#include "tcp/sender.h"
#include "workload/population.h"

namespace prr::exp {

struct ArmConfig {
  std::string name;
  tcp::RecoveryKind recovery = tcp::RecoveryKind::kPrr;
  core::ReductionBound prr_bound = core::ReductionBound::kSlowStart;
  tcp::CcKind cc = tcp::CcKind::kCubic;
  tcp::EarlyRetransmitMode early_retransmit = tcp::EarlyRetransmitMode::kOff;
  bool tail_loss_probe = false;
  bool pacing = false;
  bool ecn = false;  // overrides the sample's client_ecn when true
  uint32_t initial_cwnd_segments = 10;
  uint32_t mss = 1430;
  int max_rto_backoffs = 7;

  static ArmConfig prr_arm() {
    ArmConfig a;
    a.name = "PRR";
    a.recovery = tcp::RecoveryKind::kPrr;
    return a;
  }
  static ArmConfig rfc3517_arm() {
    ArmConfig a;
    a.name = "RFC 3517";
    a.recovery = tcp::RecoveryKind::kRfc3517;
    return a;
  }
  static ArmConfig linux_arm() {
    ArmConfig a;
    a.name = "Linux";
    a.recovery = tcp::RecoveryKind::kLinuxRateHalving;
    return a;
  }
};

struct ArmResult {
  std::string name;
  tcp::Metrics metrics;
  stats::RecoveryLog recovery_log;
  stats::LatencyTracker latency;
  sim::Time total_network_transmit_time;
  sim::Time total_loss_recovery_time;
  uint64_t connections_run = 0;
  // Sum of all drawn response sizes: identical across arms by the
  // common-random-numbers construction (checked in tests).
  uint64_t total_workload_bytes = 0;

  double retransmission_rate() const {
    return metrics.data_segments_sent == 0
               ? 0
               : static_cast<double>(metrics.retransmits_total) /
                     static_cast<double>(metrics.data_segments_sent);
  }
  double fraction_time_in_loss_recovery() const {
    return total_network_transmit_time.is_zero()
               ? 0
               : total_loss_recovery_time / total_network_transmit_time;
  }
  double fraction_bytes_in_fast_recovery() const;
  double fraction_fast_retransmits_lost() const {
    return metrics.fast_retransmits == 0
               ? 0
               : static_cast<double>(metrics.lost_fast_retransmits) /
                     static_cast<double>(metrics.fast_retransmits);
  }
};

struct RunOptions {
  int connections = 2000;
  uint64_t seed = 42;
  // Wall-clock cap per connection (simulated time).
  sim::Time per_connection_limit = sim::Time::seconds(600);
};

// Runs one arm over the population.
ArmResult run_arm(const workload::Population& pop, const ArmConfig& arm,
                  const RunOptions& opts);

// Runs several arms over the identical sample paths.
std::vector<ArmResult> run_arms(const workload::Population& pop,
                                const std::vector<ArmConfig>& arms,
                                const RunOptions& opts);

}  // namespace prr::exp
