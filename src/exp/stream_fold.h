// Bounded in-order shard folding for parallel sweeps.
//
// The original parallel harness materialised every chunk's ArmResult
// shard in a vector and merged after a full barrier — O(num_chunks)
// live shards, which at million-connection scale dwarfs the per-chunk
// work. A StreamFolder keeps the byte-identical-at-any-thread-count
// guarantee (shards are still folded in ascending chunk order — the
// serial aggregation order, bit for bit) while holding only a small
// reorder window of shards alive:
//
//   - claim() hands out chunk indices in order, but refuses to let a
//     worker run more than `window` chunks ahead of the fold frontier
//     (the claim gate). A gated worker blocks until the frontier
//     advances.
//   - submit() parks an out-of-order shard in the pending map and folds
//     every consecutive shard at the frontier, then wakes gated workers.
//
// Deadlock-freedom: the worker holding the frontier chunk is by
// construction past its claim gate (it already claimed), so it always
// runs to submission and advances the frontier. Live shards are bounded
// by `window` pending plus one in flight per worker, independent of
// num_chunks — the constant-memory half of the streaming sweep.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace prr::exp {

template <typename Shard, typename Fold>
class StreamFolder {
 public:
  // `fold` is invoked with each shard, in ascending chunk order, under
  // the folder's lock (folds are serialized; merge cost is assumed small
  // next to running a chunk). `window` must be >= 1.
  StreamFolder(uint64_t num_chunks, uint64_t window, Fold fold)
      : num_chunks_(num_chunks),
        window_(window < 1 ? 1 : window),
        fold_(std::move(fold)) {}

  // Claims the next chunk to run. Blocks while every unclaimed chunk is
  // beyond the reorder window. Returns false once all chunks are claimed.
  bool claim(uint64_t& chunk) {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] {
      return next_claim_ >= num_chunks_ ||
             next_claim_ < next_fold_ + window_;
    });
    if (next_claim_ >= num_chunks_) return false;
    chunk = next_claim_++;
    return true;
  }

  // Hands a finished shard back. Folds it (and any parked successors)
  // immediately if it sits at the frontier; parks it otherwise.
  void submit(uint64_t chunk, Shard&& shard) {
    std::lock_guard lk(mu_);
    pending_.emplace(chunk, std::move(shard));
    if (pending_.size() > max_pending_) max_pending_ = pending_.size();
    while (!pending_.empty() && pending_.begin()->first == next_fold_) {
      Shard ready = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      fold_(std::move(ready));
      ++next_fold_;
    }
    cv_.notify_all();
  }

  // Shards folded so far (== num_chunks after all workers join).
  uint64_t folded() const {
    std::lock_guard lk(mu_);
    return next_fold_;
  }

  // High-water mark of parked shards — the memory bound under test.
  std::size_t max_pending() const {
    std::lock_guard lk(mu_);
    return max_pending_;
  }

 private:
  const uint64_t num_chunks_;
  const uint64_t window_;
  Fold fold_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_claim_ = 0;  // next chunk index to hand out
  uint64_t next_fold_ = 0;   // fold frontier: all chunks below are folded
  std::map<uint64_t, Shard> pending_;
  std::size_t max_pending_ = 0;
};

}  // namespace prr::exp
