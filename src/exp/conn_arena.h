// Per-worker recycled connection state for million-connection sweeps.
// Constructing a Simulator + Connection + ServerApp per connection costs
// dozens of allocations (event-queue slabs, scoreboard ring, policy
// objects, response vectors); a ConnArena owns one of each and recycles
// them through the explicit reset() protocol (Simulator::reset,
// Connection::reset, ServerApp::reset), so the warm sweep loop performs
// no per-connection allocation on clean paths.
//
// Correctness contract: "fresh == reset by construction". Every reset()
// in the chain restores exactly the freshly-constructed state (the
// Sender constructor itself delegates to the same reset_core_state()),
// so a pooled run is byte-identical to a fresh-objects run — enforced by
// tests/test_conn_arena.cc digest comparisons and, in debug builds, by
// check_reset_state() after every recycle.
#pragma once

#include <optional>

#include "http/server_app.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "workload/population.h"

namespace prr::exp {

// Cached instrument pointers for one ArmResult's MetricsRegistry. The
// registry is a name-keyed map with pointer-stable instruments; folding
// a connection through cached handles replaces ~16 string-keyed lookups
// (several past SSO size) per connection with pointer dereferences.
// Conditionally-created instruments (abort/complete tallies, trace
// accounting) stay lazy so a registry never grows an instrument the
// uncached path would not have created.
struct RegistryHandles {
  obs::MetricsRegistry* owner = nullptr;

  obs::Counter* data_segments_sent = nullptr;
  obs::Counter* bytes_sent = nullptr;
  obs::Counter* retransmits_total = nullptr;
  obs::Counter* fast_retransmits = nullptr;
  obs::Counter* timeouts_total = nullptr;
  obs::Counter* fast_recovery_events = nullptr;
  obs::Counter* undo_events = nullptr;
  obs::Counter* dsacks_received = nullptr;
  obs::Counter* connections_run = nullptr;
  obs::LogHistogram* retransmits_per_conn = nullptr;
  obs::LogHistogram* timeouts_per_conn = nullptr;
  obs::LogHistogram* final_cwnd_bytes = nullptr;
  obs::LogHistogram* conn_sim_time_ns = nullptr;
  obs::Gauge* max_conn_sim_time_ns = nullptr;

  // Lazily bound (see above).
  obs::Counter* connections_aborted = nullptr;
  obs::Counter* connections_completed = nullptr;
  obs::Counter* trace_records_written = nullptr;
  obs::Counter* trace_records_dropped = nullptr;

  // (Re)binds the unconditional handles to `reg` and clears the lazy
  // ones. Cheap relative to a chunk of connections; called whenever the
  // arena crosses into a new shard's registry.
  void bind(obs::MetricsRegistry& reg);

  // Drops every cached pointer. Must be called when the previously bound
  // registry may have been destroyed: a successor registry can reuse its
  // address (worker shards live in the same stack slot each chunk), so
  // the owner-pointer comparison alone cannot detect the swap.
  void invalidate() { *this = RegistryHandles{}; }
};

// One worker's arena. The Connection and ServerApp are constructed on
// the first connection (their internal wiring captures stable `this`
// pointers into sim/conn, so the objects must never move) and reset in
// place for every subsequent one.
class ConnArena {
 public:
  sim::Simulator sim;
  workload::ConnectionSample sample;  // filled in place by sample_into()
  std::optional<tcp::Connection> conn;
  std::optional<http::ServerApp> app;
  RegistryHandles handles;

  // Debug-only poison check that the recycled objects are back to their
  // freshly-constructed observable state (compiled out under NDEBUG).
  // The byte-identical pooled-vs-fresh digest tests are the strong form
  // of this check; this catches a broken reset at the point of reuse.
  void check_reset_state();
};

}  // namespace prr::exp
