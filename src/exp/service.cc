#include "exp/service.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace prr::exp {

namespace {

// Sub-stream id for the arrival process, far outside any connection-id
// range so it can never collide with the per-connection forks inside
// run_arm.
constexpr uint64_t kArrivalStream = 0x4152525641523031ULL;

constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(ServiceMetric::kCount);
constexpr std::size_t kSeriesCount =
    static_cast<std::size_t>(DriftSeries::kCount);

// One window's scalar readings for one arm, all derived from the
// window-delta ArmResult (bit-identical at any thread count).
struct WindowMetrics {
  uint64_t connections = 0;
  double retx_rate = 0;
  double timeout_frac = 0;
  double recovery_ms = 0;
  double latency_ms = 0;
  double final_cwnd = 0;
};

WindowMetrics window_metrics(const ArmResult& w) {
  WindowMetrics m;
  m.connections = w.connections_run;
  m.retx_rate = w.retransmission_rate();
  m.timeout_frac =
      w.connections_run == 0
          ? 0
          : static_cast<double>(w.metrics.timeouts_total) /
                static_cast<double>(w.connections_run);
  // Mean fast-recovery episode duration (the paper's recovery-time
  // metric, Fig 5) — not total time in loss states, which folds in RTO
  // backoff and would swamp the episode signal.
  m.recovery_ms = w.recovery_log.duration_us_hist().mean() / 1000.0;
  m.latency_ms = w.latency.latency_us_hist().mean() / 1000.0;
  if (const obs::LogHistogram* h =
          w.registry.find_histogram("tcp.final_cwnd_bytes")) {
    m.final_cwnd = h->mean();
  }
  return m;
}

double metric_of(const WindowMetrics& m, ServiceMetric k) {
  switch (k) {
    case ServiceMetric::kRetxRate: return m.retx_rate;
    case ServiceMetric::kTimeoutFrac: return m.timeout_frac;
    case ServiceMetric::kRecoveryMs: return m.recovery_ms;
    case ServiceMetric::kCount: break;
  }
  return 0;
}

double series_of(const WindowMetrics& m, DriftSeries s) {
  switch (s) {
    case DriftSeries::kLatencyMs: return m.latency_ms;
    case DriftSeries::kRetxRate: return m.retx_rate;
    case DriftSeries::kFinalCwnd: return m.final_cwnd;
    case DriftSeries::kCount: break;
  }
  return 0;
}

uint64_t dbits(double v) { return std::bit_cast<uint64_t>(v); }

// json_double clamps non-finite values to 0; the CS bounds are
// legitimately infinite while underpowered, which JSON spells null.
std::string json_or_null(double v) {
  return std::isfinite(v) ? obs::json_double(v) : std::string("null");
}

CsSummary summarize(const stats::ConfidenceSequence& cs) {
  CsSummary s;
  s.n = cs.n();
  s.mean = cs.mean();
  s.lo = cs.lower();
  s.hi = cs.upper();
  s.p = cs.p_value();
  s.rejects = cs.rejects_zero();
  return s;
}

void append_cs_json(std::string& out, const CsSummary& s) {
  out += "{\"n\":" + std::to_string(s.n);
  out += ",\"delta\":" + obs::json_double(s.mean);
  out += ",\"lo\":" + json_or_null(s.lo);
  out += ",\"hi\":" + json_or_null(s.hi);
  out += ",\"p\":" + obs::json_double(s.p);
  out += ",\"rejects\":";
  out += s.rejects ? "true" : "false";
  out += "}";
}

void append_jsonl(std::string& out, const std::string& line) {
  out += line;
  out += '\n';
}

}  // namespace

const char* to_string(ServiceMetric m) {
  switch (m) {
    case ServiceMetric::kRetxRate: return "retx_rate";
    case ServiceMetric::kTimeoutFrac: return "timeout_frac";
    case ServiceMetric::kRecoveryMs: return "recovery_ms";
    case ServiceMetric::kCount: break;
  }
  return "?";
}

const char* to_string(DriftSeries s) {
  switch (s) {
    case DriftSeries::kLatencyMs: return "latency_ms";
    case DriftSeries::kRetxRate: return "retx_rate";
    case DriftSeries::kFinalCwnd: return "final_cwnd";
    case DriftSeries::kCount: break;
  }
  return "?";
}

const char* to_string(Action a) {
  switch (a) {
    case Action::kHold: return "hold";
    case Action::kPromote: return "promote";
    case Action::kRollback: return "rollback";
  }
  return "?";
}

std::string ScoreboardSnapshot::to_json() const {
  std::string out = "{\"window\":" + std::to_string(window);
  out += ",\"t_s\":" + obs::json_double(t_s);
  out += ",\"admitted\":" + std::to_string(admitted);
  out += ",\"window_connections\":" + std::to_string(window_connections);
  out += ",\"load\":" + obs::json_double(load_factor);
  out += ",\"regime\":{\"loss_scale\":" + obs::json_double(regime_loss_scale);
  out += ",\"rtt_scale\":" + obs::json_double(regime_rtt_scale);
  out += ",\"bandwidth_scale\":" + obs::json_double(regime_bandwidth_scale);
  out += "},\"alerts\":" + std::to_string(alerts_so_far);
  out += ",\"primary\":" + obs::json_quote(to_string(primary));
  out += ",\"arms\":[";
  for (std::size_t a = 0; a < arms.size(); ++a) {
    const ArmSnapshot& s = arms[a];
    if (a != 0) out += ",";
    out += "{\"name\":" + obs::json_quote(s.name);
    out += ",\"connections\":" + std::to_string(s.connections);
    out += ",\"data_segments\":" + std::to_string(s.data_segments);
    out += ",\"retransmits\":" + std::to_string(s.retransmits);
    out += ",\"timeouts\":" + std::to_string(s.timeouts);
    out += ",\"fast_recoveries\":" + std::to_string(s.fast_recoveries);
    out += ",\"quarantined\":" + std::to_string(s.quarantined);
    out += ",\"responses\":" + std::to_string(s.responses);
    out += ",\"retx_rate\":" + obs::json_double(s.retx_rate);
    out += ",\"timeout_frac\":" + obs::json_double(s.timeout_frac);
    out += ",\"recovery_ms_mean\":" + obs::json_double(s.recovery_ms_mean);
    out += ",\"latency_ms\":{\"mean\":" + obs::json_double(s.latency_ms_mean);
    out += ",\"p50\":" + obs::json_double(s.latency_ms_p50);
    out += ",\"p95\":" + obs::json_double(s.latency_ms_p95);
    out += ",\"p99\":" + obs::json_double(s.latency_ms_p99);
    out += "},\"final_cwnd_mean\":" + obs::json_double(s.final_cwnd_mean);
    out += ",\"state\":" + obs::json_quote(to_string(s.state));
    if (!s.cs.empty()) {
      out += ",\"cs\":{";
      for (std::size_t m = 0; m < s.cs.size(); ++m) {
        if (m != 0) out += ",";
        out += obs::json_quote(to_string(static_cast<ServiceMetric>(m)));
        out += ":";
        append_cs_json(out, s.cs[m]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string DecisionRecord::to_json() const {
  std::string out = "{\"window\":" + std::to_string(window);
  out += ",\"t_s\":" + obs::json_double(t_s);
  out += ",\"arm\":" + std::to_string(arm);
  out += ",\"arm_name\":" + obs::json_quote(arm_name);
  out += ",\"action\":" + obs::json_quote(to_string(action));
  out += ",\"reason\":" + obs::json_quote(reason);
  out += ",\"metric\":" + obs::json_quote(to_string(metric));
  out += ",\"cs\":";
  append_cs_json(out, primary);
  out += "}";
  return out;
}

std::string AlertRecord::to_json() const {
  std::string out = "{\"window\":" + std::to_string(window);
  out += ",\"t_s\":" + obs::json_double(t_s);
  out += ",\"arm\":" + std::to_string(arm);
  out += ",\"arm_name\":" + obs::json_quote(arm_name);
  out += ",\"series\":" + obs::json_quote(to_string(series));
  out += ",\"value\":" + obs::json_double(value);
  out += ",\"baseline\":" + obs::json_double(baseline);
  out += ",\"stat\":" + obs::json_double(stat);
  out += ",\"threshold\":" + obs::json_double(threshold);
  out += ",\"quarantine\":{\"seed\":" + std::to_string(seed);
  out += ",\"first_connection\":" + std::to_string(first_connection);
  out += ",\"connections\":" + std::to_string(connections);
  out += ",\"loss_scale\":" + obs::json_double(loss_scale);
  out += ",\"rtt_scale\":" + obs::json_double(rtt_scale);
  out += ",\"bandwidth_scale\":" + obs::json_double(bandwidth_scale);
  out += "}}";
  return out;
}

std::string ServiceResult::scoreboard_jsonl() const {
  std::string out;
  for (const ScoreboardSnapshot& s : snapshots) append_jsonl(out, s.to_json());
  return out;
}

std::string ServiceResult::decision_log_jsonl() const {
  std::string out;
  for (const DecisionRecord& d : decisions) append_jsonl(out, d.to_json());
  return out;
}

std::string ServiceResult::alert_log_jsonl() const {
  std::string out;
  for (const AlertRecord& a : alerts) append_jsonl(out, a.to_json());
  return out;
}

std::string describe(const ScoreboardSnapshot& snap) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "-- window %" PRIu64 "  t=%.1fs  admitted %" PRIu64
                "  (+%" PRIu64 ")  load %.2f",
                snap.window, snap.t_s, snap.admitted,
                snap.window_connections, snap.load_factor);
  out += buf;
  if (snap.regime_loss_scale != 1.0 || snap.regime_rtt_scale != 1.0 ||
      snap.regime_bandwidth_scale != 1.0) {
    std::snprintf(buf, sizeof(buf), "  regime loss x%.1f rtt x%.1f bw x%.1f",
                  snap.regime_loss_scale, snap.regime_rtt_scale,
                  snap.regime_bandwidth_scale);
    out += buf;
  }
  if (snap.alerts_so_far != 0) {
    std::snprintf(buf, sizeof(buf), "  alerts %" PRIu64, snap.alerts_so_far);
    out += buf;
  }
  out += "\n";
  char dcol[16];
  std::snprintf(dcol, sizeof(dcol), "d_%s", to_string(snap.primary));
  std::snprintf(buf, sizeof(buf),
                "%-11s %9s %7s %6s %7s %7s %20s %8s %14s %9s  %s\n", "arm",
                "conns", "retx%", "to%", "rec_ms", "lat_ms", "p50/p95/p99",
                "cwnd_kB", dcol, "p", "state");
  out += buf;
  const std::size_t primary_m = static_cast<std::size_t>(snap.primary);
  for (const ArmSnapshot& s : snap.arms) {
    char lat[40];
    std::snprintf(lat, sizeof(lat), "%.1f/%.1f/%.1f", s.latency_ms_p50,
                  s.latency_ms_p95, s.latency_ms_p99);
    if (s.cs.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "%-11s %9" PRIu64 " %7.3f %6.3f %7.1f %7.1f %20s %8.1f "
                    "%14s %9s  %s\n",
                    (s.name + "*").c_str(), s.connections, 100 * s.retx_rate,
                    100 * s.timeout_frac, s.recovery_ms_mean,
                    s.latency_ms_mean, lat, s.final_cwnd_mean / 1024.0, "-",
                    "-", "-");
    } else {
      const CsSummary& primary = s.cs[primary_m];
      std::snprintf(buf, sizeof(buf),
                    "%-11s %9" PRIu64 " %7.3f %6.3f %7.1f %7.1f %20s %8.1f "
                    "%+14.4g %9.2g  %s\n",
                    s.name.c_str(), s.connections, 100 * s.retx_rate,
                    100 * s.timeout_frac, s.recovery_ms_mean,
                    s.latency_ms_mean, lat, s.final_cwnd_mean / 1024.0,
                    primary.mean, primary.p, to_string(s.state));
    }
    out += buf;
  }
  return out;
}

ExperimentService::ExperimentService(const workload::Population& base,
                                     ServiceConfig cfg)
    : base_(base), cfg_(std::move(cfg)) {
  if (cfg_.arms.empty()) cfg_.arms.push_back(ArmConfig::linux_arm());
  if (cfg_.control_arm >= cfg_.arms.size()) cfg_.control_arm = 0;
  if (cfg_.snapshot_every.is_zero()) {
    cfg_.snapshot_every = sim::Time::seconds(600);
  }
}

ServiceResult ExperimentService::run() {
  const std::size_t n_arms = cfg_.arms.size();
  const std::size_t control = cfg_.control_arm;

  ServiceResult res;
  res.arms.resize(n_arms);
  res.final_state.assign(n_arms, Action::kHold);

  workload::RegimePopulation pop(base_, cfg_.regimes);
  workload::ArrivalProcess arrivals(cfg_.arrivals,
                                    sim::Rng(cfg_.seed).fork(kArrivalStream));
  obs::FlightRecorder recorder(cfg_.control_ring_records);

  std::vector<std::vector<stats::ConfidenceSequence>> cs(
      n_arms, std::vector<stats::ConfidenceSequence>(
                  kMetricCount, stats::ConfidenceSequence(cfg_.cs)));
  std::vector<std::vector<stats::Cusum>> drift(
      n_arms, std::vector<stats::Cusum>(kSeriesCount,
                                        stats::Cusum(cfg_.cusum)));
  std::vector<Action> state(n_arms, Action::kHold);
  std::vector<bool> decided_once(n_arms, false);
  std::vector<bool> merged(n_arms, false);
  std::vector<uint64_t> quarantined_total(n_arms, 0);

  uint64_t next_id = 0;
  uint64_t window = 0;
  sim::Time window_start = sim::Time::zero();
  sim::Time window_end = cfg_.snapshot_every;
  bool have_pending = false;
  sim::Time pending = sim::Time::zero();
  bool exhausted = false;

  while (!exhausted) {
    // --- admit this window's arrivals (serial; one lookahead slot) ---
    uint64_t count = 0;
    while (res.admitted < cfg_.max_connections) {
      const sim::Time t = have_pending ? pending : arrivals.next();
      have_pending = false;
      if (!cfg_.horizon.is_zero() && t > cfg_.horizon) {
        exhausted = true;
        break;
      }
      if (t >= window_end) {
        pending = t;
        have_pending = true;
        break;
      }
      ++count;
      ++res.admitted;
    }
    if (res.admitted >= cfg_.max_connections) exhausted = true;
    // A silent arrival process (rate 0, no horizon) never reaches the
    // connection cap; don't spin on empty windows forever.
    if (count == 0 && cfg_.arrivals.rate_per_sec <= 0) exhausted = true;

    // The regime in force for every sample drawn in this window.
    pop.set_window_time(window_start);
    const workload::RegimeShift regime = pop.current();

    std::vector<WindowMetrics> wm(n_arms);
    if (count != 0) {
      RunOptions o = cfg_.run;
      o.seed = cfg_.seed;
      o.first_connection = next_id;
      o.connections = static_cast<int>(count);
      // Memory bound: cumulative aggregates must stay O(1) per arm.
      o.bounded_stats = true;
      o.collect_episodes = false;
      o.collect_outcomes = false;
      std::vector<ArmResult> wres = run_arms(pop, cfg_.arms, o);

      for (std::size_t a = 0; a < n_arms; ++a) {
        wm[a] = window_metrics(wres[a]);
      }

      // Sequential layer: paired per-window differences vs control.
      for (std::size_t a = 0; a < n_arms; ++a) {
        if (a == control) continue;
        for (std::size_t m = 0; m < kMetricCount; ++m) {
          cs[a][m].observe(metric_of(wm[a], static_cast<ServiceMetric>(m)) -
                           metric_of(wm[control],
                                     static_cast<ServiceMetric>(m)));
        }
      }

      // Drift layer: per-arm series, alarm => alert + auto-quarantine.
      for (std::size_t a = 0; a < n_arms; ++a) {
        for (std::size_t si = 0; si < kSeriesCount; ++si) {
          const DriftSeries series = static_cast<DriftSeries>(si);
          const double value = series_of(wm[a], series);
          stats::Cusum& det = drift[a][si];
          if (!det.observe(value)) continue;
          ++res.alerts_total;
          AlertRecord alert;
          alert.window = window;
          alert.t_s = window_end.seconds_d();
          alert.arm = a;
          alert.arm_name = cfg_.arms[a].name;
          alert.series = series;
          alert.value = value;
          alert.baseline = det.baseline_mean();
          alert.stat = det.stat_at_alarm();
          alert.threshold = det.config().h;
          alert.seed = cfg_.seed;
          alert.first_connection = next_id;
          alert.connections = count;
          alert.loss_scale = regime.loss_scale;
          alert.rtt_scale = regime.rtt_scale;
          alert.bandwidth_scale = regime.bandwidth_scale;
          recorder.write(obs::make_record(
              window_end, static_cast<uint32_t>(window),
              obs::TraceType::kServiceAlert, static_cast<uint8_t>(si),
              static_cast<uint16_t>(a), next_id, count, dbits(value),
              dbits(alert.stat), dbits(alert.threshold)));
          if (res.alerts.size() < cfg_.max_quarantined_windows) {
            res.alerts.push_back(std::move(alert));
          }
        }
      }

      // Fold the window deltas into the cumulative aggregates, capping
      // retained quarantine records (counts stay exact).
      for (std::size_t a = 0; a < n_arms; ++a) {
        ArmResult& w = wres[a];
        quarantined_total[a] += w.quarantined.size();
        const std::size_t kept = merged[a] ? res.arms[a].quarantined.size()
                                           : 0;
        if (kept + w.quarantined.size() > cfg_.max_quarantine_records) {
          const std::size_t room = cfg_.max_quarantine_records > kept
                                       ? cfg_.max_quarantine_records - kept
                                       : 0;
          w.quarantined.resize(room);
        }
        if (!merged[a]) {
          res.arms[a] = std::move(w);
          merged[a] = true;
        } else {
          res.arms[a].merge(std::move(w));
        }
      }
      next_id += count;

      // Decision engine: latched; evaluated on every window with data.
      // Promote on any established improvement of the primary metric;
      // roll back only on harm beyond the practical-significance
      // guardrail (margin relative to the control arm's cumulative
      // value — at this power every nonzero delta eventually rejects).
      const WindowMetrics control_cum = window_metrics(res.arms[control]);
      for (std::size_t a = 0; a < n_arms; ++a) {
        if (a == control || state[a] != Action::kHold) continue;
        const std::size_t primary_m = static_cast<std::size_t>(cfg_.primary);
        std::size_t harmed = kMetricCount;
        for (std::size_t m = 0; m < kMetricCount; ++m) {
          const double margin =
              cfg_.guardrail_margin *
              std::abs(metric_of(control_cum, static_cast<ServiceMetric>(m)));
          if (cs[a][m].rejects_zero() && cs[a][m].lower() > margin) {
            harmed = m;
            break;
          }
        }
        const bool improved = cs[a][primary_m].rejects_zero() &&
                              cs[a][primary_m].mean() < 0;
        Action next = Action::kHold;
        std::string reason;
        if (harmed != kMetricCount) {
          next = Action::kRollback;
          reason = std::string("harm established on ") +
                   to_string(static_cast<ServiceMetric>(harmed));
        } else if (improved) {
          next = Action::kPromote;
          reason = std::string("improvement established on ") +
                   to_string(cfg_.primary);
        }
        if (next == Action::kHold && decided_once[a]) continue;
        decided_once[a] = true;
        state[a] = next;
        DecisionRecord d;
        d.window = window;
        d.t_s = window_end.seconds_d();
        d.arm = a;
        d.arm_name = cfg_.arms[a].name;
        d.action = next;
        d.reason = next == Action::kHold ? "awaiting evidence" : reason;
        d.metric = cfg_.primary;
        d.primary = summarize(cs[a][primary_m]);
        recorder.write(obs::make_record(
            window_end, static_cast<uint32_t>(window),
            obs::TraceType::kServiceDecision, static_cast<uint8_t>(next),
            static_cast<uint16_t>(a), d.primary.n, dbits(d.primary.mean),
            dbits(d.primary.p), dbits(d.primary.lo), dbits(d.primary.hi)));
        res.decisions.push_back(std::move(d));
      }
    }

    // --- snapshot ---
    ScoreboardSnapshot snap;
    snap.window = window;
    snap.t_s = window_end.seconds_d();
    snap.admitted = res.admitted;
    snap.window_connections = count;
    snap.load_factor = cfg_.arrivals.diurnal.at(window_start);
    snap.regime_loss_scale = regime.loss_scale;
    snap.regime_rtt_scale = regime.rtt_scale;
    snap.regime_bandwidth_scale = regime.bandwidth_scale;
    snap.alerts_so_far = res.alerts_total;
    snap.primary = cfg_.primary;
    snap.arms.resize(n_arms);
    for (std::size_t a = 0; a < n_arms; ++a) {
      ArmSnapshot& s = snap.arms[a];
      s.name = cfg_.arms[a].name;
      s.state = state[a];
      const ArmResult& r = res.arms[a];
      s.connections = r.connections_run;
      s.data_segments = r.metrics.data_segments_sent;
      s.retransmits = r.metrics.retransmits_total;
      s.timeouts = r.metrics.timeouts_total;
      s.fast_recoveries = r.metrics.fast_recovery_events;
      s.quarantined = quarantined_total[a];
      s.responses = r.latency.count();
      s.retx_rate = r.retransmission_rate();
      s.timeout_frac =
          r.connections_run == 0
              ? 0
              : static_cast<double>(r.metrics.timeouts_total) /
                    static_cast<double>(r.connections_run);
      s.recovery_ms_mean = r.recovery_log.duration_us_hist().mean() / 1000.0;
      const util::Log2Histogram& lh = r.latency.latency_us_hist();
      s.latency_ms_mean = lh.mean() / 1000.0;
      s.latency_ms_p50 = lh.quantile(0.50) / 1000.0;
      s.latency_ms_p95 = lh.quantile(0.95) / 1000.0;
      s.latency_ms_p99 = lh.quantile(0.99) / 1000.0;
      if (const obs::LogHistogram* h =
              r.registry.find_histogram("tcp.final_cwnd_bytes")) {
        s.final_cwnd_mean = h->mean();
      }
      if (a != control) {
        s.cs.resize(kMetricCount);
        for (std::size_t m = 0; m < kMetricCount; ++m) {
          s.cs[m] = summarize(cs[a][m]);
        }
      }
    }
    res.snapshots.push_back(snap);
    if (hook_) hook_(res.snapshots.back());

    ++window;
    window_start = window_end;
    window_end = window_end + cfg_.snapshot_every;
  }

  res.windows = res.snapshots.size();
  res.end_time = res.snapshots.empty() ? sim::Time::zero()
                                       : window_end - cfg_.snapshot_every;
  res.final_state = state;
  res.control_records.reserve(recorder.size());
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    res.control_records.push_back(recorder[i]);
  }
  return res;
}

}  // namespace prr::exp
