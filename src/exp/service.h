// Live experiment control plane (DESIGN.md §13): an always-on service
// mode over the CRN harness. Instead of one fixed-N batch run, the
// service admits connections from an open-world arrival process
// (inhomogeneous Poisson with a diurnal load curve), runs every
// recovery-algorithm arm over the identical admitted sample paths, and
// maintains, online:
//
//  - a streaming scoreboard: one ScoreboardSnapshot per snapshot window
//    (per-arm cumulative counters, log2-histogram quantiles, deltas vs
//    the control arm), emitted as JSON-lines and as an `ss -i`-style
//    terminal view;
//  - always-valid sequential statistics: one mSPRT confidence sequence
//    (stats/sequential.h) per (treatment arm, metric) over the paired
//    per-window differences vs control, safe to peek at every window,
//    driving latched promote / hold / rollback decisions into a
//    machine-readable decision log;
//  - drift detectors: one CUSUM (stats/drift.h) per (arm, series) over
//    the per-window series (mean response latency, retransmission rate,
//    cwnd after recovery), firing structured AlertRecords and
//    auto-quarantining the triggering window's connection-id range for
//    prr_inspect triage;
//  - a service flight recorder: every alert and decision is also a
//    TraceRecord (kServiceAlert / kServiceDecision) in a control-plane
//    ring, exported to the Perfetto timeline by
//    exp/service_timeline.h.
//
// Determinism: the control plane is strictly serial. The arrival
// stream is a pure function of the seed; each window's per-arm deltas
// come from run_arm, which is byte-identical at any worker-thread
// count and with tracing on or off; every statistic is plain double
// arithmetic in window order over those deltas. Hence the snapshot
// JSONL stream, the decision log, and the alert log are bit-identical
// for a given (seed, snapshot cadence) at any thread count, trace on
// or off — CI's nightly soak diffs the digests across thread counts.
//
// Memory: per-window runs use bounded stats and pooled arenas; the
// cumulative aggregates are O(1) per arm; retained quarantine records
// are capped (counts are exact, contents are a sample). Total state is
// O(windows) for the snapshot history, independent of connection count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/flight_recorder.h"
#include "sim/time.h"
#include "stats/drift.h"
#include "stats/sequential.h"
#include "workload/arrival.h"

namespace prr::exp {

// Paired-difference metrics the sequential layer tests (all
// lower-is-better; the observation is treatment minus control).
enum class ServiceMetric : uint8_t {
  kRetxRate = 0,   // retransmits / data segments, per window
  kTimeoutFrac,    // RTO-fired connections fraction, per window
  kRecoveryMs,     // mean fast-recovery duration, per window
  kCount,
};
const char* to_string(ServiceMetric m);

// Per-arm scalar series the drift detectors watch.
enum class DriftSeries : uint8_t {
  kLatencyMs = 0,  // mean response latency in the window
  kRetxRate,       // window retransmission rate
  kFinalCwnd,      // mean final cwnd (bytes) in the window
  kCount,
};
const char* to_string(DriftSeries s);

enum class Action : uint8_t { kHold = 0, kPromote, kRollback };
const char* to_string(Action a);

struct ServiceConfig {
  std::vector<ArmConfig> arms;  // >= 2; arms[control_arm] is baseline
  std::size_t control_arm = 0;
  uint64_t seed = 42;

  workload::ArrivalProcess::Config arrivals;
  // Scheduled path-regime shifts (drift injection). A window's regime
  // is the one active at the window's start time.
  workload::RegimeSchedule regimes;

  // Snapshot cadence on the arrival clock. Part of the determinism
  // contract: same seed + same cadence => identical streams.
  sim::Time snapshot_every = sim::Time::seconds(600);
  // Stop admitting after this many connections; the window in flight
  // completes and emits its snapshot.
  uint64_t max_connections = 1'000'000;
  // Optional wall cap on the arrival clock (zero = none).
  sim::Time horizon = sim::Time::zero();

  // Primary metric: promotion requires its CS to establish improvement
  // (any reliable improvement; no margin). Timeout fraction is the
  // paper's §5 headline win for PRR.
  ServiceMetric primary = ServiceMetric::kTimeoutFrac;
  // Guardrail margin: an arm is rolled back only when some metric's CS
  // establishes harm EXCEEDING this fraction of the control arm's
  // cumulative value — practical significance, not mere statistical
  // significance. At million-connection power every nonzero delta is
  // eventually "significant"; a margin is what separates "PRR trades
  // +1.6% retransmissions for -9% timeouts" (promote) from a real
  // regression (rollback).
  double guardrail_margin = 0.05;
  stats::ConfidenceSequence::Config cs;
  stats::Cusum::Config cusum;

  // Template for the per-window runs (threads, pooling, tracing,
  // invariant checking...). The service overrides connections /
  // first_connection / seed per window and forces bounded_stats,
  // collect_episodes = false, collect_outcomes = false so cumulative
  // memory stays O(1) per arm.
  RunOptions run;

  // Retention caps (counts stay exact past them).
  std::size_t max_quarantined_windows = 64;
  std::size_t max_quarantine_records = 32;  // per arm, via chaos harness
  uint32_t control_ring_records = 4096;     // service flight recorder
};

// Sequential-layer summary serialized into snapshots and decisions.
struct CsSummary {
  uint64_t n = 0;
  double mean = 0;
  double lo = 0;   // CS lower bound (-inf while underpowered)
  double hi = 0;   // CS upper bound (+inf while underpowered)
  double p = 1.0;  // always-valid p-value
  bool rejects = false;
};

// One arm's cumulative view at a snapshot boundary.
struct ArmSnapshot {
  std::string name;
  uint64_t connections = 0;
  uint64_t data_segments = 0;
  uint64_t retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t fast_recoveries = 0;
  uint64_t quarantined = 0;   // exact count (retention is capped)
  uint64_t responses = 0;

  double retx_rate = 0;       // cumulative
  double timeout_frac = 0;
  double recovery_ms_mean = 0;
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p95 = 0;
  double latency_ms_p99 = 0;
  double final_cwnd_mean = 0;  // bytes

  // Paired-difference sequential state vs control (empty for the
  // control arm itself), indexed by ServiceMetric.
  std::vector<CsSummary> cs;
  Action state = Action::kHold;
};

struct ScoreboardSnapshot {
  uint64_t window = 0;        // 0-based window index
  double t_s = 0;             // window end, arrival-clock seconds
  uint64_t admitted = 0;      // cumulative admitted connections
  uint64_t window_connections = 0;
  double load_factor = 1.0;   // diurnal curve at the window start
  double regime_loss_scale = 1.0;
  double regime_rtt_scale = 1.0;
  double regime_bandwidth_scale = 1.0;
  uint64_t alerts_so_far = 0;
  ServiceMetric primary = ServiceMetric::kTimeoutFrac;
  std::vector<ArmSnapshot> arms;

  // One JSON object (single line, no trailing newline). Deterministic:
  // fixed key order, obs::json_double formatting, no wall-clock or
  // trace-dependent fields.
  std::string to_json() const;
};

// One promote/hold/rollback transition for one treatment arm.
struct DecisionRecord {
  uint64_t window = 0;
  double t_s = 0;
  std::size_t arm = 0;      // index into ServiceConfig::arms
  std::string arm_name;
  Action action = Action::kHold;
  std::string reason;       // short machine-greppable cause
  ServiceMetric metric = ServiceMetric::kRetxRate;  // the primary metric
  CsSummary primary;        // primary-metric CS at decision time
  std::string to_json() const;
};

// One drift-detector alarm, carrying everything prr_inspect needs to
// replay the quarantined window: the id range is [first_connection,
// first_connection + connections) under `seed`, with the recorded
// regime scales applied (prr_inspect --loss-scale/--rtt-scale/...).
struct AlertRecord {
  uint64_t window = 0;
  double t_s = 0;
  std::size_t arm = 0;
  std::string arm_name;
  DriftSeries series = DriftSeries::kLatencyMs;
  double value = 0;       // the observation that fired
  double baseline = 0;    // detector's calibrated baseline mean
  double stat = 0;        // detection statistic at the alarm
  double threshold = 0;   // configured h
  uint64_t seed = 0;
  uint64_t first_connection = 0;
  uint64_t connections = 0;
  double loss_scale = 1.0;
  double rtt_scale = 1.0;
  double bandwidth_scale = 1.0;
  std::string to_json() const;
};

struct ServiceResult {
  std::vector<ScoreboardSnapshot> snapshots;
  std::vector<DecisionRecord> decisions;
  std::vector<AlertRecord> alerts;     // capped retention
  uint64_t alerts_total = 0;           // exact
  std::vector<ArmResult> arms;         // cumulative aggregates
  std::vector<Action> final_state;     // per arm (control stays kHold)
  // Control-plane trace (kServiceAlert / kServiceDecision records),
  // oldest first — the input to exp/service_timeline.h.
  std::vector<obs::TraceRecord> control_records;
  uint64_t windows = 0;
  uint64_t admitted = 0;
  sim::Time end_time;

  // JSON-lines renderings (one record per line, trailing newline).
  std::string scoreboard_jsonl() const;
  std::string decision_log_jsonl() const;
  std::string alert_log_jsonl() const;
};

// `ss -i`-flavored terminal scoreboard: one block per snapshot with a
// fixed-width per-arm table (counters, quantiles, delta vs control,
// always-valid p, latched state).
std::string describe(const ScoreboardSnapshot& snap);

class ExperimentService {
 public:
  ExperimentService(const workload::Population& base, ServiceConfig cfg);

  // Called after each window's snapshot is appended — the streaming
  // hook the CLI uses to write JSONL and repaint the terminal view.
  using SnapshotHook = std::function<void(const ScoreboardSnapshot&)>;
  void set_snapshot_hook(SnapshotHook hook) { hook_ = std::move(hook); }

  // Runs the service to completion (max_connections admitted or the
  // horizon reached) and returns the full result.
  ServiceResult run();

 private:
  const workload::Population& base_;
  ServiceConfig cfg_;
  SnapshotHook hook_;
};

}  // namespace prr::exp
