#include "exp/experiment.h"

#include <memory>

#include "net/loss_model.h"
#include "net/reorder_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::exp {

double ArmResult::fraction_bytes_in_fast_recovery() const {
  uint64_t in_fr = 0;
  for (const auto& e : recovery_log.events()) in_fr += e.bytes_sent_during;
  return metrics.bytes_sent == 0
             ? 0
             : static_cast<double>(in_fr) /
                   static_cast<double>(metrics.bytes_sent);
}

namespace {

tcp::ConnectionConfig make_connection_config(
    const workload::ConnectionSample& s, const ArmConfig& arm) {
  tcp::ConnectionConfig cc;
  cc.sender.mss = arm.mss;
  cc.sender.initial_cwnd_segments = arm.initial_cwnd_segments;
  cc.sender.cc = arm.cc;
  cc.sender.recovery = arm.recovery;
  cc.sender.prr_bound = arm.prr_bound;
  cc.sender.early_retransmit = arm.early_retransmit;
  cc.sender.tail_loss_probe = arm.tail_loss_probe;
  cc.sender.pacing = arm.pacing;
  cc.sender.max_rto_backoffs = arm.max_rto_backoffs;
  cc.sender.handshake_rtt = s.rtt;  // measured during the SYN exchange

  cc.sender.sack_enabled = s.client_sack;
  cc.sender.timestamps = s.client_timestamps;
  const bool ecn = arm.ecn || s.client_ecn;
  cc.sender.ecn = ecn;
  cc.receiver.sack_enabled = s.client_sack;
  cc.receiver.dsack_enabled = s.client_dsack;
  cc.receiver.timestamps = s.client_timestamps;
  cc.receiver.ecn = ecn;

  cc.path = net::Path::Config::symmetric(s.bandwidth, s.rtt,
                                         s.queue_packets);
  cc.path.data_link.ecn_mark_threshold = s.ecn_mark_threshold;
  cc.path.ack_mangler.ack_loss_probability = s.ack_loss_prob;
  cc.path.ack_mangler.stretch_factor = s.ack_stretch;
  cc.path.ack_mangler.stretch_flush_timeout = s.ack_stretch_flush;
  return cc;
}

}  // namespace

ArmResult run_arm(const workload::Population& pop, const ArmConfig& arm,
                  const RunOptions& opts) {
  ArmResult result;
  result.name = arm.name;

  for (int i = 0; i < opts.connections; ++i) {
    // Common random numbers: the sample and all network randomness derive
    // from (seed, i), independent of the arm.
    sim::Rng conn_rng = sim::Rng(opts.seed).fork(static_cast<uint64_t>(i));
    workload::ConnectionSample sample = pop.sample(conn_rng.fork(100));
    for (const auto& resp : sample.responses) {
      result.total_workload_bytes += resp.bytes;
    }

    sim::Simulator sim;
    tcp::Connection conn(sim, make_connection_config(sample, arm),
                         conn_rng.fork(101), &result.metrics,
                         &result.recovery_log);

    // Network impairments, seeded independently of the arm.
    {
      auto composite = std::make_unique<net::CompositeLoss>();
      bool any = false;
      if (sample.loss.p_good_to_bad > 0 || sample.loss.loss_in_good > 0) {
        composite->add(std::make_unique<net::GilbertElliottLoss>(
            sample.loss, conn_rng.fork(102)));
        any = true;
      }
      if (sample.outages) {
        composite->add(std::make_unique<net::OutageLoss>(
            sim, sample.outage, conn_rng.fork(104)));
        any = true;
      }
      if (any) {
        conn.path().data_link().set_loss_model(std::move(composite));
      }
    }
    if (sample.reorder_prob > 0) {
      conn.path().data_link().set_reorder_model(
          std::make_unique<net::RandomReorder>(
              sample.reorder_prob, sample.reorder_min, sample.reorder_max,
              conn_rng.fork(103)));
    }

    http::ServerApp app(sim, conn, sample.responses, &result.latency);
    if (sample.client_abandons) {
      sim.schedule_in(sample.abandon_after,
                      [&conn] { conn.path().kill_client(); });
    }
    app.start();
    sim.run(opts.per_connection_limit);

    result.total_network_transmit_time += conn.sender().network_transmit_time();
    result.total_loss_recovery_time += conn.sender().loss_recovery_time();
    ++result.connections_run;
  }
  return result;
}

std::vector<ArmResult> run_arms(const workload::Population& pop,
                                const std::vector<ArmConfig>& arms,
                                const RunOptions& opts) {
  std::vector<ArmResult> results;
  results.reserve(arms.size());
  for (const auto& arm : arms) results.push_back(run_arm(pop, arm, opts));
  return results;
}

}  // namespace prr::exp
