#include "exp/experiment.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "exp/conn_arena.h"
#include "exp/stream_fold.h"
#include "net/fault_injector.h"
#include "net/loss_model.h"
#include "net/reorder_model.h"
#include "obs/flight_recorder.h"
#include "obs/perfetto.h"
#include "obs/self_profile.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "torture/oracles.h"

namespace prr::exp {

void ArmResult::merge(ArmResult&& shard) {
  metrics.merge(shard.metrics);
  recovery_log.merge(shard.recovery_log);
  episodes.merge(shard.episodes);
  latency.merge(shard.latency);
  total_network_transmit_time += shard.total_network_transmit_time;
  total_loss_recovery_time += shard.total_loss_recovery_time;
  connections_run += shard.connections_run;
  total_workload_bytes += shard.total_workload_bytes;
  quarantined.insert(quarantined.end(),
                     std::make_move_iterator(shard.quarantined.begin()),
                     std::make_move_iterator(shard.quarantined.end()));
  outcomes.insert(outcomes.end(),
                  std::make_move_iterator(shard.outcomes.begin()),
                  std::make_move_iterator(shard.outcomes.end()));
  invariant_violations += shard.invariant_violations;
  acks_checked += shard.acks_checked;
  registry.merge(shard.registry);
  store.merge(std::move(shard.store));
  // Zero for in-run worker shards (only run_arm's writer fills them);
  // summing makes fork-per-shard process merges total correctly.
  store_connections += shard.store_connections;
  store_records += shard.store_records;
  store_payload_bytes += shard.store_payload_bytes;
}

double ArmResult::fraction_bytes_in_fast_recovery() const {
  uint64_t in_fr = 0;
  for (const auto& e : recovery_log.events()) in_fr += e.bytes_sent_during;
  return metrics.bytes_sent == 0
             ? 0
             : static_cast<double>(in_fr) /
                   static_cast<double>(metrics.bytes_sent);
}

std::string QuarantineRecord::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "conn %llu arm '%s' seed %llu%s%s: %zu violation(s)%s%s",
                static_cast<unsigned long long>(connection_id),
                arm_name.c_str(), static_cast<unsigned long long>(seed),
                scenario.empty() ? "" : " scenario ",
                scenario.empty() ? "" : scenario.c_str(),
                violations.size(), exception.empty() ? "" : ", exception: ",
                exception.empty() ? "" : exception.c_str());
  std::string out = buf;
  for (const auto& v : violations) {
    out += "\n    [";
    out += tcp::to_string(v.kind);
    out += " @ " + std::to_string(v.at.ms()) + "ms] " + v.detail;
  }
  if (fault_summary != "(none)" && !fault_summary.empty()) {
    out += "\n    faults: " + fault_summary;
  }
  return out;
}

std::string QuarantineRecord::trace_json() const {
  return obs::perfetto_trace_json(trace_tail);
}

std::string QuarantineRecord::episode_summary() const {
  if (episodes.empty()) return {};
  return obs::describe(episodes.back());
}

bool ReplayResult::reproduced(const QuarantineRecord& rec) const {
  if (!rec.exception.empty()) return exception == rec.exception;
  if (violations.size() != rec.violations.size()) return false;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (violations[i].kind != rec.violations[i].kind) return false;
    if (violations[i].at != rec.violations[i].at) return false;
  }
  return !violations.empty();
}

namespace {

tcp::ConnectionConfig make_connection_config(
    const workload::ConnectionSample& s, const ArmConfig& arm) {
  tcp::ConnectionConfig cc;
  cc.sender.mss = arm.mss;
  cc.sender.initial_cwnd_segments = arm.initial_cwnd_segments;
  cc.sender.cc = arm.cc;
  cc.sender.recovery = arm.recovery;
  cc.sender.prr_bound = arm.prr_bound;
  cc.sender.early_retransmit = arm.early_retransmit;
  cc.sender.tail_loss_probe = arm.tail_loss_probe;
  cc.sender.pacing = arm.pacing;
  cc.sender.max_rto_backoffs = arm.max_rto_backoffs;
  cc.sender.renege_recovery = arm.renege_recovery;
  cc.sender.validate_acks = arm.validate_acks;
  cc.sender.zero_window_probes = arm.zero_window_probes;
  cc.sender.handshake_rtt = s.rtt;  // measured during the SYN exchange

  cc.sender.sack_enabled = s.client_sack;
  cc.sender.timestamps = s.client_timestamps;
  const bool ecn = arm.ecn || s.client_ecn;
  cc.sender.ecn = ecn;
  cc.receiver.sack_enabled = s.client_sack;
  cc.receiver.dsack_enabled = s.client_dsack;
  cc.receiver.timestamps = s.client_timestamps;
  cc.receiver.ecn = ecn;

  cc.path = net::Path::Config::symmetric(s.bandwidth, s.rtt,
                                         s.queue_packets);
  cc.path.data_link.ecn_mark_threshold = s.ecn_mark_threshold;
  cc.path.ack_mangler.ack_loss_probability = s.ack_loss_prob;
  cc.path.ack_mangler.stretch_factor = s.ack_stretch;
  cc.path.ack_mangler.stretch_flush_timeout = s.ack_stretch_flush;
  cc.path.ack_mangler.misbehavior = s.misbehavior;
  cc.receiver.renege_at = s.renege_at;
  return cc;
}

struct ConnectionOutcome {
  std::vector<tcp::InvariantViolation> violations;
  std::string fault_summary;
  uint64_t acks_checked = 0;
  bool aborted = false;
  bool all_acked = false;
  std::string exception;  // non-empty if the connection threw
  std::vector<obs::TraceRecord> trace_tail;  // captured only on failure
};

// Folds one finished connection into the arm's named-instrument view,
// through pre-bound handles (RegistryHandles) so the sweep hot path pays
// pointer dereferences instead of ~16 string-keyed map lookups per
// connection. Every input is a deterministic function of (seed, id, arm),
// and the registry merge is commutative per name, so the per-arm totals
// below are byte-identical at any thread count and reconcile exactly with
// the tcp::Metrics accumulator (`delta` is this connection's
// contribution). The abort/complete tallies stay lazily created so the
// registry's instrument set is exactly what the uncached path produced.
void fold_connection_registry(RegistryHandles& h, const tcp::Metrics& delta,
                              const tcp::Sender& sender, sim::Time ran_for) {
  h.data_segments_sent->add(delta.data_segments_sent);
  h.bytes_sent->add(delta.bytes_sent);
  h.retransmits_total->add(delta.retransmits_total);
  h.fast_retransmits->add(delta.fast_retransmits);
  h.timeouts_total->add(delta.timeouts_total);
  h.fast_recovery_events->add(delta.fast_recovery_events);
  h.undo_events->add(delta.undo_events);
  h.dsacks_received->add(delta.dsacks_received);
  h.connections_run->inc();
  if (sender.aborted()) {
    if (!h.connections_aborted) {
      h.connections_aborted = h.owner->counter("exp.connections_aborted");
    }
    h.connections_aborted->inc();
  }
  if (sender.all_acked()) {
    if (!h.connections_completed) {
      h.connections_completed = h.owner->counter("exp.connections_completed");
    }
    h.connections_completed->inc();
  }
  h.retransmits_per_conn->record(delta.retransmits_total);
  h.timeouts_per_conn->record(delta.timeouts_total);
  h.final_cwnd_bytes->record(sender.cwnd_bytes());
  h.conn_sim_time_ns->record(static_cast<uint64_t>(ran_for.ns()));
  if (ran_for.ns() > h.max_conn_sim_time_ns->value()) {
    h.max_conn_sim_time_ns->set(ran_for.ns());
  }
}

// Scans a connection's ring for an RTO that fired during fast recovery —
// the rto_interrupt capture trigger. An enter/exit state machine over the
// records; only run when the policy has that clause.
bool ring_saw_rto_interrupt(const obs::FlightRecorder& ring) {
  bool in_episode = false;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const obs::TraceRecord& r = ring[i];
    switch (r.type) {
      case obs::TraceType::kEnterRecovery: in_episode = true; break;
      case obs::TraceType::kExitRecovery: in_episode = false; break;
      case obs::TraceType::kUndo:
        if (r.a == 0) in_episode = false;
        break;
      case obs::TraceType::kRtoFired:
        if (in_episode) return true;
        break;
      default: break;
    }
  }
  return false;
}

// Runs connection `id` of the (pop, arm, opts) experiment — the one place
// both the sweep and quarantine replay go through, so a replay is the
// exact computation the original run performed. `result` may be null
// (replay mode: no aggregation). `force_check` enables the invariant
// checker regardless of opts.check_invariants. `arena` may be null (the
// fresh-objects path: one-off callers, replay, pooling disabled); when
// set, the simulator/connection/app are recycled from it through the
// reset() protocol — "fresh == reset by construction", so both paths are
// the identical computation. Exceptions are caught here (not in the
// caller) so the flight-recorder tail can be captured after the stack
// unwinds.
//
// `capture`/`encoder` (both set or both null) enable trace-store capture:
// at teardown the policy is evaluated over this connection's own deltas
// and, on keep, the ring is encoded into result->store.
ConnectionOutcome run_one_connection(const workload::Population& pop,
                                     const ArmConfig& arm,
                                     const RunOptions& opts, uint64_t id,
                                     bool force_check, ArmResult* result,
                                     obs::FlightRecorder* shared_recorder,
                                     ConnArena* arena,
                                     const obs::CapturePolicy* capture,
                                     obs::StoreEncoder* encoder) {
  ConnectionOutcome outcome;
  const bool check = force_check || opts.check_invariants;
  const bool capturing =
      capture != nullptr && encoder != nullptr && result != nullptr;

  // The recorder outlives the connection (declared before the try) so a
  // throwing connection still leaves a readable tail. Checked runs get
  // one even without opts.trace: quarantine artifacts always carry the
  // events leading up to the failure. Sweeps pass a shard-owned ring
  // (cleared per connection) so short transfers don't pay a ring
  // allocation each; one-off callers get a local ring.
  std::optional<obs::FlightRecorder> local_recorder;
  obs::FlightRecorder* recorder = nullptr;
  if (opts.trace || check || opts.collect_episodes || capturing) {
    if (shared_recorder != nullptr) {
      shared_recorder->clear();
      recorder = shared_recorder;
    } else {
      local_recorder.emplace(opts.trace_ring_records);
      recorder = &*local_recorder;
    }
  }

  // Episode accumulation taps the recorder through a listener (records
  // are folded as written, so ring wrap cannot lose episodes). The
  // builder sits outside the try so a throwing connection still yields
  // its partial (truncated) episode; the listener is popped before
  // returning so a shared per-shard ring never keeps a dangling
  // subscriber across connections.
  obs::EpisodeBuilder episode_builder;
  // Capture-trigger inputs, filled as the run produces them (declared
  // before the try so a throwing connection can still be evaluated —
  // an exploding connection is exactly what triggered capture is for).
  obs::CaptureStats cap;
  cap.conn = id;
  const bool collect =
      opts.collect_episodes && recorder != nullptr && result != nullptr;
  if (collect) {
    recorder->add_listener(
        [&episode_builder](const obs::TraceRecord& r) {
          episode_builder.on_record(r);
        });
  }

  try {
    // Common random numbers: the sample and all network randomness derive
    // from (seed, id), independent of the arm.
    sim::Rng conn_rng = sim::Rng(opts.seed).fork(id);
    workload::ConnectionSample local_sample;
    workload::ConnectionSample& sample = arena ? arena->sample : local_sample;
    pop.sample_into(conn_rng.fork(100), sample);
    if (result != nullptr) {
      for (const auto& resp : sample.responses) {
        result->total_workload_bytes += resp.bytes;
      }
    }
    outcome.fault_summary = sample.faults.describe();

    std::optional<sim::Simulator> local_sim;
    if (arena) {
      arena->sim.reset();
    } else {
      local_sim.emplace();
    }
    sim::Simulator& sim = arena ? arena->sim : *local_sim;
    // Scheduler backend and batch delivery are per-run toggles; the queue
    // is empty here (fresh or just reset), which set_scheduler requires.
    sim.set_scheduler(opts.scheduler);
    sim.set_batch_delivery(opts.batch_delivery);

    tcp::Metrics* metrics = result != nullptr ? &result->metrics : nullptr;
    stats::RecoveryLog* rlog =
        result != nullptr ? &result->recovery_log : nullptr;
    std::optional<tcp::Connection> local_conn;
    if (arena) {
      if (!arena->conn) {
        arena->conn.emplace(sim, make_connection_config(sample, arm),
                            conn_rng.fork(101), metrics, rlog);
      } else {
        arena->conn->reset(make_connection_config(sample, arm),
                           conn_rng.fork(101), metrics, rlog);
        arena->check_reset_state();
      }
    } else {
      local_conn.emplace(sim, make_connection_config(sample, arm),
                         conn_rng.fork(101), metrics, rlog);
    }
    tcp::Connection& conn = arena ? *arena->conn : *local_conn;
    if (recorder) {
      conn.sender().set_recorder(recorder, static_cast<uint32_t>(id));
    }
    // Snapshot for the per-connection delta folded into the registry
    // (the Metrics accumulator is shared across the shard).
    const tcp::Metrics metrics_before =
        result != nullptr ? result->metrics : tcp::Metrics{};

    obs::SelfProfiler profiler;
    if (opts.self_profile && result != nullptr) {
      profiler.attach(sim);
      profiler.attach(conn.sender());
    }

    // Network impairments, seeded independently of the arm. Clean paths
    // (the common case in pooled sweeps) skip the composite allocation
    // entirely.
    {
      const bool ge_loss =
          sample.loss.p_good_to_bad > 0 || sample.loss.loss_in_good > 0;
      if (ge_loss || sample.outages) {
        auto composite = std::make_unique<net::CompositeLoss>();
        if (ge_loss) {
          composite->add(std::make_unique<net::GilbertElliottLoss>(
              sample.loss, conn_rng.fork(102)));
        }
        if (sample.outages) {
          composite->add(std::make_unique<net::OutageLoss>(
              sim, sample.outage, conn_rng.fork(104)));
        }
        conn.path().data_link().set_loss_model(std::move(composite));
      }
    }
    if (sample.reorder_prob > 0) {
      conn.path().data_link().set_reorder_model(
          std::make_unique<net::RandomReorder>(
              sample.reorder_prob, sample.reorder_min, sample.reorder_max,
              conn_rng.fork(103)));
    }

    // Time-varying path dynamics (chaos scenarios).
    net::FaultInjector injector(sim, conn.path(), sample.faults);
    if (recorder) {
      injector.set_recorder(recorder, static_cast<uint32_t>(id));
    }
    if (!injector.schedule().empty()) injector.arm();

    // The safety net: per-ACK invariant checking, quarantine on violation.
    std::unique_ptr<tcp::InvariantChecker> checker;
    if (check) {
      tcp::InvariantChecker::Config ccfg;
      if (opts.inject_violation_connection >= 0 &&
          static_cast<uint64_t>(opts.inject_violation_connection) == id) {
        ccfg.inject_on_ack = opts.inject_violation_on_ack;
      }
      checker = std::make_unique<tcp::InvariantChecker>(sim, conn.sender(),
                                                        ccfg);
    }

    // Torture oracles (torture/oracles.h): the progress watchdog rides the
    // RTO hook during the run; deadlock/conservation are teardown checks.
    // Findings join the checker's violation list, so they quarantine and
    // replay exactly like per-ACK invariant hits.
    std::unique_ptr<torture::ProgressWatchdog> watchdog;
    if (opts.torture_oracles && checker) {
      torture::ProgressWatchdog::Config wcfg;
      wcfg.stuck_backoffs = opts.watchdog_rto_backoffs;
      // "Path up" = an ACK could have come back since the last RTO: the
      // client is alive and neither direction is dark or stalled.
      net::Path& path = conn.path();
      watchdog = std::make_unique<torture::ProgressWatchdog>(
          conn.sender(), *checker, wcfg, [&path] {
            return !path.client_dead() && !path.ack_stalled() &&
                   !path.data_link().blackout() &&
                   !path.ack_link().blackout();
          });
    }

    stats::LatencyTracker* latency =
        result != nullptr ? &result->latency : nullptr;
    std::optional<http::ServerApp> local_app;
    if (arena) {
      if (!arena->app) {
        arena->app.emplace(sim, conn, sample.responses, latency);
      } else {
        arena->app->reset(sample.responses, latency);
      }
    } else {
      local_app.emplace(sim, conn, sample.responses, latency);
    }
    http::ServerApp& app = arena ? *arena->app : *local_app;
    if (sample.client_abandons) {
      sim.schedule_in(sample.abandon_after,
                      [&conn] { conn.path().kill_client(); });
    }
    app.start();
    sim.run(opts.per_connection_limit);

    if (checker) {
      if (opts.torture_oracles) {
        torture::check_deadlock(sim, conn.sender(), *checker);
        torture::check_conservation(conn.sender(), *checker);
      }
      checker->finalize();
      outcome.violations = checker->violations();
      outcome.acks_checked = checker->acks_checked();
    }
    outcome.aborted = conn.sender().aborted();
    outcome.all_acked = conn.sender().all_acked();

    if (opts.collect_outcomes && result != nullptr) {
      ConnOutcome co;
      co.id = id;
      for (const auto& resp : sample.responses) co.expected_bytes += resp.bytes;
      co.delivered_bytes = conn.receiver().rcv_nxt();
      co.all_acked = outcome.all_acked;
      co.aborted = outcome.aborted;
      co.app_finished = app.finished();
      result->outcomes.push_back(co);
    }

    if (result != nullptr) {
      result->total_network_transmit_time +=
          conn.sender().network_transmit_time();
      result->total_loss_recovery_time += conn.sender().loss_recovery_time();
      ++result->connections_run;

      tcp::Metrics delta = result->metrics;
      delta -= metrics_before;
      if (capturing) {
        cap.timeouts = delta.timeouts_total;
        cap.undo_events = delta.undo_events;
        cap.retransmits = delta.retransmits_total;
        cap.recovery_ms =
            static_cast<double>(conn.sender().loss_recovery_time().ms());
        cap.aborted = conn.sender().aborted();
      }
      RegistryHandles local_handles;
      RegistryHandles& handles = arena ? arena->handles : local_handles;
      if (handles.owner != &result->registry) {
        handles.bind(result->registry);
      }
      fold_connection_registry(handles, delta, conn.sender(), sim.now());
      if (recorder) {
        if (!handles.trace_records_written) {
          handles.trace_records_written =
              result->registry.counter("obs.trace.records_written");
          handles.trace_records_dropped =
              result->registry.counter("obs.trace.records_dropped");
        }
        handles.trace_records_written->add(recorder->total_written());
        handles.trace_records_dropped->add(recorder->dropped());
      }
      if (opts.self_profile) profiler.export_into(result->registry);
    }
  } catch (const std::exception& e) {
    outcome.exception = e.what();
  } catch (...) {
    outcome.exception = "unknown exception";
  }

  if (collect) {
    recorder->pop_listener();
    episode_builder.finish();
    result->episodes.fold(episode_builder);
  }
  if (recorder &&
      (!outcome.violations.empty() || !outcome.exception.empty())) {
    outcome.trace_tail = recorder->tail(opts.trace_tail_records);
  }
  if (capturing && recorder != nullptr) {
    cap.invariant_violations = outcome.violations.size();
    // A thrown connection is interesting by definition: fold it into the
    // abort trigger so "full=abort" policies keep its tail.
    if (!outcome.exception.empty()) cap.aborted = true;
    if (capture->needs_rto_interrupt()) {
      cap.rto_interrupted_recovery = ring_saw_rto_interrupt(*recorder);
    }
    const obs::CaptureDecision d = capture->evaluate(cap);
    if (d.keep) {
      encoder->encode(*recorder, id,
                      d.full ? obs::kBlockFull : obs::kBlockSampled,
                      &result->store);
    }
  }
  return outcome;
}

// Runs connections [begin, end) of one arm into `result`, with the
// quarantine net around each — the single code path both the serial run
// and every worker chunk execute, so the two are the same computation.
void run_connection_range(const workload::Population& pop,
                          const ArmConfig& arm, const RunOptions& opts,
                          uint64_t begin, uint64_t end, ArmResult& result,
                          ConnArena* arena,
                          const obs::CapturePolicy* capture,
                          obs::StoreWriter* store_writer) {
  // One ring per shard, cleared between connections — the sweep's trace
  // cost is the record writes, not a per-connection ring allocation.
  std::optional<obs::FlightRecorder> recorder;
  if (opts.trace || opts.check_invariants || opts.collect_episodes ||
      capture != nullptr) {
    recorder.emplace(opts.trace_ring_records);
  }
  // One encoder per range: its scratch is reused across connections, so
  // the capture path allocates nothing once warm.
  std::optional<obs::StoreEncoder> encoder;
  if (capture != nullptr) encoder.emplace();
  // The previous range's shard (and its registry) is gone by now, and its
  // successor may occupy the same address — cached instrument handles
  // must not survive the boundary.
  if (arena) arena->handles.invalidate();
  for (uint64_t id = begin; id < end; ++id) {
    ConnectionOutcome outcome = run_one_connection(
        pop, arm, opts, id, /*force_check=*/false, &result,
        recorder ? &*recorder : nullptr, arena, capture,
        encoder ? &*encoder : nullptr);
    // Serial mode streams captured blocks straight to disk, connection by
    // connection, so the in-memory shard never grows with the sweep.
    // Worker shards have no writer: their blocks ride in result.store
    // until the stream fold flushes them in connection-id order.
    if (store_writer != nullptr && !result.store.empty()) {
      store_writer->append_shard(result.store);
      result.store.clear();
    }
    result.acks_checked += outcome.acks_checked;
    if (outcome.violations.empty() && outcome.exception.empty()) continue;

    // Quarantine: log enough to replay, keep the run going.
    QuarantineRecord rec;
    rec.seed = opts.seed;
    rec.connection_id = id;
    rec.arm_name = arm.name;
    rec.scenario = opts.scenario;
    rec.trace_ring_records = opts.trace_ring_records;
    rec.trace_tail_records = opts.trace_tail_records;
    rec.fault_summary = outcome.fault_summary;
    rec.violations = outcome.violations;
    rec.exception = std::move(outcome.exception);
    rec.trace_tail = std::move(outcome.trace_tail);
    // Attach the culprit episode(s), rebuilt from the tail with per-ACK
    // ledgers: the decision trail leading into the failure, not just
    // raw records.
    if (!rec.trace_tail.empty()) {
      obs::EpisodeBuilder builder({.keep_ledgers = true});
      for (const obs::TraceRecord& r : rec.trace_tail) builder.on_record(r);
      builder.finish();
      rec.episodes = builder.episodes();
    }
    result.invariant_violations += rec.violations.size();
    result.quarantined.push_back(std::move(rec));
  }
}

int resolve_threads(const RunOptions& opts) {
  int t = opts.threads;
  if (t == 0) {
    t = static_cast<int>(std::thread::hardware_concurrency());
    if (t <= 0) t = 1;  // hardware_concurrency() may be unknowable
  }
  return std::max(1, std::min(t, opts.connections));
}

}  // namespace

TracedConnection trace_connection(const workload::Population& pop,
                                  const ArmConfig& arm,
                                  const RunOptions& opts, uint64_t id,
                                  std::size_t max_records) {
  TracedConnection out;
  // A listener captures the full stream (and feeds the episode builder)
  // as records are written, so the result is not capped by the ring.
  obs::FlightRecorder recorder(opts.trace_ring_records);
  obs::EpisodeBuilder builder({.keep_ledgers = true});
  recorder.add_listener(
      [&out, &builder, max_records](const obs::TraceRecord& r) {
        if (max_records == 0 || out.records.size() < max_records) {
          out.records.push_back(r);
        }
        builder.on_record(r);
      });

  RunOptions traced = opts;
  traced.trace = true;
  traced.collect_episodes = false;  // the local builder handles episodes
  ConnectionOutcome outcome = run_one_connection(
      pop, arm, traced, id, /*force_check=*/false,
      /*result=*/nullptr, &recorder, /*arena=*/nullptr,
      /*capture=*/nullptr, /*encoder=*/nullptr);
  builder.finish();
  out.episodes = builder.episodes();
  out.aborted = outcome.aborted;
  out.all_acked = outcome.all_acked;
  return out;
}

ArmResult run_arm(const workload::Population& pop, const ArmConfig& arm,
                  const RunOptions& opts) {
  ArmResult result;
  result.name = arm.name;
  result.latency.set_bounded(opts.bounded_stats);
  result.recovery_log.set_bounded(opts.bounded_stats);
  const auto n = static_cast<uint64_t>(std::max(opts.connections, 0));
  const uint64_t first = opts.first_connection;
  const int threads = resolve_threads(opts);

  // Trace store: parse the capture policy up front (a malformed spec must
  // fail before any connection runs, not after a million of them) and
  // open the per-arm file. A policy that keeps nothing still produces a
  // valid header-only store — a cheap run manifest.
  obs::CapturePolicy policy;
  std::optional<obs::StoreWriter> writer;
  const obs::CapturePolicy* capture = nullptr;
  if (!opts.store_path.empty()) {
    std::string err;
    if (!obs::CapturePolicy::parse(opts.capture, &policy, &err)) {
      throw std::invalid_argument("bad capture policy: " + err);
    }
    obs::StoreMeta meta;
    meta.seed = opts.seed;
    meta.arm = arm.name;
    meta.policy = policy.spec();
    meta.scenario = opts.scenario;
    writer.emplace();
    const std::string path = obs::store_path_for_arm(opts.store_path, arm.name);
    if (!writer->open(path, meta)) {
      throw std::runtime_error("cannot open trace store " + path);
    }
    if (policy.keeps_anything()) capture = &policy;
  }
  auto finish_store = [&writer, &result] {
    if (!writer) return;
    if (!writer->finish()) {
      throw std::runtime_error("short write finishing trace store " +
                               writer->path());
    }
    result.store_connections = writer->connections();
    result.store_records = writer->records();
    result.store_payload_bytes = writer->payload_bytes();
  };

  if (threads == 1) {
    std::optional<ConnArena> arena;
    if (opts.pool_connections) arena.emplace();
    run_connection_range(pop, arm, opts, first, first + n, result,
                         arena ? &*arena : nullptr, capture,
                         writer ? &*writer : nullptr);
    finish_store();
    return result;
  }

  // Contiguous chunks of connection ids, claimed dynamically (connection
  // costs vary wildly, so static block partitioning would load-imbalance).
  // Each chunk accumulates into its own ArmResult shard; the StreamFolder
  // folds shards into `result` in chunk order — ascending connection-id
  // order, the serial aggregation bit for bit — while keeping only a
  // bounded reorder window of shards alive, so sweep memory is
  // O(threads + fold_window) regardless of n. The ceil in the chunk-size
  // formula guarantees num_chunks <= threads * 8 (the floor form
  // degenerated to chunk_size 1 — one shard per connection — whenever
  // n < threads * 8).
  const uint64_t target_chunks = static_cast<uint64_t>(threads) * 8;
  const uint64_t chunk_size =
      std::max<uint64_t>(1, (n + target_chunks - 1) / target_chunks);
  const uint64_t num_chunks = (n + chunk_size - 1) / chunk_size;
  const uint64_t window =
      opts.fold_window > 0 ? opts.fold_window
                           : 2 * static_cast<uint64_t>(threads);
  // The fold callback runs shards in ascending connection-id order, so
  // flushing each shard's captured blocks to the writer right there
  // reproduces the serial file byte for byte at any thread count.
  StreamFolder<ArmResult, std::function<void(ArmResult&&)>> folder(
      num_chunks, window, [&result, &writer](ArmResult&& shard) {
        if (writer && !shard.store.empty()) {
          writer->append_shard(shard.store);
          shard.store.clear();
        }
        result.merge(std::move(shard));
      });

  auto worker = [&] {
    std::optional<ConnArena> arena;
    if (opts.pool_connections) arena.emplace();
    uint64_t c = 0;
    while (folder.claim(c)) {
      ArmResult shard;
      shard.latency.set_bounded(opts.bounded_stats);
      shard.recovery_log.set_bounded(opts.bounded_stats);
      const uint64_t begin = first + c * chunk_size;
      const uint64_t end = std::min(first + n, begin + chunk_size);
      run_connection_range(pop, arm, opts, begin, end, shard,
                           arena ? &*arena : nullptr, capture,
                           /*store_writer=*/nullptr);
      folder.submit(c, std::move(shard));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  finish_store();
  return result;
}

std::vector<ArmResult> run_arms(const workload::Population& pop,
                                const std::vector<ArmConfig>& arms,
                                const RunOptions& opts) {
  std::vector<ArmResult> results;
  results.reserve(arms.size());
  for (const auto& arm : arms) results.push_back(run_arm(pop, arm, opts));
  return results;
}

ArmResult Experiment::run(const ArmConfig& arm) const {
  return run_arm(pop_, arm, opts_);
}

std::vector<ArmResult> Experiment::run(
    const std::vector<ArmConfig>& arms) const {
  return run_arms(pop_, arms, opts_);
}

ReplayResult Experiment::replay(const ArmConfig& arm,
                                const QuarantineRecord& record) const {
  ReplayResult replay;
  RunOptions opts = opts_;
  opts.seed = record.seed;  // the record pins the sample path
  // The record also pins the trace geometry: the ring size never affects
  // connection behavior, but the captured tail must match the original
  // byte for byte for replay artifacts to be comparable.
  if (record.trace_ring_records != 0) {
    opts.trace_ring_records = record.trace_ring_records;
  }
  if (record.trace_tail_records != 0) {
    opts.trace_tail_records = record.trace_tail_records;
  }
  ConnectionOutcome outcome = run_one_connection(
      pop_, arm, opts, record.connection_id,
      /*force_check=*/true, /*result=*/nullptr,
      /*shared_recorder=*/nullptr, /*arena=*/nullptr,
      /*capture=*/nullptr, /*encoder=*/nullptr);
  replay.violations = std::move(outcome.violations);
  replay.exception = std::move(outcome.exception);
  replay.aborted = outcome.aborted;
  replay.all_acked = outcome.all_acked;
  replay.acks_checked = outcome.acks_checked;
  replay.trace_tail = std::move(outcome.trace_tail);
  return replay;
}

}  // namespace prr::exp
