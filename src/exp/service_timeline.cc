#include "exp/service_timeline.h"

#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/perfetto.h"

namespace prr::exp {

namespace {

constexpr int kScoreboardPid = 1;
constexpr int kControlPid = 2;

std::string ts_us(double t_s) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", t_s * 1e6);
  return buf;
}

void counter_event(std::string& out, double t_s, const std::string& track,
                   std::initializer_list<std::pair<const char*, double>>
                       values) {
  out += "{\"ph\":\"C\",\"pid\":" + std::to_string(kScoreboardPid);
  out += ",\"tid\":0,\"ts\":" + ts_us(t_s);
  out += ",\"name\":" + obs::json_quote(track);
  out += ",\"args\":{";
  bool first = true;
  for (const auto& [key, value] : values) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += key;
    out += "\":" + obs::json_double(value);
  }
  out += "}},\n";
}

}  // namespace

std::string service_timeline_json(const ServiceResult& res) {
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kScoreboardPid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"scoreboard\"}},\n";

  for (const ScoreboardSnapshot& snap : res.snapshots) {
    counter_event(out, snap.t_s, "admitted",
                  {{"total", static_cast<double>(snap.admitted)},
                   {"window", static_cast<double>(snap.window_connections)},
                   {"load", snap.load_factor}});
    counter_event(out, snap.t_s, "regime",
                  {{"loss_scale", snap.regime_loss_scale},
                   {"rtt_scale", snap.regime_rtt_scale},
                   {"bandwidth_scale", snap.regime_bandwidth_scale}});
    for (const ArmSnapshot& arm : snap.arms) {
      counter_event(out, snap.t_s, arm.name + " rates",
                    {{"retx_pct", 100 * arm.retx_rate},
                     {"timeout_pct", 100 * arm.timeout_frac}});
      counter_event(out, snap.t_s, arm.name + " latency_ms",
                    {{"p50", arm.latency_ms_p50},
                     {"p95", arm.latency_ms_p95},
                     {"p99", arm.latency_ms_p99}});
      counter_event(out, snap.t_s, arm.name + " recovery",
                    {{"mean_ms", arm.recovery_ms_mean},
                     {"cwnd_kB", arm.final_cwnd_mean / 1024.0}});
    }
  }

  // Control-plane instants (alerts, decisions) as their own process;
  // their `conn` is the snapshot window index, so Perfetto groups them
  // per window under this pid.
  obs::perfetto_append_process(out, res.control_records, kControlPid,
                               "control plane");

  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kControlPid) +
         ",\"name\":\"trace_complete\",\"args\":{\"snapshots\":" +
         std::to_string(res.snapshots.size()) + ",\"control_records\":" +
         std::to_string(res.control_records.size()) + "}}\n";
  out += "]}\n";
  return out;
}

}  // namespace prr::exp
