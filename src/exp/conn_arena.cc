#include "exp/conn_arena.h"

#include <cassert>

namespace prr::exp {

void RegistryHandles::bind(obs::MetricsRegistry& reg) {
  owner = &reg;
  data_segments_sent = reg.counter("tcp.data_segments_sent");
  bytes_sent = reg.counter("tcp.bytes_sent");
  retransmits_total = reg.counter("tcp.retransmits_total");
  fast_retransmits = reg.counter("tcp.fast_retransmits");
  timeouts_total = reg.counter("tcp.timeouts_total");
  fast_recovery_events = reg.counter("tcp.fast_recovery_events");
  undo_events = reg.counter("tcp.undo_events");
  dsacks_received = reg.counter("tcp.dsacks_received");
  connections_run = reg.counter("exp.connections_run");
  retransmits_per_conn = reg.histogram("tcp.retransmits_per_conn");
  timeouts_per_conn = reg.histogram("tcp.timeouts_per_conn");
  final_cwnd_bytes = reg.histogram("tcp.final_cwnd_bytes");
  conn_sim_time_ns = reg.histogram("exp.conn_sim_time_ns");
  max_conn_sim_time_ns = reg.gauge("exp.max_conn_sim_time_ns");
  connections_aborted = nullptr;
  connections_completed = nullptr;
  trace_records_written = nullptr;
  trace_records_dropped = nullptr;
}

void ConnArena::check_reset_state() {
#ifndef NDEBUG
  assert(sim.now().is_zero());
  assert(sim.events_processed() == 0);
  if (conn) {
    tcp::Sender& s = conn->sender();
    assert(s.snd_una() == 0);
    assert(s.snd_nxt() == 0);
    assert(s.write_end() == 0);
    assert(!s.aborted());
    assert(!s.loss_timers_pending());
    assert(conn->receiver().rcv_nxt() == 0);
  }
#endif
}

}  // namespace prr::exp
