// Experiment harness: reproducibility, common-random-numbers pairing
// across arms, aggregate consistency, and the chaos-mode safety net
// (invariant checking, quarantine, deterministic replay).
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

RunOptions small_run(int connections = 300, uint64_t seed = 77) {
  RunOptions o;
  o.connections = connections;
  o.seed = seed;
  return o;
}

TEST(Experiment, SameSeedReproducesExactly) {
  workload::WebWorkload pop;
  ArmResult a = run_arm(pop, ArmConfig::prr_arm(), small_run());
  ArmResult b = run_arm(pop, ArmConfig::prr_arm(), small_run());
  EXPECT_EQ(a.metrics.data_segments_sent, b.metrics.data_segments_sent);
  EXPECT_EQ(a.metrics.retransmits_total, b.metrics.retransmits_total);
  EXPECT_EQ(a.metrics.timeouts_total, b.metrics.timeouts_total);
  EXPECT_EQ(a.recovery_log.count(), b.recovery_log.count());
  EXPECT_EQ(a.latency.responses().size(), b.latency.responses().size());
}

TEST(Experiment, DifferentSeedsDiffer) {
  workload::WebWorkload pop;
  ArmResult a = run_arm(pop, ArmConfig::prr_arm(), small_run(300, 1));
  ArmResult b = run_arm(pop, ArmConfig::prr_arm(), small_run(300, 2));
  EXPECT_NE(a.metrics.data_segments_sent, b.metrics.data_segments_sent);
}

TEST(Experiment, ArmsShareSamplePaths) {
  // Common random numbers: the drawn workload totals (bytes, responses)
  // must match exactly across arms. Abandoned clients are excluded —
  // they truncate the response list at an arm-dependent point.
  workload::WebWorkloadParams params;
  params.abandon_fraction = 0;
  workload::WebWorkload pop(params);
  auto results = run_arms(
      pop, {ArmConfig::linux_arm(), ArmConfig::prr_arm()}, small_run());
  ASSERT_EQ(results.size(), 2u);
  // The drawn workload is bit-identical across arms.
  EXPECT_EQ(results[0].total_workload_bytes,
            results[1].total_workload_bytes);
  EXPECT_GT(results[0].total_workload_bytes, 0u);
  // Completion counts may differ by the occasional straggler that hits
  // the per-connection time limit in one arm only.
  const auto n0 = results[0].latency.responses().size();
  const auto n1 = results[1].latency.responses().size();
  EXPECT_LE(n0 > n1 ? n0 - n1 : n1 - n0, 3u);
}

TEST(Experiment, CleanConnectionsIdenticalAcrossArms) {
  // With losses disabled entirely, recovery algorithms are never invoked
  // and every per-response latency must be bit-identical across arms.
  workload::WebWorkloadParams p;
  p.clean_path_fraction = 1.0;
  p.ack_loss_prob = 0;
  p.reorder_prob = 0;
  p.abandon_fraction = 0;
  workload::WebWorkload pop(p);
  auto results = run_arms(
      pop, {ArmConfig::linux_arm(), ArmConfig::rfc3517_arm(),
            ArmConfig::prr_arm()},
      small_run(200));
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0].latency.responses().size(),
              results[i].latency.responses().size());
    for (std::size_t j = 0; j < results[0].latency.responses().size();
         ++j) {
      EXPECT_DOUBLE_EQ(results[0].latency.responses()[j].latency_ms(),
                       results[i].latency.responses()[j].latency_ms())
          << "arm " << i << " response " << j;
    }
    EXPECT_EQ(results[i].metrics.retransmits_total, 0u);
  }
}

TEST(Experiment, MetricsAggregateAcrossConnections) {
  workload::WebWorkload pop;
  ArmResult r = run_arm(pop, ArmConfig::prr_arm(), small_run(100));
  EXPECT_EQ(r.connections_run, 100u);
  EXPECT_EQ(r.metrics.connections, 100u);
  EXPECT_GT(r.metrics.data_segments_sent, 100u);
  EXPECT_GT(r.total_network_transmit_time, sim::Time::zero());
  EXPECT_LE(r.total_loss_recovery_time, r.total_network_transmit_time);
}

TEST(Experiment, ArmConfigFactories) {
  EXPECT_EQ(ArmConfig::prr_arm().recovery, tcp::RecoveryKind::kPrr);
  EXPECT_EQ(ArmConfig::linux_arm().recovery,
            tcp::RecoveryKind::kLinuxRateHalving);
  EXPECT_EQ(ArmConfig::rfc3517_arm().recovery,
            tcp::RecoveryKind::kRfc3517);
  EXPECT_EQ(ArmConfig::prr_arm().cc, tcp::CcKind::kCubic);  // paper §5
}

TEST(Experiment, FractionHelpersBounded) {
  workload::WebWorkload pop;
  ArmResult r = run_arm(pop, ArmConfig::prr_arm(), small_run(200));
  EXPECT_GE(r.retransmission_rate(), 0.0);
  EXPECT_LE(r.retransmission_rate(), 1.0);
  EXPECT_GE(r.fraction_time_in_loss_recovery(), 0.0);
  EXPECT_LE(r.fraction_time_in_loss_recovery(), 1.0);
  EXPECT_GE(r.fraction_bytes_in_fast_recovery(), 0.0);
  EXPECT_LE(r.fraction_bytes_in_fast_recovery(), 1.0);
}

// ---- chaos mode: invariant checking, quarantine, replay ----

TEST(ExperimentChaos, CheckingDoesNotPerturbResults) {
  // The checker only observes: metrics with checking on must be
  // bit-identical to the plain run.
  workload::WebWorkload pop;
  RunOptions plain = small_run(200);
  RunOptions checked = small_run(200);
  checked.check_invariants = true;
  ArmResult a = run_arm(pop, ArmConfig::prr_arm(), plain);
  ArmResult b = run_arm(pop, ArmConfig::prr_arm(), checked);
  EXPECT_EQ(a.metrics.data_segments_sent, b.metrics.data_segments_sent);
  EXPECT_EQ(a.metrics.retransmits_total, b.metrics.retransmits_total);
  EXPECT_EQ(a.metrics.timeouts_total, b.metrics.timeouts_total);
  EXPECT_EQ(a.acks_checked, 0u);
  EXPECT_GT(b.acks_checked, 0u);
}

TEST(ExperimentChaos, StationarySweepHasNoViolations) {
  workload::WebWorkload pop;
  RunOptions opts = small_run(300);
  opts.check_invariants = true;
  auto results = run_arms(
      pop, {ArmConfig::prr_arm(), ArmConfig::rfc3517_arm(),
            ArmConfig::linux_arm()}, opts);
  for (const auto& r : results) {
    EXPECT_EQ(r.invariant_violations, 0u) << r.name;
    EXPECT_TRUE(r.quarantined.empty()) << r.name;
    EXPECT_EQ(r.connections_run, 300u) << r.name;
  }
}

TEST(ExperimentChaos, ChaosSweepHasNoViolations) {
  // Every chaos scenario, all three arms: zero violations, zero
  // quarantined, and every connection still accounted for.
  workload::WebWorkload base;
  for (const ChaosSpec& spec : standard_chaos_suite()) {
    ChaosPopulation pop(base, spec.profile);
    RunOptions opts = small_run(60);
    opts.check_invariants = true;
    opts.scenario = spec.name;
    Experiment experiment(pop, opts);
    auto results = experiment.run({ArmConfig::prr_arm(),
                                   ArmConfig::rfc3517_arm(),
                                   ArmConfig::linux_arm()});
    for (const auto& r : results) {
      for (const auto& rec : r.quarantined) {
        ADD_FAILURE() << spec.name << ": " << rec.summary();
      }
      EXPECT_EQ(r.invariant_violations, 0u) << spec.name << "/" << r.name;
      EXPECT_EQ(r.connections_run, 60u) << spec.name << "/" << r.name;
      EXPECT_GT(r.acks_checked, 0u) << spec.name << "/" << r.name;
    }
  }
}

TEST(ExperimentChaos, ChaosPopulationPreservesBaseSample) {
  // The fault draw must come from the reserved sub-stream: the base part
  // of the sample (workload, network) is bit-identical with and without
  // chaos decoration.
  workload::WebWorkload base;
  ChaosPopulation chaotic(base, ChaosSpec::everything().profile);
  for (uint64_t id = 0; id < 50; ++id) {
    sim::Rng rng = sim::Rng(9).fork(id).fork(100);
    workload::ConnectionSample plain = base.sample(rng);
    workload::ConnectionSample chaos = chaotic.sample(rng);
    EXPECT_EQ(plain.rtt, chaos.rtt);
    EXPECT_EQ(plain.bandwidth.bits_per_second(), chaos.bandwidth.bits_per_second());
    EXPECT_EQ(plain.responses.size(), chaos.responses.size());
    for (std::size_t i = 0; i < plain.responses.size(); ++i) {
      EXPECT_EQ(plain.responses[i].bytes, chaos.responses[i].bytes);
    }
    EXPECT_TRUE(plain.faults.empty());
  }
}

TEST(ExperimentChaos, InjectedViolationIsQuarantinedAndRunContinues) {
  workload::WebWorkload pop;
  RunOptions opts = small_run(50);
  opts.check_invariants = true;
  opts.scenario = "injection-test";
  opts.inject_violation_connection = 17;
  opts.inject_violation_on_ack = 2;
  Experiment experiment(pop, opts);
  ArmResult r = experiment.run(ArmConfig::prr_arm());

  // Graceful degradation: all 50 connections ran despite the trip.
  EXPECT_EQ(r.connections_run, 50u);
  ASSERT_EQ(r.quarantined.size(), 1u);
  const QuarantineRecord& rec = r.quarantined[0];
  EXPECT_EQ(rec.connection_id, 17u);
  EXPECT_EQ(rec.seed, opts.seed);
  EXPECT_EQ(rec.arm_name, "PRR");
  EXPECT_EQ(rec.scenario, "injection-test");
  ASSERT_EQ(rec.violations.size(), 1u);
  EXPECT_EQ(rec.violations[0].kind, tcp::InvariantKind::kInjected);
  EXPECT_NE(rec.summary().find("injected"), std::string::npos);
}

TEST(ExperimentChaos, ReplayReproducesQuarantinedConnection) {
  workload::WebWorkload base;
  ChaosPopulation pop(base, ChaosSpec::everything().profile);
  RunOptions opts = small_run(40);
  opts.check_invariants = true;
  opts.inject_violation_connection = 23;
  opts.inject_violation_on_ack = 4;
  Experiment experiment(pop, opts);
  ArmConfig arm = ArmConfig::prr_arm();
  ArmResult r = experiment.run(arm);
  ASSERT_EQ(r.quarantined.size(), 1u);

  ReplayResult replay = experiment.replay(arm, r.quarantined[0]);
  EXPECT_TRUE(replay.reproduced(r.quarantined[0]));
  ASSERT_EQ(replay.violations.size(), 1u);
  // Deterministic: same kind at the same simulated instant.
  EXPECT_EQ(replay.violations[0].kind, r.quarantined[0].violations[0].kind);
  EXPECT_EQ(replay.violations[0].at, r.quarantined[0].violations[0].at);
  EXPECT_EQ(replay.violations[0].detail,
            r.quarantined[0].violations[0].detail);

  // Replaying twice is also deterministic.
  ReplayResult again = experiment.replay(arm, r.quarantined[0]);
  EXPECT_EQ(again.violations.size(), replay.violations.size());
  EXPECT_EQ(again.acks_checked, replay.acks_checked);
}

TEST(ExperimentChaos, ReplayOfHealthyConnectionFindsNothing) {
  workload::WebWorkload pop;
  RunOptions opts = small_run(10);
  Experiment experiment(pop, opts);
  QuarantineRecord healthy;
  healthy.seed = opts.seed;
  healthy.connection_id = 3;
  healthy.arm_name = "PRR";
  ReplayResult replay = experiment.replay(ArmConfig::prr_arm(), healthy);
  EXPECT_TRUE(replay.violations.empty());
  EXPECT_TRUE(replay.exception.empty());
  // A record with no recorded failure cannot be "reproduced".
  EXPECT_FALSE(replay.reproduced(healthy));
}

}  // namespace
}  // namespace prr::exp
