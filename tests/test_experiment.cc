// Experiment harness: reproducibility, common-random-numbers pairing
// across arms, and aggregate consistency.
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

RunOptions small_run(int connections = 300, uint64_t seed = 77) {
  RunOptions o;
  o.connections = connections;
  o.seed = seed;
  return o;
}

TEST(Experiment, SameSeedReproducesExactly) {
  workload::WebWorkload pop;
  ArmResult a = run_arm(pop, ArmConfig::prr_arm(), small_run());
  ArmResult b = run_arm(pop, ArmConfig::prr_arm(), small_run());
  EXPECT_EQ(a.metrics.data_segments_sent, b.metrics.data_segments_sent);
  EXPECT_EQ(a.metrics.retransmits_total, b.metrics.retransmits_total);
  EXPECT_EQ(a.metrics.timeouts_total, b.metrics.timeouts_total);
  EXPECT_EQ(a.recovery_log.count(), b.recovery_log.count());
  EXPECT_EQ(a.latency.responses().size(), b.latency.responses().size());
}

TEST(Experiment, DifferentSeedsDiffer) {
  workload::WebWorkload pop;
  ArmResult a = run_arm(pop, ArmConfig::prr_arm(), small_run(300, 1));
  ArmResult b = run_arm(pop, ArmConfig::prr_arm(), small_run(300, 2));
  EXPECT_NE(a.metrics.data_segments_sent, b.metrics.data_segments_sent);
}

TEST(Experiment, ArmsShareSamplePaths) {
  // Common random numbers: the drawn workload totals (bytes, responses)
  // must match exactly across arms. Abandoned clients are excluded —
  // they truncate the response list at an arm-dependent point.
  workload::WebWorkloadParams params;
  params.abandon_fraction = 0;
  workload::WebWorkload pop(params);
  auto results = run_arms(
      pop, {ArmConfig::linux_arm(), ArmConfig::prr_arm()}, small_run());
  ASSERT_EQ(results.size(), 2u);
  // The drawn workload is bit-identical across arms.
  EXPECT_EQ(results[0].total_workload_bytes,
            results[1].total_workload_bytes);
  EXPECT_GT(results[0].total_workload_bytes, 0u);
  // Completion counts may differ by the occasional straggler that hits
  // the per-connection time limit in one arm only.
  const auto n0 = results[0].latency.responses().size();
  const auto n1 = results[1].latency.responses().size();
  EXPECT_LE(n0 > n1 ? n0 - n1 : n1 - n0, 3u);
}

TEST(Experiment, CleanConnectionsIdenticalAcrossArms) {
  // With losses disabled entirely, recovery algorithms are never invoked
  // and every per-response latency must be bit-identical across arms.
  workload::WebWorkloadParams p;
  p.clean_path_fraction = 1.0;
  p.ack_loss_prob = 0;
  p.reorder_prob = 0;
  p.abandon_fraction = 0;
  workload::WebWorkload pop(p);
  auto results = run_arms(
      pop, {ArmConfig::linux_arm(), ArmConfig::rfc3517_arm(),
            ArmConfig::prr_arm()},
      small_run(200));
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[0].latency.responses().size(),
              results[i].latency.responses().size());
    for (std::size_t j = 0; j < results[0].latency.responses().size();
         ++j) {
      EXPECT_DOUBLE_EQ(results[0].latency.responses()[j].latency_ms(),
                       results[i].latency.responses()[j].latency_ms())
          << "arm " << i << " response " << j;
    }
    EXPECT_EQ(results[i].metrics.retransmits_total, 0u);
  }
}

TEST(Experiment, MetricsAggregateAcrossConnections) {
  workload::WebWorkload pop;
  ArmResult r = run_arm(pop, ArmConfig::prr_arm(), small_run(100));
  EXPECT_EQ(r.connections_run, 100u);
  EXPECT_EQ(r.metrics.connections, 100u);
  EXPECT_GT(r.metrics.data_segments_sent, 100u);
  EXPECT_GT(r.total_network_transmit_time, sim::Time::zero());
  EXPECT_LE(r.total_loss_recovery_time, r.total_network_transmit_time);
}

TEST(Experiment, ArmConfigFactories) {
  EXPECT_EQ(ArmConfig::prr_arm().recovery, tcp::RecoveryKind::kPrr);
  EXPECT_EQ(ArmConfig::linux_arm().recovery,
            tcp::RecoveryKind::kLinuxRateHalving);
  EXPECT_EQ(ArmConfig::rfc3517_arm().recovery,
            tcp::RecoveryKind::kRfc3517);
  EXPECT_EQ(ArmConfig::prr_arm().cc, tcp::CcKind::kCubic);  // paper §5
}

TEST(Experiment, FractionHelpersBounded) {
  workload::WebWorkload pop;
  ArmResult r = run_arm(pop, ArmConfig::prr_arm(), small_run(200));
  EXPECT_GE(r.retransmission_rate(), 0.0);
  EXPECT_LE(r.retransmission_rate(), 1.0);
  EXPECT_GE(r.fraction_time_in_loss_recovery(), 0.0);
  EXPECT_LE(r.fraction_time_in_loss_recovery(), 1.0);
  EXPECT_GE(r.fraction_bytes_in_fast_recovery(), 0.0);
  EXPECT_LE(r.fraction_bytes_in_fast_recovery(), 1.0);
}

}  // namespace
}  // namespace prr::exp
