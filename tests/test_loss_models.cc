#include "net/loss_model.h"

#include <gtest/gtest.h>

#include "net/reorder_model.h"

namespace prr::net {
namespace {

Segment seg(bool retx = false) {
  Segment s;
  s.len = 1000;
  s.is_retransmit = retx;
  return s;
}

TEST(NoLoss, NeverDrops) {
  NoLoss m;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.should_drop(seg()));
}

TEST(BernoulliLoss, ApproximatesRate) {
  BernoulliLoss m(0.1, sim::Rng(3));
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) drops += m.should_drop(seg());
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
}

TEST(BernoulliLoss, ZeroAndOne) {
  BernoulliLoss never(0.0, sim::Rng(3));
  BernoulliLoss always(1.0, sim::Rng(3));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.should_drop(seg()));
    EXPECT_TRUE(always.should_drop(seg()));
  }
}

TEST(GilbertElliott, CleanWhenNeverEnteringBad) {
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 0.0;
  GilbertElliottLoss m(p, sim::Rng(3));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.should_drop(seg()));
}

TEST(GilbertElliott, LossRateMatchesStationaryDistribution) {
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.33;
  p.loss_in_bad = 0.9;
  GilbertElliottLoss m(p, sim::Rng(5));
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) drops += m.should_drop(seg());
  // Stationary P(bad) = pgb/(pgb+pbg) = 0.01/0.34 = 0.0294; rate ~2.65%.
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.0265, 0.005);
}

TEST(GilbertElliott, DropsComeInBursts) {
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.33;
  p.loss_in_bad = 1.0;
  GilbertElliottLoss m(p, sim::Rng(5));
  // Count runs of consecutive drops; mean run should be ~3.
  int runs = 0, dropped = 0;
  bool prev = false;
  for (int i = 0; i < 200000; ++i) {
    const bool d = m.should_drop(seg());
    dropped += d;
    if (d && !prev) ++runs;
    prev = d;
  }
  ASSERT_GT(runs, 0);
  const double mean_burst = static_cast<double>(dropped) / runs;
  EXPECT_GT(mean_burst, 2.0);
  EXPECT_LT(mean_burst, 4.5);
}

TEST(DeterministicLoss, DropsListedOriginals) {
  DeterministicLoss m({1, 3}, {});
  EXPECT_TRUE(m.should_drop(seg()));    // original #1
  EXPECT_FALSE(m.should_drop(seg()));   // #2
  EXPECT_TRUE(m.should_drop(seg()));    // #3
  EXPECT_FALSE(m.should_drop(seg()));   // #4
  EXPECT_EQ(m.originals_seen(), 4u);
}

TEST(DeterministicLoss, RetransmitsCountedSeparately) {
  DeterministicLoss m({1}, {2});
  EXPECT_TRUE(m.should_drop(seg()));          // original #1 dropped
  EXPECT_FALSE(m.should_drop(seg(true)));     // retransmit #1 passes
  EXPECT_TRUE(m.should_drop(seg(true)));      // retransmit #2 dropped
  EXPECT_FALSE(m.should_drop(seg()));         // original #2 passes
}

TEST(CompositeLoss, DropsIfAnyChildDrops) {
  CompositeLoss c;
  c.add(std::make_unique<DeterministicLoss>(std::set<uint64_t>{2}));
  c.add(std::make_unique<DeterministicLoss>(std::set<uint64_t>{3}));
  EXPECT_FALSE(c.should_drop(seg()));  // #1
  EXPECT_TRUE(c.should_drop(seg()));   // #2 (first child)
  EXPECT_TRUE(c.should_drop(seg()));   // #3 (second child)
  EXPECT_FALSE(c.should_drop(seg()));  // #4
}

TEST(OutageLoss, DropsEverythingDuringOutageWindows) {
  sim::Simulator sim;
  OutageLoss::Params p;
  p.mean_time_between = sim::Time::seconds(10);
  p.mean_duration = sim::Time::seconds(1);
  OutageLoss m(sim, p, sim::Rng(3));
  int dropped = 0, passed = 0;
  int drop_runs = 0;
  bool prev_drop = false;
  // Probe the model every 100 ms of simulated time for 10 minutes.
  for (int i = 0; i < 6000; ++i) {
    sim.schedule_in(sim::Time::milliseconds(100), [] {});
    sim.run(sim.now() + sim::Time::milliseconds(100));
    const bool d = m.should_drop(seg());
    dropped += d;
    passed += !d;
    if (d && !prev_drop) ++drop_runs;
    prev_drop = d;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(passed, dropped);  // outages are the exception
  // Outage fraction ~ duration/(gap+duration) = 1/11 ~ 9%.
  const double frac = static_cast<double>(dropped) / 6000.0;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.25);
  // Drops are clustered into distinct outage windows, not scattered.
  EXPECT_GT(drop_runs, 5);
  EXPECT_LT(drop_runs, dropped / 2 + 1);
}

TEST(OutageLoss, ConsecutiveSegmentsInOutageAllDrop) {
  sim::Simulator sim;
  OutageLoss::Params p;
  p.mean_time_between = sim::Time::milliseconds(1);  // outage ~immediately
  p.mean_duration = sim::Time::seconds(3600);        // effectively forever
  OutageLoss m(sim, p, sim::Rng(5));
  sim.schedule_in(sim::Time::seconds(1), [] {});
  sim.run(sim.now() + sim::Time::seconds(1));
  int dropped = 0;
  for (int i = 0; i < 50; ++i) dropped += m.should_drop(seg());
  EXPECT_GE(dropped, 49);  // once dark, everything drops
}

TEST(RandomReorder, ZeroProbabilityNeverDelays) {
  RandomReorder r(0.0, sim::Time::milliseconds(1), sim::Time::milliseconds(5),
                  sim::Rng(3));
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(r.extra_delay(seg()).is_zero());
}

TEST(RandomReorder, DelaysWithinBounds) {
  RandomReorder r(1.0, sim::Time::milliseconds(1), sim::Time::milliseconds(5),
                  sim::Rng(3));
  for (int i = 0; i < 500; ++i) {
    const auto d = r.extra_delay(seg());
    EXPECT_GE(d, sim::Time::milliseconds(1));
    EXPECT_LE(d, sim::Time::milliseconds(5));
  }
}

}  // namespace
}  // namespace prr::net
