// Serial before/after digest guard for the allocation-free hot-path
// rework: exhaustive fingerprints of the aggregates behind the paper's
// table/figure benches (web three-arm sweep, YouTube bulk arms, and an
// invariant-checked run), computed serially with fixed seeds. The golden
// constants were captured on the tree immediately before the event-queue
// slot-map / inline-callback / zero-copy-segment refactor; any change in
// event ordering, RNG draw sequence, or per-ACK arithmetic shows up as a
// digest mismatch. The parallel analogue (thread-count invariance) lives
// in test_parallel_experiment.cc and bench_sweep_scaling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/experiment.h"
#include "workload/video_workload.h"
#include "workload/web_workload.h"

namespace prr {
namespace {

class Fnv {
 public:
  void mix(uint64_t v) {
    h_ ^= v;
    h_ *= 1099511628211ull;
  }
  void mix_time(sim::Time t) { mix(static_cast<uint64_t>(t.ns())); }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;
};

uint64_t fingerprint(const std::vector<exp::ArmResult>& results) {
  Fnv f;
  for (const auto& r : results) {
    const tcp::Metrics& m = r.metrics;
    // Every counter the tables consume.
    f.mix(m.data_segments_sent);
    f.mix(m.bytes_sent);
    f.mix(m.retransmits_total);
    f.mix(m.fast_retransmits);
    f.mix(m.timeout_retransmits);
    f.mix(m.slow_start_retransmits);
    f.mix(m.failed_retransmits);
    f.mix(m.timeouts_total);
    f.mix(m.timeouts_in_open);
    f.mix(m.timeouts_in_disorder);
    f.mix(m.timeouts_in_recovery);
    f.mix(m.timeouts_exp_backoff);
    f.mix(m.fast_recovery_events);
    f.mix(m.dsacks_received);
    f.mix(m.recoveries_with_dsack);
    f.mix(m.lost_retransmits_detected);
    f.mix(m.lost_fast_retransmits);
    f.mix(m.undo_events);
    f.mix(m.spurious_retransmits);
    f.mix(m.spurious_rto_undone);
    f.mix(m.tlp_probes_sent);
    f.mix(m.er_triggered);
    f.mix(m.er_delayed_cancelled);
    f.mix(m.er_spurious);
    f.mix(m.connections);
    f.mix(m.connections_aborted);
    // The full per-response latency sequence (ns-exact).
    for (const auto& resp : r.latency.responses()) {
      f.mix(resp.bytes);
      f.mix_time(resp.first_byte_sent);
      f.mix_time(resp.last_byte_acked);
      f.mix(resp.had_retransmit ? 1 : 0);
      f.mix(resp.completed ? 1 : 0);
    }
    // The full per-recovery-event sequence.
    for (const auto& ev : r.recovery_log.events()) {
      f.mix_time(ev.start);
      f.mix_time(ev.end);
      f.mix(ev.pipe_at_start);
      f.mix(ev.ssthresh);
      f.mix(ev.cwnd_at_start);
      f.mix(ev.cwnd_at_exit);
      f.mix(ev.cwnd_after_exit);
      f.mix(ev.pipe_at_exit);
      f.mix(ev.retransmits);
      f.mix(ev.bytes_sent_during);
      f.mix(ev.max_burst_segments);
      f.mix(ev.interrupted_by_timeout ? 1 : 0);
      f.mix(ev.completed ? 1 : 0);
      f.mix(ev.slow_start_after ? 1 : 0);
    }
    f.mix_time(r.total_network_transmit_time);
    f.mix_time(r.total_loss_recovery_time);
    f.mix(r.connections_run);
    f.mix(r.total_workload_bytes);
    f.mix(static_cast<uint64_t>(r.quarantined.size()));
    f.mix(r.invariant_violations);
  }
  return f.value();
}

// Captured from the pre-refactor tree (see file comment). Regenerate
// only for an intentional behaviour change, never for a perf-only PR.
constexpr uint64_t kWebThreeArmGolden = 0x3a2286faaebd8028ull;
constexpr uint64_t kVideoBulkGolden = 0x3cda8a2b0518216cull;
constexpr uint64_t kInvariantCheckedGolden = 0x56fe9feb76384d91ull;

TEST(SerialDigest, WebThreeArmSweepBitIdentical) {
  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 300;
  opts.seed = 20110501;
  opts.threads = 1;
  const auto results = exp::run_arms(
      pop,
      {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
       exp::ArmConfig::prr_arm()},
      opts);
  EXPECT_EQ(fingerprint(results), kWebThreeArmGolden)
      << "actual 0x" << std::hex << fingerprint(results);
}

TEST(SerialDigest, VideoBulkArmsBitIdentical) {
  workload::VideoWorkload pop;
  exp::RunOptions opts;
  opts.connections = 40;
  opts.seed = 915;
  opts.threads = 1;
  const auto results = exp::run_arms(
      pop, {exp::ArmConfig::prr_arm(), exp::ArmConfig::linux_arm()}, opts);
  EXPECT_EQ(fingerprint(results), kVideoBulkGolden)
      << "actual 0x" << std::hex << fingerprint(results);
}

TEST(SerialDigest, InvariantCheckedRunBitIdentical) {
  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 150;
  opts.seed = 7;
  opts.threads = 1;
  opts.check_invariants = true;
  const auto results =
      exp::run_arms(pop, {exp::ArmConfig::prr_arm()}, opts);
  EXPECT_EQ(results[0].quarantined.size(), 0u);
  EXPECT_EQ(fingerprint(results), kInvariantCheckedGolden)
      << "actual 0x" << std::hex << fingerprint(results);
}

}  // namespace
}  // namespace prr
