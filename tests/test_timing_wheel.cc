// Differential and edge-case coverage for the timing-wheel scheduler
// backend and batch delivery (DESIGN.md §12). The load-bearing property
// everywhere: the wheel pops in the identical strict total order
// (time, seq) as the 4-ary heap, and batch delivery dispatches the
// identical callbacks at the identical clock values as per-event mode —
// so every test drives two (or four) configurations through the same
// script and asserts the observation logs are byte-identical.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/link.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace prr {
namespace {

using sim::EventId;
using sim::EventQueue;
using sim::SchedulerBackend;
using sim::Time;

// One dispatched event as observed by a test: its fire time and a label
// identifying which scheduled callback fired.
struct Obs {
  int64_t at_ns;
  int label;
  bool operator==(const Obs&) const = default;
};

// ---------------------------------------------------------------------
// Randomized differential trace: schedule/cancel/reschedule/run decided
// by a deterministic RNG, replayed against both backends; pop order must
// match event for event.
// ---------------------------------------------------------------------

// Tiny deterministic generator (xorshift*) so the trace is identical
// across runs and platforms.
class TraceRng {
 public:
  explicit TraceRng(uint64_t seed) : s_(seed | 1) {}
  uint64_t next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 0x2545F4914F6CDD1DULL;
  }
  uint64_t below(uint64_t n) { return next() % n; }

 private:
  uint64_t s_;
};

std::vector<Obs> run_random_trace(SchedulerBackend backend, uint64_t seed) {
  EventQueue q;
  q.set_backend(backend);
  std::vector<Obs> log;
  std::vector<EventId> ids;  // includes stale ids on purpose
  // Pre-drawn seqs awaiting materialization (mirrors batch delivery's
  // deferred timer rearms / train re-homing, which schedule_with_seq a
  // seq drawn earlier — i.e. out of global seq order).
  std::vector<uint64_t> stashed;
  TraceRng rng(seed);
  int label = 0;
  int64_t now = 0;

  for (int step = 0; step < 4000; ++step) {
    const uint64_t op = rng.below(100);
    if (op < 8) {
      // Pre-draw a seq now; a later iteration materializes it. Between
      // draw and materialization other schedules take higher seqs, so
      // the eventual insert arrives in decreasing-seq order — the exact
      // pattern that once exposed an unsorted wheel slot.
      stashed.push_back(q.take_seq());
    } else if (op < 16 && !stashed.empty()) {
      static constexpr int64_t kLateDelays[] = {0, 0, 1, 63, 1000,
                                                1'000'000};
      const int64_t delay = kLateDelays[rng.below(std::size(kLateDelays))];
      const uint64_t seq = stashed.back();
      stashed.pop_back();
      const int this_label = label++;
      ids.push_back(q.schedule_with_seq(
          Time::nanoseconds(now + delay), seq,
          [&log, this_label] { log.push_back(Obs{0, this_label}); }));
    } else if (op < 45 || q.empty()) {
      // Schedule at now + a delay spanning every wheel level: mostly
      // near (same slot / level 0-1), sometimes far (overflow cascade),
      // often ties (delay 0 or a repeated small delay).
      static constexpr int64_t kDelays[] = {
          0, 0, 1, 1, 7, 63, 64, 65, 1000, 1000, 4095, 4096,
          1'000'000, 262'144, 1'000'000'000, 40'000'000'000,
          (int64_t{1} << 40), (int64_t{1} << 55)};
      const int64_t delay = kDelays[rng.below(std::size(kDelays))];
      const int this_label = label++;
      ids.push_back(q.schedule(Time::nanoseconds(now + delay),
                               [&log, &q, this_label] {
                                 // Fire time is read back via run_next's
                                 // return value by the caller loop.
                                 log.push_back(Obs{0, this_label});
                                 (void)q;
                               }));
    } else if (op < 60 && !ids.empty()) {
      // Cancel a random (possibly stale) id: must be a true no-op when
      // stale on both backends.
      q.cancel(ids[rng.below(ids.size())]);
    } else if (op < 75 && !ids.empty()) {
      // Reschedule a random (possibly stale) id across levels.
      const uint64_t pick = rng.below(ids.size());
      const int64_t delay =
          static_cast<int64_t>(rng.below(2) ? rng.below(128)
                                            : rng.below(1) + (1ULL << 45));
      const EventId nid =
          q.reschedule(ids[pick], Time::nanoseconds(now + delay));
      if (nid != sim::kInvalidEventId) ids[pick] = nid;
    } else if (!q.empty()) {
      const Time at = q.run_next();
      now = at.ns();
      EXPECT_FALSE(log.empty());
      if (log.empty()) return log;
      log.back().at_ns = at.ns();  // stamp the fire time onto the record
    }
  }
  while (!q.empty()) {
    const Time at = q.run_next();
    now = at.ns();
    log.back().at_ns = at.ns();
  }
  return log;
}

TEST(TimingWheelDifferential, RandomTracesMatchHeapPopOrder) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 20110501ULL, 0xDEADBEEFULL}) {
    const std::vector<Obs> heap =
        run_random_trace(SchedulerBackend::kHeap, seed);
    const std::vector<Obs> wheel =
        run_random_trace(SchedulerBackend::kWheel, seed);
    ASSERT_EQ(heap.size(), wheel.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      ASSERT_EQ(heap[i], wheel[i]) << "seed " << seed << " event " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Edge cases, each cross-checked heap-vs-wheel.
// ---------------------------------------------------------------------

// Same-timestamp events whose scheduling spans wheel windows: events at
// one absolute time scheduled before and after the cursor has moved
// (some land at level 0, some arrive via an overflow cascade) must still
// fire in scheduling (seq) order.
std::vector<Obs> same_time_fifo(SchedulerBackend backend) {
  EventQueue q;
  q.set_backend(backend);
  std::vector<Obs> log;
  auto note = [&log, &q](int label) {
    log.push_back(Obs{0, label});
  };
  const int64_t t = (int64_t{1} << 30) + 12345;  // crosses several digits
  // Scheduled far from the target time: homes at a high level.
  q.schedule(Time::nanoseconds(t), [&note] { note(0); });
  q.schedule(Time::nanoseconds(t), [&note] { note(1); });
  // An earlier event whose firing advances the cursor close to t, so the
  // remaining same-time schedules home at low levels.
  q.schedule(Time::nanoseconds(t - 64), [&note, &q, t] {
    q.schedule(Time::nanoseconds(t), [&note] { note(2); });
    q.schedule(Time::nanoseconds(t), [&note] { note(3); });
  });
  while (!q.empty()) {
    const Time at = q.run_next();
    if (!log.empty() && log.back().at_ns == 0) log.back().at_ns = at.ns();
  }
  return log;
}

TEST(TimingWheelEdge, SameTimestampFifoAcrossWindows) {
  const auto heap = same_time_fifo(SchedulerBackend::kHeap);
  const auto wheel = same_time_fifo(SchedulerBackend::kWheel);
  ASSERT_EQ(heap, wheel);
  // And the order is the scheduling order, explicitly.
  std::vector<int> labels;
  for (const Obs& o : wheel) labels.push_back(o.label);
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 2, 3}));
}

// Overflow cascade: far-future events across many levels, including two
// in the same overflow slot that must separate correctly on cascade.
std::vector<Obs> overflow_cascade(SchedulerBackend backend) {
  EventQueue q;
  q.set_backend(backend);
  std::vector<Obs> log;
  int label = 0;
  static constexpr int64_t kTimes[] = {
      5,
      (int64_t{1} << 20) + 3,
      (int64_t{1} << 20) + 3,  // tie in an overflow slot
      (int64_t{1} << 20) + 4,  // same overflow slot, later tick
      (int64_t{1} << 44) + 17,
      (int64_t{1} << 59) + 1,
  };
  for (const int64_t t : kTimes) {
    const int l = label++;
    q.schedule(Time::nanoseconds(t), [&log, l] { log.push_back({0, l}); });
  }
  while (!q.empty()) {
    const Time at = q.run_next();
    log.back().at_ns = at.ns();
  }
  return log;
}

TEST(TimingWheelEdge, OverflowLevelCascade) {
  EXPECT_EQ(overflow_cascade(SchedulerBackend::kHeap),
            overflow_cascade(SchedulerBackend::kWheel));
}

// Reschedule across wheel levels, both directions: far -> near (the
// entry's old home is an overflow level, its new home level 0) and
// near -> far, plus a reschedule landing exactly on another event's
// timestamp (the rescheduled event re-sequences behind it).
std::vector<Obs> reschedule_across_levels(SchedulerBackend backend) {
  EventQueue q;
  q.set_backend(backend);
  std::vector<Obs> log;
  auto ev = [&log](int label) {
    return [&log, label] { log.push_back({0, label}); };
  };
  EventId far = q.schedule(Time::nanoseconds(int64_t{1} << 50), ev(0));
  EventId near = q.schedule(Time::nanoseconds(100), ev(1));
  q.schedule(Time::nanoseconds(200), ev(2));
  // far -> near: now fires between the two near events.
  far = q.reschedule(far, Time::nanoseconds(150));
  EXPECT_NE(far, sim::kInvalidEventId);
  // near -> far: label 1 now fires last.
  near = q.reschedule(near, Time::nanoseconds(int64_t{1} << 48));
  EXPECT_NE(near, sim::kInvalidEventId);
  // Onto an occupied timestamp: re-sequenced behind label 2.
  far = q.reschedule(far, Time::nanoseconds(200));
  EXPECT_NE(far, sim::kInvalidEventId);
  while (!q.empty()) {
    const Time at = q.run_next();
    log.back().at_ns = at.ns();
  }
  return log;
}

TEST(TimingWheelEdge, RescheduleAcrossLevels) {
  const auto heap = reschedule_across_levels(SchedulerBackend::kHeap);
  const auto wheel = reschedule_across_levels(SchedulerBackend::kWheel);
  ASSERT_EQ(heap, wheel);
  std::vector<int> labels;
  for (const Obs& o : wheel) labels.push_back(o.label);
  EXPECT_EQ(labels, (std::vector<int>{2, 0, 1}));
}

// ---------------------------------------------------------------------
// Link-level batch delivery: the four (scheduler x delivery) combos must
// produce the identical delivery log — (now(), payload id) per segment —
// for an ACK train, including a cancel landing inside a draining batch
// and a path reconfiguration landing mid-train.
// ---------------------------------------------------------------------

net::Segment make_seg(uint64_t id) {
  net::Segment s;
  s.seq = id;
  s.len = 100;
  return s;
}

struct SimConfig {
  SchedulerBackend backend;
  bool batch;
};

const SimConfig kAllCombos[] = {
    {SchedulerBackend::kHeap, false},
    {SchedulerBackend::kHeap, true},
    {SchedulerBackend::kWheel, false},
    {SchedulerBackend::kWheel, true},
};

// Sends a burst of segments (which serialize back-to-back into a
// contiguous propagation train) and records each delivery.
std::vector<Obs> link_train(const SimConfig& cfg) {
  sim::Simulator sim;
  sim.set_scheduler(cfg.backend);
  sim.set_batch_delivery(cfg.batch);
  std::vector<Obs> log;
  net::Link::Config lc;
  lc.rate = util::DataRate::mbps(100);
  lc.propagation_delay = Time::milliseconds(5);
  net::Link link(sim, lc, [&](net::Segment&& seg) {
    log.push_back(Obs{sim.now().ns(), static_cast<int>(seg.seq)});
  });
  for (uint64_t i = 0; i < 16; ++i) link.send(make_seg(i));
  sim.run();
  return log;
}

TEST(BatchDelivery, AckTrainIdenticalAcrossCombos) {
  const auto want = link_train(kAllCombos[0]);
  EXPECT_EQ(want.size(), 16u);
  for (const SimConfig& cfg : kAllCombos) {
    EXPECT_EQ(link_train(cfg), want)
        << "backend=" << static_cast<int>(cfg.backend)
        << " batch=" << cfg.batch;
  }
}

// A timer event cancelled by a delivery inside a draining batch: the
// cancel must take effect identically whether the canceller ran from a
// batched inline dispatch or its own queue event.
std::vector<Obs> cancel_inside_batch(const SimConfig& cfg) {
  sim::Simulator sim;
  sim.set_scheduler(cfg.backend);
  sim.set_batch_delivery(cfg.batch);
  std::vector<Obs> log;
  net::Link::Config lc;
  lc.rate = util::DataRate::mbps(100);
  lc.propagation_delay = Time::milliseconds(5);
  // A timer armed between the train's delivery timestamps; delivery #3
  // stops it, so it must never fire — and one armed after the train that
  // must still fire.
  sim::Timer victim(sim, [&] { log.push_back({sim.now().ns(), -1}); });
  sim::Timer survivor(sim, [&] { log.push_back({sim.now().ns(), -2}); });
  net::Link link(sim, lc, [&](net::Segment&& seg) {
    log.push_back(Obs{sim.now().ns(), static_cast<int>(seg.seq)});
    if (seg.seq == 3) victim.stop();
  });
  for (uint64_t i = 0; i < 8; ++i) link.send(make_seg(i));
  // The victim expires between delivery 5 and 6 (inside the batch); the
  // survivor a millisecond after the train.
  victim.start(Time::milliseconds(5) + Time::microseconds(45));
  survivor.start(Time::milliseconds(7));
  sim.run();
  return log;
}

TEST(BatchDelivery, CancelInsideDrainingBatch) {
  const auto want = cancel_inside_batch(kAllCombos[0]);
  // The victim must not appear; the survivor must.
  for (const Obs& o : want) EXPECT_NE(o.label, -1);
  EXPECT_TRUE(std::any_of(want.begin(), want.end(),
                          [](const Obs& o) { return o.label == -2; }));
  for (const SimConfig& cfg : kAllCombos) {
    EXPECT_EQ(cancel_inside_batch(cfg), want)
        << "backend=" << static_cast<int>(cfg.backend)
        << " batch=" << cfg.batch;
  }
}

// Link reconfiguration (bandwidth + propagation delay fault) landing
// mid-train: the rate change applies from the next serialization, the
// delay shrink makes later segments overtake earlier ones (route
// change), and every combo must agree on the resulting delivery order.
std::vector<Obs> reconfig_mid_train(const SimConfig& cfg) {
  sim::Simulator sim;
  sim.set_scheduler(cfg.backend);
  sim.set_batch_delivery(cfg.batch);
  std::vector<Obs> log;
  net::Link::Config lc;
  lc.rate = util::DataRate::mbps(50);
  lc.propagation_delay = Time::milliseconds(10);
  net::Link link(sim, lc, [&](net::Segment&& seg) {
    log.push_back(Obs{sim.now().ns(), static_cast<int>(seg.seq)});
  });
  for (uint64_t i = 0; i < 12; ++i) link.send(make_seg(i));
  // Mid-train fault: bandwidth drops, propagation delay shrinks to a
  // tenth — segments serialized after this overtake ones still
  // propagating under the old delay.
  sim.schedule_in(Time::microseconds(100), [&] {
    link.set_rate(util::DataRate::mbps(10));
    link.set_propagation_delay(Time::milliseconds(1));
  });
  sim.run();
  return log;
}

TEST(BatchDelivery, LinkReconfigLandsMidTrain) {
  const auto want = reconfig_mid_train(kAllCombos[0]);
  EXPECT_EQ(want.size(), 12u);
  // The shrink must actually reorder deliveries, or the test tests
  // nothing: some later-sent segment arrives before an earlier one.
  bool reordered = false;
  for (std::size_t i = 1; i < want.size(); ++i) {
    if (want[i].label < want[i - 1].label) reordered = true;
  }
  EXPECT_TRUE(reordered);
  for (const SimConfig& cfg : kAllCombos) {
    EXPECT_EQ(reconfig_mid_train(cfg), want)
        << "backend=" << static_cast<int>(cfg.backend)
        << " batch=" << cfg.batch;
  }
}

// Coalesced timer rearms (the sender's per-ACK RTO pattern): a timer
// re-armed on every delivery of a train must fire at exactly the
// per-event expiry in every combo, and pending()/expiry() must read
// identically while deferred.
std::vector<Obs> coalesced_rearm(const SimConfig& cfg) {
  sim::Simulator sim;
  sim.set_scheduler(cfg.backend);
  sim.set_batch_delivery(cfg.batch);
  std::vector<Obs> log;
  net::Link::Config lc;
  lc.rate = util::DataRate::mbps(100);
  lc.propagation_delay = Time::milliseconds(2);
  sim::Timer rto(sim, [&] { log.push_back({sim.now().ns(), -100}); });
  net::Link link(sim, lc, [&](net::Segment&& seg) {
    log.push_back(Obs{sim.now().ns(), static_cast<int>(seg.seq)});
    rto.start_coalesced(Time::milliseconds(3));
    EXPECT_TRUE(rto.pending());
    EXPECT_EQ(rto.expiry(), sim.now() + Time::milliseconds(3));
  });
  for (uint64_t i = 0; i < 10; ++i) link.send(make_seg(i));
  sim.run();
  return log;
}

TEST(BatchDelivery, CoalescedRearmFiresAtPerEventExpiry) {
  const auto want = coalesced_rearm(kAllCombos[0]);
  // Exactly one RTO firing, after the last delivery.
  EXPECT_EQ(want.back().label, -100);
  EXPECT_EQ(std::count_if(want.begin(), want.end(),
                          [](const Obs& o) { return o.label == -100; }),
            1);
  for (const SimConfig& cfg : kAllCombos) {
    EXPECT_EQ(coalesced_rearm(cfg), want)
        << "backend=" << static_cast<int>(cfg.backend)
        << " batch=" << cfg.batch;
  }
}

}  // namespace
}  // namespace prr
