#include "tcp/scoreboard.h"

#include <gtest/gtest.h>

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

net::Segment make_ack(uint64_t cum, std::vector<net::SackBlock> sacks = {},
                      std::optional<net::SackBlock> dsack = std::nullopt) {
  net::Segment a;
  a.is_ack = true;
  a.ack = cum;
  a.sacks.assign(sacks.begin(), sacks.end());
  a.dsack = dsack;
  return a;
}

class ScoreboardTest : public ::testing::Test {
 protected:
  ScoreboardTest() : sb(kMss) { sb.reset(0); }

  // Transmits n MSS segments starting at snd.una.
  void send_n(int n, sim::Time at = 0_ms) {
    for (int i = 0; i < n; ++i) {
      sb.on_transmit(next_, next_ + kMss, at);
      next_ += kMss;
    }
  }

  Scoreboard sb;
  uint64_t next_ = 0;
};

TEST_F(ScoreboardTest, PipeEqualsFlightWithNoLoss) {
  send_n(10);
  EXPECT_EQ(sb.pipe(), 10 * kMss);
}

TEST_F(ScoreboardTest, CumulativeAckPopsRecords) {
  send_n(10);
  auto out = sb.on_ack(make_ack(3000), 50_ms, true);
  EXPECT_TRUE(out.una_advanced);
  EXPECT_EQ(out.newly_acked_bytes, 3000u);
  EXPECT_EQ(sb.snd_una(), 3000u);
  EXPECT_EQ(sb.pipe(), 7 * kMss);
}

TEST_F(ScoreboardTest, SackReducesPipeAndCountsDelivered) {
  send_n(10);
  auto out = sb.on_ack(make_ack(0, {{4000, 5000}}), 50_ms, true);
  EXPECT_FALSE(out.una_advanced);
  EXPECT_EQ(out.newly_sacked_bytes, kMss);
  EXPECT_EQ(out.delivered_bytes(), kMss);
  EXPECT_EQ(sb.pipe(), 9 * kMss);
  EXPECT_EQ(sb.highest_sacked_end(), 5000u);
  EXPECT_EQ(sb.sacked_segment_count(), 1);
}

TEST_F(ScoreboardTest, DuplicateSackNotCountedTwice) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 50_ms, true);
  auto out = sb.on_ack(make_ack(0, {{4000, 5000}}), 51_ms, true);
  EXPECT_EQ(out.newly_sacked_bytes, 0u);
}

TEST_F(ScoreboardTest, DeliveredDataDoesNotDoubleCountSackedOnCumAck) {
  send_n(10);
  sb.on_ack(make_ack(0, {{1000, 3000}}), 50_ms, true);
  // Cum ack covers the sacked range: only the unsacked byte ranges count.
  auto out = sb.on_ack(make_ack(3000), 60_ms, true);
  EXPECT_EQ(out.newly_acked_bytes, 1000u);  // bytes 0-1000 only
  EXPECT_EQ(out.delivered_bytes(), 1000u);
}

TEST_F(ScoreboardTest, DeliveredDataSumEqualsForwardProgress) {
  // The paper's invariant: sum of DeliveredData == total forward progress,
  // however ACKs are split between SACK and cumulative advances.
  send_n(10);
  uint64_t delivered = 0;
  delivered += sb.on_ack(make_ack(0, {{2000, 4000}}), 1_ms, true)
                   .delivered_bytes();
  delivered += sb.on_ack(make_ack(1000, {{2000, 5000}}), 2_ms, true)
                   .delivered_bytes();
  delivered += sb.on_ack(make_ack(6000), 3_ms, true).delivered_bytes();
  delivered += sb.on_ack(make_ack(10000), 4_ms, true).delivered_bytes();
  EXPECT_EQ(delivered, 10 * kMss);
}

TEST_F(ScoreboardTest, FackMarksDeepHolesLost) {
  send_n(10);
  // SACK seg 5 (4000-5000): holes more than dupthresh segments below the
  // SACK frontier are lost (starts 0 and 1000: 5000 - start > 3000).
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  const int newly = sb.update_loss_marks(3, /*fack=*/true, false);
  EXPECT_EQ(newly, 2);
  EXPECT_TRUE(sb.first_hole_lost());
}

TEST_F(ScoreboardTest, FackMarkingIsProgressive) {
  // Linux tcp_mark_head_lost: with fackets_out segments up to the SACK
  // frontier, the first fackets_out - dupthresh are lost. Each new SACK
  // exposes one more hole.
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, /*in_recovery=*/true);
  EXPECT_EQ(sb.lost_segment_count(), 2);  // fackets 5 - dupthresh 3
  sb.on_ack(make_ack(0, {{4000, 6000}}), 2_ms, true);
  sb.update_loss_marks(3, true, true);
  EXPECT_EQ(sb.lost_segment_count(), 3);
  sb.on_ack(make_ack(0, {{4000, 7000}}), 3_ms, true);
  sb.update_loss_marks(3, true, true);
  EXPECT_EQ(sb.lost_segment_count(), 4);  // all four holes now exposed
}

TEST_F(ScoreboardTest, Rfc6675MarkingNeedsEnoughSackedBytes) {
  send_n(10);
  sb.on_ack(make_ack(0, {{1000, 2000}}), 1_ms, true);
  EXPECT_EQ(sb.update_loss_marks(3, /*fack=*/false, false), 0);
  sb.on_ack(make_ack(0, {{1000, 3000}}), 2_ms, true);
  EXPECT_EQ(sb.update_loss_marks(3, false, false), 0);
  sb.on_ack(make_ack(0, {{1000, 4000}}), 3_ms, true);
  // Now > (3-1)*MSS bytes are SACKed above segment 0.
  EXPECT_EQ(sb.update_loss_marks(3, false, false), 1);
}

TEST_F(ScoreboardTest, PipeCountsRetransmittedLostSegment) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 7000}}), 1_ms, true);
  sb.update_loss_marks(3, true, true);
  const uint64_t pipe_marked = sb.pipe();
  EXPECT_EQ(pipe_marked, (10 - 3 - 4) * kMss);  // 3 sacked + 4 lost excluded
  sb.on_retransmit(0, 2_ms, 10000, true);
  EXPECT_EQ(sb.pipe(), pipe_marked + kMss);  // retransmission is in flight
}

TEST_F(ScoreboardTest, NextRetransmitCandidateIsLowestLost) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, true);
  const SegRecord* c = sb.next_retransmit_candidate();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start, 0u);
  sb.on_retransmit(0, 2_ms, 10000, true);
  c = sb.next_retransmit_candidate();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start, 1000u);
}

TEST_F(ScoreboardTest, LostRetransmitDetectedWhenLaterDataSacked) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, true);
  // Retransmit seg 0 when snd.nxt is 10000; send 2 more new segments.
  sb.on_retransmit(0, 2_ms, 10000, true);
  send_n(2, 3_ms);  // bytes 10000-12000, first sent after the retransmit
  // SACK of data below snd.nxt-at-retransmit proves nothing.
  auto out = sb.on_ack(make_ack(0, {{4000, 6000}}), 10_ms, true);
  EXPECT_EQ(out.lost_retransmits_detected, 0);
  // SACK of the data sent after the retransmission: retransmit was lost.
  out = sb.on_ack(make_ack(0, {{10000, 11000}}), 20_ms, true);
  EXPECT_EQ(out.lost_retransmits_detected, 1);
  EXPECT_EQ(out.lost_fast_retransmits_detected, 1);
  // The segment is eligible for retransmission again and leaves pipe.
  const SegRecord* c = sb.next_retransmit_candidate();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start, 0u);
}

TEST_F(ScoreboardTest, LostRetransmitDetectionCanBeDisabled) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, true);
  sb.on_retransmit(0, 2_ms, 10000, true);
  send_n(1, 3_ms);
  auto out = sb.on_ack(make_ack(0, {{10000, 11000}}), 20_ms, false);
  EXPECT_EQ(out.lost_retransmits_detected, 0);
}

TEST_F(ScoreboardTest, ReorderingDetectedWhenPresumedLostArrives) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, false);  // segs 1-3 marked lost
  // Seg 1 (bytes 0-1000) then arrives via cumulative ACK: reordering.
  auto out = sb.on_ack(make_ack(1000), 5_ms, true);
  EXPECT_GT(out.reorder_distance_segs, 0);
}

TEST_F(ScoreboardTest, ReorderingDetectedWhenPresumedLostSacked) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, false);
  auto out = sb.on_ack(make_ack(0, {{1000, 2000}}), 5_ms, true);
  EXPECT_GT(out.reorder_distance_segs, 0);
}

TEST_F(ScoreboardTest, NoReorderingSignalForRetransmittedSegment) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.update_loss_marks(3, true, false);
  sb.on_retransmit(0, 2_ms, 10000, true);
  // Arrival is explained by the retransmission, not reordering.
  auto out = sb.on_ack(make_ack(1000), 5_ms, true);
  EXPECT_EQ(out.reorder_distance_segs, 0);
}

TEST_F(ScoreboardTest, KarnRttSampleOnlyFromFreshData) {
  send_n(10, 0_ms);
  auto out = sb.on_ack(make_ack(1000), 80_ms, true);
  ASSERT_TRUE(out.rtt_sample.has_value());
  EXPECT_EQ(out.rtt_sample->ms(), 80);

  // A retransmitted segment yields no sample.
  sb.on_ack(make_ack(0 /*noop*/), 81_ms, true);
  sb.update_loss_marks(3, true, true);
  sb.on_retransmit(1000, 90_ms, 10000, true);
  out = sb.on_ack(make_ack(2000), 150_ms, true);
  EXPECT_FALSE(out.rtt_sample.has_value());
}

TEST_F(ScoreboardTest, TimeoutMarksEverythingLost) {
  send_n(10);
  sb.on_ack(make_ack(0, {{4000, 5000}}), 1_ms, true);
  sb.on_timeout_mark_all_lost();
  EXPECT_EQ(sb.lost_segment_count(), 9);  // all but the SACKed one
  EXPECT_EQ(sb.pipe(), 0u);               // nothing considered in flight
}

TEST_F(ScoreboardTest, DsackReportedInOutcome) {
  send_n(4);
  auto out = sb.on_ack(
      make_ack(2000, {}, net::SackBlock{0, 1000}), 5_ms, true);
  EXPECT_TRUE(out.saw_dsack);
  ASSERT_TRUE(out.dsack_block.has_value());
  EXPECT_EQ(out.dsack_block->start, 0u);
}

TEST_F(ScoreboardTest, MarkFirstHoleLost) {
  send_n(5);
  sb.on_ack(make_ack(0, {{2000, 3000}}), 1_ms, true);
  EXPECT_FALSE(sb.first_hole_lost());
  sb.mark_first_hole_lost();
  EXPECT_TRUE(sb.first_hole_lost());
  const SegRecord* c = sb.next_retransmit_candidate();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->start, 0u);
}

TEST_F(ScoreboardTest, TotalSackedBytes) {
  send_n(10);
  sb.on_ack(make_ack(0, {{2000, 4000}, {6000, 7000}}), 1_ms, true);
  EXPECT_EQ(sb.total_sacked_bytes(), 3 * kMss);
}

}  // namespace
}  // namespace prr::tcp
