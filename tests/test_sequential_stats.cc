// Property tests for the always-valid sequential layer
// (stats/sequential.h). The load-bearing claim is the any-time
// guarantee: the scoreboard peeks at the confidence sequence after
// EVERY window, and the false-promotion rate must still be bounded by
// alpha — the exact property a fixed-N test loses under peeking.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"
#include "stats/sequential.h"

using namespace prr;

namespace {

TEST(ConfidenceSequence, AaFalsePromotionRateBoundedByAlpha) {
  // A/A: both arms identical, observations are pure N(0,1) noise. Peek
  // after every observation; count replications where ANY peek rejects.
  constexpr int kReps = 400;
  constexpr int kObs = 400;
  stats::ConfidenceSequence::Config cfg;
  cfg.alpha = 0.05;
  int false_promotions = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Rng rng = sim::Rng(991).fork(static_cast<uint64_t>(rep));
    stats::ConfidenceSequence cs(cfg);
    bool rejected = false;
    for (int i = 0; i < kObs && !rejected; ++i) {
      cs.observe(rng.normal(0.0, 1.0));
      rejected = cs.rejects_zero();  // any-time peeking
    }
    if (rejected) ++false_promotions;
  }
  // E[false promotions] <= kReps * alpha = 20 by Ville's inequality
  // (conservative in practice); 12 is ~2.7 binomial sigmas of slack so
  // the test doesn't flake on its fixed seed family.
  EXPECT_LE(false_promotions, 32)
      << "any-time peeking inflated the false-promotion rate";
}

TEST(ConfidenceSequence, CoversTrueMeanAtEveryPeek) {
  // The CS must cover mu at EVERY n simultaneously with prob >= 1-alpha.
  constexpr int kReps = 200;
  constexpr int kObs = 300;
  constexpr double kMu = 0.3;
  stats::ConfidenceSequence::Config cfg;
  cfg.alpha = 0.05;
  int missed = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Rng rng = sim::Rng(1723).fork(static_cast<uint64_t>(rep));
    stats::ConfidenceSequence cs(cfg);
    bool miss = false;
    for (int i = 0; i < kObs; ++i) {
      cs.observe(rng.normal(kMu, 1.0));
      if (cs.lower() > kMu || cs.upper() < kMu) miss = true;
    }
    if (miss) ++missed;
  }
  // Nominal bound is kReps * alpha = 10; plug-in variance at small n
  // makes the sequence slightly approximate, hence the extra slack.
  EXPECT_LE(missed, 20) << "confidence sequence under-covers";
}

TEST(ConfidenceSequence, DetectsRealEffectAndLocalizesIt) {
  // Power: a genuine -0.5 sigma effect must be detected well within the
  // horizon, with the CS bracketing the true mean at detection time.
  constexpr int kReps = 100;
  constexpr int kObs = 400;
  constexpr double kMu = -0.5;
  int detected = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Rng rng = sim::Rng(37).fork(static_cast<uint64_t>(rep));
    stats::ConfidenceSequence cs;
    for (int i = 0; i < kObs; ++i) {
      cs.observe(rng.normal(kMu, 1.0));
      if (cs.rejects_zero()) break;
    }
    if (cs.rejects_zero()) {
      ++detected;
      EXPECT_LT(cs.upper(), 0.0);  // rejecting zero => CS excludes it
      EXPECT_LE(cs.lower(), kMu + 1e-12);
      EXPECT_GE(cs.upper(), kMu - 1.0);  // not absurdly displaced
    }
  }
  EXPECT_GE(detected, 90) << "mSPRT misses a half-sigma effect";
}

TEST(ConfidenceSequence, AlwaysValidPIsMonotoneNonIncreasing) {
  sim::Rng rng(5);
  stats::ConfidenceSequence cs;
  double prev = 1.0;
  for (int i = 0; i < 500; ++i) {
    cs.observe(rng.normal(0.2, 1.0));
    EXPECT_LE(cs.p_value(), prev + 1e-15);
    EXPECT_GE(cs.p_value(), 0.0);
    EXPECT_LE(cs.p_value(), 1.0);
    prev = cs.p_value();
  }
}

TEST(ConfidenceSequence, UnderpoweredBeforeMinN) {
  // Before min_n the radius is infinite and nothing rejects, no matter
  // how extreme the stream — the variance estimate has no support yet.
  stats::ConfidenceSequence::Config cfg;
  cfg.min_n = 10;
  stats::ConfidenceSequence cs(cfg);
  sim::Rng rng(8);
  for (int i = 0; i < 9; ++i) {
    cs.observe(-50.0 + rng.normal(0.0, 0.1));
    EXPECT_FALSE(cs.rejects_zero());
    EXPECT_TRUE(std::isinf(cs.radius()));
  }
  // ...and shortly after the gate the same stream rejects decisively.
  for (int i = 0; i < 20; ++i) cs.observe(-50.0 + rng.normal(0.0, 0.1));
  EXPECT_TRUE(cs.rejects_zero());
  EXPECT_TRUE(std::isfinite(cs.radius()));
  EXPECT_LT(cs.upper(), 0.0);
}

TEST(ConfidenceSequence, DeterministicReplay) {
  // Same observation stream => identical statistic stream (the service
  // determinism contract leans on this being pure double arithmetic).
  sim::Rng rng_a(77), rng_b(77);
  stats::ConfidenceSequence a, b;
  for (int i = 0; i < 200; ++i) {
    a.observe(rng_a.normal(0.1, 2.0));
    b.observe(rng_b.normal(0.1, 2.0));
    ASSERT_EQ(a.p_value(), b.p_value());
    ASSERT_EQ(a.log_e_value(), b.log_e_value());
    ASSERT_EQ(a.to_json(), b.to_json());
  }
}

}  // namespace
