// Thread-count invariance of the parallel experiment harness: every
// aggregate an ArmResult carries must be byte-identical to the serial
// run at any RunOptions::threads, because each connection's sample path
// derives only from (seed, id) and shards are merged in connection-id
// order. Run under TSan in CI (the determinism argument only holds if
// workers really share nothing).
#include <gtest/gtest.h>

#include <cstring>
#include <type_traits>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

// tcp::Metrics is a flat struct of uint64_t counters (no padding), so
// bytewise equality is exact equality.
::testing::AssertionResult metrics_identical(const tcp::Metrics& a,
                                             const tcp::Metrics& b) {
  static_assert(std::is_trivially_copyable_v<tcp::Metrics>);
  if (std::memcmp(&a, &b, sizeof(tcp::Metrics)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "metrics differ: {" << a.summary() << "} vs {" << b.summary()
         << "}";
}

void expect_identical(const ArmResult& serial, const ArmResult& par,
                      int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_TRUE(metrics_identical(serial.metrics, par.metrics));
  EXPECT_EQ(serial.connections_run, par.connections_run);
  EXPECT_EQ(serial.total_workload_bytes, par.total_workload_bytes);
  EXPECT_EQ(serial.total_network_transmit_time,
            par.total_network_transmit_time);
  EXPECT_EQ(serial.total_loss_recovery_time, par.total_loss_recovery_time);
  EXPECT_EQ(serial.acks_checked, par.acks_checked);
  EXPECT_EQ(serial.invariant_violations, par.invariant_violations);

  // Recovery log: same events in the same (connection-id) order.
  const auto& se = serial.recovery_log.events();
  const auto& pe = par.recovery_log.events();
  ASSERT_EQ(se.size(), pe.size());
  for (std::size_t i = 0; i < se.size(); ++i) {
    SCOPED_TRACE("recovery event " + std::to_string(i));
    EXPECT_EQ(se[i].start, pe[i].start);
    EXPECT_EQ(se[i].end, pe[i].end);
    EXPECT_EQ(se[i].pipe_at_start, pe[i].pipe_at_start);
    EXPECT_EQ(se[i].ssthresh, pe[i].ssthresh);
    EXPECT_EQ(se[i].cwnd_at_start, pe[i].cwnd_at_start);
    EXPECT_EQ(se[i].cwnd_at_exit, pe[i].cwnd_at_exit);
    EXPECT_EQ(se[i].cwnd_after_exit, pe[i].cwnd_after_exit);
    EXPECT_EQ(se[i].pipe_at_exit, pe[i].pipe_at_exit);
    EXPECT_EQ(se[i].retransmits, pe[i].retransmits);
    EXPECT_EQ(se[i].bytes_sent_during, pe[i].bytes_sent_during);
    EXPECT_EQ(se[i].max_burst_segments, pe[i].max_burst_segments);
    EXPECT_EQ(se[i].interrupted_by_timeout, pe[i].interrupted_by_timeout);
    EXPECT_EQ(se[i].completed, pe[i].completed);
    EXPECT_EQ(se[i].slow_start_after, pe[i].slow_start_after);
  }
  // Aggregate views derived from the log.
  EXPECT_DOUBLE_EQ(serial.recovery_log.fraction_start_below_ssthresh(),
                   par.recovery_log.fraction_start_below_ssthresh());
  EXPECT_DOUBLE_EQ(serial.recovery_log.fraction_with_timeout(),
                   par.recovery_log.fraction_with_timeout());

  // Latency: same responses in the same order, and identical quantiles.
  const auto& sr = serial.latency.responses();
  const auto& pr = par.latency.responses();
  ASSERT_EQ(sr.size(), pr.size());
  for (std::size_t i = 0; i < sr.size(); ++i) {
    SCOPED_TRACE("response " + std::to_string(i));
    EXPECT_EQ(sr[i].bytes, pr[i].bytes);
    EXPECT_EQ(sr[i].first_byte_sent, pr[i].first_byte_sent);
    EXPECT_EQ(sr[i].last_byte_acked, pr[i].last_byte_acked);
    EXPECT_EQ(sr[i].had_retransmit, pr[i].had_retransmit);
    EXPECT_EQ(sr[i].completed, pr[i].completed);
  }
  const util::Samples sq = serial.latency.latency_ms();
  const util::Samples pq = par.latency.latency_ms();
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(sq.quantile(q), pq.quantile(q)) << "quantile " << q;
  }

  // Quarantine: same records in the same order.
  ASSERT_EQ(serial.quarantined.size(), par.quarantined.size());
  for (std::size_t i = 0; i < serial.quarantined.size(); ++i) {
    SCOPED_TRACE("quarantine record " + std::to_string(i));
    const QuarantineRecord& s = serial.quarantined[i];
    const QuarantineRecord& p = par.quarantined[i];
    EXPECT_EQ(s.seed, p.seed);
    EXPECT_EQ(s.connection_id, p.connection_id);
    EXPECT_EQ(s.arm_name, p.arm_name);
    EXPECT_EQ(s.scenario, p.scenario);
    EXPECT_EQ(s.fault_summary, p.fault_summary);
    EXPECT_EQ(s.exception, p.exception);
    ASSERT_EQ(s.violations.size(), p.violations.size());
    for (std::size_t v = 0; v < s.violations.size(); ++v) {
      EXPECT_EQ(s.violations[v].kind, p.violations[v].kind);
      EXPECT_EQ(s.violations[v].at, p.violations[v].at);
      EXPECT_EQ(s.violations[v].detail, p.violations[v].detail);
    }
  }
}

TEST(ParallelExperiment, ThreadCountInvariantStationarySweep) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 240;
  opts.seed = 91;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  for (int threads : {1, 4, 8}) {
    opts.threads = threads;
    expect_identical(serial, run_arm(pop, ArmConfig::prr_arm(), opts),
                     threads);
  }
}

TEST(ParallelExperiment, ThreadCountInvariantAcrossArms) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 150;
  opts.seed = 12;
  opts.threads = 1;
  const std::vector<ArmConfig> arms = {
      ArmConfig::prr_arm(), ArmConfig::rfc3517_arm(), ArmConfig::linux_arm()};
  const std::vector<ArmResult> serial = run_arms(pop, arms, opts);
  opts.threads = 4;
  const std::vector<ArmResult> par = run_arms(pop, arms, opts);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].name);
    expect_identical(serial[i], par[i], 4);
  }
}

TEST(ParallelExperiment, ThreadCountInvariantChaosWithInvariantChecking) {
  // The full safety net on a chaotic population: invariant checker
  // attached to every connection, plus one injected violation so the
  // quarantine path itself is exercised across thread counts.
  workload::WebWorkload base;
  ChaosPopulation pop(base, ChaosSpec::everything().profile);
  RunOptions opts;
  opts.connections = 96;
  opts.seed = 7;
  opts.check_invariants = true;
  opts.scenario = "chaos-determinism";
  opts.inject_violation_connection = 41;
  opts.inject_violation_on_ack = 3;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  EXPECT_GT(serial.acks_checked, 0u);
  ASSERT_EQ(serial.quarantined.size(), 1u);  // the injected one
  for (int threads : {4, 8}) {
    opts.threads = threads;
    expect_identical(serial, run_arm(pop, ArmConfig::prr_arm(), opts),
                     threads);
  }
}

TEST(ParallelExperiment, ThreadsZeroMeansHardwareConcurrency) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 64;
  opts.seed = 3;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  opts.threads = 0;
  expect_identical(serial, run_arm(pop, ArmConfig::prr_arm(), opts), 0);
}

TEST(ParallelExperiment, MoreThreadsThanConnections) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 3;
  opts.seed = 5;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  opts.threads = 16;
  expect_identical(serial, run_arm(pop, ArmConfig::prr_arm(), opts), 16);
  EXPECT_EQ(serial.connections_run, 3u);
}

}  // namespace
}  // namespace prr::exp
