// Unit tests for the inline-storage building blocks behind the
// allocation-free hot path: InlineFunction (small-buffer callable),
// InlineVector (inline-then-heap vector), and RingQueue (power-of-two
// ring used by Link's drop-tail queue). Covers the spill boundaries,
// move semantics, and destructor counts the simulator relies on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "util/inline_function.h"
#include "util/inline_vector.h"
#include "util/ring_queue.h"

namespace prr::util {
namespace {

// ---------------------------------------------------------------------
// InlineFunction

TEST(InlineFunction, SmallCallableStoresInline) {
  int hits = 0;
  auto small = [&hits] { ++hits; };
  static_assert(InlineFunction<void(), 48>::stores_inline_v<decltype(small)>);
  InlineFunction<void(), 48> f(small);
  ASSERT_TRUE(f);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, OversizedCallableSpillsToHeapAndStillWorks) {
  // 64 bytes of captured state cannot fit the 48-byte buffer.
  struct Big {
    char pad[64];
  };
  Big big{};
  big.pad[0] = 42;
  int out = 0;
  auto fat = [big, &out] { out = big.pad[0]; };
  static_assert(
      !InlineFunction<void(), 48>::stores_inline_v<decltype(fat)>);
  InlineFunction<void(), 48> f(std::move(fat));
  ASSERT_TRUE(f);
  f();
  EXPECT_EQ(out, 42);
}

TEST(InlineFunction, SpillBoundaryIsExact) {
  struct Fits {
    char pad[48];
    void operator()() const {}
  };
  struct Spills {
    char pad[49];
    void operator()() const {}
  };
  static_assert(InlineFunction<void(), 48>::stores_inline_v<Fits>);
  static_assert(!InlineFunction<void(), 48>::stores_inline_v<Spills>);
  // Both still work.
  InlineFunction<void(), 48> a(Fits{});
  InlineFunction<void(), 48> b(Spills{});
  a();
  b();
}

struct DtorCounter {
  int* count;
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& o) noexcept : count(o.count) { o.count = nullptr; }
  DtorCounter(const DtorCounter& o) = default;
  ~DtorCounter() {
    if (count != nullptr) ++*count;
  }
  void operator()() const {}
};

TEST(InlineFunction, DestroysCapturedStateExactlyOnce) {
  int destroyed = 0;
  {
    InlineFunction<void(), 48> f{DtorCounter(&destroyed)};
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, MoveTransfersStateWithoutDoubleDestroy) {
  int destroyed = 0;
  {
    InlineFunction<void(), 48> f{DtorCounter(&destroyed)};
    InlineFunction<void(), 48> g(std::move(f));
    EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): tested contract
    EXPECT_TRUE(g);
    g();
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  int first = 0, second = 0;
  {
    InlineFunction<void(), 48> f{DtorCounter(&first)};
    f = InlineFunction<void(), 48>(DtorCounter(&second));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
  }
  EXPECT_EQ(second, 1);
}

TEST(InlineFunction, ResetAndNullptrClear) {
  InlineFunction<void(), 48> f([] {});
  ASSERT_TRUE(f);
  f.reset();
  EXPECT_FALSE(f);
  f = [] {};
  ASSERT_TRUE(f);
  f = nullptr;
  EXPECT_FALSE(f);
}

TEST(InlineFunction, ReturnValuesAndArguments) {
  InlineFunction<int(int, int), 48> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

// ---------------------------------------------------------------------
// InlineVector

TEST(InlineVector, StaysInlineUpToCapacity) {
  InlineVector<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(InlineVector, SpillsToHeapPastCapacityAndKeepsContents) {
  InlineVector<int, 4> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  // Keeps growing fine.
  for (int i = 5; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 4950);
}

TEST(InlineVector, MoveOfInlineVectorMovesElements) {
  InlineVector<std::string, 4> v;
  v.push_back("hello");
  v.push_back("world");
  InlineVector<std::string, 4> w(std::move(v));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "hello");
  EXPECT_EQ(w[1], "world");
}

TEST(InlineVector, MoveOfHeapVectorStealsBuffer) {
  InlineVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  ASSERT_FALSE(v.is_inline());
  const int* data_before = v.begin();
  InlineVector<int, 2> w(std::move(v));
  EXPECT_EQ(w.begin(), data_before);  // no element copies
  EXPECT_EQ(w.size(), 10u);
}

struct ElemCounter {
  int* count;
  explicit ElemCounter(int* c) : count(c) {}
  ElemCounter(const ElemCounter& o) = default;
  ElemCounter(ElemCounter&& o) noexcept : count(o.count) {
    o.count = nullptr;
  }
  ElemCounter& operator=(const ElemCounter&) = default;
  ElemCounter& operator=(ElemCounter&& o) noexcept {
    count = o.count;
    o.count = nullptr;
    return *this;
  }
  ~ElemCounter() {
    if (count != nullptr) ++*count;
  }
};

TEST(InlineVector, DestroysEachElementExactlyOnceInline) {
  int destroyed = 0;
  {
    InlineVector<ElemCounter, 4> v;
    v.emplace_back(&destroyed);
    v.emplace_back(&destroyed);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 2);
}

TEST(InlineVector, DestroysEachElementExactlyOnceAfterSpill) {
  int destroyed = 0;
  {
    InlineVector<ElemCounter, 2> v;
    for (int i = 0; i < 6; ++i) v.emplace_back(&destroyed);
    // Growth moved elements; moved-from shells don't count.
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 6);
}

TEST(InlineVector, CopyAndEquality) {
  InlineVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  InlineVector<int, 4> w(v);
  EXPECT_TRUE(v == w);
  w.push_back(3);
  EXPECT_FALSE(v == w);
}

TEST(InlineVector, AssignFromIteratorRange) {
  std::vector<int> src = {7, 8, 9};
  InlineVector<int, 4> v;
  v.push_back(1);
  v.assign(src.begin(), src.end());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[2], 9);
}

// ---------------------------------------------------------------------
// RingQueue

TEST(RingQueue, FifoOrderAcrossWrap) {
  RingQueue<int> q;
  // Interleave pushes/pops so the head walks around the ring.
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) q.push_back(next_push++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(q.pop_front(), next_pop++);
  }
  while (!q.empty()) EXPECT_EQ(q.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, GrowPreservesOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop_front(), i);
  // Head is now offset; force growth from an offset head.
  for (int i = 0; i < 100; ++i) q.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop_front(), i);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, DropBackRemovesNewest) {
  RingQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i);
  q.drop_back();
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop_front(), 0);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.pop_front(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, PopMovesElementOut) {
  RingQueue<std::unique_ptr<int>> q;
  q.push_back(std::make_unique<int>(5));
  std::unique_ptr<int> p = q.pop_front();
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, 5);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace prr::util
