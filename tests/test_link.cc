#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/path.h"

namespace prr::net {
namespace {

using namespace prr::sim::literals;

Segment data_seg(uint64_t seq, uint32_t len) {
  Segment s;
  s.seq = seq;
  s.len = len;
  return s;
}

TEST(Link, DeliveryIsSerializationPlusPropagation) {
  sim::Simulator sim;
  std::vector<sim::Time> arrivals;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 50_ms;
  Link link(sim, cfg, [&](Segment) { arrivals.push_back(sim.now()); });

  // 1040 wire bytes at 1.2 Mbps = 6.933 ms serialization.
  link.send(data_seg(0, 1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0].ms_d(), 6.933 + 50.0, 0.01);
}

TEST(Link, BackToBackSegmentsQueueBehindEachOther) {
  sim::Simulator sim;
  std::vector<sim::Time> arrivals;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 50_ms;
  Link link(sim, cfg, [&](Segment) { arrivals.push_back(sim.now()); });

  for (int i = 0; i < 5; ++i) link.send(data_seg(i * 1000, 1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(arrivals[i].ms_d(), 6.933 * (i + 1) + 50.0, 0.05) << i;
  }
}

TEST(Link, QueueOverflowDropsTail) {
  sim::Simulator sim;
  int delivered = 0;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 1_ms;
  cfg.queue_limit_packets = 3;
  Link link(sim, cfg, [&](Segment) { ++delivered; });

  for (int i = 0; i < 10; ++i) link.send(data_seg(i * 1000, 1000));
  sim.run();
  // 1 in service + 3 queued survive.
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.stats().dropped_queue, 6u);
}

TEST(Link, LossModelDropsAreCounted) {
  sim::Simulator sim;
  int delivered = 0;
  Link::Config cfg;
  Link link(sim, cfg, [&](Segment) { ++delivered; });
  link.set_loss_model(std::make_unique<DeterministicLoss>(
      std::set<uint64_t>{2, 3}));
  for (int i = 0; i < 5; ++i) link.send(data_seg(i * 1000, 1000));
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().dropped_loss_model, 2u);
}

TEST(Link, AckWireSizeIncludesSackOptions) {
  Segment ack;
  ack.is_ack = true;
  EXPECT_EQ(ack.wire_size(), 40u);
  ack.sacks.push_back({0, 1000});
  ack.sacks.push_back({2000, 3000});
  EXPECT_EQ(ack.wire_size(), 40u + 2 + 16);
  ack.dsack = SackBlock{0, 500};
  EXPECT_EQ(ack.wire_size(), 40u + 2 + 24);
}

TEST(Path, SymmetricConfigSplitsRtt) {
  auto cfg = Path::Config::symmetric(util::DataRate::mbps(10), 100_ms, 50);
  EXPECT_EQ(cfg.data_link.propagation_delay.ms(), 50);
  EXPECT_EQ(cfg.ack_link.propagation_delay.ms(), 50);
  EXPECT_EQ(cfg.data_link.queue_limit_packets, 50u);
}

TEST(Path, RoundTripThroughBothLinks) {
  sim::Simulator sim;
  auto cfg = Path::Config::symmetric(util::DataRate::mbps(1.2), 100_ms, 50);
  Path path(sim, cfg, sim::Rng(7));
  sim::Time data_arrival, ack_arrival;
  path.set_data_sink([&](Segment) {
    data_arrival = sim.now();
    Segment ack;
    ack.is_ack = true;
    ack.ack = 1000;
    path.send_ack(std::move(ack));
  });
  path.set_ack_sink([&](Segment) { ack_arrival = sim.now(); });
  path.send_data(data_seg(0, 1000));
  sim.run();
  EXPECT_NEAR(data_arrival.ms_d(), 56.9, 0.2);
  // ACK: ~0 serialization at 100 Mbps + 50 ms back.
  EXPECT_NEAR(ack_arrival.ms_d(), 106.9, 0.3);
}

TEST(Path, KillClientSilencesAcks) {
  sim::Simulator sim;
  auto cfg = Path::Config::symmetric(util::DataRate::mbps(10), 10_ms, 50);
  Path path(sim, cfg, sim::Rng(7));
  int acks = 0;
  path.set_data_sink([&](Segment) {});
  path.set_ack_sink([&](Segment) { ++acks; });
  path.kill_client();
  Segment ack;
  ack.is_ack = true;
  path.send_ack(std::move(ack));
  sim.run();
  EXPECT_EQ(acks, 0);
}

}  // namespace
}  // namespace prr::net
