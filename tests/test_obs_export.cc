// Exporters: Chrome trace-event/Perfetto JSON (golden-string check on a
// synthetic record set, structural checks on a real lossy transfer) and
// the ss(8)-style sender snapshot in both text and JSON forms.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "net/loss_model.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "obs/json.h"
#include "obs/perfetto.h"
#include "obs/snapshot.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::obs {
namespace {

// The exporter's output is a stable function of its input; this golden
// string IS the format contract (ts in fractional microseconds, one
// process, tid = connection id, counter tracks per connection, sentinel
// metadata event closing the array).
TEST(Perfetto, GoldenSyntheticTrace) {
  std::vector<TraceRecord> records;
  records.push_back(make_record(sim::Time::nanoseconds(1500), 7,
                                TraceType::kAck, /*a=*/0, /*b=*/0,
                                /*ack=*/1000, /*cwnd=*/14608,
                                /*pipe=*/10000, /*ssthresh=*/7304,
                                /*delivered=*/2920, /*nxt=*/20000));
  records.push_back(make_record(sim::Time::nanoseconds(2000), 7,
                                TraceType::kPrr, /*a=*/1, /*b=*/0,
                                /*prr_delivered=*/2920, /*prr_out=*/1460,
                                /*recover_fs=*/14600, /*ssthresh=*/7304,
                                /*cwnd=*/8764));

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":"
      "\"prr simulator\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":7,\"name\":\"thread_name\",\"args\":{"
      "\"name\":\"conn 7\"}},\n"
      "{\"ph\":\"C\",\"pid\":1,\"tid\":7,\"ts\":1.500,\"name\":\"conn7 "
      "window\",\"args\":{\"cwnd\":14608,\"pipe\":10000,\"ssthresh\":7304}},\n"
      "{\"ph\":\"C\",\"pid\":1,\"tid\":7,\"ts\":2.000,\"name\":\"conn7 "
      "prr\",\"args\":{\"prr_delivered\":2920,\"prr_out\":1460}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"trace_complete\",\"args\":{"
      "\"records\":2}}\n"
      "]}\n";

  const std::string json = perfetto_trace_json(records);
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(json_valid(json));
}

TEST(Perfetto, SlicesFaultsAndInstants) {
  std::vector<TraceRecord> records;
  records.push_back(make_record(sim::Time::milliseconds(1), 2,
                                TraceType::kEnterRecovery, 0, 0, 20000, 7304,
                                9000, 14608, 30000));
  records.push_back(make_record(sim::Time::milliseconds(2), 2,
                                TraceType::kFault, /*a=blackout*/ 0, 0,
                                /*duration_ns=*/1'000'000));
  records.push_back(make_record(sim::Time::milliseconds(3), 2,
                                TraceType::kExitRecovery, 0, 0, 7304, 0));
  records.push_back(make_record(sim::Time::milliseconds(4), 2,
                                TraceType::kRtoFired, 0, 0, 1, 2, 3, 4, 5));
  records.push_back(make_record(sim::Time::milliseconds(5), 2,
                                TraceType::kTransmit, /*retx=*/1, 2, 1000,
                                1460));
  // Wire records are deliberately not exported.
  records.push_back(make_record(sim::Time::milliseconds(6), 2,
                                TraceType::kWireData, 0, 0, 1000, 1460));

  const std::string json = perfetto_trace_json(records);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fast recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rto_fired\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"retransmit\""), std::string::npos);
  EXPECT_EQ(json.find("wire"), std::string::npos);
}

// Drive a real lossy transfer and export its ring: the recovery episode
// instrumented in tcp/sender must produce a loadable trace with window
// counters and a balanced fast-recovery slice.
TEST(Perfetto, RealTransferExportsCleanly) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = sim::Time::milliseconds(50);
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(4),
                                          sim::Time::milliseconds(50), 100);
  tcp::Connection conn(sim, cfg, sim::Rng(1), nullptr, nullptr);
  FlightRecorder recorder(1 << 14);
  Instrument instrument(sim, conn, recorder, /*conn_id=*/9);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{3, 4}));
  conn.write(40'000);
  sim.run(sim::Time::seconds(30));
  ASSERT_TRUE(conn.sender().all_acked());

  if (!trace_compiled_in()) {
    EXPECT_EQ(recorder.total_written(), 0u);
    GTEST_SKIP() << "tracing compiled out";
  }
  EXPECT_GT(recorder.count(TraceType::kAck), 10u);
  EXPECT_GT(recorder.count(TraceType::kWireData), 10u);
  EXPECT_EQ(recorder.count(TraceType::kEnterRecovery),
            recorder.count(TraceType::kExitRecovery));
  EXPECT_GE(recorder.count(TraceType::kEnterRecovery), 1u);

  const std::string json = perfetto_trace_json(recorder);
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"name\":\"conn 9\""), std::string::npos);
  EXPECT_NE(json.find("conn9 window"), std::string::npos);
  EXPECT_NE(json.find("conn9 prr"), std::string::npos);
  EXPECT_NE(json.find("fast recovery"), std::string::npos);
}

TEST(Snapshot, TextAndJsonForms) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(4),
                                          sim::Time::milliseconds(40), 100);
  tcp::Connection conn(sim, cfg, sim::Rng(3), nullptr, nullptr);
  conn.write(20'000);
  sim.run(sim::Time::seconds(10));
  ASSERT_TRUE(conn.sender().all_acked());

  const std::string text = snapshot(conn.sender(), /*conn_id=*/4);
  EXPECT_NE(text.find("conn 4"), std::string::npos) << text;
  EXPECT_NE(text.find("state:Open"), std::string::npos) << text;
  EXPECT_NE(text.find("cwnd:"), std::string::npos) << text;
  EXPECT_NE(text.find("rto:"), std::string::npos) << text;

  const std::string json = snapshot_json(conn.sender(), /*conn_id=*/4);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"conn\":4"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"Open\""), std::string::npos);
  EXPECT_NE(json.find("\"snd_una\":20000"), std::string::npos);
}

}  // namespace
}  // namespace prr::obs
