#include "net/ack_mangler.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::net {
namespace {

using namespace prr::sim::literals;

Segment ack(uint64_t a) {
  Segment s;
  s.is_ack = true;
  s.ack = a;
  return s;
}

TEST(AckMangler, PassThroughByDefault) {
  sim::Simulator sim;
  std::vector<uint64_t> out;
  AckMangler m(sim, {}, sim::Rng(1),
               [&](Segment s) { out.push_back(s.ack); });
  for (uint64_t i = 1; i <= 5; ++i) m.on_ack(ack(i * 1000));
  sim.run();
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(m.acks_forwarded(), 5u);
}

TEST(AckMangler, DropsAtConfiguredRate) {
  sim::Simulator sim;
  int out = 0;
  AckMangler::Config cfg;
  cfg.ack_loss_probability = 0.25;
  AckMangler m(sim, cfg, sim::Rng(2), [&](Segment) { ++out; });
  const int n = 10000;
  for (int i = 0; i < n; ++i) m.on_ack(ack(i));
  sim.run();
  EXPECT_NEAR(static_cast<double>(m.acks_dropped()) / n, 0.25, 0.02);
  EXPECT_EQ(out + static_cast<int>(m.acks_dropped()), n);
}

TEST(AckMangler, StretchForwardsEveryKth) {
  sim::Simulator sim;
  std::vector<uint64_t> out;
  AckMangler::Config cfg;
  cfg.stretch_factor = 3;
  AckMangler m(sim, cfg, sim::Rng(2),
               [&](Segment s) { out.push_back(s.ack); });
  for (uint64_t i = 1; i <= 9; ++i) m.on_ack(ack(i * 1000));
  sim.run();
  // Every third ack survives, carrying the newest cumulative value.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 3000u);
  EXPECT_EQ(out[1], 6000u);
  EXPECT_EQ(out[2], 9000u);
}

TEST(AckMangler, StretchFlushTimeoutDeliversTail) {
  sim::Simulator sim;
  std::vector<uint64_t> out;
  AckMangler::Config cfg;
  cfg.stretch_factor = 4;
  cfg.stretch_flush_timeout = 500_us;
  AckMangler m(sim, cfg, sim::Rng(2),
               [&](Segment s) { out.push_back(s.ack); });
  m.on_ack(ack(1000));
  m.on_ack(ack(2000));  // only 2 of 4: held
  sim.run();            // flush timer fires
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 2000u);  // the newest held ack, not the first
}

TEST(AckMangler, StretchPreservesDsack) {
  sim::Simulator sim;
  std::vector<Segment> out;
  AckMangler::Config cfg;
  cfg.stretch_factor = 2;
  AckMangler m(sim, cfg, sim::Rng(2),
               [&](Segment s) { out.push_back(s); });
  Segment with_dsack = ack(1000);
  with_dsack.dsack = SackBlock{0, 500};
  m.on_ack(std::move(with_dsack));
  m.on_ack(ack(2000));  // coalesces over the DSACK ack
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(out[0].dsack.has_value());
  EXPECT_EQ(out[0].dsack->start, 0u);
  EXPECT_EQ(out[0].ack, 2000u);
}

TEST(AckMangler, CoalescedCountTracksSuppressed) {
  sim::Simulator sim;
  AckMangler::Config cfg;
  cfg.stretch_factor = 2;
  AckMangler m(sim, cfg, sim::Rng(2), [&](Segment) {});
  for (uint64_t i = 1; i <= 6; ++i) m.on_ack(ack(i));
  sim.run();
  EXPECT_EQ(m.acks_seen(), 6u);
  EXPECT_EQ(m.acks_forwarded(), 3u);
  EXPECT_EQ(m.acks_coalesced(), 3u);
}

}  // namespace
}  // namespace prr::net
