// TCP invariant checker: every paper scenario and recovery algorithm runs
// violation-free under per-ACK checking (the §3 bounds hold on the real
// state machine, not just the isolated PrrState), synthetic injection
// exercises the detection plumbing, and teardown checks catch nothing on
// clean and aborted connections alike.
#include <gtest/gtest.h>

#include <memory>

#include "exp/scenarios.h"
#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/invariants.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

// ---- all paper vectors, violation-free ----

TEST(Invariants, AllFigureScenariosRunViolationFree) {
  const RecoveryKind kinds[] = {RecoveryKind::kPrr, RecoveryKind::kRfc3517,
                                RecoveryKind::kLinuxRateHalving};
  const core::ReductionBound bounds[] = {core::ReductionBound::kSlowStart,
                                         core::ReductionBound::kConservative,
                                         core::ReductionBound::kUnlimited};
  int figure = 0;
  for (auto make : {&exp::FigureScenario::fig2, &exp::FigureScenario::fig3,
                    &exp::FigureScenario::fig4}) {
    ++figure;
    for (RecoveryKind kind : kinds) {
      for (core::ReductionBound bound : bounds) {
        exp::FigureScenario s = (*make)(kind);
        s.prr_bound = bound;
        s.check_invariants = true;
        exp::FigureRun run = exp::run_figure_scenario(s);
        EXPECT_GT(run.acks_checked, 0u);
        for (const auto& v : run.violations) {
          ADD_FAILURE() << "fig" << (figure + 1) << " kind "
                        << static_cast<int>(kind) << " bound "
                        << static_cast<int>(bound) << ": ["
                        << to_string(v.kind) << " @ " << v.at.ms() << "ms] "
                        << v.detail;
        }
      }
    }
  }
}

// ---- connection-level checks ----

ConnectionConfig checked_config() {
  ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(4), 60_ms, 100);
  return cfg;
}

TEST(Invariants, CleanTransferIsViolationFree) {
  sim::Simulator sim;
  Connection conn(sim, checked_config(), sim::Rng(1));
  InvariantChecker checker(sim, conn.sender());
  conn.write(50'000);
  sim.run(sim::Time::seconds(60));
  ASSERT_TRUE(conn.sender().all_acked());
  checker.finalize();
  EXPECT_TRUE(checker.ok());
  EXPECT_GT(checker.acks_checked(), 0u);
}

TEST(Invariants, LossRecoveryIsViolationFree) {
  for (RecoveryKind kind : {RecoveryKind::kPrr, RecoveryKind::kRfc3517,
                            RecoveryKind::kLinuxRateHalving}) {
    sim::Simulator sim;
    ConnectionConfig cfg = checked_config();
    cfg.sender.recovery = kind;
    Metrics m;
    Connection conn(sim, cfg, sim::Rng(2), &m, nullptr);
    conn.path().data_link().set_loss_model(
        std::make_unique<net::DeterministicLoss>(
            std::set<uint64_t>{2, 3, 11, 17}));
    InvariantChecker checker(sim, conn.sender());
    conn.write(60'000);
    sim.run(sim::Time::seconds(60));
    ASSERT_TRUE(conn.sender().all_acked());
    EXPECT_GT(m.fast_recovery_events, 0u);
    checker.finalize();
    for (const auto& v : checker.violations()) {
      ADD_FAILURE() << "kind " << static_cast<int>(kind) << ": ["
                    << to_string(v.kind) << "] " << v.detail;
    }
  }
}

TEST(Invariants, AbortedConnectionPassesTeardownChecks) {
  // Client dies mid-recovery; the sender backs off to an abort. The
  // timer-leak teardown check must pass (abort stops all loss timers).
  sim::Simulator sim;
  ConnectionConfig cfg = checked_config();
  cfg.sender.max_rto_backoffs = 3;
  Connection conn(sim, cfg, sim::Rng(3));
  InvariantChecker checker(sim, conn.sender());
  conn.write(30'000);
  sim.schedule_in(100_ms, [&conn] { conn.path().kill_client(); });
  sim.run(sim::Time::seconds(300));
  ASSERT_TRUE(conn.sender().aborted());
  checker.finalize();
  EXPECT_TRUE(checker.ok());
}

TEST(Invariants, InjectionRecordsSyntheticViolation) {
  sim::Simulator sim;
  Connection conn(sim, checked_config(), sim::Rng(4));
  InvariantChecker::Config ccfg;
  ccfg.inject_on_ack = 3;
  InvariantChecker checker(sim, conn.sender(), ccfg);
  conn.write(50'000);
  sim.run(sim::Time::seconds(60));
  checker.finalize();
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].kind, InvariantKind::kInjected);
  EXPECT_FALSE(checker.ok());
  EXPECT_GT(checker.violations()[0].at, sim::Time::zero());
}

TEST(Invariants, CheckerChainsWithExistingHook) {
  // The checker must preserve a previously installed post-ACK hook.
  sim::Simulator sim;
  Connection conn(sim, checked_config(), sim::Rng(5));
  int prior_hook_calls = 0;
  conn.sender().on_post_ack_hook = [&](const net::Segment&) {
    ++prior_hook_calls;
  };
  InvariantChecker checker(sim, conn.sender());
  conn.write(20'000);
  sim.run(sim::Time::seconds(30));
  checker.finalize();
  EXPECT_GT(prior_hook_calls, 0);
  EXPECT_EQ(static_cast<uint64_t>(prior_hook_calls),
            checker.acks_checked());
  EXPECT_TRUE(checker.ok());
}

TEST(Invariants, FinalizeIsIdempotent) {
  sim::Simulator sim;
  Connection conn(sim, checked_config(), sim::Rng(6));
  InvariantChecker checker(sim, conn.sender());
  conn.write(10'000);
  sim.run(sim::Time::seconds(30));
  checker.finalize();
  const std::size_t n = checker.violations().size();
  checker.finalize();
  checker.finalize();
  EXPECT_EQ(checker.violations().size(), n);
}

TEST(Invariants, KindNamesAreStable) {
  // Quarantine records serialize these names; keep them meaningful.
  EXPECT_STREQ(to_string(InvariantKind::kSndUnaRegressed),
               "snd_una_regressed");
  EXPECT_STREQ(to_string(InvariantKind::kPrrBeyondSlowStart),
               "prr_beyond_slow_start");
  EXPECT_STREQ(to_string(InvariantKind::kTimerLeak), "timer_leak");
  EXPECT_STREQ(to_string(InvariantKind::kInjected), "injected");
}

}  // namespace
}  // namespace prr::tcp
