#include "tcp/receiver.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

net::Segment data(uint64_t seq, uint32_t len = 1000) {
  net::Segment s;
  s.seq = seq;
  s.len = len;
  return s;
}

class ReceiverTest : public ::testing::Test {
 protected:
  ReceiverTest() { make(Receiver::Config{}); }

  void make(Receiver::Config cfg) {
    acks.clear();
    rx = std::make_unique<Receiver>(
        sim, cfg, [this](net::Segment a) { acks.push_back(a); });
  }

  sim::Simulator sim;
  std::vector<net::Segment> acks;
  std::unique_ptr<Receiver> rx;
};

TEST_F(ReceiverTest, InOrderDataAdvancesRcvNxt) {
  rx->on_data(data(0));
  EXPECT_EQ(rx->rcv_nxt(), 1000u);
  rx->on_data(data(1000));
  EXPECT_EQ(rx->rcv_nxt(), 2000u);
}

TEST_F(ReceiverTest, DelayedAckEverySecondSegment) {
  rx->on_data(data(0));
  EXPECT_TRUE(acks.empty());  // held for the delack window
  rx->on_data(data(1000));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 2000u);
}

TEST_F(ReceiverTest, DelackTimerFlushesSingleSegment) {
  rx->on_data(data(0));
  EXPECT_TRUE(acks.empty());
  sim.run();  // 40 ms delack timer fires
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 1000u);
  EXPECT_EQ(sim.now().ms(), 40);
}

TEST_F(ReceiverTest, OutOfOrderDataAcksImmediatelyWithSack) {
  rx->on_data(data(2000));  // hole at 0-2000
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].ack, 0u);
  ASSERT_EQ(acks[0].sacks.size(), 1u);
  EXPECT_EQ(acks[0].sacks[0].start, 2000u);
  EXPECT_EQ(acks[0].sacks[0].end, 3000u);
}

TEST_F(ReceiverTest, HoleFillPullsOooQueue) {
  rx->on_data(data(1000));
  rx->on_data(data(2000));
  acks.clear();
  rx->on_data(data(0));  // fills the hole
  EXPECT_EQ(rx->rcv_nxt(), 3000u);
  // Still ACKs immediately while the reorder queue drains.
  ASSERT_GE(acks.size(), 1u);
  EXPECT_EQ(acks.back().ack, 3000u);
  EXPECT_TRUE(acks.back().sacks.empty());
}

TEST_F(ReceiverTest, SackBlocksMostRecentFirst) {
  rx->on_data(data(2000));
  rx->on_data(data(6000));
  rx->on_data(data(4000));
  const auto& last = acks.back();
  ASSERT_EQ(last.sacks.size(), 3u);
  EXPECT_EQ(last.sacks[0].start, 4000u);  // most recently updated first
  EXPECT_EQ(last.sacks[1].start, 6000u);
  EXPECT_EQ(last.sacks[2].start, 2000u);
}

TEST_F(ReceiverTest, AdjacentOooBlocksMerge) {
  rx->on_data(data(2000));
  rx->on_data(data(3000));
  const auto& last = acks.back();
  ASSERT_EQ(last.sacks.size(), 1u);
  EXPECT_EQ(last.sacks[0].start, 2000u);
  EXPECT_EQ(last.sacks[0].end, 4000u);
}

TEST_F(ReceiverTest, MaxThreeSackBlocks) {
  rx->on_data(data(2000));
  rx->on_data(data(4000));
  rx->on_data(data(6000));
  rx->on_data(data(8000));
  EXPECT_EQ(acks.back().sacks.size(), 3u);
}

TEST_F(ReceiverTest, DuplicateSegmentTriggersDsack) {
  rx->on_data(data(0));
  rx->on_data(data(1000));
  acks.clear();
  rx->on_data(data(0));  // duplicate of delivered data
  ASSERT_EQ(acks.size(), 1u);
  ASSERT_TRUE(acks[0].dsack.has_value());
  EXPECT_EQ(acks[0].dsack->start, 0u);
  EXPECT_EQ(acks[0].dsack->end, 1000u);
  EXPECT_EQ(rx->duplicate_segments(), 1u);
}

TEST_F(ReceiverTest, DuplicateOfOooSegmentTriggersDsack) {
  rx->on_data(data(2000));
  acks.clear();
  rx->on_data(data(2000));
  ASSERT_EQ(acks.size(), 1u);
  ASSERT_TRUE(acks[0].dsack.has_value());
  EXPECT_EQ(acks[0].dsack->start, 2000u);
}

TEST_F(ReceiverTest, DsackDisabledClients) {
  Receiver::Config cfg;
  cfg.dsack_enabled = false;
  make(cfg);
  rx->on_data(data(0));
  rx->on_data(data(1000));
  acks.clear();
  rx->on_data(data(0));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_FALSE(acks[0].dsack.has_value());
}

TEST_F(ReceiverTest, SackDisabledProducesPlainDupacks) {
  Receiver::Config cfg;
  cfg.sack_enabled = false;
  make(cfg);
  rx->on_data(data(2000));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].sacks.empty());
  EXPECT_EQ(acks[0].ack, 0u);
}

TEST_F(ReceiverTest, RwndAdvertised) {
  Receiver::Config cfg;
  cfg.rwnd = 123456;
  make(cfg);
  rx->on_data(data(0));
  rx->on_data(data(1000));
  EXPECT_EQ(acks.back().rwnd, 123456u);
}

TEST_F(ReceiverTest, AckEveryOneDisablesDelack) {
  Receiver::Config cfg;
  cfg.ack_every = 1;
  make(cfg);
  rx->on_data(data(0));
  EXPECT_EQ(acks.size(), 1u);
}

TEST_F(ReceiverTest, OverlappingOooSegmentNotDuplicate) {
  rx->on_data(data(2000, 1000));
  acks.clear();
  // Partially-new data spanning the existing block is not a duplicate.
  rx->on_data(data(2000, 2000));
  EXPECT_EQ(rx->duplicate_segments(), 0u);
  ASSERT_EQ(acks.back().sacks.size(), 1u);
  EXPECT_EQ(acks.back().sacks[0].end, 4000u);
}

TEST_F(ReceiverTest, QuickackAcksFirstSegmentsImmediately) {
  Receiver::Config cfg;
  cfg.quickack_segments = 2;
  make(cfg);
  rx->on_data(data(0));
  EXPECT_EQ(acks.size(), 1u);  // quickack: no delack holding
  rx->on_data(data(1000));
  EXPECT_EQ(acks.size(), 2u);
  // Quickack budget spent: back to delayed ACKs.
  rx->on_data(data(2000));
  EXPECT_EQ(acks.size(), 2u);
  rx->on_data(data(3000));
  EXPECT_EQ(acks.size(), 3u);
}

}  // namespace
}  // namespace prr::tcp
