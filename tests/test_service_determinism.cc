// The service determinism contract (DESIGN.md §13): for a given seed
// and snapshot cadence, the streaming scoreboard, the decision log, the
// alert log and the Perfetto timeline are BIT-identical at any
// worker-thread count, with per-connection tracing on or off. This is
// what lets CI diff nightly soak digests across thread counts and call
// any difference a bug.
#include <gtest/gtest.h>

#include <string>

#include "exp/service.h"
#include "exp/service_timeline.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

struct Streams {
  std::string scoreboard;
  std::string decisions;
  std::string alerts;
  std::string timeline;
};

Streams run_service(int threads, bool trace) {
  exp::ServiceConfig cfg;
  cfg.arms = {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
              exp::ArmConfig::prr_arm()};
  cfg.control_arm = 0;
  cfg.seed = 7;
  cfg.arrivals.rate_per_sec = 30.0;
  cfg.arrivals.diurnal.amplitude = 0.4;
  cfg.snapshot_every = sim::Time::seconds(60);
  cfg.max_connections = 3000;
  cfg.run.threads = threads;
  cfg.run.trace = trace;
  // A mid-run shift with a twitchy detector so the alert path (and its
  // quarantine bookkeeping) is part of what must be invariant.
  cfg.cusum.calibration = 3;
  cfg.cusum.h = 4.0;
  workload::RegimeShift shift;
  shift.at = sim::Time::seconds(60);
  shift.loss_scale = 6.0;
  cfg.regimes.shifts.push_back(shift);

  workload::WebWorkload pop;
  const exp::ServiceResult res = exp::ExperimentService(pop, cfg).run();
  return {res.scoreboard_jsonl(), res.decision_log_jsonl(),
          res.alert_log_jsonl(), exp::service_timeline_json(res)};
}

TEST(ServiceDeterminism, StreamsBitIdenticalAcrossThreadCounts) {
  const Streams serial = run_service(1, false);
  ASSERT_FALSE(serial.scoreboard.empty());
  for (int threads : {4, 8}) {
    const Streams parallel = run_service(threads, false);
    EXPECT_EQ(serial.scoreboard, parallel.scoreboard)
        << "scoreboard diverges at " << threads << " threads";
    EXPECT_EQ(serial.decisions, parallel.decisions)
        << "decision log diverges at " << threads << " threads";
    EXPECT_EQ(serial.alerts, parallel.alerts)
        << "alert log diverges at " << threads << " threads";
    EXPECT_EQ(serial.timeline, parallel.timeline)
        << "timeline diverges at " << threads << " threads";
  }
}

TEST(ServiceDeterminism, StreamsInvariantUnderTracing) {
  const Streams off = run_service(4, false);
  const Streams on = run_service(4, true);
  EXPECT_EQ(off.scoreboard, on.scoreboard);
  EXPECT_EQ(off.decisions, on.decisions);
  EXPECT_EQ(off.alerts, on.alerts);
  EXPECT_EQ(off.timeline, on.timeline);
}

TEST(ServiceDeterminism, RepeatedRunsAreBitIdentical) {
  const Streams a = run_service(2, false);
  const Streams b = run_service(2, false);
  EXPECT_EQ(a.scoreboard, b.scoreboard);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.timeline, b.timeline);
}

}  // namespace
