// Non-SACK (NewReno, RFC 6582) recovery path: pure dupack counting,
// partial-ACK retransmission, the RFC 6937 one-MSS-per-dupack heuristic
// for PRR's DeliveredData, and end-to-end transfers against non-SACK
// clients (4% of the paper's connections).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/sender.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

struct Sent {
  uint64_t seq;
  uint32_t len;
  bool retx;
};

class NewRenoRecoveryTest : public ::testing::Test {
 protected:
  void make(RecoveryKind kind = RecoveryKind::kPrr) {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 20;
    cfg.cc = CcKind::kNewReno;
    cfg.recovery = kind;
    cfg.sack_enabled = false;
    cfg.handshake_rtt = 100_ms;
    wire.clear();
    sender = std::make_unique<Sender>(
        sim, cfg,
        [this](net::Segment s) {
          wire.push_back({s.seq, s.len, s.is_retransmit});
        },
        &metrics, &rlog);
  }

  // Pure duplicate ACK (no SACK blocks, as a non-SACK client sends).
  net::Segment dupack(uint64_t cum) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.rwnd = 1 << 30;
    return a;
  }

  int count_retx() const {
    int n = 0;
    for (const auto& s : wire) n += s.retx;
    return n;
  }

  sim::Simulator sim;
  Metrics metrics;
  stats::RecoveryLog rlog;
  std::unique_ptr<Sender> sender;
  std::vector<Sent> wire;
};

TEST_F(NewRenoRecoveryTest, ThreeDupacksTriggerRecovery) {
  make();
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->state(), TcpState::kRecovery);
  // The head segment is retransmitted even with no SACK information.
  ASSERT_GE(count_retx(), 1);
  EXPECT_EQ(wire.back().seq, 0u);
}

TEST_F(NewRenoRecoveryTest, TwoDupacksDoNotTrigger) {
  make();
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(dupack(0));
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  EXPECT_EQ(count_retx(), 0);
}

TEST_F(NewRenoRecoveryTest, PartialAckRetransmitsNextHole) {
  make();
  sender->write(20 * kMss);
  wire.clear();
  for (int i = 0; i < 3; ++i) sender->on_ack_segment(dupack(0));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  wire.clear();
  // Partial ACK: the retransmitted head arrived, but the next segment is
  // also missing. NewReno retransmits it immediately.
  sender->on_ack_segment(dupack(1 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kRecovery);
  int head_retx = 0;
  for (const auto& s : wire) head_retx += (s.retx && s.seq == 1 * kMss);
  EXPECT_EQ(head_retx, 1);
}

TEST_F(NewRenoRecoveryTest, FullAckEndsRecoveryAtSsthresh) {
  make();
  sender->write(20 * kMss);
  wire.clear();
  for (int i = 0; i < 3; ++i) sender->on_ack_segment(dupack(0));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  sender->on_ack_segment(dupack(20 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kOpen);
  EXPECT_EQ(sender->cwnd_bytes(), sender->ssthresh_bytes());  // PRR exit
}

TEST_F(NewRenoRecoveryTest, DupacksAdvanceThePrrClock) {
  make();
  sender->write(20 * kMss);
  wire.clear();
  for (int i = 0; i < 3; ++i) sender->on_ack_segment(dupack(0));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  // Each further dupack counts as one delivered MSS: PRR (Reno ratio
  // 1/2) releases roughly one transmission per two dupacks. With only
  // one marked hole (already retransmitted) the budget goes to new data.
  sender->write(10 * kMss);
  wire.clear();
  for (int i = 0; i < 8; ++i) sender->on_ack_segment(dupack(0));
  EXPECT_GE(static_cast<int>(wire.size()), 2);
  EXPECT_LE(static_cast<int>(wire.size()), 6);
}

TEST_F(NewRenoRecoveryTest, EndToEndTransferWithBurstLoss) {
  for (auto kind : {RecoveryKind::kPrr, RecoveryKind::kLinuxRateHalving,
                    RecoveryKind::kRfc3517}) {
    sim::Simulator fullsim;
    ConnectionConfig cfg;
    cfg.sender.mss = kMss;
    cfg.sender.recovery = kind;
    cfg.sender.sack_enabled = false;
    cfg.sender.handshake_rtt = 80_ms;
    cfg.receiver.sack_enabled = false;
    cfg.receiver.dsack_enabled = false;
    cfg.path =
        net::Path::Config::symmetric(util::DataRate::mbps(4), 80_ms, 100);
    Metrics m;
    Connection conn(fullsim, cfg, sim::Rng(11), &m, nullptr);
    conn.path().data_link().set_loss_model(
        std::make_unique<net::BernoulliLoss>(0.03, sim::Rng(12)));
    conn.write(300'000);
    fullsim.run(sim::Time::seconds(600));
    EXPECT_TRUE(conn.sender().all_acked()) << static_cast<int>(kind);
    EXPECT_EQ(conn.receiver().rcv_nxt(), 300'000u);
    EXPECT_GT(m.fast_recovery_events, 0u);
  }
}

TEST_F(NewRenoRecoveryTest, NonSackReceiverSendsPlainDupacks) {
  sim::Simulator fullsim;
  ConnectionConfig cfg;
  cfg.sender.mss = kMss;
  cfg.sender.sack_enabled = false;
  cfg.sender.handshake_rtt = 80_ms;
  cfg.receiver.sack_enabled = false;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(4), 80_ms, 100);
  Connection conn(fullsim, cfg, sim::Rng(7), nullptr, nullptr);
  int dupacks_with_sack = 0;
  conn.sender().on_ack_hook = [&](const net::Segment& a) {
    if (!a.sacks.empty()) ++dupacks_with_sack;
  };
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{3}));
  conn.write(20 * kMss);
  fullsim.run(sim::Time::seconds(30));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(dupacks_with_sack, 0);  // wire carried no SACK blocks
}

TEST_F(NewRenoRecoveryTest, EffectivePipeDiscountsDupacks) {
  make();
  sender->write(20 * kMss);
  const uint64_t full = sender->pipe_bytes();
  EXPECT_EQ(full, 20 * kMss);
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->pipe_bytes(), 19 * kMss);
  sender->on_ack_segment(dupack(0));
  EXPECT_EQ(sender->pipe_bytes(), 18 * kMss);
}

}  // namespace
}  // namespace prr::tcp
