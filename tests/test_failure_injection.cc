// Failure injection: adversarial event orderings that must not wedge the
// state machine — client death in every state, writes at awkward moments,
// duplicate and ancient ACKs, and timer races.
#include <gtest/gtest.h>

#include <memory>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

ConnectionConfig base_config() {
  ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.max_rto_backoffs = 3;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(4), 60_ms, 100);
  return cfg;
}

TEST(FailureInjection, ClientDiesDuringRecovery) {
  sim::Simulator sim;
  Metrics m;
  stats::RecoveryLog rlog;
  Connection conn(sim, base_config(), sim::Rng(1), &m, &rlog);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{1, 2}));
  conn.write(20'000);
  // Let recovery start (~entry around 120-160 ms), then kill the client.
  sim.schedule_in(200_ms, [&conn] { conn.path().kill_client(); });
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().aborted());
  EXPECT_TRUE(sim.idle());
  // The interrupted recovery event is still logged coherently.
  for (const auto& e : rlog.events()) {
    EXPECT_GE(e.end.ns(), e.start.ns());
  }
}

TEST(FailureInjection, ClientDiesWithErPending) {
  sim::Simulator sim;
  ConnectionConfig cfg = base_config();
  cfg.sender.early_retransmit = EarlyRetransmitMode::kBothMitigations;
  Metrics m;
  Connection conn(sim, cfg, sim::Rng(2), &m, nullptr);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{1}));
  conn.write(2000);  // tail-ish loss on a 2-segment flow arms delayed ER
  // Kill after the dupack (~64 ms) but before the delayed ER fires
  // (~89 ms): the probe's repair ACK is silenced and the sender must
  // RTO its way to an abort without leaking the ER timer.
  sim.schedule_in(70_ms, [&conn] { conn.path().kill_client(); });
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().aborted());
  EXPECT_TRUE(sim.idle());  // the ER timer did not leak
}

TEST(FailureInjection, WriteDuringLossState) {
  sim::Simulator sim;
  ConnectionConfig cfg = base_config();
  cfg.sender.max_rto_backoffs = 10;
  Metrics m;
  Connection conn(sim, cfg, sim::Rng(3), &m, nullptr);
  // Drop everything for a while so the sender RTOs into Loss, then heal.
  auto composite = std::make_unique<net::CompositeLoss>();
  composite->add(std::make_unique<net::DeterministicLoss>(
      std::set<uint64_t>{1, 2, 3, 4, 5}));
  conn.path().data_link().set_loss_model(std::move(composite));
  conn.write(5000);
  sim.schedule_in(1500_ms, [&conn] { conn.write(10'000); });  // mid-Loss
  sim.run(sim::Time::seconds(120));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.receiver().rcv_nxt(), 15'000u);
}

TEST(FailureInjection, ZeroByteWriteIsNoop) {
  sim::Simulator sim;
  Connection conn(sim, base_config(), sim::Rng(4), nullptr, nullptr);
  conn.write(0);
  EXPECT_EQ(conn.sender().snd_nxt(), 0u);
  sim.run(sim::Time::seconds(1));
  EXPECT_TRUE(sim.idle());
}

TEST(FailureInjection, DuplicateAndAncientAcksIgnoredSafely) {
  sim::Simulator sim;
  Metrics m;
  Connection conn(sim, base_config(), sim::Rng(5), &m, nullptr);
  conn.write(10'000);
  sim.run(sim::Time::seconds(5));
  ASSERT_TRUE(conn.sender().all_acked());
  // Replay stale ACKs straight into the sender.
  net::Segment stale;
  stale.is_ack = true;
  stale.ack = 2000;
  stale.rwnd = 1 << 20;
  for (int i = 0; i < 10; ++i) conn.sender().on_ack_segment(stale);
  EXPECT_EQ(conn.sender().state(), TcpState::kOpen);
  EXPECT_EQ(conn.sender().snd_una(), 10'000u);
  EXPECT_EQ(m.fast_recovery_events, 0u);
}

TEST(FailureInjection, AckBeyondSndNxtIsTolerated) {
  sim::Simulator sim;
  Connection conn(sim, base_config(), sim::Rng(6), nullptr, nullptr);
  conn.write(5000);
  net::Segment bogus;
  bogus.is_ack = true;
  bogus.ack = 50'000;  // acknowledges data never sent
  bogus.rwnd = 1 << 20;
  conn.sender().on_ack_segment(bogus);
  // The sender takes the forward progress it can prove and stays sane.
  sim.run(sim::Time::seconds(10));
  EXPECT_TRUE(conn.sender().all_acked());
}

TEST(FailureInjection, SackBlocksOutsideWindowIgnored) {
  sim::Simulator sim;
  Connection conn(sim, base_config(), sim::Rng(7), nullptr, nullptr);
  conn.write(5000);
  net::Segment weird;
  weird.is_ack = true;
  weird.ack = 0;
  weird.rwnd = 1 << 20;
  weird.sacks.push_back({100'000, 101'000});  // beyond snd.nxt
  weird.sacks.push_back({0, 0});              // empty block
  conn.sender().on_ack_segment(weird);
  EXPECT_EQ(conn.sender().pipe_bytes(), 5000u);  // nothing marked
  sim.run(sim::Time::seconds(10));
  EXPECT_TRUE(conn.sender().all_acked());
}

TEST(FailureInjection, RepeatedKillClientIsIdempotent) {
  sim::Simulator sim;
  Connection conn(sim, base_config(), sim::Rng(8), nullptr, nullptr);
  conn.write(5000);
  conn.path().kill_client();
  conn.path().kill_client();
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().aborted());
}

TEST(FailureInjection, AbortStopsAllTimers) {
  sim::Simulator sim;
  ConnectionConfig cfg = base_config();
  cfg.sender.tail_loss_probe = true;
  cfg.sender.early_retransmit = EarlyRetransmitMode::kBothMitigations;
  Connection conn(sim, cfg, sim::Rng(9), nullptr, nullptr);
  conn.path().kill_client();
  conn.write(20'000);
  sim.run(sim::Time::seconds(600));
  EXPECT_TRUE(conn.sender().aborted());
  EXPECT_TRUE(sim.idle());  // nothing left scheduled: no timer leaks
}

TEST(FailureInjection, MassiveWriteDoesNotExplodeMemoryOrTime) {
  sim::Simulator sim;
  ConnectionConfig cfg = base_config();
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(100),
                                          20_ms, 500);
  cfg.sender.handshake_rtt = 20_ms;
  Connection conn(sim, cfg, sim::Rng(10), nullptr, nullptr);
  conn.write(50'000'000);  // 50 MB
  sim.run(sim::Time::seconds(60));
  EXPECT_TRUE(conn.sender().all_acked());
}

}  // namespace
}  // namespace prr::tcp
