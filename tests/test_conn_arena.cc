// Pooled-connection determinism: RunOptions::pool_connections recycles
// one Simulator/Connection/ServerApp arena per worker through the
// reset() protocol, and "fresh == reset by construction" means a pooled
// sweep must reproduce an unpooled sweep exactly — every counter, every
// sample vector, every quarantine record — on clean and chaotic
// populations alike, serial and parallel.
#include <gtest/gtest.h>

#include <cstring>
#include <type_traits>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "workload/video_workload.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

void expect_identical(const ArmResult& fresh, const ArmResult& pooled) {
  static_assert(std::is_trivially_copyable_v<tcp::Metrics>);
  EXPECT_EQ(
      std::memcmp(&fresh.metrics, &pooled.metrics, sizeof(tcp::Metrics)),
      0)
      << "metrics differ: {" << fresh.metrics.summary() << "} vs {"
      << pooled.metrics.summary() << "}";
  EXPECT_EQ(fresh.connections_run, pooled.connections_run);
  EXPECT_EQ(fresh.total_workload_bytes, pooled.total_workload_bytes);
  EXPECT_EQ(fresh.total_network_transmit_time,
            pooled.total_network_transmit_time);
  EXPECT_EQ(fresh.total_loss_recovery_time,
            pooled.total_loss_recovery_time);
  EXPECT_EQ(fresh.acks_checked, pooled.acks_checked);
  EXPECT_EQ(fresh.invariant_violations, pooled.invariant_violations);

  const auto& fe = fresh.recovery_log.events();
  const auto& pe = pooled.recovery_log.events();
  ASSERT_EQ(fe.size(), pe.size());
  for (std::size_t i = 0; i < fe.size(); ++i) {
    SCOPED_TRACE("recovery event " + std::to_string(i));
    EXPECT_EQ(fe[i].start, pe[i].start);
    EXPECT_EQ(fe[i].end, pe[i].end);
    EXPECT_EQ(fe[i].cwnd_at_start, pe[i].cwnd_at_start);
    EXPECT_EQ(fe[i].cwnd_at_exit, pe[i].cwnd_at_exit);
    EXPECT_EQ(fe[i].retransmits, pe[i].retransmits);
    EXPECT_EQ(fe[i].bytes_sent_during, pe[i].bytes_sent_during);
  }

  const auto& fr = fresh.latency.responses();
  const auto& pr = pooled.latency.responses();
  ASSERT_EQ(fr.size(), pr.size());
  for (std::size_t i = 0; i < fr.size(); ++i) {
    SCOPED_TRACE("response " + std::to_string(i));
    EXPECT_EQ(fr[i].bytes, pr[i].bytes);
    EXPECT_EQ(fr[i].first_byte_sent, pr[i].first_byte_sent);
    EXPECT_EQ(fr[i].last_byte_acked, pr[i].last_byte_acked);
    EXPECT_EQ(fr[i].had_retransmit, pr[i].had_retransmit);
    EXPECT_EQ(fr[i].completed, pr[i].completed);
  }

  ASSERT_EQ(fresh.quarantined.size(), pooled.quarantined.size());
  for (std::size_t i = 0; i < fresh.quarantined.size(); ++i) {
    EXPECT_EQ(fresh.quarantined[i].connection_id,
              pooled.quarantined[i].connection_id);
    EXPECT_EQ(fresh.quarantined[i].fault_summary,
              pooled.quarantined[i].fault_summary);
  }
}

ArmResult run(const workload::Population& pop, RunOptions opts,
              bool pool) {
  opts.pool_connections = pool;
  return run_arm(pop, ArmConfig::prr_arm(), opts);
}

TEST(ConnArena, PooledEqualsFreshWeb) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 200;
  opts.seed = 91;
  expect_identical(run(pop, opts, false), run(pop, opts, true));
}

TEST(ConnArena, PooledEqualsFreshVideo) {
  workload::VideoWorkload pop;
  RunOptions opts;
  opts.connections = 60;
  opts.seed = 14;
  expect_identical(run(pop, opts, false), run(pop, opts, true));
}

TEST(ConnArena, PooledEqualsFreshChaosWithQuarantine) {
  // The hardest recycling case: fault schedules, invariant checking, an
  // injected violation, and aborted connections all leave state behind
  // that reset() must fully clear.
  workload::WebWorkload base;
  ChaosPopulation pop(base, ChaosSpec::everything().profile);
  RunOptions opts;
  opts.connections = 96;
  opts.seed = 7;
  opts.check_invariants = true;
  opts.scenario = "arena-chaos";
  opts.inject_violation_connection = 41;
  opts.inject_violation_on_ack = 3;
  const ArmResult fresh = run(pop, opts, false);
  ASSERT_EQ(fresh.quarantined.size(), 1u);
  expect_identical(fresh, run(pop, opts, true));
}

TEST(ConnArena, PooledEqualsFreshAcrossThreads) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 150;
  opts.seed = 33;
  opts.threads = 1;
  const ArmResult fresh_serial = run(pop, opts, false);
  opts.threads = 4;
  expect_identical(fresh_serial, run(pop, opts, true));
}

TEST(ConnArena, PooledEqualsFreshTraced) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 80;
  opts.seed = 55;
  opts.trace = true;
  opts.collect_episodes = true;
  expect_identical(run(pop, opts, false), run(pop, opts, true));
}

}  // namespace
}  // namespace prr::exp
