// Trace-store files are a pure function of (population, arm, seed,
// capture policy): byte-identical across worker-thread counts, with
// tracing on or off, with pooling on or off, and across the split-run +
// merge path. This is the contract that makes store artifacts diffable
// and lets fork-per-shard sweeps reproduce the single-process file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "exp/experiment.h"
#include "obs/store/store_format.h"
#include "workload/web_workload.h"

namespace prr {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "prr_store_det_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

exp::RunOptions base_opts() {
  exp::RunOptions opts;
  opts.connections = 200;
  opts.seed = 20110501;
  opts.capture = "sample=4,full=timeout";
  return opts;
}

// Runs the arm with `opts` and returns the produced store file's bytes
// (deleting the file).
std::string store_bytes(exp::RunOptions opts, const std::string& name) {
  opts.store_path = temp_path(name);
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  workload::WebWorkload pop;
  exp::run_arm(pop, arm, opts);
  const std::string path = obs::store_path_for_arm(opts.store_path, arm.name);
  std::string bytes = slurp(path);
  std::remove(path.c_str());
  return bytes;
}

TEST(StoreDeterminism, ByteIdenticalAcrossThreadCounts) {
  exp::RunOptions opts = base_opts();
  opts.threads = 1;
  const std::string serial = store_bytes(opts, "t1.prrstore");
  ASSERT_FALSE(serial.empty());
  opts.threads = 4;
  EXPECT_EQ(store_bytes(opts, "t4.prrstore"), serial);
  opts.threads = 8;
  EXPECT_EQ(store_bytes(opts, "t8.prrstore"), serial);
}

TEST(StoreDeterminism, IndependentOfOtherObservability) {
  exp::RunOptions opts = base_opts();
  const std::string plain = store_bytes(opts, "plain.prrstore");
  ASSERT_FALSE(plain.empty());

  exp::RunOptions traced = base_opts();
  traced.trace = true;
  traced.collect_episodes = true;
  EXPECT_EQ(store_bytes(traced, "traced.prrstore"), plain);

  exp::RunOptions unpooled = base_opts();
  unpooled.pool_connections = false;
  EXPECT_EQ(store_bytes(unpooled, "unpooled.prrstore"), plain);

  exp::RunOptions bounded = base_opts();
  bounded.bounded_stats = true;
  bounded.threads = 4;
  EXPECT_EQ(store_bytes(bounded, "bounded.prrstore"), plain);
}

TEST(StoreDeterminism, StoreCaptureDoesNotPerturbAggregates) {
  workload::WebWorkload pop;
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::RunOptions off = base_opts();
  exp::RunOptions on = base_opts();
  on.store_path = temp_path("agg.prrstore");

  const exp::ArmResult r_off = exp::run_arm(pop, arm, off);
  const exp::ArmResult r_on = exp::run_arm(pop, arm, on);
  EXPECT_EQ(r_off.metrics.data_segments_sent, r_on.metrics.data_segments_sent);
  EXPECT_EQ(r_off.metrics.bytes_sent, r_on.metrics.bytes_sent);
  EXPECT_EQ(r_off.metrics.retransmits_total, r_on.metrics.retransmits_total);
  EXPECT_EQ(r_off.metrics.timeouts_total, r_on.metrics.timeouts_total);
  EXPECT_EQ(r_off.metrics.fast_recovery_events,
            r_on.metrics.fast_recovery_events);
  EXPECT_EQ(r_off.total_workload_bytes, r_on.total_workload_bytes);
  const std::string path = obs::store_path_for_arm(on.store_path, arm.name);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace prr
