#include "sim/time.h"

#include <gtest/gtest.h>

namespace prr::sim {
namespace {

using namespace prr::sim::literals;

TEST(Time, UnitConstructorsAgree) {
  EXPECT_EQ(Time::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Time::microseconds(1).ns(), 1'000);
  EXPECT_EQ(Time::seconds(1.5).ms(), 1500);
  EXPECT_EQ((3_ms).us(), 3000);
  EXPECT_EQ((2_s).ms(), 2000);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ((100_ms + 50_ms).ms(), 150);
  EXPECT_EQ((100_ms - 50_ms).ms(), 50);
  EXPECT_EQ((100_ms * 3).ms(), 300);
  EXPECT_EQ((100_ms / 4).ms(), 25);
  EXPECT_DOUBLE_EQ(200_ms / (100_ms), 2.0);
  EXPECT_EQ((100_ms * 0.5).ms(), 50);
}

TEST(Time, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(Time::infinite(), 1000000_s);
  EXPECT_TRUE(Time::zero().is_zero());
  EXPECT_TRUE(Time::infinite().is_infinite());
  EXPECT_FALSE((1_ns).is_zero());
}

TEST(Time, CompoundAssignment) {
  Time t = 10_ms;
  t += 5_ms;
  EXPECT_EQ(t.ms(), 15);
  t -= 10_ms;
  EXPECT_EQ(t.ms(), 5);
}

TEST(Time, FractionalViews) {
  EXPECT_DOUBLE_EQ((1500_us).ms_d(), 1.5);
  EXPECT_DOUBLE_EQ((250_ms).seconds_d(), 0.25);
}

TEST(Time, ToString) {
  EXPECT_EQ((5_ms).to_string(), "5ms");
  EXPECT_EQ((12_us).to_string(), "12us");
  EXPECT_EQ((7_ns).to_string(), "7ns");
  EXPECT_EQ(Time::infinite().to_string(), "inf");
}

}  // namespace
}  // namespace prr::sim
