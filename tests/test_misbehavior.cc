// Misbehaving-endpoint models (net/misbehavior.h): each pathology's wire
// transform in isolation — lying/duplicated SACK blocks, suppression
// windows, divided ACKs, duplication, adjacent reordering, receiver
// window shrinking, corrupted fields — plus determinism of the whole
// transform under a fixed Rng.
#include "net/misbehavior.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::net {
namespace {

using namespace prr::sim::literals;

Segment ack(uint64_t a, uint64_t rwnd = 65535) {
  Segment s;
  s.is_ack = true;
  s.ack = a;
  s.rwnd = rwnd;
  return s;
}

Segment sacked(uint64_t a, uint64_t s0, uint64_t e0) {
  Segment s = ack(a);
  s.sacks.push_back({s0, e0});
  return s;
}

TEST(Misbehavior, PassThroughWhenInactive) {
  sim::Simulator sim;
  std::vector<Segment> out;
  AckMisbehaver m(sim, MisbehaviorConfig{}, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(sacked(1000, 3000, 4000));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ack, 1000u);
  ASSERT_EQ(out[0].sacks.size(), 1u);
  EXPECT_EQ(out[0].sacks[0], (SackBlock{3000, 4000}));
  EXPECT_FALSE(MisbehaviorConfig{}.any_active());
}

TEST(Misbehavior, LyingSackWidensNewestBlock) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.lie_sack_probability = 1.0;
  cfg.lie_span_bytes = 500;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(sacked(1000, 3000, 4000));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sacks[0].end, 4500u);  // claims 500 undelivered bytes
  EXPECT_EQ(m.stats().sack_lies, 1u);
}

TEST(Misbehavior, DupSackRepeatsBlockWithinWireCap) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.dup_sack_probability = 1.0;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(sacked(1000, 3000, 4000));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].sacks.size(), 2u);
  EXPECT_EQ(out[0].sacks[0], out[0].sacks[1]);
  EXPECT_EQ(m.stats().sack_dups, 1u);

  // At the wire cap of 4 blocks there is no room for a duplicate.
  out.clear();
  Segment full = ack(1000);
  for (uint64_t i = 0; i < 4; ++i)
    full.sacks.push_back({3000 + i * 2000, 4000 + i * 2000});
  m.process(std::move(full));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sacks.size(), 4u);
}

TEST(Misbehavior, SuppressionStripsSacksOnlyInsideWindow) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.suppress_at = 10_ms;
  cfg.suppress_duration = 10_ms;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(sacked(1000, 3000, 4000));  // t=0: before window
  sim.run(15_ms);
  m.process(sacked(1001, 3000, 4000));  // inside window
  sim.run(25_ms);
  m.process(sacked(1002, 3000, 4000));  // after window
  sim.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].sacks.size(), 1u);
  EXPECT_EQ(out[1].sacks.size(), 0u);
  EXPECT_EQ(out[2].sacks.size(), 1u);
  EXPECT_EQ(m.stats().sacks_suppressed, 1u);
}

TEST(Misbehavior, DividedAckSplitsCumulativeAdvance) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.divide_factor = 4;
  cfg.divide_step_bytes = 1000;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(ack(1000));
  m.process(ack(4000));  // 3000-byte advance -> 1000-byte sub-acks
  sim.run();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].ack, 1000u);
  EXPECT_EQ(out[1].ack, 2000u);
  EXPECT_EQ(out[2].ack, 3000u);
  EXPECT_EQ(out[3].ack, 4000u);
  EXPECT_GT(m.stats().acks_divided, 0u);
}

TEST(Misbehavior, DuplicationEmitsExtraCopy) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.dup_ack_probability = 1.0;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(ack(1000));
  sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].ack, out[1].ack);
  EXPECT_EQ(m.stats().acks_duplicated, 1u);
}

TEST(Misbehavior, ReorderSwapsAdjacentAcks) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.reorder_probability = 1.0;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(ack(1000));  // held
  m.process(ack(2000));  // releases: 2000 first, then the held 1000
  sim.run();
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0].ack, 2000u);
  EXPECT_EQ(out[1].ack, 1000u);
  EXPECT_GT(m.stats().acks_reordered, 0u);
}

TEST(Misbehavior, ReorderFlushTimerReleasesLoneHeldAck) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.reorder_probability = 1.0;
  cfg.reorder_flush_timeout = 50_ms;
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(ack(1000));  // held, no successor ever arrives
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].ack, 1000u);
  EXPECT_GE(sim.now(), 50_ms);
}

TEST(Misbehavior, ShrinkOverwritesRwndAndNeverAdvertisesZero) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.shrink_at = sim::Time::zero();
  cfg.shrink_duration = 1_s;
  cfg.shrink_rwnd_bytes = 0;  // misconfigured: must clamp to 1
  AckMisbehaver m(sim, cfg, sim::Rng(1),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  m.process(ack(1000, 65535));
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  // rwnd 0 on the wire means "field unset" to the sender, so the
  // strongest expressible shrink is one byte.
  EXPECT_EQ(out[0].rwnd, 1u);
  EXPECT_EQ(m.stats().rwnds_shrunk, 1u);
}

TEST(Misbehavior, CorruptionMutatesAckFields) {
  sim::Simulator sim;
  std::vector<Segment> out;
  MisbehaviorConfig cfg;
  cfg.corrupt_probability = 1.0;
  AckMisbehaver m(sim, cfg, sim::Rng(7),
                  [&](Segment&& s) { out.push_back(std::move(s)); });
  const int n = 64;
  for (int i = 0; i < n; ++i) m.process(sacked(100000, 200000, 201000));
  sim.run();
  ASSERT_EQ(out.size(), static_cast<size_t>(n));
  EXPECT_EQ(m.stats().acks_corrupted, static_cast<uint64_t>(n));
  bool beyond = false, regressed = false, inverted = false;
  for (const Segment& s : out) {
    if (s.ack > 100000) beyond = true;
    if (s.ack < 100000) regressed = true;
    if (!s.sacks.empty() && s.sacks[0].start > s.sacks[0].end)
      inverted = true;
  }
  // All three corruption flavors appear across 64 uniform draws.
  EXPECT_TRUE(beyond);
  EXPECT_TRUE(regressed);
  EXPECT_TRUE(inverted);
}

TEST(Misbehavior, TransformIsDeterministicInTheRng) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    std::vector<Segment> out;
    MisbehaviorConfig cfg;
    cfg.lie_sack_probability = 0.3;
    cfg.dup_sack_probability = 0.3;
    cfg.dup_ack_probability = 0.3;
    cfg.reorder_probability = 0.3;
    cfg.corrupt_probability = 0.3;
    cfg.divide_factor = 3;
    AckMisbehaver m(sim, cfg, sim::Rng(seed),
                    [&](Segment&& s) { out.push_back(std::move(s)); });
    for (uint64_t i = 1; i <= 200; ++i)
      m.process(sacked(i * 1000, i * 1000 + 5000, i * 1000 + 6000));
    sim.run();
    return out;
  };
  std::vector<Segment> a = run(42), b = run(42), c = run(43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ack, b[i].ack);
    EXPECT_EQ(a[i].rwnd, b[i].rwnd);
    ASSERT_EQ(a[i].sacks.size(), b[i].sacks.size());
    for (size_t j = 0; j < a[i].sacks.size(); ++j)
      EXPECT_EQ(a[i].sacks[j], b[i].sacks[j]);
  }
  // A different seed draws a different transform sequence.
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].ack != c[i].ack || a[i].sacks.size() != c[i].sacks.size();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace prr::net
