// RFC 2018 §8 SACK reneging: the receiver is allowed to discard data it
// has SACKed but not yet delivered. The sender's defense (Linux's
// tcp_check_sack_reneging analogue) triggers at RTO when the head of the
// window is SACKed yet snd.una never moved over it — a state an honest
// receiver can never produce — and forgets all SACK marks so the
// discarded data becomes retransmittable again.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/invariants.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

ConnectionConfig renege_config(bool renege_recovery, sim::Time renege_at) {
  ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.sender.renege_recovery = renege_recovery;
  cfg.receiver.renege_at = renege_at;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(4), 60_ms, 100);
  return cfg;
}

// Drops segment 2 and its first retransmission, so the receiver holds
// segments 3+ out of order long enough to renege on them.
void arm_hole(Connection& conn) {
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{2},
                                               std::set<uint64_t>{1}));
}

TEST(SackReneging, SenderRecoversFromRenegingReceiver) {
  sim::Simulator sim;
  ConnectionConfig cfg = renege_config(/*renege_recovery=*/true, 150_ms);
  Connection conn(sim, cfg, sim::Rng(1));
  InvariantChecker checker(sim, conn.sender());
  arm_hole(conn);
  conn.write(30'000);
  sim.run(sim::Time::seconds(120));

  EXPECT_GT(conn.receiver().reneged_bytes(), 0u)
      << "scenario failed to make the receiver discard OOO data";
  EXPECT_TRUE(conn.sender().all_acked())
      << "renege recovery should retransmit the discarded data";
  EXPECT_FALSE(conn.sender().aborted());
  EXPECT_GE(conn.sender().local_metrics().sack_reneg_events, 1u);
  EXPECT_EQ(conn.receiver().rcv_nxt(), 30'000u);
  checker.finalize();
  for (const auto& v : checker.violations())
    ADD_FAILURE() << "[" << to_string(v.kind) << "] " << v.detail;
}

TEST(SackReneging, WithoutDefenseTheConnectionWedges) {
  sim::Simulator sim;
  ConnectionConfig cfg = renege_config(/*renege_recovery=*/false, 150_ms);
  Connection conn(sim, cfg, sim::Rng(1));
  arm_hole(conn);
  conn.write(30'000);
  sim.run(sim::Time::seconds(120));

  EXPECT_GT(conn.receiver().reneged_bytes(), 0u);
  // The sender trusts the stale SACK marks forever: the discarded bytes
  // are never retransmitted and the flow cannot complete (it wedges
  // until the RTO-backoff abort gives up on it).
  EXPECT_FALSE(conn.sender().all_acked());
  EXPECT_EQ(conn.sender().local_metrics().sack_reneg_events, 0u);
  EXPECT_LT(conn.receiver().rcv_nxt(), 30'000u);
}

TEST(SackReneging, HonestLossNeverTriggersTheDefense) {
  // Zero false positives: ordinary loss — even heavy loss with RTOs —
  // must never look like reneging, because an honest receiver never
  // leaves the head of the window SACKed across an RTO.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Simulator sim;
    ConnectionConfig cfg =
        renege_config(/*renege_recovery=*/true, sim::Time::zero());
    Connection conn(sim, cfg, sim::Rng(seed));
    net::GilbertElliottLoss::Params p;
    p.p_good_to_bad = 0.02;
    p.loss_in_bad = 0.9;
    conn.path().data_link().set_loss_model(
        std::make_unique<net::GilbertElliottLoss>(
            p, sim::Rng(seed).fork(7)));
    conn.write(100'000);
    sim.run(sim::Time::seconds(300));
    EXPECT_EQ(conn.sender().local_metrics().sack_reneg_events, 0u)
        << "seed " << seed;
  }
}

TEST(SackReneging, RenegeBeforeAnyLossIsHarmless) {
  // Reneging an empty OOO queue discards nothing and must not disturb
  // the transfer.
  sim::Simulator sim;
  ConnectionConfig cfg = renege_config(/*renege_recovery=*/true, 100_ms);
  Connection conn(sim, cfg, sim::Rng(1));
  conn.write(30'000);
  sim.run(sim::Time::seconds(60));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.receiver().reneged_bytes(), 0u);
  EXPECT_EQ(conn.sender().local_metrics().sack_reneg_events, 0u);
}

}  // namespace
}  // namespace prr::tcp
