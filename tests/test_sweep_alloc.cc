// Allocation behavior of the million-connection sweep loop: with pooled
// connection arenas and bounded stats, the warm per-connection path —
// sample_into, arena reset, the whole simulated transfer, registry fold
// — performs (amortized) no heap allocation per connection. Measured by
// differencing two sweeps of different sizes under the alloc hooks: the
// marginal connections of the larger sweep must add essentially nothing
// beyond the occasional pool growth.
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "util/alloc_counter.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

// Clean, impairment-free population: no per-connection loss/reorder
// model construction, no ACK stretching, single-request connections.
workload::WebWorkloadParams clean_params() {
  workload::WebWorkloadParams p;
  p.clean_path_fraction = 1.0;
  p.ack_loss_prob = 0.0;
  p.reorder_prob = 0.0;
  p.stretch_client_fraction = 0.0;
  p.abandon_fraction = 0.0;
  p.mean_requests_per_conn = 1.0;
  return p;
}

uint64_t allocs_during_sweep(const workload::Population& pop,
                             int connections, bool pool, bool bounded) {
  RunOptions opts;
  opts.connections = connections;
  opts.seed = 1234;
  opts.threads = 1;
  opts.pool_connections = pool;
  opts.bounded_stats = bounded;
  const util::AllocCounts before = util::alloc_counts();
  const ArmResult r = run_arm(pop, ArmConfig::prr_arm(), opts);
  const util::AllocCounts after = util::alloc_counts();
  EXPECT_EQ(r.connections_run, static_cast<uint64_t>(connections));
  return after.allocations - before.allocations;
}

TEST(SweepAlloc, WarmPooledSweepIsAllocationFreePerConnection) {
  ASSERT_TRUE(util::alloc_counting_enabled());
  workload::WebWorkload pop(clean_params());

  // Identical runs except for the extra 480 connections: the difference
  // is the marginal cost of a connection once the arena pools are warm.
  const uint64_t small =
      allocs_during_sweep(pop, 120, /*pool=*/true, /*bounded=*/true);
  const uint64_t large =
      allocs_during_sweep(pop, 600, /*pool=*/true, /*bounded=*/true);
  ASSERT_GE(large, small) << "alloc counter went backwards";
  const uint64_t marginal = large - small;

  // 480 extra connections may cost a handful of pool growths (a later
  // connection with a bigger flight or response than any before it) but
  // nothing per-connection. The bound is ~0.1 allocation/connection;
  // per-connection construction would cost tens each.
  EXPECT_LE(marginal, 48u)
      << "marginal allocations for 480 extra connections: " << marginal;
}

TEST(SweepAlloc, UnpooledSweepAllocatesPerConnection) {
  // Sanity check that the instrument measures what we think: without
  // arenas, every connection constructs a Simulator/Connection/Path from
  // scratch and the marginal cost is tens of allocations each.
  ASSERT_TRUE(util::alloc_counting_enabled());
  workload::WebWorkload pop(clean_params());
  const uint64_t small =
      allocs_during_sweep(pop, 120, /*pool=*/false, /*bounded=*/true);
  const uint64_t large =
      allocs_during_sweep(pop, 600, /*pool=*/false, /*bounded=*/true);
  ASSERT_GE(large, small);
  EXPECT_GE(large - small, 480u * 5u)
      << "unpooled sweep allocated suspiciously little — is the "
         "alloc-hook instrumentation still wired?";
}

TEST(SweepAlloc, BoundedStatsKeepMemoryFlat) {
  // In unbounded mode the latency vector grows with N; bounded mode must
  // not. (Growth allocations are amortized, so compare generously: the
  // unbounded run records ~1 response per connection here.)
  ASSERT_TRUE(util::alloc_counting_enabled());
  workload::WebWorkload pop(clean_params());
  const uint64_t bounded =
      allocs_during_sweep(pop, 600, /*pool=*/true, /*bounded=*/true);
  const uint64_t unbounded =
      allocs_during_sweep(pop, 600, /*pool=*/true, /*bounded=*/false);
  EXPECT_LE(bounded, unbounded);
}

}  // namespace
}  // namespace prr::exp
