// Sender unit tests that drive the state machine directly with hand-
// crafted ACK segments (no simulated network): window growth, limited
// transmit, RTO handling, state transitions, abort.
#include "tcp/sender.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

struct Sent {
  uint64_t seq;
  uint32_t len;
  bool retx;
};

class SenderTest : public ::testing::Test {
 protected:
  SenderTest() { make(base_config()); }

  static SenderConfig base_config() {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 10;
    cfg.cc = CcKind::kNewReno;
    cfg.recovery = RecoveryKind::kPrr;
    return cfg;
  }

  void make(SenderConfig cfg) {
    wire.clear();
    sender = std::make_unique<Sender>(
        sim, cfg,
        [this](net::Segment s) { wire.push_back({s.seq, s.len,
                                                 s.is_retransmit}); },
        &metrics, &rlog);
  }

  // Builds an ACK with optional SACK blocks.
  net::Segment ack(uint64_t cum, std::vector<net::SackBlock> sacks = {},
                   std::optional<net::SackBlock> dsack = std::nullopt) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.dsack = dsack;
    a.rwnd = 1 << 30;
    return a;
  }

  sim::Simulator sim;
  Metrics metrics;
  stats::RecoveryLog rlog;
  std::unique_ptr<Sender> sender;
  std::vector<Sent> wire;
};

TEST_F(SenderTest, InitialWindowLimitsFirstFlight) {
  sender->write(20 * kMss);
  EXPECT_EQ(wire.size(), 10u);  // IW10
  EXPECT_EQ(sender->snd_nxt(), 10 * kMss);
  EXPECT_EQ(wire[0].seq, 0u);
  EXPECT_FALSE(wire[0].retx);
}

TEST_F(SenderTest, SubMssTailIsSent) {
  sender->write(1500);
  ASSERT_EQ(wire.size(), 2u);
  EXPECT_EQ(wire[0].len, kMss);
  EXPECT_EQ(wire[1].len, 500u);
}

TEST_F(SenderTest, AckAdvancesAndClocksOutMoreData) {
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(2 * kMss));
  // Slow start: cwnd 10 -> 11; flight 8 -> sends 3 new segments.
  EXPECT_EQ(wire.size(), 3u);
  EXPECT_EQ(sender->snd_una(), 2 * kMss);
}

TEST_F(SenderTest, SlowStartDoublesPerWindowWithPerAckGrowth) {
  sender->write(100 * kMss);
  EXPECT_EQ(sender->cwnd_segments(), 10);
  for (int i = 1; i <= 10; ++i) {
    sender->on_ack_segment(ack(static_cast<uint64_t>(i) * kMss));
  }
  EXPECT_EQ(sender->cwnd_segments(), 20);
}

TEST_F(SenderTest, DupackMovesToDisorder) {
  sender->write(10 * kMss);
  sender->on_ack_segment(ack(0, {{2 * kMss, 3 * kMss}}));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
}

TEST_F(SenderTest, LimitedTransmitSendsNewDataOnFirstTwoDupacks) {
  sender->write(20 * kMss);  // 10 sent, cwnd full
  wire.clear();
  sender->on_ack_segment(ack(0, {{1 * kMss, 2 * kMss}}));
  EXPECT_EQ(wire.size(), 1u);  // limited transmit #1
  EXPECT_FALSE(wire[0].retx);
  sender->on_ack_segment(ack(0, {{1 * kMss, 3 * kMss}}));
  EXPECT_EQ(wire.size(), 2u);  // limited transmit #2
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
}

TEST_F(SenderTest, LimitedTransmitDisabled) {
  SenderConfig cfg = base_config();
  cfg.limited_transmit = false;
  cfg.use_fack = false;  // keep marking conservative for this test
  make(cfg);
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(0, {{1 * kMss, 2 * kMss}}));
  EXPECT_TRUE(wire.empty());
}

TEST_F(SenderTest, ReorderingRaisesDupthreshAndDisablesFack) {
  SenderConfig cfg = base_config();
  cfg.dupthresh = 3;
  cfg.use_fack = false;  // avoid immediate threshold retransmission
  make(cfg);
  sender->write(10 * kMss);
  // SACK of a later segment, then the earlier data arrives in order:
  // classic reordering signature.
  sender->on_ack_segment(ack(0, {{5 * kMss, 6 * kMss}}));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  sender->on_ack_segment(ack(2 * kMss));
  EXPECT_TRUE(sender->reordering_seen());
  EXPECT_FALSE(sender->fack_enabled());
  EXPECT_GE(sender->dupthresh(), 3);
}

TEST_F(SenderTest, RtoRetransmitsHeadAndCollapsesWindow) {
  sender->write(10 * kMss);
  wire.clear();
  sim.run(2_s);  // no ACKs: RTO fires (initial RTO 1 s)
  ASSERT_GE(wire.size(), 1u);
  EXPECT_TRUE(wire[0].retx);
  EXPECT_EQ(wire[0].seq, 0u);
  EXPECT_EQ(sender->state(), TcpState::kLoss);
  EXPECT_EQ(sender->cwnd_bytes(), kMss);
  EXPECT_EQ(metrics.timeouts_total, 1u + metrics.timeouts_exp_backoff);
  EXPECT_EQ(metrics.timeouts_in_open, 1u);
  EXPECT_EQ(metrics.timeout_retransmits, 1u);
}

TEST_F(SenderTest, LossStateSlowStartRetransmits) {
  sender->write(10 * kMss);
  sim.run(1100_ms);  // first RTO
  wire.clear();
  // ACK of the head retransmit: slow start grows cwnd, retransmits more.
  sender->on_ack_segment(ack(1 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kLoss);
  ASSERT_GE(wire.size(), 1u);
  EXPECT_TRUE(wire[0].retx);
  EXPECT_GT(metrics.slow_start_retransmits, 0u);
}

TEST_F(SenderTest, LossStateExitsAtRecoveryPoint) {
  sender->write(5 * kMss);
  sim.run(1100_ms);
  sender->on_ack_segment(ack(1 * kMss));
  sender->on_ack_segment(ack(3 * kMss));
  sender->on_ack_segment(ack(5 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kOpen);
  EXPECT_TRUE(sender->all_acked());
}

TEST_F(SenderTest, ExponentialBackoffCountsAndAborts) {
  SenderConfig cfg = base_config();
  cfg.max_rto_backoffs = 3;
  make(cfg);
  sender->write(5 * kMss);
  sim.run(120_s);
  EXPECT_TRUE(sender->aborted());
  EXPECT_EQ(metrics.connections_aborted, 1u);
  EXPECT_GT(metrics.timeouts_exp_backoff, 0u);
  EXPECT_GT(metrics.failed_retransmits, 0u);
}

TEST_F(SenderTest, NoTimerWhenIdle) {
  sender->write(2 * kMss);
  sender->on_ack_segment(ack(2 * kMss));
  EXPECT_TRUE(sender->all_acked());
  sim.run(10_s);  // no spurious RTO
  EXPECT_EQ(metrics.timeouts_total, 0u);
}

TEST_F(SenderTest, RwndLimitsNewData) {
  sender->write(20 * kMss);  // 10 sent (IW10), 10 waiting
  wire.clear();
  net::Segment a = ack(2 * kMss);
  a.rwnd = 9 * kMss;  // flight 8 after the ACK: room for only 1 more
  sender->on_ack_segment(a);
  EXPECT_EQ(wire.size(), 1u);
}

TEST_F(SenderTest, OldAckIgnored) {
  sender->write(5 * kMss);
  sender->on_ack_segment(ack(3 * kMss));
  wire.clear();
  sender->on_ack_segment(ack(1 * kMss));  // stale
  EXPECT_EQ(sender->snd_una(), 3 * kMss);
}

TEST_F(SenderTest, WriteAfterAbortIsIgnored) {
  SenderConfig cfg = base_config();
  cfg.max_rto_backoffs = 1;
  make(cfg);
  sender->write(2 * kMss);
  sim.run(60_s);
  ASSERT_TRUE(sender->aborted());
  wire.clear();
  sender->write(5 * kMss);
  EXPECT_TRUE(wire.empty());
}

TEST_F(SenderTest, TransmitHookSeesEverySegment) {
  int hook_count = 0;
  sender->on_transmit_hook = [&](uint64_t, uint32_t, bool) { ++hook_count; };
  sender->write(3 * kMss);
  EXPECT_EQ(hook_count, 3);
}

TEST_F(SenderTest, NetworkTransmitTimeAccumulatesBusyPeriods) {
  sender->write(2 * kMss);
  sim.schedule_in(100_ms, [&] { sender->on_ack_segment(ack(2 * kMss)); });
  sim.run(200_ms);
  EXPECT_EQ(sender->network_transmit_time().ms(), 100);
  // Idle afterwards: no more accumulation.
  sim.run(500_ms);
  EXPECT_EQ(sender->network_transmit_time().ms(), 100);
}

}  // namespace
}  // namespace prr::tcp
