// RFC 2861 congestion-window validation: app-limited connections must
// not inflate cwnd, and idle periods decay it back toward the initial
// window — both Linux defaults the paper's servers ran, and both load-
// bearing for Table 5/6 (ssthresh at recovery entry reflects a window
// the connection actually used).
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/sender.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

class WindowValidationTest : public ::testing::Test {
 protected:
  void make(bool idle_restart = true) {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.cc = CcKind::kNewReno;
    cfg.slow_start_after_idle = idle_restart;
    cfg.handshake_rtt = 100_ms;
    sender = std::make_unique<Sender>(
        sim, cfg, [](net::Segment) {}, nullptr, nullptr);
  }

  net::Segment ack(uint64_t cum) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.rwnd = 1 << 30;
    return a;
  }

  sim::Simulator sim;
  std::unique_ptr<Sender> sender;
};

TEST_F(WindowValidationTest, AppLimitedAcksDoNotGrowCwnd) {
  make();
  // A 2-segment response against a 10-segment window: the flight never
  // fills cwnd, so ACKs must not inflate it.
  sender->write(2 * kMss);
  const uint64_t before = sender->cwnd_bytes();
  sender->on_ack_segment(ack(1 * kMss));
  sender->on_ack_segment(ack(2 * kMss));
  EXPECT_EQ(sender->cwnd_bytes(), before);
}

TEST_F(WindowValidationTest, CwndLimitedAcksDoGrowCwnd) {
  make();
  sender->write(30 * kMss);  // saturates IW10
  const uint64_t before = sender->cwnd_bytes();
  sender->on_ack_segment(ack(2 * kMss));
  EXPECT_GT(sender->cwnd_bytes(), before);
}

TEST_F(WindowValidationTest, IdleRestartDecaysWindow) {
  make();
  // Grow the window with a cwnd-limited transfer.
  sender->write(40 * kMss);
  uint64_t acked = 0;
  for (int i = 0; i < 30; ++i) {
    acked += kMss;
    sender->on_ack_segment(ack(acked));
  }
  sender->on_ack_segment(ack(40 * kMss));
  const uint64_t grown = sender->cwnd_bytes();
  ASSERT_GT(grown, 15 * kMss);
  // Idle for many RTOs, then the next write halves cwnd per idle RTO
  // down to the initial window.
  sim.run(sim.now() + 30_s);
  sender->write(kMss);
  EXPECT_EQ(sender->cwnd_bytes(),
            sender->config().initial_cwnd_bytes());
}

TEST_F(WindowValidationTest, ShortIdleKeepsWindow) {
  make();
  sender->write(40 * kMss);
  uint64_t acked = 0;
  for (int i = 0; i < 30; ++i) {
    acked += kMss;
    sender->on_ack_segment(ack(acked));
  }
  sender->on_ack_segment(ack(40 * kMss));
  const uint64_t grown = sender->cwnd_bytes();
  // Idle for less than one RTO: no decay.
  sim.run(sim.now() + 100_ms);
  sender->write(kMss);
  EXPECT_EQ(sender->cwnd_bytes(), grown);
}

TEST_F(WindowValidationTest, IdleRestartCanBeDisabled) {
  make(/*idle_restart=*/false);
  sender->write(40 * kMss);
  uint64_t acked = 0;
  for (int i = 0; i < 30; ++i) {
    acked += kMss;
    sender->on_ack_segment(ack(acked));
  }
  sender->on_ack_segment(ack(40 * kMss));
  const uint64_t grown = sender->cwnd_bytes();
  sim.run(sim.now() + 30_s);
  sender->write(kMss);
  EXPECT_EQ(sender->cwnd_bytes(), grown);
}

}  // namespace
}  // namespace prr::tcp
