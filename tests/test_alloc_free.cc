// Enforces the steady-state zero-allocation invariant of the simulator
// hot path (DESIGN.md §7): once a connection's pools are warm — event
// slots, link ring queue, flight pool, scoreboard — driving further
// traffic through the ACK clock performs no heap allocation at all.
// The counters come from the operator new/delete replacements in
// util/alloc_hooks.cc, linked into this test binary.
#include <gtest/gtest.h>

#include "http/server_app.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/alloc_counter.h"

namespace prr {
namespace {

TEST(AllocFree, HooksAreLinked) {
  ASSERT_TRUE(util::alloc_counting_enabled());
  const util::AllocCounts before = util::alloc_counts();
  // Call the replaced operators directly; a new/delete *expression* pair
  // here could legally be elided by the optimizer.
  void* p = ::operator new(16);
  ::operator delete(p);
  const util::AllocCounts after = util::alloc_counts();
  EXPECT_GE(after.allocations, before.allocations + 1);
  EXPECT_GE(after.frees, before.frees + 1);
}

// Clean-path bulk transfer, receive-window limited so the flight (and
// with it every pool) reaches a fixed steady-state size during warmup.
// After warmup, a full second of simulated transfer — thousands of
// data segments, ACKs, timer rearms, and cwnd updates — must perform
// zero heap allocations and zero frees.
TEST(AllocFree, SteadyStatePerAckPathDoesNotAllocate) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10),
                                          sim::Time::milliseconds(40),
                                          /*queue_packets=*/200);
  // rwnd below the path BDP+queue: the window is receiver-limited and
  // constant, so no queue overflow ever forces a loss recovery.
  cfg.receiver.rwnd = 64 * 1024;
  tcp::Connection conn(sim, cfg, sim::Rng(5));

  std::vector<http::ResponseSpec> responses(1);
  responses[0].bytes = 5'000'000;
  http::ServerApp app(sim, conn, responses);
  app.start();

  // Warmup: slow start, pool growth, first delack/RTO timer cycles.
  sim.run(sim::Time::seconds(2));
  const uint64_t una_at_snapshot = conn.sender().snd_una();
  ASSERT_GT(una_at_snapshot, 0u) << "transfer never started";
  ASSERT_FALSE(conn.sender().all_acked()) << "transfer finished in warmup";

  const util::AllocCounts before = util::alloc_counts();
  sim.run(sim::Time::seconds(3));
  const util::AllocCounts after = util::alloc_counts();

  // The measured window must have carried real traffic.
  ASSERT_GT(conn.sender().snd_una(), una_at_snapshot);
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "steady-state per-ACK path allocated";
  EXPECT_EQ(after.frees - before.frees, 0u)
      << "steady-state per-ACK path freed";
}

// Same transfer with the full observability stack attached: flight
// recorder on the sender and fault injector, wire tap through the
// Instrument, timer tracing installed. The recorder ring is preallocated
// and write() is a masked store, so enabled tracing must also be
// allocation-free once warm (ISSUE acceptance criterion).
TEST(AllocFree, TracedSteadyStateDoesNotAllocate) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10),
                                          sim::Time::milliseconds(40),
                                          /*queue_packets=*/200);
  cfg.receiver.rwnd = 64 * 1024;
  tcp::Connection conn(sim, cfg, sim::Rng(5));

  obs::FlightRecorder recorder(4096);
  obs::Instrument instrument(sim, conn, recorder, /*conn_id=*/0);

  std::vector<http::ResponseSpec> responses(1);
  responses[0].bytes = 5'000'000;
  http::ServerApp app(sim, conn, responses);
  app.start();

  sim.run(sim::Time::seconds(2));
  const uint64_t una_at_snapshot = conn.sender().snd_una();
  const uint64_t written_at_snapshot = recorder.total_written();
  ASSERT_GT(una_at_snapshot, 0u) << "transfer never started";
  ASSERT_FALSE(conn.sender().all_acked()) << "transfer finished in warmup";

  const util::AllocCounts before = util::alloc_counts();
  sim.run(sim::Time::seconds(3));
  const util::AllocCounts after = util::alloc_counts();

  ASSERT_GT(conn.sender().snd_una(), una_at_snapshot);
  if (obs::trace_compiled_in()) {
    // The measured window must have actually traced (ACKs + wire records
    // at the very least), wrapping the ring.
    EXPECT_GT(recorder.total_written(), written_at_snapshot);
    EXPECT_GT(recorder.count(obs::TraceType::kAck), 0u);
  }
  EXPECT_EQ(after.allocations - before.allocations, 0u)
      << "traced steady-state per-ACK path allocated";
  EXPECT_EQ(after.frees - before.frees, 0u)
      << "traced steady-state per-ACK path freed";
}

}  // namespace
}  // namespace prr
