// End-to-end integration: full connections (sender + path + receiver)
// under combinations of impairments. The fundamental invariant: whatever
// the network does — bursty loss, ACK loss, stretch ACKs, reordering —
// every written byte is eventually delivered exactly once and
// acknowledged, without the simulation deadlocking.
#include <gtest/gtest.h>

#include <memory>

#include "net/loss_model.h"
#include "net/reorder_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

struct Scenario {
  const char* name;
  double data_loss = 0;          // Bernoulli on the data direction
  double burst_loss_p = 0;       // Gilbert-Elliott entry probability
  double ack_loss = 0;
  uint32_t stretch = 1;
  double reorder_prob = 0;
  RecoveryKind recovery = RecoveryKind::kPrr;
  uint64_t transfer_bytes = 200'000;
  double link_mbps = 4.0;
  int64_t rtt_ms = 80;
};

class ConnectionIntegration : public ::testing::TestWithParam<Scenario> {};

TEST_P(ConnectionIntegration, TransfersAllDataExactlyOnce) {
  const Scenario& sc = GetParam();
  sim::Simulator sim;
  sim::Rng rng(0xC0FFEE);

  ConnectionConfig cfg;
  cfg.sender.mss = 1430;
  cfg.sender.recovery = sc.recovery;
  cfg.sender.handshake_rtt = sim::Time::milliseconds(sc.rtt_ms);
  cfg.path = net::Path::Config::symmetric(
      util::DataRate::mbps(sc.link_mbps),
      sim::Time::milliseconds(sc.rtt_ms), 100);
  cfg.path.ack_mangler.ack_loss_probability = sc.ack_loss;
  cfg.path.ack_mangler.stretch_factor = sc.stretch;

  Metrics metrics;
  Connection conn(sim, cfg, rng, &metrics, nullptr);
  if (sc.data_loss > 0) {
    conn.path().data_link().set_loss_model(
        std::make_unique<net::BernoulliLoss>(sc.data_loss, rng.fork(1)));
  } else if (sc.burst_loss_p > 0) {
    net::GilbertElliottLoss::Params p;
    p.p_good_to_bad = sc.burst_loss_p;
    Connection* unused = nullptr;
    (void)unused;
    conn.path().data_link().set_loss_model(
        std::make_unique<net::GilbertElliottLoss>(p, rng.fork(2)));
  }
  if (sc.reorder_prob > 0) {
    conn.path().data_link().set_reorder_model(
        std::make_unique<net::RandomReorder>(sc.reorder_prob, 1_ms, 20_ms,
                                             rng.fork(3)));
  }

  conn.write(sc.transfer_bytes);
  sim.run(sim::Time::seconds(600));

  EXPECT_TRUE(conn.sender().all_acked()) << sc.name;
  EXPECT_FALSE(conn.sender().aborted()) << sc.name;
  // Exactly-once app-level delivery: the receiver's in-order point is
  // the full transfer.
  EXPECT_EQ(conn.receiver().rcv_nxt(), sc.transfer_bytes) << sc.name;
  // The connection went idle: no timers left, queue drained.
  EXPECT_TRUE(sim.idle()) << sc.name;
}

TEST_P(ConnectionIntegration, ForwardProgressMatchesDelivery) {
  // The paper's DeliveredData invariant at connection scope: the sum of
  // per-ACK DeliveredData must equal total forward progress. We check
  // the observable corollary: snd.una ends at write_end and retransmits
  // are bounded (sane, not pathological).
  const Scenario& sc = GetParam();
  sim::Simulator sim;
  sim::Rng rng(0xBEEF);

  ConnectionConfig cfg;
  cfg.sender.recovery = sc.recovery;
  cfg.sender.handshake_rtt = sim::Time::milliseconds(sc.rtt_ms);
  cfg.path = net::Path::Config::symmetric(
      util::DataRate::mbps(sc.link_mbps),
      sim::Time::milliseconds(sc.rtt_ms), 100);
  cfg.path.ack_mangler.ack_loss_probability = sc.ack_loss;
  cfg.path.ack_mangler.stretch_factor = sc.stretch;

  Metrics metrics;
  Connection conn(sim, cfg, rng, &metrics, nullptr);
  if (sc.data_loss > 0) {
    conn.path().data_link().set_loss_model(
        std::make_unique<net::BernoulliLoss>(sc.data_loss, rng.fork(1)));
  }
  conn.write(sc.transfer_bytes);
  sim.run(sim::Time::seconds(600));

  ASSERT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.sender().snd_una(), conn.sender().write_end());
  // Retransmissions should be within an order of magnitude of the loss
  // rate (not an avalanche of spurious ones).
  const double retx_rate =
      static_cast<double>(metrics.retransmits_total) /
      static_cast<double>(metrics.data_segments_sent);
  EXPECT_LT(retx_rate, sc.data_loss * 4 + sc.burst_loss_p * 20 + 0.04)
      << sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Impairments, ConnectionIntegration,
    ::testing::Values(
        Scenario{"clean"},
        Scenario{"light_loss", 0.01},
        Scenario{"heavy_loss", 0.05},
        Scenario{"burst_loss", 0, 0.01},
        Scenario{"ack_loss", 0.01, 0, 0.2},
        Scenario{"stretch_acks", 0.01, 0, 0, 4},
        Scenario{"reordering", 0, 0, 0, 1, 0.02},
        Scenario{"everything", 0.02, 0, 0.1, 2, 0.01},
        Scenario{"linux_loss", 0.03, 0, 0, 1, 0,
                 RecoveryKind::kLinuxRateHalving},
        Scenario{"rfc3517_loss", 0.03, 0, 0, 1, 0,
                 RecoveryKind::kRfc3517},
        Scenario{"slow_link", 0.02, 0, 0, 1, 0, RecoveryKind::kPrr,
                 100'000, 0.3, 300},
        Scenario{"fast_link", 0.01, 0, 0, 1, 0, RecoveryKind::kPrr,
                 2'000'000, 50.0, 20}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

TEST(ConnectionIntegration2, AbandonedClientAborts) {
  sim::Simulator sim;
  sim::Rng rng(1);
  ConnectionConfig cfg;
  cfg.sender.max_rto_backoffs = 4;
  cfg.sender.handshake_rtt = 50_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(2), 50_ms);
  Metrics metrics;
  Connection conn(sim, cfg, rng, &metrics, nullptr);
  conn.write(50'000);
  sim.schedule_in(120_ms, [&conn] { conn.path().kill_client(); });
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().aborted());
  EXPECT_EQ(metrics.connections_aborted, 1u);
  EXPECT_GT(metrics.failed_retransmits, 0u);
  EXPECT_TRUE(sim.idle());  // no timers leak after abort
}

TEST(ConnectionIntegration2, RecoveryLogAndMetricsConsistent) {
  sim::Simulator sim;
  sim::Rng rng(3);
  ConnectionConfig cfg;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(3), 60_ms);
  Metrics metrics;
  stats::RecoveryLog rlog;
  Connection conn(sim, cfg, rng, &metrics, &rlog);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.03, rng.fork(9)));
  conn.write(400'000);
  sim.run(sim::Time::seconds(600));
  ASSERT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(rlog.count(), metrics.fast_recovery_events);
  uint64_t event_retx = 0;
  for (const auto& e : rlog.events()) event_retx += e.retransmits;
  EXPECT_EQ(event_retx, metrics.fast_retransmits);
  // Connection-local counters equal the shared ones for a single conn.
  EXPECT_EQ(conn.sender().local_metrics().retransmits_total,
            metrics.retransmits_total);
}

TEST(ConnectionIntegration2, DelayedAckReceiverStillCompletes) {
  sim::Simulator sim;
  sim::Rng rng(4);
  ConnectionConfig cfg;
  cfg.receiver.ack_every = 2;
  cfg.receiver.delack_timeout = 200_ms;  // sluggish client
  cfg.sender.handshake_rtt = 40_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(2), 40_ms);
  Connection conn(sim, cfg, rng, nullptr, nullptr);
  conn.write(1430);  // single segment: only the delack timer ACKs it
  sim.run(sim::Time::seconds(10));
  EXPECT_TRUE(conn.sender().all_acked());
}

TEST(ConnectionIntegration2, SmallReceiveWindowLimitsButCompletes) {
  sim::Simulator sim;
  sim::Rng rng(5);
  ConnectionConfig cfg;
  cfg.receiver.rwnd = 5 * 1430;
  cfg.sender.handshake_rtt = 40_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10), 40_ms);
  Connection conn(sim, cfg, rng, nullptr, nullptr);
  conn.write(100 * 1430);

  // Once the first ACK advertises the window, flight stays within it.
  uint64_t max_flight_after_learning = 0;
  bool learned = false;
  conn.sender().on_una_advance_hook = [&](uint64_t una) {
    // Skip while the pre-learning initial burst (IW10, sent before any
    // window advertisement arrived) is still draining.
    if (una < 10u * 1430u) return;
    learned = true;
    max_flight_after_learning =
        std::max(max_flight_after_learning,
                 conn.sender().snd_nxt() - conn.sender().snd_una());
  };
  sim.run(sim::Time::seconds(60));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(learned);
  EXPECT_LE(max_flight_after_learning, 5u * 1430u);
}

}  // namespace
}  // namespace prr::tcp
