// The max_rto_backoffs abort path, end to end through the experiment
// harness: an abandoned client drives the sender through consecutive RTO
// backoffs into abort_connection(), and everything downstream must stay
// consistent — aborted counts in metrics and outcomes, episode tables
// that still reconcile, invariant checks (including the finalize-time
// timer-leak check) clean, and no torture-oracle false positives (a dead
// path is not "no forward progress").
#include <gtest/gtest.h>

#include "exp/experiment.h"
#include "tcp/invariants.h"
#include "workload/population.h"

namespace prr::exp {
namespace {

using namespace prr::sim::literals;

// Connection 0 is abandoned mid-transfer (ACKs stop forever); the rest
// are clean short transfers.
class OneAbandons final : public workload::Population {
 public:
  explicit OneAbandons(uint64_t seed) : seed_(seed) {}
  workload::ConnectionSample sample(sim::Rng rng) const override {
    workload::ConnectionSample s;
    http::ResponseSpec r;
    r.bytes = 200 * 1430;
    s.responses = {r};
    // Identify the connection by matching its rng against each id's
    // canonical derivation (the harness hands sample() the fork of
    // (seed, id); id 0's draw equals this reference value).
    if (rng.uniform_int(0, 1u << 30) ==
        sim::Rng(seed_).fork(0).fork(100).uniform_int(0, 1u << 30)) {
      s.client_abandons = true;
      s.abandon_after = 300_ms;
    }
    return s;
  }

 private:
  uint64_t seed_;
};

RunOptions abort_options(uint64_t seed) {
  RunOptions opts;
  opts.connections = 6;
  opts.seed = seed;
  opts.per_connection_limit = sim::Time::seconds(600);
  opts.check_invariants = true;
  opts.torture_oracles = true;
  opts.collect_outcomes = true;
  opts.collect_episodes = true;
  return opts;
}

TEST(AbortAccounting, AbandonedClientAbortsAndAccountsConsistently) {
  const uint64_t seed = 7;
  OneAbandons pop(seed);
  ArmConfig arm = ArmConfig::prr_arm();
  arm.max_rto_backoffs = 4;  // abort quickly
  ArmResult res = run_arm(pop, arm, abort_options(seed));

  EXPECT_EQ(res.connections_run, 6u);
  ASSERT_EQ(res.outcomes.size(), 6u);
  EXPECT_EQ(res.metrics.connections_aborted, 1u);

  int aborted = 0, finished = 0;
  for (const ConnOutcome& o : res.outcomes) {
    if (o.aborted) {
      ++aborted;
      EXPECT_FALSE(o.all_acked);
      EXPECT_LT(o.delivered_bytes, o.expected_bytes);
    } else {
      ++finished;
      EXPECT_TRUE(o.all_acked);
      EXPECT_TRUE(o.app_finished);
      EXPECT_EQ(o.delivered_bytes, o.expected_bytes);
    }
  }
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(finished, 5);

  // The abort path must be invariant-clean: no violations, no quarantine
  // records, and — via the finalize() check — no loss timer left armed
  // on the aborted connection. A dead path must not trip the progress
  // watchdog either (it only flags stalls while the path is up).
  EXPECT_EQ(res.invariant_violations, 0u) << [&] {
    std::string all;
    for (const auto& q : res.quarantined)
      for (const auto& v : q.violations)
        all += std::string(tcp::to_string(v.kind)) + ": " + v.detail + "\n";
    return all;
  }();
  EXPECT_TRUE(res.quarantined.empty());
  EXPECT_GT(res.acks_checked, 0u);
}

TEST(AbortAccounting, EpisodeTableStillReconcilesWithAnAbortedConnection) {
  const uint64_t seed = 7;
  OneAbandons pop(seed);
  ArmConfig arm = ArmConfig::prr_arm();
  arm.max_rto_backoffs = 4;
  ArmResult res = run_arm(pop, arm, abort_options(seed));

  // Episodes cut short by the abort are still closed out, the table's
  // stream counters mirror the sender's own metrics exactly, and every
  // row is well-formed.
  EXPECT_EQ(res.episodes.stream().timeouts_total, res.metrics.timeouts_total);
  EXPECT_EQ(res.episodes.stream().retransmits_total,
            res.metrics.retransmits_total);
  EXPECT_EQ(res.episodes.total(),
            static_cast<std::size_t>(res.metrics.fast_recovery_events));
  for (const auto& row : res.episodes.rows()) {
    EXPECT_GE(row.end_ns, row.start_ns);
  }
}

TEST(AbortAccounting, BackoffCapIsExact) {
  // Lowering the cap aborts strictly earlier (fewer RTO backoffs paid),
  // and raising it far enough lets the 600 s limit cut the flow off
  // instead (no abort at all).
  const uint64_t seed = 7;
  OneAbandons pop(seed);

  ArmConfig tight = ArmConfig::prr_arm();
  tight.max_rto_backoffs = 2;
  ArmResult r_tight = run_arm(pop, tight, abort_options(seed));

  ArmConfig loose = ArmConfig::prr_arm();
  loose.max_rto_backoffs = 1000;
  ArmResult r_loose = run_arm(pop, loose, abort_options(seed));

  EXPECT_EQ(r_tight.metrics.connections_aborted, 1u);
  EXPECT_EQ(r_loose.metrics.connections_aborted, 0u);
  EXPECT_LT(r_tight.metrics.timeouts_total, r_loose.metrics.timeouts_total);
  // Even without the abort, the stuck connection must not leak timers or
  // trip oracles when the time limit truncates it.
  EXPECT_EQ(r_loose.invariant_violations, 0u);
}

TEST(AbortAccounting, OutcomesAreThreadInvariant) {
  const uint64_t seed = 7;
  OneAbandons pop(seed);
  ArmConfig arm = ArmConfig::prr_arm();
  arm.max_rto_backoffs = 4;
  RunOptions o1 = abort_options(seed), o4 = abort_options(seed);
  o1.threads = 1;
  o4.threads = 4;
  ArmResult a = run_arm(pop, arm, o1);
  ArmResult b = run_arm(pop, arm, o4);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].aborted, b.outcomes[i].aborted);
    EXPECT_EQ(a.outcomes[i].all_acked, b.outcomes[i].all_acked);
    EXPECT_EQ(a.outcomes[i].delivered_bytes, b.outcomes[i].delivered_bytes);
  }
  EXPECT_EQ(a.metrics.connections_aborted, b.metrics.connections_aborted);
}

}  // namespace
}  // namespace prr::exp
