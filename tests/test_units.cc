#include "util/units.h"

#include <gtest/gtest.h>

namespace prr::util {
namespace {

TEST(DataRate, Constructors) {
  EXPECT_EQ(DataRate::bps(1000).bits_per_second(), 1000);
  EXPECT_EQ(DataRate::kbps(64).bits_per_second(), 64'000);
  EXPECT_EQ(DataRate::mbps(1.2).bits_per_second(), 1'200'000);
  EXPECT_EQ(DataRate::gbps(1).bits_per_second(), 1'000'000'000);
}

TEST(DataRate, TransmitTimeExact) {
  // 1040 bytes at 1.2 Mbps = 8320 bits / 1.2e6 bps = 6.9333... ms.
  const auto t = DataRate::mbps(1.2).transmit_time(1040);
  EXPECT_NEAR(t.ms_d(), 6.93333, 0.0001);
}

TEST(DataRate, TransmitTimeSmallAndLarge) {
  EXPECT_EQ(DataRate::mbps(8).transmit_time(1).us(), 1);  // 8 bits at 8 Mbps
  // 1 GB at 1 Gbps = 8 seconds.
  const auto t = DataRate::gbps(1).transmit_time(1'000'000'000);
  EXPECT_EQ(t.ms(), 8000);
}

TEST(DataRate, TransmitTimeMonotoneInSize) {
  const auto r = DataRate::mbps(1.9);
  EXPECT_LT(r.transmit_time(100), r.transmit_time(200));
  EXPECT_LT(r.transmit_time(1000), r.transmit_time(1001));
}

TEST(DataRate, Comparisons) {
  EXPECT_LT(DataRate::kbps(500), DataRate::mbps(1));
  EXPECT_EQ(DataRate::kbps(1000), DataRate::mbps(1));
  EXPECT_TRUE(DataRate().is_zero());
}

TEST(DataRate, MbpsView) {
  EXPECT_DOUBLE_EQ(DataRate::mbps(1.9).mbps_d(), 1.9);
}

}  // namespace
}  // namespace prr::util
