// Corpus regression: every minimized repro checked into tests/corpus/
// must keep reproducing its recorded failure signature, and must do so
// identically on repeated runs (the replay path is deterministic). New
// campaign findings get minimized by the shrinker and added here; a
// repro that stops reproducing means either the bug was fixed (delete
// it) or the replay pipeline broke (fix that).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "torture/repro.h"

namespace prr::torture {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(PRR_CORPUS_DIR)) {
    if (entry.path().extension() == ".repro")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(TortureCorpus, IsNotEmpty) {
  EXPECT_FALSE(corpus_files().empty())
      << "no .repro files under " << PRR_CORPUS_DIR;
}

TEST(TortureCorpus, EveryReproReproducesItsSignature) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    ReproCase c;
    std::string err;
    ASSERT_TRUE(load_repro(path, c, &err)) << err;
    ASSERT_FALSE(c.expect.empty()) << "corpus case without a signature";
    exp::ReplayResult r = run_repro(c);
    EXPECT_TRUE(repro_reproduced(c, r)) << [&] {
      std::string got = "replay saw: all_acked=" +
                        std::to_string(r.all_acked) +
                        " aborted=" + std::to_string(r.aborted);
      for (const auto& v : r.violations)
        got += std::string("\n  [") + tcp::to_string(v.kind) + "] " +
               v.detail;
      return got;
    }();
  }
}

TEST(TortureCorpus, ReplayIsDeterministic) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    ReproCase c;
    std::string err;
    ASSERT_TRUE(load_repro(path, c, &err)) << err;
    exp::ReplayResult a = run_repro(c);
    exp::ReplayResult b = run_repro(c);
    ASSERT_EQ(a.violations.size(), b.violations.size());
    for (size_t i = 0; i < a.violations.size(); ++i) {
      EXPECT_EQ(a.violations[i].kind, b.violations[i].kind);
      EXPECT_EQ(a.violations[i].at.ns(), b.violations[i].at.ns());
      EXPECT_EQ(a.violations[i].detail, b.violations[i].detail);
    }
    EXPECT_EQ(a.all_acked, b.all_acked);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.acks_checked, b.acks_checked);
  }
}

TEST(TortureCorpus, FilesRoundTripByteExactly) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    ReproCase c;
    std::string err;
    ASSERT_TRUE(load_repro(path, c, &err)) << err;
    ReproCase back;
    ASSERT_TRUE(from_text(to_text(c), back, &err)) << err;
    EXPECT_EQ(to_text(back), to_text(c));
  }
}

}  // namespace
}  // namespace prr::torture
