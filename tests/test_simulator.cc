#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace prr::sim {
namespace {

using namespace prr::sim::literals;

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now().ns(), 0);
  Time seen = Time::zero();
  sim.schedule_in(50_ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ms(), 50);
  EXPECT_EQ(sim.now().ms(), 50);
}

TEST(Simulator, RelativeSchedulingCompounds) {
  Simulator sim;
  Time second = Time::zero();
  sim.schedule_in(10_ms, [&] {
    sim.schedule_in(10_ms, [&] { second = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(second.ms(), 20);
}

TEST(Simulator, DeadlineStopsExecution) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(10_ms, [&] { ++fired; });
  sim.schedule_in(100_ms, [&] { ++fired; });
  sim.run(50_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ms(), 50);  // clock advanced to the deadline
  sim.run(200_ms);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_in(10_ms, [&] {
    Time fired_at = Time::infinite();
    sim.schedule_in(Time::milliseconds(-5), [&] { fired_at = sim.now(); });
    (void)fired_at;
  });
  sim.run();
  EXPECT_EQ(sim.now().ms(), 10);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1_ms, [&] { ++fired; });
  sim.schedule_in(2_ms, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(Time::milliseconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Timer, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.start(25_ms);
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry().ms(), 25);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, StopCancels) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.start(25_ms);
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RestartSupersedes) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.start(25_ms);
  t.start(50_ms);  // re-arm: only the later expiry fires
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ms(), 50);
}

TEST(Timer, CanRearmFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {
    if (++fired < 3) t.start(10_ms);
  });
  t.start(10_ms);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now().ms(), 30);
}

}  // namespace
}  // namespace prr::sim
