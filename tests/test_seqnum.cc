#include "tcp/seqnum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace prr::tcp {
namespace {

TEST(SeqNum, BasicOrdering) {
  SeqNum a(100), b(200);
  EXPECT_TRUE(seq_lt(a, b));
  EXPECT_TRUE(seq_leq(a, b));
  EXPECT_TRUE(seq_gt(b, a));
  EXPECT_TRUE(seq_geq(a, a));
  EXPECT_FALSE(seq_lt(a, a));
}

TEST(SeqNum, WrapAroundOrdering) {
  // 0xFFFFFFF0 precedes 0x10 across the wrap.
  SeqNum hi(0xFFFFFFF0u), lo(0x10u);
  EXPECT_TRUE(seq_lt(hi, lo));
  EXPECT_TRUE(seq_gt(lo, hi));
}

TEST(SeqNum, SignedDistance) {
  SeqNum a(0xFFFFFFF0u), b(0x10u);
  EXPECT_EQ(b - a, 0x20);
  EXPECT_EQ(a - b, -0x20);
}

TEST(SeqNum, AdditionWraps) {
  SeqNum a(0xFFFFFFFFu);
  EXPECT_EQ((a + 1).value(), 0u);
  EXPECT_EQ((a + 2).value(), 1u);
  SeqNum b(0);
  EXPECT_EQ((b - 1u).value(), 0xFFFFFFFFu);
}

TEST(SeqNum, InWindow) {
  SeqNum lo(1000);
  EXPECT_TRUE(SeqNum(1000).in_window(lo, 100));
  EXPECT_TRUE(SeqNum(1099).in_window(lo, 100));
  EXPECT_FALSE(SeqNum(1100).in_window(lo, 100));
  EXPECT_FALSE(SeqNum(999).in_window(lo, 100));
}

TEST(SeqNum, InWindowAcrossWrap) {
  SeqNum lo(0xFFFFFFF0u);
  EXPECT_TRUE(SeqNum(0xFFFFFFF5u).in_window(lo, 0x20));
  EXPECT_TRUE(SeqNum(0x5u).in_window(lo, 0x20));
  EXPECT_FALSE(SeqNum(0x10u).in_window(lo, 0x20));
}

TEST(SeqNum, FromU64Truncates) {
  const uint64_t big = 0x1'0000'1234ull;
  EXPECT_EQ(SeqNum::from_u64(big).value(), 0x1234u);
}

TEST(SeqNum, CompoundAdd) {
  SeqNum a(10);
  a += 5;
  EXPECT_EQ(a.value(), 15u);
}

// Property sweep: for any base and forward offset < 2^31, ordering holds.
class SeqNumWrapProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SeqNumWrapProperty, ForwardOffsetsCompareGreater) {
  const SeqNum base(GetParam());
  for (uint32_t off : {1u, 100u, 0xFFFFu, 0x7FFFFFFEu}) {
    SeqNum fwd = base + off;
    EXPECT_TRUE(seq_gt(fwd, base)) << GetParam() << "+" << off;
    EXPECT_TRUE(seq_lt(base, fwd));
    EXPECT_EQ(fwd - base, static_cast<int32_t>(off));
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, SeqNumWrapProperty,
                         ::testing::Values(0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                           0xFFFFFFFFu, 0xDEADBEEFu));

}  // namespace
}  // namespace prr::tcp
