// Cross-congestion-control properties: the paper's §4 claim that "both
// parts of the PRR algorithm are independent of the congestion control
// algorithm (CUBIC, New Reno, GAIMD etc.)". For every CC x recovery
// combination, a lossy transfer completes, and for PRR the exit window
// equals whatever ssthresh that CC chose.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

struct Combo {
  CcKind cc;
  RecoveryKind recovery;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string cc = info.param.cc == CcKind::kNewReno ? "NewReno"
                   : info.param.cc == CcKind::kCubic ? "Cubic"
                                                     : "Gaimd";
  std::string rec =
      info.param.recovery == RecoveryKind::kPrr ? "Prr"
      : info.param.recovery == RecoveryKind::kRfc3517 ? "Rfc3517"
                                                      : "Linux";
  return cc + "_" + rec;
}

class CrossCcTest : public ::testing::TestWithParam<Combo> {};

TEST_P(CrossCcTest, LossyTransferCompletes) {
  const Combo combo = GetParam();
  sim::Simulator sim;
  ConnectionConfig cfg;
  cfg.sender.cc = combo.cc;
  cfg.sender.recovery = combo.recovery;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(6), 60_ms, 150);
  Metrics m;
  Connection conn(sim, cfg, sim::Rng(21), &m, nullptr);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.03, sim::Rng(22)));
  conn.write(500'000);
  sim.run(sim::Time::seconds(600));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(conn.receiver().rcv_nxt(), 500'000u);
  EXPECT_GT(m.fast_recovery_events, 0u);
}

TEST_P(CrossCcTest, PrrExitsAtWhateverSsthreshTheCcChose) {
  const Combo combo = GetParam();
  if (combo.recovery != RecoveryKind::kPrr) GTEST_SKIP();
  sim::Simulator sim;
  ConnectionConfig cfg;
  cfg.sender.cc = combo.cc;
  cfg.sender.recovery = combo.recovery;
  cfg.sender.handshake_rtt = 60_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(6), 60_ms, 150);
  stats::RecoveryLog rlog;
  Connection conn(sim, cfg, sim::Rng(23), nullptr, &rlog);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.02, sim::Rng(24)));
  conn.write(800'000);
  sim.run(sim::Time::seconds(600));
  ASSERT_TRUE(conn.sender().all_acked());
  int checked = 0;
  for (const auto& e : rlog.events()) {
    if (!e.completed || e.interrupted_by_timeout) continue;
    // With continuous data available, PRR's exit window is the CC's
    // target (within one MSS of quantization).
    EXPECT_LE(e.cwnd_after_exit, e.ssthresh + 1430) << combo_name(
        {GetParam(), 0});
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossCcTest,
    ::testing::Values(Combo{CcKind::kNewReno, RecoveryKind::kPrr},
                      Combo{CcKind::kNewReno, RecoveryKind::kRfc3517},
                      Combo{CcKind::kNewReno,
                            RecoveryKind::kLinuxRateHalving},
                      Combo{CcKind::kCubic, RecoveryKind::kPrr},
                      Combo{CcKind::kCubic, RecoveryKind::kRfc3517},
                      Combo{CcKind::kCubic,
                            RecoveryKind::kLinuxRateHalving},
                      Combo{CcKind::kGaimd, RecoveryKind::kPrr},
                      Combo{CcKind::kGaimd, RecoveryKind::kRfc3517},
                      Combo{CcKind::kGaimd,
                            RecoveryKind::kLinuxRateHalving}),
    combo_name);

// The CUBIC ratio example from §4: with a 30% reduction the proportional
// part spaces "seven new segments for every ten incoming ACKs" — checked
// end to end with CUBIC as the CC.
TEST(CubicPrrIntegration, ProportionalRatioRoughlySevenOfTen) {
  sim::Simulator sim;
  ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.cc = CcKind::kCubic;
  cfg.sender.recovery = RecoveryKind::kPrr;
  cfg.sender.initial_cwnd_segments = 30;
  cfg.sender.handshake_rtt = 100_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(2.4),
                                          100_ms, 300);
  stats::RecoveryLog rlog;
  Connection conn(sim, cfg, sim::Rng(31), nullptr, &rlog);
  // Drop exactly one early segment from a 30-segment window.
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{2}));
  conn.write(30'000);
  conn.write(0);
  sim.run(sim::Time::seconds(30));
  ASSERT_TRUE(conn.sender().all_acked());
  ASSERT_EQ(rlog.count(), 1u);
  const auto& e = rlog.events()[0];
  // CUBIC: ssthresh = 0.7 * cwnd at entry.
  EXPECT_NEAR(static_cast<double>(e.ssthresh) /
                  static_cast<double>(e.cwnd_at_start),
              0.7, 0.02);
  EXPECT_TRUE(e.completed);
  EXPECT_EQ(e.cwnd_after_exit, e.ssthresh);
}

}  // namespace
}  // namespace prr::tcp
