#include "tcp/cc/congestion_control.h"

#include <gtest/gtest.h>

#include "tcp/cc/binomial.h"
#include "tcp/cc/cubic.h"
#include "tcp/cc/gaimd.h"
#include "tcp/cc/newreno.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

TEST(NewRenoCc, SsthreshIsHalf) {
  NewReno cc(kMss);
  EXPECT_EQ(cc.ssthresh_after_loss(20 * kMss), 10 * kMss);
}

TEST(NewRenoCc, SsthreshFloorTwoMss) {
  NewReno cc(kMss);
  EXPECT_EQ(cc.ssthresh_after_loss(3 * kMss), 2 * kMss);
}

TEST(NewRenoCc, SlowStartGrowsByAckedCappedAtMss) {
  NewReno cc(kMss);
  EXPECT_EQ(cc.on_ack(4 * kMss, 100 * kMss, kMss, 0_ms), 5 * kMss);
  // Stretch ACK of 3 MSS still grows by at most 1 MSS per ACK (L=1).
  EXPECT_EQ(cc.on_ack(4 * kMss, 100 * kMss, 3 * kMss, 0_ms), 5 * kMss);
}

TEST(NewRenoCc, CongestionAvoidanceOneMssPerWindow) {
  NewReno cc(kMss);
  uint64_t cwnd = 10 * kMss;
  // One full window of ACKed data -> +1 MSS.
  for (int i = 0; i < 10; ++i) cwnd = cc.on_ack(cwnd, kMss, kMss, 0_ms);
  EXPECT_EQ(cwnd, 11 * kMss);
}

TEST(CubicCc, SsthreshIsSeventyPercent) {
  Cubic cc(kMss);
  EXPECT_EQ(cc.ssthresh_after_loss(20 * kMss), 14 * kMss);
}

TEST(CubicCc, SlowStartBelowSsthresh) {
  Cubic cc(kMss);
  EXPECT_EQ(cc.on_ack(4 * kMss, 10 * kMss, kMss, 0_ms), 5 * kMss);
}

TEST(CubicCc, GrowsBackTowardWmaxAfterReduction) {
  Cubic cc(kMss);
  uint64_t cwnd = 100 * kMss;
  const uint64_t ssthresh = cc.ssthresh_after_loss(cwnd);
  cwnd = ssthresh;  // after recovery
  // Feed ACKs over simulated time: the cubic function climbs back toward
  // w_max = 100 segments around t = K.
  sim::Time t = 0_ms;
  for (int i = 0; i < 3000; ++i) {
    t += 10_ms;
    cwnd = cc.on_ack(cwnd, ssthresh, kMss, t);
  }
  EXPECT_GT(cwnd, 95 * kMss);   // recovered most of the window
}

TEST(CubicCc, ConcaveThenConvex) {
  // Growth rate should slow near w_max (concave), then accelerate past it
  // (convex) — the defining CUBIC shape.
  Cubic cc(kMss);
  uint64_t cwnd = 50 * kMss;
  const uint64_t ssthresh = cc.ssthresh_after_loss(cwnd);
  cwnd = ssthresh;
  sim::Time t = 0_ms;
  std::vector<uint64_t> samples;
  for (int i = 0; i < 6000; ++i) {
    t += 10_ms;
    cwnd = cc.on_ack(cwnd, ssthresh, kMss, t);
    if (i % 1000 == 999) samples.push_back(cwnd);
  }
  // Monotone non-decreasing throughout.
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i], samples[i - 1]);
  EXPECT_GT(samples.back(), 50 * kMss);  // grows past w_max eventually
}

TEST(CubicCc, TimeoutResetsEpoch) {
  Cubic cc(kMss);
  cc.ssthresh_after_loss(100 * kMss);
  cc.on_timeout(1_s);
  // After a timeout the epoch restarts; growth resumes from scratch.
  const uint64_t cwnd = cc.on_ack(10 * kMss, 5 * kMss, kMss, 2_s);
  EXPECT_GE(cwnd, 10 * kMss);
  EXPECT_LT(cwnd, 12 * kMss);
}

TEST(GaimdCc, BetaControlsReduction) {
  Gaimd g7(kMss, 1.0, 0.7);
  EXPECT_EQ(g7.ssthresh_after_loss(10 * kMss), 7 * kMss);
  Gaimd g5(kMss, 1.0, 0.5);
  EXPECT_EQ(g5.ssthresh_after_loss(10 * kMss), 5 * kMss);
}

TEST(GaimdCc, AlphaControlsIncrease) {
  Gaimd cc(kMss, 2.0, 0.5);
  uint64_t cwnd = 10 * kMss;
  for (int i = 0; i < 10; ++i) cwnd = cc.on_ack(cwnd, kMss, kMss, 0_ms);
  EXPECT_EQ(cwnd, 12 * kMss);  // alpha = 2 segments per window
}

TEST(GaimdCc, FloorTwoMss) {
  Gaimd cc(kMss, 1.0, 0.1);
  EXPECT_EQ(cc.ssthresh_after_loss(5 * kMss), 2 * kMss);
}

TEST(BinomialCc, IiadDecreaseIsOneSegment) {
  // IIAD (k=1, l=0): decrease w -= beta * w^0 = 1 segment per event.
  Binomial cc(kMss, 1.0, 0.0, 1.0, 1.0);
  EXPECT_EQ(cc.ssthresh_after_loss(20 * kMss), 19 * kMss);
}

TEST(BinomialCc, SqrtDecreaseScalesWithRootOfWindow) {
  Binomial cc(kMss, 0.5, 0.5, 1.0, 1.0);
  // w = 25: decrease = sqrt(25) = 5 -> ssthresh 20.
  EXPECT_EQ(cc.ssthresh_after_loss(25 * kMss), 20 * kMss);
}

TEST(BinomialCc, AimdPointRecoversClassicBehaviour) {
  Binomial cc(kMss, 0.0, 1.0, 1.0, 0.5);
  EXPECT_EQ(cc.ssthresh_after_loss(20 * kMss), 10 * kMss);
}

TEST(BinomialCc, IiadIncreaseSlowsWithWindow) {
  // IIAD increase: alpha / w per RTT — at w = 10 a full window of ACKs
  // nets 1/10th of a segment, so ten windows' worth are needed per MSS.
  Binomial cc(kMss, 1.0, 0.0, 1.0, 1.0);
  uint64_t cwnd = 10 * kMss;
  int acks = 0;
  while (cwnd == 10 * kMss && acks < 2000) {
    cwnd = cc.on_ack(cwnd, kMss, kMss, sim::Time::zero());
    ++acks;
  }
  EXPECT_EQ(cwnd, 11 * kMss);
  EXPECT_NEAR(acks, 100, 5);  // ~w^2/alpha ACKs for one segment
}

TEST(BinomialCc, SlowStartBelowSsthresh) {
  Binomial cc(kMss);
  EXPECT_EQ(cc.on_ack(4 * kMss, 10 * kMss, kMss, sim::Time::zero()),
            5 * kMss);
}

TEST(BinomialCc, FloorAtTwoSegments) {
  Binomial cc(kMss, 0.0, 1.0, 1.0, 0.9);  // drastic decrease
  EXPECT_EQ(cc.ssthresh_after_loss(2 * kMss), 2 * kMss);
}

TEST(CcFactory, MakesEachKind) {
  EXPECT_EQ(make_congestion_control(CcKind::kNewReno, kMss)->name(),
            "newreno");
  EXPECT_EQ(make_congestion_control(CcKind::kCubic, kMss)->name(), "cubic");
  EXPECT_EQ(make_congestion_control(CcKind::kGaimd, kMss)->name(), "gaimd");
  EXPECT_EQ(make_congestion_control(CcKind::kBinomial, kMss)->name(),
            "binomial");
}

}  // namespace
}  // namespace prr::tcp
