// CRN-aligned trace diffing (obs/trace_diff.h). The load-bearing test
// is the hand-checked scenario: the same single-loss connection driven
// identically under PRR and RFC 3517 must produce identical record
// streams up to recovery entry, and the first divergence must be the
// retransmission the entry ACK forces — PRR sends it under a smoothly
// reduced cwnd while RFC 3517 has already slammed cwnd to ssthresh.
// That is the paper's Figure 1 story located to a single record.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace_diff.h"
#include "tcp/sender.h"

namespace prr::obs {
namespace {

constexpr uint32_t kMss = 1000;

// One sender driven through a fixed ACK script, with every trace record
// captured through a listener.
class ScriptedArm {
 public:
  explicit ScriptedArm(tcp::RecoveryKind kind) {
    tcp::SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 20;
    cfg.cc = tcp::CcKind::kNewReno;
    cfg.recovery = kind;
    sender_ = std::make_unique<tcp::Sender>(
        sim_, cfg, [](net::Segment) {}, &metrics_, &rlog_);
    recorder_ = std::make_unique<FlightRecorder>(1u << 12);
    recorder_->add_listener(
        [this](const TraceRecord& r) { records_.push_back(r); });
    sender_->set_recorder(recorder_.get(), /*conn_id=*/1);
  }

  void ack(uint64_t cum, std::vector<net::SackBlock> sacks = {}) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.rwnd = 1 << 30;
    sender_->on_ack_segment(a);
  }

  // 20 segments out, segment 0 lost, dupacks to recovery entry, more
  // dupacks for the ACK clock, then the completing cumulative ACK.
  void run_single_loss_script() {
    sender_->write(20 * kMss);
    for (int i = 0; i < 3; ++i) {
      ack(0, {{kMss, static_cast<uint64_t>(i + 2) * kMss}});
    }
    for (int i = 4; i < 19; ++i) {
      ack(0, {{kMss, static_cast<uint64_t>(i + 1) * kMss}});
    }
    ack(20 * kMss);
  }

  tcp::Sender& sender() { return *sender_; }
  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  // The sender is declared last: its destructor cancels pending timers,
  // which traces through the recorder into records_, so it must be
  // destroyed before either of them.
  sim::Simulator sim_;
  tcp::Metrics metrics_;
  stats::RecoveryLog rlog_;
  std::vector<TraceRecord> records_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<tcp::Sender> sender_;
};

class TraceDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace_compiled_in()) {
      GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
    }
  }
};

TEST_F(TraceDiffTest, SingleLossPrrVsRfc3517DivergesAtEntryRetransmit) {
  ScriptedArm prr(tcp::RecoveryKind::kPrr);
  ScriptedArm rfc(tcp::RecoveryKind::kRfc3517);
  prr.run_single_loss_script();
  rfc.run_single_loss_script();
  ASSERT_EQ(prr.sender().state(), tcp::TcpState::kOpen);
  ASSERT_EQ(rfc.sender().state(), tcp::TcpState::kOpen);

  const DivergencePoint d =
      first_divergence(prr.records(), rfc.records());
  ASSERT_TRUE(d.diverged);
  ASSERT_FALSE(d.a_ended);
  ASSERT_FALSE(d.b_ended);

  // Hand-checked divergence: the fast retransmit of the lost segment 0,
  // forced by the entry ACK. Both arms send it — same seq, same length,
  // both marked retransmissions — but under different windows:
  //   NewReno halves cwnd: 20 segs -> ssthresh = 10 * kMss.
  //   RFC 3517 sets cwnd = ssthresh at entry, so its retransmit is
  //   recorded at cwnd == 10000.
  //   PRR leaves cwnd near the prior 20000 and decays it per ACK, so
  //   its retransmit is recorded at cwnd > ssthresh.
  EXPECT_EQ(d.a.type, TraceType::kTransmit);
  EXPECT_EQ(d.b.type, TraceType::kTransmit);
  EXPECT_EQ(d.a.a, 1u) << "PRR record must be a retransmission";
  EXPECT_EQ(d.b.a, 1u) << "RFC 3517 record must be a retransmission";
  EXPECT_EQ(d.a.f[0], 0u) << "retransmit of the lost first segment";
  EXPECT_EQ(d.b.f[0], 0u);
  EXPECT_EQ(d.a.f[1], kMss);
  EXPECT_EQ(d.b.f[1], kMss);
  EXPECT_EQ(d.b.f[2], 10 * kMss) << "RFC 3517 cwnd == ssthresh at entry";
  EXPECT_GT(d.a.f[2], 10 * kMss) << "PRR cwnd still above ssthresh";

  // Everything before that — initial window, dupacks, the recovery
  // entry itself — is identical under both arms, and the common prefix
  // ends on the entry record with the SAME reduction target.
  ASSERT_FALSE(d.common.empty());
  const TraceRecord& last_common = d.common.back();
  EXPECT_EQ(last_common.type, TraceType::kEnterRecovery);
  EXPECT_EQ(last_common.f[1], 10 * kMss) << "shared ssthresh";
  EXPECT_EQ(last_common.f[3], 20 * kMss) << "shared prior cwnd";
  EXPECT_EQ(last_common.f[4], 20 * kMss) << "shared recovery point";

  // The human-readable report names the differing field.
  const std::string report = explain_divergence(d, "PRR", "RFC 3517");
  EXPECT_NE(report.find("cwnd"), std::string::npos) << report;
  EXPECT_NE(report.find("PRR"), std::string::npos);
  EXPECT_NE(report.find("RFC 3517"), std::string::npos);
}

TEST_F(TraceDiffTest, IdenticalStreamsDoNotDiverge) {
  ScriptedArm a(tcp::RecoveryKind::kPrr);
  ScriptedArm b(tcp::RecoveryKind::kPrr);
  a.run_single_loss_script();
  b.run_single_loss_script();
  const DivergencePoint d = first_divergence(a.records(), b.records());
  EXPECT_FALSE(d.diverged);
  EXPECT_GT(d.common_count, 0u);
}

TEST_F(TraceDiffTest, ExhaustionDivergenceWhenOneStreamEnds) {
  ScriptedArm a(tcp::RecoveryKind::kPrr);
  ScriptedArm b(tcp::RecoveryKind::kPrr);
  a.run_single_loss_script();
  b.run_single_loss_script();
  std::vector<TraceRecord> shorter = b.records();
  ASSERT_GT(shorter.size(), 4u);
  shorter.resize(shorter.size() - 4);
  const DivergencePoint d = first_divergence(a.records(), shorter);
  EXPECT_TRUE(d.diverged);
  EXPECT_FALSE(d.a_ended);
  EXPECT_TRUE(d.b_ended);
  const std::string report = explain_divergence(d, "full", "cut");
  EXPECT_NE(report.find("cut"), std::string::npos) << report;
}

TEST_F(TraceDiffTest, TimerRecordsIgnoredByDefaultButComparable) {
  const TraceRecord base =
      make_record(sim::Time::nanoseconds(10), 1, TraceType::kAck);
  const TraceRecord timer = make_record(sim::Time::nanoseconds(5), 1,
                                        TraceType::kTimerSchedule);
  const std::vector<TraceRecord> plain = {base};
  const std::vector<TraceRecord> with_timer = {timer, base};

  EXPECT_FALSE(first_divergence(plain, with_timer).diverged);

  DiffOptions strict;
  strict.ignore_timers = false;
  EXPECT_TRUE(first_divergence(plain, with_timer, strict).diverged);
}

TEST_F(TraceDiffTest, PerfettoDiffJsonIsValidAndMarksDivergence) {
  ScriptedArm prr(tcp::RecoveryKind::kPrr);
  ScriptedArm rfc(tcp::RecoveryKind::kRfc3517);
  prr.run_single_loss_script();
  rfc.run_single_loss_script();
  const std::string json =
      perfetto_diff_json(prr.records(), rfc.records(), "PRR", "RFC 3517");
  ASSERT_TRUE(json_valid(json));
  EXPECT_NE(json.find("FIRST DIVERGENCE"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("PRR"), std::string::npos);
  EXPECT_NE(json.find("RFC 3517"), std::string::npos);
}

}  // namespace
}  // namespace prr::obs
